#include "cc/lock_manager.h"

#include <algorithm>

#include "util/check.h"

namespace oodb::cc {

const char* LockModeName(LockMode m) {
  switch (m) {
    case LockMode::kShared:
      return "S";
    case LockMode::kExclusive:
      return "X";
  }
  return "?";
}

LockManager::LockManager(sim::Simulator& sim, const CcConfig& config)
    : sim_(sim), config_(config) {}

LockManager::~LockManager() = default;

bool LockManager::CompatibleWithHolders(const LockEntry& entry, TxnId txn,
                                        LockMode mode) {
  for (const Holder& h : entry.holders) {
    if (h.txn == txn) continue;  // own hold never conflicts (upgrade case)
    if (mode == LockMode::kExclusive || h.mode == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

bool LockManager::Holds(TxnId txn, LockKey key, LockMode mode) const {
  auto it = locks_.find(key);
  if (it == locks_.end()) return false;
  for (const Holder& h : it->second.holders) {
    if (h.txn != txn) continue;
    return mode == LockMode::kShared || h.mode == LockMode::kExclusive;
  }
  return false;
}

void LockManager::ApplyGrant(LockEntry& entry, TxnId txn, LockKey key,
                             LockMode mode) {
  for (Holder& h : entry.holders) {
    if (h.txn != txn) continue;
    // Re-grant or S -> X upgrade on the existing hold: the key is
    // already in held_[txn], so ReleaseAll stays single-shot.
    if (mode == LockMode::kExclusive) h.mode = LockMode::kExclusive;
    return;
  }
  entry.holders.push_back(Holder{txn, mode});
  held_[txn].push_back(key);
}

bool LockManager::TryImmediateGrant(TxnId txn, LockKey key, LockMode mode) {
  LockEntry& entry = locks_[key];
  if (Holds(txn, key, mode)) {
    ++stats_.lock_grants;
    return true;  // already covered; no queue fairness question arises
  }
  // FIFO fairness: a newcomer only bypasses the queue when there is no
  // queue — otherwise a stream of shared requests would starve a queued
  // exclusive one forever.
  if (!entry.queue.empty() || !CompatibleWithHolders(entry, txn, mode)) {
    return false;
  }
  ApplyGrant(entry, txn, key, mode);
  ++stats_.lock_grants;
  return true;
}

void LockManager::GrantWaiters(LockKey key) {
  auto it = locks_.find(key);
  if (it == locks_.end()) return;
  // Collect the grantable prefix first, then resume: a resumed waiter
  // runs synchronously and may re-enter the manager (release this very
  // key, even erase the entry), so no iterator may live across a resume.
  std::vector<std::shared_ptr<Waiter>> resumable;
  {
    LockEntry& entry = it->second;
    while (!entry.queue.empty()) {
      const std::shared_ptr<Waiter>& w = entry.queue.front();
      if (!CompatibleWithHolders(entry, w->txn, w->mode)) break;
      ApplyGrant(entry, w->txn, key, w->mode);
      w->granted = true;
      w->resolved = true;
      ++stats_.lock_grants;
      stats_.lock_wait_time_s += sim_.now() - w->enqueued_s;
      resumable.push_back(w);
      entry.queue.pop_front();
    }
    if (entry.holders.empty() && entry.queue.empty()) locks_.erase(it);
  }
  for (const std::shared_ptr<Waiter>& w : resumable) w->handle.resume();
}

void LockManager::OnTimeout(LockKey key,
                            const std::shared_ptr<Waiter>& waiter) {
  // Events cannot be cancelled in the calendar queue; a grant that beat
  // this timeout left the waiter resolved and this event is a no-op.
  if (waiter->resolved) return;
  auto it = locks_.find(key);
  OODB_CHECK(it != locks_.end());
  LockEntry& entry = it->second;
  auto pos = std::find(entry.queue.begin(), entry.queue.end(), waiter);
  OODB_CHECK(pos != entry.queue.end());
  entry.queue.erase(pos);
  waiter->granted = false;
  waiter->resolved = true;
  ++stats_.lock_timeouts;
  stats_.lock_wait_time_s += sim_.now() - waiter->enqueued_s;
  // Removing a queued request can unblock those behind it (e.g. a
  // timed-out X request that was fencing compatible S requests). Grant
  // them before resuming the victim so the victim's rollback/retry runs
  // after the survivors are on their way — deterministic either way, but
  // this ordering keeps the queue state canonical when the victim
  // re-requests the same key during its retry.
  GrantWaiters(key);
  waiter->handle.resume();
}

// ---------------------------------------------------------------------------
// LockAwait
// ---------------------------------------------------------------------------

bool LockManager::LockAwait::await_ready() {
  return lm_.TryImmediateGrant(txn_, key_, mode_);
}

void LockManager::LockAwait::await_suspend(std::coroutine_handle<> h) {
  waiter_ = std::make_shared<Waiter>();
  waiter_->txn = txn_;
  waiter_->mode = mode_;
  waiter_->handle = h;
  waiter_->enqueued_s = lm_.sim_.now();
  lm_.locks_[key_].queue.push_back(waiter_);
  ++lm_.stats_.lock_waits;
  // One timeout event per queued waiter, scheduled up front (no
  // cancellation): whichever of grant/timeout fires second sees
  // `resolved` and no-ops.
  const LockKey key = key_;
  std::shared_ptr<Waiter> w = waiter_;
  LockManager* lm = &lm_;
  lm_.sim_.Schedule(lm_.config_.lock_timeout_s,
                    [lm, key, w] { lm->OnTimeout(key, w); });
}

bool LockManager::LockAwait::await_resume() {
  if (waiter_ == nullptr) return true;  // immediate grant via await_ready
  OODB_CHECK(waiter_->resolved);
  return waiter_->granted;
}

// ---------------------------------------------------------------------------
// Release
// ---------------------------------------------------------------------------

void LockManager::ReleaseAll(TxnId txn) {
  auto held_it = held_.find(txn);
  if (held_it == held_.end()) return;
  // Move the key list out: GrantWaiters resumes waiters synchronously
  // and a resumed transaction may mutate held_ (its own acquisitions).
  std::vector<LockKey> keys = std::move(held_it->second);
  held_.erase(held_it);
  for (const LockKey key : keys) {
    auto it = locks_.find(key);
    if (it == locks_.end()) continue;
    LockEntry& entry = it->second;
    entry.holders.erase(
        std::remove_if(entry.holders.begin(), entry.holders.end(),
                       [txn](const Holder& h) { return h.txn == txn; }),
        entry.holders.end());
    if (entry.holders.empty() && entry.queue.empty()) {
      locks_.erase(it);
      continue;
    }
    GrantWaiters(key);
  }
}

// ---------------------------------------------------------------------------
// Latches
// ---------------------------------------------------------------------------

bool LockManager::LatchAwait::await_ready() {
  LatchEntry& entry = lm_.latches_[key_];
  if (entry.held) return false;
  entry.held = true;
  ++lm_.stats_.latch_grants;
  return true;
}

void LockManager::LatchAwait::await_suspend(std::coroutine_handle<> h) {
  LatchEntry& entry = lm_.latches_[key_];
  entry.queue.emplace_back(h, lm_.sim_.now());
  ++lm_.stats_.latch_waits;
}

void LockManager::ReleaseLatch(LockKey key) {
  auto it = latches_.find(key);
  OODB_CHECK(it != latches_.end());
  LatchEntry& entry = it->second;
  OODB_CHECK(entry.held);
  if (entry.queue.empty()) {
    latches_.erase(it);
    return;
  }
  // Hand the latch to the FIFO head; it stays held across the transfer.
  auto [handle, enqueued_s] = entry.queue.front();
  entry.queue.pop_front();
  ++stats_.latch_grants;
  stats_.latch_wait_time_s += sim_.now() - enqueued_s;
  handle.resume();
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

size_t LockManager::held_count(TxnId txn) const {
  auto it = held_.find(txn);
  return it == held_.end() ? 0 : it->second.size();
}

size_t LockManager::queue_length(LockKey key) const {
  auto it = locks_.find(key);
  return it == locks_.end() ? 0 : it->second.queue.size();
}

}  // namespace oodb::cc
