#ifndef SEMCLUST_CC_CC_CONFIG_H_
#define SEMCLUST_CC_CC_CONFIG_H_

#include <string>

#include "util/status.h"

/// \file
/// Configuration for the concurrency-control subsystem (src/cc/).
///
/// Header-only on purpose, mirroring dyn_config.h: `core::ModelConfig`
/// embeds a CcConfig so the scenario layer and benches can sweep the
/// contention knobs without a core -> cc library dependency. The runtime
/// machinery (LockManager) lives in the semclust_cc library and is only
/// linked where it is used (core).

namespace oodb::cc {

/// Knobs of the object-level strict-2PL lock manager. All defaults are
/// inert: with `enabled == false` no lock manager is built, no metrics
/// are registered, no random numbers are drawn, and the simulation is
/// byte-identical to a build without src/cc/.
struct CcConfig {
  bool enabled = false;

  /// Deadlock handling is deterministic wait-timeout presumed-abort: a
  /// lock request queued longer than this (virtual seconds) is removed
  /// from the wait queue and its transaction aborts.
  double lock_timeout_s = 2.0;

  /// An aborted transaction retries at most this many times after its
  /// first attempt before giving up (its work stays rolled back).
  int max_retries = 6;

  /// Exponential-backoff delay before retry k is
  /// min(backoff_base_s * 2^k, backoff_cap_s), jittered by a splitmix64
  /// stream keyed on the per-transaction seed — deterministic at any job
  /// count.
  double backoff_base_s = 0.05;
  double backoff_cap_s = 2.0;

  /// Guard the buffer-fix path with per-page exclusive FIFO latches: a
  /// page's fix (and any miss I/O inside it) is serialised, so two
  /// transactions never race the same frame. Latches are held across at
  /// most one fix and never across a lock wait, so they cannot deadlock.
  bool page_latches = true;

  Status Validate() const {
    if (!enabled) return Status::Ok();
    if (!(lock_timeout_s > 0.0))
      return Status::InvalidArgument("cc: lock_timeout_s must be positive");
    if (max_retries < 0)
      return Status::InvalidArgument(
          "cc: max_retries must be >= 0 (0 aborts permanently on the "
          "first deadlock timeout)");
    if (!(backoff_base_s > 0.0))
      return Status::InvalidArgument("cc: backoff_base_s must be positive");
    if (backoff_cap_s < backoff_base_s)
      return Status::InvalidArgument(
          "cc: backoff_cap_s must be >= backoff_base_s");
    return Status::Ok();
  }
};

}  // namespace oodb::cc

#endif  // SEMCLUST_CC_CC_CONFIG_H_
