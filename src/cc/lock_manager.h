#ifndef SEMCLUST_CC_LOCK_MANAGER_H_
#define SEMCLUST_CC_LOCK_MANAGER_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cc/cc_config.h"
#include "sim/simulator.h"

/// \file
/// Object-level strict two-phase locking on the virtual clock: shared /
/// exclusive lock modes with per-object FIFO wait queues, deadlock
/// handling by deterministic wait-timeout presumed-abort, and per-page
/// exclusive latches guarding the buffer-fix path.
///
/// Determinism: the manager schedules exactly one simulator event per
/// queued waiter (its timeout) and resumes waiters synchronously from
/// the releasing transaction's frame — the same synchronous-resume
/// contract sim::Resource::Complete honours — so grant order is a pure
/// function of the (time, seq) event order and jobs1 == jobs4 exactly.
/// The manager draws no random numbers; retry-backoff jitter is the
/// caller's, keyed on the per-transaction seed.
///
/// Deadlocks resolve by timeout, not a waits-for graph: a waiter queued
/// longer than `CcConfig::lock_timeout_s` is removed and resumed with
/// `granted == false`, and its transaction aborts, rolls back through
/// the log manager, releases everything, and retries with exponential
/// backoff. Latches cannot deadlock — a transaction holds at most one at
/// a time and never waits on a lock while holding one — so they have no
/// timeout.

namespace oodb::cc {

using TxnId = uint64_t;
/// Lock keys are widened object ids; latch keys are (shard, page) packed
/// the way TxnPipeline::PrefetchKey packs them.
using LockKey = uint64_t;

enum class LockMode : uint8_t { kShared = 0, kExclusive = 1 };

const char* LockModeName(LockMode m);

/// Cumulative manager-side counters, mirrored into the metrics registry
/// by the measurement controller (set-semantics, like the buffer/io/log
/// component counters).
struct LockStats {
  uint64_t lock_grants = 0;    ///< acquisitions granted (immediate + queued)
  uint64_t lock_waits = 0;     ///< acquisitions that had to queue
  uint64_t lock_timeouts = 0;  ///< waits resolved by deadlock timeout
  uint64_t latch_grants = 0;   ///< page-latch acquisitions granted
  uint64_t latch_waits = 0;    ///< page-latch acquisitions that queued
  double lock_wait_time_s = 0;   ///< total simulated time in lock queues
  double latch_wait_time_s = 0;  ///< total simulated time in latch queues
};

class LockManager {
  struct Waiter;
  struct LockEntry;
  struct LatchEntry;

 public:
  LockManager(sim::Simulator& sim, const CcConfig& config);
  ~LockManager();

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Awaitable lock request. `co_await` yields true when the lock was
  /// granted (strict 2PL: it is then held until ReleaseAll) and false
  /// when the wait timed out — the transaction must abort.
  class LockAwait {
   public:
    LockAwait(LockManager& lm, TxnId txn, LockKey key, LockMode mode)
        : lm_(lm), txn_(txn), key_(key), mode_(mode) {}
    bool await_ready();
    void await_suspend(std::coroutine_handle<> h);
    bool await_resume();

   private:
    LockManager& lm_;
    TxnId txn_;
    LockKey key_;
    LockMode mode_;
    std::shared_ptr<Waiter> waiter_;
  };

  /// Awaitable exclusive page latch. Always granted (FIFO, no timeout).
  class LatchAwait {
   public:
    LatchAwait(LockManager& lm, LockKey key) : lm_(lm), key_(key) {}
    bool await_ready();
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() {}

   private:
    LockManager& lm_;
    LockKey key_;
  };

  /// Requests `key` in `mode` for `txn`. Re-entrant: a mode already
  /// covered by a held lock grants immediately; a shared holder
  /// requesting exclusive upgrades (in place when it is the only holder,
  /// through the FIFO queue otherwise — two upgraders deadlock and one
  /// times out, the classic upgrade deadlock).
  LockAwait Acquire(TxnId txn, LockKey key, LockMode mode) {
    return LockAwait(*this, txn, key, mode);
  }

  /// True when `txn` holds `key` in a mode covering `mode`.
  bool Holds(TxnId txn, LockKey key, LockMode mode) const;

  /// Releases every lock `txn` holds (commit or abort — strict 2PL
  /// releases nothing earlier), granting unblocked waiters FIFO with
  /// synchronous resume.
  void ReleaseAll(TxnId txn);

  LatchAwait AcquireLatch(LockKey key) { return LatchAwait(*this, key); }
  void ReleaseLatch(LockKey key);

  const LockStats& stats() const { return stats_; }
  /// Zeroes the counters at the warmup/measured boundary; held locks and
  /// queued waiters are untouched (in-flight transactions straddle the
  /// boundary, same semantics as the I/O counters).
  void ResetStats() { stats_ = LockStats{}; }

  /// Introspection for tests.
  size_t held_count(TxnId txn) const;
  size_t queue_length(LockKey key) const;

 private:
  bool TryImmediateGrant(TxnId txn, LockKey key, LockMode mode);
  /// True when `txn` may hold/receive `key` in `mode` given the current
  /// holders (ignoring `txn`'s own shared hold for upgrades).
  static bool CompatibleWithHolders(const LockEntry& entry, TxnId txn,
                                    LockMode mode);
  void ApplyGrant(LockEntry& entry, TxnId txn, LockKey key, LockMode mode);
  /// Grants every now-compatible waiter from the queue front (FIFO),
  /// resuming each synchronously. `entry` may be erased on return.
  void GrantWaiters(LockKey key);
  void OnTimeout(LockKey key, const std::shared_ptr<Waiter>& waiter);

  struct Holder {
    TxnId txn;
    LockMode mode;
  };

  struct Waiter {
    TxnId txn = 0;
    LockMode mode = LockMode::kShared;
    std::coroutine_handle<> handle;
    double enqueued_s = 0;
    bool granted = false;
    bool resolved = false;  ///< granted or timed out; the other path no-ops
  };

  struct LockEntry {
    std::vector<Holder> holders;
    std::deque<std::shared_ptr<Waiter>> queue;
  };

  struct LatchEntry {
    bool held = false;
    std::deque<std::pair<std::coroutine_handle<>, double>> queue;
  };

  sim::Simulator& sim_;
  CcConfig config_;
  LockStats stats_;
  std::unordered_map<LockKey, LockEntry> locks_;
  std::unordered_map<LockKey, LatchEntry> latches_;
  /// Keys each transaction holds, in acquisition order — ReleaseAll walks
  /// this vector, never a hash map, so release order is deterministic.
  std::unordered_map<TxnId, std::vector<LockKey>> held_;
};

}  // namespace oodb::cc

#endif  // SEMCLUST_CC_LOCK_MANAGER_H_
