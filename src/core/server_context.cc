#include "core/server_context.h"

#include <cstdio>
#include <utility>

#include "cluster/static_clusterer.h"
#include "ocb/ocb_workload.h"
#include "util/check.h"
#include "workload/db_builder.h"

namespace oodb::core {

ServerContext::ServerContext(ModelConfig model_config)
    : config(std::move(model_config)),
      trace(&sim, obs::TraceCollector::PathFromEnv() != nullptr
                      ? obs::TraceCollector::RingCapacityFromEnv()
                      : 0),
      sampler(&metrics, config.telemetry_interval_s) {
  const Status valid = config.Validate();
  if (!valid.ok()) {
    std::fprintf(stderr, "ModelConfig: %s\n", valid.ToString().c_str());
  }
  OODB_CHECK(valid.ok());

  // Under OCB the schema is the generated class hierarchy; its facade
  // types feed the execution model's insert path in place of the CAD set.
  ocb::OcbSchema ocb_schema;
  if (config.ocb.enabled) {
    ocb_schema = ocb::RegisterOcbClasses(lattice, config.ocb,
                                         config.seed ^ 0x0CB0CB);
    types = ocb_schema.cad;
  } else {
    types = workload::RegisterCadTypes(lattice);
  }
  graph = std::make_unique<obj::ObjectGraph>(&lattice);
  storage = std::make_unique<store::StorageManager>(
      config.page_size_bytes, config.append_fill_fraction);
  buffer = std::make_unique<buffer::BufferPool>(
      config.buffer_pages, config.replacement, config.seed ^ 0xB0FFEB0FF);
  affinity = std::make_unique<cluster::AffinityModel>(&lattice);
  cluster = std::make_unique<cluster::ClusterManager>(
      graph.get(), storage.get(), affinity.get(), buffer.get(),
      config.clustering);
  io = std::make_unique<io::IoSubsystem>(sim, config.num_disks,
                                         config.page_size_bytes,
                                         config.disk);
  log = std::make_unique<txlog::LogManager>(config.log_buffer_bytes,
                                            config.page_size_bytes);
  cpu = std::make_unique<sim::Resource>(sim, "cpu", 1);

  // Build the database through the policy under test. The build is the
  // accretion history of the repository (or the OCB bulk load), not part
  // of the measured run.
  if (config.ocb.enabled) {
    ocb::OcbBuilder builder(graph.get(), cluster.get(), buffer.get(),
                            config.ocb);
    ocb_catalog = std::make_unique<ocb::OcbCatalog>(
        builder.Build(ocb_schema, config.seed ^ 0xDBDBDB));
    db = std::move(ocb_catalog->db);
  } else {
    workload::DatabaseSpec spec = config.database;
    spec.target_bytes = config.database_bytes;
    spec.density = config.workload.density;
    spec.concurrent_streams = config.num_users;
    spec.seed = config.seed ^ 0xDBDBDB;
    workload::DbBuilder builder(graph.get(), cluster.get(), buffer.get(),
                                spec);
    db = builder.Build(types);
  }
  OODB_CHECK(!db.modules.empty());

  if (config.static_reorganize_after_build) {
    // The DBA's offline alternative: quiesce and repack the whole
    // database by affinity (paper §2.1's static clustering).
    cluster::StaticClusterer reorganizer(graph.get(), storage.get(),
                                         affinity.get());
    reorganizer.Reorganize();
  }

  // Observability is attached only now: the build phase above is the
  // repository's accretion history, not part of the run, and its page
  // traffic would otherwise flood the trace ring before the first
  // transaction. The sink is disabled (capacity 0) unless SEMCLUST_TRACE
  // is set, so these calls cost two compares per event when tracing is off.
  buffer->set_trace(&trace);
  io->set_trace(&trace);
  log->set_trace(&trace);
  cluster->set_trace(&trace);

  // Telemetry rides the same after-the-build attachment rule: the sampler
  // starts at the warmup/measured boundary. Its pre-sample hook (which
  // re-syncs the mirrored component counters) is installed by the
  // MeasurementController, the layer that owns the mirroring.
  auditor = std::make_unique<obs::PlacementAuditor>(graph.get(),
                                                    storage.get());
  if (config.telemetry_audit_placement) {
    sampler.set_placement_auditor(auditor.get());
  }

  handles.txns = metrics.Counter("core.txns");
  handles.prefetch_issued = metrics.Counter("core.prefetch.issued");
  handles.prefetch_hits = metrics.Counter("core.prefetch.hits");
  handles.prefetch_wasted = metrics.Counter("core.prefetch.wasted");
  handles.response_s = metrics.Histogram(
      "core.response_s",
      {0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 60.0});

  // Dynamic re-clustering (src/dyn/): built — and its metrics registered —
  // only when enabled, after the core handles so the pre-existing snapshot
  // layout is untouched in every static-policy run.
  if (config.clustering.dynamic.enabled()) {
    dyn_tracker =
        std::make_unique<dyn::AccessTracker>(config.clustering.dynamic);
    dyn_policy = dyn::MakeReclusterPolicy(config.clustering.dynamic);
    dyn_reorganizer =
        std::make_unique<dyn::Reorganizer>(graph.get(), storage.get());
    dyn_handles.triggers = metrics.Counter("dyn.triggers");
    dyn_handles.units = metrics.Counter("dyn.units");
    dyn_handles.objects_moved = metrics.Counter("dyn.objects_moved");
    dyn_handles.reorg_reads = metrics.Counter("dyn.reorg_reads");
    dyn_handles.deferral_events = metrics.Counter("dyn.deferral_events");
    dyn_handles.deferral_time_s = metrics.Gauge("dyn.deferral_time_s");
    dyn_handles.queue_depth_peak = metrics.Gauge("dyn.queue_depth_peak");
  }

  // The span profiler registers its (kind, phase) metric grid after the
  // dyn handles, so every previously committed snapshot layout is
  // untouched when profiling is off.
  if (config.profile_spans) {
    std::vector<std::string> kinds;
    kinds.reserve(workload::kNumQueryTypes);
    for (int q = 0; q < workload::kNumQueryTypes; ++q) {
      kinds.emplace_back(
          workload::QueryTypeName(static_cast<workload::QueryType>(q)));
    }
    spans = std::make_unique<obs::SpanProfiler>(&metrics, std::move(kinds),
                                                config.span_exemplars);
  }

  // Concurrency control (src/cc/): built — and its metrics registered —
  // only when enabled, after the span grid so every previously committed
  // snapshot layout is untouched in cc-off runs. The manager itself draws
  // no random numbers (neutrality) — retry jitter is derived per
  // transaction in the pipeline.
  if (config.cc.enabled) {
    locks = std::make_unique<cc::LockManager>(sim, config.cc);
    cc_handles.txn_aborts = metrics.Counter("cc.txn_aborts");
    cc_handles.txn_retries = metrics.Counter("cc.txn_retries");
    cc_handles.txn_giveups = metrics.Counter("cc.txn_giveups");
    cc_handles.rollback_pages = metrics.Counter("cc.rollback_pages");
    cc_handles.lock_wait_s = metrics.Histogram(
        "cc.lock_wait_s", {0.001, 0.01, 0.05, 0.2, 0.5, 1.0, 2.0, 5.0});
    cc_handles.latch_wait_s = metrics.Histogram(
        "cc.latch_wait_s", {0.001, 0.01, 0.05, 0.2, 0.5, 1.0, 2.0, 5.0});
  }

  for (int u = 0; u < config.num_users; ++u) {
    const uint64_t user_seed =
        config.seed * 7919 + static_cast<uint64_t>(u);
    if (config.ocb.enabled) {
      generators.push_back(std::make_unique<ocb::OcbGenerator>(
          graph.get(), &db, ocb_catalog.get(), config.ocb,
          config.workload.read_write_ratio, user_seed));
    } else {
      generators.push_back(std::make_unique<workload::WorkloadGenerator>(
          graph.get(), &db, config.workload, user_seed));
    }
  }

  // The shard layer comes last: placement must see the final built (and
  // possibly statically reorganised) graph, and migration re-places
  // objects through the per-shard cluster managers. With shards == 1 this
  // allocates nothing beyond the alias views.
  shards = std::make_unique<ShardedContext>(*this);
}

ServerContext::~ServerContext() = default;

}  // namespace oodb::core
