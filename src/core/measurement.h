#ifndef SEMCLUST_CORE_MEASUREMENT_H_
#define SEMCLUST_CORE_MEASUREMENT_H_

#include <array>
#include <cstdint>
#include <vector>

#include "core/run_result.h"
#include "core/server_context.h"
#include "core/txn_pipeline.h"
#include "sim/process.h"
#include "util/stats.h"

/// \file
/// Run control and statistics assembly: the closed queueing network of
/// user processes (think time + sessions, paper §4.1), the warmup /
/// measured-phase boundary, measurement epochs and the R/W-ratio
/// schedule, simulated-time telemetry sampling, the component-counter
/// metric mirror, and the final RunResult. Executes transactions through
/// a TxnPipeline; owns no simulation cost model of its own, so attaching
/// or detaching measurement can never change a simulated outcome.

namespace oodb::core {

class MeasurementController {
 public:
  /// Installs the telemetry pre-sample hook on the context's sampler (the
  /// hook re-syncs the mirrored component counters before each sample).
  MeasurementController(ServerContext& context, TxnPipeline& pipeline);

  MeasurementController(const MeasurementController&) = delete;
  MeasurementController& operator=(const MeasurementController&) = delete;

  /// Spawns the user processes, runs the simulation to completion, and
  /// assembles the collected statistics.
  RunResult Run();

 private:
  sim::Task UserLoop(int user);
  /// Open-arrival variant (ModelConfig::arrival == kOpen): one Poisson
  /// arrival process on the virtual clock spawns independent transactions
  /// at rate `arrival_rate_tps`, round-robining the generator streams, so
  /// concurrency is whatever the service times admit instead of being
  /// capped by `num_users` closed loops.
  sim::Task ArrivalLoop();
  /// One open arrival end to end: draws the next transaction of `user`'s
  /// stream (opening a fresh session when the previous one is spent) and
  /// executes it.
  sim::Task RunOneArrival(int user);
  void OnTransactionDone(double response_s, workload::QueryType type);
  void ResetMeasurementCounters();
  /// Applies config.rw_ratio_schedule at an epoch boundary.
  void ApplyEpochSchedule(size_t epoch);
  /// Mirrors component counters (buffer/io/log/cluster/sim) into the
  /// metrics registry with set-semantics: values are absolute cumulative
  /// counts, so re-syncing at every telemetry sample and again at end of
  /// run is idempotent.
  void SyncComponentMetrics();

  ServerContext& ctx_;
  TxnPipeline& pipeline_;

  // Run state.
  bool measuring_ = false;
  bool done_ = false;
  uint64_t completed_txns_ = 0;
  StreamingStats response_time_;
  StreamingStats read_response_;
  StreamingStats write_response_;
  std::array<StreamingStats, workload::kNumQueryTypes> response_by_query_{};
  std::vector<StreamingStats> response_epochs_;
  size_t current_epoch_ = 0;
  uint64_t measured_txns_ = 0;
  // Remaining session length per generator stream under open arrivals
  // (sessions span arrivals; empty in closed-loop runs).
  std::vector<int> open_session_left_;
};

}  // namespace oodb::core

#endif  // SEMCLUST_CORE_MEASUREMENT_H_
