#ifndef SEMCLUST_CORE_BENCH_REPORT_H_
#define SEMCLUST_CORE_BENCH_REPORT_H_

#include <optional>
#include <string>

#include "core/engineering_db.h"
#include "obs/metrics.h"

/// \file
/// Machine-readable benchmark output. When SEMCLUST_BENCH_JSON=<path> is
/// set, every bench binary appends one JSON record per simulated cell to
/// that file (JSON Lines: one object per line), which is what populates the
/// repo's BENCH_*.json perf-trajectory files. Without the variable the
/// reporter is inert and the human-readable tables are the only output.
///
/// Every record embeds the cell's final metric snapshot (under "metrics")
/// plus the derived observability ratios. Derived ratios whose denominator
/// is zero — no buffer accesses, no reclusterings, no prefetches issued —
/// are emitted as JSON null, never as the result of a division by zero.

namespace oodb::core {

/// One emitted record's fields (all cells of a bench share `bench`).
struct BenchRecord {
  std::string cell_label;  ///< unique-within-bench cell name
  std::string policy;      ///< clustering/buffering policy label
  std::string workload;    ///< workload label, e.g. "hi10-100"
  double mean_response_s = 0;
  uint64_t io_count = 0;  ///< total physical I/Os of the measured phase
  double hit_ratio = 0;   ///< buffer hit ratio
  double elapsed_wall_s = 0;  ///< host wall-clock spent on the cell

  // Observability summary (nullopt renders as JSON null).
  std::optional<double> buffer_hit_ratio;        ///< hits / accesses
  std::optional<double> exam_ios_per_recluster;  ///< exam reads / attempts
  std::optional<double> prefetch_accuracy;       ///< hits / issued
  /// remote / (local + remote) object-page fetches across shards; null
  /// when the run was not sharded (shards = 1 never routes a fetch).
  std::optional<double> remote_fetch_fraction;
  uint64_t page_splits = 0;

  /// Response-time percentiles interpolated from the core.response_s
  /// histogram buckets (null when metrics are off or no transactions ran).
  std::optional<double> response_p50_s;
  std::optional<double> response_p95_s;
  std::optional<double> response_p99_s;

  /// Per-measurement-epoch response time: (transaction count, mean
  /// seconds), one entry per configured epoch.
  std::vector<std::pair<uint64_t, double>> response_epochs;

  /// Concurrency-control summary (DESIGN.md §16), emitted as a nested
  /// "cc" object only when the run had the subsystem on — cc-off records
  /// (every committed pre-cc baseline) carry no cc keys at all.
  bool has_cc = false;
  uint64_t cc_txn_aborts = 0;
  uint64_t cc_txn_retries = 0;
  uint64_t cc_txn_giveups = 0;
  uint64_t cc_lock_waits = 0;
  uint64_t cc_deadlock_timeouts = 0;
  uint64_t cc_latch_waits = 0;
  uint64_t cc_rollback_pages = 0;
  double cc_lock_wait_time_s = 0;
  double cc_abort_rate = 0;

  /// The cell's full metric snapshot (empty snapshots are omitted from the
  /// JSON rather than rendered as an empty object).
  obs::MetricsSnapshot metrics;

  /// The cell's simulated-time telemetry (omitted from the JSON when
  /// empty): metric deltas + placement audits per sample.
  obs::TimeSeries series;

  /// Per-kind response-time phase breakdown (DESIGN.md §14): exact
  /// integer-tick totals per transaction kind. Empty — and omitted from
  /// the JSON — unless the run had `profile_spans` on.
  std::vector<obs::SpanKindBreakdown> breakdown;
};

/// Appends records for one bench binary to $SEMCLUST_BENCH_JSON.
class BenchReport {
 public:
  /// `bench` names the binary/figure and is stamped on every record. The
  /// destination is read from SEMCLUST_BENCH_JSON once, at construction.
  explicit BenchReport(std::string bench);

  /// False when SEMCLUST_BENCH_JSON is unset (records are dropped).
  bool enabled() const { return !path_.empty(); }

  const std::string& bench() const { return bench_; }
  void set_bench(std::string bench) { bench_ = std::move(bench); }

  /// Appends one record (open-append-close per record, so partial bench
  /// runs still leave valid lines behind).
  void Record(const BenchRecord& record) const;

  /// Convenience: fills the numeric fields (including the observability
  /// summary and metric snapshot) from a RunResult.
  void Record(const std::string& cell_label, const std::string& policy,
              const std::string& workload, const RunResult& result,
              double elapsed_wall_s) const;

  /// Builds a record from a RunResult (the null-safe ratio derivation
  /// lives here; exposed for tests).
  static BenchRecord FromResult(const std::string& cell_label,
                                const std::string& policy,
                                const std::string& workload,
                                const RunResult& result,
                                double elapsed_wall_s);

  /// Renders one record as its JSONL line (without the trailing newline).
  std::string ToJsonLine(const BenchRecord& record) const;

 private:
  std::string bench_;
  std::string path_;
  mutable bool warned_unwritable_ = false;
};

}  // namespace oodb::core

#endif  // SEMCLUST_CORE_BENCH_REPORT_H_
