#include "core/report.h"

#include <iomanip>

#include "util/table_printer.h"
#include "workload/query.h"

namespace oodb::core {

namespace {

std::string Ms(double seconds) { return FormatDouble(seconds * 1e3, 2); }

}  // namespace

void PrintRunReport(std::ostream& os, const ModelConfig& config,
                    const RunResult& result) {
  os << "== semclust run report ==\n";
  os << "workload " << config.WorkloadLabel() << ", clustering "
     << config.clustering.Label() << ", replacement "
     << buffer::ReplacementPolicyName(config.replacement) << ", prefetch "
     << buffer::PrefetchPolicyName(config.prefetch) << ", "
     << config.buffer_pages << " buffers\n";
  os << "database: " << result.db_objects << " objects on "
     << result.db_pages << " pages; " << result.transactions
     << " measured transactions over "
     << FormatDouble(result.sim_duration_s, 1) << " simulated seconds\n\n";

  TablePrinter rt({"response time", "count", "mean (ms)", "max (ms)"});
  rt.AddRow({"all transactions", std::to_string(result.response_time.count()),
             Ms(result.response_time.Mean()), Ms(result.response_time.max())});
  rt.AddRow({"reads", std::to_string(result.read_response.count()),
             Ms(result.read_response.Mean()), Ms(result.read_response.max())});
  rt.AddRow({"writes", std::to_string(result.write_response.count()),
             Ms(result.write_response.Mean()),
             Ms(result.write_response.max())});
  for (int q = 0; q < workload::kNumQueryTypes; ++q) {
    const auto& s = result.response_by_query[static_cast<size_t>(q)];
    if (s.count() == 0) continue;
    rt.AddRow({std::string("  ") +
                   workload::QueryTypeName(static_cast<workload::QueryType>(q)),
               std::to_string(s.count()), Ms(s.Mean()), Ms(s.max())});
  }
  if (result.response_epochs.size() > 1) {
    for (size_t e = 0; e < result.response_epochs.size(); ++e) {
      const auto& s = result.response_epochs[e];
      rt.AddRow({"  epoch " + std::to_string(e + 1),
                 std::to_string(s.count()), Ms(s.Mean()), Ms(s.max())});
    }
  }
  rt.Print(os);

  os << '\n';
  TablePrinter io({"I/O", "count"});
  io.AddRow({"logical reads", std::to_string(result.logical_reads)});
  io.AddRow({"logical writes", std::to_string(result.logical_writes)});
  io.AddRow({"physical data reads", std::to_string(result.data_reads)});
  io.AddRow({"dirty-page flushes", std::to_string(result.dirty_flushes)});
  io.AddRow({"log flushes", std::to_string(result.log_flush_ios)});
  io.AddRow({"cluster exam reads",
             std::to_string(result.cluster_exam_reads)});
  io.AddRow({"prefetch reads", std::to_string(result.prefetch_reads)});
  io.AddRow({"split page writes", std::to_string(result.split_writes)});
  io.Print(os);

  os << '\n'
     << "buffer hit ratio " << FormatDouble(result.buffer_hit_ratio * 100, 1)
     << "%, achieved R/W " << FormatDouble(result.achieved_rw_ratio, 1)
     << ", disk utilisation "
     << FormatDouble(result.mean_disk_utilization * 100, 1)
     << "%, CPU utilisation "
     << FormatDouble(result.cpu_utilization * 100, 1) << "%\n";
  os << "clustering: " << result.cluster_stats.placements << " placements ("
     << result.cluster_stats.appends << " arrival-order), "
     << result.cluster_stats.relocations << " relocations, "
     << result.cluster_stats.splits << " splits, "
     << result.log_before_images << " log before-images\n";
}

std::string CsvHeader() {
  return "label,txns,mean_response_s,read_response_s,write_response_s,"
         "hit_ratio,achieved_rw,logical_reads,logical_writes,data_reads,"
         "dirty_flushes,log_flushes,exam_reads,prefetch_reads,split_writes,"
         "relocations,splits,db_pages,db_objects";
}

std::string ToCsvRow(const std::string& label, const RunResult& r) {
  std::string row = label;
  auto add = [&row](const std::string& v) {
    row += ',';
    row += v;
  };
  add(std::to_string(r.transactions));
  add(FormatDouble(r.response_time.Mean(), 6));
  add(FormatDouble(r.read_response.Mean(), 6));
  add(FormatDouble(r.write_response.Mean(), 6));
  add(FormatDouble(r.buffer_hit_ratio, 4));
  add(FormatDouble(r.achieved_rw_ratio, 2));
  add(std::to_string(r.logical_reads));
  add(std::to_string(r.logical_writes));
  add(std::to_string(r.data_reads));
  add(std::to_string(r.dirty_flushes));
  add(std::to_string(r.log_flush_ios));
  add(std::to_string(r.cluster_exam_reads));
  add(std::to_string(r.prefetch_reads));
  add(std::to_string(r.split_writes));
  add(std::to_string(r.cluster_stats.relocations));
  add(std::to_string(r.cluster_stats.splits));
  add(std::to_string(r.db_pages));
  add(std::to_string(r.db_objects));
  return row;
}

}  // namespace oodb::core
