#include "core/experiment.h"

namespace oodb::core {

RunResult RunCell(const ModelConfig& config) {
  EngineeringDbModel model(config);
  return model.Run();
}

std::vector<workload::WorkloadConfig> StandardWorkloadGrid() {
  std::vector<workload::WorkloadConfig> grid;
  for (auto density : workload::kAllStructureDensities) {
    for (double ratio : {5.0, 10.0, 100.0}) {
      workload::WorkloadConfig w;
      w.density = density;
      w.read_write_ratio = ratio;
      grid.push_back(w);
    }
  }
  return grid;
}

std::vector<workload::WorkloadConfig> DensitySweep(double rw_ratio) {
  std::vector<workload::WorkloadConfig> grid;
  for (auto density : workload::kAllStructureDensities) {
    workload::WorkloadConfig w;
    w.density = density;
    w.read_write_ratio = rw_ratio;
    grid.push_back(w);
  }
  return grid;
}

std::vector<workload::WorkloadConfig> RatioSweep(
    workload::StructureDensity density) {
  std::vector<workload::WorkloadConfig> grid;
  for (double ratio : {5.0, 10.0, 100.0}) {
    workload::WorkloadConfig w;
    w.density = density;
    w.read_write_ratio = ratio;
    grid.push_back(w);
  }
  return grid;
}

std::vector<cluster::ClusterConfig> ClusteringPolicyLevels(
    cluster::SplitPolicy split) {
  std::vector<cluster::ClusterConfig> levels;
  {
    cluster::ClusterConfig c;
    c.pool = cluster::CandidatePool::kNoClustering;
    levels.push_back(c);
  }
  {
    cluster::ClusterConfig c;
    c.pool = cluster::CandidatePool::kWithinBuffer;
    c.split = split;
    levels.push_back(c);
  }
  {
    cluster::ClusterConfig c;
    c.pool = cluster::CandidatePool::kIoLimit;
    c.io_limit = 2;
    c.split = split;
    levels.push_back(c);
  }
  {
    cluster::ClusterConfig c;
    c.pool = cluster::CandidatePool::kIoLimit;
    c.io_limit = 10;
    c.split = split;
    levels.push_back(c);
  }
  {
    cluster::ClusterConfig c;
    c.pool = cluster::CandidatePool::kWithinDb;
    c.split = split;
    levels.push_back(c);
  }
  return levels;
}

std::vector<BufferingLevel> BufferingLevels() {
  using R = buffer::ReplacementPolicy;
  using P = buffer::PrefetchPolicy;
  return {
      {R::kContextSensitive, P::kWithinDb, "C_p_DB"},
      {R::kContextSensitive, P::kWithinBuffer, "C_p_buff"},
      {R::kRandom, P::kWithinDb, "R_p_DB"},
      {R::kRandom, P::kWithinBuffer, "R_p_buff"},
      {R::kLru, P::kWithinDb, "LRU_p_DB"},
      {R::kLru, P::kNone, "LRU_no_p"},
  };
}

std::vector<BufferingLevel> AllBufferingCombinations() {
  using R = buffer::ReplacementPolicy;
  using P = buffer::PrefetchPolicy;
  std::vector<BufferingLevel> levels;
  const std::pair<R, std::string> reps[] = {
      {R::kContextSensitive, "C"}, {R::kLru, "LRU"}, {R::kRandom, "R"}};
  const std::pair<P, std::string> prefs[] = {{P::kNone, "no_p"},
                                             {P::kWithinBuffer, "p_buff"},
                                             {P::kWithinDb, "p_DB"}};
  for (const auto& [r, rl] : reps) {
    for (const auto& [p, pl] : prefs) {
      levels.push_back({r, p, rl + "_" + pl});
    }
  }
  return levels;
}

ModelConfig WithWorkload(ModelConfig base,
                         const workload::WorkloadConfig& w) {
  base.workload = w;
  base.database.density = w.density;
  return base;
}

}  // namespace oodb::core
