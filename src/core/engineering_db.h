#ifndef SEMCLUST_CORE_ENGINEERING_DB_H_
#define SEMCLUST_CORE_ENGINEERING_DB_H_

#include <array>
#include <coroutine>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "buffer/buffer_pool.h"
#include "buffer/prefetcher.h"
#include "cluster/cluster_manager.h"
#include "core/model_config.h"
#include "io/io_subsystem.h"
#include "objmodel/inheritance.h"
#include "objmodel/object_graph.h"
#include "obs/metrics.h"
#include "obs/placement_auditor.h"
#include "obs/time_series.h"
#include "obs/trace_sink.h"
#include "sim/process.h"
#include "sim/resource.h"
#include "sim/simulator.h"
#include "storage/storage_manager.h"
#include "txlog/log_manager.h"
#include "util/stats.h"
#include "workload/workload_gen.h"

/// \file
/// The engineering-database simulation model (paper §4, Figure 4.1/4.2):
/// a closed queueing network of workstations (users with think times)
/// submitting transactions to a server whose buffer manager, cluster
/// manager, transaction log, CPU, and disks are fully modelled. This is
/// the PAWS model re-expressed on the `sim` engine.

namespace oodb::core {

/// Everything one run reports.
struct RunResult {
  /// Per-transaction response time over the measured phase (seconds).
  StreamingStats response_time;
  StreamingStats read_response;
  StreamingStats write_response;

  uint64_t transactions = 0;
  uint64_t logical_reads = 0;
  uint64_t logical_writes = 0;

  /// Response time broken down by the seven query types (paper §4.1),
  /// indexed by workload::QueryType.
  std::array<StreamingStats, workload::kNumQueryTypes> response_by_query;
  /// Response time per measurement epoch (config.measurement_epochs).
  std::vector<StreamingStats> response_epochs;

  // Physical I/O by purpose (measured phase).
  uint64_t data_reads = 0;
  uint64_t dirty_flushes = 0;
  uint64_t log_flush_ios = 0;
  uint64_t cluster_exam_reads = 0;
  uint64_t prefetch_reads = 0;
  uint64_t split_writes = 0;

  double buffer_hit_ratio = 0;
  uint64_t log_before_images = 0;
  cluster::ClusterStats cluster_stats;

  double mean_disk_utilization = 0;
  double cpu_utilization = 0;
  double sim_duration_s = 0;
  double achieved_rw_ratio = 0;

  // Prefetch effectiveness (measured phase): pages whose asynchronous read
  // was issued, absorbed a later demand access, or was evicted unused.
  uint64_t prefetch_issued = 0;
  uint64_t prefetch_hits = 0;
  uint64_t prefetch_wasted = 0;

  size_t db_pages = 0;
  size_t db_objects = 0;

  /// The cell's full metrics-registry state at the end of the measured
  /// phase (empty when SEMCLUST_METRICS=0).
  obs::MetricsSnapshot metrics;

  /// Simulated-time telemetry over the measured phase: metric deltas and
  /// placement-quality audits per sample (DESIGN.md §9). Always has at
  /// least the final epoch-boundary sample.
  obs::TimeSeries series;

  uint64_t total_physical_ios() const {
    return data_reads + dirty_flushes + log_flush_ios + cluster_exam_reads +
           prefetch_reads + split_writes;
  }
};

/// One fully wired simulation instance. Construct, call Run() once.
class EngineeringDbModel {
 public:
  explicit EngineeringDbModel(ModelConfig config);
  ~EngineeringDbModel();

  EngineeringDbModel(const EngineeringDbModel&) = delete;
  EngineeringDbModel& operator=(const EngineeringDbModel&) = delete;

  /// Builds the database under the configured clustering policy, runs the
  /// warmup and measured phases, and returns the collected statistics.
  RunResult Run();

  // Component access (examples, tests, and the OCT instrumentation).
  const obj::ObjectGraph& graph() const { return *graph_; }
  const store::StorageManager& storage() const { return *storage_; }
  const buffer::BufferPool& buffer() const { return *buffer_; }
  const io::IoSubsystem& io() const { return *io_; }
  const txlog::LogManager& log() const { return *log_; }
  const cluster::ClusterManager& cluster() const { return *cluster_; }
  const workload::DesignDatabase& database() const { return db_; }
  const ModelConfig& config() const { return config_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  const obs::TraceSink& trace() const { return trace_; }

 private:
  // ---- process layer ----
  sim::Task UserLoop(int user);
  sim::Task ExecuteTransaction(const workload::TransactionSpec& spec);

  // Read-side primitives.
  sim::Task AccessObject(obj::ObjectId id, obj::TypeId from_type,
                         int nav_kind);
  /// Makes `page` resident, charging I/O. With `pin`, the page is pinned
  /// before any suspension and stays pinned on return (caller unpins) —
  /// required when the caller mutates the frame after the awaits.
  sim::Task FetchPage(store::PageId page, bool pin = false);
  sim::Task ReadQuery(const workload::TransactionSpec& spec);

  // Write-side primitives.
  sim::Task WriteQuery(const workload::TransactionSpec& spec,
                       txlog::TxnId txn);
  sim::Task LogAndDirty(txlog::TxnId txn, store::PageId page,
                        uint32_t object_size);
  /// Object-level write that tolerates concurrent deletion of `id`.
  sim::Task WriteObject(txlog::TxnId txn, obj::ObjectId id);
  sim::Task ChargeExamReads(const cluster::PlacementReport& report);
  sim::Task ChargeSplit(txlog::TxnId txn,
                        const cluster::PlacementReport& report);
  sim::Task ChargePlacement(txlog::TxnId txn,
                            const cluster::PlacementReport& report,
                            obj::ObjectId placed);
  sim::Task ReclusterAfterStructureChange(txlog::TxnId txn,
                                          obj::ObjectId id);

  sim::Task ChargeCpu(double instructions);
  sim::Task ChargeLogFlushes(int flushes);

  // Buffer-semantics hooks (boosts + prefetch) after an object access.
  void PostAccess(obj::ObjectId id);
  void StartPrefetch(store::PageId page);
  void OnPrefetchComplete(store::PageId page);

  /// Awaits completion of an in-flight prefetch of `page`.
  class PrefetchJoin {
   public:
    PrefetchJoin(EngineeringDbModel& model, store::PageId page)
        : model_(model), page_(page) {}
    bool await_ready() const {
      return model_.inflight_.find(page_) == model_.inflight_.end();
    }
    void await_suspend(std::coroutine_handle<> h) {
      model_.inflight_[page_].push_back(h);
    }
    void await_resume() {}

   private:
    EngineeringDbModel& model_;
    store::PageId page_;
  };

  void OnTransactionDone(double response_s, workload::QueryType type);
  void ResetMeasurementCounters();
  /// Applies config.rw_ratio_schedule at an epoch boundary.
  void ApplyEpochSchedule(size_t epoch);

  /// Prefetch-effectiveness bookkeeping around a Fix: if the eviction the
  /// fix caused threw out a prefetched-but-never-referenced page, that
  /// prefetch was wasted.
  void NotePrefetchEviction(const buffer::BufferPool::FixResult& fix);
  /// Records a demand access to `page`; a pending prefetch of it counts
  /// as a prefetch hit.
  void NotePrefetchDemand(store::PageId page);
  /// Mirrors component counters (buffer/io/log/cluster/sim) into the
  /// metrics registry with set-semantics: values are absolute cumulative
  /// counts, so re-syncing at every telemetry sample and again at end of
  /// run is idempotent.
  void SyncComponentMetrics();

  ModelConfig config_;
  sim::Simulator sim_;
  obs::MetricsRegistry metrics_;
  obs::TraceSink trace_;
  obs::TimeSeriesSampler sampler_;
  std::unique_ptr<obs::PlacementAuditor> auditor_;

  obj::TypeLattice lattice_;
  workload::CadTypes types_{};
  std::unique_ptr<obj::ObjectGraph> graph_;
  std::unique_ptr<store::StorageManager> storage_;
  std::unique_ptr<buffer::BufferPool> buffer_;
  std::unique_ptr<cluster::AffinityModel> affinity_;
  std::unique_ptr<cluster::ClusterManager> cluster_;
  std::unique_ptr<io::IoSubsystem> io_;
  std::unique_ptr<txlog::LogManager> log_;
  std::unique_ptr<sim::Resource> cpu_;
  workload::DesignDatabase db_;
  std::vector<std::unique_ptr<workload::WorkloadGenerator>> generators_;
  obj::InheritanceCostModel inherit_model_;
  Rng rng_;

  // In-flight prefetch reads: page -> waiting processes.
  std::unordered_map<store::PageId, std::vector<std::coroutine_handle<>>>
      inflight_;

  // Pages brought in (or being brought in) by prefetch that no demand
  // access has referenced yet: a later demand access scores a hit, an
  // eviction first scores a waste.
  std::unordered_set<store::PageId> prefetched_unused_;

  // Hot-path metric handles, resolved once at construction.
  obs::CounterHandle m_txns_;
  obs::CounterHandle m_prefetch_issued_;
  obs::CounterHandle m_prefetch_hits_;
  obs::CounterHandle m_prefetch_wasted_;
  obs::HistogramHandle m_response_s_;

  // Run state.
  bool measuring_ = false;
  bool done_ = false;
  uint64_t completed_txns_ = 0;
  txlog::TxnId next_txn_ = 1;
  uint64_t logical_reads_ = 0;
  uint64_t logical_writes_ = 0;
  StreamingStats response_time_;
  StreamingStats read_response_;
  StreamingStats write_response_;
  std::array<StreamingStats, workload::kNumQueryTypes> response_by_query_{};
  std::vector<StreamingStats> response_epochs_;
  size_t current_epoch_ = 0;
  uint64_t measured_txns_ = 0;
};

}  // namespace oodb::core

#endif  // SEMCLUST_CORE_ENGINEERING_DB_H_
