#ifndef SEMCLUST_CORE_ENGINEERING_DB_H_
#define SEMCLUST_CORE_ENGINEERING_DB_H_

#include "core/measurement.h"
#include "core/model_config.h"
#include "core/run_result.h"
#include "core/server_context.h"
#include "core/txn_pipeline.h"

/// \file
/// The engineering-database simulation model (paper §4, Figure 4.1/4.2):
/// a closed queueing network of workstations (users with think times)
/// submitting transactions to a server whose buffer manager, cluster
/// manager, transaction log, CPU, and disks are fully modelled. This is
/// the PAWS model re-expressed on the `sim` engine.
///
/// The model is three composable layers behind one facade (DESIGN.md §10):
///   - ServerContext    — pure component wiring (core/server_context.h)
///   - TxnPipeline      — the coroutine read/write/recluster primitives
///                        and the cost model (core/txn_pipeline.h)
///   - MeasurementController — warmup/epochs/telemetry and RunResult
///                        assembly (core/measurement.h)
/// EngineeringDbModel wires the three together and preserves the original
/// construct-then-Run() API for tests, examples, benches, and the OCT
/// instrumentation.

namespace oodb::core {

/// One fully wired simulation instance. Construct, call Run() once.
class EngineeringDbModel {
 public:
  explicit EngineeringDbModel(ModelConfig config);
  ~EngineeringDbModel();

  EngineeringDbModel(const EngineeringDbModel&) = delete;
  EngineeringDbModel& operator=(const EngineeringDbModel&) = delete;

  /// Builds the database under the configured clustering policy, runs the
  /// warmup and measured phases, and returns the collected statistics.
  RunResult Run();

  // Component access (examples, tests, and the OCT instrumentation).
  const obj::ObjectGraph& graph() const { return *ctx_.graph; }
  const store::StorageManager& storage() const { return *ctx_.storage; }
  const buffer::BufferPool& buffer() const { return *ctx_.buffer; }
  const io::IoSubsystem& io() const { return *ctx_.io; }
  const txlog::LogManager& log() const { return *ctx_.log; }
  const cluster::ClusterManager& cluster() const { return *ctx_.cluster; }
  const workload::DesignDatabase& database() const { return ctx_.db; }
  const ModelConfig& config() const { return ctx_.config; }
  const obs::MetricsRegistry& metrics() const { return ctx_.metrics; }
  const obs::TraceSink& trace() const { return ctx_.trace; }

  /// The wiring layer itself, for callers composing their own pipelines.
  const ServerContext& context() const { return ctx_; }
  ServerContext& context() { return ctx_; }

 private:
  ServerContext ctx_;
  TxnPipeline pipeline_;
  MeasurementController measurement_;
};

}  // namespace oodb::core

#endif  // SEMCLUST_CORE_ENGINEERING_DB_H_
