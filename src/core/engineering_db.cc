#include "core/engineering_db.h"

#include <utility>

namespace oodb::core {

EngineeringDbModel::EngineeringDbModel(ModelConfig config)
    : ctx_(std::move(config)),
      pipeline_(ctx_),
      measurement_(ctx_, pipeline_) {}

EngineeringDbModel::~EngineeringDbModel() = default;

RunResult EngineeringDbModel::Run() { return measurement_.Run(); }

}  // namespace oodb::core
