#include "core/engineering_db.h"

#include <algorithm>
#include <unordered_set>

#include "cluster/static_clusterer.h"
#include "workload/db_builder.h"

namespace oodb::core {

namespace {
/// How strongly a structural-neighbour boost lifts a page above plain
/// recency, in units of accesses, scaled by the relationship's affinity
/// weight (which is <= ~1).
constexpr double kContextBoostScale = 8.0;
/// Boost applied to prefetched / prefetch-group pages.
constexpr double kPrefetchBoost = 6.0;
/// Probability that reading an object with by-reference inherited
/// attributes dereferences its inheritance source.
constexpr double kInheritanceDerefProbability = 0.5;
}  // namespace

ModelConfig PaperScaleConfig() {
  ModelConfig cfg;
  cfg.database_bytes = 500ull << 20;
  cfg.buffer_pages = 1000;
  cfg.database.target_bytes = cfg.database_bytes;
  return cfg;
}

ModelConfig ScaledConfig() {
  ModelConfig cfg;
  cfg.database.target_bytes = cfg.database_bytes;
  cfg.buffer_pages = cfg.BufferMedium();
  return cfg;
}

ModelConfig TestConfig() {
  ModelConfig cfg;
  cfg.database_bytes = 2ull << 20;
  cfg.database.target_bytes = cfg.database_bytes;
  cfg.buffer_pages = 64;
  cfg.warmup_transactions = 50;
  cfg.measured_transactions = 300;
  return cfg;
}

EngineeringDbModel::EngineeringDbModel(ModelConfig config)
    : config_(std::move(config)),
      trace_(&sim_, obs::TraceCollector::PathFromEnv() != nullptr
                        ? obs::TraceCollector::RingCapacityFromEnv()
                        : 0),
      sampler_(&metrics_, config_.telemetry_interval_s),
      rng_(config_.seed) {
  types_ = workload::RegisterCadTypes(lattice_);
  graph_ = std::make_unique<obj::ObjectGraph>(&lattice_);
  storage_ = std::make_unique<store::StorageManager>(
      config_.page_size_bytes, config_.append_fill_fraction);
  buffer_ = std::make_unique<buffer::BufferPool>(
      config_.buffer_pages, config_.replacement, config_.seed ^ 0xB0FFEB0FF);
  affinity_ = std::make_unique<cluster::AffinityModel>(&lattice_);
  cluster_ = std::make_unique<cluster::ClusterManager>(
      graph_.get(), storage_.get(), affinity_.get(), buffer_.get(),
      config_.clustering);
  io_ = std::make_unique<io::IoSubsystem>(sim_, config_.num_disks,
                                          config_.page_size_bytes,
                                          config_.disk);
  log_ = std::make_unique<txlog::LogManager>(config_.log_buffer_bytes,
                                             config_.page_size_bytes);
  cpu_ = std::make_unique<sim::Resource>(sim_, "cpu", 1);

  // Build the database through the policy under test. The build is the
  // accretion history of the repository, not part of the measured run.
  workload::DatabaseSpec spec = config_.database;
  spec.target_bytes = config_.database_bytes;
  spec.density = config_.workload.density;
  spec.concurrent_streams = config_.num_users;
  spec.seed = config_.seed ^ 0xDBDBDB;
  workload::DbBuilder builder(graph_.get(), cluster_.get(), buffer_.get(),
                              spec);
  db_ = builder.Build(types_);
  OODB_CHECK(!db_.modules.empty());

  if (config_.static_reorganize_after_build) {
    // The DBA's offline alternative: quiesce and repack the whole
    // database by affinity (paper §2.1's static clustering).
    cluster::StaticClusterer reorganizer(graph_.get(), storage_.get(),
                                         affinity_.get());
    reorganizer.Reorganize();
  }
  response_epochs_.resize(
      static_cast<size_t>(std::max(1, config_.measurement_epochs)));

  // Observability is attached only now: the build phase above is the
  // repository's accretion history, not part of the run, and its page
  // traffic would otherwise flood the trace ring before the first
  // transaction. The sink is disabled (capacity 0) unless SEMCLUST_TRACE
  // is set, so these calls cost two compares per event when tracing is off.
  buffer_->set_trace(&trace_);
  io_->set_trace(&trace_);
  log_->set_trace(&trace_);
  cluster_->set_trace(&trace_);

  // Telemetry rides the same after-the-build attachment rule: the sampler
  // starts at the warmup/measured boundary, and each sample re-syncs the
  // mirrored component counters so deltas cover the whole system.
  auditor_ = std::make_unique<obs::PlacementAuditor>(graph_.get(),
                                                     storage_.get());
  if (config_.telemetry_audit_placement) {
    sampler_.set_placement_auditor(auditor_.get());
  }
  sampler_.set_pre_sample_hook([this] { SyncComponentMetrics(); });

  m_txns_ = metrics_.Counter("core.txns");
  m_prefetch_issued_ = metrics_.Counter("core.prefetch.issued");
  m_prefetch_hits_ = metrics_.Counter("core.prefetch.hits");
  m_prefetch_wasted_ = metrics_.Counter("core.prefetch.wasted");
  m_response_s_ = metrics_.Histogram(
      "core.response_s",
      {0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 60.0});

  for (int u = 0; u < config_.num_users; ++u) {
    generators_.push_back(std::make_unique<workload::WorkloadGenerator>(
        graph_.get(), &db_, config_.workload,
        config_.seed * 7919 + static_cast<uint64_t>(u)));
  }
}

EngineeringDbModel::~EngineeringDbModel() = default;

sim::Task EngineeringDbModel::ChargeCpu(double instructions) {
  co_await cpu_->Use(instructions / (config_.cpu_mips * 1e6));
}

sim::Task EngineeringDbModel::ChargeLogFlushes(int flushes) {
  for (int i = 0; i < flushes; ++i) {
    co_await io_->FlushLog();
    co_await ChargeCpu(config_.physical_io_instructions);
  }
}

void EngineeringDbModel::NotePrefetchEviction(
    const buffer::BufferPool::FixResult& fix) {
  if (fix.evicted_page == store::kInvalidPage) return;
  if (prefetched_unused_.erase(fix.evicted_page) == 0) return;
  metrics_.Add(m_prefetch_wasted_);
  trace_.Record(obs::Subsystem::kBuffer,
                obs::TraceEventType::kPrefetchWaste, fix.evicted_page);
}

void EngineeringDbModel::NotePrefetchDemand(store::PageId page) {
  if (prefetched_unused_.erase(page) == 0) return;
  metrics_.Add(m_prefetch_hits_);
  trace_.Record(obs::Subsystem::kBuffer, obs::TraceEventType::kPrefetchHit,
                page);
}

sim::Task EngineeringDbModel::FetchPage(store::PageId page, bool pin) {
  OODB_CHECK_NE(page, store::kInvalidPage);
  NotePrefetchDemand(page);
  if (inflight_.find(page) != inflight_.end()) {
    // A prefetch for this page is on the disk: join it rather than issuing
    // a duplicate read.
    co_await PrefetchJoin(*this, page);
  }
  const auto fix = buffer_->Fix(page);
  NotePrefetchEviction(fix);
  // Pin before any suspension: concurrent processes may otherwise evict
  // the frame while this one waits on the disk.
  if (pin) buffer_->Pin(page);
  if (fix.hit) co_return;
  co_await ChargeCpu(config_.physical_io_instructions);
  if (fix.evicted_dirty) {
    // Worst case (paper §4.1): flush the dirty page before the read.
    co_await io_->Write(fix.evicted_page, io::IoCategory::kDirtyFlush);
    co_await ChargeCpu(config_.physical_io_instructions);
  }
  co_await io_->Read(page, io::IoCategory::kDataRead);
}

void EngineeringDbModel::StartPrefetch(store::PageId page) {
  if (inflight_.find(page) != inflight_.end()) return;
  inflight_.emplace(page, std::vector<std::coroutine_handle<>>{});
  prefetched_unused_.insert(page);
  metrics_.Add(m_prefetch_issued_);
  trace_.Record(obs::Subsystem::kBuffer,
                obs::TraceEventType::kPrefetchIssue, page);
  io_->ReadAsync(page, io::IoCategory::kPrefetchRead,
                 [this, page] { OnPrefetchComplete(page); });
}

void EngineeringDbModel::OnPrefetchComplete(store::PageId page) {
  const auto fix = buffer_->Fix(page);
  NotePrefetchEviction(fix);
  if (!fix.hit && fix.evicted_dirty) {
    io_->WriteAsync(fix.evicted_page, io::IoCategory::kDirtyFlush);
  }
  buffer_->Boost(page, kPrefetchBoost);
  auto it = inflight_.find(page);
  OODB_CHECK(it != inflight_.end());
  std::vector<std::coroutine_handle<>> waiters = std::move(it->second);
  inflight_.erase(it);
  for (auto h : waiters) h.resume();
}

void EngineeringDbModel::PostAccess(obj::ObjectId id) {
  // Context-sensitive replacement: pages holding this object's structural
  // relatives gain priority (paper §2.2).
  if (config_.replacement == buffer::ReplacementPolicy::kContextSensitive) {
    const obj::TypeId type = graph_->object(id).type;
    for (const obj::Edge& e : graph_->object(id).edges) {
      const store::PageId p = storage_->PageOf(e.target);
      if (p == store::kInvalidPage) continue;
      const double w = affinity_->Weight(type, e.kind);
      buffer_->Boost(p, 1.0 + kContextBoostScale * w);
    }
  }

  // Prefetching (paper §2.2): the group follows the user hint or the
  // type's dominant traversal kind.
  if (config_.prefetch == buffer::PrefetchPolicy::kNone) return;
  const buffer::AccessHint hint =
      config_.clustering.use_hints
          ? buffer::AccessHint::For(config_.clustering.hint_kind)
          : buffer::AccessHint::None();
  const auto group = buffer::ComputePrefetchGroup(
      *graph_, *storage_, id, hint, /*config_depth=*/2, /*max_pages=*/8,
      &trace_);
  for (store::PageId p : group.pages) {
    if (buffer_->Contains(p)) {
      buffer_->Boost(p, kPrefetchBoost);
    } else if (config_.prefetch == buffer::PrefetchPolicy::kWithinDb) {
      StartPrefetch(p);
    }
  }
}

sim::Task EngineeringDbModel::AccessObject(obj::ObjectId id,
                                           obj::TypeId from_type,
                                           int nav_kind) {
  ++logical_reads_;
  co_await ChargeCpu(config_.logical_op_instructions);
  if (nav_kind >= 0) {
    affinity_->RecordTraversal(from_type,
                               static_cast<obj::RelKind>(nav_kind));
  }
  const store::PageId page = storage_->PageOf(id);
  if (page != store::kInvalidPage) {
    co_await FetchPage(page);
  }
  PostAccess(id);

  // Dereference by-reference inherited attributes with some probability:
  // the heir's data partially lives with its inheritance source.
  if (rng_.Bernoulli(kInheritanceDerefProbability)) {
    for (const obj::Edge& e : graph_->object(id).edges) {
      if (e.kind == obj::RelKind::kInstanceInheritance &&
          e.dir == obj::Direction::kUp && graph_->IsLive(e.target)) {
        ++logical_reads_;
        affinity_->RecordTraversal(graph_->object(id).type,
                                   obj::RelKind::kInstanceInheritance);
        const store::PageId sp = storage_->PageOf(e.target);
        if (sp != store::kInvalidPage) co_await FetchPage(sp);
        break;  // one dereference is representative
      }
    }
  }
}

sim::Task EngineeringDbModel::ReadQuery(
    const workload::TransactionSpec& spec) {
  const obj::ObjectId target = spec.target;
  if (!graph_->IsLive(target)) co_return;
  const obj::TypeId ttype = graph_->object(target).type;
  co_await AccessObject(target, ttype, -1);

  switch (spec.type) {
    case workload::QueryType::kSimpleLookup:
      break;
    case workload::QueryType::kComponentRetrieval: {
      for (obj::ObjectId c : graph_->Components(target)) {
        if (graph_->IsLive(c)) {
          co_await AccessObject(
              c, ttype, static_cast<int>(obj::RelKind::kConfiguration));
        }
      }
      break;
    }
    case workload::QueryType::kCompositeRetrieval: {
      // Deep retrieval: materialise the whole configuration subtree.
      // Attachments are unvalidated (as in OCT), so the configuration
      // graph may contain cycles: guard with a visited set and a bound.
      constexpr size_t kMaxRetrieval = 512;
      std::vector<obj::ObjectId> stack = graph_->Components(target);
      std::unordered_set<obj::ObjectId> visited{target};
      while (!stack.empty() && visited.size() < kMaxRetrieval) {
        const obj::ObjectId o = stack.back();
        stack.pop_back();
        if (!graph_->IsLive(o) || !visited.insert(o).second) continue;
        co_await AccessObject(
            o, ttype, static_cast<int>(obj::RelKind::kConfiguration));
        for (obj::ObjectId c : graph_->Components(o)) stack.push_back(c);
      }
      break;
    }
    case workload::QueryType::kDescendantVersions: {
      for (obj::ObjectId d : graph_->Descendants(target)) {
        if (graph_->IsLive(d)) {
          co_await AccessObject(
              d, ttype, static_cast<int>(obj::RelKind::kVersionHistory));
        }
      }
      break;
    }
    case workload::QueryType::kAncestorVersions: {
      for (obj::ObjectId a : graph_->Ancestors(target)) {
        if (graph_->IsLive(a)) {
          co_await AccessObject(
              a, ttype, static_cast<int>(obj::RelKind::kVersionHistory));
        }
      }
      break;
    }
    case workload::QueryType::kCorresponding: {
      for (obj::ObjectId c : graph_->Correspondents(target)) {
        if (graph_->IsLive(c)) {
          co_await AccessObject(
              c, ttype, static_cast<int>(obj::RelKind::kCorrespondence));
        }
      }
      break;
    }
    case workload::QueryType::kObjectWrite:
      OODB_CHECK(false);  // handled by WriteQuery
      break;
  }
}

sim::Task EngineeringDbModel::LogAndDirty(txlog::TxnId txn,
                                          store::PageId page,
                                          uint32_t object_size) {
  ++logical_writes_;
  co_await ChargeCpu(config_.logical_op_instructions);
  // The object may have been deleted by a concurrent transaction between
  // target selection and this write; the write then degenerates to a log
  // record with no page touch.
  if (page == store::kInvalidPage) {
    co_await ChargeLogFlushes(log_->LogWrite(txn, page, object_size));
    co_return;
  }
  co_await FetchPage(page, /*pin=*/true);  // read-modify-write
  buffer_->MarkDirty(page);
  buffer_->Unpin(page);
  co_await ChargeLogFlushes(log_->LogWrite(txn, page, object_size));
}

sim::Task EngineeringDbModel::WriteObject(txlog::TxnId txn,
                                          obj::ObjectId id) {
  // Object-level write that tolerates concurrent deletion: resolves the
  // page and size only if the object is still live and placed.
  if (graph_->IsLive(id) && storage_->IsPlaced(id)) {
    co_await LogAndDirty(txn, storage_->PageOf(id), storage_->SizeOf(id));
  } else {
    ++logical_writes_;
    co_await ChargeCpu(config_.logical_op_instructions);
    co_await ChargeLogFlushes(log_->LogWrite(txn, store::kInvalidPage, 64));
  }
}

sim::Task EngineeringDbModel::ChargeExamReads(
    const cluster::PlacementReport& report) {
  // Candidate pages examined on disk: demand reads charged to the writer,
  // and the pages enter the buffer pool (they were just read).
  for (store::PageId p : report.exam_reads) {
    const auto fix = buffer_->Fix(p);
    NotePrefetchEviction(fix);
    if (!fix.hit) {
      if (fix.evicted_dirty) {
        co_await io_->Write(fix.evicted_page, io::IoCategory::kDirtyFlush);
      }
      co_await io_->Read(p, io::IoCategory::kClusterRead);
      co_await ChargeCpu(config_.physical_io_instructions);
    }
  }
}

sim::Task EngineeringDbModel::ChargeSplit(
    txlog::TxnId txn, const cluster::PlacementReport& report) {
  co_await ChargeCpu(
      config_.clustering.split == cluster::SplitPolicy::kExhaustive
          ? config_.split_exhaustive_instructions
          : config_.split_linear_instructions);
  // The newly allocated page is flushed and the change logged
  // (paper §5.1.2: one extra I/O plus one extra log record).
  NotePrefetchEviction(buffer_->Fix(report.split_new_page));
  buffer_->MarkDirty(report.split_new_page);
  co_await io_->Write(report.split_new_page, io::IoCategory::kDataWrite);
  co_await ChargeLogFlushes(log_->LogWrite(
      txn, report.split_new_page, config_.page_size_bytes / 4));
}

sim::Task EngineeringDbModel::ChargePlacement(
    txlog::TxnId txn, const cluster::PlacementReport& report,
    obj::ObjectId placed) {
  co_await ChargeExamReads(report);
  if (report.split) co_await ChargeSplit(txn, report);
  // The write of the placed object itself.
  co_await LogAndDirty(txn, report.page, storage_->SizeOf(placed));
}

sim::Task EngineeringDbModel::ReclusterAfterStructureChange(
    txlog::TxnId txn, obj::ObjectId id) {
  if (config_.clustering.pool == cluster::CandidatePool::kNoClustering) {
    co_return;
  }
  if (!graph_->IsLive(id) || !storage_->IsPlaced(id)) co_return;
  co_await ChargeCpu(config_.cluster_decision_instructions);
  const auto report = cluster_->Recluster(id);
  co_await ChargeExamReads(report);
  if (report.split) co_await ChargeSplit(txn, report);
  if (report.relocated) {
    // Moving the object modifies both its old and its new page.
    const uint32_t size = storage_->SizeOf(id);
    co_await LogAndDirty(txn, report.page, size);
    if (report.old_page != store::kInvalidPage &&
        report.old_page != report.page) {
      co_await LogAndDirty(txn, report.old_page, size);
    }
  }
}

sim::Task EngineeringDbModel::WriteQuery(
    const workload::TransactionSpec& spec, txlog::TxnId txn) {
  workload::DesignDatabase::Module& module = db_.modules[spec.module];
  obj::ObjectId target = spec.target;
  if (!graph_->IsLive(target)) co_return;

  switch (spec.write_kind) {
    case workload::WriteKind::kSimpleUpdate: {
      // A "save edit": the target plus most of its immediate components
      // are rewritten in one transaction (the paper's checkin invokes
      // several updates). Co-located components then share before-imaged
      // pages — the Fig 5.5 mechanism.
      co_await WriteObject(txn, target);
      int updated = 0;
      for (obj::ObjectId c : graph_->Components(target)) {
        if (updated >= 6) break;
        if (!rng_.Bernoulli(0.7)) continue;
        co_await WriteObject(txn, c);
        ++updated;
      }
      break;
    }
    case workload::WriteKind::kStructureWrite: {
      obj::ObjectId other = spec.other;
      if (other == obj::kInvalidObject || !graph_->IsLive(other) ||
          other == target) {
        // Attachment end vanished: degrade to a simple update.
        co_await WriteObject(txn, target);
        break;
      }
      const obj::RelKind kind = rng_.Bernoulli(0.6)
                                    ? obj::RelKind::kConfiguration
                                    : obj::RelKind::kCorrespondence;
      graph_->Relate(target, other, kind);
      if (kind == obj::RelKind::kCorrespondence) {
        module.corresponding.push_back(target);
        module.corresponding.push_back(other);
      } else if (std::find(module.composites.begin(),
                           module.composites.end(),
                           target) == module.composites.end()) {
        module.composites.push_back(target);
      }
      co_await WriteObject(txn, target);
      co_await WriteObject(txn, other);
      // Both endpoints' structures changed: run-time reclustering.
      co_await ReclusterAfterStructureChange(txn, target);
      co_await ReclusterAfterStructureChange(txn, other);
      break;
    }
    case workload::WriteKind::kInsertObject: {
      const obj::DesignObject& parent = graph_->object(target);
      const uint32_t size = std::max<uint32_t>(
          32, static_cast<uint32_t>(
                  rng_.Exponential(config_.database.mean_object_bytes)));
      const obj::ObjectId child = graph_->Create(
          parent.family, parent.version, types_.leaf,
          std::min(size, config_.page_size_bytes / 4));
      graph_->Relate(target, child, obj::RelKind::kConfiguration);
      const auto report = cluster_->PlaceNew(child);
      co_await ChargePlacement(txn, report, child);
      module.objects.push_back(child);
      break;
    }
    case workload::WriteKind::kDeriveVersion: {
      const auto derived = obj::DeriveVersion(*graph_, target,
                                              inherit_model_);
      const auto report = cluster_->PlaceNew(derived.heir);
      co_await ChargePlacement(txn, report, derived.heir);
      module.objects.push_back(derived.heir);
      module.versioned.push_back(target);
      module.versioned.push_back(derived.heir);
      break;
    }
    case workload::WriteKind::kDeleteObject: {
      if (!graph_->Components(target).empty() ||
          !graph_->Descendants(target).empty() || target == module.root) {
        // Keep the catalogue navigable: only leaves are deleted.
        co_await WriteObject(txn, target);
        break;
      }
      co_await WriteObject(txn, target);
      // Re-check after the awaits: a concurrent transaction may have
      // deleted the object first.
      if (graph_->IsLive(target) && storage_->IsPlaced(target)) {
        OODB_CHECK(storage_->Erase(target).ok());
        graph_->Remove(target);
      }
      break;
    }
  }
}

sim::Task EngineeringDbModel::ExecuteTransaction(
    const workload::TransactionSpec& spec) {
  const txlog::TxnId txn = next_txn_++;
  const double start = sim_.now();
  trace_.Record(obs::Subsystem::kCore, obs::TraceEventType::kTxnBegin, txn,
                static_cast<uint64_t>(spec.type));
  log_->Begin(txn);
  if (spec.type == workload::QueryType::kObjectWrite) {
    co_await WriteQuery(spec, txn);
  } else {
    co_await ReadQuery(spec);
  }
  co_await ChargeLogFlushes(
      log_->Commit(txn, config_.force_log_at_commit));
  trace_.Record(obs::Subsystem::kCore, obs::TraceEventType::kTxnEnd, txn,
                static_cast<uint64_t>(spec.type), 0, sim_.now() - start);
}

void EngineeringDbModel::ApplyEpochSchedule(size_t epoch) {
  if (config_.rw_ratio_schedule.empty()) return;
  const size_t i = std::min(epoch, config_.rw_ratio_schedule.size() - 1);
  for (auto& gen : generators_) {
    gen->SetTargetRatio(config_.rw_ratio_schedule[i]);
  }
}

void EngineeringDbModel::ResetMeasurementCounters() {
  io_->ResetCounters();
  buffer_->ResetCounters();
  log_->ResetCounters();
  cluster_->ResetStats();
  metrics_.ResetValues();
  // Pages prefetched during warmup were counted against the warmup issue
  // counter that was just reset; forgetting them keeps the measured-window
  // invariant hits + wasted <= issued.
  prefetched_unused_.clear();
  logical_reads_ = 0;
  logical_writes_ = 0;
}

void EngineeringDbModel::OnTransactionDone(double response_s,
                                           workload::QueryType type) {
  ++completed_txns_;
  if (!measuring_) {
    if (completed_txns_ >=
        static_cast<uint64_t>(config_.warmup_transactions)) {
      measuring_ = true;
      ResetMeasurementCounters();
      ApplyEpochSchedule(0);
      sampler_.StartMeasurement(sim_.now());
    }
    return;
  }
  if (done_) return;  // in-flight stragglers after the quota was reached
  const uint64_t per_epoch = std::max<uint64_t>(
      1, static_cast<uint64_t>(config_.measured_transactions) /
             response_epochs_.size());
  const size_t epoch = std::min(response_epochs_.size() - 1,
                                static_cast<size_t>(measured_txns_ / per_epoch));
  const bool crossed = epoch != current_epoch_;
  if (crossed) {
    // The first transaction of the new epoch just completed: close every
    // epoch crossed (usually one) with a boundary sample *before*
    // recording this transaction, so the boundary delta covers exactly
    // the closed epoch's transactions.
    for (size_t closed = current_epoch_; closed < epoch; ++closed) {
      sampler_.SampleEpochBoundary(sim_.now(),
                                   static_cast<uint32_t>(closed));
    }
    current_epoch_ = epoch;
    ApplyEpochSchedule(epoch);
  }
  metrics_.Add(m_txns_);
  metrics_.Observe(m_response_s_, response_s);
  response_time_.Add(response_s);
  const bool was_write = type == workload::QueryType::kObjectWrite;
  (was_write ? write_response_ : read_response_).Add(response_s);
  response_by_query_[static_cast<size_t>(type)].Add(response_s);
  response_epochs_[epoch].Add(response_s);
  if (!crossed) {
    sampler_.Poll(sim_.now(), static_cast<uint32_t>(epoch));
  }
  ++measured_txns_;
  if (measured_txns_ >=
      static_cast<uint64_t>(config_.measured_transactions)) {
    done_ = true;
  }
}

sim::Task EngineeringDbModel::UserLoop(int user) {
  workload::WorkloadGenerator& gen = *generators_[static_cast<size_t>(user)];
  Rng think_rng(config_.seed * 104729 + static_cast<uint64_t>(user));
  while (!done_) {
    const int session_len = gen.BeginSession();
    for (int t = 0; t < session_len && !done_; ++t) {
      co_await sim::Delay(sim_,
                          think_rng.Exponential(config_.think_time_s));
      if (done_) break;
      const workload::TransactionSpec spec = gen.NextTransaction();
      const uint64_t reads_before = logical_reads_;
      const uint64_t writes_before = logical_writes_;
      const double start = sim_.now();
      co_await ExecuteTransaction(spec);
      gen.RecordOps(logical_reads_ - reads_before,
                    logical_writes_ - writes_before);
      OnTransactionDone(sim_.now() - start, spec.type);
    }
  }
}

void EngineeringDbModel::SyncComponentMetrics() {
  if (!metrics_.enabled()) return;
  // Registration is idempotent (re-registering returns the existing
  // handle) and the values are absolute cumulative counts written with
  // set-semantics, so syncing at every telemetry sample and again at end
  // of run is safe.
  metrics_.SetCounter(metrics_.Counter("buffer.hits"), buffer_->hits());
  metrics_.SetCounter(metrics_.Counter("buffer.misses"), buffer_->misses());
  metrics_.SetCounter(metrics_.Counter("buffer.evictions"),
                      buffer_->evictions());
  metrics_.SetCounter(metrics_.Counter("buffer.dirty_evictions"),
                      buffer_->dirty_evictions());
  for (int c = 0; c < io::kNumIoCategories; ++c) {
    const auto cat = static_cast<io::IoCategory>(c);
    metrics_.SetCounter(
        metrics_.Counter(std::string("io.") + io::IoCategoryName(cat)),
        io_->physical_count(cat));
  }
  metrics_.SetCounter(metrics_.Counter("log.records"),
                      log_->records_appended());
  metrics_.SetCounter(metrics_.Counter("log.before_images"),
                      log_->before_images());
  metrics_.SetCounter(metrics_.Counter("log.flushes"), log_->flush_count());
  const cluster::ClusterStats& cs = cluster_->stats();
  metrics_.SetCounter(metrics_.Counter("cluster.placements"), cs.placements);
  metrics_.SetCounter(metrics_.Counter("cluster.reclusterings"),
                      cs.reclusterings);
  metrics_.SetCounter(metrics_.Counter("cluster.relocations"),
                      cs.relocations);
  metrics_.SetCounter(metrics_.Counter("cluster.splits"), cs.splits);
  metrics_.SetCounter(metrics_.Counter("cluster.exam_reads"),
                      cs.exam_reads);
  metrics_.SetCounter(metrics_.Counter("cluster.objects_moved_by_splits"),
                      cs.objects_moved_by_splits);
  metrics_.SetCounter(metrics_.Counter("cluster.split_search_steps"),
                      cs.split_search_steps);
  metrics_.Set(metrics_.Gauge("cluster.split_broken_cost"),
               cs.split_broken_cost);
  metrics_.SetCounter(metrics_.Counter("sim.events_processed"),
                      sim_.events_processed());
  metrics_.SetCounter(metrics_.Counter("sim.events_scheduled"),
                      sim_.events_scheduled());
  metrics_.Set(metrics_.Gauge("io.mean_disk_utilization"),
               io_->MeanUtilization());
  metrics_.Set(metrics_.Gauge("cpu.utilization"), cpu_->Utilization());
  metrics_.Set(metrics_.Gauge("sim.duration_s"), sim_.now());
}

RunResult EngineeringDbModel::Run() {
  const double start_time = sim_.now();
  for (int u = 0; u < config_.num_users; ++u) {
    sim::Spawn(UserLoop(u));
  }
  sim_.Run();

  RunResult result;
  result.response_time = response_time_;
  result.read_response = read_response_;
  result.write_response = write_response_;
  result.response_by_query = response_by_query_;
  result.response_epochs = response_epochs_;
  result.transactions = measured_txns_;
  result.logical_reads = logical_reads_;
  result.logical_writes = logical_writes_;
  result.data_reads = io_->physical_count(io::IoCategory::kDataRead);
  result.dirty_flushes = io_->physical_count(io::IoCategory::kDirtyFlush);
  result.log_flush_ios = io_->physical_count(io::IoCategory::kLogWrite);
  result.cluster_exam_reads =
      io_->physical_count(io::IoCategory::kClusterRead);
  result.prefetch_reads =
      io_->physical_count(io::IoCategory::kPrefetchRead);
  result.split_writes = io_->physical_count(io::IoCategory::kDataWrite);
  result.buffer_hit_ratio = buffer_->HitRatio();
  result.log_before_images = log_->before_images();
  result.cluster_stats = cluster_->stats();
  result.mean_disk_utilization = io_->MeanUtilization();
  result.cpu_utilization = cpu_->Utilization();
  result.sim_duration_s = sim_.now() - start_time;
  result.achieved_rw_ratio =
      result.logical_writes == 0
          ? static_cast<double>(result.logical_reads)
          : static_cast<double>(result.logical_reads) /
                static_cast<double>(result.logical_writes);
  result.prefetch_issued = metrics_.value(m_prefetch_issued_);
  result.prefetch_hits = metrics_.value(m_prefetch_hits_);
  result.prefetch_wasted = metrics_.value(m_prefetch_wasted_);
  result.db_pages = storage_->page_count();
  result.db_objects = graph_->live_count();
  // Close the final epoch. If the warmup quota was never reached (tiny
  // smoke configs), start measurement now so the series still carries one
  // end-of-run sample.
  if (!measuring_) sampler_.StartMeasurement(sim_.now());
  sampler_.SampleFinal(sim_.now(), static_cast<uint32_t>(current_epoch_));
  SyncComponentMetrics();
  result.metrics = metrics_.Snapshot();
  result.series = sampler_.series();
  if (trace_.enabled()) {
    obs::TraceCollector::Global().Collect(
        config_.cell_index,
        config_.clustering.Label() + "/" + config_.workload.Label(),
        trace_);
  }
  return result;
}

}  // namespace oodb::core
