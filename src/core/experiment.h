#ifndef SEMCLUST_CORE_EXPERIMENT_H_
#define SEMCLUST_CORE_EXPERIMENT_H_

#include <string>
#include <vector>

#include "core/engineering_db.h"
#include "core/model_config.h"

/// \file
/// Experiment-grid helpers shared by the benchmark harness: the paper's
/// standard operating levels for workloads (Figs 5.1-5.8 x-axes), the five
/// clustering policies, and the six buffering configurations of Fig 5.11.

namespace oodb::core {

/// Runs one fully configured simulation.
RunResult RunCell(const ModelConfig& config);

/// The nine workload cells {low3,med5,hi10} x {5,10,100} in the paper's
/// x-axis order ("low3-5" ... "hi10-100").
std::vector<workload::WorkloadConfig> StandardWorkloadGrid();

/// Workload cells for one fixed read/write ratio (density sweep).
std::vector<workload::WorkloadConfig> DensitySweep(double rw_ratio);

/// Workload cells for one fixed density (read/write-ratio sweep).
std::vector<workload::WorkloadConfig> RatioSweep(
    workload::StructureDensity density);

/// The five clustering policies of Figure 5.1: No_Clustering,
/// Cluster_within_Buffer, 2_IO_limit, 10_IO_limit, No_limit.
/// `split` applies to every clustering policy (ignored by No_Clustering).
std::vector<cluster::ClusterConfig> ClusteringPolicyLevels(
    cluster::SplitPolicy split = cluster::SplitPolicy::kNoSplit);

/// One replacement x prefetch configuration of Figure 5.11.
struct BufferingLevel {
  buffer::ReplacementPolicy replacement;
  buffer::PrefetchPolicy prefetch;
  std::string label;  // paper's labels: C_p_DB, C_p_buff, R_p_DB, ...
};

/// The six buffering configurations reported in Figure 5.11.
std::vector<BufferingLevel> BufferingLevels();

/// All nine replacement x prefetch combinations (Figs 5.12-5.14).
std::vector<BufferingLevel> AllBufferingCombinations();

/// Applies a workload to a config (sets F and G).
ModelConfig WithWorkload(ModelConfig base,
                         const workload::WorkloadConfig& w);

}  // namespace oodb::core

#endif  // SEMCLUST_CORE_EXPERIMENT_H_
