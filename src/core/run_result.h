#ifndef SEMCLUST_CORE_RUN_RESULT_H_
#define SEMCLUST_CORE_RUN_RESULT_H_

#include <array>
#include <cstdint>
#include <vector>

#include "cluster/cluster_manager.h"
#include "obs/metrics.h"
#include "obs/span_profiler.h"
#include "obs/time_series.h"
#include "util/stats.h"
#include "workload/query.h"

/// \file
/// The statistics one simulation run reports — assembled by the
/// MeasurementController and returned through the EngineeringDbModel
/// facade. Split out of engineering_db.h so downstream consumers
/// (bench reporting, the experiment runner) can depend on the result
/// shape without pulling in the whole model wiring.

namespace oodb::core {

/// Everything one run reports.
struct RunResult {
  /// Per-transaction response time over the measured phase (seconds).
  StreamingStats response_time;
  StreamingStats read_response;
  StreamingStats write_response;

  uint64_t transactions = 0;
  uint64_t logical_reads = 0;
  uint64_t logical_writes = 0;

  /// Response time broken down by the seven query types (paper §4.1),
  /// indexed by workload::QueryType.
  std::array<StreamingStats, workload::kNumQueryTypes> response_by_query;
  /// Response time per measurement epoch (config.measurement_epochs).
  std::vector<StreamingStats> response_epochs;

  // Physical I/O by purpose (measured phase).
  uint64_t data_reads = 0;
  uint64_t dirty_flushes = 0;
  uint64_t log_flush_ios = 0;
  uint64_t cluster_exam_reads = 0;
  uint64_t prefetch_reads = 0;
  uint64_t split_writes = 0;

  double buffer_hit_ratio = 0;
  uint64_t log_before_images = 0;
  cluster::ClusterStats cluster_stats;

  double mean_disk_utilization = 0;
  double cpu_utilization = 0;
  double sim_duration_s = 0;
  double achieved_rw_ratio = 0;

  // Prefetch effectiveness (measured phase): pages whose asynchronous read
  // was issued, absorbed a later demand access, or was evicted unused.
  uint64_t prefetch_issued = 0;
  uint64_t prefetch_hits = 0;
  uint64_t prefetch_wasted = 0;

  size_t db_pages = 0;
  size_t db_objects = 0;

  // Cross-shard traffic (measured phase; all zero when shards = 1). A
  // fetch is remote when the executing transaction's home shard is not
  // the accessed object's owner; the fraction is remote / (local +
  // remote) object-page fetches.
  uint64_t shard_local_fetches = 0;
  uint64_t shard_remote_fetches = 0;
  uint64_t shard_remote_writes = 0;
  double remote_fetch_fraction = 0;

  // Concurrency control (measured phase; all zero when ModelConfig::cc is
  // off). `cc_deadlock_timeouts` counts lock waits resolved by the
  // deadlock wait-timeout; `cc_abort_rate` is aborted attempts over all
  // attempts (committed transactions + aborted attempts).
  bool cc_enabled = false;
  uint64_t cc_lock_grants = 0;
  uint64_t cc_lock_waits = 0;
  uint64_t cc_deadlock_timeouts = 0;
  uint64_t cc_latch_waits = 0;
  uint64_t cc_txn_aborts = 0;
  uint64_t cc_txn_retries = 0;
  uint64_t cc_txn_giveups = 0;
  uint64_t cc_rollback_pages = 0;
  double cc_lock_wait_time_s = 0;
  double cc_abort_rate = 0;

  /// The cell's full metrics-registry state at the end of the measured
  /// phase (empty when SEMCLUST_METRICS=0).
  obs::MetricsSnapshot metrics;

  /// Simulated-time telemetry over the measured phase: metric deltas and
  /// placement-quality audits per sample (DESIGN.md §9). Always has at
  /// least the final epoch-boundary sample.
  obs::TimeSeries series;

  /// Exact per-kind response-time phase breakdown over the measured phase
  /// (DESIGN.md §14). Empty unless `config.profile_spans`.
  std::vector<obs::SpanKindBreakdown> span_breakdown;

  uint64_t total_physical_ios() const {
    return data_reads + dirty_flushes + log_flush_ios + cluster_exam_reads +
           prefetch_reads + split_writes;
  }
};

}  // namespace oodb::core

#endif  // SEMCLUST_CORE_RUN_RESULT_H_
