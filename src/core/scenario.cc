#include "core/scenario.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "core/experiment.h"
#include "core/policy_registry.h"
#include "util/json_reader.h"
#include "util/json_writer.h"

namespace oodb::core {

namespace {

const PolicyRegistry& Reg() { return PolicyRegistry::Global(); }

Status Err(std::string what) {
  return Status::InvalidArgument("scenario: " + std::move(what));
}

Status TypeErr(const std::string& key, const char* want) {
  return Err("\"" + key + "\" must be " + want);
}

StatusOr<double> AsNumber(const JsonValue& v, const std::string& key) {
  if (!v.is_number()) return TypeErr(key, "a number");
  return v.number_value();
}

StatusOr<int> AsInt(const JsonValue& v, const std::string& key) {
  if (!v.is_number()) return TypeErr(key, "an integer");
  return static_cast<int>(v.int_value());
}

StatusOr<uint64_t> AsUint(const JsonValue& v, const std::string& key) {
  if (!v.is_number()) return TypeErr(key, "a non-negative integer");
  return v.uint_value();
}

StatusOr<bool> AsBool(const JsonValue& v, const std::string& key) {
  if (!v.is_bool()) return TypeErr(key, "a boolean (true/false)");
  return v.bool_value();
}

StatusOr<std::string> AsString(const JsonValue& v, const std::string& key) {
  if (!v.is_string()) return TypeErr(key, "a string");
  return v.string_value();
}

Status UnknownName(const std::string& key, PolicyAxis axis,
                   const std::string& got) {
  return Err("\"" + key + "\": unknown " + std::string(PolicyAxisName(axis)) +
             " policy \"" + got + "\"; known: " + Reg().KnownNames(axis));
}

StatusOr<buffer::ReplacementPolicy> ResolveReplacement(
    const JsonValue& v, const std::string& key) {
  auto name = AsString(v, key);
  if (!name.ok()) return name.status();
  const auto p = Reg().Replacement(*name);
  if (!p) return UnknownName(key, PolicyAxis::kReplacement, *name);
  return *p;
}

StatusOr<buffer::PrefetchPolicy> ResolvePrefetch(const JsonValue& v,
                                                 const std::string& key) {
  auto name = AsString(v, key);
  if (!name.ok()) return name.status();
  const auto p = Reg().Prefetch(*name);
  if (!p) return UnknownName(key, PolicyAxis::kPrefetch, *name);
  return *p;
}

StatusOr<cluster::CandidatePool> ResolvePool(const JsonValue& v,
                                             const std::string& key) {
  auto name = AsString(v, key);
  if (!name.ok()) return name.status();
  const auto p = Reg().CandidatePool(*name);
  if (!p) return UnknownName(key, PolicyAxis::kCandidatePool, *name);
  return *p;
}

StatusOr<cluster::SplitPolicy> ResolveSplit(const JsonValue& v,
                                            const std::string& key) {
  auto name = AsString(v, key);
  if (!name.ok()) return name.status();
  const auto p = Reg().Split(*name);
  if (!p) return UnknownName(key, PolicyAxis::kSplit, *name);
  return *p;
}

StatusOr<workload::StructureDensity> ResolveDensity(const JsonValue& v,
                                                    const std::string& key) {
  auto name = AsString(v, key);
  if (!name.ok()) return name.status();
  const auto p = Reg().Density(*name);
  if (!p) return UnknownName(key, PolicyAxis::kDensity, *name);
  return *p;
}

StatusOr<obj::RelKind> ResolveRelKind(const JsonValue& v,
                                      const std::string& key) {
  auto name = AsString(v, key);
  if (!name.ok()) return name.status();
  const auto p = Reg().Relationship(*name);
  if (!p) return UnknownName(key, PolicyAxis::kRelKind, *name);
  return *p;
}

StatusOr<ocb::RefLocality> ResolveOcbLocality(const JsonValue& v,
                                              const std::string& key) {
  auto name = AsString(v, key);
  if (!name.ok()) return name.status();
  const auto p = Reg().OcbLocality(*name);
  if (!p) return UnknownName(key, PolicyAxis::kOcbLocality, *name);
  return *p;
}

StatusOr<dyn::PolicyKind> ResolveDynamic(const JsonValue& v,
                                         const std::string& key) {
  auto name = AsString(v, key);
  if (!name.ok()) return name.status();
  const auto p = Reg().Dynamic(*name);
  if (!p) return UnknownName(key, PolicyAxis::kDynamic, *name);
  return *p;
}

StatusOr<ShardPlacement> ResolveShardPlacement(const JsonValue& v,
                                               const std::string& key) {
  auto name = AsString(v, key);
  if (!name.ok()) return name.status();
  const auto p = Reg().ShardPlacementOf(*name);
  if (!p) return UnknownName(key, PolicyAxis::kShardPlacement, *name);
  return *p;
}

StatusOr<ArrivalProcess> ResolveArrival(const JsonValue& v,
                                        const std::string& key) {
  auto name = AsString(v, key);
  if (!name.ok()) return name.status();
  const auto p = Reg().Arrival(*name);
  if (!p) return UnknownName(key, PolicyAxis::kArrival, *name);
  return *p;
}

/// The "concurrency" config section (DESIGN.md §16). The cc_* knobs are
/// only legal alongside "enabled": true — the same inert-knob guard as
/// OCB keys without "kind" and dyn keys without "dynamic" — so a typo
/// can't silently leave the cell without the lock manager.
Status ParseConcurrencySection(const JsonValue& obj, cc::CcConfig& cc) {
  if (!obj.is_object()) return TypeErr("config.concurrency", "an object");
  std::string first_cc_key;
  for (const auto& [key, v] : obj.members()) {
    const std::string ctx = "config.concurrency." + key;
    if (key == "enabled") {
      const auto b = AsBool(v, ctx);
      OODB_RETURN_IF_ERROR(b.status());
      cc.enabled = *b;
    } else if (key == "cc_lock_timeout_s") {
      const auto n = AsNumber(v, ctx);
      OODB_RETURN_IF_ERROR(n.status());
      cc.lock_timeout_s = *n;
      if (first_cc_key.empty()) first_cc_key = key;
    } else if (key == "cc_max_retries") {
      const auto n = AsInt(v, ctx);
      OODB_RETURN_IF_ERROR(n.status());
      cc.max_retries = *n;
      if (first_cc_key.empty()) first_cc_key = key;
    } else if (key == "cc_backoff_base_s") {
      const auto n = AsNumber(v, ctx);
      OODB_RETURN_IF_ERROR(n.status());
      cc.backoff_base_s = *n;
      if (first_cc_key.empty()) first_cc_key = key;
    } else if (key == "cc_backoff_cap_s") {
      const auto n = AsNumber(v, ctx);
      OODB_RETURN_IF_ERROR(n.status());
      cc.backoff_cap_s = *n;
      if (first_cc_key.empty()) first_cc_key = key;
    } else if (key == "cc_page_latches") {
      const auto b = AsBool(v, ctx);
      OODB_RETURN_IF_ERROR(b.status());
      cc.page_latches = *b;
      if (first_cc_key.empty()) first_cc_key = key;
    } else {
      return Err("config.concurrency: unknown key \"" + key +
                 "\" (known: enabled, cc_lock_timeout_s, cc_max_retries, "
                 "cc_backoff_base_s, cc_backoff_cap_s, cc_page_latches)");
    }
  }
  if (!first_cc_key.empty() && !cc.enabled) {
    return Err("config.concurrency: \"" + first_cc_key +
               "\" is a concurrency-control knob; add \"enabled\": true "
               "to switch the lock manager on");
  }
  return Status::Ok();
}

/// A clustering entry: a bare pool name, or an object overriding fields of
/// `from` (so a split policy set in "config" carries into sweep levels).
StatusOr<cluster::ClusterConfig> ParseClusterEntry(
    const JsonValue& v, cluster::ClusterConfig from, const std::string& ctx) {
  if (v.is_string()) {
    const auto pool = ResolvePool(v, ctx);
    if (!pool.ok()) return pool.status();
    from.pool = *pool;
    return from;
  }
  if (!v.is_object()) return TypeErr(ctx, "a pool name or an object");
  // Dynamic re-clustering knobs only make sense under a DSTC/OPCF policy;
  // setting one without "dynamic" is an error (same guard as OCB knobs
  // without "kind": "ocb"), so a typo can't silently leave the cell static.
  std::string first_dyn_key;
  for (const auto& [key, value] : v.members()) {
    const std::string sub = ctx + "." + key;
    if (key == "pool") {
      const auto pool = ResolvePool(value, sub);
      if (!pool.ok()) return pool.status();
      from.pool = *pool;
    } else if (key == "io_limit") {
      const auto n = AsInt(value, sub);
      if (!n.ok()) return n.status();
      from.io_limit = *n;
    } else if (key == "split") {
      const auto split = ResolveSplit(value, sub);
      if (!split.ok()) return split.status();
      from.split = *split;
    } else if (key == "use_hints") {
      const auto b = AsBool(value, sub);
      if (!b.ok()) return b.status();
      from.use_hints = *b;
    } else if (key == "hint_kind") {
      const auto kind = ResolveRelKind(value, sub);
      if (!kind.ok()) return kind.status();
      from.hint_kind = *kind;
    } else if (key == "hint_boost") {
      const auto boost = AsNumber(value, sub);
      if (!boost.ok()) return boost.status();
      from.hint_boost = *boost;
    } else if (key == "dynamic") {
      const auto p = ResolveDynamic(value, sub);
      if (!p.ok()) return p.status();
      from.dynamic.policy = *p;
    } else if (key == "dyn_observation_period") {
      const auto n = AsInt(value, sub);
      if (!n.ok()) return n.status();
      from.dynamic.observation_period = *n;
      if (first_dyn_key.empty()) first_dyn_key = key;
    } else if (key == "dyn_heat_decay") {
      const auto r = AsNumber(value, sub);
      if (!r.ok()) return r.status();
      from.dynamic.heat_decay = *r;
      if (first_dyn_key.empty()) first_dyn_key = key;
    } else if (key == "dyn_max_tracked_objects") {
      const auto n = AsInt(value, sub);
      if (!n.ok()) return n.status();
      from.dynamic.max_tracked_objects = *n;
      if (first_dyn_key.empty()) first_dyn_key = key;
    } else if (key == "dyn_max_tracked_links") {
      const auto n = AsInt(value, sub);
      if (!n.ok()) return n.status();
      from.dynamic.max_tracked_links = *n;
      if (first_dyn_key.empty()) first_dyn_key = key;
    } else if (key == "dyn_trigger_threshold") {
      const auto r = AsNumber(value, sub);
      if (!r.ok()) return r.status();
      from.dynamic.trigger_threshold = *r;
      if (first_dyn_key.empty()) first_dyn_key = key;
    } else if (key == "dyn_unit_size") {
      const auto n = AsInt(value, sub);
      if (!n.ok()) return n.status();
      from.dynamic.max_unit_size = *n;
      if (first_dyn_key.empty()) first_dyn_key = key;
    } else if (key == "dyn_max_moves") {
      const auto n = AsInt(value, sub);
      if (!n.ok()) return n.status();
      from.dynamic.max_moves_per_txn = *n;
      if (first_dyn_key.empty()) first_dyn_key = key;
    } else if (key == "opcf_watermark") {
      const auto r = AsNumber(value, sub);
      if (!r.ok()) return r.status();
      from.dynamic.opcf_queue_watermark = *r;
      if (first_dyn_key.empty()) first_dyn_key = key;
    } else if (key == "opcf_batch") {
      const auto n = AsInt(value, sub);
      if (!n.ok()) return n.status();
      from.dynamic.opcf_batch = *n;
      if (first_dyn_key.empty()) first_dyn_key = key;
    } else {
      return Err(ctx + ": unknown key \"" + key +
                 "\" (known: pool, io_limit, split, use_hints, hint_kind, "
                 "hint_boost, dynamic, dyn_observation_period, "
                 "dyn_heat_decay, dyn_max_tracked_objects, "
                 "dyn_max_tracked_links, dyn_trigger_threshold, "
                 "dyn_unit_size, dyn_max_moves, opcf_watermark, opcf_batch)");
    }
  }
  if (!first_dyn_key.empty() && !from.dynamic.enabled()) {
    return Err(ctx + ": \"" + first_dyn_key +
               "\" is a dynamic re-clustering knob; add \"dynamic\": "
               "\"DSTC\" or \"OPCF\" to enable the policy");
  }
  return from;
}

/// A workload entry: an object overriding density / rw_ratio of `from`,
/// plus the OCB section — `"kind": "ocb"` selects the generic benchmark
/// and unlocks its knobs (setting an OCB knob without the kind is an
/// error, so a typo can't silently leave the cell on the engineering
/// workload).
StatusOr<WorkloadEntry> ParseWorkloadEntry(const JsonValue& v,
                                           WorkloadEntry from,
                                           const std::string& ctx) {
  if (!v.is_object()) return TypeErr(ctx, "an object");
  std::string kind;
  std::string first_ocb_key;
  for (const auto& [key, value] : v.members()) {
    const std::string sub = ctx + "." + key;
    if (key == "kind") {
      const auto s = AsString(value, sub);
      if (!s.ok()) return s.status();
      if (*s != "oct" && *s != "ocb") {
        return Err("\"" + sub + "\": unknown workload kind \"" + *s +
                   "\"; known: oct, ocb");
      }
      kind = *s;
    } else if (key == "density") {
      const auto d = ResolveDensity(value, sub);
      if (!d.ok()) return d.status();
      from.oct.density = *d;
    } else if (key == "rw_ratio") {
      const auto r = AsNumber(value, sub);
      if (!r.ok()) return r.status();
      from.oct.read_write_ratio = *r;
    } else if (key == "classes") {
      const auto n = AsInt(value, sub);
      if (!n.ok()) return n.status();
      from.ocb.classes = *n;
      if (first_ocb_key.empty()) first_ocb_key = key;
    } else if (key == "hierarchy_depth") {
      const auto n = AsInt(value, sub);
      if (!n.ok()) return n.status();
      from.ocb.hierarchy_depth = *n;
      if (first_ocb_key.empty()) first_ocb_key = key;
    } else if (key == "instances") {
      const auto n = AsInt(value, sub);
      if (!n.ok()) return n.status();
      from.ocb.instances = *n;
      if (first_ocb_key.empty()) first_ocb_key = key;
    } else if (key == "refs_per_object") {
      const auto n = AsInt(value, sub);
      if (!n.ok()) return n.status();
      from.ocb.refs_per_object = *n;
      if (first_ocb_key.empty()) first_ocb_key = key;
    } else if (key == "locality") {
      const auto l = ResolveOcbLocality(value, sub);
      if (!l.ok()) return l.status();
      from.ocb.locality = *l;
      if (first_ocb_key.empty()) first_ocb_key = key;
    } else if (key == "zipf_theta") {
      const auto r = AsNumber(value, sub);
      if (!r.ok()) return r.status();
      from.ocb.zipf_theta = *r;
      if (first_ocb_key.empty()) first_ocb_key = key;
    } else if (key == "gaussian_window") {
      const auto r = AsNumber(value, sub);
      if (!r.ok()) return r.status();
      from.ocb.gaussian_window = *r;
      if (first_ocb_key.empty()) first_ocb_key = key;
    } else if (key == "base_object_bytes") {
      const auto n = AsUint(value, sub);
      if (!n.ok()) return n.status();
      from.ocb.base_object_bytes = static_cast<uint32_t>(*n);
      if (first_ocb_key.empty()) first_ocb_key = key;
    } else if (key == "inheritance_fraction") {
      const auto r = AsNumber(value, sub);
      if (!r.ok()) return r.status();
      from.ocb.inheritance_fraction = *r;
      if (first_ocb_key.empty()) first_ocb_key = key;
    } else if (key == "interleaved_read_probability") {
      const auto r = AsNumber(value, sub);
      if (!r.ok()) return r.status();
      from.ocb.interleaved_read_probability = *r;
      if (first_ocb_key.empty()) first_ocb_key = key;
    } else if (key == "partitions") {
      const auto n = AsInt(value, sub);
      if (!n.ok()) return n.status();
      from.ocb.partitions = *n;
      if (first_ocb_key.empty()) first_ocb_key = key;
    } else if (key == "set_lookup_size") {
      const auto n = AsInt(value, sub);
      if (!n.ok()) return n.status();
      from.ocb.set_lookup_size = *n;
      if (first_ocb_key.empty()) first_ocb_key = key;
    } else if (key == "traversal_depth") {
      const auto n = AsInt(value, sub);
      if (!n.ok()) return n.status();
      from.ocb.traversal_depth = *n;
      if (first_ocb_key.empty()) first_ocb_key = key;
    } else if (key == "read_mix") {
      if (!value.is_array() || value.items().size() != from.ocb.read_mix.size()) {
        return TypeErr(sub, "an array of 4 numbers (set lookup, simple, "
                            "hierarchy, stochastic)");
      }
      for (size_t i = 0; i < from.ocb.read_mix.size(); ++i) {
        const auto r =
            AsNumber(value.items()[i], sub + "[" + std::to_string(i) + "]");
        if (!r.ok()) return r.status();
        from.ocb.read_mix[i] = *r;
      }
      if (first_ocb_key.empty()) first_ocb_key = key;
    } else if (key == "churn_probability") {
      const auto r = AsNumber(value, sub);
      if (!r.ok()) return r.status();
      from.ocb.churn_probability = *r;
      if (first_ocb_key.empty()) first_ocb_key = key;
    } else if (key == "churn_burst_length") {
      const auto n = AsInt(value, sub);
      if (!n.ok()) return n.status();
      from.ocb.churn_burst_length = *n;
      if (first_ocb_key.empty()) first_ocb_key = key;
    } else if (key == "churn_cross_partition") {
      const auto r = AsNumber(value, sub);
      if (!r.ok()) return r.status();
      from.ocb.churn_cross_partition = *r;
      if (first_ocb_key.empty()) first_ocb_key = key;
    } else {
      return Err(ctx + ": unknown key \"" + key +
                 "\" (known: kind, density, rw_ratio, classes, "
                 "hierarchy_depth, instances, refs_per_object, locality, "
                 "zipf_theta, gaussian_window, base_object_bytes, "
                 "inheritance_fraction, interleaved_read_probability, "
                 "partitions, set_lookup_size, traversal_depth, read_mix, "
                 "churn_probability, churn_burst_length, "
                 "churn_cross_partition)");
    }
  }
  if (kind == "ocb") {
    from.ocb.enabled = true;
  } else if (kind == "oct") {
    from.ocb.enabled = false;
  } else if (!first_ocb_key.empty() && !from.ocb.enabled) {
    return Err(ctx + ": \"" + first_ocb_key +
               "\" is an OCB knob; add \"kind\": \"ocb\" to select the OCB "
               "workload");
  }
  return from;
}

StatusOr<size_t> ResolveBufferLevel(const ModelConfig& cfg,
                                    const std::string& level,
                                    const std::string& ctx) {
  if (level == "small") return cfg.BufferSmall();
  if (level == "medium") return cfg.BufferMedium();
  if (level == "large") return cfg.BufferLarge();
  return Err("\"" + ctx + "\": unknown buffer level \"" + level +
             "\"; known: small, medium, large");
}

Status ParseConfigSection(const JsonValue& obj, ModelConfig& cfg) {
  if (!obj.is_object()) return TypeErr("config", "an object");
  std::string buffer_level;
  bool buffer_pages_set = false;
  bool span_exemplars_set = false;
  // Sharding knobs only make sense with an explicit shard count; setting
  // one without "shards" is an error (same guard as OCB knobs without
  // "kind" and dyn knobs without "dynamic"), so a typo can't silently
  // leave the cell on the single-server core.
  bool shards_set = false;
  std::string first_shard_key;
  // The open-arrival rate only makes sense with "arrival": "Open" (the
  // closed loop has no arrival rate), same gate as the knobs above.
  bool arrival_rate_set = false;
  for (const auto& [key, v] : obj.members()) {
    const std::string ctx = "config." + key;
    if (key == "database_bytes") {
      const auto n = AsUint(v, ctx);
      OODB_RETURN_IF_ERROR(n.status());
      cfg.database_bytes = *n;
    } else if (key == "page_size_bytes") {
      const auto n = AsUint(v, ctx);
      OODB_RETURN_IF_ERROR(n.status());
      cfg.page_size_bytes = static_cast<uint32_t>(*n);
    } else if (key == "append_fill_fraction") {
      const auto n = AsNumber(v, ctx);
      OODB_RETURN_IF_ERROR(n.status());
      cfg.append_fill_fraction = *n;
    } else if (key == "num_users") {
      const auto n = AsInt(v, ctx);
      OODB_RETURN_IF_ERROR(n.status());
      cfg.num_users = *n;
    } else if (key == "num_disks") {
      const auto n = AsInt(v, ctx);
      OODB_RETURN_IF_ERROR(n.status());
      cfg.num_disks = *n;
    } else if (key == "think_time_s") {
      const auto n = AsNumber(v, ctx);
      OODB_RETURN_IF_ERROR(n.status());
      cfg.think_time_s = *n;
    } else if (key == "buffer_pages") {
      const auto n = AsUint(v, ctx);
      OODB_RETURN_IF_ERROR(n.status());
      cfg.buffer_pages = static_cast<size_t>(*n);
      buffer_pages_set = true;
    } else if (key == "buffer_level") {
      const auto s = AsString(v, ctx);
      OODB_RETURN_IF_ERROR(s.status());
      buffer_level = *s;
    } else if (key == "replacement") {
      const auto p = ResolveReplacement(v, ctx);
      OODB_RETURN_IF_ERROR(p.status());
      cfg.replacement = *p;
    } else if (key == "prefetch") {
      const auto p = ResolvePrefetch(v, ctx);
      OODB_RETURN_IF_ERROR(p.status());
      cfg.prefetch = *p;
    } else if (key == "warmup_transactions") {
      const auto n = AsInt(v, ctx);
      OODB_RETURN_IF_ERROR(n.status());
      cfg.warmup_transactions = *n;
    } else if (key == "measured_transactions") {
      const auto n = AsInt(v, ctx);
      OODB_RETURN_IF_ERROR(n.status());
      cfg.measured_transactions = *n;
    } else if (key == "measurement_epochs") {
      const auto n = AsInt(v, ctx);
      OODB_RETURN_IF_ERROR(n.status());
      cfg.measurement_epochs = *n;
    } else if (key == "telemetry_interval_s") {
      const auto n = AsNumber(v, ctx);
      OODB_RETURN_IF_ERROR(n.status());
      cfg.telemetry_interval_s = *n;
    } else if (key == "telemetry_audit_placement") {
      const auto b = AsBool(v, ctx);
      OODB_RETURN_IF_ERROR(b.status());
      cfg.telemetry_audit_placement = *b;
    } else if (key == "rw_ratio_schedule") {
      if (!v.is_array()) return TypeErr(ctx, "an array of numbers");
      cfg.rw_ratio_schedule.clear();
      for (size_t i = 0; i < v.items().size(); ++i) {
        const auto n =
            AsNumber(v.items()[i], ctx + "[" + std::to_string(i) + "]");
        OODB_RETURN_IF_ERROR(n.status());
        cfg.rw_ratio_schedule.push_back(*n);
      }
    } else if (key == "static_reorganize_after_build") {
      const auto b = AsBool(v, ctx);
      OODB_RETURN_IF_ERROR(b.status());
      cfg.static_reorganize_after_build = *b;
    } else if (key == "profile_spans") {
      const auto b = AsBool(v, ctx);
      OODB_RETURN_IF_ERROR(b.status());
      cfg.profile_spans = *b;
    } else if (key == "span_exemplars") {
      const auto n = AsInt(v, ctx);
      OODB_RETURN_IF_ERROR(n.status());
      cfg.span_exemplars = *n;
      span_exemplars_set = true;
    } else if (key == "shards") {
      const auto n = AsInt(v, ctx);
      OODB_RETURN_IF_ERROR(n.status());
      cfg.shards = *n;
      shards_set = true;
    } else if (key == "shard_placement") {
      const auto p = ResolveShardPlacement(v, ctx);
      OODB_RETURN_IF_ERROR(p.status());
      cfg.shard_placement = *p;
      if (first_shard_key.empty()) first_shard_key = key;
    } else if (key == "shard_hop_latency_s") {
      const auto n = AsNumber(v, ctx);
      OODB_RETURN_IF_ERROR(n.status());
      cfg.shard_hop_latency_s = *n;
      if (first_shard_key.empty()) first_shard_key = key;
    } else if (key == "shard_group_cap") {
      const auto n = AsInt(v, ctx);
      OODB_RETURN_IF_ERROR(n.status());
      cfg.shard_group_cap = *n;
      if (first_shard_key.empty()) first_shard_key = key;
    } else if (key == "seed") {
      const auto n = AsUint(v, ctx);
      OODB_RETURN_IF_ERROR(n.status());
      cfg.seed = *n;
    } else if (key == "workload") {
      auto w = ParseWorkloadEntry(v, WorkloadEntry{cfg.workload, cfg.ocb},
                                  ctx);
      OODB_RETURN_IF_ERROR(w.status());
      cfg.workload = w->oct;
      cfg.ocb = w->ocb;
    } else if (key == "clustering") {
      auto c = ParseClusterEntry(v, cfg.clustering, ctx);
      OODB_RETURN_IF_ERROR(c.status());
      cfg.clustering = *c;
    } else if (key == "concurrency") {
      OODB_RETURN_IF_ERROR(ParseConcurrencySection(v, cfg.cc));
    } else if (key == "arrival") {
      const auto a = ResolveArrival(v, ctx);
      OODB_RETURN_IF_ERROR(a.status());
      cfg.arrival = *a;
    } else if (key == "arrival_rate_tps") {
      const auto n = AsNumber(v, ctx);
      OODB_RETURN_IF_ERROR(n.status());
      cfg.arrival_rate_tps = *n;
      arrival_rate_set = true;
    } else {
      return Err("config: unknown key \"" + key + "\"");
    }
  }
  // The builder's target tracks the configured database size, and the
  // generated graph's density tracks the workload (WithWorkload semantics).
  cfg.database.target_bytes = cfg.database_bytes;
  cfg.database.density = cfg.workload.density;
  if (!buffer_level.empty()) {
    if (buffer_pages_set) {
      return Err(
          "config: set either \"buffer_pages\" or \"buffer_level\", not "
          "both");
    }
    const auto pages =
        ResolveBufferLevel(cfg, buffer_level, "config.buffer_level");
    OODB_RETURN_IF_ERROR(pages.status());
    cfg.buffer_pages = *pages;
  }
  // Checked after the loop: JSON key order is arbitrary, so the gate must
  // not depend on which of the two keys parses first.
  if (span_exemplars_set && !cfg.profile_spans) {
    return Err(
        "config: \"span_exemplars\" has no effect without "
        "\"profile_spans\": true");
  }
  if (!first_shard_key.empty() && !shards_set) {
    return Err("config: \"" + first_shard_key +
               "\" is a sharding knob; add \"shards\": <N> to enable the "
               "N-shard core");
  }
  if (arrival_rate_set && cfg.arrival != ArrivalProcess::kOpen) {
    return Err(
        "config: \"arrival_rate_tps\" has no effect without \"arrival\": "
        "\"Open\"");
  }
  return Status::Ok();
}

Status ParseSweepSection(const JsonValue& obj, ScenarioSpec& spec) {
  if (!obj.is_object()) return TypeErr("sweep", "an object");
  for (const auto& [key, v] : obj.members()) {
    const std::string ctx = "sweep." + key;
    if (key == "clustering") {
      if (v.is_string()) {
        if (v.string_value() != "figure5_1") {
          return Err("\"" + ctx + "\": unknown shorthand \"" +
                     v.string_value() + "\"; known: figure5_1");
        }
        spec.clustering = ClusteringPolicyLevels(spec.base.clustering.split);
      } else if (v.is_array()) {
        for (size_t i = 0; i < v.items().size(); ++i) {
          auto c = ParseClusterEntry(v.items()[i], spec.base.clustering,
                                     ctx + "[" + std::to_string(i) + "]");
          OODB_RETURN_IF_ERROR(c.status());
          spec.clustering.push_back(*c);
        }
      } else {
        return TypeErr(ctx, "\"figure5_1\" or an array");
      }
    } else if (key == "workload") {
      if (v.is_string()) {
        if (v.string_value() != "standard_grid") {
          return Err("\"" + ctx + "\": unknown shorthand \"" +
                     v.string_value() + "\"; known: standard_grid");
        }
        for (const workload::WorkloadConfig& w : StandardWorkloadGrid()) {
          spec.workloads.push_back(WorkloadEntry{w, spec.base.ocb});
        }
      } else if (v.is_array()) {
        for (size_t i = 0; i < v.items().size(); ++i) {
          auto w = ParseWorkloadEntry(
              v.items()[i], WorkloadEntry{spec.base.workload, spec.base.ocb},
              ctx + "[" + std::to_string(i) + "]");
          OODB_RETURN_IF_ERROR(w.status());
          spec.workloads.push_back(*w);
        }
      } else {
        return TypeErr(ctx, "\"standard_grid\" or an array");
      }
    } else if (key == "replacement") {
      if (!v.is_array()) return TypeErr(ctx, "an array of policy names");
      for (size_t i = 0; i < v.items().size(); ++i) {
        const auto p = ResolveReplacement(
            v.items()[i], ctx + "[" + std::to_string(i) + "]");
        OODB_RETURN_IF_ERROR(p.status());
        spec.replacement.push_back(*p);
      }
    } else if (key == "prefetch") {
      if (!v.is_array()) return TypeErr(ctx, "an array of policy names");
      for (size_t i = 0; i < v.items().size(); ++i) {
        const auto p =
            ResolvePrefetch(v.items()[i], ctx + "[" + std::to_string(i) + "]");
        OODB_RETURN_IF_ERROR(p.status());
        spec.prefetch.push_back(*p);
      }
    } else if (key == "buffer_pages") {
      if (!v.is_array()) {
        return TypeErr(ctx, "an array of page counts or level names");
      }
      for (size_t i = 0; i < v.items().size(); ++i) {
        const JsonValue& item = v.items()[i];
        const std::string sub = ctx + "[" + std::to_string(i) + "]";
        size_t pages = 0;
        if (item.is_string()) {
          const auto resolved =
              ResolveBufferLevel(spec.base, item.string_value(), sub);
          OODB_RETURN_IF_ERROR(resolved.status());
          pages = *resolved;
        } else {
          const auto n = AsUint(item, sub);
          OODB_RETURN_IF_ERROR(n.status());
          pages = static_cast<size_t>(*n);
        }
        if (pages < 8) {
          return Err("\"" + sub + "\" is " + std::to_string(pages) +
                     "; the pool needs at least 8 frames");
        }
        spec.buffer_pages.push_back(pages);
      }
    } else if (key == "shards") {
      if (!v.is_array()) return TypeErr(ctx, "an array of shard counts");
      for (size_t i = 0; i < v.items().size(); ++i) {
        const auto n =
            AsInt(v.items()[i], ctx + "[" + std::to_string(i) + "]");
        OODB_RETURN_IF_ERROR(n.status());
        if (*n < 1 || *n > 64) {
          return Err("\"" + ctx + "[" + std::to_string(i) + "]\" is " +
                     std::to_string(*n) +
                     "; the core supports 1 to 64 shards");
        }
        spec.shards.push_back(*n);
      }
    } else if (key == "shard_placement") {
      if (!v.is_array()) return TypeErr(ctx, "an array of placement names");
      for (size_t i = 0; i < v.items().size(); ++i) {
        const auto p = ResolveShardPlacement(
            v.items()[i], ctx + "[" + std::to_string(i) + "]");
        OODB_RETURN_IF_ERROR(p.status());
        spec.shard_placement.push_back(*p);
      }
    } else if (key == "users") {
      if (!v.is_array()) return TypeErr(ctx, "an array of user counts");
      for (size_t i = 0; i < v.items().size(); ++i) {
        const auto n =
            AsInt(v.items()[i], ctx + "[" + std::to_string(i) + "]");
        OODB_RETURN_IF_ERROR(n.status());
        if (*n < 1) {
          return Err("\"" + ctx + "[" + std::to_string(i) + "]\" is " +
                     std::to_string(*n) + "; need at least 1 user");
        }
        spec.users.push_back(*n);
      }
    } else {
      return Err("sweep: unknown key \"" + key +
                 "\" (known: clustering, workload, replacement, prefetch, "
                 "buffer_pages, shards, shard_placement, users)");
    }
  }
  return Status::Ok();
}

std::string ClusterJson(const cluster::ClusterConfig& c) {
  JsonObjectWriter o;
  o.Add("pool", cluster::CandidatePoolName(c.pool));
  o.Add("io_limit", c.io_limit);
  o.Add("split", cluster::SplitPolicyName(c.split));
  o.Add("use_hints", c.use_hints);
  o.Add("hint_kind", obj::RelKindName(c.hint_kind));
  o.Add("hint_boost", c.hint_boost);
  o.Add("dynamic", dyn::PolicyKindName(c.dynamic.policy));
  if (c.dynamic.enabled()) {
    o.Add("dyn_observation_period", c.dynamic.observation_period);
    o.Add("dyn_heat_decay", c.dynamic.heat_decay);
    o.Add("dyn_max_tracked_objects", c.dynamic.max_tracked_objects);
    o.Add("dyn_max_tracked_links", c.dynamic.max_tracked_links);
    o.Add("dyn_trigger_threshold", c.dynamic.trigger_threshold);
    o.Add("dyn_unit_size", c.dynamic.max_unit_size);
    o.Add("dyn_max_moves", c.dynamic.max_moves_per_txn);
    o.Add("opcf_watermark", c.dynamic.opcf_queue_watermark);
    o.Add("opcf_batch", c.dynamic.opcf_batch);
  }
  return o.str();
}

std::string WorkloadJson(const WorkloadEntry& w) {
  JsonObjectWriter o;
  if (w.ocb.enabled) {
    o.Add("kind", "ocb");
    o.Add("rw_ratio", w.oct.read_write_ratio);
    o.Add("classes", w.ocb.classes);
    o.Add("hierarchy_depth", w.ocb.hierarchy_depth);
    o.Add("instances", w.ocb.instances);
    o.Add("refs_per_object", w.ocb.refs_per_object);
    o.Add("locality", ocb::RefLocalityName(w.ocb.locality));
    o.Add("zipf_theta", w.ocb.zipf_theta);
    o.Add("gaussian_window", w.ocb.gaussian_window);
    o.Add("base_object_bytes", static_cast<uint64_t>(w.ocb.base_object_bytes));
    o.Add("inheritance_fraction", w.ocb.inheritance_fraction);
    o.Add("interleaved_read_probability",
          w.ocb.interleaved_read_probability);
    o.Add("partitions", w.ocb.partitions);
    o.Add("set_lookup_size", w.ocb.set_lookup_size);
    o.Add("traversal_depth", w.ocb.traversal_depth);
    JsonArrayWriter mix;
    for (const double m : w.ocb.read_mix) mix.Add(m);
    o.AddRaw("read_mix", mix.str());
    if (w.ocb.churn_enabled()) {
      o.Add("churn_probability", w.ocb.churn_probability);
      o.Add("churn_burst_length", w.ocb.churn_burst_length);
      o.Add("churn_cross_partition", w.ocb.churn_cross_partition);
    }
  } else {
    o.Add("density", workload::StructureDensityName(w.oct.density));
    o.Add("rw_ratio", w.oct.read_write_ratio);
  }
  return o.str();
}

}  // namespace

std::string WorkloadEntry::Label() const {
  return ocb.enabled ? ocb.Label(oct.read_write_ratio) : oct.Label();
}

std::vector<ScenarioCell> ScenarioSpec::Expand() const {
  using ReplacementAxis = std::vector<buffer::ReplacementPolicy>;
  using PrefetchAxis = std::vector<buffer::PrefetchPolicy>;
  const ReplacementAxis reps =
      replacement.empty() ? ReplacementAxis{base.replacement} : replacement;
  const PrefetchAxis prefs =
      prefetch.empty() ? PrefetchAxis{base.prefetch} : prefetch;
  const std::vector<size_t> bufs = buffer_pages.empty()
                                       ? std::vector<size_t>{base.buffer_pages}
                                       : buffer_pages;
  const std::vector<cluster::ClusterConfig> clus =
      clustering.empty() ? std::vector<cluster::ClusterConfig>{base.clustering}
                         : clustering;
  const std::vector<WorkloadEntry> works =
      workloads.empty()
          ? std::vector<WorkloadEntry>{WorkloadEntry{base.workload, base.ocb}}
          : workloads;
  const std::vector<int> shard_axis =
      shards.empty() ? std::vector<int>{base.shards} : shards;
  const std::vector<ShardPlacement> place_axis =
      shard_placement.empty()
          ? std::vector<ShardPlacement>{base.shard_placement}
          : shard_placement;
  const std::vector<int> user_axis =
      users.empty() ? std::vector<int>{base.num_users} : users;

  std::vector<ScenarioCell> cells;
  cells.reserve(user_axis.size() * shard_axis.size() * place_axis.size() *
                reps.size() * prefs.size() * bufs.size() * clus.size() *
                works.size());
  for (const int num_users : user_axis) {
  for (const int num_shards : shard_axis) {
   for (const auto place : place_axis) {
    for (const auto rep : reps) {
     for (const auto pref : prefs) {
      for (const size_t pages : bufs) {
        for (const auto& clu : clus) {
          for (const auto& work : works) {
            ScenarioCell cell;
            cell.config = WithWorkload(base, work.oct);
            cell.config.ocb = work.ocb;
            cell.config.clustering = clu;
            cell.config.replacement = rep;
            cell.config.prefetch = pref;
            cell.config.buffer_pages = pages;
            cell.config.shards = num_shards;
            cell.config.shard_placement = place;
            cell.config.num_users = num_users;

            // Labels: identical to bench_common's FillDefaultLabels when
            // only clustering/workload sweep; multi-level sharding and
            // buffering axes prefix the policy label to keep cells unique.
            std::string policy;
            if (user_axis.size() > 1) {
              policy = std::to_string(num_users) + "users";
            }
            if (shard_axis.size() > 1) {
              if (!policy.empty()) policy += "_";
              policy += std::to_string(num_shards);
              policy += "shard";
            }
            if (place_axis.size() > 1) {
              if (!policy.empty()) policy += "_";
              policy += ShardPlacementName(place);
            }
            if (reps.size() > 1) {
              if (!policy.empty()) policy += "_";
              policy += buffer::ReplacementPolicyName(rep);
            }
            if (prefs.size() > 1) {
              if (!policy.empty()) policy += "_";
              policy += buffer::PrefetchPolicyName(pref);
            }
            if (bufs.size() > 1) {
              if (!policy.empty()) policy += "_";
              policy += std::to_string(pages) + "buf";
            }
            if (policy.empty()) {
              policy = clu.Label();
            } else if (clus.size() > 1) {
              // Append in two steps: `"_" + clu.Label()` trips GCC 12's
              // -Werror=restrict false positive (PR105651) at -O3.
              policy += "_";
              policy += clu.Label();
            }
            cell.policy = std::move(policy);
            cell.workload = work.Label();  // OCT or OCB label
            cell.cell_label = cell.policy + "/" + cell.workload;
            cells.push_back(std::move(cell));
          }
        }
      }
     }
    }
   }
  }
  }
  return cells;
}

std::string ScenarioSpec::ToJson() const {
  JsonObjectWriter root;
  root.Add("name", name);
  root.Add("bench", bench.empty() ? name : bench);
  if (!description.empty()) root.Add("description", description);

  JsonObjectWriter cfg;
  cfg.Add("database_bytes", static_cast<uint64_t>(base.database_bytes));
  cfg.Add("page_size_bytes", static_cast<uint64_t>(base.page_size_bytes));
  cfg.Add("append_fill_fraction", base.append_fill_fraction);
  cfg.Add("num_users", base.num_users);
  cfg.Add("num_disks", base.num_disks);
  cfg.Add("think_time_s", base.think_time_s);
  cfg.Add("buffer_pages", static_cast<uint64_t>(base.buffer_pages));
  cfg.Add("replacement", buffer::ReplacementPolicyName(base.replacement));
  cfg.Add("prefetch", buffer::PrefetchPolicyName(base.prefetch));
  cfg.Add("warmup_transactions", base.warmup_transactions);
  cfg.Add("measured_transactions", base.measured_transactions);
  cfg.Add("measurement_epochs", base.measurement_epochs);
  cfg.Add("telemetry_interval_s", base.telemetry_interval_s);
  cfg.Add("telemetry_audit_placement", base.telemetry_audit_placement);
  if (!base.rw_ratio_schedule.empty()) {
    JsonArrayWriter sched;
    for (const double ratio : base.rw_ratio_schedule) sched.Add(ratio);
    cfg.AddRaw("rw_ratio_schedule", sched.str());
  }
  cfg.Add("static_reorganize_after_build",
          base.static_reorganize_after_build);
  cfg.Add("profile_spans", base.profile_spans);
  // Mirrors the parse-side gate: span_exemplars only round-trips when the
  // profiler is on.
  if (base.profile_spans) cfg.Add("span_exemplars", base.span_exemplars);
  // Same gate for the sharding knobs: emitted only with an explicit shard
  // count, so single-server scenarios serialize exactly as before.
  if (base.shards != 1) {
    cfg.Add("shards", base.shards);
    cfg.Add("shard_placement", ShardPlacementName(base.shard_placement));
    cfg.Add("shard_hop_latency_s", base.shard_hop_latency_s);
    cfg.Add("shard_group_cap", base.shard_group_cap);
  }
  // Same gate for concurrency control and the open-arrival source: emitted
  // only when switched on, so cc-off scenarios serialize exactly as before.
  if (base.cc.enabled) {
    JsonObjectWriter cc;
    cc.Add("enabled", true);
    cc.Add("cc_lock_timeout_s", base.cc.lock_timeout_s);
    cc.Add("cc_max_retries", base.cc.max_retries);
    cc.Add("cc_backoff_base_s", base.cc.backoff_base_s);
    cc.Add("cc_backoff_cap_s", base.cc.backoff_cap_s);
    cc.Add("cc_page_latches", base.cc.page_latches);
    cfg.AddRaw("concurrency", cc.str());
  }
  if (base.arrival != ArrivalProcess::kClosed) {
    cfg.Add("arrival", ArrivalProcessName(base.arrival));
    cfg.Add("arrival_rate_tps", base.arrival_rate_tps);
  }
  cfg.Add("seed", static_cast<uint64_t>(base.seed));
  cfg.AddRaw("workload", WorkloadJson(WorkloadEntry{base.workload, base.ocb}));
  cfg.AddRaw("clustering", ClusterJson(base.clustering));
  root.AddRaw("config", cfg.str());

  JsonObjectWriter sweep;
  bool any_axis = false;
  if (!clustering.empty()) {
    JsonArrayWriter axis;
    for (const auto& c : clustering) axis.AddRaw(ClusterJson(c));
    sweep.AddRaw("clustering", axis.str());
    any_axis = true;
  }
  if (!workloads.empty()) {
    JsonArrayWriter axis;
    for (const WorkloadEntry& w : workloads) axis.AddRaw(WorkloadJson(w));
    sweep.AddRaw("workload", axis.str());
    any_axis = true;
  }
  if (!replacement.empty()) {
    JsonArrayWriter axis;
    for (const auto p : replacement) {
      axis.Add(std::string_view(buffer::ReplacementPolicyName(p)));
    }
    sweep.AddRaw("replacement", axis.str());
    any_axis = true;
  }
  if (!prefetch.empty()) {
    JsonArrayWriter axis;
    for (const auto p : prefetch) {
      axis.Add(std::string_view(buffer::PrefetchPolicyName(p)));
    }
    sweep.AddRaw("prefetch", axis.str());
    any_axis = true;
  }
  if (!buffer_pages.empty()) {
    JsonArrayWriter axis;
    for (const size_t pages : buffer_pages) {
      axis.Add(static_cast<uint64_t>(pages));
    }
    sweep.AddRaw("buffer_pages", axis.str());
    any_axis = true;
  }
  if (!shards.empty()) {
    JsonArrayWriter axis;
    for (const int n : shards) axis.Add(static_cast<uint64_t>(n));
    sweep.AddRaw("shards", axis.str());
    any_axis = true;
  }
  if (!shard_placement.empty()) {
    JsonArrayWriter axis;
    for (const auto p : shard_placement) {
      axis.Add(std::string_view(ShardPlacementName(p)));
    }
    sweep.AddRaw("shard_placement", axis.str());
    any_axis = true;
  }
  if (!users.empty()) {
    JsonArrayWriter axis;
    for (const int n : users) axis.Add(static_cast<uint64_t>(n));
    sweep.AddRaw("users", axis.str());
    any_axis = true;
  }
  if (any_axis) root.AddRaw("sweep", sweep.str());
  return root.str();
}

StatusOr<ScenarioSpec> ParseScenario(std::string_view json_text) {
  auto doc = JsonValue::Parse(json_text);
  if (!doc.ok()) return doc.status();
  if (!doc->is_object()) return Err("top-level value must be an object");

  ScenarioSpec spec;
  spec.base = ScaledConfig();
  // "config" first regardless of file order: sweep shorthands and buffer
  // levels derive from the base configuration.
  if (const JsonValue* config = doc->Find("config")) {
    OODB_RETURN_IF_ERROR(ParseConfigSection(*config, spec.base));
  }
  for (const auto& [key, v] : doc->members()) {
    if (key == "config") continue;
    if (key == "name") {
      const auto s = AsString(v, "name");
      OODB_RETURN_IF_ERROR(s.status());
      spec.name = *s;
    } else if (key == "bench") {
      const auto s = AsString(v, "bench");
      OODB_RETURN_IF_ERROR(s.status());
      spec.bench = *s;
    } else if (key == "description") {
      const auto s = AsString(v, "description");
      OODB_RETURN_IF_ERROR(s.status());
      spec.description = *s;
    } else if (key == "sweep") {
      OODB_RETURN_IF_ERROR(ParseSweepSection(v, spec));
    } else {
      return Err("unknown top-level key \"" + key +
                 "\" (known: name, bench, description, config, sweep)");
    }
  }
  if (spec.name.empty()) return Err("\"name\" is required");
  if (spec.bench.empty()) spec.bench = spec.name;

  // A placement axis with every cell at shards = 1 would sweep a knob
  // that cannot matter — reject it like any other inert-knob typo.
  if (!spec.shard_placement.empty() && spec.shards.empty() &&
      spec.base.shards == 1) {
    return Err(
        "sweep.shard_placement: every cell has shards = 1, where placement "
        "has no effect; add a \"shards\" sweep axis or \"shards\" to "
        "config");
  }

  const Status valid = spec.base.Validate();
  if (!valid.ok()) return Err("config: " + valid.message());
  for (size_t i = 0; i < spec.workloads.size(); ++i) {
    const Status w = spec.workloads[i].ocb.Validate();
    if (!w.ok()) {
      return Err("sweep.workload[" + std::to_string(i) + "]: " +
                 w.message());
    }
  }
  return spec;
}

StatusOr<ScenarioSpec> LoadScenarioFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("scenario: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  auto spec = ParseScenario(buf.str());
  if (!spec.ok()) {
    return Status::InvalidArgument(path + ": " + spec.status().message());
  }
  return spec;
}

}  // namespace oodb::core
