#include "core/txn_pipeline.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/check.h"

namespace oodb::core {

namespace {
/// How strongly a structural-neighbour boost lifts a page above plain
/// recency, in units of accesses, scaled by the relationship's affinity
/// weight (which is <= ~1).
constexpr double kContextBoostScale = 8.0;
/// Boost applied to prefetched / prefetch-group pages.
constexpr double kPrefetchBoost = 6.0;
/// Probability that reading an object with by-reference inherited
/// attributes dereferences its inheritance source.
constexpr double kInheritanceDerefProbability = 0.5;
}  // namespace

TxnPipeline::TxnPipeline(ServerContext& context)
    : ctx_(context), rng_(context.config.seed) {}

sim::Task TxnPipeline::LockObject(TxnCc* lk, obj::ObjectId id,
                                  cc::LockMode mode,
                                  obs::SpanRecorder* prof) {
  const double t0 = ctx_.sim.now();
  const bool granted = co_await ctx_.locks->Acquire(
      lk->txn, static_cast<cc::LockKey>(id), mode);
  const double now = ctx_.sim.now();
  if (now > t0) {
    if (prof != nullptr) {
      prof->RecordSpan(obs::SpanPhase::kLockWait, t0, now);
    }
    ctx_.metrics.Observe(ctx_.cc_handles.lock_wait_s, now - t0);
    ctx_.trace.Record(obs::Subsystem::kCore,
                      obs::TraceEventType::kLockWait, lk->txn, id,
                      static_cast<uint64_t>(mode), now - t0);
  }
  if (granted) {
    ctx_.trace.Record(obs::Subsystem::kCore,
                      obs::TraceEventType::kLockGrant, lk->txn, id,
                      static_cast<uint64_t>(mode));
  } else {
    lk->aborted = true;
    ctx_.trace.Record(obs::Subsystem::kCore,
                      obs::TraceEventType::kLockTimeout, lk->txn, id,
                      static_cast<uint64_t>(mode), now - t0);
  }
}

sim::Task TxnPipeline::RollbackTransaction(const ShardView& home,
                                           txlog::TxnId txn,
                                           obs::SpanRecorder* prof) {
  // The attempt's locks are still held (strict 2PL releases only after
  // the rollback), so no concurrent transaction can race these undos.
  for (const store::PageId page : home.log->TouchedPages(txn)) {
    co_await FetchPage(home, page, prof, /*pin=*/true);
    home.buffer->MarkDirty(page);
    home.buffer->Unpin(page);
    // Object-sized compensation record: the before-image for this page
    // is already in the log, so undoing re-logs cheaply.
    co_await ChargeLogFlushes(home, home.log->LogWrite(txn, page, 64),
                              prof);
    ctx_.metrics.Add(ctx_.cc_handles.rollback_pages);
  }
}

sim::Task TxnPipeline::ChargeCpu(const ShardView& at, double instructions,
                                 obs::SpanRecorder* prof) {
  const double t0 = ctx_.sim.now();
  co_await at.cpu->Use(instructions / (ctx_.config.cpu_mips * 1e6));
  if (prof != nullptr) {
    // The CPU resource resumed us synchronously from its Complete, so its
    // last-completed timestamps are this request's: split the interval
    // into queueing wait and service at the dispatch time.
    prof->RecordQueued(obs::SpanPhase::kCpuWait,
                       obs::SpanPhase::kCpuService, t0,
                       at.cpu->last_start_time(), ctx_.sim.now());
  }
}

sim::Task TxnPipeline::ChargeLogFlushes(const ShardView& home, int flushes,
                                        obs::SpanRecorder* prof) {
  for (int i = 0; i < flushes; ++i) {
    // The log stripe round-robins over the disks inside FlushLog, so the
    // caller cannot name the disk to split wait from service; the whole
    // interval is log-force wait.
    const double t0 = ctx_.sim.now();
    co_await home.io->FlushLog();
    if (prof != nullptr) {
      prof->RecordSpan(obs::SpanPhase::kLogForceWait, t0, ctx_.sim.now());
    }
    co_await ChargeCpu(home, ctx_.config.physical_io_instructions, prof);
  }
}

void TxnPipeline::NotePrefetchEviction(
    int shard, const buffer::BufferPool::FixResult& fix) {
  if (fix.evicted_page == store::kInvalidPage) return;
  if (prefetched_unused_.erase(PrefetchKey(shard, fix.evicted_page)) == 0) {
    return;
  }
  ctx_.metrics.Add(ctx_.handles.prefetch_wasted);
  ctx_.trace.Record(obs::Subsystem::kBuffer,
                    obs::TraceEventType::kPrefetchWaste, fix.evicted_page);
}

void TxnPipeline::NotePrefetchDemand(int shard, store::PageId page) {
  if (prefetched_unused_.erase(PrefetchKey(shard, page)) == 0) return;
  ctx_.metrics.Add(ctx_.handles.prefetch_hits);
  ctx_.trace.Record(obs::Subsystem::kBuffer,
                    obs::TraceEventType::kPrefetchHit, page);
}

sim::Task TxnPipeline::FetchPage(const ShardView& at, store::PageId page,
                                 obs::SpanRecorder* prof, bool pin) {
  OODB_CHECK_NE(page, store::kInvalidPage);
  NotePrefetchDemand(at.shard, page);
  const uint64_t key = PrefetchKey(at.shard, page);
  if (inflight_.find(key) != inflight_.end()) {
    // A prefetch for this page is on the disk: join it rather than issuing
    // a duplicate read.
    const double t0 = ctx_.sim.now();
    co_await PrefetchJoin(*this, key);
    if (prof != nullptr) {
      prof->RecordSpan(obs::SpanPhase::kPrefetchOverlap, t0,
                       ctx_.sim.now());
    }
  }
  // Per-page latch (src/cc/): serialise the fix-evict-read sequence so
  // two transactions never race the same frame. Held across this fix's
  // awaits only, never across a lock wait — latches cannot deadlock.
  // The prefetch-completion callback path (OnPrefetchComplete) stays
  // unlatched: it runs synchronously inside an I/O completion event.
  const bool latched =
      ctx_.locks != nullptr && ctx_.config.cc.page_latches;
  if (latched) {
    const double t0 = ctx_.sim.now();
    co_await ctx_.locks->AcquireLatch(key);
    const double now = ctx_.sim.now();
    if (now > t0) {
      if (prof != nullptr) {
        prof->RecordSpan(obs::SpanPhase::kLockWait, t0, now);
      }
      ctx_.metrics.Observe(ctx_.cc_handles.latch_wait_s, now - t0);
      ctx_.trace.Record(obs::Subsystem::kBuffer,
                        obs::TraceEventType::kLatchWait, 0, key, 0,
                        now - t0);
    }
  }
  const auto fix = at.buffer->Fix(page);
  NotePrefetchEviction(at.shard, fix);
  // Pin before any suspension: concurrent processes may otherwise evict
  // the frame while this one waits on the disk.
  if (pin) at.buffer->Pin(page);
  if (!fix.hit) {
    co_await ChargeCpu(at, ctx_.config.physical_io_instructions, prof);
    if (fix.evicted_dirty) {
      // Worst case (paper §4.1): flush the dirty page before the read.
      // The flush is a cost of fixing a frame, not of this page's read:
      // the whole interval is buffer-fix wait.
      const double t0 = ctx_.sim.now();
      co_await at.io->Write(fix.evicted_page, io::IoCategory::kDirtyFlush);
      if (prof != nullptr) {
        prof->RecordSpan(obs::SpanPhase::kBufferFixWait, t0,
                         ctx_.sim.now());
      }
      co_await ChargeCpu(at, ctx_.config.physical_io_instructions, prof);
    }
    const double t0 = ctx_.sim.now();
    co_await at.io->Read(page, io::IoCategory::kDataRead);
    if (prof != nullptr) {
      const sim::Resource& d = at.io->disk(at.io->DiskOf(page));
      prof->RecordQueued(obs::SpanPhase::kIoWait,
                         obs::SpanPhase::kIoService, t0,
                         d.last_start_time(), ctx_.sim.now());
    }
  }
  if (latched) ctx_.locks->ReleaseLatch(key);
}

sim::Task TxnPipeline::FetchPageRouted(const ShardView& home,
                                       const ShardView& at,
                                       store::PageId page,
                                       obs::SpanRecorder* prof, bool pin) {
  if (!ctx_.shards->sharded()) {
    co_await FetchPage(at, page, prof, pin);
    co_return;
  }
  ShardedContext::Counters& counters = ctx_.shards->counters();
  if (at.shard == home.shard) {
    ++counters.local_fetches;
    co_await FetchPage(at, page, prof, pin);
    co_return;
  }
  // Cross-shard reference: request hop on the home NIC, the fix and any
  // miss I/O on the owner shard, response hop on the owner NIC. The whole
  // interval is one remote_fetch_wait leaf — the inner fetch runs with a
  // null recorder, so the taxonomy stays exactly additive.
  ++counters.remote_fetches;
  counters.hops += 2;
  const double hop = ctx_.shards->hop_latency_s();
  const double t0 = ctx_.sim.now();
  co_await home.nic->Use(hop);
  co_await FetchPage(at, page, /*prof=*/nullptr, pin);
  co_await at.nic->Use(hop);
  if (prof != nullptr) {
    prof->RecordSpan(obs::SpanPhase::kRemoteFetchWait, t0, ctx_.sim.now());
  }
  ctx_.trace.Record(obs::Subsystem::kCore,
                    obs::TraceEventType::kRemoteFetch, page,
                    static_cast<uint64_t>(home.shard),
                    static_cast<uint64_t>(at.shard),
                    ctx_.sim.now() - t0);
}

void TxnPipeline::StartPrefetch(const ShardView& at, store::PageId page) {
  const uint64_t key = PrefetchKey(at.shard, page);
  if (inflight_.find(key) != inflight_.end()) return;
  inflight_.emplace(key, std::vector<std::coroutine_handle<>>{});
  prefetched_unused_.insert(key);
  ctx_.metrics.Add(ctx_.handles.prefetch_issued);
  ctx_.trace.Record(obs::Subsystem::kBuffer,
                    obs::TraceEventType::kPrefetchIssue, page);
  at.io->ReadAsync(page, io::IoCategory::kPrefetchRead,
                   [this, shard = at.shard, page] {
                     OnPrefetchComplete(shard, page);
                   });
}

void TxnPipeline::OnPrefetchComplete(int shard, store::PageId page) {
  const ShardView& at = ctx_.shards->view(shard);
  const auto fix = at.buffer->Fix(page);
  NotePrefetchEviction(shard, fix);
  if (!fix.hit && fix.evicted_dirty) {
    at.io->WriteAsync(fix.evicted_page, io::IoCategory::kDirtyFlush);
  }
  at.buffer->Boost(page, kPrefetchBoost);
  auto it = inflight_.find(PrefetchKey(shard, page));
  OODB_CHECK(it != inflight_.end());
  std::vector<std::coroutine_handle<>> waiters = std::move(it->second);
  inflight_.erase(it);
  for (auto h : waiters) h.resume();
}

void TxnPipeline::PostAccess(const ShardView& at, obj::ObjectId id) {
  // Context-sensitive replacement: pages holding this object's structural
  // relatives gain priority (paper §2.2). Relatives owned by another
  // shard have no page in `at`'s storage and fall out naturally.
  if (ctx_.config.replacement ==
      buffer::ReplacementPolicy::kContextSensitive) {
    const obj::TypeId type = ctx_.graph->object(id).type;
    for (const obj::Edge e : ctx_.graph->edges(id)) {
      const store::PageId p = at.storage->PageOf(e.target);
      if (p == store::kInvalidPage) continue;
      const double w = ctx_.affinity->Weight(type, e.kind);
      at.buffer->Boost(p, 1.0 + kContextBoostScale * w);
    }
  }

  // Prefetching (paper §2.2): the group follows the user hint or the
  // type's dominant traversal kind.
  if (ctx_.config.prefetch == buffer::PrefetchPolicy::kNone) return;
  const buffer::AccessHint hint =
      ctx_.config.clustering.use_hints
          ? buffer::AccessHint::For(ctx_.config.clustering.hint_kind)
          : buffer::AccessHint::None();
  const auto group = buffer::ComputePrefetchGroup(
      *ctx_.graph, *at.storage, id, hint, /*config_depth=*/2,
      /*max_pages=*/8, &ctx_.trace);
  for (store::PageId p : group.pages) {
    if (at.buffer->Contains(p)) {
      at.buffer->Boost(p, kPrefetchBoost);
    } else if (ctx_.config.prefetch == buffer::PrefetchPolicy::kWithinDb) {
      StartPrefetch(at, p);
    }
  }
}

sim::Task TxnPipeline::AccessObject(const ShardView& home, obj::ObjectId id,
                                    obj::TypeId from_type, int nav_kind,
                                    TxnCc* lk, obs::SpanRecorder* prof) {
  if (Aborted(lk)) co_return;
  if (lk != nullptr) {
    co_await LockObject(lk, id, cc::LockMode::kShared, prof);
    if (lk->aborted) co_return;
  }
  ++logical_reads_;
  if (ctx_.dyn_tracker) ctx_.dyn_tracker->Observe(id);
  co_await ChargeCpu(home, ctx_.config.logical_op_instructions, prof);
  if (nav_kind >= 0) {
    ctx_.affinity->RecordTraversal(from_type,
                                   static_cast<obj::RelKind>(nav_kind));
  }
  const ShardView& at = ctx_.shards->HomeOf(id);
  const store::PageId page = at.storage->PageOf(id);
  if (page != store::kInvalidPage) {
    co_await FetchPageRouted(home, at, page, prof);
  }
  PostAccess(at, id);

  // Dereference by-reference inherited attributes with some probability:
  // the heir's data partially lives with its inheritance source.
  if (rng_.Bernoulli(kInheritanceDerefProbability)) {
    // Resolve the dereference target before any await: the edge view is
    // never touched after a suspension point (a lock wait may now
    // precede the fetch, so the id is copied out of the loop).
    obj::ObjectId source = obj::kInvalidObject;
    for (const obj::Edge e : ctx_.graph->edges(id)) {
      if (e.kind == obj::RelKind::kInstanceInheritance &&
          e.dir == obj::Direction::kUp && ctx_.graph->IsLive(e.target)) {
        source = e.target;
        break;  // one dereference is representative
      }
    }
    if (source != obj::kInvalidObject) {
      ++logical_reads_;
      ctx_.affinity->RecordTraversal(ctx_.graph->object(id).type,
                                     obj::RelKind::kInstanceInheritance);
      if (lk != nullptr) {
        co_await LockObject(lk, source, cc::LockMode::kShared, prof);
        if (lk->aborted) co_return;
      }
      const ShardView& src = ctx_.shards->HomeOf(source);
      const store::PageId sp = src.storage->PageOf(source);
      if (sp != store::kInvalidPage) {
        co_await FetchPageRouted(home, src, sp, prof);
      }
    }
  }
}

sim::Task TxnPipeline::ReadQuery(const ShardView& home,
                                 const workload::TransactionSpec& spec,
                                 TxnCc* lk, obs::SpanRecorder* prof) {
  const obj::ObjectId target = spec.target;
  if (!ctx_.graph->IsLive(target)) co_return;
  if (ctx_.dyn_tracker) ctx_.dyn_tracker->BeginTransaction(target);
  const obj::TypeId ttype = ctx_.graph->object(target).type;
  co_await AccessObject(home, target, ttype, -1, lk, prof);

  switch (spec.type) {
    case workload::QueryType::kSimpleLookup:
      break;
    case workload::QueryType::kComponentRetrieval: {
      for (obj::ObjectId c : ctx_.graph->Components(target)) {
        if (ctx_.graph->IsLive(c)) {
          co_await AccessObject(
              home, c, ttype,
              static_cast<int>(obj::RelKind::kConfiguration), lk, prof);
        }
      }
      break;
    }
    case workload::QueryType::kCompositeRetrieval: {
      // Deep retrieval: materialise the whole configuration subtree.
      // Attachments are unvalidated (as in OCT), so the configuration
      // graph may contain cycles: guard with a visited set and a bound.
      constexpr size_t kMaxRetrieval = 512;
      std::vector<obj::ObjectId> stack = ctx_.graph->Components(target);
      std::unordered_set<obj::ObjectId> visited{target};
      while (!stack.empty() && visited.size() < kMaxRetrieval) {
        const obj::ObjectId o = stack.back();
        stack.pop_back();
        if (!ctx_.graph->IsLive(o) || !visited.insert(o).second) continue;
        co_await AccessObject(
            home, o, ttype,
            static_cast<int>(obj::RelKind::kConfiguration), lk, prof);
        for (obj::ObjectId c : ctx_.graph->Components(o)) {
          stack.push_back(c);
        }
      }
      break;
    }
    case workload::QueryType::kDescendantVersions: {
      for (obj::ObjectId d : ctx_.graph->Descendants(target)) {
        if (ctx_.graph->IsLive(d)) {
          co_await AccessObject(
              home, d, ttype,
              static_cast<int>(obj::RelKind::kVersionHistory), lk, prof);
        }
      }
      break;
    }
    case workload::QueryType::kAncestorVersions: {
      for (obj::ObjectId a : ctx_.graph->Ancestors(target)) {
        if (ctx_.graph->IsLive(a)) {
          co_await AccessObject(
              home, a, ttype,
              static_cast<int>(obj::RelKind::kVersionHistory), lk, prof);
        }
      }
      break;
    }
    case workload::QueryType::kCorresponding: {
      for (obj::ObjectId c : ctx_.graph->Correspondents(target)) {
        if (ctx_.graph->IsLive(c)) {
          co_await AccessObject(
              home, c, ttype,
              static_cast<int>(obj::RelKind::kCorrespondence), lk, prof);
        }
      }
      break;
    }
    case workload::QueryType::kOcbSetLookup: {
      // OCB set-oriented lookup: a selection over one class extent. The
      // generator samples the qualifying instances; physically this is a
      // batch of same-class object fetches with no structural navigation.
      for (obj::ObjectId o : spec.targets) {
        if (o != target && ctx_.graph->IsLive(o)) {
          co_await AccessObject(home, o, ttype, -1, lk, prof);
        }
      }
      break;
    }
    case workload::QueryType::kOcbSimpleTraversal: {
      // OCB simple traversal: depth-first over the reference edges to a
      // configured depth. References may form cycles (the generator draws
      // targets freely), so guard with a visited set and a bound.
      constexpr size_t kMaxTraversal = 512;
      std::vector<std::pair<obj::ObjectId, int>> stack;
      std::unordered_set<obj::ObjectId> visited{target};
      if (spec.depth > 0) {
        for (obj::ObjectId c : ctx_.graph->Components(target)) {
          stack.emplace_back(c, 1);
        }
      }
      while (!stack.empty() && visited.size() < kMaxTraversal) {
        const auto [o, d] = stack.back();
        stack.pop_back();
        if (!ctx_.graph->IsLive(o) || !visited.insert(o).second) continue;
        co_await AccessObject(
            home, o, ttype,
            static_cast<int>(obj::RelKind::kConfiguration), lk, prof);
        if (d < spec.depth) {
          for (obj::ObjectId c : ctx_.graph->Components(o)) {
            stack.emplace_back(c, d + 1);
          }
        }
      }
      break;
    }
    case workload::QueryType::kOcbHierarchyTraversal: {
      // OCB hierarchy traversal: navigate the instance-inheritance edges
      // (both towards sources and towards heirs) to a configured depth —
      // the traversal that exercises exactly the semantics this paper's
      // clustering exploits.
      constexpr size_t kMaxTraversal = 512;
      std::vector<std::pair<obj::ObjectId, int>> stack{{target, 0}};
      std::unordered_set<obj::ObjectId> visited{target};
      while (!stack.empty() && visited.size() < kMaxTraversal) {
        const auto [o, d] = stack.back();
        stack.pop_back();
        if (d >= spec.depth) continue;
        // Snapshot the inheritance neighbours before awaiting: the loop
        // suspends mid-iteration, and a concurrent writer mutating any
        // object's edges would invalidate a live edge view. Frame-local
        // (not a member): other transactions interleave at each await.
        std::vector<obj::ObjectId> inheritance;
        for (const obj::Edge e : ctx_.graph->edges(o)) {
          if (e.kind == obj::RelKind::kInstanceInheritance) {
            inheritance.push_back(e.target);
          }
        }
        for (const obj::ObjectId t : inheritance) {
          if (!ctx_.graph->IsLive(t)) continue;
          if (!visited.insert(t).second) continue;
          co_await AccessObject(
              home, t, ttype,
              static_cast<int>(obj::RelKind::kInstanceInheritance), lk,
              prof);
          stack.emplace_back(t, d + 1);
        }
      }
      break;
    }
    case workload::QueryType::kOcbStochasticTraversal: {
      // OCB stochastic traversal: a random walk along references that
      // backtracks out of dead ends, accessing up to `depth` objects
      // beyond the root. Draws come from the pipeline's single stream, so
      // the walk is deterministic per run.
      std::vector<obj::ObjectId> path{target};
      std::unordered_set<obj::ObjectId> visited{target};
      int accessed = 0;
      while (!path.empty() && accessed < spec.depth) {
        std::vector<obj::ObjectId> next;
        ctx_.graph->ForEachNeighbor(
            path.back(), obj::RelKind::kConfiguration, obj::Direction::kDown,
            [&](obj::ObjectId c) {
              if (ctx_.graph->IsLive(c) && visited.find(c) == visited.end()) {
                next.push_back(c);
              }
            });
        if (next.empty()) {
          path.pop_back();  // dead end: backtrack one step
          continue;
        }
        const obj::ObjectId chosen = next[rng_.NextBelow(next.size())];
        visited.insert(chosen);
        co_await AccessObject(
            home, chosen, ttype,
            static_cast<int>(obj::RelKind::kConfiguration), lk, prof);
        path.push_back(chosen);
        ++accessed;
      }
      break;
    }
    case workload::QueryType::kObjectWrite:
      OODB_CHECK(false);  // handled by WriteQuery
      break;
  }
}

sim::Task TxnPipeline::LogAndDirty(const ShardView& home,
                                   const ShardView& at, txlog::TxnId txn,
                                   store::PageId page, uint32_t object_size,
                                   obs::SpanRecorder* prof) {
  ++logical_writes_;
  co_await ChargeCpu(home, ctx_.config.logical_op_instructions, prof);
  // The object may have been deleted by a concurrent transaction between
  // target selection and this write; the write then degenerates to a log
  // record with no page touch. Log records always land on the home
  // shard's log: the transaction's session owns its recovery stream.
  if (page == store::kInvalidPage) {
    co_await ChargeLogFlushes(home,
                              home.log->LogWrite(txn, page, object_size),
                              prof);
    co_return;
  }
  co_await FetchPageRouted(home, at, page, prof, /*pin=*/true);
  at.buffer->MarkDirty(page);
  at.buffer->Unpin(page);
  co_await ChargeLogFlushes(home,
                            home.log->LogWrite(txn, page, object_size),
                            prof);
}

sim::Task TxnPipeline::WriteObject(const ShardView& home, txlog::TxnId txn,
                                   obj::ObjectId id, TxnCc* lk,
                                   obs::SpanRecorder* prof) {
  if (Aborted(lk)) co_return;
  if (lk != nullptr) {
    co_await LockObject(lk, id, cc::LockMode::kExclusive, prof);
    if (lk->aborted) co_return;
  }
  // Object-level write that tolerates concurrent deletion: resolves the
  // page and size only if the object is still live and placed.
  const ShardView& at = ctx_.shards->HomeOf(id);
  if (ctx_.graph->IsLive(id) && at.storage->IsPlaced(id)) {
    if (ctx_.shards->sharded() && at.shard != home.shard) {
      ++ctx_.shards->counters().remote_writes;
    }
    co_await LogAndDirty(home, at, txn, at.storage->PageOf(id),
                         at.storage->SizeOf(id), prof);
  } else {
    ++logical_writes_;
    co_await ChargeCpu(home, ctx_.config.logical_op_instructions, prof);
    co_await ChargeLogFlushes(
        home, home.log->LogWrite(txn, store::kInvalidPage, 64), prof);
  }
}

sim::Task TxnPipeline::ChargeExamReads(
    const ShardView& at, const cluster::PlacementReport& report,
    obs::SpanRecorder* prof) {
  // Candidate pages examined on disk: demand reads charged to the writer,
  // and the pages enter the examining shard's buffer pool (they were just
  // read there).
  for (store::PageId p : report.exam_reads) {
    const auto fix = at.buffer->Fix(p);
    NotePrefetchEviction(at.shard, fix);
    if (!fix.hit) {
      if (fix.evicted_dirty) {
        const double t0 = ctx_.sim.now();
        co_await at.io->Write(fix.evicted_page,
                              io::IoCategory::kDirtyFlush);
        if (prof != nullptr) {
          prof->RecordSpan(obs::SpanPhase::kBufferFixWait, t0,
                           ctx_.sim.now());
        }
      }
      const double t0 = ctx_.sim.now();
      co_await at.io->Read(p, io::IoCategory::kClusterRead);
      if (prof != nullptr) {
        const sim::Resource& d = at.io->disk(at.io->DiskOf(p));
        prof->RecordQueued(obs::SpanPhase::kIoWait,
                           obs::SpanPhase::kIoService, t0,
                           d.last_start_time(), ctx_.sim.now());
      }
      co_await ChargeCpu(at, ctx_.config.physical_io_instructions, prof);
    }
  }
}

sim::Task TxnPipeline::ChargeSplit(const ShardView& home,
                                   const ShardView& at, txlog::TxnId txn,
                                   const cluster::PlacementReport& report,
                                   obs::SpanRecorder* prof) {
  co_await ChargeCpu(
      at,
      ctx_.config.clustering.split == cluster::SplitPolicy::kExhaustive
          ? ctx_.config.split_exhaustive_instructions
          : ctx_.config.split_linear_instructions,
      prof);
  // The newly allocated page is flushed and the change logged
  // (paper §5.1.2: one extra I/O plus one extra log record).
  NotePrefetchEviction(at.shard, at.buffer->Fix(report.split_new_page));
  at.buffer->MarkDirty(report.split_new_page);
  const double t0 = ctx_.sim.now();
  co_await at.io->Write(report.split_new_page, io::IoCategory::kDataWrite);
  if (prof != nullptr) {
    const sim::Resource& d =
        at.io->disk(at.io->DiskOf(report.split_new_page));
    prof->RecordQueued(obs::SpanPhase::kIoWait, obs::SpanPhase::kIoService,
                       t0, d.last_start_time(), ctx_.sim.now());
  }
  co_await ChargeLogFlushes(
      home,
      home.log->LogWrite(txn, report.split_new_page,
                         ctx_.config.page_size_bytes / 4),
      prof);
}

sim::Task TxnPipeline::ChargePlacement(const ShardView& home,
                                       const ShardView& at, txlog::TxnId txn,
                                       const cluster::PlacementReport& report,
                                       obj::ObjectId placed,
                                       obs::SpanRecorder* prof) {
  co_await ChargeExamReads(at, report, prof);
  if (report.split) co_await ChargeSplit(home, at, txn, report, prof);
  // The write of the placed object itself.
  co_await LogAndDirty(home, at, txn, report.page,
                       at.storage->SizeOf(placed), prof);
}

sim::Task TxnPipeline::ReclusterAfterStructureChange(const ShardView& home,
                                                     txlog::TxnId txn,
                                                     obj::ObjectId id,
                                                     TxnCc* lk,
                                                     obs::SpanRecorder* prof) {
  if (Aborted(lk)) co_return;
  if (ctx_.config.clustering.pool == cluster::CandidatePool::kNoClustering) {
    co_return;
  }
  if (lk != nullptr) {
    // The structure-write path only reclusters endpoints it already
    // X-locked, so this is a free re-grant; it is a real acquisition
    // only for future callers.
    co_await LockObject(lk, id, cc::LockMode::kExclusive, prof);
    if (lk->aborted) co_return;
  }
  // Reclustering is a per-shard affair: the owner's cluster manager
  // reconsiders the placement within the owner's own pages.
  const ShardView& at = ctx_.shards->HomeOf(id);
  if (!ctx_.graph->IsLive(id) || !at.storage->IsPlaced(id)) co_return;
  co_await ChargeCpu(at, ctx_.config.cluster_decision_instructions, prof);
  const auto report = at.cluster->Recluster(id);
  co_await ChargeExamReads(at, report, prof);
  if (report.split) co_await ChargeSplit(home, at, txn, report, prof);
  if (report.relocated) {
    // Moving the object modifies both its old and its new page.
    const uint32_t size = at.storage->SizeOf(id);
    co_await LogAndDirty(home, at, txn, report.page, size, prof);
    if (report.old_page != store::kInvalidPage &&
        report.old_page != report.page) {
      co_await LogAndDirty(home, at, txn, report.old_page, size, prof);
    }
  }
}

sim::Task TxnPipeline::WriteQuery(const ShardView& home,
                                  const workload::TransactionSpec& spec,
                                  txlog::TxnId txn, TxnCc* lk,
                                  obs::SpanRecorder* prof) {
  workload::DesignDatabase::Module& module = ctx_.db.modules[spec.module];
  obj::ObjectId target = spec.target;
  if (!ctx_.graph->IsLive(target)) co_return;

  switch (spec.write_kind) {
    case workload::WriteKind::kSimpleUpdate: {
      // A "save edit": the target plus most of its immediate components
      // are rewritten in one transaction (the paper's checkin invokes
      // several updates). Co-located components then share before-imaged
      // pages — the Fig 5.5 mechanism.
      co_await WriteObject(home, txn, target, lk, prof);
      if (Aborted(lk)) co_return;
      int updated = 0;
      for (obj::ObjectId c : ctx_.graph->Components(target)) {
        if (updated >= 6) break;
        if (!rng_.Bernoulli(0.7)) continue;
        co_await WriteObject(home, txn, c, lk, prof);
        if (Aborted(lk)) co_return;
        ++updated;
      }
      break;
    }
    case workload::WriteKind::kStructureWrite: {
      obj::ObjectId other = spec.other;
      if (other == obj::kInvalidObject || !ctx_.graph->IsLive(other) ||
          other == target) {
        // Attachment end vanished: degrade to a simple update.
        co_await WriteObject(home, txn, target, lk, prof);
        break;
      }
      if (lk != nullptr) {
        // Both endpoints are X-locked *before* the graph mutation, so a
        // deadlock timeout here aborts with nothing structural to undo.
        co_await LockObject(lk, target, cc::LockMode::kExclusive, prof);
        if (lk->aborted) co_return;
        co_await LockObject(lk, other, cc::LockMode::kExclusive, prof);
        if (lk->aborted) co_return;
        // Either endpoint may have been deleted while this transaction
        // queued for its lock: degrade to a simple update (WriteObject
        // tolerates dead objects; Relate does not).
        if (!ctx_.graph->IsLive(target) || !ctx_.graph->IsLive(other)) {
          co_await WriteObject(home, txn, target, lk, prof);
          break;
        }
      }
      const obj::RelKind kind = rng_.Bernoulli(0.6)
                                    ? obj::RelKind::kConfiguration
                                    : obj::RelKind::kCorrespondence;
      ctx_.graph->Relate(target, other, kind);
      if (kind == obj::RelKind::kCorrespondence) {
        module.corresponding.push_back(target);
        module.corresponding.push_back(other);
      } else if (std::find(module.composites.begin(),
                           module.composites.end(),
                           target) == module.composites.end()) {
        module.composites.push_back(target);
      }
      co_await WriteObject(home, txn, target, lk, prof);
      co_await WriteObject(home, txn, other, lk, prof);
      // Both endpoints' structures changed: run-time reclustering.
      co_await ReclusterAfterStructureChange(home, txn, target, lk, prof);
      co_await ReclusterAfterStructureChange(home, txn, other, lk, prof);
      break;
    }
    case workload::WriteKind::kInsertObject: {
      if (lk != nullptr) {
        // Lock the parent before creating the child: an abort here
        // leaves no orphan in the graph.
        co_await LockObject(lk, target, cc::LockMode::kExclusive, prof);
        if (lk->aborted) co_return;
        if (!ctx_.graph->IsLive(target)) {
          co_await WriteObject(home, txn, target, lk, prof);
          break;
        }
      }
      const obj::DesignObject& parent = ctx_.graph->object(target);
      const uint32_t size = std::max<uint32_t>(
          32, static_cast<uint32_t>(
                  rng_.Exponential(ctx_.config.database.mean_object_bytes)));
      const obj::ObjectId child = ctx_.graph->Create(
          parent.family, parent.version, ctx_.types.leaf,
          std::min(size, ctx_.config.page_size_bytes / 4));
      ctx_.graph->Relate(target, child, obj::RelKind::kConfiguration);
      // The new object is routed by the placement policy (hash of its id,
      // or its parent's shard under Structure_Shard), then placed by the
      // owner's cluster manager.
      const ShardView& at = ctx_.shards->AssignNew(child, target);
      const auto report = at.cluster->PlaceNew(child);
      co_await ChargePlacement(home, at, txn, report, child, prof);
      module.objects.push_back(child);
      break;
    }
    case workload::WriteKind::kDeriveVersion: {
      if (lk != nullptr) {
        co_await LockObject(lk, target, cc::LockMode::kExclusive, prof);
        if (lk->aborted) co_return;
        if (!ctx_.graph->IsLive(target)) {
          co_await WriteObject(home, txn, target, lk, prof);
          break;
        }
      }
      const auto derived =
          obj::DeriveVersion(*ctx_.graph, target, ctx_.inherit_model);
      const ShardView& at = ctx_.shards->AssignNew(derived.heir, target);
      const auto report = at.cluster->PlaceNew(derived.heir);
      co_await ChargePlacement(home, at, txn, report, derived.heir, prof);
      module.objects.push_back(derived.heir);
      module.versioned.push_back(target);
      module.versioned.push_back(derived.heir);
      break;
    }
    case workload::WriteKind::kDeleteObject: {
      if (ctx_.graph->HasNeighbor(target, obj::RelKind::kConfiguration,
                                  obj::Direction::kDown) ||
          ctx_.graph->HasNeighbor(target, obj::RelKind::kVersionHistory,
                                  obj::Direction::kDown) ||
          target == module.root) {
        // Keep the catalogue navigable: only leaves are deleted.
        co_await WriteObject(home, txn, target, lk, prof);
        break;
      }
      co_await WriteObject(home, txn, target, lk, prof);
      if (Aborted(lk)) co_return;
      // Re-check after the awaits: a concurrent transaction may have
      // deleted the object first.
      const ShardView& at = ctx_.shards->HomeOf(target);
      if (ctx_.graph->IsLive(target) && at.storage->IsPlaced(target)) {
        OODB_CHECK(at.storage->Erase(target).ok());
        ctx_.graph->Remove(target);
      }
      break;
    }
    case workload::WriteKind::kChurnDelete: {
      // Structural churn (OCB): delete the target outright, interior
      // objects included — ObjectGraph::Remove detaches every mirror
      // edge, so only the module root is off limits. This is what makes
      // static placements fragment over churn epochs.
      if (target == module.root) {
        co_await WriteObject(home, txn, target, lk, prof);
        break;
      }
      co_await WriteObject(home, txn, target, lk, prof);
      if (Aborted(lk)) co_return;
      const ShardView& at = ctx_.shards->HomeOf(target);
      if (ctx_.graph->IsLive(target) && at.storage->IsPlaced(target)) {
        OODB_CHECK(at.storage->Erase(target).ok());
        ctx_.graph->Remove(target);
      }
      break;
    }
  }
}

sim::Task TxnPipeline::MaybeReorganize(const ShardView& home,
                                       txlog::TxnId txn, TxnCc* lk,
                                       obs::SpanRecorder* prof) {
  dyn::AccessTracker& tracker = *ctx_.dyn_tracker;
  dyn::ReclusterPolicy& policy = *ctx_.dyn_policy;
  const double depth = home.io->MaxQueueDepth();
  if (depth > ctx_.metrics.value(ctx_.dyn_handles.queue_depth_peak)) {
    ctx_.metrics.Set(ctx_.dyn_handles.queue_depth_peak, depth);
  }

  if (tracker.ConsolidationDue()) {
    std::vector<dyn::ClusterUnit> units = tracker.Consolidate();
    if (!units.empty()) {
      ctx_.metrics.Add(ctx_.dyn_handles.triggers);
      ctx_.metrics.Add(ctx_.dyn_handles.units,
                       static_cast<uint64_t>(units.size()));
      ctx_.trace.Record(obs::Subsystem::kCluster,
                        obs::TraceEventType::kDynTrigger, units.size(),
                        tracker.tracked_objects(), policy.pending(), depth);
      policy.Enqueue(std::move(units), ctx_.sim.now());
    }
  }

  std::vector<dyn::ClusterUnit> batch = policy.Drain(ctx_.sim.now(), depth);
  if (batch.empty()) co_return;

  int budget = ctx_.config.clustering.dynamic.max_moves_per_txn;
  for (size_t i = 0; i < batch.size(); ++i) {
    dyn::ClusterUnit& unit = batch[i];
    if (budget <= 0) {
      // Out of per-transaction budget: the remaining units stay pending
      // and drain on later transactions.
      policy.Enqueue({std::make_move_iterator(batch.begin() + i),
                      std::make_move_iterator(batch.end())},
                     ctx_.sim.now());
      break;
    }
    if (lk != nullptr) {
      // X-lock the unit's anchor before relocating it. Reorganisation is
      // maintenance, not transaction semantics: a timed-out wait drops
      // the unit (the tracker will re-surface a still-hot anchor) rather
      // than aborting the host transaction.
      const double t0 = ctx_.sim.now();
      const bool granted = co_await ctx_.locks->Acquire(
          lk->txn, static_cast<cc::LockKey>(unit.anchor),
          cc::LockMode::kExclusive);
      const double now = ctx_.sim.now();
      if (now > t0) {
        if (prof != nullptr) {
          prof->RecordSpan(obs::SpanPhase::kLockWait, t0, now);
        }
        ctx_.metrics.Observe(ctx_.cc_handles.lock_wait_s, now - t0);
      }
      if (!granted) continue;
    }
    co_await ChargeCpu(home, ctx_.config.cluster_decision_instructions,
                       prof);
    const dyn::ReorgResult result =
        ctx_.dyn_reorganizer->Reorganize(unit, budget);
    if (result.moves.empty()) continue;
    budget -= static_cast<int>(result.moves.size());
    ctx_.metrics.Add(ctx_.dyn_handles.objects_moved,
                     static_cast<uint64_t>(result.moves.size()));
    // Every touched page is made resident (charged as a clustering read on
    // a miss, mirroring exam reads) and dirtied; the relocations reach
    // disk through the ordinary dirty-flush path.
    for (const store::PageId page : result.pages_touched) {
      const auto fix = home.buffer->Fix(page);
      NotePrefetchEviction(home.shard, fix);
      home.buffer->Pin(page);
      if (!fix.hit) {
        co_await ChargeCpu(home, ctx_.config.physical_io_instructions,
                           prof);
        if (fix.evicted_dirty) {
          // Phases here are nominal: the recorder's dyn scope is set for
          // the whole drain, so every tick lands in kDynRecluster.
          const double tf = ctx_.sim.now();
          co_await home.io->Write(fix.evicted_page,
                                  io::IoCategory::kDirtyFlush);
          if (prof != nullptr) {
            prof->RecordSpan(obs::SpanPhase::kBufferFixWait, tf,
                             ctx_.sim.now());
          }
          co_await ChargeCpu(home, ctx_.config.physical_io_instructions,
                             prof);
        }
        const double t0 = ctx_.sim.now();
        co_await home.io->Read(page, io::IoCategory::kClusterRead);
        if (prof != nullptr) {
          const sim::Resource& d = home.io->disk(home.io->DiskOf(page));
          prof->RecordQueued(obs::SpanPhase::kIoWait,
                             obs::SpanPhase::kIoService, t0,
                             d.last_start_time(), ctx_.sim.now());
        }
        ctx_.metrics.Add(ctx_.dyn_handles.reorg_reads);
      }
      home.buffer->MarkDirty(page);
      home.buffer->Unpin(page);
    }
    for (const dyn::ReorgMove& mv : result.moves) {
      co_await ChargeLogFlushes(
          home, home.log->LogWrite(txn, mv.to, mv.size_bytes), prof);
    }
    ctx_.trace.Record(obs::Subsystem::kCluster,
                      obs::TraceEventType::kDynReorg, unit.anchor,
                      result.moves.size(), result.pages_touched.size(),
                      unit.heat);
  }
}

sim::Task TxnPipeline::ExecuteTransaction(
    const workload::TransactionSpec& spec) {
  txlog::TxnId txn = next_txn_++;
  const double start = ctx_.sim.now();
  // The transaction's session lives on its target's shard: CPU for
  // logical operations, log records, and the commit force all land there.
  // With shards = 1 (or an invalid target) this is the single server.
  const ShardView& home = ctx_.shards->HomeOf(spec.target);
  // The recorder lives in this coroutine's frame: transactions interleave
  // at every await, so per-transaction recording state cannot be a
  // pipeline member. Disabled (null profiler) it allocates nothing and
  // every call through `prof` is skipped. One recorder spans every
  // retry attempt, so the 10-phase additivity invariant covers the whole
  // user-visible response time, aborted work and backoff included.
  obs::SpanRecorder recorder(ctx_.spans.get(), txn,
                             static_cast<int>(spec.type), start);
  obs::SpanRecorder* prof = recorder.enabled() ? &recorder : nullptr;
  ctx_.trace.Record(obs::Subsystem::kCore, obs::TraceEventType::kTxnBegin,
                    txn, static_cast<uint64_t>(spec.type));
  cc::LockManager* locks = ctx_.locks.get();
  // Retry-backoff jitter: a splitmix64 stream keyed on the run seed and
  // the first attempt's id — per-transaction, drawn only on aborts, so
  // it is deterministic at any job count and the cc-off path never
  // touches it.
  SplitMix64 jitter(ctx_.config.seed ^ (txn * 0x9E3779B97F4A7C15ull));
  for (int attempt = 0;; ++attempt) {
    TxnCc cc_state{txn, false};
    TxnCc* lk = locks != nullptr ? &cc_state : nullptr;
    home.log->Begin(txn);
    if (prof != nullptr) {
      prof->BeginScope(obs::SpanScope::kQuery, ctx_.sim.now());
    }
    if (spec.type == workload::QueryType::kObjectWrite) {
      co_await WriteQuery(home, spec, txn, lk, prof);
    } else {
      co_await ReadQuery(home, spec, lk, prof);
    }
    if (prof != nullptr) prof->EndScope(ctx_.sim.now());
    if (!Aborted(lk)) {
      if (ctx_.dyn_policy) {
        if (prof != nullptr) {
          prof->BeginScope(obs::SpanScope::kReorg, ctx_.sim.now());
          prof->set_dyn_scope(true);
        }
        co_await MaybeReorganize(home, txn, lk, prof);
        if (prof != nullptr) {
          prof->set_dyn_scope(false);
          prof->EndScope(ctx_.sim.now());
        }
      }
      if (prof != nullptr) {
        prof->BeginScope(obs::SpanScope::kCommit, ctx_.sim.now());
      }
      co_await ChargeLogFlushes(
          home, home.log->Commit(txn, ctx_.config.force_log_at_commit),
          prof);
      if (prof != nullptr) prof->EndScope(ctx_.sim.now());
      // Strict 2PL: every lock is held through the end of commit.
      if (locks != nullptr) locks->ReleaseAll(txn);
      break;
    }
    // Deadlock-timeout abort: undo the attempt's dirty work, release
    // everything, and either re-enter with a fresh transaction id after
    // a jittered exponential backoff or give up (work stays undone).
    co_await RollbackTransaction(home, txn, prof);
    home.log->Abort(txn);
    locks->ReleaseAll(txn);
    ctx_.metrics.Add(ctx_.cc_handles.txn_aborts);
    const bool gave_up = attempt >= ctx_.config.cc.max_retries;
    ctx_.trace.Record(obs::Subsystem::kCore,
                      obs::TraceEventType::kTxnAbort, txn,
                      static_cast<uint64_t>(attempt), gave_up ? 1 : 0);
    if (gave_up) {
      ctx_.metrics.Add(ctx_.cc_handles.txn_giveups);
      break;
    }
    ctx_.metrics.Add(ctx_.cc_handles.txn_retries);
    // ldexp scales by an exact power of two; the jitter factor is
    // uniform in [0.5, 1.5), desynchronising repeat offenders.
    const double backoff =
        std::min(std::ldexp(ctx_.config.cc.backoff_base_s, attempt),
                 ctx_.config.cc.backoff_cap_s) *
        (0.5 + jitter.NextDouble());
    const double t0 = ctx_.sim.now();
    co_await sim::Delay(ctx_.sim, backoff);
    if (prof != nullptr) {
      prof->RecordSpan(obs::SpanPhase::kLockWait, t0, ctx_.sim.now());
    }
    txn = next_txn_++;
  }
  recorder.Finish(ctx_.sim.now());
  ctx_.trace.Record(obs::Subsystem::kCore, obs::TraceEventType::kTxnEnd,
                    txn, static_cast<uint64_t>(spec.type), 0,
                    ctx_.sim.now() - start);
}

void TxnPipeline::ResetMeasurementState() {
  prefetched_unused_.clear();
  logical_reads_ = 0;
  logical_writes_ = 0;
}

}  // namespace oodb::core
