#ifndef SEMCLUST_CORE_TXN_PIPELINE_H_
#define SEMCLUST_CORE_TXN_PIPELINE_H_

#include <coroutine>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/server_context.h"
#include "sim/process.h"
#include "util/random.h"

/// \file
/// The coroutine transaction-execution layer: the read/write/recluster
/// primitives that charge CPU, disk, and log costs against a wired
/// ServerContext (paper §4.1's per-call cost model), plus the buffer-
/// semantics hooks (context-sensitive boosts and prefetching, §2.2) and
/// the prefetch-effectiveness bookkeeping. Holds the model's single
/// random stream, so the draw sequence is exactly the monolithic
/// model's. No measurement state lives here — the controller observes
/// transactions from the outside.

namespace oodb::core {

class TxnPipeline {
 public:
  explicit TxnPipeline(ServerContext& context);

  TxnPipeline(const TxnPipeline&) = delete;
  TxnPipeline& operator=(const TxnPipeline&) = delete;

  /// Runs one transaction end to end: begin, read or write body, commit
  /// (with the configured log-force policy), trace records included.
  sim::Task ExecuteTransaction(const workload::TransactionSpec& spec);

  // Logical-operation counters (cumulative; reset at the measurement
  // boundary by the controller).
  uint64_t logical_reads() const { return logical_reads_; }
  uint64_t logical_writes() const { return logical_writes_; }

  /// Resets the logical counters and forgets warmup-era prefetches, so
  /// the measured window keeps the invariant hits + wasted <= issued.
  void ResetMeasurementState();

 private:
  // Every primitive below takes the running transaction's span recorder
  // (`prof`, null when profiling is off) and attributes the simulated
  // time of each of its awaits to one phase of the additive taxonomy
  // (DESIGN.md §14). The recorder lives in ExecuteTransaction's coroutine
  // frame — transactions interleave at every await, so it cannot be
  // pipeline state — and is threaded down by pointer.

  // Read-side primitives.
  sim::Task AccessObject(obj::ObjectId id, obj::TypeId from_type,
                         int nav_kind, obs::SpanRecorder* prof);
  /// Makes `page` resident, charging I/O. With `pin`, the page is pinned
  /// before any suspension and stays pinned on return (caller unpins) —
  /// required when the caller mutates the frame after the awaits.
  sim::Task FetchPage(store::PageId page, obs::SpanRecorder* prof,
                      bool pin = false);
  sim::Task ReadQuery(const workload::TransactionSpec& spec,
                      obs::SpanRecorder* prof);

  // Write-side primitives.
  sim::Task WriteQuery(const workload::TransactionSpec& spec,
                       txlog::TxnId txn, obs::SpanRecorder* prof);
  sim::Task LogAndDirty(txlog::TxnId txn, store::PageId page,
                        uint32_t object_size, obs::SpanRecorder* prof);
  /// Object-level write that tolerates concurrent deletion of `id`.
  sim::Task WriteObject(txlog::TxnId txn, obj::ObjectId id,
                        obs::SpanRecorder* prof);
  sim::Task ChargeExamReads(const cluster::PlacementReport& report,
                            obs::SpanRecorder* prof);
  sim::Task ChargeSplit(txlog::TxnId txn,
                        const cluster::PlacementReport& report,
                        obs::SpanRecorder* prof);
  sim::Task ChargePlacement(txlog::TxnId txn,
                            const cluster::PlacementReport& report,
                            obj::ObjectId placed, obs::SpanRecorder* prof);
  sim::Task ReclusterAfterStructureChange(txlog::TxnId txn,
                                          obj::ObjectId id,
                                          obs::SpanRecorder* prof);
  /// Dynamic re-clustering drain (src/dyn/), run at the end of every
  /// transaction before its commit: consolidates the access tracker when
  /// its observation period elapses, asks the DSTC/OPCF policy which
  /// clustering units may execute now, and charges every touched page and
  /// log record to this transaction on the virtual clock. Only called
  /// when a dynamic policy is enabled.
  sim::Task MaybeReorganize(txlog::TxnId txn, obs::SpanRecorder* prof);

  sim::Task ChargeCpu(double instructions, obs::SpanRecorder* prof);
  sim::Task ChargeLogFlushes(int flushes, obs::SpanRecorder* prof);

  // Buffer-semantics hooks (boosts + prefetch) after an object access.
  void PostAccess(obj::ObjectId id);
  void StartPrefetch(store::PageId page);
  void OnPrefetchComplete(store::PageId page);

  /// Awaits completion of an in-flight prefetch of `page`.
  class PrefetchJoin {
   public:
    PrefetchJoin(TxnPipeline& pipeline, store::PageId page)
        : pipeline_(pipeline), page_(page) {}
    bool await_ready() const {
      return pipeline_.inflight_.find(page_) == pipeline_.inflight_.end();
    }
    void await_suspend(std::coroutine_handle<> h) {
      pipeline_.inflight_[page_].push_back(h);
    }
    void await_resume() {}

   private:
    TxnPipeline& pipeline_;
    store::PageId page_;
  };

  /// Prefetch-effectiveness bookkeeping around a Fix: if the eviction the
  /// fix caused threw out a prefetched-but-never-referenced page, that
  /// prefetch was wasted.
  void NotePrefetchEviction(const buffer::BufferPool::FixResult& fix);
  /// Records a demand access to `page`; a pending prefetch of it counts
  /// as a prefetch hit.
  void NotePrefetchDemand(store::PageId page);

  ServerContext& ctx_;
  Rng rng_;

  txlog::TxnId next_txn_ = 1;
  uint64_t logical_reads_ = 0;
  uint64_t logical_writes_ = 0;

  // In-flight prefetch reads: page -> waiting processes.
  std::unordered_map<store::PageId, std::vector<std::coroutine_handle<>>>
      inflight_;

  // Pages brought in (or being brought in) by prefetch that no demand
  // access has referenced yet: a later demand access scores a hit, an
  // eviction first scores a waste.
  std::unordered_set<store::PageId> prefetched_unused_;
};

}  // namespace oodb::core

#endif  // SEMCLUST_CORE_TXN_PIPELINE_H_
