#ifndef SEMCLUST_CORE_TXN_PIPELINE_H_
#define SEMCLUST_CORE_TXN_PIPELINE_H_

#include <coroutine>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cc/lock_manager.h"
#include "core/server_context.h"
#include "core/sharding.h"
#include "sim/process.h"
#include "util/random.h"

/// \file
/// The coroutine transaction-execution layer: the read/write/recluster
/// primitives that charge CPU, disk, and log costs against a wired
/// ServerContext (paper §4.1's per-call cost model), plus the buffer-
/// semantics hooks (context-sensitive boosts and prefetching, §2.2) and
/// the prefetch-effectiveness bookkeeping. Holds the model's single
/// random stream, so the draw sequence is exactly the monolithic
/// model's. No measurement state lives here — the controller observes
/// transactions from the outside.
///
/// Sharding (DESIGN.md §15) threads through this layer as frame-local
/// ShardView references, never pipeline state: a transaction executes on
/// the *home* shard of its target (session CPU, log records, commit
/// forces), and each object access resolves its owner's view and routes
/// the page work there — through FetchPageRouted, which charges the
/// cross-shard hop cost when owner != home. With `shards = 1` every view
/// is the same alias of the single server's components, the routing
/// branch never fires, and the execution is bit-identical to the
/// pre-sharding pipeline.
///
/// Concurrency control (DESIGN.md §16) threads the same way: a
/// frame-local TxnCc pointer (`lk`, null when `ModelConfig::cc` is off)
/// carries the attempt's transaction id and abort flag through the
/// primitives, which acquire strict-2PL object locks before touching
/// data and unwind on a deadlock-timeout abort; ExecuteTransaction then
/// rolls the attempt back through the log manager and retries with
/// jittered exponential backoff. Page latches ride the buffer-fix path
/// directly off `ctx_.locks` and need no per-transaction state.

namespace oodb::core {

class TxnPipeline {
 public:
  explicit TxnPipeline(ServerContext& context);

  TxnPipeline(const TxnPipeline&) = delete;
  TxnPipeline& operator=(const TxnPipeline&) = delete;

  /// Runs one transaction end to end: begin, read or write body, commit
  /// (with the configured log-force policy), trace records included.
  sim::Task ExecuteTransaction(const workload::TransactionSpec& spec);

  // Logical-operation counters (cumulative; reset at the measurement
  // boundary by the controller).
  uint64_t logical_reads() const { return logical_reads_; }
  uint64_t logical_writes() const { return logical_writes_; }

  /// Resets the logical counters and forgets warmup-era prefetches, so
  /// the measured window keeps the invariant hits + wasted <= issued.
  void ResetMeasurementState();

 private:
  // Every primitive below takes the running transaction's span recorder
  // (`prof`, null when profiling is off) and attributes the simulated
  // time of each of its awaits to one phase of the additive taxonomy
  // (DESIGN.md §14). The recorder lives in ExecuteTransaction's coroutine
  // frame — transactions interleave at every await, so it cannot be
  // pipeline state — and is threaded down by pointer. ShardView
  // references ride the same way: `home` is the transaction's session
  // shard, `at` the shard whose components execute the page work.

  /// Frame-local concurrency state of one transaction *attempt*,
  /// threaded by pointer (`lk`) exactly like the span recorder — null
  /// when the cc subsystem is off, so the disabled pipeline takes no
  /// lock branch anywhere. Primitives that acquire locks set `aborted`
  /// on a deadlock timeout; callers check it after every awaited
  /// sub-primitive and unwind without further mutation.
  struct TxnCc {
    txlog::TxnId txn = 0;
    bool aborted = false;
  };
  static bool Aborted(const TxnCc* lk) {
    return lk != nullptr && lk->aborted;
  }

  /// Acquires `id` in `mode` for `lk->txn` through the lock manager:
  /// records any queueing delay as a `lock_wait` span leaf and in the
  /// cc wait histogram, emits grant/wait/timeout trace events, and sets
  /// `lk->aborted` when the wait timed out. Only called with a live
  /// lock manager.
  sim::Task LockObject(TxnCc* lk, obj::ObjectId id, cc::LockMode mode,
                       obs::SpanRecorder* prof);

  /// Undoes an aborted attempt's dirty work: walks the pages the log
  /// manager saw the transaction touch (sorted — deterministic), fetches
  /// each, re-dirties it, and appends an object-sized compensation log
  /// record. Physical re-organisation (splits, reclustering moves) is
  /// not undone — like real schema-modification operations, placement
  /// changes are orthogonal to logical atomicity.
  sim::Task RollbackTransaction(const ShardView& home, txlog::TxnId txn,
                                obs::SpanRecorder* prof);

  // Read-side primitives.
  sim::Task AccessObject(const ShardView& home, obj::ObjectId id,
                         obj::TypeId from_type, int nav_kind, TxnCc* lk,
                         obs::SpanRecorder* prof);
  /// Makes `page` resident in `at`'s pool, charging `at`'s I/O. With
  /// `pin`, the page is pinned before any suspension and stays pinned on
  /// return (caller unpins) — required when the caller mutates the frame
  /// after the awaits.
  sim::Task FetchPage(const ShardView& at, store::PageId page,
                      obs::SpanRecorder* prof, bool pin = false);
  /// FetchPage routed across shards: local when `at` is `home`'s shard,
  /// otherwise a request hop on home's NIC, the fetch on `at`, and a
  /// response hop back — the whole remote interval recorded as one
  /// `remote_fetch_wait` leaf (the inner fetch runs unprofiled so the
  /// span taxonomy stays additive).
  sim::Task FetchPageRouted(const ShardView& home, const ShardView& at,
                            store::PageId page, obs::SpanRecorder* prof,
                            bool pin = false);
  sim::Task ReadQuery(const ShardView& home,
                      const workload::TransactionSpec& spec, TxnCc* lk,
                      obs::SpanRecorder* prof);

  // Write-side primitives.
  sim::Task WriteQuery(const ShardView& home,
                       const workload::TransactionSpec& spec,
                       txlog::TxnId txn, TxnCc* lk,
                       obs::SpanRecorder* prof);
  sim::Task LogAndDirty(const ShardView& home, const ShardView& at,
                        txlog::TxnId txn, store::PageId page,
                        uint32_t object_size, obs::SpanRecorder* prof);
  /// Object-level write that tolerates concurrent deletion of `id`.
  sim::Task WriteObject(const ShardView& home, txlog::TxnId txn,
                        obj::ObjectId id, TxnCc* lk,
                        obs::SpanRecorder* prof);
  sim::Task ChargeExamReads(const ShardView& at,
                            const cluster::PlacementReport& report,
                            obs::SpanRecorder* prof);
  sim::Task ChargeSplit(const ShardView& home, const ShardView& at,
                        txlog::TxnId txn,
                        const cluster::PlacementReport& report,
                        obs::SpanRecorder* prof);
  sim::Task ChargePlacement(const ShardView& home, const ShardView& at,
                            txlog::TxnId txn,
                            const cluster::PlacementReport& report,
                            obj::ObjectId placed, obs::SpanRecorder* prof);
  sim::Task ReclusterAfterStructureChange(const ShardView& home,
                                          txlog::TxnId txn,
                                          obj::ObjectId id, TxnCc* lk,
                                          obs::SpanRecorder* prof);
  /// Dynamic re-clustering drain (src/dyn/), run at the end of every
  /// transaction before its commit: consolidates the access tracker when
  /// its observation period elapses, asks the DSTC/OPCF policy which
  /// clustering units may execute now, and charges every touched page and
  /// log record to this transaction on the virtual clock. Only called
  /// when a dynamic policy is enabled (which Validate rejects for
  /// shards > 1, so `home` is always the single server here).
  sim::Task MaybeReorganize(const ShardView& home, txlog::TxnId txn,
                            TxnCc* lk, obs::SpanRecorder* prof);

  sim::Task ChargeCpu(const ShardView& at, double instructions,
                      obs::SpanRecorder* prof);
  sim::Task ChargeLogFlushes(const ShardView& home, int flushes,
                             obs::SpanRecorder* prof);

  // Buffer-semantics hooks (boosts + prefetch) after an object access,
  // against the components of the shard that holds the object.
  void PostAccess(const ShardView& at, obj::ObjectId id);
  void StartPrefetch(const ShardView& at, store::PageId page);
  void OnPrefetchComplete(int shard, store::PageId page);

  /// Prefetch bookkeeping key: pages live per shard, so the maps below
  /// key on (shard, page). Shard 0 keys equal the bare page id, and the
  /// maps are never iterated, so the single-server draw/metric sequence
  /// is untouched by the wider key.
  static uint64_t PrefetchKey(int shard, store::PageId page) {
    return (static_cast<uint64_t>(shard) << 32) |
           static_cast<uint64_t>(page);
  }

  /// Awaits completion of an in-flight prefetch keyed by PrefetchKey.
  class PrefetchJoin {
   public:
    PrefetchJoin(TxnPipeline& pipeline, uint64_t key)
        : pipeline_(pipeline), key_(key) {}
    bool await_ready() const {
      return pipeline_.inflight_.find(key_) == pipeline_.inflight_.end();
    }
    void await_suspend(std::coroutine_handle<> h) {
      pipeline_.inflight_[key_].push_back(h);
    }
    void await_resume() {}

   private:
    TxnPipeline& pipeline_;
    uint64_t key_;
  };

  /// Prefetch-effectiveness bookkeeping around a Fix: if the eviction the
  /// fix caused threw out a prefetched-but-never-referenced page, that
  /// prefetch was wasted.
  void NotePrefetchEviction(int shard,
                            const buffer::BufferPool::FixResult& fix);
  /// Records a demand access to `page` on `shard`; a pending prefetch of
  /// it counts as a prefetch hit.
  void NotePrefetchDemand(int shard, store::PageId page);

  ServerContext& ctx_;
  Rng rng_;

  txlog::TxnId next_txn_ = 1;
  uint64_t logical_reads_ = 0;
  uint64_t logical_writes_ = 0;

  // In-flight prefetch reads: (shard, page) key -> waiting processes.
  std::unordered_map<uint64_t, std::vector<std::coroutine_handle<>>>
      inflight_;

  // Pages brought in (or being brought in) by prefetch that no demand
  // access has referenced yet: a later demand access scores a hit, an
  // eviction first scores a waste. Keyed like `inflight_`.
  std::unordered_set<uint64_t> prefetched_unused_;
};

}  // namespace oodb::core

#endif  // SEMCLUST_CORE_TXN_PIPELINE_H_
