#include "core/model_config.h"

#include <string>

namespace oodb::core {

namespace {

Status Invalid(const std::string& what) {
  return Status::InvalidArgument("invalid ModelConfig: " + what);
}

}  // namespace

const char* ArrivalProcessName(ArrivalProcess a) {
  switch (a) {
    case ArrivalProcess::kClosed:
      return "Closed";
    case ArrivalProcess::kOpen:
      return "Open";
  }
  return "unknown";
}

std::string ModelConfig::WorkloadLabel() const {
  return ocb.enabled ? ocb.Label(workload.read_write_ratio)
                     : workload.Label();
}

Status ModelConfig::Validate() const {
  if (const Status ocb_status = ocb.Validate(); !ocb_status.ok()) {
    return ocb_status;
  }
  if (const Status dyn_status = clustering.dynamic.Validate();
      !dyn_status.ok()) {
    return Invalid(dyn_status.message());
  }
  if (database_bytes == 0) {
    return Invalid(
        "database_bytes is 0; the builder would create an empty database "
        "and the workload generator would have nothing to access");
  }
  if (page_size_bytes == 0) {
    return Invalid(
        "page_size_bytes is 0; page math (buffer scaling, striping, fill "
        "fractions) divides by the page size");
  }
  if (num_users <= 0) {
    return Invalid("num_users is " + std::to_string(num_users) +
                   "; at least one user process must submit transactions "
                   "or the simulation never terminates");
  }
  if (num_disks <= 0) {
    return Invalid("num_disks is " + std::to_string(num_disks) +
                   "; the I/O subsystem needs at least one disk to stripe "
                   "pages across");
  }
  if (buffer_pages < 8) {
    return Invalid("buffer_pages is " + std::to_string(buffer_pages) +
                   "; the pool needs at least 8 frames to hold a pinned "
                   "read-modify-write page plus an eviction victim under "
                   "concurrent transactions (ScaledBuffers clamps here)");
  }
  if (measured_transactions <= 0) {
    return Invalid("measured_transactions is " +
                   std::to_string(measured_transactions) +
                   "; a run must measure at least one transaction to "
                   "terminate");
  }
  if (warmup_transactions < 0) {
    return Invalid("warmup_transactions is " +
                   std::to_string(warmup_transactions) +
                   "; use 0 to measure from the first transaction");
  }
  if (measurement_epochs < 1) {
    return Invalid("measurement_epochs is " +
                   std::to_string(measurement_epochs) +
                   "; the measured phase is split into >= 1 epochs "
                   "(1 disables the per-epoch breakdown)");
  }
  if (span_exemplars < 0) {
    return Invalid("span_exemplars is " + std::to_string(span_exemplars) +
                   "; the slow-transaction reservoir size must be >= 0 "
                   "(0 disables exemplar capture)");
  }
  if (shards < 1 || shards > 64) {
    return Invalid("shards is " + std::to_string(shards) +
                   "; the model supports 1 (single server, the exact "
                   "pre-sharding behaviour) up to 64 shards");
  }
  if (!(shard_hop_latency_s >= 0)) {
    return Invalid("shard_hop_latency_s is " +
                   std::to_string(shard_hop_latency_s) +
                   "; the cross-shard hop latency must be >= 0");
  }
  if (shard_group_cap < 1) {
    return Invalid("shard_group_cap is " + std::to_string(shard_group_cap) +
                   "; Structure_Shard groups must hold at least one object");
  }
  if (shards > 1 && clustering.dynamic.enabled()) {
    return Invalid(
        "shards > 1 with a dynamic re-clustering policy; the dynamic "
        "subsystem (src/dyn/) tracks the single server's components and "
        "is not shard-aware yet — run it with shards = 1");
  }
  if (const Status cc_status = cc.Validate(); !cc_status.ok()) {
    return Invalid(cc_status.message());
  }
  if (cc.enabled && shards > 1) {
    return Invalid(
        "shards > 1 with the concurrency-control subsystem enabled; the "
        "rollback path maps logged pages back through the single server's "
        "components and is not shard-aware yet — run cc with shards = 1");
  }
  if (arrival == ArrivalProcess::kOpen && !(arrival_rate_tps > 0)) {
    return Invalid("arrival_rate_tps is " + std::to_string(arrival_rate_tps) +
                   "; open Poisson arrivals need a positive mean rate");
  }
  for (size_t i = 0; i < rw_ratio_schedule.size(); ++i) {
    if (!(rw_ratio_schedule[i] > 0)) {
      return Invalid("rw_ratio_schedule[" + std::to_string(i) + "] is " +
                     std::to_string(rw_ratio_schedule[i]) +
                     "; scheduled read/write ratios are reads per write "
                     "and must be > 0");
    }
  }
  return Status::Ok();
}

ModelConfig PaperScaleConfig() {
  ModelConfig cfg;
  cfg.database_bytes = 500ull << 20;
  cfg.buffer_pages = 1000;
  cfg.database.target_bytes = cfg.database_bytes;
  return cfg;
}

ModelConfig ScaledConfig() {
  ModelConfig cfg;
  cfg.database.target_bytes = cfg.database_bytes;
  cfg.buffer_pages = cfg.BufferMedium();
  return cfg;
}

ModelConfig TestConfig() {
  ModelConfig cfg;
  cfg.database_bytes = 2ull << 20;
  cfg.database.target_bytes = cfg.database_bytes;
  cfg.buffer_pages = 64;
  cfg.warmup_transactions = 50;
  cfg.measured_transactions = 300;
  return cfg;
}

}  // namespace oodb::core
