#ifndef SEMCLUST_CORE_SHARDING_H_
#define SEMCLUST_CORE_SHARDING_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "objmodel/object_id.h"

/// \file
/// The shard-placement layer (DESIGN.md §15): one simulated system is N
/// shards on the shared virtual clock, each with its own buffer pool,
/// disks, log manager, cluster manager, CPU, and NIC. Objects are
/// partitioned across shards by a declarative placement policy —
/// `Hash_Shard` spreads object ids uniformly, `Structure_Shard` keeps
/// composite-object subgraphs and their inheritance neighbourhoods on one
/// shard using the affinity machinery the clustering policies already
/// use — the distributed analogue of the paper's clustering insight.
///
/// A transaction executes on the *home* shard of its target object
/// (session CPU, log records, and commit forces all land there);
/// references that resolve to another shard pay the cross-shard cost
/// model: a request hop on the home NIC, the buffer fix / miss I/O on the
/// owner shard, and a response hop on the owner NIC, metered as the span
/// phase `remote_fetch_wait`.
///
/// Hard invariant: with `shards = 1` the ShardedContext is a pure alias
/// layer over the single server's components — it allocates no per-shard
/// state, registers no metrics, draws no random numbers, and awaits
/// nothing, so every single-server run is bit-identical to the
/// pre-sharding model (the fig5.1 rtol-0 gate enforces this).

namespace oodb::buffer {
class BufferPool;
}
namespace oodb::cluster {
class ClusterManager;
}
namespace oodb::io {
class IoSubsystem;
}
namespace oodb::sim {
class Resource;
}
namespace oodb::store {
class StorageManager;
}
namespace oodb::txlog {
class LogManager;
}

namespace oodb::core {

class ServerContext;

/// How objects are partitioned across shards.
enum class ShardPlacement : uint8_t {
  /// splitmix64(object id) mod N: uniform, structure-oblivious — the
  /// baseline every distributed store can implement.
  kHashShard = 0,
  /// Composite-object subgraphs (configuration, version-history, and
  /// instance-inheritance neighbourhoods; correspondence edges cross
  /// representation types and are excluded) grouped to a bounded size and
  /// assigned whole to the least-loaded shard. Group growth is ordered by
  /// the AffinityModel's edge weights, so the hottest structural
  /// neighbours co-locate first when the group cap binds.
  kStructureShard = 1,
};
inline constexpr int kNumShardPlacements = 2;

/// Every placement, in enum order (for registries and sweeps).
inline constexpr ShardPlacement kAllShardPlacements[] = {
    ShardPlacement::kHashShard, ShardPlacement::kStructureShard};

/// Canonical display name: "Hash_Shard" / "Structure_Shard".
const char* ShardPlacementName(ShardPlacement p);

/// One shard's component set, as the transaction pipeline sees it. For
/// shard 0 the pointers alias the ServerContext's own components; shards
/// 1..N-1 point at state the ShardedContext owns. `nic` is null when the
/// model runs unsharded (N = 1) — no hop is ever charged then.
struct ShardView {
  int shard = 0;
  store::StorageManager* storage = nullptr;
  buffer::BufferPool* buffer = nullptr;
  cluster::ClusterManager* cluster = nullptr;
  io::IoSubsystem* io = nullptr;
  txlog::LogManager* log = nullptr;
  sim::Resource* cpu = nullptr;
  sim::Resource* nic = nullptr;
};

/// Owns the N-shard generalisation of one ServerContext: the per-shard
/// component sets, the object-to-shard owner map, and the cross-shard
/// reference counters. Constructed unconditionally (N >= 1) by the
/// ServerContext, after the database build and optional static
/// reorganisation; with N > 1 it computes the placement and migrates
/// every object owned by shards 1..N-1 out of the build-time storage.
class ShardedContext {
 public:
  explicit ShardedContext(ServerContext& ctx);
  ~ShardedContext();

  ShardedContext(const ShardedContext&) = delete;
  ShardedContext& operator=(const ShardedContext&) = delete;

  int num_shards() const { return static_cast<int>(views_.size()); }
  bool sharded() const { return views_.size() > 1; }

  const ShardView& view(int shard) const {
    return views_[static_cast<size_t>(shard)];
  }

  /// Owning shard of `id` (0 when unsharded, or for ids the map has never
  /// seen — kInvalidObject targets route to shard 0 harmlessly).
  int OwnerOf(obj::ObjectId id) const {
    if (views_.size() == 1) return 0;
    return id < owner_.size() ? owner_[id] : 0;
  }

  const ShardView& HomeOf(obj::ObjectId id) const {
    return views_[static_cast<size_t>(OwnerOf(id))];
  }

  /// Routes a newly created object: hash placement hashes the new id,
  /// structure placement co-locates it with `parent` (the object it was
  /// created attached to). Returns the owning shard's view. Deterministic
  /// and RNG-free; a no-op alias of shard 0 when unsharded.
  const ShardView& AssignNew(obj::ObjectId id, obj::ObjectId parent);

  /// Network hop latency for one direction of a cross-shard reference.
  double hop_latency_s() const { return hop_latency_s_; }

  /// Cross-shard reference bookkeeping (plain counts — mirrored into the
  /// metrics registry by the MeasurementController only when sharded, so
  /// an unsharded snapshot layout is untouched).
  struct Counters {
    uint64_t local_fetches = 0;   ///< routed page fetches on the home shard
    uint64_t remote_fetches = 0;  ///< routed page fetches paying the hops
    uint64_t remote_writes = 0;   ///< object writes owned by a remote shard
    uint64_t hops = 0;            ///< NIC traversals (2 per remote fetch)
  };
  Counters& counters() { return counters_; }
  const Counters& counters() const { return counters_; }
  void ResetCounters() { counters_ = Counters{}; }

  /// Bytes of live objects assigned per shard at placement time
  /// (diagnostics and load-balance tests; empty when unsharded).
  const std::vector<uint64_t>& assigned_bytes() const {
    return assigned_bytes_;
  }

 private:
  struct ShardState;  // components owned for shards 1..N-1, NICs for all

  void ComputeOwners();
  /// Moves every live object owned by shards 1..N-1 from the build-time
  /// storage into its owner's storage through the owner's cluster manager
  /// (so the clustering policy under test shapes each shard's layout).
  void MigrateToOwners();
  int LeastLoadedShard() const;

  ServerContext& ctx_;
  ShardPlacement placement_ = ShardPlacement::kHashShard;
  double hop_latency_s_ = 0;
  int group_cap_ = 1;

  std::vector<std::unique_ptr<ShardState>> states_;
  std::vector<ShardView> views_;
  std::vector<uint8_t> owner_;  // per ObjectId; shards are capped at 64
  std::vector<uint64_t> assigned_bytes_;
  Counters counters_;
};

}  // namespace oodb::core

#endif  // SEMCLUST_CORE_SHARDING_H_
