#include "core/sharding.h"

#include <algorithm>
#include <string>
#include <utility>

#include "buffer/buffer_pool.h"
#include "cluster/cluster_manager.h"
#include "core/server_context.h"
#include "io/io_subsystem.h"
#include "sim/resource.h"
#include "storage/storage_manager.h"
#include "txlog/log_manager.h"
#include "util/check.h"
#include "util/random.h"

namespace oodb::core {

namespace {

/// Stateless hash of an object id onto [0, shards): the Hash_Shard
/// placement and the routing function for hash-placed inserts. SplitMix64
/// is a full-avalanche mixer, so consecutive ids spread uniformly.
int HashOwner(obj::ObjectId id, int shards) {
  return static_cast<int>(SplitMix64(id).Next() %
                          static_cast<uint64_t>(shards));
}

}  // namespace

const char* ShardPlacementName(ShardPlacement p) {
  switch (p) {
    case ShardPlacement::kHashShard:
      return "Hash_Shard";
    case ShardPlacement::kStructureShard:
      return "Structure_Shard";
  }
  return "unknown";
}

/// Components owned per shard. Shard 0 reuses the ServerContext's own
/// component set (only the NIC lives here); shards 1..N-1 own a full set,
/// wired exactly like the ServerContext wires shard 0's.
struct ShardedContext::ShardState {
  std::unique_ptr<store::StorageManager> storage;
  std::unique_ptr<buffer::BufferPool> buffer;
  std::unique_ptr<cluster::ClusterManager> cluster;
  std::unique_ptr<io::IoSubsystem> io;
  std::unique_ptr<txlog::LogManager> log;
  std::unique_ptr<sim::Resource> cpu;
  std::unique_ptr<sim::Resource> nic;
};

ShardedContext::ShardedContext(ServerContext& ctx)
    : ctx_(ctx),
      placement_(ctx.config.shard_placement),
      hop_latency_s_(ctx.config.shard_hop_latency_s),
      group_cap_(ctx.config.shard_group_cap) {
  const ModelConfig& config = ctx.config;
  const int n = config.shards;
  OODB_CHECK_GE(n, 1);

  ShardView base;
  base.shard = 0;
  base.storage = ctx.storage.get();
  base.buffer = ctx.buffer.get();
  base.cluster = ctx.cluster.get();
  base.io = ctx.io.get();
  base.log = ctx.log.get();
  base.cpu = ctx.cpu.get();
  views_.push_back(base);
  if (n == 1) return;  // pure alias layer: nothing allocated, no NIC

  states_.reserve(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    auto state = std::make_unique<ShardState>();
    const std::string prefix = "shard" + std::to_string(s) + ".";
    state->nic = std::make_unique<sim::Resource>(ctx.sim, prefix + "nic", 1);
    if (s == 0) {
      views_[0].nic = state->nic.get();
      states_.push_back(std::move(state));
      continue;
    }
    state->storage = std::make_unique<store::StorageManager>(
        config.page_size_bytes, config.append_fill_fraction);
    // Each shard's pool draws from its own stream; the golden-ratio
    // stride keeps shard seeds distinct for every base seed.
    state->buffer = std::make_unique<buffer::BufferPool>(
        config.buffer_pages, config.replacement,
        (config.seed ^ 0xB0FFEB0FF) +
            static_cast<uint64_t>(s) * 0x9E3779B97F4A7C15ull);
    state->cluster = std::make_unique<cluster::ClusterManager>(
        ctx.graph.get(), state->storage.get(), ctx.affinity.get(),
        state->buffer.get(), config.clustering);
    state->io = std::make_unique<io::IoSubsystem>(
        ctx.sim, config.num_disks, config.page_size_bytes, config.disk);
    state->log = std::make_unique<txlog::LogManager>(
        config.log_buffer_bytes, config.page_size_bytes);
    state->cpu = std::make_unique<sim::Resource>(ctx.sim, prefix + "cpu", 1);

    ShardView v;
    v.shard = s;
    v.storage = state->storage.get();
    v.buffer = state->buffer.get();
    v.cluster = state->cluster.get();
    v.io = state->io.get();
    v.log = state->log.get();
    v.cpu = state->cpu.get();
    v.nic = state->nic.get();
    views_.push_back(v);
    states_.push_back(std::move(state));
  }

  assigned_bytes_.assign(static_cast<size_t>(n), 0);
  ComputeOwners();
  MigrateToOwners();

  // Same after-the-build attachment rule as the ServerContext: migration
  // is part of database construction, not the run.
  for (int s = 1; s < n; ++s) {
    views_[static_cast<size_t>(s)].buffer->set_trace(&ctx.trace);
    views_[static_cast<size_t>(s)].io->set_trace(&ctx.trace);
    views_[static_cast<size_t>(s)].log->set_trace(&ctx.trace);
    views_[static_cast<size_t>(s)].cluster->set_trace(&ctx.trace);
  }
}

ShardedContext::~ShardedContext() = default;

int ShardedContext::LeastLoadedShard() const {
  int best = 0;
  for (int s = 1; s < num_shards(); ++s) {
    if (assigned_bytes_[static_cast<size_t>(s)] <
        assigned_bytes_[static_cast<size_t>(best)]) {
      best = s;
    }
  }
  return best;
}

void ShardedContext::ComputeOwners() {
  const obj::ObjectGraph& graph = *ctx_.graph;
  const int n = num_shards();
  owner_.assign(graph.size(), 0);

  if (placement_ == ShardPlacement::kHashShard) {
    for (obj::ObjectId id = 0; id < owner_.size(); ++id) {
      if (!graph.IsLive(id)) continue;
      const int s = HashOwner(id, n);
      owner_[id] = static_cast<uint8_t>(s);
      assigned_bytes_[static_cast<size_t>(s)] +=
          graph.object(id).size_bytes;
    }
    return;
  }

  // Structure_Shard: grow bounded groups over the structural edges —
  // configuration, version-history, and instance-inheritance in both
  // directions; correspondence crosses representation types (schematic vs
  // layout) and is the one relationship the paper's traversals rarely
  // follow, so it is the natural cut edge. Expansion is breadth-first
  // from each unvisited object in id order, neighbours taken heaviest
  // affinity first, so when the group cap binds the closest structural
  // relatives made it in. Each finished group lands whole on the
  // least-loaded shard. Deterministic and RNG-free throughout.
  std::vector<uint8_t> visited(graph.size(), 0);
  std::vector<obj::ObjectId> group;
  struct Neighbour {
    double weight;
    obj::ObjectId id;
  };
  std::vector<Neighbour> frontier;
  for (obj::ObjectId seed = 0; seed < graph.size(); ++seed) {
    if (!graph.IsLive(seed) || visited[seed]) continue;
    group.clear();
    group.push_back(seed);
    visited[seed] = 1;
    for (size_t at = 0;
         at < group.size() &&
         group.size() < static_cast<size_t>(group_cap_);
         ++at) {
      const obj::ObjectId from = group[at];
      frontier.clear();
      for (const obj::Edge e : graph.edges(from)) {
        if (e.kind == obj::RelKind::kCorrespondence) continue;
        if (!graph.IsLive(e.target) || visited[e.target]) continue;
        frontier.push_back(
            Neighbour{ctx_.affinity->EdgeWeight(graph, from, e), e.target});
      }
      std::sort(frontier.begin(), frontier.end(),
                [](const Neighbour& a, const Neighbour& b) {
                  if (a.weight != b.weight) return a.weight > b.weight;
                  return a.id < b.id;
                });
      for (const Neighbour& nb : frontier) {
        if (group.size() >= static_cast<size_t>(group_cap_)) break;
        if (visited[nb.id]) continue;  // reachable twice within `frontier`
        visited[nb.id] = 1;
        group.push_back(nb.id);
      }
    }
    const int s = LeastLoadedShard();
    for (const obj::ObjectId id : group) {
      owner_[id] = static_cast<uint8_t>(s);
      assigned_bytes_[static_cast<size_t>(s)] +=
          graph.object(id).size_bytes;
    }
  }
}

void ShardedContext::MigrateToOwners() {
  // Objects owned by shards 1..N-1 leave the build-time storage and are
  // re-placed by their owner's cluster manager in id order, so the
  // clustering policy under test shapes each shard's page layout just as
  // it shaped the single server's. Build-phase placement carries no
  // simulated cost (the DbBuilder's placements don't either); the reports
  // are dropped. Shard 0 keeps its build-time pages untouched.
  const obj::ObjectGraph& graph = *ctx_.graph;
  for (obj::ObjectId id = 0; id < owner_.size(); ++id) {
    if (!graph.IsLive(id) || owner_[id] == 0) continue;
    if (!ctx_.storage->IsPlaced(id)) continue;
    OODB_CHECK(ctx_.storage->Erase(id).ok());
    const ShardView& v = views_[owner_[id]];
    const cluster::PlacementReport report = v.cluster->PlaceNew(id);
    OODB_CHECK(report.page != store::kInvalidPage);
  }
  for (int s = 1; s < num_shards(); ++s) {
    views_[static_cast<size_t>(s)].cluster->ResetStats();
  }
}

const ShardView& ShardedContext::AssignNew(obj::ObjectId id,
                                           obj::ObjectId parent) {
  if (!sharded()) return views_[0];
  const int s = placement_ == ShardPlacement::kHashShard
                    ? HashOwner(id, num_shards())
                    : OwnerOf(parent);
  if (id >= owner_.size()) owner_.resize(id + 1, 0);
  owner_[id] = static_cast<uint8_t>(s);
  if (ctx_.graph->IsLive(id)) {
    assigned_bytes_[static_cast<size_t>(s)] +=
        ctx_.graph->object(id).size_bytes;
  }
  return views_[static_cast<size_t>(s)];
}

}  // namespace oodb::core
