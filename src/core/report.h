#ifndef SEMCLUST_CORE_REPORT_H_
#define SEMCLUST_CORE_REPORT_H_

#include <ostream>
#include <string>

#include "core/engineering_db.h"

/// \file
/// Human-readable and CSV rendering of simulation results, shared by
/// examples and downstream users of the library.

namespace oodb::core {

/// Prints a full multi-section report of one run: response times (overall,
/// read/write, per query type, per epoch when more than one), the logical
/// and physical I/O budget, buffer and log statistics, and the clustering
/// activity counters.
void PrintRunReport(std::ostream& os, const ModelConfig& config,
                    const RunResult& result);

/// One CSV line (plus a header line via CsvHeader) summarising a run —
/// convenient for collecting sweeps into a spreadsheet.
std::string CsvHeader();
std::string ToCsvRow(const std::string& label, const RunResult& result);

}  // namespace oodb::core

#endif  // SEMCLUST_CORE_REPORT_H_
