#include "core/policy_registry.h"

#include <cctype>

#include "util/check.h"

namespace oodb::core {

namespace {

/// Lookup normalization: lowercase, '-' and ' ' fold to '_'.
std::string Normalize(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if (c == '-' || c == ' ') {
      out += '_';
    } else {
      out += static_cast<char>(
          std::tolower(static_cast<unsigned char>(c)));
    }
  }
  return out;
}

/// Each policy family self-registers its levels under the canonical
/// `*Name()` strings — the single source of naming truth — plus short
/// aliases for hand-written scenario files.

void RegisterReplacementPolicies(PolicyRegistry& reg) {
  using buffer::ReplacementPolicy;
  for (ReplacementPolicy p : buffer::kAllReplacementPolicies) {
    reg.Register(PolicyAxis::kReplacement, buffer::ReplacementPolicyName(p),
                 static_cast<int>(p));
  }
  reg.Register(PolicyAxis::kReplacement, "context",
               static_cast<int>(ReplacementPolicy::kContextSensitive));
}

void RegisterPrefetchPolicies(PolicyRegistry& reg) {
  using buffer::PrefetchPolicy;
  for (PrefetchPolicy p : buffer::kAllPrefetchPolicies) {
    reg.Register(PolicyAxis::kPrefetch, buffer::PrefetchPolicyName(p),
                 static_cast<int>(p));
  }
  // The paper's figure-label shorthand (Fig 5.11's no_p / p_buff / p_DB).
  reg.Register(PolicyAxis::kPrefetch, "none",
               static_cast<int>(PrefetchPolicy::kNone));
  reg.Register(PolicyAxis::kPrefetch, "no_p",
               static_cast<int>(PrefetchPolicy::kNone));
  reg.Register(PolicyAxis::kPrefetch, "p_buff",
               static_cast<int>(PrefetchPolicy::kWithinBuffer));
  reg.Register(PolicyAxis::kPrefetch, "p_DB",
               static_cast<int>(PrefetchPolicy::kWithinDb));
}

void RegisterCandidatePools(PolicyRegistry& reg) {
  using cluster::CandidatePool;
  for (CandidatePool p : cluster::kAllCandidatePools) {
    reg.Register(PolicyAxis::kCandidatePool, cluster::CandidatePoolName(p),
                 static_cast<int>(p));
  }
  reg.Register(PolicyAxis::kCandidatePool, "none",
               static_cast<int>(CandidatePool::kNoClustering));
  reg.Register(PolicyAxis::kCandidatePool, "io_limit",
               static_cast<int>(CandidatePool::kIoLimit));
}

void RegisterSplitPolicies(PolicyRegistry& reg) {
  using cluster::SplitPolicy;
  for (SplitPolicy p : cluster::kAllSplitPolicies) {
    reg.Register(PolicyAxis::kSplit, cluster::SplitPolicyName(p),
                 static_cast<int>(p));
  }
  reg.Register(PolicyAxis::kSplit, "none",
               static_cast<int>(SplitPolicy::kNoSplit));
  reg.Register(PolicyAxis::kSplit, "linear",
               static_cast<int>(SplitPolicy::kLinearGreedy));
  reg.Register(PolicyAxis::kSplit, "exhaustive",
               static_cast<int>(SplitPolicy::kExhaustive));
}

void RegisterDensities(PolicyRegistry& reg) {
  using workload::StructureDensity;
  for (StructureDensity d : workload::kAllStructureDensities) {
    reg.Register(PolicyAxis::kDensity, workload::StructureDensityName(d),
                 static_cast<int>(d));
  }
  reg.Register(PolicyAxis::kDensity, "low",
               static_cast<int>(StructureDensity::kLow3));
  reg.Register(PolicyAxis::kDensity, "med",
               static_cast<int>(StructureDensity::kMed5));
  reg.Register(PolicyAxis::kDensity, "medium",
               static_cast<int>(StructureDensity::kMed5));
  reg.Register(PolicyAxis::kDensity, "high",
               static_cast<int>(StructureDensity::kHigh10));
  reg.Register(PolicyAxis::kDensity, "high10",
               static_cast<int>(StructureDensity::kHigh10));
}

void RegisterRelKinds(PolicyRegistry& reg) {
  for (obj::RelKind k : obj::kAllRelKinds) {
    reg.Register(PolicyAxis::kRelKind, obj::RelKindName(k),
                 static_cast<int>(k));
  }
}

void RegisterOcbLocalities(PolicyRegistry& reg) {
  using ocb::RefLocality;
  for (RefLocality l : ocb::kAllRefLocalities) {
    reg.Register(PolicyAxis::kOcbLocality, ocb::RefLocalityName(l),
                 static_cast<int>(l));
  }
  reg.Register(PolicyAxis::kOcbLocality, "uni",
               static_cast<int>(RefLocality::kUniform));
  reg.Register(PolicyAxis::kOcbLocality, "gauss",
               static_cast<int>(RefLocality::kGaussian));
  reg.Register(PolicyAxis::kOcbLocality, "normal",
               static_cast<int>(RefLocality::kGaussian));
  reg.Register(PolicyAxis::kOcbLocality, "zipfian",
               static_cast<int>(RefLocality::kZipf));
}

void RegisterDynamicPolicies(PolicyRegistry& reg) {
  using dyn::PolicyKind;
  for (PolicyKind p : dyn::kAllPolicyKinds) {
    reg.Register(PolicyAxis::kDynamic, dyn::PolicyKindName(p),
                 static_cast<int>(p));
  }
  reg.Register(PolicyAxis::kDynamic, "none",
               static_cast<int>(PolicyKind::kNone));
  reg.Register(PolicyAxis::kDynamic, "off",
               static_cast<int>(PolicyKind::kNone));
  reg.Register(PolicyAxis::kDynamic, "static",
               static_cast<int>(PolicyKind::kNone));
  reg.Register(PolicyAxis::kDynamic, "dstc_dynamic",
               static_cast<int>(PolicyKind::kDstc));
  reg.Register(PolicyAxis::kDynamic, "opportunistic",
               static_cast<int>(PolicyKind::kOpcf));
}

void RegisterShardPlacements(PolicyRegistry& reg) {
  for (ShardPlacement p : kAllShardPlacements) {
    reg.Register(PolicyAxis::kShardPlacement, ShardPlacementName(p),
                 static_cast<int>(p));
  }
  reg.Register(PolicyAxis::kShardPlacement, "hash",
               static_cast<int>(ShardPlacement::kHashShard));
  reg.Register(PolicyAxis::kShardPlacement, "structure",
               static_cast<int>(ShardPlacement::kStructureShard));
}

void RegisterArrivalProcesses(PolicyRegistry& reg) {
  reg.Register(PolicyAxis::kArrival,
               ArrivalProcessName(ArrivalProcess::kClosed),
               static_cast<int>(ArrivalProcess::kClosed));
  reg.Register(PolicyAxis::kArrival,
               ArrivalProcessName(ArrivalProcess::kOpen),
               static_cast<int>(ArrivalProcess::kOpen));
  reg.Register(PolicyAxis::kArrival, "closed_loop",
               static_cast<int>(ArrivalProcess::kClosed));
  reg.Register(PolicyAxis::kArrival, "poisson",
               static_cast<int>(ArrivalProcess::kOpen));
}

}  // namespace

const char* PolicyAxisName(PolicyAxis axis) {
  switch (axis) {
    case PolicyAxis::kReplacement:
      return "replacement";
    case PolicyAxis::kPrefetch:
      return "prefetch";
    case PolicyAxis::kCandidatePool:
      return "clustering pool";
    case PolicyAxis::kSplit:
      return "split";
    case PolicyAxis::kDensity:
      return "density";
    case PolicyAxis::kRelKind:
      return "relationship";
    case PolicyAxis::kOcbLocality:
      return "ocb locality";
    case PolicyAxis::kDynamic:
      return "dynamic clustering";
    case PolicyAxis::kShardPlacement:
      return "shard placement";
    case PolicyAxis::kArrival:
      return "arrival process";
  }
  return "unknown";
}

PolicyRegistry::PolicyRegistry() {
  RegisterReplacementPolicies(*this);
  RegisterPrefetchPolicies(*this);
  RegisterCandidatePools(*this);
  RegisterSplitPolicies(*this);
  RegisterDensities(*this);
  RegisterRelKinds(*this);
  RegisterOcbLocalities(*this);
  RegisterDynamicPolicies(*this);
  RegisterShardPlacements(*this);
  RegisterArrivalProcesses(*this);
}

const PolicyRegistry& PolicyRegistry::Global() {
  static const PolicyRegistry registry;
  return registry;
}

PolicyRegistry::AxisTable& PolicyRegistry::Table(PolicyAxis axis) {
  switch (axis) {
    case PolicyAxis::kReplacement:
      return replacement_;
    case PolicyAxis::kPrefetch:
      return prefetch_;
    case PolicyAxis::kCandidatePool:
      return pool_;
    case PolicyAxis::kSplit:
      return split_;
    case PolicyAxis::kDensity:
      return density_;
    case PolicyAxis::kRelKind:
      return rel_kind_;
    case PolicyAxis::kOcbLocality:
      return ocb_locality_;
    case PolicyAxis::kDynamic:
      return dynamic_;
    case PolicyAxis::kShardPlacement:
      return shard_placement_;
    case PolicyAxis::kArrival:
      return arrival_;
  }
  OODB_CHECK(false);
  return replacement_;  // unreachable
}

const PolicyRegistry::AxisTable& PolicyRegistry::Table(
    PolicyAxis axis) const {
  return const_cast<PolicyRegistry*>(this)->Table(axis);
}

void PolicyRegistry::Register(PolicyAxis axis, std::string_view name,
                              int value) {
  AxisTable& table = Table(axis);
  const bool inserted =
      table.by_name.emplace(Normalize(name), value).second;
  OODB_CHECK(inserted);  // duplicate policy name on one axis
  table.registered.emplace_back(std::string(name), value);
  bool first_for_value = true;
  for (const auto& canonical : table.canonical) {
    if (table.by_name.at(Normalize(canonical)) == value) {
      first_for_value = false;
      break;
    }
  }
  if (first_for_value) table.canonical.emplace_back(name);
}

std::optional<int> PolicyRegistry::Find(PolicyAxis axis,
                                        std::string_view name) const {
  const AxisTable& table = Table(axis);
  const auto it = table.by_name.find(Normalize(name));
  if (it == table.by_name.end()) return std::nullopt;
  return it->second;
}

std::optional<buffer::ReplacementPolicy> PolicyRegistry::Replacement(
    std::string_view name) const {
  const auto v = Find(PolicyAxis::kReplacement, name);
  if (!v) return std::nullopt;
  return static_cast<buffer::ReplacementPolicy>(*v);
}

std::optional<buffer::PrefetchPolicy> PolicyRegistry::Prefetch(
    std::string_view name) const {
  const auto v = Find(PolicyAxis::kPrefetch, name);
  if (!v) return std::nullopt;
  return static_cast<buffer::PrefetchPolicy>(*v);
}

std::optional<cluster::CandidatePool> PolicyRegistry::CandidatePool(
    std::string_view name) const {
  const auto v = Find(PolicyAxis::kCandidatePool, name);
  if (!v) return std::nullopt;
  return static_cast<cluster::CandidatePool>(*v);
}

std::optional<cluster::SplitPolicy> PolicyRegistry::Split(
    std::string_view name) const {
  const auto v = Find(PolicyAxis::kSplit, name);
  if (!v) return std::nullopt;
  return static_cast<cluster::SplitPolicy>(*v);
}

std::optional<workload::StructureDensity> PolicyRegistry::Density(
    std::string_view name) const {
  const auto v = Find(PolicyAxis::kDensity, name);
  if (!v) return std::nullopt;
  return static_cast<workload::StructureDensity>(*v);
}

std::optional<obj::RelKind> PolicyRegistry::Relationship(
    std::string_view name) const {
  const auto v = Find(PolicyAxis::kRelKind, name);
  if (!v) return std::nullopt;
  return static_cast<obj::RelKind>(*v);
}

std::optional<ocb::RefLocality> PolicyRegistry::OcbLocality(
    std::string_view name) const {
  const auto v = Find(PolicyAxis::kOcbLocality, name);
  if (!v) return std::nullopt;
  return static_cast<ocb::RefLocality>(*v);
}

std::optional<dyn::PolicyKind> PolicyRegistry::Dynamic(
    std::string_view name) const {
  const auto v = Find(PolicyAxis::kDynamic, name);
  if (!v) return std::nullopt;
  return static_cast<dyn::PolicyKind>(*v);
}

std::optional<ShardPlacement> PolicyRegistry::ShardPlacementOf(
    std::string_view name) const {
  const auto v = Find(PolicyAxis::kShardPlacement, name);
  if (!v) return std::nullopt;
  return static_cast<ShardPlacement>(*v);
}

std::optional<ArrivalProcess> PolicyRegistry::Arrival(
    std::string_view name) const {
  const auto v = Find(PolicyAxis::kArrival, name);
  if (!v) return std::nullopt;
  return static_cast<ArrivalProcess>(*v);
}

const std::vector<std::string>& PolicyRegistry::CanonicalNames(
    PolicyAxis axis) const {
  return Table(axis).canonical;
}

std::vector<PolicyRegistry::AxisEntry> PolicyRegistry::Entries(
    PolicyAxis axis) const {
  const AxisTable& table = Table(axis);
  std::vector<AxisEntry> entries;
  entries.reserve(table.canonical.size());
  for (const std::string& canonical : table.canonical) {
    AxisEntry entry;
    entry.canonical = canonical;
    const int value = table.by_name.at(Normalize(canonical));
    for (const auto& [name, v] : table.registered) {
      if (v == value && name != canonical) entry.aliases.push_back(name);
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::string PolicyRegistry::KnownNames(PolicyAxis axis) const {
  std::string out;
  for (const auto& name : Table(axis).canonical) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

}  // namespace oodb::core
