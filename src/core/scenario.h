#ifndef SEMCLUST_CORE_SCENARIO_H_
#define SEMCLUST_CORE_SCENARIO_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/model_config.h"
#include "util/status.h"

/// \file
/// Declarative experiment scenarios. A `.scenario.json` file names a base
/// ModelConfig (policies by their registry names — see
/// core/policy_registry.h) plus sweep axes; the loader expands the axes
/// into the same cell grid the hand-written bench binaries build, in the
/// same order, so a scenario run through `tools/semclust_run` regenerates
/// a bench's JSONL bit-identically.
///
/// Schema (all sections optional except "name"; unknown keys are errors):
///
///   {
///     "name": "fig5_1_fast",
///     "bench": "Figure 5.1",          // BenchReport label (default: name)
///     "description": "free text",
///     "config": {                     // overrides on ScaledConfig()
///       "database_bytes": 50331648, "page_size_bytes": 4096,
///       "append_fill_fraction": 0.8, "num_users": 10, "num_disks": 10,
///       "think_time_s": 4.0,
///       "buffer_pages": 94,           // or "buffer_level": "medium"
///       "replacement": "LRU", "prefetch": "No_prefetch",
///       "warmup_transactions": 100, "measured_transactions": 500,
///       "measurement_epochs": 1, "telemetry_interval_s": 0,
///       "telemetry_audit_placement": true,
///       "rw_ratio_schedule": [10, 100],
///       "static_reorganize_after_build": false, "seed": 1,
///       // the N-shard core (core/sharding.h); the shard_* knobs are
///       // only legal alongside an explicit "shards":
///       "shards": 4, "shard_placement": "Structure_Shard",
///       "shard_hop_latency_s": 0.002, "shard_group_cap": 64,
///       // the concurrency-control subsystem (src/cc/); the cc_* knobs
///       // are only legal alongside "enabled": true:
///       "concurrency": {"enabled": true, "cc_lock_timeout_s": 2.0,
///                       "cc_max_retries": 6, "cc_backoff_base_s": 0.05,
///                       "cc_backoff_cap_s": 2.0, "cc_page_latches": true},
///       // how transactions enter the system; "arrival_rate_tps" is only
///       // legal with "arrival": "Open":
///       "arrival": "Open", "arrival_rate_tps": 40,
///       "workload": {"density": "med5", "rw_ratio": 10},
///       // or the generic OCB workload (src/ocb/):
///       // "workload": {"kind": "ocb", "rw_ratio": 10, "classes": 24,
///       //              "instances": 4000, "refs_per_object": 3,
///       //              "locality": "zipf", "zipf_theta": 0.8,
///       //              "gaussian_window": 0.05, "base_object_bytes": 160,
///       //              "inheritance_fraction": 0.3, "partitions": 16,
///       //              "set_lookup_size": 8, "traversal_depth": 3,
///       //              "read_mix": [0.25, 0.35, 0.2, 0.2]},
///       "clustering": {"pool": "No_Clustering", "io_limit": 2,
///                      "split": "No_Splitting", "use_hints": false,
///                      "hint_kind": "configuration", "hint_boost": 3}
///     },
///     "sweep": {                      // each axis: empty/absent = base value
///       "clustering": "figure5_1",    // or an array of pool names/objects
///       "workload": "standard_grid",  // or [{"density": ..., "rw_ratio": ...}]
///       "replacement": ["LRU", "Context-sensitive"],
///       "prefetch": ["No_prefetch"],
///       "buffer_pages": [94, "large"],
///       "shards": [1, 2, 4, 8],
///       "shard_placement": ["Hash_Shard", "Structure_Shard"],
///       "users": [100, 1000, 2000]
///     }
///   }
///
/// Policy names resolve through PolicyRegistry::Global(), so every alias
/// the registry knows works in a scenario file, and error messages list
/// the canonical spellings.

namespace oodb::core {

/// One expanded cell: a runnable config plus the labels a bench would
/// stamp on its JSONL record.
struct ScenarioCell {
  ModelConfig config;
  std::string cell_label;
  std::string policy;
  std::string workload;
};

/// One level of the workload sweep axis: the engineering workload's
/// density/ratio knobs plus the OCB section (`ocb.enabled` selects which
/// workload the cell runs; the R/W ratio lives in `oct.read_write_ratio`
/// either way).
struct WorkloadEntry {
  workload::WorkloadConfig oct;
  ocb::OcbConfig ocb;

  /// The cell's workload label (WorkloadConfig::Label or OcbConfig::Label).
  std::string Label() const;
};

/// A parsed scenario: base config + sweep axes.
struct ScenarioSpec {
  std::string name;
  std::string bench;  ///< BenchReport label; defaults to `name`
  std::string description;
  /// Base configuration every cell starts from (scenario "config" applied
  /// over ScaledConfig()).
  ModelConfig base;

  // Sweep axes. An empty axis means "the base config's value".
  std::vector<cluster::ClusterConfig> clustering;
  std::vector<WorkloadEntry> workloads;
  std::vector<buffer::ReplacementPolicy> replacement;
  std::vector<buffer::PrefetchPolicy> prefetch;
  std::vector<size_t> buffer_pages;
  std::vector<int> shards;
  std::vector<ShardPlacement> shard_placement;
  std::vector<int> users;

  /// Expands the axes into cells, outermost to innermost: users, shards,
  /// shard_placement, replacement, prefetch, buffer_pages, clustering,
  /// workload. With only the clustering and workload axes populated this
  /// is exactly the policy-major order of bench_common's
  /// RunClusteringGrid, and the labels match FillDefaultLabels (policy =
  /// clustering label, workload = workload label, cell =
  /// "policy/workload"). Multi-level sharding and buffering axes prefix
  /// the policy label (e.g. "2shard_Structure_Shard_...") so cell labels
  /// stay unique.
  std::vector<ScenarioCell> Expand() const;

  /// Canonical JSON serialization; ParseScenario(ToJson()) round-trips.
  std::string ToJson() const;
};

/// Parses one scenario document. Unknown keys, unresolvable policy names,
/// and configs failing ModelConfig::Validate() all return InvalidArgument
/// with an actionable message.
StatusOr<ScenarioSpec> ParseScenario(std::string_view json_text);

/// Reads `path` and parses it.
StatusOr<ScenarioSpec> LoadScenarioFile(const std::string& path);

}  // namespace oodb::core

#endif  // SEMCLUST_CORE_SCENARIO_H_
