#ifndef SEMCLUST_CORE_MODEL_CONFIG_H_
#define SEMCLUST_CORE_MODEL_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "buffer/policy.h"
#include "cc/cc_config.h"
#include "cluster/policy.h"
#include "core/sharding.h"
#include "io/io_subsystem.h"
#include "ocb/ocb_config.h"
#include "util/status.h"
#include "workload/db_builder.h"
#include "workload/workload_config.h"

/// \file
/// The full simulation configuration: Table 4.1's static parameters (A-E)
/// and control parameters (F-M), plus the CPU/disk cost model and run
/// control. Defaults are the *scaled* configuration: the database and
/// buffer pool shrink together (same buffer:DB ratio as the paper's
/// 1000 x 4 KB buffers against 500 MB), which preserves every response-time
/// ratio the evaluation reports while keeping runs laptop-fast. Pass
/// `PaperScaleConfig()` for the full-size database.

namespace oodb::core {

/// How transactions enter the system (ModelConfig::arrival).
enum class ArrivalProcess : uint8_t {
  kClosed = 0,  ///< num_users think/submit loops (the paper's model)
  kOpen,        ///< Poisson arrivals at arrival_rate_tps, load-independent
};

const char* ArrivalProcessName(ArrivalProcess a);

/// Everything one simulation run needs.
struct ModelConfig {
  // ---- Static parameters (Table 4.1, A-E), scaled by default. ----
  /// A: database size, expressed as total object bytes to create.
  uint64_t database_bytes = 48ull << 20;  // 48 MB scaled (paper: 500 MB)
  /// B: page size.
  uint32_t page_size_bytes = 4096;
  /// Fill-factor reserve for arrival-order appends: an append opens a new
  /// page beyond this fraction, leaving headroom that directed
  /// (clustering) placements may use later. Applies to every policy.
  double append_fill_fraction = 0.8;
  /// C: number of interactive users.
  int num_users = 10;
  /// D: number of disks.
  int num_disks = 10;
  /// E: mean think time between transactions (exponential).
  double think_time_s = 4.0;

  // ---- Control parameters (Table 4.1, F-M). ----
  /// F (structure density) and G (read/write ratio) live here.
  workload::WorkloadConfig workload;
  /// H (clustering policy), I (page splitting), J (user hints).
  cluster::ClusterConfig clustering;
  /// K: buffer replacement policy.
  buffer::ReplacementPolicy replacement = buffer::ReplacementPolicy::kLru;
  /// L: buffer pool size in pages. Paper levels 100/1000/10000 against
  /// 128 K pages correspond to kBufferSmall/Medium/Large below at the
  /// scaled database size.
  size_t buffer_pages = 128;
  /// M: prefetch policy.
  buffer::PrefetchPolicy prefetch = buffer::PrefetchPolicy::kNone;

  // ---- Database generation knobs (beyond A and F). ----
  workload::DatabaseSpec database;

  // ---- Alternate workload: the generic OCB benchmark (src/ocb/). ----
  /// When `ocb.enabled`, the model builds the OCB object graph instead of
  /// the engineering-design database and drives the OCB transaction set;
  /// `workload.read_write_ratio` (G) still sets the target R/W ratio, and
  /// all other Table 4.1 axes apply unchanged.
  ocb::OcbConfig ocb;

  // ---- Sharding (core/sharding.h). ----
  /// Number of shards the simulated system is split into. 1 (the default)
  /// is the single-server model, bit-identical to the pre-sharding core;
  /// N > 1 builds N full component sets (buffer pool, disks, log, cluster
  /// manager, CPU, NIC) on the shared virtual clock and partitions the
  /// object graph across them by `shard_placement`.
  int shards = 1;
  /// How objects map onto shards when `shards > 1`.
  ShardPlacement shard_placement = ShardPlacement::kHashShard;
  /// One-way network hop latency of a cross-shard reference; a remote
  /// page fetch pays two (request + response), metered as the span phase
  /// `remote_fetch_wait`. Default 2 ms: a late-80s LAN round trip of
  /// ~4 ms, comparable to one disk access of the period's cost model.
  double shard_hop_latency_s = 0.002;
  /// Structure_Shard group bound: a composite subgraph grows to at most
  /// this many objects before the next seed starts a new group. Bounds
  /// skew (a giant connected component cannot swallow one shard).
  int shard_group_cap = 64;

  // ---- Concurrency control (src/cc/). ----
  /// When `cc.enabled`, a strict-2PL LockManager is built on the shared
  /// virtual clock: every pipeline primitive acquires object locks,
  /// deadlocks resolve by deterministic wait-timeout abort + jittered
  /// exponential-backoff retry, and page latches serialise the buffer-fix
  /// path. Disabled (the default) constructs nothing, registers no
  /// metrics, draws no random numbers — bit-identical to pre-cc builds.
  cc::CcConfig cc;

  // ---- Arrival process. ----
  /// How transactions arrive. kClosed is the paper's interactive model:
  /// `num_users` loops of think -> submit -> wait. kOpen submits
  /// transactions at Poisson arrivals of rate `arrival_rate_tps`
  /// independent of completions, so response times can grow without
  /// throttling arrivals — the regime where contention curves saturate.
  ArrivalProcess arrival = ArrivalProcess::kClosed;
  /// Mean open-arrival rate, transactions per simulated second. Only read
  /// when `arrival == kOpen`.
  double arrival_rate_tps = 10.0;

  // ---- Cost model. ----
  io::DiskParams disk;
  /// Server CPU speed (a late-80s server; only ratios matter).
  double cpu_mips = 4.0;
  /// Instruction path lengths (paper §4.1 models per-call path lengths).
  double logical_op_instructions = 2500;
  double physical_io_instructions = 1500;
  double cluster_decision_instructions = 2500;
  double split_linear_instructions = 5000;
  double split_exhaustive_instructions = 60000;
  uint32_t log_buffer_bytes = 64u << 10;
  bool force_log_at_commit = false;

  // ---- Run control. ----
  /// Transactions executed before counters reset.
  int warmup_transactions = 400;
  /// Transactions measured after warmup.
  int measured_transactions = 2500;
  /// Split the measured phase into this many equal epochs; RunResult then
  /// reports response time per epoch (layout-decay studies).
  int measurement_epochs = 1;
  /// Simulated seconds between telemetry samples during the measured
  /// phase (DESIGN.md §9). 0 disables interval sampling; epoch-boundary
  /// samples (one per measurement epoch, including the final end-of-run
  /// sample) are always taken.
  double telemetry_interval_s = 0;
  /// Attach a PlacementAuditor to the telemetry sampler: every sample
  /// then carries clustering-quality metrics (edge co-location, page
  /// occupancy, fragmentation). Reads model state only; never changes a
  /// simulated outcome.
  bool telemetry_audit_placement = true;
  /// When non-empty, the target read/write ratio is switched at each
  /// measurement-epoch boundary to the scheduled value (entry i applies
  /// to epoch i; the last entry applies from then on). Models one
  /// application's phases (paper §3.3: MOSAICO spans R/W 0.52..170 in a
  /// single run).
  std::vector<double> rw_ratio_schedule;
  /// Run the offline StaticClusterer once after the database is built
  /// (the paper's quiesce-and-reorganise alternative to run-time
  /// clustering).
  bool static_reorganize_after_build = false;
  /// Build the per-transaction span profiler (DESIGN.md §14): every tick
  /// of response time is attributed to an additive phase taxonomy,
  /// per-(kind, phase) metrics are registered, RunResult carries a
  /// breakdown, and bench JSONL gains a "breakdown" section. Off by
  /// default: a disabled run constructs nothing and is bit-identical to
  /// a build without the profiler.
  bool profile_spans = false;
  /// Slow-transaction exemplar reservoir size per cell (full span trees,
  /// exported through the trace path). Only meaningful with
  /// `profile_spans`; 0 disables exemplar capture.
  int span_exemplars = 3;
  uint64_t seed = 1;
  /// Position of this cell within its batch (stamped by
  /// exec::ExperimentRunner). Purely observational: it becomes the pid of
  /// the cell's track in an exported trace and never influences the
  /// simulation itself.
  int cell_index = 0;

  /// Buffer-pool operating levels at the scaled database size, preserving
  /// the paper's buffer:database ratios (100/1000/10000 : 128 K pages).
  size_t BufferSmall() const { return ScaledBuffers(100); }
  size_t BufferMedium() const { return ScaledBuffers(1000); }
  size_t BufferLarge() const { return ScaledBuffers(10000); }

  size_t ScaledBuffers(size_t paper_buffers) const {
    // Degenerate sizes would divide by zero (page_size_bytes == 0) or
    // scale everything to zero (database_bytes == 0); both land on the
    // 8-page floor the clamp below enforces anyway.
    if (page_size_bytes == 0 || database_bytes == 0) return 8;
    // paper: 500 MB / 4 KB = 131072 pages.
    const double ratio = static_cast<double>(paper_buffers) / 131072.0;
    const double db_pages = static_cast<double>(database_bytes) /
                            static_cast<double>(page_size_bytes);
    const auto scaled = static_cast<size_t>(ratio * db_pages + 0.5);
    return scaled < 8 ? 8 : scaled;
  }

  /// Checks the configuration for values that would make the simulation
  /// hang, divide by zero, or silently produce nonsense. Returns OK or an
  /// InvalidArgument status whose message names the offending field, the
  /// value it had, and what it must satisfy. Called by the
  /// EngineeringDbModel constructor (which aborts on failure — a bad
  /// config is a programming error there) and by the scenario loader
  /// (which propagates the status to the CLI).
  Status Validate() const;

  /// Label of the configured workload cell: the engineering workload's
  /// density/ratio label, or the OCB label when `ocb.enabled`.
  std::string WorkloadLabel() const;
};

/// The paper's full-scale configuration (500 MB database, 1000 buffers).
/// Slow: intended for spot validation, not the bench suite.
ModelConfig PaperScaleConfig();

/// The default scaled configuration used by the benchmarks.
ModelConfig ScaledConfig();

/// A fast configuration for unit/integration tests.
ModelConfig TestConfig();

}  // namespace oodb::core

#endif  // SEMCLUST_CORE_MODEL_CONFIG_H_
