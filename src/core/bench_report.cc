#include "core/bench_report.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "util/json_writer.h"

namespace oodb::core {

BenchReport::BenchReport(std::string bench) : bench_(std::move(bench)) {
  if (const char* path = std::getenv("SEMCLUST_BENCH_JSON")) {
    if (path[0] != '\0') path_ = path;
  }
}

std::string BenchReport::ToJsonLine(const BenchRecord& record) const {
  JsonObjectWriter json;
  json.Add("bench", bench_)
      .Add("cell_label", record.cell_label)
      .Add("policy", record.policy)
      .Add("workload", record.workload)
      .Add("mean_response_s", record.mean_response_s)
      .Add("io_count", record.io_count)
      .Add("hit_ratio", record.hit_ratio)
      .Add("buffer_hit_ratio", record.buffer_hit_ratio)
      .Add("exam_ios_per_recluster", record.exam_ios_per_recluster)
      .Add("prefetch_accuracy", record.prefetch_accuracy)
      .Add("remote_fetch_fraction", record.remote_fetch_fraction)
      .Add("page_splits", record.page_splits)
      .Add("response_p50_s", record.response_p50_s)
      .Add("response_p95_s", record.response_p95_s)
      .Add("response_p99_s", record.response_p99_s)
      .Add("elapsed_wall_s", record.elapsed_wall_s);
  if (record.has_cc) {
    JsonObjectWriter cc;
    cc.Add("txn_aborts", record.cc_txn_aborts)
        .Add("txn_retries", record.cc_txn_retries)
        .Add("txn_giveups", record.cc_txn_giveups)
        .Add("abort_rate", record.cc_abort_rate)
        .Add("lock_waits", record.cc_lock_waits)
        .Add("deadlock_timeouts", record.cc_deadlock_timeouts)
        .Add("latch_waits", record.cc_latch_waits)
        .Add("rollback_pages", record.cc_rollback_pages)
        .Add("lock_wait_time_s", record.cc_lock_wait_time_s);
    json.AddRaw("cc", cc.str());
  }
  if (!record.response_epochs.empty()) {
    JsonArrayWriter epochs;
    for (const auto& [count, mean_s] : record.response_epochs) {
      JsonObjectWriter epoch;
      epoch.Add("count", count).Add("mean_s", mean_s);
      epochs.AddRaw(epoch.str());
    }
    json.AddRaw("response_epochs", epochs.str());
  }
  if (!record.metrics.empty()) {
    json.AddRaw("metrics", record.metrics.ToJson());
  }
  if (!record.series.empty()) {
    json.AddRaw("series", record.series.ToJson());
  }
  if (!record.breakdown.empty()) {
    // One flat object per transaction kind: integer tick totals keyed by
    // phase name, so tools/span_report (and jq) read them without
    // positional decoding.
    JsonObjectWriter breakdown;
    for (const obs::SpanKindBreakdown& b : record.breakdown) {
      JsonObjectWriter kind;
      kind.Add("txns", b.txns).Add("response_ticks", b.response_ticks);
      for (int p = 0; p < obs::kNumSpanPhases; ++p) {
        kind.Add(std::string(obs::SpanPhaseName(
                     static_cast<obs::SpanPhase>(p))) +
                     "_ticks",
                 b.phase_ticks[static_cast<size_t>(p)]);
      }
      breakdown.AddRaw(b.kind, kind.str());
    }
    json.AddRaw("breakdown", breakdown.str());
  }
  return json.str();
}

void BenchReport::Record(const BenchRecord& record) const {
  if (!enabled()) return;
  std::ofstream out(path_, std::ios::app);
  if (out) {
    out << ToJsonLine(record) << '\n';
  } else if (!warned_unwritable_) {
    warned_unwritable_ = true;
    std::fprintf(stderr, "[bench] SEMCLUST_BENCH_JSON=%s is not writable; "
                 "records dropped\n", path_.c_str());
  }
}

BenchRecord BenchReport::FromResult(const std::string& cell_label,
                                    const std::string& policy,
                                    const std::string& workload,
                                    const RunResult& result,
                                    double elapsed_wall_s) {
  BenchRecord r;
  r.cell_label = cell_label;
  r.policy = policy;
  r.workload = workload;
  r.mean_response_s = result.response_time.Mean();
  r.io_count = result.total_physical_ios();
  r.hit_ratio = result.buffer_hit_ratio;
  r.elapsed_wall_s = elapsed_wall_s;
  r.metrics = result.metrics;
  // Derived ratios come from the registry snapshot when available so the
  // JSONL record is self-consistent with the embedded metrics; they fall
  // back to the RunResult counters when metrics collection is disabled.
  // Either way a zero denominator yields null, not a division by zero.
  const std::optional<uint64_t> hits = r.metrics.counter("buffer.hits");
  const std::optional<uint64_t> misses = r.metrics.counter("buffer.misses");
  std::optional<uint64_t> accesses;
  if (hits.has_value() && misses.has_value()) accesses = *hits + *misses;
  r.buffer_hit_ratio = obs::MetricsSnapshot::Ratio(hits, accesses);
  r.exam_ios_per_recluster =
      obs::MetricsSnapshot::Ratio(r.metrics.counter("cluster.exam_reads"),
                                  r.metrics.counter("cluster.reclusterings"));
  r.prefetch_accuracy =
      obs::MetricsSnapshot::Ratio(r.metrics.counter("core.prefetch.hits"),
                                  r.metrics.counter("core.prefetch.issued"));
  if (result.shard_local_fetches + result.shard_remote_fetches != 0) {
    r.remote_fetch_fraction = result.remote_fetch_fraction;
  }
  r.page_splits = result.cluster_stats.splits;
  if (const obs::HistogramSnapshot* rt =
          r.metrics.histogram("core.response_s");
      rt != nullptr && rt->count > 0) {
    // count-guarded: an empty histogram's Quantile is 0.0 by contract,
    // but these fields stay null so the JSONL keeps rendering "no
    // transactions" as null (committed baselines depend on it).
    r.response_p50_s = rt->Quantile(0.50);
    r.response_p95_s = rt->Quantile(0.95);
    r.response_p99_s = rt->Quantile(0.99);
  }
  r.response_epochs.reserve(result.response_epochs.size());
  for (const StreamingStats& epoch : result.response_epochs) {
    r.response_epochs.emplace_back(epoch.count(), epoch.Mean());
  }
  if (result.cc_enabled) {
    r.has_cc = true;
    r.cc_txn_aborts = result.cc_txn_aborts;
    r.cc_txn_retries = result.cc_txn_retries;
    r.cc_txn_giveups = result.cc_txn_giveups;
    r.cc_lock_waits = result.cc_lock_waits;
    r.cc_deadlock_timeouts = result.cc_deadlock_timeouts;
    r.cc_latch_waits = result.cc_latch_waits;
    r.cc_rollback_pages = result.cc_rollback_pages;
    r.cc_lock_wait_time_s = result.cc_lock_wait_time_s;
    r.cc_abort_rate = result.cc_abort_rate;
  }
  r.series = result.series;
  r.breakdown = result.span_breakdown;
  if (r.metrics.empty()) {
    // SEMCLUST_METRICS=0: derive what the RunResult itself carries.
    const uint64_t exams = result.cluster_stats.exam_reads;
    const uint64_t attempts = result.cluster_stats.reclusterings;
    if (attempts != 0) {
      r.exam_ios_per_recluster =
          static_cast<double>(exams) / static_cast<double>(attempts);
    }
    if (result.prefetch_issued != 0) {
      r.prefetch_accuracy = static_cast<double>(result.prefetch_hits) /
                            static_cast<double>(result.prefetch_issued);
    }
  }
  return r;
}

void BenchReport::Record(const std::string& cell_label,
                         const std::string& policy,
                         const std::string& workload, const RunResult& result,
                         double elapsed_wall_s) const {
  Record(FromResult(cell_label, policy, workload, result, elapsed_wall_s));
}

}  // namespace oodb::core
