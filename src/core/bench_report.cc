#include "core/bench_report.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "util/json_writer.h"

namespace oodb::core {

BenchReport::BenchReport(std::string bench) : bench_(std::move(bench)) {
  if (const char* path = std::getenv("SEMCLUST_BENCH_JSON")) {
    if (path[0] != '\0') path_ = path;
  }
}

void BenchReport::Record(const BenchRecord& record) const {
  if (!enabled()) return;
  JsonObjectWriter json;
  json.Add("bench", bench_)
      .Add("cell_label", record.cell_label)
      .Add("policy", record.policy)
      .Add("workload", record.workload)
      .Add("mean_response_s", record.mean_response_s)
      .Add("io_count", record.io_count)
      .Add("hit_ratio", record.hit_ratio)
      .Add("elapsed_wall_s", record.elapsed_wall_s);
  std::ofstream out(path_, std::ios::app);
  if (out) {
    out << json.str() << '\n';
  } else if (!warned_unwritable_) {
    warned_unwritable_ = true;
    std::fprintf(stderr, "[bench] SEMCLUST_BENCH_JSON=%s is not writable; "
                 "records dropped\n", path_.c_str());
  }
}

void BenchReport::Record(const std::string& cell_label,
                         const std::string& policy,
                         const std::string& workload, const RunResult& result,
                         double elapsed_wall_s) const {
  BenchRecord r;
  r.cell_label = cell_label;
  r.policy = policy;
  r.workload = workload;
  r.mean_response_s = result.response_time.Mean();
  r.io_count = result.total_physical_ios();
  r.hit_ratio = result.buffer_hit_ratio;
  r.elapsed_wall_s = elapsed_wall_s;
  Record(r);
}

}  // namespace oodb::core
