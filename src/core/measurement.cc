#include "core/measurement.h"

#include <algorithm>
#include <string>

namespace oodb::core {

MeasurementController::MeasurementController(ServerContext& context,
                                             TxnPipeline& pipeline)
    : ctx_(context), pipeline_(pipeline) {
  response_epochs_.resize(static_cast<size_t>(
      std::max(1, ctx_.config.measurement_epochs)));
  ctx_.sampler.set_pre_sample_hook([this] { SyncComponentMetrics(); });
}

void MeasurementController::ApplyEpochSchedule(size_t epoch) {
  if (ctx_.config.rw_ratio_schedule.empty()) return;
  const size_t i =
      std::min(epoch, ctx_.config.rw_ratio_schedule.size() - 1);
  for (auto& gen : ctx_.generators) {
    gen->SetTargetRatio(ctx_.config.rw_ratio_schedule[i]);
  }
}

void MeasurementController::ResetMeasurementCounters() {
  // Every shard's components carry warmup-era counts. With shards = 1
  // the single iteration resets the server's own components — exactly
  // the pre-sharding sequence.
  for (int s = 0; s < ctx_.shards->num_shards(); ++s) {
    const ShardView& v = ctx_.shards->view(s);
    v.io->ResetCounters();
    v.buffer->ResetCounters();
    v.log->ResetCounters();
    v.cluster->ResetStats();
  }
  ctx_.shards->ResetCounters();
  ctx_.metrics.ResetValues();
  // Warmup-era span records (totals and the exemplar reservoir) are
  // forgotten with the same semantics as the I/O counters: in-flight
  // transactions straddling the boundary fold fully into the measured
  // window when they finish.
  if (ctx_.spans) ctx_.spans->Reset();
  // Lock-manager counters reset like the component counters; locks held
  // by in-flight transactions straddling the boundary are untouched (only
  // the statistics mirror clears).
  if (ctx_.locks) ctx_.locks->ResetStats();
  // Pages prefetched during warmup were counted against the warmup issue
  // counter that was just reset; forgetting them keeps the measured-window
  // invariant hits + wasted <= issued.
  pipeline_.ResetMeasurementState();
}

void MeasurementController::OnTransactionDone(double response_s,
                                              workload::QueryType type) {
  ++completed_txns_;
  if (!measuring_) {
    if (completed_txns_ >=
        static_cast<uint64_t>(ctx_.config.warmup_transactions)) {
      measuring_ = true;
      ResetMeasurementCounters();
      ApplyEpochSchedule(0);
      ctx_.sampler.StartMeasurement(ctx_.sim.now());
    }
    return;
  }
  if (done_) return;  // in-flight stragglers after the quota was reached
  const uint64_t per_epoch = std::max<uint64_t>(
      1, static_cast<uint64_t>(ctx_.config.measured_transactions) /
             response_epochs_.size());
  const size_t epoch =
      std::min(response_epochs_.size() - 1,
               static_cast<size_t>(measured_txns_ / per_epoch));
  const bool crossed = epoch != current_epoch_;
  if (crossed) {
    // The first transaction of the new epoch just completed: close every
    // epoch crossed (usually one) with a boundary sample *before*
    // recording this transaction, so the boundary delta covers exactly
    // the closed epoch's transactions.
    for (size_t closed = current_epoch_; closed < epoch; ++closed) {
      ctx_.sampler.SampleEpochBoundary(ctx_.sim.now(),
                                       static_cast<uint32_t>(closed));
    }
    current_epoch_ = epoch;
    ApplyEpochSchedule(epoch);
  }
  ctx_.metrics.Add(ctx_.handles.txns);
  ctx_.metrics.Observe(ctx_.handles.response_s, response_s);
  response_time_.Add(response_s);
  const bool was_write = type == workload::QueryType::kObjectWrite;
  (was_write ? write_response_ : read_response_).Add(response_s);
  response_by_query_[static_cast<size_t>(type)].Add(response_s);
  response_epochs_[epoch].Add(response_s);
  if (!crossed) {
    ctx_.sampler.Poll(ctx_.sim.now(), static_cast<uint32_t>(epoch));
  }
  ++measured_txns_;
  if (measured_txns_ >=
      static_cast<uint64_t>(ctx_.config.measured_transactions)) {
    done_ = true;
  }
}

sim::Task MeasurementController::RunOneArrival(int user) {
  workload::TransactionSource& gen =
      *ctx_.generators[static_cast<size_t>(user)];
  // Sessions keep their meaning under open arrivals: a stream's working
  // set persists across arrivals until its session length is spent. The
  // draws below all happen before the first await, so the generator's
  // sequence is ordered by arrival time regardless of how long earlier
  // transactions of the same stream stay in flight.
  if (open_session_left_[static_cast<size_t>(user)] <= 0) {
    open_session_left_[static_cast<size_t>(user)] = gen.BeginSession();
  }
  --open_session_left_[static_cast<size_t>(user)];
  const workload::TransactionSpec spec = gen.NextTransaction();
  const uint64_t reads_before = pipeline_.logical_reads();
  const uint64_t writes_before = pipeline_.logical_writes();
  const double start = ctx_.sim.now();
  co_await pipeline_.ExecuteTransaction(spec);
  gen.RecordOps(pipeline_.logical_reads() - reads_before,
                pipeline_.logical_writes() - writes_before);
  OnTransactionDone(ctx_.sim.now() - start, spec.type);
}

sim::Task MeasurementController::ArrivalLoop() {
  // A dedicated interarrival stream, distinct from every per-user think
  // stream (those use seed * 104729 + user with user < num_users).
  Rng arrival_rng(ctx_.config.seed * 104729 + 0xA221AA11ull);
  const double mean_interarrival = 1.0 / ctx_.config.arrival_rate_tps;
  uint64_t arrivals = 0;
  while (!done_) {
    co_await sim::Delay(ctx_.sim,
                        arrival_rng.Exponential(mean_interarrival));
    if (done_) break;
    const int user =
        static_cast<int>(arrivals++ % ctx_.generators.size());
    sim::Spawn(RunOneArrival(user));
  }
}

sim::Task MeasurementController::UserLoop(int user) {
  workload::TransactionSource& gen =
      *ctx_.generators[static_cast<size_t>(user)];
  Rng think_rng(ctx_.config.seed * 104729 + static_cast<uint64_t>(user));
  while (!done_) {
    const int session_len = gen.BeginSession();
    for (int t = 0; t < session_len && !done_; ++t) {
      co_await sim::Delay(ctx_.sim,
                          think_rng.Exponential(ctx_.config.think_time_s));
      if (done_) break;
      const workload::TransactionSpec spec = gen.NextTransaction();
      const uint64_t reads_before = pipeline_.logical_reads();
      const uint64_t writes_before = pipeline_.logical_writes();
      const double start = ctx_.sim.now();
      co_await pipeline_.ExecuteTransaction(spec);
      gen.RecordOps(pipeline_.logical_reads() - reads_before,
                    pipeline_.logical_writes() - writes_before);
      OnTransactionDone(ctx_.sim.now() - start, spec.type);
    }
  }
}

void MeasurementController::SyncComponentMetrics() {
  obs::MetricsRegistry& metrics = ctx_.metrics;
  if (!metrics.enabled()) return;
  // Registration is idempotent (re-registering returns the existing
  // handle) and the values are absolute cumulative counts written with
  // set-semantics, so syncing at every telemetry sample and again at end
  // of run is safe.
  //
  // The unprefixed names carry system-wide totals summed over every
  // shard; with shards = 1 the single iteration reads the server's own
  // components, so names, registration order, and values are exactly the
  // pre-sharding mirror's.
  const int n = ctx_.shards->num_shards();
  uint64_t buf_hits = 0, buf_misses = 0, buf_evict = 0, buf_dirty = 0;
  uint64_t io_cat[io::kNumIoCategories] = {};
  uint64_t log_records = 0, log_before = 0, log_flushes = 0;
  cluster::ClusterStats cs;
  double disk_util = 0, cpu_util = 0;
  for (int s = 0; s < n; ++s) {
    const ShardView& v = ctx_.shards->view(s);
    buf_hits += v.buffer->hits();
    buf_misses += v.buffer->misses();
    buf_evict += v.buffer->evictions();
    buf_dirty += v.buffer->dirty_evictions();
    for (int c = 0; c < io::kNumIoCategories; ++c) {
      io_cat[c] += v.io->physical_count(static_cast<io::IoCategory>(c));
    }
    log_records += v.log->records_appended();
    log_before += v.log->before_images();
    log_flushes += v.log->flush_count();
    const cluster::ClusterStats& scs = v.cluster->stats();
    cs.placements += scs.placements;
    cs.reclusterings += scs.reclusterings;
    cs.appends += scs.appends;
    cs.relocations += scs.relocations;
    cs.splits += scs.splits;
    cs.exam_reads += scs.exam_reads;
    cs.objects_moved_by_splits += scs.objects_moved_by_splits;
    cs.split_search_steps += scs.split_search_steps;
    cs.split_broken_cost += scs.split_broken_cost;
    disk_util += v.io->MeanUtilization();
    cpu_util += v.cpu->Utilization();
  }
  metrics.SetCounter(metrics.Counter("buffer.hits"), buf_hits);
  metrics.SetCounter(metrics.Counter("buffer.misses"), buf_misses);
  metrics.SetCounter(metrics.Counter("buffer.evictions"), buf_evict);
  metrics.SetCounter(metrics.Counter("buffer.dirty_evictions"), buf_dirty);
  for (int c = 0; c < io::kNumIoCategories; ++c) {
    const auto cat = static_cast<io::IoCategory>(c);
    metrics.SetCounter(
        metrics.Counter(std::string("io.") + io::IoCategoryName(cat)),
        io_cat[c]);
  }
  metrics.SetCounter(metrics.Counter("log.records"), log_records);
  metrics.SetCounter(metrics.Counter("log.before_images"), log_before);
  metrics.SetCounter(metrics.Counter("log.flushes"), log_flushes);
  metrics.SetCounter(metrics.Counter("cluster.placements"), cs.placements);
  metrics.SetCounter(metrics.Counter("cluster.reclusterings"),
                     cs.reclusterings);
  metrics.SetCounter(metrics.Counter("cluster.relocations"),
                     cs.relocations);
  metrics.SetCounter(metrics.Counter("cluster.splits"), cs.splits);
  metrics.SetCounter(metrics.Counter("cluster.exam_reads"), cs.exam_reads);
  metrics.SetCounter(metrics.Counter("cluster.objects_moved_by_splits"),
                     cs.objects_moved_by_splits);
  metrics.SetCounter(metrics.Counter("cluster.split_search_steps"),
                     cs.split_search_steps);
  metrics.Set(metrics.Gauge("cluster.split_broken_cost"),
              cs.split_broken_cost);
  metrics.SetCounter(metrics.Counter("sim.events_processed"),
                     ctx_.sim.events_processed());
  metrics.SetCounter(metrics.Counter("sim.events_scheduled"),
                     ctx_.sim.events_scheduled());
  metrics.Set(metrics.Gauge("io.mean_disk_utilization"),
              disk_util / static_cast<double>(n));
  metrics.Set(metrics.Gauge("cpu.utilization"),
              cpu_util / static_cast<double>(n));
  metrics.Set(metrics.Gauge("sim.duration_s"), ctx_.sim.now());
  if (ctx_.shards->sharded()) {
    // Per-shard mirrors plus the cross-shard traffic counters, registered
    // only when sharded so every single-server snapshot layout committed
    // before this subsystem existed is untouched.
    for (int s = 0; s < n; ++s) {
      const ShardView& v = ctx_.shards->view(s);
      const std::string p = "shard" + std::to_string(s) + ".";
      metrics.SetCounter(metrics.Counter(p + "buffer.hits"),
                         v.buffer->hits());
      metrics.SetCounter(metrics.Counter(p + "buffer.misses"),
                         v.buffer->misses());
      metrics.SetCounter(metrics.Counter(p + "io.data_read"),
                         v.io->physical_count(io::IoCategory::kDataRead));
      metrics.SetCounter(metrics.Counter(p + "log.records"),
                         v.log->records_appended());
      metrics.SetCounter(metrics.Counter(p + "cluster.placements"),
                         v.cluster->stats().placements);
      metrics.Set(metrics.Gauge(p + "io.mean_disk_utilization"),
                  v.io->MeanUtilization());
      metrics.Set(metrics.Gauge(p + "cpu.utilization"),
                  v.cpu->Utilization());
      if (v.nic != nullptr) {
        metrics.Set(metrics.Gauge(p + "nic.utilization"),
                    v.nic->Utilization());
      }
    }
    const ShardedContext::Counters& sc = ctx_.shards->counters();
    metrics.SetCounter(metrics.Counter("shard.local_fetches"),
                       sc.local_fetches);
    metrics.SetCounter(metrics.Counter("shard.remote_fetches"),
                       sc.remote_fetches);
    metrics.SetCounter(metrics.Counter("shard.remote_writes"),
                       sc.remote_writes);
    metrics.SetCounter(metrics.Counter("shard.hops"), sc.hops);
    const uint64_t fetches = sc.local_fetches + sc.remote_fetches;
    metrics.Set(metrics.Gauge("shard.remote_fetch_fraction"),
                fetches == 0 ? 0.0
                             : static_cast<double>(sc.remote_fetches) /
                                   static_cast<double>(fetches));
  }
  if (ctx_.dyn_policy) {
    // Whole-run cumulative deferral bookkeeping lives in the policy (it is
    // not reset at the measurement boundary: a deferral window straddling
    // the boundary must not lose its opening edge).
    metrics.SetCounter(ctx_.dyn_handles.deferral_events,
                       ctx_.dyn_policy->deferral_events());
    metrics.Set(ctx_.dyn_handles.deferral_time_s,
                ctx_.dyn_policy->deferral_time_s());
  }
  if (ctx_.locks) {
    // Lock-manager mirror, registered only when the cc subsystem is on so
    // every cc-off snapshot layout is untouched. `deadlock_timeouts`
    // mirrors the manager's timed-out waits — in a wait-timeout scheme
    // that count *is* the presumed-deadlock count.
    const cc::LockStats& ls = ctx_.locks->stats();
    metrics.SetCounter(metrics.Counter("cc.lock_grants"), ls.lock_grants);
    metrics.SetCounter(metrics.Counter("cc.lock_waits"), ls.lock_waits);
    metrics.SetCounter(metrics.Counter("cc.deadlock_timeouts"),
                       ls.lock_timeouts);
    metrics.SetCounter(metrics.Counter("cc.latch_grants"),
                       ls.latch_grants);
    metrics.SetCounter(metrics.Counter("cc.latch_waits"), ls.latch_waits);
    metrics.Set(metrics.Gauge("cc.lock_wait_time_s"), ls.lock_wait_time_s);
    metrics.Set(metrics.Gauge("cc.latch_wait_time_s"),
                ls.latch_wait_time_s);
  }
}

RunResult MeasurementController::Run() {
  const double start_time = ctx_.sim.now();
  if (ctx_.config.arrival == ArrivalProcess::kOpen) {
    open_session_left_.assign(ctx_.generators.size(), 0);
    sim::Spawn(ArrivalLoop());
  } else {
    for (int u = 0; u < ctx_.config.num_users; ++u) {
      sim::Spawn(UserLoop(u));
    }
  }
  ctx_.sim.Run();

  RunResult result;
  result.response_time = response_time_;
  result.read_response = read_response_;
  result.write_response = write_response_;
  result.response_by_query = response_by_query_;
  result.response_epochs = response_epochs_;
  result.transactions = measured_txns_;
  result.logical_reads = pipeline_.logical_reads();
  result.logical_writes = pipeline_.logical_writes();
  // Physical counters are summed over every shard; with shards = 1 the
  // single iteration reads the server's own components, value for value
  // the pre-sharding assembly.
  const int num_shards = ctx_.shards->num_shards();
  uint64_t buf_hits = 0, buf_accesses = 0;
  for (int s = 0; s < num_shards; ++s) {
    const ShardView& v = ctx_.shards->view(s);
    result.data_reads += v.io->physical_count(io::IoCategory::kDataRead);
    result.dirty_flushes +=
        v.io->physical_count(io::IoCategory::kDirtyFlush);
    result.log_flush_ios +=
        v.io->physical_count(io::IoCategory::kLogWrite);
    result.cluster_exam_reads +=
        v.io->physical_count(io::IoCategory::kClusterRead);
    result.prefetch_reads +=
        v.io->physical_count(io::IoCategory::kPrefetchRead);
    result.split_writes +=
        v.io->physical_count(io::IoCategory::kDataWrite);
    buf_hits += v.buffer->hits();
    buf_accesses += v.buffer->hits() + v.buffer->misses();
    result.log_before_images += v.log->before_images();
    const cluster::ClusterStats& scs = v.cluster->stats();
    result.cluster_stats.placements += scs.placements;
    result.cluster_stats.reclusterings += scs.reclusterings;
    result.cluster_stats.appends += scs.appends;
    result.cluster_stats.relocations += scs.relocations;
    result.cluster_stats.splits += scs.splits;
    result.cluster_stats.exam_reads += scs.exam_reads;
    result.cluster_stats.objects_moved_by_splits +=
        scs.objects_moved_by_splits;
    result.cluster_stats.split_search_steps += scs.split_search_steps;
    result.cluster_stats.split_broken_cost += scs.split_broken_cost;
    result.mean_disk_utilization += v.io->MeanUtilization();
    result.cpu_utilization += v.cpu->Utilization();
  }
  result.buffer_hit_ratio =
      buf_accesses == 0 ? 0.0
                        : static_cast<double>(buf_hits) /
                              static_cast<double>(buf_accesses);
  result.mean_disk_utilization /= static_cast<double>(num_shards);
  result.cpu_utilization /= static_cast<double>(num_shards);
  if (ctx_.shards->sharded()) {
    const ShardedContext::Counters& sc = ctx_.shards->counters();
    result.shard_local_fetches = sc.local_fetches;
    result.shard_remote_fetches = sc.remote_fetches;
    result.shard_remote_writes = sc.remote_writes;
    const uint64_t fetches = sc.local_fetches + sc.remote_fetches;
    result.remote_fetch_fraction =
        fetches == 0 ? 0.0
                     : static_cast<double>(sc.remote_fetches) /
                           static_cast<double>(fetches);
  }
  if (ctx_.locks) {
    const cc::LockStats& ls = ctx_.locks->stats();
    result.cc_enabled = true;
    result.cc_lock_grants = ls.lock_grants;
    result.cc_lock_waits = ls.lock_waits;
    result.cc_deadlock_timeouts = ls.lock_timeouts;
    result.cc_latch_waits = ls.latch_waits;
    result.cc_lock_wait_time_s = ls.lock_wait_time_s;
    result.cc_txn_aborts = ctx_.metrics.value(ctx_.cc_handles.txn_aborts);
    result.cc_txn_retries =
        ctx_.metrics.value(ctx_.cc_handles.txn_retries);
    result.cc_txn_giveups =
        ctx_.metrics.value(ctx_.cc_handles.txn_giveups);
    result.cc_rollback_pages =
        ctx_.metrics.value(ctx_.cc_handles.rollback_pages);
    // Rate per *attempt*: committed transactions plus aborted attempts.
    const uint64_t attempts = result.transactions + result.cc_txn_aborts;
    result.cc_abort_rate =
        attempts == 0 ? 0.0
                      : static_cast<double>(result.cc_txn_aborts) /
                            static_cast<double>(attempts);
  }
  result.sim_duration_s = ctx_.sim.now() - start_time;
  result.achieved_rw_ratio =
      result.logical_writes == 0
          ? static_cast<double>(result.logical_reads)
          : static_cast<double>(result.logical_reads) /
                static_cast<double>(result.logical_writes);
  result.prefetch_issued = ctx_.metrics.value(ctx_.handles.prefetch_issued);
  result.prefetch_hits = ctx_.metrics.value(ctx_.handles.prefetch_hits);
  result.prefetch_wasted =
      ctx_.metrics.value(ctx_.handles.prefetch_wasted);
  for (int s = 0; s < num_shards; ++s) {
    result.db_pages += ctx_.shards->view(s).storage->page_count();
  }
  result.db_objects = ctx_.graph->live_count();
  // Close the final epoch. If the warmup quota was never reached (tiny
  // smoke configs), start measurement now so the series still carries one
  // end-of-run sample.
  if (!measuring_) ctx_.sampler.StartMeasurement(ctx_.sim.now());
  ctx_.sampler.SampleFinal(ctx_.sim.now(),
                           static_cast<uint32_t>(current_epoch_));
  SyncComponentMetrics();
  result.metrics = ctx_.metrics.Snapshot();
  result.series = ctx_.sampler.series();
  if (ctx_.spans) {
    result.span_breakdown = ctx_.spans->Breakdown();
    // Exemplar span trees ride the ordinary trace path: replayed into the
    // ring at their historical timestamps before the cell is collected.
    if (ctx_.trace.enabled()) ctx_.spans->ExportExemplars(ctx_.trace);
  }
  if (ctx_.trace.enabled()) {
    obs::TraceCollector::Global().Collect(
        ctx_.config.cell_index,
        ctx_.config.clustering.Label() + "/" + ctx_.config.WorkloadLabel(),
        ctx_.trace);
  }
  return result;
}

}  // namespace oodb::core
