#ifndef SEMCLUST_CORE_SERVER_CONTEXT_H_
#define SEMCLUST_CORE_SERVER_CONTEXT_H_

#include <memory>
#include <vector>

#include "buffer/buffer_pool.h"
#include "buffer/prefetcher.h"
#include "cc/lock_manager.h"
#include "cluster/cluster_manager.h"
#include "core/model_config.h"
#include "core/sharding.h"
#include "dyn/access_tracker.h"
#include "dyn/recluster_policy.h"
#include "dyn/reorganizer.h"
#include "io/io_subsystem.h"
#include "objmodel/inheritance.h"
#include "objmodel/object_graph.h"
#include "obs/metrics.h"
#include "ocb/ocb_builder.h"
#include "obs/placement_auditor.h"
#include "obs/span_profiler.h"
#include "obs/time_series.h"
#include "obs/trace_sink.h"
#include "sim/resource.h"
#include "sim/simulator.h"
#include "storage/storage_manager.h"
#include "txlog/log_manager.h"
#include "workload/transaction_source.h"
#include "workload/workload_gen.h"

/// \file
/// Pure component wiring for one simulated server (paper §4, Figure
/// 4.1/4.2): the simulator, the object graph and storage, the buffer
/// pool, cluster manager, I/O subsystem, transaction log, CPU, the
/// generated design database, and the observability attachments — built
/// and connected in one place, with no transaction or measurement logic.
/// TxnPipeline executes transactions against this context; the
/// MeasurementController drives the run and assembles the RunResult.

namespace oodb::core {

/// Hot-path metric handles of the core model, resolved once at wiring
/// time (registration order is part of the snapshot layout and must stay
/// stable).
struct CoreMetricHandles {
  obs::CounterHandle txns;
  obs::CounterHandle prefetch_issued;
  obs::CounterHandle prefetch_hits;
  obs::CounterHandle prefetch_wasted;
  obs::HistogramHandle response_s;
};

/// Metric handles of the dynamic re-clustering subsystem, registered only
/// when a DSTC/OPCF policy is enabled — a disabled run registers nothing,
/// keeping its snapshot layout (and every committed baseline) unchanged.
struct DynMetricHandles {
  obs::CounterHandle triggers;        ///< consolidations that produced units
  obs::CounterHandle units;           ///< clustering units enqueued
  obs::CounterHandle objects_moved;   ///< objects relocated by reorgs
  obs::CounterHandle reorg_reads;     ///< page reads charged to reorgs
  obs::CounterHandle deferral_events; ///< OPCF watermark-crossing deferrals
  obs::GaugeHandle deferral_time_s;   ///< total simulated deferral time
  obs::GaugeHandle queue_depth_peak;  ///< deepest disk queue seen at drains
};

/// Metric handles of the concurrency-control subsystem (src/cc/),
/// registered only when `ModelConfig::cc.enabled` — a disabled run
/// registers nothing, keeping every committed snapshot layout unchanged.
struct CcMetricHandles {
  obs::CounterHandle txn_aborts;      ///< deadlock-timeout aborts
  obs::CounterHandle txn_retries;     ///< aborted attempts re-entered
  obs::CounterHandle txn_giveups;     ///< transactions out of retries
  obs::CounterHandle rollback_pages;  ///< pages undone by rollbacks
  obs::HistogramHandle lock_wait_s;   ///< per-acquisition lock-queue wait
  obs::HistogramHandle latch_wait_s;  ///< per-fix page-latch wait
};

/// One fully wired (but not yet running) simulated server. Members are
/// deliberately public: this is the wiring layer the execution and
/// measurement layers build on, not an encapsulation boundary. The
/// constructor validates the configuration (aborting with an actionable
/// message on a bad config), builds the database through the clustering
/// policy under test, optionally runs the offline static reorganisation,
/// and attaches observability — exactly the construction sequence the
/// monolithic EngineeringDbModel used to perform.
class ServerContext {
 public:
  explicit ServerContext(ModelConfig model_config);
  ~ServerContext();

  ServerContext(const ServerContext&) = delete;
  ServerContext& operator=(const ServerContext&) = delete;

  ModelConfig config;
  sim::Simulator sim;
  obs::MetricsRegistry metrics;
  obs::TraceSink trace;
  obs::TimeSeriesSampler sampler;
  std::unique_ptr<obs::PlacementAuditor> auditor;

  obj::TypeLattice lattice;
  workload::CadTypes types{};
  std::unique_ptr<obj::ObjectGraph> graph;
  std::unique_ptr<store::StorageManager> storage;
  std::unique_ptr<buffer::BufferPool> buffer;
  std::unique_ptr<cluster::AffinityModel> affinity;
  std::unique_ptr<cluster::ClusterManager> cluster;
  std::unique_ptr<io::IoSubsystem> io;
  std::unique_ptr<txlog::LogManager> log;
  std::unique_ptr<sim::Resource> cpu;
  workload::DesignDatabase db;
  /// Extents and inheritance entry points of the OCB graph; null unless
  /// `config.ocb.enabled` (its DesignDatabase part is moved into `db`).
  std::unique_ptr<ocb::OcbCatalog> ocb_catalog;
  /// One transaction stream per user: WorkloadGenerator instances for the
  /// engineering-design workload, OcbGenerator instances under OCB.
  std::vector<std::unique_ptr<workload::TransactionSource>> generators;
  obj::InheritanceCostModel inherit_model;

  /// Dynamic re-clustering machinery (src/dyn/); all null unless
  /// `config.clustering.dynamic` enables a policy, in which case the run
  /// is byte-identical to a build without the subsystem.
  std::unique_ptr<dyn::AccessTracker> dyn_tracker;
  std::unique_ptr<dyn::ReclusterPolicy> dyn_policy;
  std::unique_ptr<dyn::Reorganizer> dyn_reorganizer;

  /// Per-transaction critical-path profiler (DESIGN.md §14); null unless
  /// `config.profile_spans`, in which case a run is bit-identical to a
  /// build without the subsystem.
  std::unique_ptr<obs::SpanProfiler> spans;

  /// Strict-2PL lock manager (src/cc/, DESIGN.md §16); null unless
  /// `config.cc.enabled` — the pipeline's lock/latch/retry paths all key
  /// off this pointer, so a disabled run constructs nothing, registers no
  /// metrics, and draws no random numbers.
  std::unique_ptr<cc::LockManager> locks;

  /// The shard placement layer (DESIGN.md §15). Always constructed (last,
  /// after the database build and static reorganisation, so placement
  /// sees the final graph); with `config.shards == 1` it is a pure alias
  /// of the components above and the run is bit-identical to the
  /// pre-sharding model.
  std::unique_ptr<ShardedContext> shards;

  CoreMetricHandles handles;
  DynMetricHandles dyn_handles;
  CcMetricHandles cc_handles;
};

}  // namespace oodb::core

#endif  // SEMCLUST_CORE_SERVER_CONTEXT_H_
