#ifndef SEMCLUST_CORE_POLICY_REGISTRY_H_
#define SEMCLUST_CORE_POLICY_REGISTRY_H_

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "buffer/policy.h"
#include "cluster/policy.h"
#include "core/model_config.h"
#include "core/sharding.h"
#include "dyn/dyn_config.h"
#include "objmodel/object_id.h"
#include "ocb/ocb_config.h"
#include "workload/workload_config.h"

/// \file
/// String-keyed policy resolution: every policy axis of Table 4.1 —
/// buffer replacement (K), prefetch (M), clustering candidate pool (H),
/// page splitting (I) — plus the workload density levels (F) and the
/// relationship kinds (for hint axes) resolves by name. Each policy
/// family self-registers under its canonical `*Name()` label (so the
/// registry can never drift from the labels the reports and benches
/// print) plus a set of ergonomic aliases; scenario files and CLIs look
/// names up here instead of hard-coding enum values, which is what lets
/// a new policy level become available to every declarative experiment
/// by registering itself once.

namespace oodb::core {

/// The policy axes the registry resolves.
enum class PolicyAxis {
  kReplacement,  ///< buffer::ReplacementPolicy (Table 4.1, K)
  kPrefetch,     ///< buffer::PrefetchPolicy (M)
  kCandidatePool,  ///< cluster::CandidatePool (H)
  kSplit,        ///< cluster::SplitPolicy (I)
  kDensity,      ///< workload::StructureDensity (F)
  kRelKind,      ///< obj::RelKind (hint axes, J)
  kOcbLocality,  ///< ocb::RefLocality (OCB reference-locality knob)
  kDynamic,      ///< dyn::PolicyKind (dynamic re-clustering: DSTC / OPCF)
  kShardPlacement,  ///< core::ShardPlacement (N-shard object placement)
  kArrival,      ///< core::ArrivalProcess (closed loops / open Poisson)
};

const char* PolicyAxisName(PolicyAxis axis);

/// Every axis, in enum order (for `--list-policies`-style sweeps).
inline constexpr PolicyAxis kAllPolicyAxes[] = {
    PolicyAxis::kReplacement, PolicyAxis::kPrefetch,
    PolicyAxis::kCandidatePool, PolicyAxis::kSplit,
    PolicyAxis::kDensity, PolicyAxis::kRelKind,
    PolicyAxis::kOcbLocality, PolicyAxis::kDynamic,
    PolicyAxis::kShardPlacement, PolicyAxis::kArrival};

/// Immutable after construction; lookups are case-insensitive and accept
/// '-', '_' and ' ' interchangeably, so "Cluster_within_Buffer",
/// "cluster within buffer" and "CLUSTER-WITHIN-BUFFER" all resolve.
class PolicyRegistry {
 public:
  /// The process-wide registry with every built-in policy registered.
  static const PolicyRegistry& Global();

  std::optional<buffer::ReplacementPolicy> Replacement(
      std::string_view name) const;
  std::optional<buffer::PrefetchPolicy> Prefetch(std::string_view name) const;
  std::optional<cluster::CandidatePool> CandidatePool(
      std::string_view name) const;
  std::optional<cluster::SplitPolicy> Split(std::string_view name) const;
  std::optional<workload::StructureDensity> Density(
      std::string_view name) const;
  std::optional<obj::RelKind> Relationship(std::string_view name) const;
  std::optional<ocb::RefLocality> OcbLocality(std::string_view name) const;
  std::optional<dyn::PolicyKind> Dynamic(std::string_view name) const;
  std::optional<ShardPlacement> ShardPlacementOf(std::string_view name) const;
  std::optional<ArrivalProcess> Arrival(std::string_view name) const;

  /// Canonical names of one axis, in registration (= enum) order — for
  /// error messages and discoverability (`semclust_run --policies`).
  const std::vector<std::string>& CanonicalNames(PolicyAxis axis) const;

  /// "a, b, c" — the canonical names joined for an error message.
  std::string KnownNames(PolicyAxis axis) const;

  /// One level of an axis: its canonical name and every registered alias,
  /// in registration order.
  struct AxisEntry {
    std::string canonical;
    std::vector<std::string> aliases;
  };

  /// All levels of one axis with their aliases, in registration (= enum)
  /// order — the full naming surface (`semclust_run --list-policies`).
  std::vector<AxisEntry> Entries(PolicyAxis axis) const;

  /// Registers `value` under `name` on `axis`. The first registration of
  /// a value on an axis is its canonical name; later registrations are
  /// aliases. Re-registering an existing name is an error (OODB_CHECK).
  void Register(PolicyAxis axis, std::string_view name, int value);

  PolicyRegistry();

 private:
  std::optional<int> Find(PolicyAxis axis, std::string_view name) const;

  struct AxisTable {
    std::map<std::string, int> by_name;  // normalized name -> value
    std::vector<std::string> canonical;  // first-registered names, in order
    /// Every registration in order, original spelling (for Entries()).
    std::vector<std::pair<std::string, int>> registered;
  };
  AxisTable& Table(PolicyAxis axis);
  const AxisTable& Table(PolicyAxis axis) const;

  AxisTable replacement_;
  AxisTable prefetch_;
  AxisTable pool_;
  AxisTable split_;
  AxisTable density_;
  AxisTable rel_kind_;
  AxisTable ocb_locality_;
  AxisTable dynamic_;
  AxisTable shard_placement_;
  AxisTable arrival_;
};

}  // namespace oodb::core

#endif  // SEMCLUST_CORE_POLICY_REGISTRY_H_
