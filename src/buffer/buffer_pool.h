#ifndef SEMCLUST_BUFFER_BUFFER_POOL_H_
#define SEMCLUST_BUFFER_BUFFER_POOL_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "buffer/policy.h"
#include "obs/trace_sink.h"
#include "storage/page.h"
#include "util/random.h"

/// \file
/// The buffer-pool state machine. It is *pure state*: Fix() reports whether
/// the access hit and what eviction it caused, and the simulation model
/// charges the corresponding physical I/O time. This keeps the replacement
/// logic synchronous and unit-testable without a simulator.

namespace oodb::buffer {

/// A fixed-capacity page buffer with pluggable replacement.
///
/// Context-sensitive replacement implements the paper's priority scheme:
/// each access stamps the frame with an advancing access clock (recency),
/// and Boost() raises a frame above plain recency when a structurally
/// related object is touched — so relatives of hot objects are not chosen
/// for replacement even if they themselves were referenced long ago.
/// Under LRU a Boost counts as a plain access; under Random it is ignored.
class BufferPool {
 public:
  /// `capacity` frames (Table 4.1, parameter L), using `policy`;
  /// `seed` drives Random replacement.
  BufferPool(size_t capacity, ReplacementPolicy policy, uint64_t seed = 1);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Outcome of a Fix.
  struct FixResult {
    bool hit = false;
    /// Page evicted to make room (kInvalidPage if none was needed).
    store::PageId evicted_page = store::kInvalidPage;
    /// True if the evicted page was dirty (the caller owes a flush I/O).
    bool evicted_dirty = false;
  };

  /// Makes `page` resident and records an access. On a miss the caller
  /// owes one physical read, plus one flush if `evicted_dirty`.
  FixResult Fix(store::PageId page);

  /// Records an access if the page is resident; never faults.
  /// Returns residency.
  bool Touch(store::PageId page);

  /// Raises the replacement priority of a resident page because a
  /// structurally related object was accessed (weight > 0 scales the
  /// boost). No-op when not resident.
  void Boost(store::PageId page, double weight);

  /// Marks a resident page dirty. The page must be resident.
  void MarkDirty(store::PageId page);

  /// Clears the dirty bit if the page is resident (log-forced flush).
  void MarkClean(store::PageId page);

  bool Contains(store::PageId page) const {
    return page < frame_of_.size() && frame_of_[page] != kNoFrame;
  }
  bool IsDirty(store::PageId page) const;

  /// Pins a resident page against eviction (nestable). Fix() the page
  /// first.
  void Pin(store::PageId page);
  void Unpin(store::PageId page);

  /// All currently resident pages (unspecified order).
  std::vector<store::PageId> ResidentPages() const;

  size_t capacity() const { return capacity_; }
  size_t resident_count() const { return resident_; }
  ReplacementPolicy policy() const { return policy_; }

  uint64_t accesses() const { return hits_ + misses_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  uint64_t dirty_evictions() const { return dirty_evictions_; }
  double HitRatio() const {
    const uint64_t a = accesses();
    return a == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(a);
  }

  /// Zeroes the counters (between warmup and measurement).
  void ResetCounters();

  /// Attaches an event sink (may be null to detach). Each eviction then
  /// records an obs::TraceEventType::kEviction event carrying the page,
  /// its EvictionClass (whether a context boost was protecting it), the
  /// dirty bit, and the replacement priority at eviction time.
  void set_trace(obs::TraceSink* trace) { trace_ = trace; }

 private:
  using FrameId = uint32_t;
  static constexpr FrameId kNoFrame = UINT32_MAX;

  struct Frame {
    store::PageId page = store::kInvalidPage;
    bool dirty = false;
    bool boosted = false;  // context boost since the last plain access
    uint32_t pin_count = 0;
    double priority = 0;   // context-sensitive replacement key
    uint64_t heap_stamp = 0;  // invalidates stale heap entries
    FrameId lru_prev = kNoFrame;  // LRU chain
    FrameId lru_next = kNoFrame;
  };

  struct HeapEntry {
    double priority;
    uint64_t stamp;
    FrameId frame;
    bool operator>(const HeapEntry& o) const {
      if (priority != o.priority) return priority > o.priority;
      return stamp > o.stamp;
    }
  };

  void RecordAccess(FrameId f);
  void SetPriority(FrameId f, double priority);
  FrameId PickVictim();  // kNoFrame when everything is pinned
  void LruUnlink(FrameId f);
  void LruPushMru(FrameId f);

  size_t capacity_;
  ReplacementPolicy policy_;
  Rng rng_;
  /// Looks up the frame holding `page` (kNoFrame when not resident).
  FrameId FrameOf(store::PageId page) const {
    return page < frame_of_.size() ? frame_of_[page] : kNoFrame;
  }

  std::vector<Frame> frames_;
  std::vector<FrameId> free_frames_;
  // Dense PageId-indexed page directory (kNoFrame = not resident), grown on
  // demand: Fix() is the hottest buffer entry point and the hash-map lookup
  // plus its rehashes showed up directly in the simulation profile. Page
  // ids are small and dense, so the direct-indexed table is both faster and
  // smaller than the map it replaces.
  std::vector<FrameId> frame_of_;
  size_t resident_ = 0;

  // Context-sensitive state: access clock + lazy min-heap over priorities.
  double access_clock_ = 0;
  uint64_t next_stamp_ = 1;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap_;

  // LRU state.
  FrameId lru_head_ = kNoFrame;  // least recently used
  FrameId lru_tail_ = kNoFrame;  // most recently used

  // PickVictim scratch: pinned entries popped while hunting for an
  // unpinned frame, restored afterwards. Reused across calls to avoid a
  // per-eviction allocation.
  std::vector<HeapEntry> pinned_stash_;

  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t dirty_evictions_ = 0;

  obs::TraceSink* trace_ = nullptr;
};

}  // namespace oodb::buffer

#endif  // SEMCLUST_BUFFER_BUFFER_POOL_H_
