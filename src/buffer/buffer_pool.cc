#include "buffer/buffer_pool.h"

#include <algorithm>

namespace oodb::buffer {

const char* ReplacementPolicyName(ReplacementPolicy p) {
  switch (p) {
    case ReplacementPolicy::kLru:
      return "LRU";
    case ReplacementPolicy::kContextSensitive:
      return "Context-sensitive";
    case ReplacementPolicy::kRandom:
      return "Random";
  }
  return "unknown";
}

const char* PrefetchPolicyName(PrefetchPolicy p) {
  switch (p) {
    case PrefetchPolicy::kNone:
      return "No_prefetch";
    case PrefetchPolicy::kWithinBuffer:
      return "Prefetch_within_buffer";
    case PrefetchPolicy::kWithinDb:
      return "Prefetch_within_DB";
  }
  return "unknown";
}

BufferPool::BufferPool(size_t capacity, ReplacementPolicy policy,
                       uint64_t seed)
    : capacity_(capacity), policy_(policy), rng_(seed) {
  OODB_CHECK_GE(capacity, 1u);
  frames_.resize(capacity);
  free_frames_.reserve(capacity);
  // Hand out frame 0 first for determinism.
  for (size_t i = capacity; i-- > 0;) {
    free_frames_.push_back(static_cast<FrameId>(i));
  }
}

void BufferPool::LruUnlink(FrameId f) {
  Frame& fr = frames_[f];
  if (fr.lru_prev != kNoFrame) {
    frames_[fr.lru_prev].lru_next = fr.lru_next;
  } else if (lru_head_ == f) {
    lru_head_ = fr.lru_next;
  }
  if (fr.lru_next != kNoFrame) {
    frames_[fr.lru_next].lru_prev = fr.lru_prev;
  } else if (lru_tail_ == f) {
    lru_tail_ = fr.lru_prev;
  }
  fr.lru_prev = fr.lru_next = kNoFrame;
}

void BufferPool::LruPushMru(FrameId f) {
  Frame& fr = frames_[f];
  fr.lru_prev = lru_tail_;
  fr.lru_next = kNoFrame;
  if (lru_tail_ != kNoFrame) frames_[lru_tail_].lru_next = f;
  lru_tail_ = f;
  if (lru_head_ == kNoFrame) lru_head_ = f;
}

void BufferPool::SetPriority(FrameId f, double priority) {
  Frame& fr = frames_[f];
  fr.priority = priority;
  fr.heap_stamp = next_stamp_++;
  heap_.push(HeapEntry{fr.priority, fr.heap_stamp, f});
}

void BufferPool::RecordAccess(FrameId f) {
  switch (policy_) {
    case ReplacementPolicy::kLru:
      LruUnlink(f);
      LruPushMru(f);
      break;
    case ReplacementPolicy::kContextSensitive:
      access_clock_ += 1.0;
      SetPriority(f, access_clock_);
      frames_[f].boosted = false;  // plain recency from here on
      break;
    case ReplacementPolicy::kRandom:
      break;
  }
}

BufferPool::FixResult BufferPool::Fix(store::PageId page) {
  OODB_CHECK_NE(page, store::kInvalidPage);
  FixResult result;
  const FrameId resident = FrameOf(page);
  if (resident != kNoFrame) {
    ++hits_;
    result.hit = true;
    RecordAccess(resident);
    return result;
  }

  ++misses_;
  FrameId f;
  if (!free_frames_.empty()) {
    f = free_frames_.back();
    free_frames_.pop_back();
  } else {
    f = PickVictim();
    OODB_CHECK_NE(f, kNoFrame);  // capacity must exceed pinned pages
    Frame& victim = frames_[f];
    result.evicted_page = victim.page;
    result.evicted_dirty = victim.dirty;
    ++evictions_;
    if (victim.dirty) ++dirty_evictions_;
    if (trace_ != nullptr) {
      obs::EvictionClass cls = obs::EvictionClass::kPlainRecency;
      switch (policy_) {
        case ReplacementPolicy::kLru:
          cls = obs::EvictionClass::kLru;
          break;
        case ReplacementPolicy::kRandom:
          cls = obs::EvictionClass::kRandom;
          break;
        case ReplacementPolicy::kContextSensitive:
          cls = victim.boosted ? obs::EvictionClass::kContextBoosted
                               : obs::EvictionClass::kPlainRecency;
          break;
      }
      trace_->Record(obs::Subsystem::kBuffer,
                     obs::TraceEventType::kEviction, victim.page,
                     static_cast<uint64_t>(cls), victim.dirty ? 1 : 0,
                     victim.priority);
    }
    frame_of_[victim.page] = kNoFrame;
    --resident_;
    if (policy_ == ReplacementPolicy::kLru) LruUnlink(f);
  }

  Frame& fr = frames_[f];
  fr.page = page;
  fr.dirty = false;
  fr.boosted = false;
  fr.pin_count = 0;
  fr.priority = 0;
  fr.heap_stamp = 0;
  if (page >= frame_of_.size()) {
    // Geometric growth: pages are allocated one at a time while the
    // database builds, so growing to exactly page+1 would resize per page.
    frame_of_.resize(std::max<size_t>(page + 1, frame_of_.size() * 2),
                     kNoFrame);
  }
  frame_of_[page] = f;
  ++resident_;
  // RecordAccess links the frame into the policy structure (LruUnlink is a
  // no-op on a frame that is not yet linked).
  RecordAccess(f);
  return result;
}

BufferPool::FrameId BufferPool::PickVictim() {
  switch (policy_) {
    case ReplacementPolicy::kLru: {
      for (FrameId f = lru_head_; f != kNoFrame; f = frames_[f].lru_next) {
        if (frames_[f].pin_count == 0) return f;
      }
      return kNoFrame;
    }
    case ReplacementPolicy::kContextSensitive: {
      // Pop entries until an unpinned live frame surfaces; pinned frames
      // are stashed (their stamps stay valid) and restored afterwards.
      pinned_stash_.clear();
      FrameId victim = kNoFrame;
      while (!heap_.empty()) {
        HeapEntry e = heap_.top();
        heap_.pop();
        const Frame& fr = frames_[e.frame];
        if (fr.page == store::kInvalidPage || fr.heap_stamp != e.stamp) {
          continue;  // stale entry
        }
        if (fr.pin_count > 0) {
          pinned_stash_.push_back(e);
          continue;
        }
        victim = e.frame;
        break;
      }
      for (const HeapEntry& e : pinned_stash_) heap_.push(e);
      return victim;
    }
    case ReplacementPolicy::kRandom: {
      // All frames are occupied when PickVictim is called.
      for (int attempts = 0; attempts < 1024; ++attempts) {
        const FrameId f =
            static_cast<FrameId>(rng_.NextBelow(frames_.size()));
        if (frames_[f].pin_count == 0) return f;
      }
      // Degenerate: nearly everything pinned; fall back to a scan.
      for (FrameId f = 0; f < frames_.size(); ++f) {
        if (frames_[f].pin_count == 0) return f;
      }
      return kNoFrame;
    }
  }
  return kNoFrame;
}

bool BufferPool::Touch(store::PageId page) {
  const FrameId f = FrameOf(page);
  if (f == kNoFrame) return false;
  RecordAccess(f);
  return true;
}

void BufferPool::Boost(store::PageId page, double weight) {
  OODB_CHECK_GT(weight, 0.0);
  const FrameId f = FrameOf(page);
  if (f == kNoFrame) return;
  switch (policy_) {
    case ReplacementPolicy::kContextSensitive: {
      // Lift the frame above the current clock: it outlives plain-recency
      // pages proportionally to the relationship weight.
      Frame& fr = frames_[f];
      const double base = std::max(fr.priority, access_clock_);
      SetPriority(f, base + weight);
      fr.boosted = true;
      break;
    }
    case ReplacementPolicy::kLru:
      RecordAccess(f);  // best LRU can do: treat as an access
      break;
    case ReplacementPolicy::kRandom:
      break;  // random replacement has no priority to adjust
  }
}

void BufferPool::MarkDirty(store::PageId page) {
  const FrameId f = FrameOf(page);
  OODB_CHECK_NE(f, kNoFrame);
  frames_[f].dirty = true;
}

void BufferPool::MarkClean(store::PageId page) {
  const FrameId f = FrameOf(page);
  if (f == kNoFrame) return;
  frames_[f].dirty = false;
}

bool BufferPool::IsDirty(store::PageId page) const {
  const FrameId f = FrameOf(page);
  return f != kNoFrame && frames_[f].dirty;
}

void BufferPool::Pin(store::PageId page) {
  const FrameId f = FrameOf(page);
  OODB_CHECK_NE(f, kNoFrame);
  ++frames_[f].pin_count;
}

void BufferPool::Unpin(store::PageId page) {
  const FrameId f = FrameOf(page);
  OODB_CHECK_NE(f, kNoFrame);
  OODB_CHECK_GT(frames_[f].pin_count, 0u);
  --frames_[f].pin_count;
}

std::vector<store::PageId> BufferPool::ResidentPages() const {
  std::vector<store::PageId> pages;
  pages.reserve(resident_);
  for (store::PageId p = 0; p < frame_of_.size(); ++p) {
    if (frame_of_[p] != kNoFrame) pages.push_back(p);
  }
  return pages;
}

void BufferPool::ResetCounters() {
  hits_ = misses_ = evictions_ = dirty_evictions_ = 0;
}

}  // namespace oodb::buffer
