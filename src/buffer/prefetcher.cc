#include "buffer/prefetcher.h"

#include <algorithm>

namespace oodb::buffer {

obj::RelKind DominantKind(const obj::ObjectGraph& graph,
                          obj::ObjectId object) {
  const auto profile =
      graph.lattice().EffectiveTraversal(graph.object(object).type);
  size_t best = 0;
  for (size_t k = 1; k < profile.size(); ++k) {
    if (profile[k] > profile[best]) best = k;
  }
  return static_cast<obj::RelKind>(best);
}

PrefetchGroup ComputePrefetchGroup(const obj::ObjectGraph& graph,
                                   const store::StorageManager& storage,
                                   obj::ObjectId object, AccessHint hint,
                                   int config_depth, size_t max_pages,
                                   obs::TraceSink* trace) {
  PrefetchGroup group;
  group.kind = hint.active ? hint.kind : DominantKind(graph, object);

  const store::PageId own_page = storage.PageOf(object);
  auto add_object = [&](obj::ObjectId neighbor) {
    if (group.pages.size() >= max_pages) return;
    const store::PageId p = storage.PageOf(neighbor);
    if (p == store::kInvalidPage || p == own_page) return;
    if (std::find(group.pages.begin(), group.pages.end(), p) ==
        group.pages.end()) {
      group.pages.push_back(p);
    }
  };

  switch (group.kind) {
    case obj::RelKind::kConfiguration: {
      // The subcomponents a configuration walk is about to touch:
      // breadth-first down the composition hierarchy, a bounded number of
      // levels and pages.
      std::vector<obj::ObjectId> frontier{object};
      for (int level = 0;
           level < config_depth && !frontier.empty() &&
           group.pages.size() < max_pages;
           ++level) {
        std::vector<obj::ObjectId> next;
        for (obj::ObjectId o : frontier) {
          graph.ForEachNeighbor(o, obj::RelKind::kConfiguration,
                                obj::Direction::kDown,
                                [&](obj::ObjectId c) {
                                  add_object(c);
                                  next.push_back(c);
                                });
        }
        frontier = std::move(next);
      }
      break;
    }
    case obj::RelKind::kVersionHistory:
      // Immediate ancestor and immediate descendants.
      graph.ForEachNeighbor(object, obj::RelKind::kVersionHistory,
                            obj::Direction::kUp, add_object);
      graph.ForEachNeighbor(object, obj::RelKind::kVersionHistory,
                            obj::Direction::kDown, add_object);
      break;
    case obj::RelKind::kCorrespondence:
      // All objects corresponding to the one being accessed.
      graph.ForEachNeighbor(object, obj::RelKind::kCorrespondence,
                            obj::Direction::kDown, add_object);
      break;
    case obj::RelKind::kInstanceInheritance:
      // The sources a by-reference inherited attribute dereferences into.
      graph.ForEachNeighbor(object, obj::RelKind::kInstanceInheritance,
                            obj::Direction::kUp, add_object);
      break;
  }
  if (trace != nullptr && !group.pages.empty()) {
    trace->Record(obs::Subsystem::kBuffer,
                  obs::TraceEventType::kPrefetchGroup,
                  static_cast<uint64_t>(group.kind), group.pages.size());
  }
  return group;
}

}  // namespace oodb::buffer
