#ifndef SEMCLUST_BUFFER_POLICY_H_
#define SEMCLUST_BUFFER_POLICY_H_

#include <cstdint>

#include "objmodel/object_id.h"

/// \file
/// Buffering control parameters (Table 4.1, parameters K and M) and the
/// application access hints the buffer manager accepts (paper §2.2).

namespace oodb::buffer {

/// Buffer replacement policy (Table 4.1, parameter K).
enum class ReplacementPolicy : uint8_t {
  kLru = 0,
  kContextSensitive = 1,
  kRandom = 2,
};

const char* ReplacementPolicyName(ReplacementPolicy p);

/// Prefetch policy (Table 4.1, parameter M).
enum class PrefetchPolicy : uint8_t {
  kNone = 0,
  kWithinBuffer = 1,  ///< re-prioritise resident related pages; no I/O
  kWithinDb = 2,      ///< asynchronously read missing related pages
};

const char* PrefetchPolicyName(PrefetchPolicy p);

/// An application's declared primary access pattern, e.g. "my primary
/// access is via configuration relationships". Inactive means the buffer
/// manager falls back to type-level traversal knowledge.
struct AccessHint {
  bool active = false;
  obj::RelKind kind = obj::RelKind::kConfiguration;

  static AccessHint None() { return {}; }
  static AccessHint For(obj::RelKind kind) { return {true, kind}; }
};

}  // namespace oodb::buffer

#endif  // SEMCLUST_BUFFER_POLICY_H_
