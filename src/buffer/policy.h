#ifndef SEMCLUST_BUFFER_POLICY_H_
#define SEMCLUST_BUFFER_POLICY_H_

#include <cstdint>

#include "objmodel/object_id.h"

/// \file
/// Buffering control parameters (Table 4.1, parameters K and M) and the
/// application access hints the buffer manager accepts (paper §2.2).

namespace oodb::buffer {

/// Buffer replacement policy (Table 4.1, parameter K).
enum class ReplacementPolicy : uint8_t {
  kLru = 0,
  kContextSensitive = 1,
  kRandom = 2,
};

const char* ReplacementPolicyName(ReplacementPolicy p);

/// Every replacement level, in enum order. The policy registry and sweep
/// helpers iterate this list, so a new level added here (with its Name
/// case) becomes resolvable by name everywhere at once.
inline constexpr ReplacementPolicy kAllReplacementPolicies[] = {
    ReplacementPolicy::kLru, ReplacementPolicy::kContextSensitive,
    ReplacementPolicy::kRandom};

/// Prefetch policy (Table 4.1, parameter M).
enum class PrefetchPolicy : uint8_t {
  kNone = 0,
  kWithinBuffer = 1,  ///< re-prioritise resident related pages; no I/O
  kWithinDb = 2,      ///< asynchronously read missing related pages
};

const char* PrefetchPolicyName(PrefetchPolicy p);

/// Every prefetch level, in enum order (see kAllReplacementPolicies).
inline constexpr PrefetchPolicy kAllPrefetchPolicies[] = {
    PrefetchPolicy::kNone, PrefetchPolicy::kWithinBuffer,
    PrefetchPolicy::kWithinDb};

/// An application's declared primary access pattern, e.g. "my primary
/// access is via configuration relationships". Inactive means the buffer
/// manager falls back to type-level traversal knowledge.
struct AccessHint {
  bool active = false;
  obj::RelKind kind = obj::RelKind::kConfiguration;

  static AccessHint None() { return {}; }
  static AccessHint For(obj::RelKind kind) { return {true, kind}; }
};

}  // namespace oodb::buffer

#endif  // SEMCLUST_BUFFER_POLICY_H_
