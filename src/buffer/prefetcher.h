#ifndef SEMCLUST_BUFFER_PREFETCHER_H_
#define SEMCLUST_BUFFER_PREFETCHER_H_

#include <vector>

#include "buffer/policy.h"
#include "objmodel/object_graph.h"
#include "obs/trace_sink.h"
#include "storage/storage_manager.h"

/// \file
/// Semantic prefetching (paper §2.2): touching an object identifies the
/// pages of its immediate structural neighbours as a prefetch group. With
/// an active user hint the group follows the hinted relationship; without
/// one it follows the dominant kind of the object's type-level traversal
/// profile (type knowledge inherited by the instance).

namespace oodb::buffer {

/// Pages related to an accessed object, split by residency so the caller
/// can apply the prefetch policy: boost the resident ones, and under
/// Prefetch_within_DB asynchronously read the missing ones.
struct PrefetchGroup {
  /// The relationship kind that defined the group.
  obj::RelKind kind = obj::RelKind::kConfiguration;
  /// Distinct pages of neighbours, excluding the accessed object's page.
  std::vector<store::PageId> pages;
};

/// Computes the prefetch group for an access to `object`.
///
/// The neighbour scope per kind follows the paper: configuration brings in
/// the subcomponents an application walking the configuration hierarchy is
/// about to touch (descending up to `config_depth` levels, bounded by
/// `max_pages`); version history brings the immediate ancestor and
/// descendants; correspondence brings all corresponding objects; instance
/// inheritance brings the inheritance sources (the objects a by-reference
/// attribute dereferences into).
///
/// A non-null `trace` records one obs::TraceEventType::kPrefetchGroup
/// event per non-empty group (relationship kind + group size).
PrefetchGroup ComputePrefetchGroup(const obj::ObjectGraph& graph,
                                   const store::StorageManager& storage,
                                   obj::ObjectId object, AccessHint hint,
                                   int config_depth = 2,
                                   size_t max_pages = 8,
                                   obs::TraceSink* trace = nullptr);

/// The dominant relationship kind of `object`'s effective type profile.
obj::RelKind DominantKind(const obj::ObjectGraph& graph,
                          obj::ObjectId object);

}  // namespace oodb::buffer

#endif  // SEMCLUST_BUFFER_PREFETCHER_H_
