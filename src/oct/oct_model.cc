#include "oct/oct_model.h"

#include <algorithm>

namespace oodb::oct {

const char* OctTypeName(OctType t) {
  switch (t) {
    case OctType::kFacet:
      return "facet";
    case OctType::kInstance:
      return "instance";
    case OctType::kNet:
      return "net";
    case OctType::kTerm:
      return "term";
    case OctType::kPath:
      return "path";
    case OctType::kBox:
      return "box";
    case OctType::kProp:
      return "prop";
    case OctType::kBag:
      return "bag";
    case OctType::kLayer:
      return "layer";
  }
  return "unknown";
}

OctId OctDataManager::Create(OctType type, uint32_t size_bytes) {
  OctObject o;
  o.type = type;
  o.size_bytes = size_bytes;
  objects_.push_back(std::move(o));
  if (trace_ != nullptr) trace_->OnSimpleWrite();
  return static_cast<OctId>(objects_.size() - 1);
}

void OctDataManager::Attach(OctId parent, OctId child) {
  OODB_CHECK(IsLive(parent));
  OODB_CHECK(IsLive(child));
  objects_[parent].contents.push_back(child);
  objects_[child].containers.push_back(parent);
  if (trace_ != nullptr) trace_->OnStructureWrite();
}

void OctDataManager::Detach(OctId parent, OctId child) {
  OODB_CHECK(IsLive(parent));
  OODB_CHECK(IsLive(child));
  auto& contents = objects_[parent].contents;
  auto it = std::find(contents.begin(), contents.end(), child);
  if (it != contents.end()) contents.erase(it);
  auto& containers = objects_[child].containers;
  auto jt = std::find(containers.begin(), containers.end(), parent);
  if (jt != containers.end()) containers.erase(jt);
  if (trace_ != nullptr) trace_->OnStructureWrite();
}

void OctDataManager::Modify(OctId id) {
  OODB_CHECK(IsLive(id));
  if (trace_ != nullptr) trace_->OnSimpleWrite();
}

const OctObject& OctDataManager::Get(OctId id) {
  OODB_CHECK(IsLive(id));
  if (trace_ != nullptr) trace_->OnSimpleRead();
  return objects_[id];
}

std::vector<OctId> OctDataManager::Contents(OctId id,
                                            std::optional<OctType> filter) {
  OODB_CHECK(IsLive(id));
  std::vector<OctId> result;
  for (OctId c : objects_[id].contents) {
    if (!filter.has_value() || objects_[c].type == *filter) {
      result.push_back(c);
    }
  }
  if (trace_ != nullptr) {
    trace_->OnStructureRead(static_cast<uint32_t>(result.size()),
                            /*downward=*/true);
  }
  return result;
}

std::vector<OctId> OctDataManager::Containers(
    OctId id, std::optional<OctType> filter) {
  OODB_CHECK(IsLive(id));
  std::vector<OctId> result;
  for (OctId c : objects_[id].containers) {
    if (!filter.has_value() || objects_[c].type == *filter) {
      result.push_back(c);
    }
  }
  if (trace_ != nullptr) {
    trace_->OnStructureRead(static_cast<uint32_t>(result.size()),
                            /*downward=*/false);
  }
  return result;
}

}  // namespace oodb::oct
