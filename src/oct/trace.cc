#include "oct/trace.h"

#include "util/check.h"

namespace oodb::oct {

double SessionTrace::ReadWriteRatio() const {
  const uint64_t writes = TotalWrites();
  if (writes == 0) return static_cast<double>(TotalReads());
  return static_cast<double>(TotalReads()) / static_cast<double>(writes);
}

double SessionTrace::IoRate() const {
  if (session_seconds <= 0) return 0;
  return static_cast<double>(TotalOps()) / session_seconds;
}

void TraceCollector::BeginSession(std::string tool) {
  OODB_CHECK(!open_);
  current_ = SessionTrace{};
  current_.tool = std::move(tool);
  open_ = true;
}

void TraceCollector::EndSession(double session_seconds) {
  OODB_CHECK(open_);
  current_.session_seconds = session_seconds;
  sessions_.push_back(std::move(current_));
  current_ = SessionTrace{};
  open_ = false;
}

void TraceCollector::OnStructureRead(uint32_t fanout, bool downward) {
  if (!open_) return;
  ++current_.structure_reads;
  if (downward) {
    current_.downward_fanouts.push_back(fanout);
  } else {
    current_.upward_fanouts.push_back(fanout);
  }
}

void TraceCollector::OnSimpleRead() {
  if (!open_) return;
  ++current_.simple_reads;
}

void TraceCollector::OnStructureWrite() {
  if (!open_) return;
  ++current_.structure_writes;
}

void TraceCollector::OnSimpleWrite() {
  if (!open_) return;
  ++current_.simple_writes;
}

}  // namespace oodb::oct
