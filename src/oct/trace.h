#ifndef SEMCLUST_OCT_TRACE_H_
#define SEMCLUST_OCT_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

/// \file
/// OCT instrumentation (paper §3.2). For each tool invocation we record:
/// the tool identifier, structure/simple read and write counts, the
/// session time (octBegin .. octEnd), and the fan-out of upward and
/// downward structural accesses.

namespace oodb::oct {

/// One recorded tool invocation.
struct SessionTrace {
  std::string tool;
  uint64_t structure_reads = 0;
  uint64_t structure_writes = 0;
  uint64_t simple_reads = 0;
  uint64_t simple_writes = 0;
  /// Synthetic session duration in seconds (computation + I/O time).
  double session_seconds = 0;
  /// Fan-outs observed on downward structural accesses.
  std::vector<uint32_t> downward_fanouts;
  /// Fan-outs observed on upward structural accesses.
  std::vector<uint32_t> upward_fanouts;

  uint64_t TotalReads() const { return structure_reads + simple_reads; }
  uint64_t TotalWrites() const { return structure_writes + simple_writes; }
  uint64_t TotalOps() const { return TotalReads() + TotalWrites(); }

  /// The paper's read/write ratio: all reads over all writes (logical
  /// level). Returns reads when no writes occurred.
  double ReadWriteRatio() const;

  /// Logical I/O per second of session time (Figure 3.3's metric).
  double IoRate() const;
};

/// Collects traces across many tool invocations.
class TraceCollector {
 public:
  /// Starts a session (octBegin). Only one session may be open.
  void BeginSession(std::string tool);

  /// Ends the session (octEnd), recording its duration.
  void EndSession(double session_seconds);

  // Recording hooks used by the data manager.
  void OnStructureRead(uint32_t fanout, bool downward);
  void OnSimpleRead();
  void OnStructureWrite();
  void OnSimpleWrite();

  bool InSession() const { return open_; }
  const std::vector<SessionTrace>& sessions() const { return sessions_; }

 private:
  bool open_ = false;
  SessionTrace current_;
  std::vector<SessionTrace> sessions_;
};

}  // namespace oodb::oct

#endif  // SEMCLUST_OCT_TRACE_H_
