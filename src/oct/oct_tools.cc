#include "oct/oct_tools.h"

#include <algorithm>

namespace oodb::oct {

std::vector<ToolProfile> StandardTools() {
  // Calibration anchors from the paper: VEM 6000 (highest, a display-
  // everything editor); wolfe is the density outlier among batch tools;
  // SPARCS scans the whole design for terminal-pair checks; MisII and
  // bdsim are logic tools; the five MOSAICO phases span 0.52 .. 170.
  return {
      {"vem", 6000, 30000, 0.050, 0.75, {0.20, 0.20, 0.60},
       {0.30, 0.20, 0.50}},
      {"wolfe", 90, 20000, 0.012, 0.70, {0.45, 0.35, 0.20},
       {0.25, 0.25, 0.50}},
      {"SPARCS", 45, 25000, 0.010, 0.80, {0.70, 0.25, 0.05},
       {0.20, 0.20, 0.60}},
      {"misII", 20, 15000, 0.008, 0.60, {0.75, 0.20, 0.05},
       {0.35, 0.15, 0.50}},
      {"bdsim", 170, 18000, 0.007, 0.80, {0.70, 0.25, 0.05},
       {0.20, 0.20, 0.60}},
      {"atlas", 0.52, 8000, 0.010, 0.50, {0.80, 0.15, 0.05},
       {0.55, 0.25, 0.20}},
      {"cds", 2, 6000, 0.012, 0.55, {0.75, 0.20, 0.05},
       {0.45, 0.25, 0.30}},
      {"cpre", 8, 7000, 0.011, 0.60, {0.75, 0.20, 0.05},
       {0.35, 0.25, 0.40}},
      {"PGcurrent", 30, 9000, 0.009, 0.65, {0.70, 0.25, 0.05},
       {0.25, 0.25, 0.50}},
      {"mosaico", 170, 20000, 0.006, 0.75, {0.65, 0.30, 0.05},
       {0.20, 0.25, 0.55}},
  };
}

OctWorkbench::OctWorkbench(uint64_t seed) : rng_(seed) { BuildDesign(); }

void OctWorkbench::BuildDesign() {
  // Figure 3.1 schema: nets attach to a facet; terms attach to nets;
  // paths attach to terms. Instances carry boxes (geometry). Fan-outs are
  // sized so the three density classes have natural navigation targets:
  // term/instance contents 0-3, net contents 4-9, facet contents >= 10.
  constexpr int kFacets = 40;
  for (int f = 0; f < kFacets; ++f) {
    const OctId facet = dm_.Create(OctType::kFacet, 256);
    facets_.push_back(facet);
    const int instances = static_cast<int>(rng_.UniformInt(6, 14));
    for (int i = 0; i < instances; ++i) {
      const OctId inst = dm_.Create(OctType::kInstance, 96);
      dm_.Attach(facet, inst);
      instances_.push_back(inst);
      const int boxes = static_cast<int>(rng_.UniformInt(0, 3));
      for (int b = 0; b < boxes; ++b) {
        dm_.Attach(inst, dm_.Create(OctType::kBox, 40));
      }
    }
    const int nets = static_cast<int>(rng_.UniformInt(8, 20));
    for (int n = 0; n < nets; ++n) {
      const OctId net = dm_.Create(OctType::kNet, 64);
      dm_.Attach(facet, net);
      nets_.push_back(net);
      const int terms = static_cast<int>(rng_.UniformInt(4, 9));
      for (int t = 0; t < terms; ++t) {
        const OctId term = dm_.Create(OctType::kTerm, 32);
        dm_.Attach(net, term);
        terms_.push_back(term);
        const int npaths = static_cast<int>(rng_.UniformInt(0, 3));
        for (int p = 0; p < npaths; ++p) {
          const OctId path = dm_.Create(OctType::kPath, 48);
          dm_.Attach(term, path);
          paths_.push_back(path);
        }
      }
    }
  }
}

OctId OctWorkbench::PickLowDensityTarget() {
  // Terms (0-3 paths) and instances (0-3 boxes).
  if (rng_.Bernoulli(0.6) && !terms_.empty()) {
    return terms_[rng_.NextBelow(terms_.size())];
  }
  return instances_[rng_.NextBelow(instances_.size())];
}

OctId OctWorkbench::PickMedDensityTarget() {
  // Nets carry 4-9 terms.
  return nets_[rng_.NextBelow(nets_.size())];
}

OctId OctWorkbench::PickHighDensityTarget() {
  // Facets carry all their instances and nets (>= 14 objects).
  return facets_[rng_.NextBelow(facets_.size())];
}

void OctWorkbench::RunSession(const ToolProfile& tool) {
  trace_.BeginSession(tool.name);
  const auto ops = static_cast<int>(
      std::max(100.0, rng_.Exponential(tool.ops_per_session)));
  DiscreteDistribution density({tool.density_mix[0], tool.density_mix[1],
                                tool.density_mix[2]});
  DiscreteDistribution writes({tool.write_mix[0], tool.write_mix[1],
                               tool.write_mix[2]});

  // Feedback controller: issue a write whenever the session's logical R/W
  // ratio is above the tool's target, so the measured ratio converges to
  // the calibration anchor regardless of ops-per-event variation.
  int issued = 0;
  int64_t reads_done = 0;
  int64_t writes_done = 0;
  while (issued < ops) {
    const bool write_now =
        static_cast<double>(reads_done) >
        tool.target_rw_ratio * (static_cast<double>(writes_done) + 1.0);
    if (write_now) {
      switch (writes.Sample(rng_)) {
        case 0: {  // replace a term's path with a fresh one
          const OctId term = terms_[rng_.NextBelow(terms_.size())];
          // Keep term fan-out in the low bucket: detaching the oldest
          // path models geometry being rewritten rather than accreted.
          const auto& existing = dm_.Peek(term).contents;
          if (existing.size() >= 3) {
            dm_.Detach(term, existing.front());
            issued += 1;
            writes_done += 1;
          }
          const OctId path = dm_.Create(OctType::kPath, 48);
          dm_.Attach(term, path);
          paths_.push_back(path);
          issued += 2;  // simple write + structure write
          writes_done += 2;
          break;
        }
        case 1: {  // move a path between terms
          const OctId from = terms_[rng_.NextBelow(terms_.size())];
          const OctId to = terms_[rng_.NextBelow(terms_.size())];
          const auto& contents = dm_.Peek(from).contents;
          if (!contents.empty() && from != to &&
              dm_.Peek(to).contents.size() < 3) {
            const OctId path = contents.front();
            dm_.Detach(from, path);
            dm_.Attach(to, path);
            issued += 2;
            writes_done += 2;
          } else {
            dm_.Modify(from);
            issued += 1;
            writes_done += 1;
          }
          break;
        }
        default: {  // modify an existing object
          dm_.Modify(instances_[rng_.NextBelow(instances_.size())]);
          issued += 1;
          writes_done += 1;
          break;
        }
      }
    } else if (rng_.Bernoulli(tool.p_structure_read)) {
      // Structural navigation at the tool's density profile. Downward
      // navigation dominates; occasionally navigate upward (the paper
      // observed upward accesses nearly always return one object).
      OctId target;
      switch (density.Sample(rng_)) {
        case 0:
          target = PickLowDensityTarget();
          break;
        case 1:
          target = PickMedDensityTarget();
          break;
        default:
          target = PickHighDensityTarget();
          break;
      }
      if (rng_.Bernoulli(0.9)) {
        const auto contents = dm_.Contents(target);
        // Tools touch a subset of what navigation returned (paper §3.2:
        // not all component objects are read).
        const size_t touch =
            std::min<size_t>(contents.size(),
                             static_cast<size_t>(rng_.UniformInt(0, 3)));
        for (size_t i = 0; i < touch; ++i) dm_.Get(contents[i]);
        issued += static_cast<int>(1 + touch);
        reads_done += static_cast<int64_t>(1 + touch);
      } else {
        // Upward navigation starts at a leaf (e.g. "which net owns this
        // terminal?"), which is why the paper sees almost all upward
        // accesses return a single object.
        const OctId leaf =
            paths_.empty() ? terms_[rng_.NextBelow(terms_.size())]
                           : paths_[rng_.NextBelow(paths_.size())];
        dm_.Containers(leaf);
        issued += 1;
        reads_done += 1;
      }
    } else {
      // Simple read by id.
      dm_.Get(instances_[rng_.NextBelow(instances_.size())]);
      issued += 1;
      reads_done += 1;
    }
  }

  const double jitter = rng_.UniformDouble(0.9, 1.1);
  trace_.EndSession(static_cast<double>(issued) * tool.seconds_per_op *
                    jitter);
}

uint64_t OctWorkbench::IntegrityScan() {
  // Verify the attachment invariants by walking the whole design: every
  // facet's nets, every net's terms, every term's paths. A system with
  // referential integrity would maintain this incrementally on writes.
  uint64_t reads = 0;
  for (OctId facet : facets_) {
    const auto nets = dm_.Contents(facet, OctType::kNet);
    ++reads;
    for (OctId net : nets) {
      const auto terms = dm_.Contents(net, OctType::kTerm);
      ++reads;
      for (OctId term : terms) {
        dm_.Contents(term, OctType::kPath);
        ++reads;
      }
    }
  }
  return reads;
}

void OctWorkbench::RunTool(const ToolProfile& tool, int invocations,
                           bool integrity_prescan) {
  for (int i = 0; i < invocations; ++i) {
    if (integrity_prescan) {
      trace_.BeginSession(tool.name);
      const uint64_t reads = IntegrityScan();
      // The scan is part of the session; fold its time in before the
      // normal op loop runs as its own recorded session.
      trace_.EndSession(static_cast<double>(reads) * tool.seconds_per_op);
    }
    RunSession(tool);
  }
}

void OctWorkbench::RunAll(int invocations_per_tool) {
  for (const ToolProfile& tool : StandardTools()) {
    RunTool(tool, invocations_per_tool);
  }
}

}  // namespace oodb::oct
