#include "oct/trace_analyzer.h"

#include <algorithm>

namespace oodb::oct {

std::vector<ToolSummary> SummarizeByTool(
    const std::vector<SessionTrace>& sessions) {
  std::vector<ToolSummary> summaries;
  std::vector<double> seconds;           // parallel to summaries
  std::vector<uint64_t> down_low, down_med, down_high, up_total, up_single;

  auto index_of = [&](const std::string& tool) -> size_t {
    for (size_t i = 0; i < summaries.size(); ++i) {
      if (summaries[i].tool == tool) return i;
    }
    summaries.push_back(ToolSummary{tool});
    seconds.push_back(0);
    down_low.push_back(0);
    down_med.push_back(0);
    down_high.push_back(0);
    up_total.push_back(0);
    up_single.push_back(0);
    return summaries.size() - 1;
  };

  for (const SessionTrace& s : sessions) {
    const size_t i = index_of(s.tool);
    ToolSummary& t = summaries[i];
    ++t.invocations;
    t.total_reads += s.TotalReads();
    t.total_writes += s.TotalWrites();
    seconds[i] += s.session_seconds;
    for (uint32_t f : s.downward_fanouts) {
      if (f <= 3) {
        ++down_low[i];
      } else if (f <= 10) {
        ++down_med[i];
      } else {
        ++down_high[i];
      }
    }
    for (uint32_t f : s.upward_fanouts) {
      ++up_total[i];
      if (f == 1) ++up_single[i];
    }
  }

  for (size_t i = 0; i < summaries.size(); ++i) {
    ToolSummary& t = summaries[i];
    t.rw_ratio = t.total_writes == 0
                     ? static_cast<double>(t.total_reads)
                     : static_cast<double>(t.total_reads) /
                           static_cast<double>(t.total_writes);
    const uint64_t ops = t.total_reads + t.total_writes;
    t.io_rate = seconds[i] <= 0
                    ? 0
                    : static_cast<double>(ops) / seconds[i];
    const uint64_t down =
        down_low[i] + down_med[i] + down_high[i];
    if (down > 0) {
      t.density_low = static_cast<double>(down_low[i]) / down;
      t.density_med = static_cast<double>(down_med[i]) / down;
      t.density_high = static_cast<double>(down_high[i]) / down;
    }
    t.upward_single_fraction =
        up_total[i] == 0 ? 0
                         : static_cast<double>(up_single[i]) /
                               static_cast<double>(up_total[i]);
  }
  return summaries;
}

}  // namespace oodb::oct
