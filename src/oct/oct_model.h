#ifndef SEMCLUST_OCT_OCT_MODEL_H_
#define SEMCLUST_OCT_OCT_MODEL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "oct/trace.h"
#include "util/check.h"

/// \file
/// An OCT-like CAD data manager (paper §3.1). OCT supports a fixed set of
/// primitive VLSI object types and arbitrary bidirectional *attachments*
/// between objects; attachments carry the composition hierarchy. There is
/// no structure validation and no inheritance — exactly the subset of
/// object-orientation the paper instruments. Every read/write goes through
/// the trace collector, which is how Section 3's access-pattern figures
/// are produced.

namespace oodb::oct {

/// OCT's primitive object types (paper Figure 3.1 vocabulary).
enum class OctType : uint8_t {
  kFacet = 0,   ///< the basic design unit
  kInstance,
  kNet,
  kTerm,
  kPath,
  kBox,
  kProp,
  kBag,
  kLayer,
};
inline constexpr int kNumOctTypes = 9;

const char* OctTypeName(OctType t);

/// Identifier of an OCT object.
using OctId = uint32_t;
inline constexpr OctId kInvalidOct = UINT32_MAX;

/// One OCT object: a type, a payload size, and its attachment lists.
struct OctObject {
  OctType type = OctType::kFacet;
  uint32_t size_bytes = 0;
  bool deleted = false;
  std::vector<OctId> contents;    ///< downward attachments
  std::vector<OctId> containers;  ///< upward attachments (mirror)
};

/// The data manager. All operations are recorded against the collector's
/// current session.
class OctDataManager {
 public:
  /// `trace` may be null (no recording).
  explicit OctDataManager(TraceCollector* trace) : trace_(trace) {}

  OctDataManager(const OctDataManager&) = delete;
  OctDataManager& operator=(const OctDataManager&) = delete;

  /// Creates an object (a *simple write*).
  OctId Create(OctType type, uint32_t size_bytes);

  /// Attaches `child` under `parent` (a *structure write*): creates the
  /// bidirectional link of Figure 3.1.
  void Attach(OctId parent, OctId child);

  /// Removes an attachment (a structure write).
  void Detach(OctId parent, OctId child);

  /// Updates an object in place (a simple write).
  void Modify(OctId id);

  /// Reads one object by id (a *simple read*).
  const OctObject& Get(OctId id);

  /// Navigates downward: the contents of `id`, optionally filtered by
  /// type (a *structure read*; its fan-out is recorded for Figure 3.4).
  std::vector<OctId> Contents(OctId id,
                              std::optional<OctType> filter = std::nullopt);

  /// Navigates upward: the containers of `id` (a structure read).
  std::vector<OctId> Containers(
      OctId id, std::optional<OctType> filter = std::nullopt);

  size_t size() const { return objects_.size(); }
  bool IsLive(OctId id) const {
    return id < objects_.size() && !objects_[id].deleted;
  }

  /// Inspection without trace recording (for tests and analyzers).
  const OctObject& Peek(OctId id) const {
    OODB_CHECK(IsLive(id));
    return objects_[id];
  }

 private:
  TraceCollector* trace_;
  std::vector<OctObject> objects_;
};

}  // namespace oodb::oct

#endif  // SEMCLUST_OCT_OCT_MODEL_H_
