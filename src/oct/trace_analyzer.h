#ifndef SEMCLUST_OCT_TRACE_ANALYZER_H_
#define SEMCLUST_OCT_TRACE_ANALYZER_H_

#include <string>
#include <vector>

#include "oct/trace.h"

/// \file
/// Derives the Section 3 figures from collected traces: per-tool R/W ratio
/// (Fig 3.2), logical-I/O rate per session second (Fig 3.3), and the
/// downward structure-density distribution in the paper's three buckets
/// (Fig 3.4: low 0-3, medium 4-10, high > 10).

namespace oodb::oct {

/// Aggregated statistics of one tool across its invocations.
struct ToolSummary {
  std::string tool;
  uint64_t invocations = 0;
  uint64_t total_reads = 0;
  uint64_t total_writes = 0;
  /// Aggregate reads / writes.
  double rw_ratio = 0;
  /// Aggregate ops per aggregate session seconds.
  double io_rate = 0;
  /// Shares of downward structural accesses by fan-out bucket.
  double density_low = 0;   ///< fan-out 0..3
  double density_med = 0;   ///< fan-out 4..10
  double density_high = 0;  ///< fan-out > 10
  /// Mean fraction of upward accesses returning exactly one object.
  double upward_single_fraction = 0;
};

/// Groups sessions by tool (insertion order of first appearance) and
/// aggregates.
std::vector<ToolSummary> SummarizeByTool(
    const std::vector<SessionTrace>& sessions);

}  // namespace oodb::oct

#endif  // SEMCLUST_OCT_TRACE_ANALYZER_H_
