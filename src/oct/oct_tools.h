#ifndef SEMCLUST_OCT_OCT_TOOLS_H_
#define SEMCLUST_OCT_OCT_TOOLS_H_

#include <array>
#include <string>
#include <vector>

#include "oct/oct_model.h"
#include "oct/trace.h"
#include "util/random.h"

/// \file
/// Synthetic drivers for the ten measured OCT tools (paper §3). The
/// originals ran for ~400 hours across ~5000 invocations; these drivers
/// reproduce each tool's *access-pattern signature* — read/write ratio
/// (Fig 3.2), logical-I/O rate (Fig 3.3), and downward structure-density
/// distribution (Fig 3.4) — against an OCT design built with the Figure
/// 3.1 schema (facet - net - term - path attachments).
///
/// Calibration targets come straight from the paper's text: VEM (the
/// graphical editor) has R/W ~6000 and the highest structure density; the
/// remaining tools span 0.52 .. 170, with the MOSAICO phases (atlas, cds,
/// cpre, PGcurrent, mosaico) covering that whole range within one run.

namespace oodb::oct {

/// Behavioural signature of one tool.
struct ToolProfile {
  std::string name;
  /// Target logical read/write ratio (Fig 3.2).
  double target_rw_ratio = 10;
  /// Mean logical operations per invocation.
  double ops_per_session = 10000;
  /// Synthetic computation seconds per logical op (sets Fig 3.3's rate).
  double seconds_per_op = 0.01;
  /// Among reads: probability of a structural navigation (vs simple get).
  double p_structure_read = 0.6;
  /// Downward-navigation mix over {low(0-3), med(4-9), high(>=10)} density
  /// targets.
  std::array<double, 3> density_mix = {0.7, 0.2, 0.1};
  /// Among writes: probabilities of {create+attach, attach-only, modify}.
  std::array<double, 3> write_mix = {0.3, 0.2, 0.5};
};

/// The ten tools of Figures 3.2-3.4.
std::vector<ToolProfile> StandardTools();

/// Owns an OCT design and replays tool invocations against it.
class OctWorkbench {
 public:
  explicit OctWorkbench(uint64_t seed = 7);

  /// Runs `invocations` sessions of the given tool. With
  /// `integrity_prescan`, each session first scans the whole design the
  /// way SPARCS does (paper §3.5: re-verifying an invariant the system
  /// could maintain), which shows up as extra structure reads in the
  /// trace.
  void RunTool(const ToolProfile& tool, int invocations,
               bool integrity_prescan = false);

  /// The SPARCS-style full-design verification scan: navigates every
  /// facet, net, and term once. Returns the number of logical reads it
  /// issued.
  uint64_t IntegrityScan();

  /// Runs every standard tool `invocations_per_tool` times.
  void RunAll(int invocations_per_tool);

  const TraceCollector& trace() const { return trace_; }
  const OctDataManager& data_manager() const { return dm_; }

 private:
  /// Builds the shared design (facets, instances, nets, terms, paths)
  /// once, outside any session.
  void BuildDesign();

  void RunSession(const ToolProfile& tool);

  // Navigation target pools by density class.
  OctId PickLowDensityTarget();
  OctId PickMedDensityTarget();
  OctId PickHighDensityTarget();

  TraceCollector trace_;
  OctDataManager dm_{&trace_};
  Rng rng_;
  std::vector<OctId> facets_;
  std::vector<OctId> instances_;
  std::vector<OctId> nets_;
  std::vector<OctId> terms_;
  std::vector<OctId> paths_;
};

}  // namespace oodb::oct

#endif  // SEMCLUST_OCT_OCT_TOOLS_H_
