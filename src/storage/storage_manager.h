#ifndef SEMCLUST_STORAGE_STORAGE_MANAGER_H_
#define SEMCLUST_STORAGE_STORAGE_MANAGER_H_

#include <cstdint>
#include <vector>

#include "objmodel/object_id.h"
#include "storage/page.h"
#include "util/status.h"

/// \file
/// The storage component: maps design objects onto pages, supports
/// clustering-driven placement and relocation, and maintains the
/// object -> page directory. Placement policy lives in the cluster manager;
/// this class only executes placements.

namespace oodb::store {

/// Placement, relocation, and page bookkeeping for the whole database.
class StorageManager {
 public:
  /// `page_size_bytes` is the usable capacity per page (Table 4.1: 4 KB).
  /// `append_fill_fraction` in (0, 1] caps how full arrival-order appends
  /// make a page before a fresh one is opened; the reserve is usable by
  /// directed placements (clustering), the standard fill-factor headroom
  /// that lets later relatives join a page.
  explicit StorageManager(uint32_t page_size_bytes,
                          double append_fill_fraction = 1.0);

  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  /// Allocates a fresh empty page.
  PageId AllocatePage();

  /// Places an unplaced object on `page`. Fails with kResourceExhausted if
  /// the object doesn't fit, kAlreadyExists if the object is already
  /// placed, kInvalidArgument if the object can never fit on any page.
  Status Place(obj::ObjectId id, uint32_t size_bytes, PageId page);

  /// Places an unplaced object on the current append page, allocating a new
  /// page when full. This is the non-clustered "arrival order" placement.
  /// Returns the page used.
  StatusOr<PageId> PlaceAppend(obj::ObjectId id, uint32_t size_bytes);

  /// Moves a placed object to `to`. Fails with kResourceExhausted if it
  /// doesn't fit.
  Status Relocate(obj::ObjectId id, PageId to);

  /// Removes a placed object from its page.
  Status Erase(obj::ObjectId id);

  /// Adjusts the stored size of a placed object in place. Fails with
  /// kResourceExhausted if the page cannot absorb the growth (the caller
  /// then relocates or splits).
  Status ResizeInPlace(obj::ObjectId id, uint32_t new_size_bytes);

  /// Page holding `id`, or kInvalidPage if unplaced.
  PageId PageOf(obj::ObjectId id) const;

  /// True if the object currently resides on some page.
  bool IsPlaced(obj::ObjectId id) const {
    return PageOf(id) != kInvalidPage;
  }

  const Page& page(PageId id) const {
    OODB_CHECK_LT(id, pages_.size());
    return pages_[id];
  }

  size_t page_count() const { return pages_.size(); }
  uint32_t page_size_bytes() const { return page_size_; }
  PageId append_page() const { return append_page_; }

  /// Total bytes stored across all pages.
  uint64_t used_bytes() const { return used_bytes_; }
  /// Mean page fill fraction over non-empty pages.
  double MeanOccupancy() const;

  /// Recorded size of a placed object (as known to storage).
  uint32_t SizeOf(obj::ObjectId id) const;

 private:
  void EnsureDirectory(obj::ObjectId id);

  uint32_t page_size_;
  uint32_t append_fill_limit_;
  std::vector<Page> pages_;
  // Parallel ObjectId-indexed directories (grown geometrically together).
  // The size column makes SizeOf O(1): the placement auditor asks for every
  // placed object's size once per sample, and the former page-slot scan was
  // the single hottest line of the whole simulation profile.
  std::vector<PageId> object_page_;
  std::vector<uint32_t> object_size_;
  PageId append_page_ = kInvalidPage;
  uint64_t used_bytes_ = 0;
};

}  // namespace oodb::store

#endif  // SEMCLUST_STORAGE_STORAGE_MANAGER_H_
