#ifndef SEMCLUST_STORAGE_PAGE_H_
#define SEMCLUST_STORAGE_PAGE_H_

#include <cstdint>
#include <vector>

#include "objmodel/object_id.h"
#include "util/check.h"

/// \file
/// A disk page holding design-object records. The simulation models object
/// *placement* (which object lives on which page and how full pages are),
/// not payload bytes, so a page is a slot directory with byte accounting.

namespace oodb::store {

/// Dense page identifier.
using PageId = uint32_t;
inline constexpr PageId kInvalidPage = UINT32_MAX;

/// One object record resident on a page.
struct Slot {
  obj::ObjectId object = obj::kInvalidObject;
  uint32_t size_bytes = 0;
};

/// A fixed-capacity slotted page.
class Page {
 public:
  /// Creates an empty page with `capacity_bytes` of usable space.
  explicit Page(uint32_t capacity_bytes) : capacity_(capacity_bytes) {
    OODB_CHECK_GT(capacity_bytes, 0u);
  }

  /// True if an object of `size_bytes` fits.
  bool Fits(uint32_t size_bytes) const {
    return used_ + size_bytes <= capacity_;
  }

  /// Adds a record. Returns false (without modification) if it doesn't fit.
  bool Insert(obj::ObjectId id, uint32_t size_bytes);

  /// Removes the record for `id`. Returns false if not present.
  bool Remove(obj::ObjectId id);

  /// True if `id` is resident here.
  bool Contains(obj::ObjectId id) const;

  /// Changes the recorded size of a resident object. Returns false if the
  /// object is absent or the new size does not fit.
  bool ResizeObject(obj::ObjectId id, uint32_t new_size_bytes);

  uint32_t capacity_bytes() const { return capacity_; }
  uint32_t used_bytes() const { return used_; }
  uint32_t free_bytes() const { return capacity_ - used_; }
  size_t object_count() const { return slots_.size(); }
  const std::vector<Slot>& slots() const { return slots_; }

 private:
  uint32_t capacity_;
  uint32_t used_ = 0;
  std::vector<Slot> slots_;
};

}  // namespace oodb::store

#endif  // SEMCLUST_STORAGE_PAGE_H_
