#include "storage/storage_manager.h"

#include <algorithm>

namespace oodb::store {

StorageManager::StorageManager(uint32_t page_size_bytes,
                               double append_fill_fraction)
    : page_size_(page_size_bytes) {
  OODB_CHECK_GT(page_size_bytes, 0u);
  OODB_CHECK_GT(append_fill_fraction, 0.0);
  OODB_CHECK_LE(append_fill_fraction, 1.0);
  append_fill_limit_ = static_cast<uint32_t>(
      append_fill_fraction * static_cast<double>(page_size_bytes));
}

PageId StorageManager::AllocatePage() {
  pages_.emplace_back(page_size_);
  return static_cast<PageId>(pages_.size() - 1);
}

void StorageManager::EnsureDirectory(obj::ObjectId id) {
  if (id >= object_page_.size()) {
    // Geometric growth: ids arrive one at a time during database build, and
    // growing by exactly one element made every placement pay a resize call.
    const size_t n = std::max(static_cast<size_t>(id) + 1,
                              object_page_.size() * 2);
    object_page_.resize(n, kInvalidPage);
    object_size_.resize(n, 0);
  }
}

Status StorageManager::Place(obj::ObjectId id, uint32_t size_bytes,
                             PageId page) {
  OODB_CHECK_LT(page, pages_.size());
  if (size_bytes > page_size_) {
    return Status::InvalidArgument("object larger than a page");
  }
  EnsureDirectory(id);
  if (object_page_[id] != kInvalidPage) {
    return Status::AlreadyExists("object already placed");
  }
  if (!pages_[page].Insert(id, size_bytes)) {
    return Status::ResourceExhausted("page full");
  }
  object_page_[id] = page;
  object_size_[id] = size_bytes;
  used_bytes_ += size_bytes;
  return Status::Ok();
}

StatusOr<PageId> StorageManager::PlaceAppend(obj::ObjectId id,
                                             uint32_t size_bytes) {
  if (size_bytes > page_size_) {
    return Status::InvalidArgument("object larger than a page");
  }
  const bool over_fill_limit =
      append_page_ != kInvalidPage &&
      pages_[append_page_].used_bytes() + size_bytes > append_fill_limit_ &&
      size_bytes <= append_fill_limit_;  // oversized objects bypass reserve
  if (append_page_ == kInvalidPage || over_fill_limit ||
      !pages_[append_page_].Fits(size_bytes)) {
    append_page_ = AllocatePage();
  }
  OODB_RETURN_IF_ERROR(Place(id, size_bytes, append_page_));
  return append_page_;
}

Status StorageManager::Relocate(obj::ObjectId id, PageId to) {
  OODB_CHECK_LT(to, pages_.size());
  const PageId from = PageOf(id);
  if (from == kInvalidPage) {
    return Status::NotFound("object not placed");
  }
  if (from == to) return Status::Ok();
  // Find the size from the source page.
  const uint32_t size = SizeOf(id);
  if (!pages_[to].Insert(id, size)) {
    return Status::ResourceExhausted("destination page full");
  }
  OODB_CHECK(pages_[from].Remove(id));
  object_page_[id] = to;
  return Status::Ok();
}

Status StorageManager::Erase(obj::ObjectId id) {
  const PageId from = PageOf(id);
  if (from == kInvalidPage) {
    return Status::NotFound("object not placed");
  }
  const uint32_t size = SizeOf(id);
  OODB_CHECK(pages_[from].Remove(id));
  object_page_[id] = kInvalidPage;
  object_size_[id] = 0;
  used_bytes_ -= size;
  return Status::Ok();
}

Status StorageManager::ResizeInPlace(obj::ObjectId id,
                                     uint32_t new_size_bytes) {
  const PageId p = PageOf(id);
  if (p == kInvalidPage) {
    return Status::NotFound("object not placed");
  }
  const uint32_t old_size = SizeOf(id);
  if (!pages_[p].ResizeObject(id, new_size_bytes)) {
    return Status::ResourceExhausted("page cannot absorb growth");
  }
  object_size_[id] = new_size_bytes;
  used_bytes_ += new_size_bytes;
  used_bytes_ -= old_size;
  return Status::Ok();
}

PageId StorageManager::PageOf(obj::ObjectId id) const {
  if (id >= object_page_.size()) return kInvalidPage;
  return object_page_[id];
}

uint32_t StorageManager::SizeOf(obj::ObjectId id) const {
  const PageId p = PageOf(id);
  OODB_CHECK_NE(p, kInvalidPage);
  return object_size_[id];
}

double StorageManager::MeanOccupancy() const {
  uint64_t used = 0;
  uint64_t capacity = 0;
  for (const Page& p : pages_) {
    if (p.object_count() == 0) continue;
    used += p.used_bytes();
    capacity += p.capacity_bytes();
  }
  return capacity == 0
             ? 0.0
             : static_cast<double>(used) / static_cast<double>(capacity);
}

}  // namespace oodb::store
