#include "storage/page.h"

#include <algorithm>

namespace oodb::store {

bool Page::Insert(obj::ObjectId id, uint32_t size_bytes) {
  OODB_CHECK_GT(size_bytes, 0u);
  if (!Fits(size_bytes)) return false;
  slots_.push_back(Slot{id, size_bytes});
  used_ += size_bytes;
  return true;
}

bool Page::Remove(obj::ObjectId id) {
  auto it = std::find_if(slots_.begin(), slots_.end(),
                         [id](const Slot& s) { return s.object == id; });
  if (it == slots_.end()) return false;
  used_ -= it->size_bytes;
  *it = slots_.back();
  slots_.pop_back();
  return true;
}

bool Page::Contains(obj::ObjectId id) const {
  return std::any_of(slots_.begin(), slots_.end(),
                     [id](const Slot& s) { return s.object == id; });
}

bool Page::ResizeObject(obj::ObjectId id, uint32_t new_size_bytes) {
  OODB_CHECK_GT(new_size_bytes, 0u);
  auto it = std::find_if(slots_.begin(), slots_.end(),
                         [id](const Slot& s) { return s.object == id; });
  if (it == slots_.end()) return false;
  const uint32_t other = used_ - it->size_bytes;
  if (other + new_size_bytes > capacity_) return false;
  used_ = other + new_size_bytes;
  it->size_bytes = new_size_bytes;
  return true;
}

}  // namespace oodb::store
