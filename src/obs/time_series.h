#ifndef SEMCLUST_OBS_TIME_SERIES_H_
#define SEMCLUST_OBS_TIME_SERIES_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/placement_auditor.h"

/// \file
/// Simulated-time telemetry (DESIGN.md §9). A TimeSeriesSampler snapshots
/// a MetricsRegistry at configurable simulated-time intervals and at
/// measurement-epoch boundaries, recording per-sample *deltas* (work done
/// since the previous sample), never cumulatives — so convergence under
/// dynamic reclustering is directly plottable instead of being washed out
/// by end-of-run aggregates. Each sample optionally carries a
/// PlacementSample taken on the same schedule.
///
/// Determinism: samples are triggered by the owning simulation's virtual
/// clock crossing precomputed boundaries, never by host time, and every
/// recorded quantity derives from per-cell state alone. The series is
/// therefore bit-identical at any SEMCLUST_BENCH_JOBS count, extending
/// the runner's determinism contract to telemetry.

namespace oodb::obs {

/// One telemetry sample: counter deltas since the previous sample (or
/// since StartMeasurement for the first), gauge values as-of the sample,
/// and an optional placement audit.
struct TimeSeriesSample {
  double sim_time_s = 0;
  /// Measurement epoch the sampled window belongs to.
  uint32_t epoch = 0;
  /// True when the sample was taken at an epoch boundary (including the
  /// final end-of-run sample) rather than an interval crossing.
  bool epoch_boundary = false;
  /// (name, delta) in registration order, zero deltas included so every
  /// sample of a series carries the same key set.
  std::vector<std::pair<std::string, uint64_t>> counter_deltas;
  /// (name, value) as of the sample (gauges are levels, not flows).
  std::vector<std::pair<std::string, double>> gauges;
  /// Placement audit on the same schedule; empty when auditing is off.
  std::optional<PlacementSample> placement;

  /// Delta by name; nullopt when the name is absent.
  std::optional<uint64_t> counter_delta(std::string_view name) const;

  std::string ToJson() const;
};

/// A whole cell's telemetry: plain data, safe to copy into
/// core::RunResult and across threads.
struct TimeSeries {
  std::vector<TimeSeriesSample> samples;

  bool empty() const { return samples.empty(); }

  /// Deterministic JSON array of sample objects.
  std::string ToJson() const;

  /// Accumulates `other` sample-by-sample (by index): counter deltas sum,
  /// gauges sum, placement samples merge. Series of different lengths
  /// merge over the common prefix and append the tail. Folding in
  /// submission order keeps the merged series bit-identical at any job
  /// count (exec::ExperimentRunner::MergeSeries).
  void MergeFrom(const TimeSeries& other);
};

/// Drives sampling for one simulation cell. The owner calls
/// StartMeasurement at the warmup/measured boundary, Poll after every
/// unit of work, SampleEpochBoundary when an epoch ends mid-run, and
/// SampleFinal once at end of run.
class TimeSeriesSampler {
 public:
  /// `interval_s` <= 0 disables interval sampling (epoch-boundary and
  /// final samples still fire). `registry` may be disabled; samples then
  /// carry no metric deltas but still carry placement audits.
  TimeSeriesSampler(const MetricsRegistry* registry, double interval_s);

  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  /// Audits placement at every sample when set (owner keeps `auditor`
  /// alive).
  void set_placement_auditor(const PlacementAuditor* auditor) {
    auditor_ = auditor;
  }

  /// Invoked immediately before every registry snapshot; the model uses
  /// this to re-sync mirrored component counters (set-semantics) so
  /// mid-run deltas cover buffer/io/log/cluster activity too.
  void set_pre_sample_hook(std::function<void()> hook) {
    pre_sample_hook_ = std::move(hook);
  }

  /// Re-baselines deltas and anchors the interval schedule at `now`
  /// (call after the warmup counter reset).
  void StartMeasurement(double now);

  /// Takes one interval sample when `now` has crossed the next interval
  /// boundary (at most one sample per call; the schedule then skips to
  /// the first boundary after `now`). No-op before StartMeasurement or
  /// when interval sampling is disabled.
  void Poll(double now, uint32_t epoch);

  /// Samples the end of `epoch` (the epoch just finished).
  void SampleEpochBoundary(double now, uint32_t epoch);

  /// The mandatory end-of-run sample, closing `last_epoch`. Idempotent
  /// per run: callers guard against double-sampling themselves.
  void SampleFinal(double now, uint32_t last_epoch);

  double interval_s() const { return interval_s_; }
  const TimeSeries& series() const { return series_; }

 private:
  void TakeSample(double now, uint32_t epoch, bool epoch_boundary);

  const MetricsRegistry* registry_;
  const PlacementAuditor* auditor_ = nullptr;
  std::function<void()> pre_sample_hook_;
  double interval_s_;
  bool started_ = false;
  double start_time_ = 0;
  double next_sample_time_ = 0;
  MetricsSnapshot baseline_;
  TimeSeries series_;
};

}  // namespace oodb::obs

#endif  // SEMCLUST_OBS_TIME_SERIES_H_
