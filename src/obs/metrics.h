#ifndef SEMCLUST_OBS_METRICS_H_
#define SEMCLUST_OBS_METRICS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \file
/// The metrics half of the observability subsystem (DESIGN.md §8): a
/// registry of named counters, gauges, and fixed-bucket histograms cheap
/// enough to stay enabled in benches. Names are resolved to integer
/// handles once, at registration; every hot-path mutation is a plain
/// uint64/double slot operation with no locks and no hashing. Each
/// simulation cell (single-threaded by construction) owns its own
/// registry; `exec::ExperimentRunner` merges the per-cell snapshots in
/// submission order, so the merged view is bit-identical at any job count.
///
/// Environment:
///   SEMCLUST_METRICS=0   disables collection (registrations return
///                        invalid handles, mutations no-op, snapshots are
///                        empty). Any other value — or unset — leaves it on.

namespace oodb::obs {

/// Opaque handle to a registered counter (monotone uint64).
struct CounterHandle {
  uint32_t slot = UINT32_MAX;
  bool valid() const { return slot != UINT32_MAX; }
};

/// Opaque handle to a registered gauge (last-set double).
struct GaugeHandle {
  uint32_t slot = UINT32_MAX;
  bool valid() const { return slot != UINT32_MAX; }
};

/// Opaque handle to a registered histogram.
struct HistogramHandle {
  uint32_t slot = UINT32_MAX;
  bool valid() const { return slot != UINT32_MAX; }
};

/// Point-in-time state of one histogram. `buckets[i]` counts observations
/// <= `bounds[i]`; the final bucket (buckets.size() == bounds.size() + 1)
/// is the overflow bucket.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<uint64_t> buckets;
  uint64_t count = 0;
  double sum = 0;

  std::optional<double> Mean() const {
    if (count == 0) return std::nullopt;
    return sum / static_cast<double>(count);
  }

  /// Quantile estimate for `q` in [0, 1] by linear interpolation inside
  /// the covering bucket. Assumes non-negative observations (bucket 0
  /// spans [0, bounds[0]]); mass in the overflow bucket is clamped to the
  /// last finite bound. An empty histogram returns 0.0 (never an
  /// interpolation over garbage); consumers that must distinguish "no
  /// samples" from "all samples at 0" null-guard on `count == 0`.
  double Quantile(double q) const;
};

/// A registry's full state, detached from the registry: plain data, safe
/// to copy across threads and carry inside core::RunResult.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Counter value by name; nullopt when the name was never registered.
  std::optional<uint64_t> counter(std::string_view name) const;
  std::optional<double> gauge(std::string_view name) const;
  const HistogramSnapshot* histogram(std::string_view name) const;

  /// Accumulates `other` into this snapshot: counters and gauges sum,
  /// histograms merge bucket-wise (bounds must agree). Metrics present
  /// only in `other` are appended in `other`'s order, so folding a batch
  /// in submission order is deterministic.
  void MergeFrom(const MetricsSnapshot& other);

  /// num/den as a ratio, or nullopt when the denominator is zero or either
  /// metric is missing — the "zero samples emit null" rule (never divides
  /// by zero).
  static std::optional<double> Ratio(std::optional<uint64_t> num,
                                     std::optional<uint64_t> den);

  /// Deterministic JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{"h":{"bounds":[...],
  /// "buckets":[...],"count":n,"sum":x}}} in registration order.
  std::string ToJson() const;
};

/// The per-worker metrics registry. Not thread-safe by design: one
/// registry per simulation cell, merged after the fact.
class MetricsRegistry {
 public:
  /// `enabled` defaults to the SEMCLUST_METRICS environment knob.
  explicit MetricsRegistry(bool enabled = EnabledFromEnv());

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  bool enabled() const { return enabled_; }

  /// SEMCLUST_METRICS != "0" (unset means on).
  static bool EnabledFromEnv();

  // ---- registration (cold path; re-registering a name returns the
  //      existing handle) ----
  CounterHandle Counter(std::string_view name);
  GaugeHandle Gauge(std::string_view name);
  /// `bounds` must be strictly increasing; an overflow bucket is implied.
  HistogramHandle Histogram(std::string_view name,
                            std::vector<double> bounds);

  // ---- mutation (hot path: bounds-checked slot writes, no hashing) ----
  void Add(CounterHandle h, uint64_t delta = 1) {
    if (h.valid()) counter_slots_[h.slot] += delta;
  }
  /// Overwrites a counter with an absolute cumulative value. For metrics
  /// mirrored from component counters (buffer hits, physical I/Os, ...):
  /// re-syncing at every telemetry sample is then idempotent, so the
  /// registry can be snapshotted mid-run, not only at end of run.
  void SetCounter(CounterHandle h, uint64_t value) {
    if (h.valid()) counter_slots_[h.slot] = value;
  }
  void Set(GaugeHandle h, double value) {
    if (h.valid()) gauge_slots_[h.slot] = value;
  }
  void Observe(HistogramHandle h, double value);

  // ---- reads (tests and snapshotting) ----
  uint64_t value(CounterHandle h) const {
    return h.valid() ? counter_slots_[h.slot] : 0;
  }
  double value(GaugeHandle h) const {
    return h.valid() ? gauge_slots_[h.slot] : 0.0;
  }

  /// Zeroes every slot; registrations (names, handles, bounds) survive.
  /// Called between warmup and the measured phase.
  void ResetValues();

  MetricsSnapshot Snapshot() const;

 private:
  struct HistogramState {
    std::string name;
    std::vector<double> bounds;
    std::vector<uint64_t> buckets;  // bounds.size() + 1
    uint64_t count = 0;
    double sum = 0;
  };

  bool enabled_;
  std::vector<std::string> counter_names_;
  std::vector<uint64_t> counter_slots_;
  std::vector<std::string> gauge_names_;
  std::vector<double> gauge_slots_;
  std::vector<HistogramState> histograms_;
};

}  // namespace oodb::obs

#endif  // SEMCLUST_OBS_METRICS_H_
