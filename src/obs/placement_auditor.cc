#include "obs/placement_auditor.h"

#include <algorithm>
#include <map>
#include <unordered_set>
#include <vector>

#include "util/json_writer.h"

namespace oodb::obs {

namespace {

/// Cycle/size guard for the configuration walk (attachments are
/// unvalidated, as in OCT, so the configuration graph may contain cycles).
constexpr size_t kMaxConfigurationWalk = 4096;

}  // namespace

void PlacementSample::MergeFrom(const PlacementSample& other) {
  live_objects += other.live_objects;
  placed_objects += other.placed_objects;
  pages += other.pages;
  for (size_t k = 0; k < by_kind.size(); ++k) {
    by_kind[k].edges += other.by_kind[k].edges;
    by_kind[k].colocated += other.by_kind[k].colocated;
  }
  edges += other.edges;
  colocated += other.colocated;
  for (size_t b = 0; b < occupancy_histogram.size(); ++b) {
    occupancy_histogram[b] += other.occupancy_histogram[b];
  }
  // Means re-weight by the populations they were taken over.
  const auto reweight = [](double& mine, uint64_t my_n, double theirs,
                           uint64_t their_n) {
    const uint64_t n = my_n + their_n;
    if (n == 0) return;
    mine = (mine * static_cast<double>(my_n) +
            theirs * static_cast<double>(their_n)) /
           static_cast<double>(n);
  };
  reweight(mean_occupancy, nonempty_pages, other.mean_occupancy,
           other.nonempty_pages);
  reweight(mean_type_fragmentation, types_audited,
           other.mean_type_fragmentation, other.types_audited);
  reweight(mean_pages_per_configuration, configurations,
           other.mean_pages_per_configuration, other.configurations);
  nonempty_pages += other.nonempty_pages;
  types_audited += other.types_audited;
  configurations += other.configurations;
}

std::string PlacementSample::ToJson() const {
  JsonObjectWriter kinds;
  for (size_t k = 0; k < by_kind.size(); ++k) {
    JsonObjectWriter kind;
    kind.Add("edges", by_kind[k].edges)
        .Add("colocated", by_kind[k].colocated);
    kinds.AddRaw(obj::RelKindName(static_cast<obj::RelKind>(k)), kind.str());
  }
  JsonArrayWriter occupancy;
  for (uint64_t b : occupancy_histogram) occupancy.Add(b);
  JsonObjectWriter out;
  out.Add("live_objects", live_objects)
      .Add("placed_objects", placed_objects)
      .Add("pages", pages)
      .Add("nonempty_pages", nonempty_pages)
      .Add("edges", edges)
      .Add("colocated", colocated)
      .Add("colocated_fraction", ColocatedFraction())
      .AddRaw("by_kind", kinds.str())
      .AddRaw("occupancy_histogram", occupancy.str())
      .Add("mean_occupancy", mean_occupancy)
      .Add("mean_type_fragmentation", mean_type_fragmentation)
      .Add("types_audited", types_audited)
      .Add("mean_pages_per_configuration", mean_pages_per_configuration)
      .Add("configurations", configurations);
  return out.str();
}

PlacementSample PlacementAuditor::Sample() const {
  PlacementSample s;
  const obj::ObjectGraph& graph = *graph_;
  const store::StorageManager& storage = *storage_;

  // ---- edges, per-type extents, and configuration roots in one pass ----
  struct TypeExtent {
    uint64_t bytes = 0;
    std::unordered_set<store::PageId> pages;
  };
  std::map<obj::TypeId, TypeExtent> extents;
  std::vector<obj::ObjectId> config_roots;

  const auto num_objects = static_cast<obj::ObjectId>(graph.size());
  for (obj::ObjectId id = 0; id < num_objects; ++id) {
    if (!graph.IsLive(id)) continue;
    ++s.live_objects;
    const obj::DesignObject& o = graph.object(id);
    const store::PageId my_page = storage.PageOf(id);
    if (my_page != store::kInvalidPage) {
      ++s.placed_objects;
      TypeExtent& extent = extents[o.type];
      extent.bytes += storage.SizeOf(id);
      extent.pages.insert(my_page);
    }
    bool has_down_config = false;
    bool has_up_config = false;
    for (const obj::Edge& e : o.edges) {
      if (e.kind == obj::RelKind::kConfiguration) {
        (e.dir == obj::Direction::kDown ? has_down_config : has_up_config) =
            true;
      }
      // Count each edge once, from its kDown side.
      if (e.dir != obj::Direction::kDown) continue;
      if (my_page == store::kInvalidPage || !graph.IsLive(e.target)) continue;
      const store::PageId target_page = storage.PageOf(e.target);
      if (target_page == store::kInvalidPage) continue;
      EdgeLocality& kind = s.by_kind[static_cast<size_t>(e.kind)];
      ++kind.edges;
      ++s.edges;
      if (target_page == my_page) {
        ++kind.colocated;
        ++s.colocated;
      }
    }
    if (has_down_config && !has_up_config) config_roots.push_back(id);
  }

  // ---- page occupancy ----
  s.pages = storage.page_count();
  double fill_sum = 0;
  for (store::PageId p = 0; p < storage.page_count(); ++p) {
    const store::Page& page = storage.page(p);
    if (page.object_count() == 0) continue;
    ++s.nonempty_pages;
    const double fill = static_cast<double>(page.used_bytes()) /
                        static_cast<double>(page.capacity_bytes());
    fill_sum += fill;
    size_t bucket = static_cast<size_t>(fill * kOccupancyBuckets);
    if (bucket >= kOccupancyBuckets) bucket = kOccupancyBuckets - 1;
    ++s.occupancy_histogram[bucket];
  }
  if (s.nonempty_pages > 0) {
    s.mean_occupancy = fill_sum / static_cast<double>(s.nonempty_pages);
  }

  // ---- per-type fragmentation ----
  const uint64_t capacity = storage.page_size_bytes();
  double frag_sum = 0;
  for (const auto& [type, extent] : extents) {
    const uint64_t min_pages =
        std::max<uint64_t>(1, (extent.bytes + capacity - 1) / capacity);
    frag_sum += static_cast<double>(extent.pages.size()) /
                static_cast<double>(min_pages);
    ++s.types_audited;
  }
  if (s.types_audited > 0) {
    s.mean_type_fragmentation =
        frag_sum / static_cast<double>(s.types_audited);
  }

  // ---- pages per configuration ----
  double config_pages_sum = 0;
  std::vector<obj::ObjectId> stack;
  for (const obj::ObjectId root : config_roots) {
    std::unordered_set<obj::ObjectId> visited{root};
    std::unordered_set<store::PageId> config_pages;
    stack.assign(1, root);
    while (!stack.empty() && visited.size() < kMaxConfigurationWalk) {
      const obj::ObjectId o = stack.back();
      stack.pop_back();
      const store::PageId p = storage.PageOf(o);
      if (p != store::kInvalidPage) config_pages.insert(p);
      graph.ForEachNeighbor(o, obj::RelKind::kConfiguration,
                            obj::Direction::kDown, [&](obj::ObjectId c) {
                              if (graph.IsLive(c) && visited.insert(c).second) {
                                stack.push_back(c);
                              }
                            });
    }
    config_pages_sum += static_cast<double>(config_pages.size());
    ++s.configurations;
  }
  if (s.configurations > 0) {
    s.mean_pages_per_configuration =
        config_pages_sum / static_cast<double>(s.configurations);
  }
  return s;
}

}  // namespace oodb::obs
