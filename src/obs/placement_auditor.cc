#include "obs/placement_auditor.h"

#include <algorithm>
#include <vector>

#include "util/json_writer.h"

namespace oodb::obs {

namespace {

/// Cycle/size guard for the configuration walk (attachments are
/// unvalidated, as in OCT, so the configuration graph may contain cycles).
constexpr size_t kMaxConfigurationWalk = 4096;

}  // namespace

void PlacementSample::MergeFrom(const PlacementSample& other) {
  live_objects += other.live_objects;
  placed_objects += other.placed_objects;
  pages += other.pages;
  empty_pages += other.empty_pages;
  for (size_t k = 0; k < by_kind.size(); ++k) {
    by_kind[k].edges += other.by_kind[k].edges;
    by_kind[k].colocated += other.by_kind[k].colocated;
  }
  edges += other.edges;
  colocated += other.colocated;
  for (size_t b = 0; b < occupancy_histogram.size(); ++b) {
    occupancy_histogram[b] += other.occupancy_histogram[b];
  }
  // Means re-weight by the populations they were taken over.
  const auto reweight = [](double& mine, uint64_t my_n, double theirs,
                           uint64_t their_n) {
    const uint64_t n = my_n + their_n;
    if (n == 0) return;
    mine = (mine * static_cast<double>(my_n) +
            theirs * static_cast<double>(their_n)) /
           static_cast<double>(n);
  };
  reweight(mean_occupancy, nonempty_pages, other.mean_occupancy,
           other.nonempty_pages);
  reweight(mean_type_fragmentation, types_audited,
           other.mean_type_fragmentation, other.types_audited);
  reweight(mean_pages_per_configuration, configurations,
           other.mean_pages_per_configuration, other.configurations);
  nonempty_pages += other.nonempty_pages;
  types_audited += other.types_audited;
  configurations += other.configurations;
}

std::string PlacementSample::ToJson() const {
  JsonObjectWriter kinds;
  for (size_t k = 0; k < by_kind.size(); ++k) {
    JsonObjectWriter kind;
    kind.Add("edges", by_kind[k].edges)
        .Add("colocated", by_kind[k].colocated);
    kinds.AddRaw(obj::RelKindName(static_cast<obj::RelKind>(k)), kind.str());
  }
  JsonArrayWriter occupancy;
  for (uint64_t b : occupancy_histogram) occupancy.Add(b);
  JsonObjectWriter out;
  out.Add("live_objects", live_objects)
      .Add("placed_objects", placed_objects)
      .Add("pages", pages)
      .Add("nonempty_pages", nonempty_pages)
      .Add("empty_pages", empty_pages)
      .Add("edges", edges)
      .Add("colocated", colocated)
      .Add("colocated_fraction", ColocatedFraction())
      .AddRaw("by_kind", kinds.str())
      .AddRaw("occupancy_histogram", occupancy.str())
      .Add("mean_occupancy", mean_occupancy)
      .Add("mean_type_fragmentation", mean_type_fragmentation)
      .Add("types_audited", types_audited)
      .Add("mean_pages_per_configuration", mean_pages_per_configuration)
      .Add("configurations", configurations);
  return out.str();
}

PlacementSample PlacementAuditor::Sample() const {
  PlacementSample s;
  const obj::ObjectGraph& graph = *graph_;
  const store::StorageManager& storage = *storage_;

  // ---- edges, per-type extents, and configuration roots in one pass ----
  // Types and pages are dense ids, so per-type byte totals and
  // distinct-page counts live in flat arrays with a types-by-pages seen
  // matrix instead of a map of hash sets (the audit runs once per cell but
  // over every object; hashing dominated the old implementation).
  const size_t type_count = graph.lattice().size();
  const size_t page_count = storage.page_count();
  std::vector<uint64_t> type_bytes(type_count, 0);
  std::vector<uint64_t> type_pages(type_count, 0);
  std::vector<uint8_t> type_page_seen(type_count * page_count, 0);
  std::vector<obj::ObjectId> config_roots;

  const auto num_objects = static_cast<obj::ObjectId>(graph.size());
  for (obj::ObjectId id = 0; id < num_objects; ++id) {
    if (!graph.IsLive(id)) continue;
    ++s.live_objects;
    const obj::DesignObject& o = graph.object(id);
    const store::PageId my_page = storage.PageOf(id);
    if (my_page != store::kInvalidPage) {
      ++s.placed_objects;
      type_bytes[o.type] += storage.SizeOf(id);
      uint8_t& seen = type_page_seen[o.type * page_count + my_page];
      if (seen == 0) {
        seen = 1;
        ++type_pages[o.type];
      }
    }
    bool has_down_config = false;
    bool has_up_config = false;
    for (const obj::Edge e : graph.edges(id)) {
      if (e.kind == obj::RelKind::kConfiguration) {
        (e.dir == obj::Direction::kDown ? has_down_config : has_up_config) =
            true;
      }
      // Count each edge once, from its kDown side.
      if (e.dir != obj::Direction::kDown) continue;
      if (my_page == store::kInvalidPage || !graph.IsLive(e.target)) continue;
      const store::PageId target_page = storage.PageOf(e.target);
      if (target_page == store::kInvalidPage) continue;
      EdgeLocality& kind = s.by_kind[static_cast<size_t>(e.kind)];
      ++kind.edges;
      ++s.edges;
      if (target_page == my_page) {
        ++kind.colocated;
        ++s.colocated;
      }
    }
    if (has_down_config && !has_up_config) config_roots.push_back(id);
  }

  // ---- page occupancy ----
  s.pages = storage.page_count();
  double fill_sum = 0;
  for (store::PageId p = 0; p < storage.page_count(); ++p) {
    const store::Page& page = storage.page(p);
    if (page.object_count() == 0) {
      // Churn deletes can drain a page completely; it stays allocated but
      // must not enter the occupancy mean (a zero-page mean would divide
      // by zero when churn empties the whole store).
      ++s.empty_pages;
      continue;
    }
    ++s.nonempty_pages;
    const double fill = static_cast<double>(page.used_bytes()) /
                        static_cast<double>(page.capacity_bytes());
    fill_sum += fill;
    size_t bucket = static_cast<size_t>(fill * kOccupancyBuckets);
    if (bucket >= kOccupancyBuckets) bucket = kOccupancyBuckets - 1;
    ++s.occupancy_histogram[bucket];
  }
  if (s.nonempty_pages > 0) {
    s.mean_occupancy = fill_sum / static_cast<double>(s.nonempty_pages);
  }

  // ---- per-type fragmentation ----
  // Ascending TypeId, matching the former std::map iteration order, so the
  // floating-point sum is bit-identical.
  const uint64_t capacity = storage.page_size_bytes();
  double frag_sum = 0;
  for (size_t type = 0; type < type_count; ++type) {
    if (type_bytes[type] == 0) continue;  // no placed instances
    const uint64_t min_pages =
        std::max<uint64_t>(1, (type_bytes[type] + capacity - 1) / capacity);
    frag_sum += static_cast<double>(type_pages[type]) /
                static_cast<double>(min_pages);
    ++s.types_audited;
  }
  if (s.types_audited > 0) {
    s.mean_type_fragmentation =
        frag_sum / static_cast<double>(s.types_audited);
  }

  // ---- pages per configuration ----
  // Stamped membership arrays replace per-root hash sets: a mark equal to
  // the current walk number means "seen by this root's walk", so there is
  // nothing to clear between roots. Traversal order and counts match the
  // hash-set implementation exactly.
  double config_pages_sum = 0;
  std::vector<obj::ObjectId> stack;
  std::vector<uint32_t> object_mark(graph.size(), 0);
  std::vector<uint32_t> page_mark(page_count, 0);
  uint32_t walk = 0;
  for (const obj::ObjectId root : config_roots) {
    ++walk;
    object_mark[root] = walk;
    size_t visited = 1;
    size_t distinct_pages = 0;
    stack.assign(1, root);
    while (!stack.empty() && visited < kMaxConfigurationWalk) {
      const obj::ObjectId o = stack.back();
      stack.pop_back();
      const store::PageId p = storage.PageOf(o);
      if (p != store::kInvalidPage && page_mark[p] != walk) {
        page_mark[p] = walk;
        ++distinct_pages;
      }
      graph.ForEachNeighbor(o, obj::RelKind::kConfiguration,
                            obj::Direction::kDown, [&](obj::ObjectId c) {
                              if (graph.IsLive(c) && object_mark[c] != walk) {
                                object_mark[c] = walk;
                                ++visited;
                                stack.push_back(c);
                              }
                            });
    }
    config_pages_sum += static_cast<double>(distinct_pages);
    ++s.configurations;
  }
  if (s.configurations > 0) {
    s.mean_pages_per_configuration =
        config_pages_sum / static_cast<double>(s.configurations);
  }
  return s;
}

}  // namespace oodb::obs
