#include "obs/metrics.h"

#include <algorithm>
#include <cstdlib>

#include "util/check.h"
#include "util/json_writer.h"

namespace oodb::obs {

namespace {

/// Index of `name` in a (name, ...) pair vector, or npos.
template <typename Pairs>
size_t FindName(const Pairs& pairs, std::string_view name) {
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (pairs[i].first == name) return i;
  }
  return static_cast<size_t>(-1);
}

}  // namespace

std::optional<uint64_t> MetricsSnapshot::counter(
    std::string_view name) const {
  const size_t i = FindName(counters, name);
  if (i == static_cast<size_t>(-1)) return std::nullopt;
  return counters[i].second;
}

std::optional<double> MetricsSnapshot::gauge(std::string_view name) const {
  const size_t i = FindName(gauges, name);
  if (i == static_cast<size_t>(-1)) return std::nullopt;
  return gauges[i].second;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    std::string_view name) const {
  const size_t i = FindName(histograms, name);
  if (i == static_cast<size_t>(-1)) return nullptr;
  return &histograms[i].second;
}

void MetricsSnapshot::MergeFrom(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    const size_t i = FindName(counters, name);
    if (i == static_cast<size_t>(-1)) {
      counters.emplace_back(name, value);
    } else {
      counters[i].second += value;
    }
  }
  for (const auto& [name, value] : other.gauges) {
    const size_t i = FindName(gauges, name);
    if (i == static_cast<size_t>(-1)) {
      gauges.emplace_back(name, value);
    } else {
      gauges[i].second += value;
    }
  }
  for (const auto& [name, hist] : other.histograms) {
    const size_t i = FindName(histograms, name);
    if (i == static_cast<size_t>(-1)) {
      histograms.emplace_back(name, hist);
      continue;
    }
    HistogramSnapshot& mine = histograms[i].second;
    OODB_CHECK(mine.bounds == hist.bounds);  // same registration everywhere
    for (size_t b = 0; b < mine.buckets.size(); ++b) {
      mine.buckets[b] += hist.buckets[b];
    }
    mine.count += hist.count;
    mine.sum += hist.sum;
  }
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0 || bounds.empty()) return 0.0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Smallest rank whose cumulative count covers q of the mass.
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const uint64_t before = cumulative;
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < target || buckets[i] == 0) {
      continue;
    }
    if (i >= bounds.size()) return bounds.back();  // overflow: clamp
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    const double hi = bounds[i];
    const double within =
        (target - static_cast<double>(before)) /
        static_cast<double>(buckets[i]);
    return lo + (hi - lo) * (within < 0 ? 0.0 : within);
  }
  return bounds.back();
}

std::optional<double> MetricsSnapshot::Ratio(std::optional<uint64_t> num,
                                             std::optional<uint64_t> den) {
  if (!num.has_value() || !den.has_value() || *den == 0) return std::nullopt;
  return static_cast<double>(*num) / static_cast<double>(*den);
}

std::string MetricsSnapshot::ToJson() const {
  JsonObjectWriter counters_json;
  for (const auto& [name, value] : counters) counters_json.Add(name, value);
  JsonObjectWriter gauges_json;
  for (const auto& [name, value] : gauges) gauges_json.Add(name, value);
  JsonObjectWriter histograms_json;
  for (const auto& [name, hist] : histograms) {
    JsonArrayWriter bounds;
    for (double b : hist.bounds) bounds.Add(b);
    JsonArrayWriter buckets;
    for (uint64_t b : hist.buckets) buckets.Add(b);
    JsonObjectWriter h;
    h.AddRaw("bounds", bounds.str())
        .AddRaw("buckets", buckets.str())
        .Add("count", hist.count)
        .Add("sum", hist.sum);
    histograms_json.AddRaw(name, h.str());
  }
  JsonObjectWriter out;
  out.AddRaw("counters", counters_json.str())
      .AddRaw("gauges", gauges_json.str())
      .AddRaw("histograms", histograms_json.str());
  return out.str();
}

MetricsRegistry::MetricsRegistry(bool enabled) : enabled_(enabled) {}

bool MetricsRegistry::EnabledFromEnv() {
  const char* env = std::getenv("SEMCLUST_METRICS");
  return env == nullptr || env[0] == '\0' || env[0] != '0';
}

CounterHandle MetricsRegistry::Counter(std::string_view name) {
  if (!enabled_) return CounterHandle{};
  for (size_t i = 0; i < counter_names_.size(); ++i) {
    if (counter_names_[i] == name) {
      return CounterHandle{static_cast<uint32_t>(i)};
    }
  }
  counter_names_.emplace_back(name);
  counter_slots_.push_back(0);
  return CounterHandle{static_cast<uint32_t>(counter_names_.size() - 1)};
}

GaugeHandle MetricsRegistry::Gauge(std::string_view name) {
  if (!enabled_) return GaugeHandle{};
  for (size_t i = 0; i < gauge_names_.size(); ++i) {
    if (gauge_names_[i] == name) return GaugeHandle{static_cast<uint32_t>(i)};
  }
  gauge_names_.emplace_back(name);
  gauge_slots_.push_back(0);
  return GaugeHandle{static_cast<uint32_t>(gauge_names_.size() - 1)};
}

HistogramHandle MetricsRegistry::Histogram(std::string_view name,
                                           std::vector<double> bounds) {
  if (!enabled_) return HistogramHandle{};
  OODB_CHECK(std::is_sorted(bounds.begin(), bounds.end()));
  for (size_t i = 0; i < histograms_.size(); ++i) {
    if (histograms_[i].name == name) {
      OODB_CHECK(histograms_[i].bounds == bounds);
      return HistogramHandle{static_cast<uint32_t>(i)};
    }
  }
  HistogramState h;
  h.name = std::string(name);
  h.buckets.assign(bounds.size() + 1, 0);
  h.bounds = std::move(bounds);
  histograms_.push_back(std::move(h));
  return HistogramHandle{static_cast<uint32_t>(histograms_.size() - 1)};
}

void MetricsRegistry::Observe(HistogramHandle h, double value) {
  if (!h.valid()) return;
  HistogramState& hist = histograms_[h.slot];
  // First bound >= value; everything above the last bound overflows.
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(hist.bounds.begin(), hist.bounds.end(), value) -
      hist.bounds.begin());
  ++hist.buckets[bucket];
  ++hist.count;
  hist.sum += value;
}

void MetricsRegistry::ResetValues() {
  std::fill(counter_slots_.begin(), counter_slots_.end(), 0);
  std::fill(gauge_slots_.begin(), gauge_slots_.end(), 0.0);
  for (HistogramState& h : histograms_) {
    std::fill(h.buckets.begin(), h.buckets.end(), 0);
    h.count = 0;
    h.sum = 0;
  }
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  snap.counters.reserve(counter_names_.size());
  for (size_t i = 0; i < counter_names_.size(); ++i) {
    snap.counters.emplace_back(counter_names_[i], counter_slots_[i]);
  }
  snap.gauges.reserve(gauge_names_.size());
  for (size_t i = 0; i < gauge_names_.size(); ++i) {
    snap.gauges.emplace_back(gauge_names_[i], gauge_slots_[i]);
  }
  snap.histograms.reserve(histograms_.size());
  for (const HistogramState& h : histograms_) {
    HistogramSnapshot hs;
    hs.bounds = h.bounds;
    hs.buckets = h.buckets;
    hs.count = h.count;
    hs.sum = h.sum;
    snap.histograms.emplace_back(h.name, std::move(hs));
  }
  return snap;
}

}  // namespace oodb::obs
