#include "obs/trace_sink.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/span_profiler.h"
#include "util/json_writer.h"

namespace oodb::obs {

namespace {

/// Display name plus the exported arg-key names for one event type.
struct EventMeta {
  const char* name;
  const char* a;  // null: omit the arg
  const char* b;
  const char* c;
  const char* v;
};

const EventMeta& MetaOf(TraceEventType t) {
  static const EventMeta kMeta[] = {
      {"txn-begin", "txn", "query", nullptr, nullptr},
      {"txn-end", "txn", "query", nullptr, "response_s"},
      {"page-read", "page", "cat", "disk", nullptr},
      {"page-write", "page", "cat", "disk", nullptr},
      {"page-split", "page", "moved", "steps", "broken_cost"},
      {"recluster", "candidates", "exam_ios", "relocated", nullptr},
      {"prefetch-issue", "page", nullptr, nullptr, nullptr},
      {"prefetch-hit", "page", nullptr, nullptr, nullptr},
      {"prefetch-waste", "page", nullptr, nullptr, nullptr},
      {"prefetch-group", "kind", "pages", nullptr, nullptr},
      {"log-flush", "bytes", "records", nullptr, nullptr},
      {"evict", "page", "class", "dirty", "priority"},
      {"dyn-trigger", "units", "tracked", "pending", "queue_depth"},
      {"dyn-reorg", "anchor", "moved", "pages", "heat"},
      {"span", "txn", "code", "query", "dur_s"},
      {"remote-fetch", "page", "home", "owner", "wait_s"},
      {"lock-grant", "txn", "object", "mode", nullptr},
      {"lock-wait", "txn", "object", "mode", "wait_s"},
      {"lock-timeout", "txn", "object", "mode", "wait_s"},
      {"latch-wait", "txn", "page", nullptr, "wait_s"},
      {"txn-abort", "txn", "attempt", "gave_up", nullptr},
  };
  return kMeta[static_cast<size_t>(t)];
}

/// One metadata record ("M" phase) naming a process or thread.
std::string MetadataLine(const char* what, int pid, int tid,
                         std::string_view name) {
  JsonObjectWriter args;
  args.Add("name", name);
  JsonObjectWriter line;
  line.Add("name", what).Add("ph", "M").Add("pid", pid).Add("tid", tid);
  line.AddRaw("args", args.str());
  return line.str();
}

}  // namespace

const char* SubsystemName(Subsystem s) {
  switch (s) {
    case Subsystem::kSim:
      return "sim";
    case Subsystem::kCore:
      return "core";
    case Subsystem::kBuffer:
      return "buffer";
    case Subsystem::kCluster:
      return "cluster";
    case Subsystem::kIo:
      return "io";
    case Subsystem::kTxlog:
      return "txlog";
    case Subsystem::kSpans:
      return "spans";
  }
  return "unknown";
}

const char* TraceEventTypeName(TraceEventType t) { return MetaOf(t).name; }

TraceSink::TraceSink(const sim::Simulator* clock, size_t capacity)
    : clock_(clock), capacity_(capacity) {
  ring_.resize(capacity_);
}

std::vector<TraceEvent> TraceSink::Events() const {
  std::vector<TraceEvent> out;
  if (capacity_ == 0 || recorded_ == 0) return out;
  const uint64_t n = recorded_ < capacity_ ? recorded_ : capacity_;
  out.reserve(static_cast<size_t>(n));
  // Oldest retained event first. Before wraparound that is slot 0; after,
  // the slot the next Record would overwrite.
  const uint64_t start = recorded_ < capacity_ ? 0 : recorded_ % capacity_;
  for (uint64_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

TraceCollector& TraceCollector::Global() {
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

const char* TraceCollector::PathFromEnv() {
  const char* path = std::getenv("SEMCLUST_TRACE");
  return (path != nullptr && path[0] != '\0') ? path : nullptr;
}

size_t TraceCollector::RingCapacityFromEnv() {
  if (const char* env = std::getenv("SEMCLUST_TRACE_EVENTS")) {
    const long long v = std::strtoll(env, nullptr, 10);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 4096;
}

namespace {
void WriteTraceAtExit() {
  const char* path = TraceCollector::PathFromEnv();
  if (path == nullptr) return;
  if (!TraceCollector::Global().WriteChromeTrace(path)) {
    std::fprintf(stderr, "[obs] SEMCLUST_TRACE=%s is not writable\n", path);
  }
}
}  // namespace

void TraceCollector::Collect(int cell_index, const std::string& label,
                             const TraceSink& sink) {
  if (!sink.enabled()) return;
  std::vector<TraceEvent> events = sink.Events();
  std::lock_guard<std::mutex> lock(mu_);
  CellTrace& cell = cells_[cell_index];
  if (cell.label.empty()) cell.label = label;
  cell.dropped += sink.dropped();
  cell.events.insert(cell.events.end(), events.begin(), events.end());
  if (!atexit_armed_ && PathFromEnv() != nullptr) {
    atexit_armed_ = true;
    std::atexit(WriteTraceAtExit);
  }
}

std::string TraceCollector::ChromeTraceJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&out, &first](const std::string& line) {
    if (!first) out += ",\n";
    first = false;
    out += line;
  };

  for (const auto& [pid, cell] : cells_) {
    emit(MetadataLine("process_name", pid, 0,
                      cell.label.empty() ? "cell-" + std::to_string(pid)
                                         : cell.label));
    bool used[kNumSubsystems] = {};
    for (const TraceEvent& e : cell.events) {
      used[static_cast<size_t>(e.subsystem)] = true;
    }
    for (int t = 0; t < kNumSubsystems; ++t) {
      if (used[t]) {
        emit(MetadataLine("thread_name", pid, t,
                          SubsystemName(static_cast<Subsystem>(t))));
      }
    }
    if (cell.dropped > 0) {
      // Non-standard metadata record; viewers ignore it, trace_summary
      // reports it as lost-event accounting.
      JsonObjectWriter args;
      args.Add("dropped", cell.dropped);
      JsonObjectWriter line;
      line.Add("name", "semclust_ring_dropped")
          .Add("ph", "M")
          .Add("pid", pid)
          .Add("tid", 0)
          .AddRaw("args", args.str());
      emit(line.str());
    }
    for (const TraceEvent& e : cell.events) {
      const EventMeta& meta = MetaOf(e.type);
      if (e.type == TraceEventType::kSpan) {
        // Span-tree nodes are "X" complete events: ts is the node's
        // begin, dur its length, and the name is the phase or scope
        // label itself, so viewers nest them into flame graphs.
        JsonObjectWriter args;
        args.Add("txn", e.a).Add("query", e.c);
        JsonObjectWriter line;
        line.Add("name", SpanCodeName(e.b))
            .Add("cat", SubsystemName(e.subsystem))
            .Add("ph", "X")
            .Add("ts", e.sim_time_s * 1e6)  // simulated microseconds
            .Add("dur", e.v * 1e6)
            .Add("pid", pid)
            .Add("tid", static_cast<int>(e.subsystem))
            .AddRaw("args", args.str());
        emit(line.str());
        continue;
      }
      JsonObjectWriter args;
      if (meta.a != nullptr) args.Add(meta.a, e.a);
      if (meta.b != nullptr) args.Add(meta.b, e.b);
      if (meta.c != nullptr) args.Add(meta.c, e.c);
      if (meta.v != nullptr) args.Add(meta.v, e.v);
      JsonObjectWriter line;
      line.Add("name", meta.name)
          .Add("cat", SubsystemName(e.subsystem))
          .Add("ph", "i")
          .Add("s", "t")
          .Add("ts", e.sim_time_s * 1e6)  // simulated microseconds
          .Add("pid", pid)
          .Add("tid", static_cast<int>(e.subsystem))
          .AddRaw("args", args.str());
      emit(line.str());
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\",";
  out += "\"otherData\":{\"source\":\"semclust-obs\",";
  out += "\"clock\":\"simulated\"}}\n";
  return out;
}

bool TraceCollector::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << ChromeTraceJson();
  return static_cast<bool>(out);
}

bool TraceCollector::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cells_.empty();
}

void TraceCollector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  cells_.clear();
}

}  // namespace oodb::obs
