#include "obs/time_series.h"

#include <cmath>

#include "util/json_writer.h"

namespace oodb::obs {

std::optional<uint64_t> TimeSeriesSample::counter_delta(
    std::string_view name) const {
  for (const auto& [n, v] : counter_deltas) {
    if (n == name) return v;
  }
  return std::nullopt;
}

std::string TimeSeriesSample::ToJson() const {
  JsonObjectWriter counters;
  for (const auto& [name, delta] : counter_deltas) counters.Add(name, delta);
  JsonObjectWriter gauges_json;
  for (const auto& [name, value] : gauges) gauges_json.Add(name, value);
  JsonObjectWriter out;
  out.Add("sim_time_s", sim_time_s)
      .Add("epoch", static_cast<uint64_t>(epoch))
      .Add("epoch_boundary", epoch_boundary)
      .AddRaw("counter_deltas", counters.str())
      .AddRaw("gauges", gauges_json.str());
  if (placement.has_value()) {
    out.AddRaw("placement", placement->ToJson());
  }
  return out.str();
}

std::string TimeSeries::ToJson() const {
  JsonArrayWriter out;
  for (const TimeSeriesSample& s : samples) out.AddRaw(s.ToJson());
  return out.str();
}

void TimeSeries::MergeFrom(const TimeSeries& other) {
  for (size_t i = 0; i < other.samples.size(); ++i) {
    if (i >= samples.size()) {
      samples.push_back(other.samples[i]);
      continue;
    }
    TimeSeriesSample& mine = samples[i];
    const TimeSeriesSample& theirs = other.samples[i];
    if (theirs.sim_time_s > mine.sim_time_s) {
      mine.sim_time_s = theirs.sim_time_s;
    }
    if (theirs.epoch > mine.epoch) mine.epoch = theirs.epoch;
    mine.epoch_boundary = mine.epoch_boundary || theirs.epoch_boundary;
    for (const auto& [name, delta] : theirs.counter_deltas) {
      bool found = false;
      for (auto& [n, v] : mine.counter_deltas) {
        if (n == name) {
          v += delta;
          found = true;
          break;
        }
      }
      if (!found) mine.counter_deltas.emplace_back(name, delta);
    }
    for (const auto& [name, value] : theirs.gauges) {
      bool found = false;
      for (auto& [n, v] : mine.gauges) {
        if (n == name) {
          v += value;
          found = true;
          break;
        }
      }
      if (!found) mine.gauges.emplace_back(name, value);
    }
    if (theirs.placement.has_value()) {
      if (mine.placement.has_value()) {
        mine.placement->MergeFrom(*theirs.placement);
      } else {
        mine.placement = theirs.placement;
      }
    }
  }
}

TimeSeriesSampler::TimeSeriesSampler(const MetricsRegistry* registry,
                                     double interval_s)
    : registry_(registry), interval_s_(interval_s) {}

void TimeSeriesSampler::StartMeasurement(double now) {
  started_ = true;
  start_time_ = now;
  next_sample_time_ = interval_s_ > 0 ? now + interval_s_ : 0;
  if (pre_sample_hook_) pre_sample_hook_();
  baseline_ = registry_ != nullptr ? registry_->Snapshot() : MetricsSnapshot{};
  series_.samples.clear();
}

void TimeSeriesSampler::Poll(double now, uint32_t epoch) {
  if (!started_ || interval_s_ <= 0 || now < next_sample_time_) return;
  TakeSample(now, epoch, /*epoch_boundary=*/false);
  // Skip to the first boundary strictly after `now`: long idle stretches
  // yield one catch-up sample, not a burst of empty ones.
  const double intervals_done =
      std::floor((now - start_time_) / interval_s_) + 1.0;
  next_sample_time_ = start_time_ + intervals_done * interval_s_;
}

void TimeSeriesSampler::SampleEpochBoundary(double now, uint32_t epoch) {
  if (!started_) return;
  TakeSample(now, epoch, /*epoch_boundary=*/true);
}

void TimeSeriesSampler::SampleFinal(double now, uint32_t last_epoch) {
  if (!started_) return;
  TakeSample(now, last_epoch, /*epoch_boundary=*/true);
}

void TimeSeriesSampler::TakeSample(double now, uint32_t epoch,
                                   bool epoch_boundary) {
  if (pre_sample_hook_) pre_sample_hook_();
  TimeSeriesSample sample;
  sample.sim_time_s = now;
  sample.epoch = epoch;
  sample.epoch_boundary = epoch_boundary;
  if (registry_ != nullptr) {
    MetricsSnapshot current = registry_->Snapshot();
    sample.counter_deltas.reserve(current.counters.size());
    for (const auto& [name, value] : current.counters) {
      const std::optional<uint64_t> before = baseline_.counter(name);
      // Mirrored counters are set-synced (monotone), so value >= before;
      // a counter registered after the baseline deltas from zero.
      const uint64_t prev = before.value_or(0);
      sample.counter_deltas.emplace_back(name,
                                         value >= prev ? value - prev : 0);
    }
    sample.gauges = current.gauges;
    baseline_ = std::move(current);
  }
  if (auditor_ != nullptr) {
    sample.placement = auditor_->Sample();
  }
  series_.samples.push_back(std::move(sample));
}

}  // namespace oodb::obs
