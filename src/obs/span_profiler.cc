#include "obs/span_profiler.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace oodb::obs {

namespace {

/// Per-transaction per-phase seconds histogram bounds. Phases of a
/// transaction range from sub-millisecond CPU slices to multi-second
/// I/O storms under contention.
const std::vector<double>& PhaseHistogramBounds() {
  static const std::vector<double> kBounds = {0.001, 0.005, 0.02, 0.1,
                                              0.5,   2.0,   10.0};
  return kBounds;
}

}  // namespace

const char* SpanPhaseName(SpanPhase p) {
  switch (p) {
    case SpanPhase::kCpuService:
      return "cpu_service";
    case SpanPhase::kCpuWait:
      return "cpu_wait";
    case SpanPhase::kIoService:
      return "io_service";
    case SpanPhase::kIoWait:
      return "io_wait";
    case SpanPhase::kBufferFixWait:
      return "buffer_fix_wait";
    case SpanPhase::kLogForceWait:
      return "log_force_wait";
    case SpanPhase::kPrefetchOverlap:
      return "prefetch_overlap";
    case SpanPhase::kDynRecluster:
      return "dyn_recluster";
    case SpanPhase::kRemoteFetchWait:
      return "remote_fetch_wait";
    case SpanPhase::kLockWait:
      return "lock_wait";
  }
  return "unknown";
}

const char* SpanScopeName(SpanScope s) {
  switch (s) {
    case SpanScope::kTxn:
      return "txn";
    case SpanScope::kQuery:
      return "query";
    case SpanScope::kCommit:
      return "commit";
    case SpanScope::kReorg:
      return "reorg";
  }
  return "unknown";
}

const char* SpanCodeName(uint64_t code) {
  if (code >= kSpanScopeCodeBase) {
    return SpanScopeName(
        static_cast<SpanScope>(code - kSpanScopeCodeBase));
  }
  return SpanPhaseName(static_cast<SpanPhase>(code));
}

// ---------------------------------------------------------------------------
// SpanRecorder
// ---------------------------------------------------------------------------

SpanRecorder::SpanRecorder(SpanProfiler* profiler, uint64_t txn, int kind,
                           double begin_s)
    : profiler_(profiler) {
  if (profiler_ == nullptr) return;  // disabled: no allocations either
  record_.txn = txn;
  record_.kind = kind;
  record_.begin_ticks = ToTicks(begin_s);
  record_.nodes.push_back(SpanNode{
      record_.begin_ticks, record_.begin_ticks,
      static_cast<uint8_t>(kSpanScopeCodeBase +
                           static_cast<uint64_t>(SpanScope::kTxn)),
      /*is_scope=*/true});
  open_scopes_.push_back(0);
}

void SpanRecorder::AddLeaf(SpanPhase phase, Ticks begin, Ticks end) {
  if (dyn_scope_) phase = SpanPhase::kDynRecluster;
  const Ticks d = end - begin;
  if (d <= 0) return;  // zero-duration awaits carry no time to attribute
  record_.phase_ticks[static_cast<size_t>(phase)] +=
      static_cast<uint64_t>(d);
  if (record_.nodes.size() >= kMaxNodes) {
    record_.truncated = true;
    return;
  }
  record_.nodes.push_back(
      SpanNode{begin, end, static_cast<uint8_t>(phase), false});
}

void SpanRecorder::RecordSpan(SpanPhase phase, double begin_s,
                              double end_s) {
  if (profiler_ == nullptr) return;
  AddLeaf(phase, ToTicks(begin_s), ToTicks(end_s));
}

void SpanRecorder::RecordQueued(SpanPhase wait, SpanPhase service,
                                double begin_s, double start_s,
                                double end_s) {
  if (profiler_ == nullptr) return;
  const Ticks begin = ToTicks(begin_s);
  const Ticks start = ToTicks(start_s);
  const Ticks end = ToTicks(end_s);
  // enqueue <= dispatch <= completion, and ToTicks is monotone, so the
  // split partitions [begin, end) exactly.
  OODB_CHECK_GE(start, begin);
  OODB_CHECK_GE(end, start);
  AddLeaf(wait, begin, start);
  AddLeaf(service, start, end);
}

void SpanRecorder::BeginScope(SpanScope scope, double begin_s) {
  if (profiler_ == nullptr) return;
  if (record_.nodes.size() >= kMaxNodes) {
    record_.truncated = true;
    return;
  }
  const Ticks t = ToTicks(begin_s);
  open_scopes_.push_back(record_.nodes.size());
  record_.nodes.push_back(SpanNode{
      t, t,
      static_cast<uint8_t>(kSpanScopeCodeBase +
                           static_cast<uint64_t>(scope)),
      /*is_scope=*/true});
}

void SpanRecorder::EndScope(double end_s) {
  if (profiler_ == nullptr) return;
  // The matching BeginScope may have been swallowed by the node cap; the
  // root txn scope (index 0) is closed by Finish, never here.
  if (open_scopes_.size() <= 1) return;
  record_.nodes[open_scopes_.back()].end = ToTicks(end_s);
  open_scopes_.pop_back();
}

void SpanRecorder::Finish(double end_s) {
  if (profiler_ == nullptr) return;
  const Ticks end = ToTicks(end_s);
  record_.response_ticks = end - record_.begin_ticks;
  record_.nodes[0].end = end;
  profiler_->EndTxn(std::move(record_));
  profiler_ = nullptr;
}

// ---------------------------------------------------------------------------
// SpanProfiler
// ---------------------------------------------------------------------------

SpanProfiler::SpanProfiler(MetricsRegistry* metrics,
                           std::vector<std::string> kind_names,
                           int exemplars)
    : metrics_(metrics),
      kind_names_(std::move(kind_names)),
      exemplar_capacity_(exemplars < 0 ? 0 : exemplars) {
  OODB_CHECK(!kind_names_.empty());
  totals_.resize(kind_names_.size());
  // Eager registration for every (kind, phase): the registry layout is
  // part of the snapshot contract, so it must not depend on which kinds
  // a particular cell's workload happens to draw.
  txns_handles_.reserve(kind_names_.size());
  response_handles_.reserve(kind_names_.size());
  phase_handles_.reserve(kind_names_.size() * kNumSpanPhases);
  phase_histograms_.reserve(kind_names_.size() * kNumSpanPhases);
  for (const std::string& kind : kind_names_) {
    const std::string base = "span." + kind;
    txns_handles_.push_back(metrics_->Counter(base + ".txns"));
    response_handles_.push_back(
        metrics_->Counter(base + ".response_ticks"));
    for (int p = 0; p < kNumSpanPhases; ++p) {
      const char* phase = SpanPhaseName(static_cast<SpanPhase>(p));
      phase_handles_.push_back(
          metrics_->Counter(base + "." + phase + "_ticks"));
      phase_histograms_.push_back(metrics_->Histogram(
          base + "." + phase + "_s", PhaseHistogramBounds()));
    }
  }
  exemplars_.reserve(static_cast<size_t>(exemplar_capacity_));
}

void SpanProfiler::EndTxn(TxnSpanRecord record) {
  OODB_CHECK_GE(record.kind, 0);
  OODB_CHECK_LT(record.kind, num_kinds());
  if (observer_) observer_(record);
  const auto k = static_cast<size_t>(record.kind);
  KindTotals& t = totals_[k];
  ++t.txns;
  t.response_ticks += static_cast<uint64_t>(record.response_ticks);
  metrics_->Add(txns_handles_[k]);
  metrics_->Add(response_handles_[k],
                static_cast<uint64_t>(record.response_ticks));
  for (int p = 0; p < kNumSpanPhases; ++p) {
    const uint64_t ticks = record.phase_ticks[static_cast<size_t>(p)];
    t.phase_ticks[static_cast<size_t>(p)] += ticks;
    const size_t slot = k * kNumSpanPhases + static_cast<size_t>(p);
    metrics_->Add(phase_handles_[slot], ticks);
    metrics_->Observe(phase_histograms_[slot],
                      static_cast<double>(ticks) * 1e-9);
  }
  ++transactions_;

  // Deterministic top-K by (response_ticks desc, arrival asc): a new
  // record only displaces the current minimum if strictly slower, so
  // ties keep the earlier transaction regardless of job count.
  if (exemplar_capacity_ == 0) return;
  record.nodes.shrink_to_fit();
  if (exemplars_.size() < static_cast<size_t>(exemplar_capacity_)) {
    exemplars_.push_back(std::move(record));
    return;
  }
  size_t min_at = 0;
  for (size_t i = 1; i < exemplars_.size(); ++i) {
    const TxnSpanRecord& a = exemplars_[i];
    const TxnSpanRecord& m = exemplars_[min_at];
    // Among equally-slow candidates, the latest arrival is displaced
    // first, so the retained set prefers earlier transactions.
    if (a.response_ticks < m.response_ticks ||
        (a.response_ticks == m.response_ticks && a.txn > m.txn)) {
      min_at = i;
    }
  }
  if (record.response_ticks > exemplars_[min_at].response_ticks) {
    exemplars_[min_at] = std::move(record);
  }
}

void SpanProfiler::Reset() {
  std::fill(totals_.begin(), totals_.end(), KindTotals{});
  exemplars_.clear();
  transactions_ = 0;
}

std::vector<SpanKindBreakdown> SpanProfiler::Breakdown() const {
  std::vector<SpanKindBreakdown> out;
  for (size_t k = 0; k < totals_.size(); ++k) {
    if (totals_[k].txns == 0) continue;
    SpanKindBreakdown b;
    b.kind = kind_names_[k];
    b.txns = totals_[k].txns;
    b.response_ticks = totals_[k].response_ticks;
    b.phase_ticks = totals_[k].phase_ticks;
    out.push_back(std::move(b));
  }
  return out;
}

std::vector<const TxnSpanRecord*> SpanProfiler::SortedExemplars() const {
  std::vector<const TxnSpanRecord*> out;
  out.reserve(exemplars_.size());
  for (const TxnSpanRecord& e : exemplars_) out.push_back(&e);
  std::sort(out.begin(), out.end(),
            [](const TxnSpanRecord* a, const TxnSpanRecord* b) {
              if (a->response_ticks != b->response_ticks) {
                return a->response_ticks > b->response_ticks;
              }
              return a->txn < b->txn;
            });
  return out;
}

void SpanProfiler::ExportExemplars(TraceSink& sink) const {
  for (const TxnSpanRecord* e : SortedExemplars()) {
    for (const SpanNode& n : e->nodes) {
      sink.RecordAt(static_cast<double>(n.begin) * 1e-9,
                    Subsystem::kSpans, TraceEventType::kSpan, e->txn,
                    n.code, static_cast<uint64_t>(e->kind),
                    static_cast<double>(n.end - n.begin) * 1e-9);
    }
  }
}

}  // namespace oodb::obs
