#ifndef SEMCLUST_OBS_PLACEMENT_AUDITOR_H_
#define SEMCLUST_OBS_PLACEMENT_AUDITOR_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "objmodel/object_graph.h"
#include "storage/storage_manager.h"

/// \file
/// Clustering-quality auditing (DESIGN.md §9). The paper's claim is about
/// *placement*: run-time reclustering should drive structurally related
/// objects onto shared pages. End-of-run I/O counts only show the
/// consequence; the auditor measures the cause directly — which fraction
/// of structure/inheritance edges is page-co-located, how full pages are,
/// how fragmented each type's extent is, and how many pages a composite
/// configuration spans — so locality convergence under dynamic
/// reclustering is observable over time, in the style of Darmont et al.'s
/// clustering-evaluation metrics.
///
/// A PlacementSample is a pure read of graph + storage state: auditing
/// never mutates the model, so attaching it cannot change any simulated
/// outcome. All aggregates are order-independent sums or means over
/// deterministic iterations, keeping samples bit-identical at any
/// `SEMCLUST_BENCH_JOBS` count.

namespace oodb::obs {

/// Co-location tally for one relationship kind.
struct EdgeLocality {
  uint64_t edges = 0;      ///< edges with both endpoints live and placed
  uint64_t colocated = 0;  ///< ... whose endpoints share a page
};

/// Number of occupancy-histogram deciles ([0,10%), [10,20%), ..., the last
/// bucket includes exactly-full pages).
inline constexpr size_t kOccupancyBuckets = 10;

/// One point-in-time audit of the whole database's object placement.
struct PlacementSample {
  // ---- population ----
  uint64_t live_objects = 0;
  uint64_t placed_objects = 0;
  uint64_t pages = 0;           ///< pages ever allocated
  uint64_t nonempty_pages = 0;  ///< pages holding at least one object
  /// Pages allocated but currently holding no objects — the page-death
  /// signal of structural churn (deletes can drain a page completely; the
  /// occupancy and fragmentation means below always exclude such pages,
  /// so a churned placement never yields NaN ratios).
  uint64_t empty_pages = 0;

  // ---- structural locality ----
  /// Per-kind co-location, indexed by obj::RelKind. An edge counts once
  /// from its kDown side (correspondence, stored symmetrically, counts
  /// once per endpoint — consistently on every sample).
  std::array<EdgeLocality, obj::kNumRelKinds> by_kind{};
  uint64_t edges = 0;
  uint64_t colocated = 0;

  // ---- page occupancy ----
  /// Histogram of used/capacity over non-empty pages, kOccupancyBuckets
  /// equal-width deciles.
  std::array<uint64_t, kOccupancyBuckets> occupancy_histogram{};
  /// Mean fill fraction over non-empty pages.
  double mean_occupancy = 0;

  // ---- fragmentation ----
  /// Mean over types (with at least one placed object) of
  /// pages_spanned / ceil(type_bytes / page_capacity): 1.0 is a perfectly
  /// packed extent, larger means the type's objects are scattered.
  double mean_type_fragmentation = 0;
  uint64_t types_audited = 0;

  /// Mean number of distinct pages spanned by one configuration (a
  /// composite root plus its transitively reachable components).
  double mean_pages_per_configuration = 0;
  uint64_t configurations = 0;

  /// colocated / edges, or nullopt when no edges qualified.
  std::optional<double> ColocatedFraction() const {
    if (edges == 0) return std::nullopt;
    return static_cast<double>(colocated) / static_cast<double>(edges);
  }

  /// Accumulates `other` (counts sum, means re-weight by their
  /// populations) — the cross-cell fold used by
  /// exec::ExperimentRunner::MergeSeries.
  void MergeFrom(const PlacementSample& other);

  /// Deterministic JSON object (see DESIGN.md §9 for the schema).
  std::string ToJson() const;
};

/// Computes PlacementSamples from a live graph + storage pair. Holds no
/// state beyond the two pointers; every Sample() is a fresh full scan
/// (linear in objects + edges + pages).
class PlacementAuditor {
 public:
  PlacementAuditor(const obj::ObjectGraph* graph,
                   const store::StorageManager* storage)
      : graph_(graph), storage_(storage) {}

  PlacementSample Sample() const;

 private:
  const obj::ObjectGraph* graph_;
  const store::StorageManager* storage_;
};

}  // namespace oodb::obs

#endif  // SEMCLUST_OBS_PLACEMENT_AUDITOR_H_
