#ifndef SEMCLUST_OBS_TRACE_SINK_H_
#define SEMCLUST_OBS_TRACE_SINK_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sim/simulator.h"

/// \file
/// The tracing half of the observability subsystem (DESIGN.md §8): typed
/// events stamped with **simulated** time, recorded into a bounded
/// per-cell ring buffer (oldest events are overwritten and counted as
/// dropped, so tracing can never OOM a long run), and exported as Chrome
/// `trace_event` JSON that chrome://tracing and Perfetto load directly.
///
/// Each simulation cell owns one TraceSink (single-threaded, lock-free);
/// at the end of its run the sink is flushed under a mutex into the
/// process-global TraceCollector, which writes the merged file at exit.
/// In the exported trace, pid = cell index and tid = subsystem, so a grid
/// of cells renders as parallel processes with per-subsystem tracks.
///
/// Environment:
///   SEMCLUST_TRACE=<path>     enables tracing and names the output file
///   SEMCLUST_TRACE_EVENTS=n   per-cell ring capacity (default 4096)

namespace oodb::obs {

/// The subsystem a trace event originates from (the exported tid).
enum class Subsystem : uint8_t {
  kSim = 0,
  kCore,
  kBuffer,
  kCluster,
  kIo,
  kTxlog,
  kSpans,  ///< exemplar span trees from the span profiler
};
inline constexpr int kNumSubsystems = 7;
const char* SubsystemName(Subsystem s);

/// Every event kind the runtime records.
enum class TraceEventType : uint8_t {
  kTxnBegin = 0,    ///< a: txn id, b: query type
  kTxnEnd,          ///< a: txn id, b: query type, v: response seconds
  kPageRead,        ///< a: page, b: io category, c: disk
  kPageWrite,       ///< a: page, b: io category, c: disk
  kPageSplit,       ///< a: split page, b: objects moved, c: search steps,
                    ///< v: broken cost
  kRecluster,       ///< a: candidates scored, b: exam I/Os, c: relocated
  kPrefetchIssue,   ///< a: page
  kPrefetchHit,     ///< a: page (demand access absorbed by a prefetch)
  kPrefetchWaste,   ///< a: page (prefetched, evicted unreferenced)
  kPrefetchGroup,   ///< a: relationship kind, b: group size in pages
  kLogFlush,        ///< a: bytes flushed, b: records in buffer
  kEviction,        ///< a: page, b: priority class, c: dirty, v: priority
  kDynTrigger,      ///< a: units enqueued, b: tracked objects, c: pending,
                    ///< v: queue depth at the trigger
  kDynReorg,        ///< a: anchor object, b: objects moved, c: pages
                    ///< touched, v: anchor heat
  kSpan,            ///< a: txn id, b: span code (obs::SpanCodeName),
                    ///< c: query type, v: duration seconds; exported as
                    ///< a Chrome "X" complete event, not an instant
  kRemoteFetch,     ///< a: page, b: home shard, c: owner shard,
                    ///< v: total remote wait seconds (hops + service)
  kLockGrant,       ///< a: txn, b: object, c: mode (0 S, 1 X)
  kLockWait,        ///< a: txn, b: object, c: mode, v: wait seconds
  kLockTimeout,     ///< a: txn, b: object, c: mode, v: wait seconds
  kLatchWait,       ///< a: txn, b: page key, v: wait seconds
  kTxnAbort,        ///< a: txn, b: attempt number, c: gave up (0/1)
};
const char* TraceEventTypeName(TraceEventType t);

/// Priority class of an evicted frame (kEviction's `b`).
enum class EvictionClass : uint8_t {
  kPlainRecency = 0,  ///< never boosted above the access clock
  kContextBoosted,    ///< held a structural/prefetch boost when evicted
  kLru,
  kRandom,
};

/// One fixed-size recorded event.
struct TraceEvent {
  double sim_time_s = 0;
  double v = 0;
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
  TraceEventType type = TraceEventType::kTxnBegin;
  Subsystem subsystem = Subsystem::kSim;
};

/// A bounded, lock-free (single-threaded) ring of trace events stamped
/// with the owning simulator's virtual clock. Default-constructed sinks
/// are disabled: Record is a two-compare no-op, cheap enough to leave the
/// call sites unconditional.
class TraceSink {
 public:
  TraceSink() = default;  // disabled
  /// `clock` stamps events with simulated seconds (null stamps 0, for
  /// unit tests); `capacity` > 0 enables the sink.
  TraceSink(const sim::Simulator* clock, size_t capacity);

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  bool enabled() const { return capacity_ != 0; }
  size_t capacity() const { return capacity_; }

  void Record(Subsystem subsystem, TraceEventType type, uint64_t a = 0,
              uint64_t b = 0, uint64_t c = 0, double v = 0) {
    RecordAt(clock_ != nullptr ? clock_->now() : 0.0, subsystem, type, a,
             b, c, v);
  }

  /// Record with an explicit simulated timestamp — for events replayed
  /// after the fact, like the span profiler's end-of-run exemplar export
  /// (their historical begin times, not the clock's now, are the ts the
  /// trace viewer must sort them by).
  void RecordAt(double sim_time_s, Subsystem subsystem,
                TraceEventType type, uint64_t a = 0, uint64_t b = 0,
                uint64_t c = 0, double v = 0) {
    if (capacity_ == 0) return;
    TraceEvent& e = ring_[recorded_ % capacity_];
    e.sim_time_s = sim_time_s;
    e.v = v;
    e.a = a;
    e.b = b;
    e.c = c;
    e.type = type;
    e.subsystem = subsystem;
    ++recorded_;
  }

  /// Total Record calls; events beyond `capacity` overwrote the oldest.
  uint64_t recorded() const { return recorded_; }
  /// Events lost to ring overwrite.
  uint64_t dropped() const {
    return recorded_ > capacity_ ? recorded_ - capacity_ : 0;
  }
  /// Retained events, oldest first (unrolls the ring).
  std::vector<TraceEvent> Events() const;

 private:
  const sim::Simulator* clock_ = nullptr;
  size_t capacity_ = 0;
  uint64_t recorded_ = 0;
  std::vector<TraceEvent> ring_;
};

/// Process-global accumulator of per-cell sinks and the Chrome
/// trace_event writer. Thread-safe: cells flush from worker threads.
class TraceCollector {
 public:
  static TraceCollector& Global();

  /// SEMCLUST_TRACE, or null/empty when tracing is off.
  static const char* PathFromEnv();
  /// SEMCLUST_TRACE_EVENTS, default 4096.
  static size_t RingCapacityFromEnv();

  /// Absorbs one finished cell's events. Repeated flushes for the same
  /// `cell_index` (several batches in one binary) append to that cell's
  /// track. The first call arms an atexit writer targeting PathFromEnv().
  void Collect(int cell_index, const std::string& label,
               const TraceSink& sink);

  /// The full Chrome trace JSON document (one event object per line — the
  /// property tools/trace_summary's line scanner relies on).
  std::string ChromeTraceJson() const;

  /// Writes ChromeTraceJson() to `path`, truncating. False on I/O error.
  bool WriteChromeTrace(const std::string& path) const;

  bool empty() const;
  /// Drops all collected state (tests).
  void Reset();

 private:
  struct CellTrace {
    std::string label;
    uint64_t dropped = 0;
    std::vector<TraceEvent> events;
  };

  TraceCollector() = default;

  mutable std::mutex mu_;
  std::map<int, CellTrace> cells_;
  bool atexit_armed_ = false;
};

}  // namespace oodb::obs

#endif  // SEMCLUST_OBS_TRACE_SINK_H_
