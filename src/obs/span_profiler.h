#ifndef SEMCLUST_OBS_SPAN_PROFILER_H_
#define SEMCLUST_OBS_SPAN_PROFILER_H_

#include <array>
#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace_sink.h"

/// \file
/// The per-transaction critical-path profiler (DESIGN.md §14): a span
/// tree on the **virtual** clock that attributes every tick of a
/// transaction's response time to one phase of an exact, additive
/// taxonomy — CPU service, CPU queue wait, I/O service, I/O queue wait,
/// buffer-fix wait (dirty-victim flushes inside a fix), log-force wait,
/// prefetch overlap, dynamic-reclustering overhead, remote-fetch wait
/// (cross-shard page accesses when the model runs sharded), and lock
/// wait (2PL lock/latch queueing and abort-retry backoff when the
/// concurrency-control subsystem is enabled).
///
/// The additivity argument: within a transaction coroutine, simulated
/// time only advances while the coroutine is suspended at a leaf await
/// (a Resource::Use, an IoSubsystem Read/Write/FlushLog, a PrefetchJoin);
/// all code between awaits runs synchronously at a frozen clock, so the
/// timestamp a leaf interval ends at is bit-identical to the timestamp
/// the next one begins at. Quantising those *absolute* timestamps to
/// integer nanosecond ticks and differencing the integers therefore
/// telescopes exactly:
///
///   sum over leaves of (ToTicks(end) - ToTicks(begin))
///     == ToTicks(txn end) - ToTicks(txn begin)
///
/// with no floating-point residue — the invariant the span_test property
/// test enforces per transaction. The wait/service split inside one leaf
/// interval uses the resource's dispatch timestamp (enqueue <= start <=
/// complete, and ToTicks is monotone), so the split partitions the
/// interval exactly too.
///
/// One SpanProfiler per simulation cell, built only when
/// `ModelConfig::profile_spans` is set; a disabled run constructs
/// nothing, registers nothing, and draws nothing, so its output is
/// bit-identical to a build without the subsystem. Enabled runs are
/// deterministic at any job count: all state is per-cell and folded in
/// submission order.

namespace oodb::obs {

/// Integer virtual time: 1 tick = 1 simulated nanosecond. Simulated
/// timestamps are < 10^5 s, so ticks stay far below 2^53 and the
/// double -> tick quantisation is exact and platform-stable.
using Ticks = int64_t;

inline Ticks ToTicks(double seconds) {
  return static_cast<Ticks>(std::llround(seconds * 1e9));
}

/// The additive phase taxonomy. Every tick of response time lands in
/// exactly one phase.
enum class SpanPhase : uint8_t {
  kCpuService = 0,   ///< instructions executing on the CPU server
  kCpuWait,          ///< queued behind other users for the CPU
  kIoService,        ///< a synchronous data/cluster/split I/O in service
  kIoWait,           ///< that I/O queued behind other disk requests
  kBufferFixWait,    ///< dirty-victim flush blocking a buffer fix
  kLogForceWait,     ///< synchronous log flush (queue + service)
  kPrefetchOverlap,  ///< joined an in-flight prefetch of a wanted page
  kDynRecluster,     ///< dynamic-reclustering drain (src/dyn/) overhead
  kRemoteFetchWait,  ///< cross-shard page access (hops + remote service)
  kLockWait,         ///< 2PL lock/latch waits and abort-retry backoff
};
inline constexpr int kNumSpanPhases = 10;

/// Snake-case phase label ("cpu_service", ...), used for metric names,
/// the bench-JSONL "breakdown" keys, and the exported span names.
const char* SpanPhaseName(SpanPhase p);

/// Scope (non-leaf) nodes of an exemplar's span tree.
enum class SpanScope : uint8_t {
  kTxn = 0,    ///< the whole transaction
  kQuery,      ///< the read/write body
  kCommit,     ///< commit-time log forcing
  kReorg,      ///< the dynamic-reclustering drain
};
inline constexpr int kNumSpanScopes = 4;
const char* SpanScopeName(SpanScope s);

/// Code space shared by leaf and scope nodes in exported kSpan trace
/// events: leaves are the SpanPhase value, scopes are offset by this.
inline constexpr uint64_t kSpanScopeCodeBase = 100;

/// Display name of a span-node code (phase or scope) — the exported
/// Chrome-trace event name for kSpan events.
const char* SpanCodeName(uint64_t code);

/// One node of a recorded span tree: a leaf phase interval or a scope.
struct SpanNode {
  Ticks begin = 0;
  Ticks end = 0;
  uint8_t code = 0;      ///< SpanPhase, or kSpanScopeCodeBase + SpanScope
  bool is_scope = false;
};

/// Everything recorded for one finished transaction.
struct TxnSpanRecord {
  uint64_t txn = 0;       ///< pipeline transaction id
  int kind = 0;           ///< workload::QueryType as an int
  Ticks begin_ticks = 0;
  Ticks response_ticks = 0;
  std::array<uint64_t, kNumSpanPhases> phase_ticks{};
  /// The span tree, begin-ordered (leaves and scopes interleaved);
  /// truncated past SpanRecorder::kMaxNodes.
  std::vector<SpanNode> nodes;
  bool truncated = false;

  uint64_t PhaseSum() const {
    uint64_t sum = 0;
    for (const uint64_t t : phase_ticks) sum += t;
    return sum;
  }
};

/// Exact per-(cell, txn-kind) totals, carried in core::RunResult and
/// rendered as the bench-JSONL "breakdown" section. Counts are integer
/// ticks, so merging across cells is exact.
struct SpanKindBreakdown {
  std::string kind;  ///< workload::QueryTypeName label
  uint64_t txns = 0;
  uint64_t response_ticks = 0;
  std::array<uint64_t, kNumSpanPhases> phase_ticks{};
};

class SpanProfiler;

/// Per-transaction recording state. Lives in the transaction coroutine's
/// own frame (NEVER in the pipeline: transactions interleave at every
/// await, so shared "current span" state would be corrupted) and is
/// threaded by pointer through the pipeline primitives. A
/// default-constructed recorder is disabled and every call no-ops.
class SpanRecorder {
 public:
  /// Exemplar span trees keep at most this many nodes; further leaves
  /// still accumulate phase ticks but are not materialised.
  static constexpr size_t kMaxNodes = 4096;

  SpanRecorder() = default;  // disabled
  SpanRecorder(SpanProfiler* profiler, uint64_t txn, int kind,
               double begin_s);

  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  bool enabled() const { return profiler_ != nullptr; }

  /// Attributes [begin_s, end_s) to `phase` (the whole interval — used
  /// for log forces, buffer-fix flushes, and prefetch joins).
  void RecordSpan(SpanPhase phase, double begin_s, double end_s);

  /// Attributes a queued-resource interval, split at the dispatch
  /// timestamp: [begin_s, start_s) to `wait`, [start_s, end_s) to
  /// `service`. `start_s` comes from the resource's last-completed
  /// request (sim::Resource::last_start_time()).
  void RecordQueued(SpanPhase wait, SpanPhase service, double begin_s,
                    double start_s, double end_s);

  /// Scope markers for the exemplar tree (no tick attribution).
  void BeginScope(SpanScope scope, double begin_s);
  void EndScope(double end_s);

  /// While set, every recorded tick lands in kDynRecluster regardless of
  /// the leaf phase — the reclustering drain's CPU, I/O, and log costs
  /// are reorganisation overhead, not transaction work.
  void set_dyn_scope(bool on) { dyn_scope_ = on; }
  bool dyn_scope() const { return dyn_scope_; }

  /// Closes the record at `end_s` and folds it into the profiler
  /// (metrics, per-kind totals, the exemplar reservoir). Must be called
  /// exactly once on an enabled recorder.
  void Finish(double end_s);

 private:
  void AddLeaf(SpanPhase phase, Ticks begin, Ticks end);

  SpanProfiler* profiler_ = nullptr;
  TxnSpanRecord record_;
  std::vector<size_t> open_scopes_;
  bool dyn_scope_ = false;
};

/// Per-cell aggregation: exact per-kind phase totals, per-(kind, phase)
/// seconds histograms in the MetricsRegistry, and a deterministic top-K
/// slowest-transaction exemplar reservoir. Registration happens eagerly
/// for every kind and phase at construction so the snapshot layout is
/// identical across cells and job counts.
class SpanProfiler {
 public:
  /// `kind_names` labels the transaction kinds (workload::QueryTypeName
  /// order); `exemplars` bounds the slow-transaction reservoir.
  SpanProfiler(MetricsRegistry* metrics,
               std::vector<std::string> kind_names, int exemplars);

  SpanProfiler(const SpanProfiler&) = delete;
  SpanProfiler& operator=(const SpanProfiler&) = delete;

  int num_kinds() const { return static_cast<int>(kind_names_.size()); }
  int exemplar_capacity() const { return exemplar_capacity_; }

  /// Folds one finished transaction in (called by SpanRecorder::Finish).
  void EndTxn(TxnSpanRecord record);

  /// Forgets warmup-era transactions: totals and the reservoir reset at
  /// the measurement boundary (registry values are reset by the
  /// controller's MetricsRegistry::ResetValues call).
  void Reset();

  /// Exact per-kind totals over transactions finished since Reset();
  /// kinds with no transactions are omitted.
  std::vector<SpanKindBreakdown> Breakdown() const;

  /// The retained slowest transactions, ordered slowest-first with ties
  /// broken towards the earlier transaction — deterministic at any job
  /// count.
  std::vector<const TxnSpanRecord*> SortedExemplars() const;

  /// Emits every exemplar's span tree as kSpan events (Chrome "X"
  /// complete events on the "spans" track) stamped with the historical
  /// simulated timestamps.
  void ExportExemplars(TraceSink& sink) const;

  /// Test hook: called with every finished transaction's record (before
  /// it is folded), letting property tests assert per-transaction
  /// additivity without retaining every record.
  void set_txn_observer(std::function<void(const TxnSpanRecord&)> observer) {
    observer_ = std::move(observer);
  }

  uint64_t transactions() const { return transactions_; }

 private:
  struct KindTotals {
    uint64_t txns = 0;
    uint64_t response_ticks = 0;
    std::array<uint64_t, kNumSpanPhases> phase_ticks{};
  };

  MetricsRegistry* metrics_;
  std::vector<std::string> kind_names_;
  int exemplar_capacity_;
  uint64_t transactions_ = 0;

  std::vector<KindTotals> totals_;                     // per kind
  std::vector<CounterHandle> txns_handles_;            // per kind
  std::vector<CounterHandle> response_handles_;        // per kind
  std::vector<CounterHandle> phase_handles_;           // kind * phase
  std::vector<HistogramHandle> phase_histograms_;      // kind * phase

  std::vector<TxnSpanRecord> exemplars_;
  std::function<void(const TxnSpanRecord&)> observer_;
};

}  // namespace oodb::obs

#endif  // SEMCLUST_OBS_SPAN_PROFILER_H_
