#include "ocb/ocb_builder.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace oodb::ocb {

namespace {

// FNV-1a over one 64-bit word.
inline void MixU64(uint64_t& h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 1099511628211ULL;
  }
}

}  // namespace

OcbSchema RegisterOcbClasses(obj::TypeLattice& lattice,
                             const OcbConfig& config, uint64_t seed) {
  OODB_CHECK_GE(config.classes, 2);
  OODB_CHECK_GE(config.hierarchy_depth, 1);
  SplitMix64 rng(seed);

  OcbSchema schema;
  schema.classes.reserve(config.classes);
  schema.level_of.reserve(config.classes);
  schema.super_of.reserve(config.classes);

  for (int c = 0; c < config.classes; ++c) {
    int super = -1;
    int level = 0;
    if (c > 0) {
      // Attach under a uniformly chosen earlier class that still has room
      // below it in the depth budget; the root always qualifies when
      // hierarchy_depth >= 2, and a depth budget of 1 forces a flat
      // single-root "tree" of sibling-free subclasses of nothing — so fall
      // back to the root in that case.
      std::vector<int> candidates;
      for (int k = 0; k < c; ++k) {
        if (schema.level_of[k] < config.hierarchy_depth - 1) {
          candidates.push_back(k);
        }
      }
      if (candidates.empty()) candidates.push_back(0);
      super = candidates[rng.NextBelow(candidates.size())];
      level = schema.level_of[super] + (config.hierarchy_depth > 1 ? 1 : 0);
    }

    const uint32_t base = std::max<uint32_t>(
        24, static_cast<uint32_t>(static_cast<double>(config.base_object_bytes) *
                                  (0.6 + 0.8 * rng.NextDouble())));
    // OCB references are plain inter-object links, modelled as
    // configuration edges; instance-inheritance links are the secondary
    // structure. Version/correspondence semantics don't exist in OCB.
    obj::TraversalProfile profile{};
    profile[static_cast<int>(obj::RelKind::kConfiguration)] =
        1.0 + 0.5 * rng.NextDouble();
    profile[static_cast<int>(obj::RelKind::kVersionHistory)] = 0.05;
    profile[static_cast<int>(obj::RelKind::kCorrespondence)] = 0.05;
    profile[static_cast<int>(obj::RelKind::kInstanceInheritance)] =
        0.2 + 0.4 * rng.NextDouble();

    const obj::TypeId super_type =
        super < 0 ? obj::kInvalidType : schema.classes[super];
    schema.classes.push_back(lattice.DefineType(
        "ocb.c" + std::to_string(c), super_type, base, profile));
    schema.level_of.push_back(level);
    schema.super_of.push_back(super);
  }

  // CAD-type facade for the execution model's insert path: the root plays
  // "composite"; the two deepest classes play "leaf" and "alt".
  int deepest = 1;
  for (int c = 1; c < config.classes; ++c) {
    if (schema.level_of[c] > schema.level_of[deepest]) deepest = c;
  }
  int second = deepest == 1 ? (config.classes > 2 ? 2 : 1) : 1;
  for (int c = 1; c < config.classes; ++c) {
    if (c != deepest && schema.level_of[c] > schema.level_of[second]) {
      second = c;
    }
  }
  schema.cad.composite = schema.classes[0];
  schema.cad.leaf = schema.classes[deepest];
  schema.cad.alt = schema.classes[second];
  return schema;
}

uint64_t GraphDigest(const obj::ObjectGraph& graph) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  for (obj::ObjectId id = 0; id < graph.size(); ++id) {
    if (!graph.IsLive(id)) continue;
    const obj::DesignObject& o = graph.object(id);
    MixU64(h, id);
    MixU64(h, o.type);
    MixU64(h, o.size_bytes);
    for (const obj::Edge e : graph.edges(id)) {
      MixU64(h, e.target);
      MixU64(h, (static_cast<uint64_t>(e.kind) << 8) |
                    static_cast<uint64_t>(e.dir));
    }
  }
  return h;
}

OcbBuilder::OcbBuilder(obj::ObjectGraph* graph,
                       cluster::ClusterManager* cluster_mgr,
                       buffer::BufferPool* buffer, OcbConfig config)
    : graph_(graph), cluster_(cluster_mgr), buffer_(buffer), config_(config) {
  OODB_CHECK(graph != nullptr);
  OODB_CHECK(cluster_mgr != nullptr);
  OODB_CHECK(config_.Validate().ok());
}

void OcbBuilder::Place(obj::ObjectId id, SplitMix64& load_rng) {
  const auto report = cluster_->PlaceNew(id);
  bytes_created_ += graph_->object(id).size_bytes;
  if (buffer_ != nullptr) {
    // Mirror the run-time write path's residency effects (see
    // DbBuilder::Place).
    for (store::PageId p : report.exam_reads) buffer_->Fix(p);
    buffer_->Fix(report.page);
    buffer_->MarkDirty(report.page);
    if (report.split && report.split_new_page != store::kInvalidPage) {
      buffer_->Fix(report.split_new_page);
      buffer_->MarkDirty(report.split_new_page);
    }
  }
  // Concurrent read traffic while the benchmark database is installed
  // (pointless under No_Clustering, where placement ignores the buffer).
  if (buffer_ != nullptr &&
      cluster_->config().pool != cluster::CandidatePool::kNoClustering &&
      load_rng.NextDouble() < config_.interleaved_read_probability) {
    const size_t pages = cluster_->storage().page_count();
    if (pages > 0) {
      buffer_->Fix(static_cast<store::PageId>(load_rng.NextBelow(pages)));
    }
  }
}

OcbCatalog OcbBuilder::Build(const OcbSchema& schema, uint64_t seed) {
  const size_t n = static_cast<size_t>(config_.instances);
  const size_t num_classes = schema.classes.size();
  OODB_CHECK_GE(n, num_classes);
  bytes_created_ = 0;

  // Per-purpose streams: adding a draw to one stage can never shift
  // another stage's sequence.
  SplitMix64 root_rng(seed);
  SplitMix64 class_rng = root_rng.Fork();
  SplitMix64 size_rng = root_rng.Fork();
  SplitMix64 ref_rng = root_rng.Fork();
  SplitMix64 inherit_rng = root_rng.Fork();
  SplitMix64 load_rng = root_rng.Fork();

  OcbCatalog catalog;
  catalog.schema = schema;
  catalog.extents.resize(num_classes);

  // Phase 1: instances. The first `classes` objects cover each class once
  // (no class may have an empty extent); the rest draw uniformly.
  std::vector<obj::ObjectId> ids(n);
  std::vector<size_t> class_of(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t c =
        i < num_classes ? i : class_rng.NextBelow(num_classes);
    const obj::FamilyId family = graph_->NewFamily("ocb" + std::to_string(i));
    const uint32_t base = graph_->lattice().info(schema.classes[c]).base_size_bytes;
    const uint32_t size = static_cast<uint32_t>(std::clamp(
        static_cast<double>(base) * (0.75 + 0.5 * size_rng.NextDouble()),
        24.0, 1024.0));
    ids[i] = graph_->Create(family, 0, schema.classes[c], size);
    class_of[i] = c;
    catalog.extents[c].push_back(ids[i]);
  }

  // Phase 2: references with the configured locality. Targets are drawn in
  // creation-index space; gaussian offsets wrap around the extent.
  for (size_t i = 0; i < n; ++i) {
    for (int r = 0; r < config_.refs_per_object; ++r) {
      size_t j = 0;
      switch (config_.locality) {
        case RefLocality::kUniform:
          j = ref_rng.NextBelow(n);
          break;
        case RefLocality::kGaussian: {
          const double offset = ref_rng.Gaussian(
              0.0, config_.gaussian_window * static_cast<double>(n));
          const int64_t raw =
              static_cast<int64_t>(i) + std::llround(offset);
          const int64_t m = static_cast<int64_t>(n);
          j = static_cast<size_t>(((raw % m) + m) % m);
          break;
        }
        case RefLocality::kZipf:
          j = ref_rng.Zipf(n, config_.zipf_theta);
          break;
      }
      if (j == i) j = (j + 1) % n;
      graph_->Relate(ids[i], ids[j], obj::RelKind::kConfiguration);
    }
  }

  // Phase 2b: instance-inheritance links from an earlier superclass
  // instance to each (sampled) subclass instance. One draw per instance
  // regardless of outcome keeps the stream stable.
  std::vector<bool> has_heirs(n, false);
  for (size_t i = 0; i < n; ++i) {
    const double p = inherit_rng.NextDouble();
    const int super = schema.super_of[class_of[i]];
    if (super < 0 || p >= config_.inheritance_fraction) continue;
    const std::vector<obj::ObjectId>& extent =
        catalog.extents[static_cast<size_t>(super)];
    // Extents are in creation order, so ids are ascending: candidates are
    // the prefix of instances created before ids[i].
    const size_t count = static_cast<size_t>(
        std::lower_bound(extent.begin(), extent.end(), ids[i]) -
        extent.begin());
    if (count == 0) continue;
    const obj::ObjectId source = extent[inherit_rng.NextBelow(count)];
    graph_->Relate(source, ids[i], obj::RelKind::kInstanceInheritance);
    // `source` is an earlier instance, so its creation index is < i.
    has_heirs[source - ids[0]] = true;
  }

  // Phase 3: bulk-load through the clustering policy under test, in
  // creation order (the full reference graph is visible to placement, as
  // it is when installing a pre-existing benchmark database).
  for (size_t i = 0; i < n; ++i) Place(ids[i], load_rng);

  // Phase 4: partition catalogue (partition = "module" to the execution
  // model's write path) and traversal entry points.
  catalog.db.composite_type = schema.cad.composite;
  catalog.db.leaf_type = schema.cad.leaf;
  catalog.db.alt_type = schema.cad.alt;
  const size_t parts = static_cast<size_t>(config_.partitions);
  catalog.db.modules.resize(parts);
  for (size_t p = 0; p < parts; ++p) {
    const size_t begin = p * n / parts;
    const size_t end = (p + 1) * n / parts;
    workload::DesignDatabase::Module& m = catalog.db.modules[p];
    m.root = ids[begin];
    for (size_t i = begin; i < end; ++i) {
      m.objects.push_back(ids[i]);
      const bool composite = graph_->HasNeighbor(
          ids[i], obj::RelKind::kConfiguration, obj::Direction::kDown);
      if (composite) m.composites.push_back(ids[i]);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (has_heirs[i]) catalog.inheritance_roots.push_back(ids[i]);
  }
  return catalog;
}

}  // namespace oodb::ocb
