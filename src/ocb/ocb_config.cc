#include "ocb/ocb_config.h"

#include <cstdio>

namespace oodb::ocb {

const char* RefLocalityName(RefLocality l) {
  switch (l) {
    case RefLocality::kUniform:
      return "uniform";
    case RefLocality::kGaussian:
      return "gaussian";
    case RefLocality::kZipf:
      return "zipf";
  }
  return "unknown";
}

std::string OcbConfig::Label(double read_write_ratio) const {
  // Same ratio formatting as WorkloadConfig::Label so OCT and OCB cells
  // line up in reports.
  char buf[48];
  const char* loc;
  switch (locality) {
    case RefLocality::kUniform:
      loc = "uni";
      break;
    case RefLocality::kGaussian:
      loc = "gauss";
      break;
    case RefLocality::kZipf:
      loc = "zipf";
      break;
    default:
      loc = "unknown";
      break;
  }
  if (read_write_ratio == static_cast<int>(read_write_ratio)) {
    std::snprintf(buf, sizeof(buf), "ocb-%s%d-%d", loc, refs_per_object,
                  static_cast<int>(read_write_ratio));
  } else {
    std::snprintf(buf, sizeof(buf), "ocb-%s%d-%.1f", loc, refs_per_object,
                  read_write_ratio);
  }
  std::string label = buf;
  if (churn_enabled()) label += "-churn";
  return label;
}

Status OcbConfig::Validate() const {
  if (!enabled) return Status::Ok();
  if (classes < 2) {
    return Status::InvalidArgument(
        "ocb.classes must be >= 2 (need a root and at least one subclass "
        "for inheritance edges)");
  }
  if (hierarchy_depth < 1) {
    return Status::InvalidArgument("ocb.hierarchy_depth must be >= 1");
  }
  if (instances < classes) {
    return Status::InvalidArgument(
        "ocb.instances must be >= ocb.classes (every class needs a chance "
        "at an extent)");
  }
  if (refs_per_object < 0) {
    return Status::InvalidArgument("ocb.refs_per_object must be >= 0");
  }
  if (zipf_theta < 0.0 || zipf_theta >= 1.0) {
    return Status::InvalidArgument("ocb.zipf_theta must be in [0, 1)");
  }
  if (gaussian_window <= 0.0 || gaussian_window > 1.0) {
    return Status::InvalidArgument(
        "ocb.gaussian_window must be in (0, 1] (a fraction of the "
        "instance count)");
  }
  if (base_object_bytes < 24) {
    return Status::InvalidArgument("ocb.base_object_bytes must be >= 24");
  }
  if (inheritance_fraction < 0.0 || inheritance_fraction > 1.0) {
    return Status::InvalidArgument(
        "ocb.inheritance_fraction must be in [0, 1]");
  }
  if (interleaved_read_probability < 0.0 ||
      interleaved_read_probability > 1.0) {
    return Status::InvalidArgument(
        "ocb.interleaved_read_probability must be in [0, 1]");
  }
  if (partitions < 1) {
    return Status::InvalidArgument("ocb.partitions must be >= 1");
  }
  if (partitions > instances) {
    return Status::InvalidArgument(
        "ocb.partitions must be <= ocb.instances (partitions are "
        "non-empty creation-order chunks)");
  }
  if (set_lookup_size < 1) {
    return Status::InvalidArgument("ocb.set_lookup_size must be >= 1");
  }
  if (traversal_depth < 0) {
    return Status::InvalidArgument("ocb.traversal_depth must be >= 0");
  }
  double mix_sum = 0;
  for (double w : read_mix) {
    if (w < 0.0) {
      return Status::InvalidArgument(
          "ocb.read_mix weights must be non-negative");
    }
    mix_sum += w;
  }
  if (mix_sum <= 0.0) {
    return Status::InvalidArgument(
        "ocb.read_mix must have a positive sum (at least one read "
        "operation enabled)");
  }
  if (churn_probability < 0.0 || churn_probability > 1.0) {
    return Status::InvalidArgument(
        "ocb.churn_probability must be in [0, 1]");
  }
  if (churn_burst_length < 1) {
    return Status::InvalidArgument("ocb.churn_burst_length must be >= 1");
  }
  if (churn_cross_partition < 0.0 || churn_cross_partition > 1.0) {
    return Status::InvalidArgument(
        "ocb.churn_cross_partition must be in [0, 1]");
  }
  return Status::Ok();
}

}  // namespace oodb::ocb
