#ifndef SEMCLUST_OCB_OCB_BUILDER_H_
#define SEMCLUST_OCB_OCB_BUILDER_H_

#include <cstdint>
#include <vector>

#include "buffer/buffer_pool.h"
#include "cluster/cluster_manager.h"
#include "objmodel/object_graph.h"
#include "objmodel/type_system.h"
#include "ocb/ocb_config.h"
#include "util/random.h"
#include "workload/db_builder.h"

/// \file
/// Deterministic OCB database generation: a random class hierarchy and a
/// random instance graph with configurable reference locality. Generation
/// is driven by per-purpose SplitMix64 streams forked from a single seed —
/// class shape, instance sizes, references, inheritance links, and load
/// interleaving each consume their own stream, so the generated graph is
/// bit-identical for a given (config, seed) regardless of how any one
/// stage evolves, and regardless of SEMCLUST_BENCH_JOBS.
///
/// Unlike the engineering-design DbBuilder — which accretes objects the
/// way concurrent checkin streams would — the OCB builder materialises the
/// full logical graph first and then bulk-loads it through the
/// ClusterManager under test in creation order, the way a generic
/// benchmark database is installed into a DBMS.

namespace oodb::ocb {

/// The generated class hierarchy.
struct OcbSchema {
  /// All class ids, in generation order (index = class number).
  std::vector<obj::TypeId> classes;
  /// Inheritance depth of each class (root = 0).
  std::vector<int> level_of;
  /// Superclass *index* of each class (-1 for the root).
  std::vector<int> super_of;
  /// CAD-type facade consumed by the execution model's insert path: the
  /// root class plays "composite", two leaf-most classes play "leaf" and
  /// "alt".
  workload::CadTypes cad{};
};

/// Registers `config.classes` OCB classes on `lattice` as one inheritance
/// tree of depth <= `config.hierarchy_depth`, with per-class base sizes
/// and traversal profiles drawn from a SplitMix64 stream seeded by `seed`.
OcbSchema RegisterOcbClasses(obj::TypeLattice& lattice,
                             const OcbConfig& config, uint64_t seed);

/// The generated database, as consumed by the OCB workload generator and
/// the execution model.
struct OcbCatalog {
  OcbSchema schema;
  /// Partition catalogue in DesignDatabase form (partition = module), so
  /// the execution model's write path maintains it unchanged.
  workload::DesignDatabase db;
  /// Per-class instance extents (creation order) for set-oriented lookup.
  std::vector<std::vector<obj::ObjectId>> extents;
  /// Objects that are sources of instance-inheritance links (hierarchy
  /// traversal entry points).
  std::vector<obj::ObjectId> inheritance_roots;
};

/// Order-independent FNV-1a digest of the live object graph (ids, types,
/// sizes, edges) — the determinism witness used by tests: equal seeds must
/// produce equal digests.
uint64_t GraphDigest(const obj::ObjectGraph& graph);

/// Generates the instance graph and loads it through `cluster_mgr`.
class OcbBuilder {
 public:
  /// `buffer` may be null (no residency mirroring; see DbBuilder).
  OcbBuilder(obj::ObjectGraph* graph, cluster::ClusterManager* cluster_mgr,
             buffer::BufferPool* buffer, OcbConfig config);

  /// Builds `config.instances` objects of the schema's classes, wires
  /// references and inheritance links, places every object through the
  /// cluster manager, and returns the catalogue.
  OcbCatalog Build(const OcbSchema& schema, uint64_t seed);

  /// Total object bytes created by the last Build.
  uint64_t bytes_created() const { return bytes_created_; }

 private:
  void Place(obj::ObjectId id, SplitMix64& load_rng);

  obj::ObjectGraph* graph_;
  cluster::ClusterManager* cluster_;
  buffer::BufferPool* buffer_;
  OcbConfig config_;
  uint64_t bytes_created_ = 0;
};

}  // namespace oodb::ocb

#endif  // SEMCLUST_OCB_OCB_BUILDER_H_
