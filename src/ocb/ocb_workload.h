#ifndef SEMCLUST_OCB_OCB_WORKLOAD_H_
#define SEMCLUST_OCB_OCB_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "objmodel/object_graph.h"
#include "ocb/ocb_builder.h"
#include "ocb/ocb_config.h"
#include "util/random.h"
#include "workload/transaction_source.h"

/// \file
/// The OCB transaction set as a TransactionSource: sessions of 5-20
/// transactions against (Zipf-)popular partitions, each transaction one of
/// the four OCB read operations — set-oriented lookup, simple traversal,
/// hierarchy traversal, stochastic traversal — or a write. The same
/// logical-R/W feedback controller as the engineering-design generator
/// keeps the measured ratio on target, so OCB cells are directly
/// comparable to OCT cells at equal G.

namespace oodb::ocb {

/// Produces OCB TransactionSpecs for the execution model.
class OcbGenerator : public workload::TransactionSource {
 public:
  /// `db` is the live partition catalogue (updated externally as the model
  /// applies inserts/deletes); `catalog` supplies the immutable class
  /// extents and inheritance entry points. Both must outlive the
  /// generator.
  OcbGenerator(const obj::ObjectGraph* graph, workload::DesignDatabase* db,
               const OcbCatalog* catalog, OcbConfig config,
               double read_write_ratio, uint64_t seed);

  int BeginSession() override;
  workload::TransactionSpec NextTransaction() override;
  void RecordOps(uint64_t logical_reads, uint64_t logical_writes) override;
  void SetTargetRatio(double ratio) override;
  double AchievedRatio() const override;

  const OcbConfig& config() const { return config_; }

 private:
  obj::ObjectId PickFrom(const std::vector<obj::ObjectId>& list);
  workload::TransactionSpec MakeRead();
  workload::TransactionSpec MakeWrite();
  workload::TransactionSpec MakeChurnWrite();

  const obj::ObjectGraph* graph_;
  workload::DesignDatabase* db_;
  const OcbCatalog* catalog_;
  OcbConfig config_;
  double target_ratio_;
  Rng rng_;
  DiscreteDistribution read_mix_;
  DiscreteDistribution write_mix_;
  std::vector<size_t> partitions_;  // session working set; [0] is primary
  size_t partition_ = 0;            // partition of the txn being built
  uint64_t ops_read_ = 0;
  uint64_t ops_written_ = 0;
  // Structural-churn burst state (OcbConfig churn knobs). All churn
  // randomness is drawn only when churn is enabled, so pre-churn runs see
  // an unchanged RNG sequence.
  int churn_remaining_ = 0;   // writes left in the open burst
  uint64_t churn_step_ = 0;   // cycles delete -> insert -> re-reference
};

}  // namespace oodb::ocb

#endif  // SEMCLUST_OCB_OCB_WORKLOAD_H_
