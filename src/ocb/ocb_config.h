#ifndef SEMCLUST_OCB_OCB_CONFIG_H_
#define SEMCLUST_OCB_OCB_CONFIG_H_

#include <array>
#include <cstdint>
#include <string>

#include "util/status.h"

/// \file
/// Configuration of the OCB workload subsystem: a second, *generic*
/// object-graph benchmark in the spirit of OCB (Darmont, Petit &
/// Schneider, "OCB: A Generic Benchmark to Evaluate the Performances of
/// Object-Oriented Database Systems"). Unlike the paper's
/// engineering-design workload — whose structure semantics (modules,
/// versions, correspondences) are exactly what the clustering policies
/// were designed for — OCB generates an arbitrary typed object graph with
/// tunable reference locality, so policy rankings can be checked on a
/// workload the policies were *not* tailored to.

namespace oodb::ocb {

/// Distribution of reference targets in the generated instance graph.
enum class RefLocality : uint8_t {
  kUniform = 0,   ///< any object, uniformly
  kGaussian = 1,  ///< near the referencing object in creation order
  kZipf = 2,      ///< globally popular "hot" objects (low creation index)
};
inline constexpr int kNumRefLocalities = 3;

/// Short display name ("uniform", "gaussian", "zipf").
const char* RefLocalityName(RefLocality l);

/// Every locality, in enum order (for sweeps).
inline constexpr RefLocality kAllRefLocalities[] = {
    RefLocality::kUniform, RefLocality::kGaussian, RefLocality::kZipf};

/// Knobs of the OCB database generator and transaction set. Defaults are a
/// small instance of OCB's default parameterisation, scaled to this
/// simulator's page-sized world.
struct OcbConfig {
  /// Master switch: when false, the model runs the engineering-design
  /// workload and every other field is ignored.
  bool enabled = false;

  /// Classes in the generated hierarchy (OCB: NC).
  int classes = 24;
  /// Maximum depth of the class-inheritance tree (OCB: CLOCREF depth).
  int hierarchy_depth = 4;
  /// Instances in the generated graph (OCB: NO).
  int instances = 4000;
  /// Outgoing references created per instance (OCB: MAXNREF).
  int refs_per_object = 3;

  /// How reference targets are chosen.
  RefLocality locality = RefLocality::kUniform;
  /// Skew of kZipf reference popularity, in [0, 1).
  double zipf_theta = 0.8;
  /// Stddev of the kGaussian reference offset, as a fraction of the
  /// instance count.
  double gaussian_window = 0.05;

  /// Mean instance size in bytes (class base sizes jitter around it).
  uint32_t base_object_bytes = 160;
  /// Probability that an instance of a subclass carries an
  /// instance-inheritance link to an earlier instance of its superclass.
  double inheritance_fraction = 0.3;
  /// Probability that each load step is accompanied by a concurrent read
  /// of a random existing page (keeps buffer pressure realistic during
  /// generation; see DatabaseSpec::interleaved_read_probability).
  double interleaved_read_probability = 0.8;

  /// Catalogue partitions: contiguous creation-order chunks that play the
  /// role of the engineering workload's design modules (session working
  /// sets, write targets).
  int partitions = 16;
  /// Instances fetched by one set-oriented lookup.
  int set_lookup_size = 8;
  /// Depth bound of the traversal operations.
  int traversal_depth = 3;
  /// Relative mix of the four OCB read operations, in QueryType order:
  /// {set lookup, simple traversal, hierarchy traversal, stochastic}.
  std::array<double, 4> read_mix = {0.25, 0.35, 0.20, 0.20};

  // -- Structural-churn phase (ages the placement over time). --
  /// Probability that a write transaction opens a churn burst (0 disables
  /// churn entirely; the generator then draws no churn randomness at all,
  /// keeping pre-churn runs byte-identical).
  double churn_probability = 0.0;
  /// Writes per churn burst, cycling delete -> insert -> re-reference.
  int churn_burst_length = 6;
  /// Probability that a churn re-reference links across partitions (the
  /// co-location ager: cross-partition edges start un-co-located and pull
  /// future traversals off the original placement).
  double churn_cross_partition = 0.9;

  bool churn_enabled() const { return enabled && churn_probability > 0.0; }

  /// Workload-cell label, e.g. "ocb-zipf3-10" (locality, refs/object,
  /// read/write ratio) — the OCB counterpart of WorkloadConfig::Label().
  std::string Label(double read_write_ratio) const;

  /// Validates the knobs (when enabled), with actionable messages.
  Status Validate() const;
};

}  // namespace oodb::ocb

#endif  // SEMCLUST_OCB_OCB_CONFIG_H_
