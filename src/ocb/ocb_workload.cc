#include "ocb/ocb_workload.h"

#include <algorithm>

namespace oodb::ocb {

namespace {

// Session shape mirrors the engineering-design generator (paper §4.1):
// 5-20 transactions over a small working set of popular partitions.
constexpr int kSessionMinTxns = 5;
constexpr int kSessionMaxTxns = 20;
constexpr int kSessionPartitions = 3;
constexpr double kPartitionSkew = 0.6;
constexpr double kPrimaryPartitionProbability = 0.5;
constexpr double kCrossPartitionWriteProbability = 0.2;

// Write mix in WriteKind order {simple update, structure write, insert,
// derive version, delete}. OCB has no version semantics, so
// derive-version is off.
const std::vector<double>& OcbWriteMix() {
  static const std::vector<double> mix = {0.50, 0.25, 0.15, 0.0, 0.10};
  return mix;
}

}  // namespace

OcbGenerator::OcbGenerator(const obj::ObjectGraph* graph,
                           workload::DesignDatabase* db,
                           const OcbCatalog* catalog, OcbConfig config,
                           double read_write_ratio, uint64_t seed)
    : graph_(graph),
      db_(db),
      catalog_(catalog),
      config_(config),
      target_ratio_(read_write_ratio),
      rng_(seed),
      read_mix_(std::vector<double>(config.read_mix.begin(),
                                    config.read_mix.end())),
      write_mix_(OcbWriteMix()) {
  OODB_CHECK(graph != nullptr);
  OODB_CHECK(db != nullptr);
  OODB_CHECK(catalog != nullptr);
  OODB_CHECK(!db->modules.empty());
  OODB_CHECK_GT(read_write_ratio, 0.0);
}

int OcbGenerator::BeginSession() {
  partitions_.clear();
  for (int i = 0; i < kSessionPartitions; ++i) {
    partitions_.push_back(
        rng_.Zipf(db_->modules.size(), kPartitionSkew));
  }
  partition_ = partitions_[0];
  return static_cast<int>(rng_.UniformInt(kSessionMinTxns, kSessionMaxTxns));
}

void OcbGenerator::SetTargetRatio(double ratio) {
  OODB_CHECK_GT(ratio, 0.0);
  target_ratio_ = ratio;
  ops_read_ = 0;
  ops_written_ = 0;
}

void OcbGenerator::RecordOps(uint64_t logical_reads,
                             uint64_t logical_writes) {
  ops_read_ += logical_reads;
  ops_written_ += logical_writes;
}

double OcbGenerator::AchievedRatio() const {
  return ops_written_ == 0
             ? static_cast<double>(ops_read_)
             : static_cast<double>(ops_read_) /
                   static_cast<double>(ops_written_);
}

obj::ObjectId OcbGenerator::PickFrom(const std::vector<obj::ObjectId>& list) {
  if (list.empty()) return obj::kInvalidObject;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const obj::ObjectId id = list[rng_.NextBelow(list.size())];
    if (graph_->IsLive(id)) return id;
  }
  return obj::kInvalidObject;
}

workload::TransactionSpec OcbGenerator::NextTransaction() {
  // Same feedback controller as WorkloadGenerator: write only while the
  // achieved logical R/W ratio exceeds the target.
  if (partitions_.empty() || partitions_.size() == 1 ||
      rng_.Bernoulli(kPrimaryPartitionProbability)) {
    partition_ = partitions_.empty() ? 0 : partitions_[0];
  } else {
    partition_ = partitions_[1 + rng_.NextBelow(partitions_.size() - 1)];
  }
  const bool write =
      static_cast<double>(ops_read_) >
      target_ratio_ * (static_cast<double>(ops_written_) + 1.0);
  return write ? MakeWrite() : MakeRead();
}

workload::TransactionSpec OcbGenerator::MakeRead() {
  workload::DesignDatabase::Module& m = db_->modules[partition_];
  workload::TransactionSpec spec;
  spec.module = partition_;
  spec.type = static_cast<workload::QueryType>(
      static_cast<int>(workload::QueryType::kOcbSetLookup) +
      static_cast<int>(read_mix_.Sample(rng_)));

  switch (spec.type) {
    case workload::QueryType::kOcbSetLookup: {
      // Fetch a set of instances of one class (uniformly chosen extent).
      const std::vector<obj::ObjectId>& extent =
          catalog_->extents[rng_.NextBelow(catalog_->extents.size())];
      for (int i = 0; i < config_.set_lookup_size; ++i) {
        const obj::ObjectId id = PickFrom(extent);
        if (id == obj::kInvalidObject) continue;
        if (spec.target == obj::kInvalidObject) {
          spec.target = id;
        } else {
          spec.targets.push_back(id);
        }
      }
      break;
    }
    case workload::QueryType::kOcbSimpleTraversal:
      spec.target = PickFrom(m.composites);
      spec.depth = config_.traversal_depth;
      break;
    case workload::QueryType::kOcbHierarchyTraversal:
      spec.target = PickFrom(catalog_->inheritance_roots);
      spec.depth = config_.traversal_depth;
      break;
    case workload::QueryType::kOcbStochasticTraversal:
      spec.target = PickFrom(m.objects);
      // The walk's length is bounded by objects accessed, not tree depth;
      // give it room to show its backtracking behaviour.
      spec.depth = 4 * config_.traversal_depth;
      break;
    default:
      break;
  }
  if (spec.target == obj::kInvalidObject) {
    // Partition lacks that structure (or entries were deleted): degrade to
    // a single-object set lookup.
    spec.type = workload::QueryType::kOcbSetLookup;
    spec.targets.clear();
    spec.target = PickFrom(m.objects);
  }
  if (spec.target == obj::kInvalidObject && !db_->modules.empty()) {
    spec.target = db_->modules[0].root;
  }
  return spec;
}

workload::TransactionSpec OcbGenerator::MakeWrite() {
  if (config_.churn_enabled()) {
    if (churn_remaining_ == 0 &&
        rng_.Bernoulli(config_.churn_probability)) {
      churn_remaining_ = config_.churn_burst_length;
    }
    if (churn_remaining_ > 0) {
      --churn_remaining_;
      return MakeChurnWrite();
    }
  }
  workload::DesignDatabase::Module& m = db_->modules[partition_];
  workload::TransactionSpec spec;
  spec.module = partition_;
  spec.type = workload::QueryType::kObjectWrite;
  spec.write_kind =
      static_cast<workload::WriteKind>(write_mix_.Sample(rng_));

  switch (spec.write_kind) {
    case workload::WriteKind::kSimpleUpdate:
      spec.target = PickFrom(m.objects);
      break;
    case workload::WriteKind::kStructureWrite:
      spec.target = PickFrom(m.objects);
      if (db_->modules.size() > 1 &&
          rng_.Bernoulli(kCrossPartitionWriteProbability)) {
        size_t other = rng_.NextBelow(db_->modules.size());
        if (other == partition_) {
          other = (other + 1) % db_->modules.size();
        }
        spec.other = PickFrom(db_->modules[other].objects);
      } else {
        spec.other = PickFrom(m.objects);
      }
      if (spec.other == spec.target) spec.other = obj::kInvalidObject;
      break;
    case workload::WriteKind::kInsertObject:
      spec.target = PickFrom(m.composites);
      break;
    case workload::WriteKind::kDeriveVersion:
    case workload::WriteKind::kDeleteObject:
    case workload::WriteKind::kChurnDelete:  // never mix-sampled; -Wswitch
      spec.target = PickFrom(m.objects);
      break;
  }
  if (spec.target == obj::kInvalidObject) {
    spec.write_kind = workload::WriteKind::kInsertObject;
    spec.target = m.root;
  }
  return spec;
}

workload::TransactionSpec OcbGenerator::MakeChurnWrite() {
  workload::DesignDatabase::Module& m = db_->modules[partition_];
  workload::TransactionSpec spec;
  spec.module = partition_;
  spec.type = workload::QueryType::kObjectWrite;

  // The burst cycles delete -> insert -> re-reference: deletes punch holes
  // into mature pages, inserts land in unrelated ones, and cross-partition
  // re-references redirect future traversals away from the original
  // placement — together they age co-location the way the dynamic-policy
  // literature's churn phases do.
  switch (churn_step_++ % 3) {
    case 0:
      spec.write_kind = workload::WriteKind::kChurnDelete;
      spec.target = PickFrom(m.objects);
      break;
    case 1:
      spec.write_kind = workload::WriteKind::kInsertObject;
      spec.target = PickFrom(m.composites);
      break;
    default:
      spec.write_kind = workload::WriteKind::kStructureWrite;
      spec.target = PickFrom(m.objects);
      if (db_->modules.size() > 1 &&
          rng_.Bernoulli(config_.churn_cross_partition)) {
        size_t other = rng_.NextBelow(db_->modules.size());
        if (other == partition_) {
          other = (other + 1) % db_->modules.size();
        }
        spec.other = PickFrom(db_->modules[other].objects);
      } else {
        spec.other = PickFrom(m.objects);
      }
      if (spec.other == spec.target) spec.other = obj::kInvalidObject;
      break;
  }
  if (spec.target == obj::kInvalidObject) {
    spec.write_kind = workload::WriteKind::kInsertObject;
    spec.target = m.root;
  }
  return spec;
}

}  // namespace oodb::ocb
