#include "workload/db_builder.h"

#include <algorithm>
#include <deque>

namespace oodb::workload {

size_t DesignDatabase::TotalObjects() const {
  size_t total = 0;
  for (const Module& m : modules) total += m.objects.size();
  return total;
}

CadTypes RegisterCadTypes(obj::TypeLattice& lattice) {
  CadTypes types;
  // Profiles: CAD navigation is configuration-dominant; version history is
  // the main inheritance path; alternate representations are reached via
  // correspondence (paper §2.1 / §3.5).
  types.composite = lattice.DefineType(
      "cell", obj::kInvalidType, 48, {6.0, 1.5, 1.0, 0.5},
      {{"bbox", 16, true, 2.0, 0.1},
       {"geometry", 1400, true, 0.05, 0.02},
       {"label", 24, false, 0.3, 0.0}});
  types.leaf = lattice.DefineType(
      "primitive", types.composite, 32, {5.0, 1.0, 0.8, 0.5},
      {{"params", 32, true, 1.0, 0.05}});
  types.alt = lattice.DefineType(
      "netcell", obj::kInvalidType, 40, {3.0, 1.0, 4.0, 0.5},
      {{"netlist", 600, true, 0.1, 0.05}});
  return types;
}

namespace internal {

/// One step of a module-construction plan.
struct PlanStep {
  enum class Kind : uint8_t { kCreate, kDerive } kind = Kind::kCreate;
  obj::TypeId type = obj::kInvalidType;
  uint32_t size_bytes = 0;
  bool is_composite = false;
  /// Local index (within the plan) of the configuration parent, or -1.
  int parent = -1;
  /// Local index of the correspondence counterpart, or -1.
  int corresponds = -1;
  /// kDerive: local index of the object to derive a version of.
  int derive_of = -1;
};

}  // namespace internal

using internal::PlanStep;

/// A stream's in-progress module: its plan and execution cursor.
struct DbBuilder::StreamState {
  std::vector<PlanStep> plan;
  size_t cursor = 0;
  std::vector<obj::ObjectId> local_ids;  // plan index -> ObjectId
  DesignDatabase::Module module;
  obj::FamilyId family = obj::kInvalidFamily;
  bool Done() const { return cursor >= plan.size(); }
};

DbBuilder::DbBuilder(obj::ObjectGraph* graph,
                     cluster::ClusterManager* cluster_mgr,
                     buffer::BufferPool* buffer, DatabaseSpec spec)
    : graph_(graph), cluster_(cluster_mgr), buffer_(buffer), spec_(spec),
      rng_(spec.seed) {
  OODB_CHECK(graph != nullptr);
  OODB_CHECK(cluster_mgr != nullptr);
  OODB_CHECK_GE(spec_.concurrent_streams, 1);
}

DbBuilder::~DbBuilder() = default;

uint32_t DbBuilder::SampleObjectSize(bool composite) {
  // Exponential with a floor: many small objects, occasional large ones.
  const double mean = static_cast<double>(spec_.mean_object_bytes);
  double size = 0.4 * mean + rng_.Exponential(0.6 * mean);
  if (composite) size += spec_.composite_extra_bytes;
  return static_cast<uint32_t>(std::clamp(size, 24.0, 1024.0));
}

void DbBuilder::Place(obj::ObjectId id) {
  const auto report = cluster_->PlaceNew(id);
  bytes_created_ += graph_->object(id).size_bytes;
  if (buffer_ != nullptr) {
    // Mirror the run-time write path's residency effects: examined
    // candidate pages and the written page end up in the buffer pool.
    for (store::PageId p : report.exam_reads) buffer_->Fix(p);
    buffer_->Fix(report.page);
    buffer_->MarkDirty(report.page);
    if (report.split && report.split_new_page != store::kInvalidPage) {
      buffer_->Fix(report.split_new_page);
      buffer_->MarkDirty(report.split_new_page);
    }
  }
}

std::vector<PlanStep> DbBuilder::PlanModule() {
  std::vector<PlanStep> plan;
  const FanoutRange fanout = FanoutFor(spec_.density);

  // --- Primary representation: depth-first configuration tree. ---
  plan.push_back(PlanStep{PlanStep::Kind::kCreate, types_.composite,
                          SampleObjectSize(true), true, -1, -1, -1});
  std::vector<int> root_components;
  // Depth-first expansion over planned composites: (plan index, depth).
  std::vector<std::pair<int, int>> stack{{0, 0}};
  while (!stack.empty()) {
    const auto [parent, depth] = stack.back();
    stack.pop_back();
    const int children = static_cast<int>(
        rng_.UniformInt(fanout.min_fanout, fanout.max_fanout));
    for (int c = 0; c < children; ++c) {
      const bool composite = depth + 1 < spec_.hierarchy_depth &&
                             rng_.Bernoulli(spec_.composite_fraction);
      const obj::TypeId type = composite ? types_.composite : types_.leaf;
      plan.push_back(PlanStep{PlanStep::Kind::kCreate, type,
                              SampleObjectSize(composite), composite,
                              parent, -1, -1});
      const int idx = static_cast<int>(plan.size() - 1);
      if (parent == 0) root_components.push_back(idx);
      if (composite) stack.push_back({idx, depth + 1});
    }
  }

  // --- Alternate representations with correspondences. ---
  for (int rep = 0; rep < spec_.alt_representations; ++rep) {
    plan.push_back(PlanStep{PlanStep::Kind::kCreate, types_.alt,
                            SampleObjectSize(true), true, -1, /*root=*/0,
                            -1});
    const int alt_root = static_cast<int>(plan.size() - 1);
    for (int counterpart : root_components) {
      plan.push_back(PlanStep{PlanStep::Kind::kCreate, types_.alt,
                              SampleObjectSize(false), false, alt_root,
                              counterpart, -1});
    }
  }

  // --- Version chains (instance-to-instance inheritance). ---
  const int base_count = static_cast<int>(plan.size());
  for (int i = 0; i < base_count; ++i) {
    if (!rng_.Bernoulli(spec_.version_fraction)) continue;
    int head = i;
    const double p_stop = 1.0 / (1.0 + spec_.version_chain_mean);
    do {
      plan.push_back(PlanStep{PlanStep::Kind::kDerive, obj::kInvalidType, 0,
                              false, -1, -1, head});
      head = static_cast<int>(plan.size() - 1);
    } while (!rng_.Bernoulli(p_stop));
  }
  return plan;
}

void DbBuilder::ExecuteStep(StreamState& stream) {
  const PlanStep& step = stream.plan[stream.cursor];
  DesignDatabase::Module& module = stream.module;
  obj::ObjectId id = obj::kInvalidObject;

  if (step.kind == PlanStep::Kind::kCreate) {
    id = graph_->Create(stream.family, 1, step.type, step.size_bytes);
    if (step.parent >= 0) {
      graph_->Relate(stream.local_ids[static_cast<size_t>(step.parent)], id,
                     obj::RelKind::kConfiguration);
    }
    if (step.corresponds >= 0) {
      const obj::ObjectId other =
          stream.local_ids[static_cast<size_t>(step.corresponds)];
      graph_->Relate(id, other, obj::RelKind::kCorrespondence);
      module.corresponding.push_back(id);
      module.corresponding.push_back(other);
    }
    Place(id);
    if (step.is_composite) module.composites.push_back(id);
    if (module.root == obj::kInvalidObject) module.root = id;
  } else {
    const obj::ObjectId of =
        stream.local_ids[static_cast<size_t>(step.derive_of)];
    const auto derived = obj::DeriveVersion(*graph_, of, inherit_model_);
    id = derived.heir;
    Place(id);
    module.versioned.push_back(of);
    module.versioned.push_back(id);
  }

  stream.local_ids.push_back(id);
  module.objects.push_back(id);
  ++stream.cursor;

  // Concurrent read traffic from other tools sharing the repository.
  if (buffer_ != nullptr && cluster_->config().pool !=
                                cluster::CandidatePool::kNoClustering) {
    // (Pointless under No_Clustering: placement ignores the buffer.)
    if (rng_.Bernoulli(spec_.interleaved_read_probability)) {
      const size_t pages = cluster_->storage().page_count();
      if (pages > 0) {
        buffer_->Fix(static_cast<store::PageId>(rng_.NextBelow(pages)));
      }
    }
  }
}

DesignDatabase DbBuilder::Build(CadTypes types) {
  types_ = types;
  DesignDatabase db;
  db.composite_type = types.composite;
  db.leaf_type = types.leaf;
  db.alt_type = types.alt;

  // Concurrent checkin streams, advanced round-robin one object per turn:
  // this is the multi-user arrival order a shared CAD repository sees.
  std::vector<StreamState> streams(
      static_cast<size_t>(spec_.concurrent_streams));
  int module_index = 0;
  auto start_module = [&](StreamState& s) {
    s = StreamState{};
    s.plan = PlanModule();
    // Build "M<n>" via append: `"M" + std::to_string(n)` trips GCC 12's
    // -Werror=restrict false positive (PR105651) at -O3.
    std::string module_name("M");
    module_name += std::to_string(module_index++);
    s.family = graph_->NewFamily(module_name);
  };
  for (auto& s : streams) start_module(s);

  bool work_left = true;
  while (work_left) {
    work_left = false;
    for (auto& s : streams) {
      if (s.Done()) {
        // Module complete: commit it to the catalogue; start another if the
        // database is still below target.
        if (!s.module.objects.empty()) {
          db.modules.push_back(std::move(s.module));
          s.module = DesignDatabase::Module{};
        }
        if (bytes_created_ < spec_.target_bytes) {
          start_module(s);
        } else {
          continue;
        }
      }
      ExecuteStep(s);
      work_left = true;
    }
  }
  // Flush any modules completed on the final lap.
  for (auto& s : streams) {
    if (s.Done() && !s.module.objects.empty()) {
      db.modules.push_back(std::move(s.module));
    }
  }
  return db;
}

}  // namespace oodb::workload
