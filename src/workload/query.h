#ifndef SEMCLUST_WORKLOAD_QUERY_H_
#define SEMCLUST_WORKLOAD_QUERY_H_

#include <cstdint>
#include <vector>

#include "objmodel/object_id.h"

/// \file
/// The seven engineering-design query types (paper §4.1) plus the four
/// read operations of the OCB generic object benchmark (Darmont et al.).
/// Every object read or write operation is a transaction; checkin/checkout
/// are composites of these primitives.

namespace oodb::workload {

/// Query types assigned to transactions in the workload-definition phase.
/// Types 0-6 are the paper's engineering-design set; types 7-10 are the
/// OCB operation set (src/ocb/), appended so the indices of the original
/// seven — and every statistic keyed on them — are unchanged.
enum class QueryType : uint8_t {
  kSimpleLookup = 0,        ///< (1) simple object lookup by name
  kComponentRetrieval = 1,  ///< (2) retrieve the components of an object
  kCompositeRetrieval = 2,  ///< (3) retrieve a composite object (deep)
  kDescendantVersions = 3,  ///< (4) descendant-version retrieval
  kAncestorVersions = 4,    ///< (5) ancestor-version retrieval
  kCorresponding = 5,       ///< (6) corresponding-objects retrieval
  kObjectWrite = 6,         ///< (7) object insertion / deletion / update
  kOcbSetLookup = 7,        ///< OCB: set-oriented lookup over one class
  kOcbSimpleTraversal = 8,  ///< OCB: depth-first reference traversal
  kOcbHierarchyTraversal = 9,   ///< OCB: traversal along inheritance edges
  kOcbStochasticTraversal = 10, ///< OCB: random walk with backtracking
};
inline constexpr int kNumQueryTypes = 11;

const char* QueryTypeName(QueryType q);

/// True for the six read query types.
inline bool IsReadQuery(QueryType q) { return q != QueryType::kObjectWrite; }

/// The flavours of a write transaction.
enum class WriteKind : uint8_t {
  kSimpleUpdate = 0,   ///< update attributes of an existing object
  kStructureWrite = 1, ///< create an attachment (structural link)
  kInsertObject = 2,   ///< create a new object (component or version)
  kDeriveVersion = 3,  ///< checkin-style version derivation
  kDeleteObject = 4,   ///< remove an object
  /// Structural churn (OCB churn phase only): delete the target outright,
  /// even mid-structure — the graph detaches its relationship mirrors and
  /// its page space is reclaimed. Never mix-sampled, so it sits outside
  /// kNumWriteKinds and the write-mix arrays are unchanged.
  kChurnDelete = 5,
};
/// Mix-sampled kinds only (the write_mix array length); kChurnDelete is
/// emitted directly by the OCB churn state machine.
inline constexpr int kNumWriteKinds = 5;

const char* WriteKindName(WriteKind k);

/// One transaction as handed to the execution model.
struct TransactionSpec {
  QueryType type = QueryType::kSimpleLookup;
  WriteKind write_kind = WriteKind::kSimpleUpdate;  // when type is a write
  obj::ObjectId target = obj::kInvalidObject;
  /// Secondary object for structure writes (the other attachment end).
  obj::ObjectId other = obj::kInvalidObject;
  /// Index of the design module the session operates on.
  size_t module = 0;
  /// Additional targets beyond `target` (OCB set-oriented lookup); empty
  /// for the engineering-design query types.
  std::vector<obj::ObjectId> targets;
  /// Traversal depth bound for the OCB traversal types (0 = just the
  /// target object).
  int depth = 0;
};

}  // namespace oodb::workload

#endif  // SEMCLUST_WORKLOAD_QUERY_H_
