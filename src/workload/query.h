#ifndef SEMCLUST_WORKLOAD_QUERY_H_
#define SEMCLUST_WORKLOAD_QUERY_H_

#include <cstdint>

#include "objmodel/object_id.h"

/// \file
/// The seven engineering-design query types (paper §4.1). Every object read
/// or write operation is a transaction; checkin/checkout are composites of
/// these primitives.

namespace oodb::workload {

/// Query types assigned to transactions in the workload-definition phase.
enum class QueryType : uint8_t {
  kSimpleLookup = 0,        ///< (1) simple object lookup by name
  kComponentRetrieval = 1,  ///< (2) retrieve the components of an object
  kCompositeRetrieval = 2,  ///< (3) retrieve a composite object (deep)
  kDescendantVersions = 3,  ///< (4) descendant-version retrieval
  kAncestorVersions = 4,    ///< (5) ancestor-version retrieval
  kCorresponding = 5,       ///< (6) corresponding-objects retrieval
  kObjectWrite = 6,         ///< (7) object insertion / deletion / update
};
inline constexpr int kNumQueryTypes = 7;

const char* QueryTypeName(QueryType q);

/// True for the six read query types.
inline bool IsReadQuery(QueryType q) { return q != QueryType::kObjectWrite; }

/// The flavours of a write transaction.
enum class WriteKind : uint8_t {
  kSimpleUpdate = 0,   ///< update attributes of an existing object
  kStructureWrite = 1, ///< create an attachment (structural link)
  kInsertObject = 2,   ///< create a new object (component or version)
  kDeriveVersion = 3,  ///< checkin-style version derivation
  kDeleteObject = 4,   ///< remove an object
};
inline constexpr int kNumWriteKinds = 5;

const char* WriteKindName(WriteKind k);

/// One transaction as handed to the execution model.
struct TransactionSpec {
  QueryType type = QueryType::kSimpleLookup;
  WriteKind write_kind = WriteKind::kSimpleUpdate;  // when type is a write
  obj::ObjectId target = obj::kInvalidObject;
  /// Secondary object for structure writes (the other attachment end).
  obj::ObjectId other = obj::kInvalidObject;
  /// Index of the design module the session operates on.
  size_t module = 0;
};

}  // namespace oodb::workload

#endif  // SEMCLUST_WORKLOAD_QUERY_H_
