#include "workload/workload_config.h"

#include <cstdio>

namespace oodb::workload {

const char* StructureDensityName(StructureDensity d) {
  switch (d) {
    case StructureDensity::kLow3:
      return "low3";
    case StructureDensity::kMed5:
      return "med5";
    case StructureDensity::kHigh10:
      return "hi10";
  }
  return "unknown";
}

FanoutRange FanoutFor(StructureDensity d) {
  switch (d) {
    case StructureDensity::kLow3:
      return {1, 3};  // every structural retrieval returns <= 3 objects
    case StructureDensity::kMed5:
      return {4, 9};  // more than 3 but fewer than 10
    case StructureDensity::kHigh10:
      return {10, 14};  // 10 or more
  }
  return {1, 3};
}

std::string WorkloadConfig::Label() const {
  char buf[32];
  if (read_write_ratio == static_cast<int>(read_write_ratio)) {
    std::snprintf(buf, sizeof(buf), "%s-%d", StructureDensityName(density),
                  static_cast<int>(read_write_ratio));
  } else {
    std::snprintf(buf, sizeof(buf), "%s-%.1f", StructureDensityName(density),
                  read_write_ratio);
  }
  return buf;
}

}  // namespace oodb::workload
