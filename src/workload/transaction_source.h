#ifndef SEMCLUST_WORKLOAD_TRANSACTION_SOURCE_H_
#define SEMCLUST_WORKLOAD_TRANSACTION_SOURCE_H_

#include <cstdint>

#include "workload/query.h"

/// \file
/// The contract between a per-user transaction stream and the execution
/// model. The engineering-design generator (workload_gen.h) and the OCB
/// generator (src/ocb/) both implement it, so the measurement layer drives
/// either workload through the same session loop.

namespace oodb::workload {

/// One user's stream of sessions and transactions.
class TransactionSource {
 public:
  virtual ~TransactionSource() = default;

  /// Starts a new session (picks its working set) and returns the session
  /// length in transactions.
  virtual int BeginSession() = 0;

  /// Generates the next transaction of the current session.
  virtual TransactionSpec NextTransaction() = 0;

  /// Feedback from the execution model: logical reads/writes the last
  /// transactions performed. Drives the source's R/W controller.
  virtual void RecordOps(uint64_t logical_reads, uint64_t logical_writes) = 0;

  /// Switches the target read/write ratio mid-run; the controller's
  /// counters reset so the new phase converges to the new target.
  virtual void SetTargetRatio(double ratio) = 0;

  /// Achieved logical R/W ratio so far.
  virtual double AchievedRatio() const = 0;
};

}  // namespace oodb::workload

#endif  // SEMCLUST_WORKLOAD_TRANSACTION_SOURCE_H_
