#include "workload/workload_gen.h"

#include <algorithm>

namespace oodb::workload {

WorkloadGenerator::WorkloadGenerator(const obj::ObjectGraph* graph,
                                     DesignDatabase* db,
                                     WorkloadConfig config, uint64_t seed)
    : graph_(graph),
      db_(db),
      config_(config),
      rng_(seed),
      read_mix_(std::vector<double>(config.read_mix.begin(),
                                    config.read_mix.end())),
      write_mix_(std::vector<double>(config.write_mix.begin(),
                                     config.write_mix.end())) {
  OODB_CHECK(graph != nullptr);
  OODB_CHECK(db != nullptr);
  OODB_CHECK(!db->modules.empty());
  OODB_CHECK_GT(config.read_write_ratio, 0.0);
}

int WorkloadGenerator::BeginSession() {
  modules_.clear();
  const int count = std::max(1, config_.session_module_count);
  for (int i = 0; i < count; ++i) {
    modules_.push_back(rng_.Zipf(db_->modules.size(), config_.module_skew));
  }
  module_ = modules_[0];
  return static_cast<int>(rng_.UniformInt(config_.session_min_txns,
                                          config_.session_max_txns));
}

void WorkloadGenerator::PickTransactionModule() {
  if (config_.session_module_count <= 0) {
    // No session-level locality: every transaction samples the module
    // popularity distribution independently.
    module_ = rng_.Zipf(db_->modules.size(), config_.module_skew);
    return;
  }
  if (modules_.empty()) {
    module_ = 0;
    return;
  }
  if (modules_.size() == 1 ||
      rng_.Bernoulli(config_.primary_module_probability)) {
    module_ = modules_[0];
  } else {
    module_ = modules_[1 + rng_.NextBelow(modules_.size() - 1)];
  }
}

void WorkloadGenerator::SetTargetRatio(double ratio) {
  OODB_CHECK_GT(ratio, 0.0);
  config_.read_write_ratio = ratio;
  ops_read_ = 0;
  ops_written_ = 0;
}

void WorkloadGenerator::RecordOps(uint64_t logical_reads,
                                  uint64_t logical_writes) {
  ops_read_ += logical_reads;
  ops_written_ += logical_writes;
}

double WorkloadGenerator::AchievedRatio() const {
  return ops_written_ == 0
             ? static_cast<double>(ops_read_)
             : static_cast<double>(ops_read_) /
                   static_cast<double>(ops_written_);
}

obj::ObjectId WorkloadGenerator::PickFrom(
    const std::vector<obj::ObjectId>& list) {
  if (list.empty()) return obj::kInvalidObject;
  // Bounded retry over deleted entries; callers treat kInvalidObject as
  // "fall back to a simpler query".
  for (int attempt = 0; attempt < 8; ++attempt) {
    const obj::ObjectId id = list[rng_.NextBelow(list.size())];
    if (graph_->IsLive(id)) return id;
  }
  return obj::kInvalidObject;
}

TransactionSpec WorkloadGenerator::NextTransaction() {
  // Feedback controller: issue writes only while the achieved logical R/W
  // ratio is above target, so the ratio converges to G regardless of how
  // many logical reads each read transaction triggers.
  PickTransactionModule();
  const bool write = static_cast<double>(ops_read_) >
                     config_.read_write_ratio *
                         (static_cast<double>(ops_written_) + 1.0);
  return write ? MakeWrite() : MakeRead();
}

TransactionSpec WorkloadGenerator::MakeRead() {
  DesignDatabase::Module& m = db_->modules[module_];
  TransactionSpec spec;
  spec.module = module_;
  spec.type = static_cast<QueryType>(read_mix_.Sample(rng_));

  switch (spec.type) {
    case QueryType::kSimpleLookup:
      spec.target = PickFrom(m.objects);
      break;
    case QueryType::kComponentRetrieval:
    case QueryType::kCompositeRetrieval:
      spec.target = PickFrom(m.composites);
      break;
    case QueryType::kDescendantVersions:
    case QueryType::kAncestorVersions:
      spec.target = PickFrom(m.versioned);
      break;
    case QueryType::kCorresponding:
      spec.target = PickFrom(m.corresponding);
      break;
    default:
      break;
  }
  if (spec.target == obj::kInvalidObject) {
    // Module lacks that structure (or entries were deleted): degrade to a
    // simple lookup, as a tool would fall back to a by-name fetch.
    spec.type = QueryType::kSimpleLookup;
    spec.target = PickFrom(m.objects);
  }
  if (spec.target == obj::kInvalidObject && !db_->modules.empty()) {
    // Extremely unlikely: the whole module was deleted; retarget root of
    // module 0.
    spec.target = db_->modules[0].root;
  }
  return spec;
}

TransactionSpec WorkloadGenerator::MakeWrite() {
  DesignDatabase::Module& m = db_->modules[module_];
  TransactionSpec spec;
  spec.module = module_;
  spec.type = QueryType::kObjectWrite;
  spec.write_kind = static_cast<WriteKind>(write_mix_.Sample(rng_));

  switch (spec.write_kind) {
    case WriteKind::kSimpleUpdate:
      spec.target = PickFrom(m.objects);
      break;
    case WriteKind::kStructureWrite:
      spec.target = PickFrom(m.objects);
      if (db_->modules.size() > 1 &&
          rng_.Bernoulli(config_.cross_module_write_probability)) {
        // Library-cell reference into another (usually cold) module.
        size_t other_module = rng_.NextBelow(db_->modules.size());
        if (other_module == module_) {
          other_module = (other_module + 1) % db_->modules.size();
        }
        spec.other = PickFrom(db_->modules[other_module].objects);
      } else {
        spec.other = PickFrom(m.objects);
      }
      if (spec.other == spec.target) spec.other = obj::kInvalidObject;
      break;
    case WriteKind::kInsertObject:
      // New component under an existing composite.
      spec.target = PickFrom(m.composites);
      break;
    case WriteKind::kDeriveVersion:
      spec.target = PickFrom(m.objects);
      break;
    case WriteKind::kDeleteObject:
    case WriteKind::kChurnDelete:  // never mix-sampled; kept for -Wswitch
      spec.target = PickFrom(m.objects);
      break;
  }
  if (spec.target == obj::kInvalidObject) {
    spec.write_kind = WriteKind::kInsertObject;
    spec.target = m.root;
  }
  return spec;
}

}  // namespace oodb::workload
