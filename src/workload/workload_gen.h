#ifndef SEMCLUST_WORKLOAD_WORKLOAD_GEN_H_
#define SEMCLUST_WORKLOAD_WORKLOAD_GEN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "objmodel/object_graph.h"
#include "util/random.h"
#include "workload/db_builder.h"
#include "workload/query.h"
#include "workload/transaction_source.h"
#include "workload/workload_config.h"

/// \file
/// Session and transaction generation (paper §4.1): user sessions of 5-20
/// transactions against a (Zipf-)popular design module, each transaction
/// one of the seven query types. The generator balances reads and writes
/// with a feedback controller so the *logical-operation* read/write ratio
/// converges to the configured parameter G — matching how the paper
/// measures R/W at the buffer-manager level, where one composite retrieval
/// counts as many reads.

namespace oodb::workload {

/// Produces TransactionSpecs for the execution model.
class WorkloadGenerator : public TransactionSource {
 public:
  /// `db` must outlive the generator and is updated externally as the
  /// model applies inserts/deletes.
  WorkloadGenerator(const obj::ObjectGraph* graph, DesignDatabase* db,
                    WorkloadConfig config, uint64_t seed);

  /// Starts a new session: picks the session's working set of modules by
  /// popularity and returns the session length (5-20 transactions).
  int BeginSession() override;

  /// Generates the next transaction of the current session.
  TransactionSpec NextTransaction() override;

  /// Feedback from the execution model: how many logical reads/writes the
  /// last transactions performed. Drives the R/W controller.
  void RecordOps(uint64_t logical_reads, uint64_t logical_writes) override;

  /// Switches the target read/write ratio mid-run (the paper's §3.3
  /// observation: phases of one application span R/W 0.52..170). The
  /// controller's counters reset so the new phase converges to the new
  /// target rather than paying off the old phase's balance.
  void SetTargetRatio(double ratio) override;

  /// The primary module index of the current session.
  size_t current_module() const { return modules_.empty() ? 0 : modules_[0]; }
  /// The session's full working set of modules.
  const std::vector<size_t>& session_modules() const { return modules_; }

  /// Achieved logical R/W ratio so far.
  double AchievedRatio() const override;

  const WorkloadConfig& config() const { return config_; }

 private:
  /// Picks a live object from a list, or kInvalidObject if empty.
  obj::ObjectId PickFrom(const std::vector<obj::ObjectId>& list);

  /// Chooses which of the session's modules the next transaction targets.
  void PickTransactionModule();

  TransactionSpec MakeRead();
  TransactionSpec MakeWrite();

  const obj::ObjectGraph* graph_;
  DesignDatabase* db_;
  WorkloadConfig config_;
  Rng rng_;
  DiscreteDistribution read_mix_;
  DiscreteDistribution write_mix_;
  std::vector<size_t> modules_;  // session working set; [0] is primary
  size_t module_ = 0;            // module of the transaction being built
  uint64_t ops_read_ = 0;
  uint64_t ops_written_ = 0;
};

}  // namespace oodb::workload

#endif  // SEMCLUST_WORKLOAD_WORKLOAD_GEN_H_
