#ifndef SEMCLUST_WORKLOAD_DB_BUILDER_H_
#define SEMCLUST_WORKLOAD_DB_BUILDER_H_

#include <cstdint>
#include <vector>

#include "buffer/buffer_pool.h"
#include "cluster/cluster_manager.h"
#include "objmodel/inheritance.h"
#include "objmodel/object_graph.h"
#include "util/random.h"
#include "workload/workload_config.h"

/// \file
/// Synthetic design-database construction. The database accretes the way a
/// real multi-user CAD repository does: several concurrent checkin streams
/// (one per engineer), each creating one design module at a time —
/// composite first, then its components depth-first, an alternate
/// representation with correspondences, and derived versions — interleaved
/// one object per turn. Objects are placed through the ClusterManager under
/// test, so each clustering policy produces its own physical layout, and
/// arrival-order (No_Clustering) placement naturally scatters modules
/// across the shared append pages.

namespace oodb::workload {

/// Parameters of the generated database.
struct DatabaseSpec {
  /// Total object bytes to create (the DB size knob, Table 4.1 A scaled).
  uint64_t target_bytes = 8ull << 20;
  StructureDensity density = StructureDensity::kMed5;
  /// Interleaved checkin streams (defaults to Table 4.1's 10 users).
  int concurrent_streams = 10;
  /// Mean component-object size in bytes. CAD objects carry geometry;
  /// a few hundred bytes is typical, so a high-density configuration
  /// spans pages even when perfectly clustered.
  uint32_t mean_object_bytes = 320;
  /// Composites carry this much extra (child references etc.).
  uint32_t composite_extra_bytes = 48;
  /// Configuration depth below a module root (1 = flat).
  int hierarchy_depth = 2;
  /// Probability that a non-root slot at depth < hierarchy_depth is itself
  /// a composite.
  double composite_fraction = 0.3;
  /// Number of alternate representations built per module (0 = none);
  /// each corresponds object-by-object to the primary representation root
  /// and its direct components.
  int alt_representations = 1;
  /// Fraction of module objects that receive a derived version chain.
  double version_fraction = 0.12;
  /// Mean extra versions derived per versioned object (geometric).
  double version_chain_mean = 1.6;
  /// Probability that each checkin step is accompanied by one concurrent
  /// read of a random existing page (library lookups, verification scans
  /// by other tools). This keeps realistic pressure on the buffer pool
  /// during accretion: without it, a stream's relative pages would always
  /// be resident and Cluster_within_Buffer would never miss a candidate.
  double interleaved_read_probability = 0.8;
  uint64_t seed = 42;
};

/// The logical catalogue of the built database, consumed by the workload
/// generator. Object lists are maintained by the execution model as the
/// workload inserts and deletes objects.
struct DesignDatabase {
  struct Module {
    obj::ObjectId root = obj::kInvalidObject;
    /// All live objects of the module (any representation or version).
    std::vector<obj::ObjectId> objects;
    /// Objects with configuration components (navigation entry points).
    std::vector<obj::ObjectId> composites;
    /// Objects that have version ancestors or descendants.
    std::vector<obj::ObjectId> versioned;
    /// Objects with correspondence links.
    std::vector<obj::ObjectId> corresponding;
  };

  std::vector<Module> modules;
  obj::TypeId composite_type = obj::kInvalidType;
  obj::TypeId leaf_type = obj::kInvalidType;
  obj::TypeId alt_type = obj::kInvalidType;

  size_t TotalObjects() const;
};

/// Registers the builder's CAD-flavoured types (cell / primitive /
/// netcell) on `lattice` — exposed so tests and benches can build
/// compatible graphs.
struct CadTypes {
  obj::TypeId composite;  ///< "cell": configuration-dominant profile
  obj::TypeId leaf;       ///< "primitive"
  obj::TypeId alt;        ///< "netcell": correspondence-heavy profile
};
CadTypes RegisterCadTypes(obj::TypeLattice& lattice);

namespace internal {
struct PlanStep;  // one step of a module-construction plan (db_builder.cc)
}  // namespace internal

/// Builds the database through `cluster_mgr` (and mirrors write residency
/// into `buffer` when non-null, as the run-time write path would).
class DbBuilder {
 public:
  DbBuilder(obj::ObjectGraph* graph, cluster::ClusterManager* cluster_mgr,
            buffer::BufferPool* buffer, DatabaseSpec spec);
  ~DbBuilder();

  /// Creates modules until `spec.target_bytes` of objects exist.
  DesignDatabase Build(CadTypes types);

  /// Total object bytes created so far.
  uint64_t bytes_created() const { return bytes_created_; }

 private:
  struct StreamState;

  uint32_t SampleObjectSize(bool composite);
  void Place(obj::ObjectId id);
  /// Plans one module as a step script (no side effects on the graph).
  std::vector<internal::PlanStep> PlanModule();
  /// Executes the next step of a stream's plan.
  void ExecuteStep(StreamState& stream);

  obj::ObjectGraph* graph_;
  cluster::ClusterManager* cluster_;
  buffer::BufferPool* buffer_;
  DatabaseSpec spec_;
  Rng rng_;
  uint64_t bytes_created_ = 0;
  obj::InheritanceCostModel inherit_model_;
  CadTypes types_{};
};

}  // namespace oodb::workload

#endif  // SEMCLUST_WORKLOAD_DB_BUILDER_H_
