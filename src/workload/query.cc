#include "workload/query.h"

namespace oodb::workload {

const char* QueryTypeName(QueryType q) {
  switch (q) {
    case QueryType::kSimpleLookup:
      return "simple-lookup";
    case QueryType::kComponentRetrieval:
      return "component-retrieval";
    case QueryType::kCompositeRetrieval:
      return "composite-retrieval";
    case QueryType::kDescendantVersions:
      return "descendant-versions";
    case QueryType::kAncestorVersions:
      return "ancestor-versions";
    case QueryType::kCorresponding:
      return "corresponding-objects";
    case QueryType::kObjectWrite:
      return "object-write";
    case QueryType::kOcbSetLookup:
      return "ocb-set-lookup";
    case QueryType::kOcbSimpleTraversal:
      return "ocb-simple-traversal";
    case QueryType::kOcbHierarchyTraversal:
      return "ocb-hierarchy-traversal";
    case QueryType::kOcbStochasticTraversal:
      return "ocb-stochastic-traversal";
  }
  return "unknown";
}

const char* WriteKindName(WriteKind k) {
  switch (k) {
    case WriteKind::kSimpleUpdate:
      return "simple-update";
    case WriteKind::kStructureWrite:
      return "structure-write";
    case WriteKind::kInsertObject:
      return "insert-object";
    case WriteKind::kDeriveVersion:
      return "derive-version";
    case WriteKind::kDeleteObject:
      return "delete-object";
    case WriteKind::kChurnDelete:
      return "churn-delete";
  }
  return "unknown";
}

}  // namespace oodb::workload
