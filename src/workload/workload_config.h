#ifndef SEMCLUST_WORKLOAD_WORKLOAD_CONFIG_H_
#define SEMCLUST_WORKLOAD_WORKLOAD_CONFIG_H_

#include <array>
#include <cstdint>
#include <string>

#include "workload/query.h"

/// \file
/// Workload control parameters (Table 4.1, parameters F and G) plus the
/// session shape (5-20 transactions per session, paper §4.1).

namespace oodb::workload {

/// Structure density operating levels (parameter F). The level shapes the
/// configuration fan-out of the generated design database: low means every
/// structural retrieval returns <= 3 objects, medium 4..9, high >= 10.
enum class StructureDensity : uint8_t {
  kLow3 = 0,
  kMed5 = 1,
  kHigh10 = 2,
};

const char* StructureDensityName(StructureDensity d);

/// Every density level, in the paper's x-axis order. The experiment grids
/// and the policy registry iterate this list.
inline constexpr StructureDensity kAllStructureDensities[] = {
    StructureDensity::kLow3, StructureDensity::kMed5,
    StructureDensity::kHigh10};

/// Inclusive configuration fan-out range for a density level.
struct FanoutRange {
  int min_fanout = 1;
  int max_fanout = 3;
};

FanoutRange FanoutFor(StructureDensity d);

/// Complete workload description for one experiment cell.
struct WorkloadConfig {
  StructureDensity density = StructureDensity::kMed5;
  /// Parameter G: logical reads per logical write (5 / 10 / 100).
  double read_write_ratio = 10.0;
  /// Session shape (paper §4.1): 5-20 transactions per session.
  int session_min_txns = 5;
  int session_max_txns = 20;
  /// Mean think time between sessions' transactions (Table 4.1, E).
  double think_time_mean_s = 4.0;
  /// Skew of module popularity (Zipf theta in [0,1)): hot design modules.
  double module_skew = 0.6;
  /// Modules a session works across (the design being edited plus the
  /// library modules it references). Transactions pick the primary module
  /// with `primary_module_probability`, otherwise one of the secondaries.
  int session_module_count = 3;
  double primary_module_probability = 0.5;
  /// Relative mix of the six read query types, indexed by QueryType.
  std::array<double, 6> read_mix = {0.25, 0.20, 0.25, 0.10, 0.10, 0.10};
  /// Relative mix of write kinds, indexed by WriteKind.
  std::array<double, kNumWriteKinds> write_mix = {0.35, 0.25, 0.25, 0.10,
                                                  0.05};
  /// Probability that a structure write references an object in another
  /// (usually cold) module — a library-cell reference. These are the
  /// writes whose candidate pages are typically not resident.
  double cross_module_write_probability = 0.3;

  /// Paper-style cell label, e.g. "hi10-100" or "low3-5".
  std::string Label() const;
};

}  // namespace oodb::workload

#endif  // SEMCLUST_WORKLOAD_WORKLOAD_CONFIG_H_
