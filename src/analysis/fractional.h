#ifndef SEMCLUST_ANALYSIS_FRACTIONAL_H_
#define SEMCLUST_ANALYSIS_FRACTIONAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/factorial.h"

/// \file
/// 2^(k-p) fractional factorial designs. The full 2^8 design of Fig 6.1
/// needs 256 simulation runs; a resolution-IV half or quarter fraction
/// estimates all main effects (clear of two-way aliases at resolution >=
/// IV) at a fraction of the cost. Generated factors take the level of the
/// XOR (interaction) of a chosen base-factor subset, the textbook
/// construction (Box, Hunter & Hunter).

namespace oodb::analysis {

/// A 2^(k-p) design: the first k-p factors are the base; each of the last
/// p factors is generated from a base-factor subset (bitmask).
class FractionalDesign {
 public:
  using Runner = FactorialDesign::Runner;

  /// `generators[j]` is the bitmask (over the base factors) whose parity
  /// sets the level of generated factor `k-p+j`. Each generator must be a
  /// non-empty subset of the base factors.
  FractionalDesign(core::ModelConfig base, std::vector<Factor> factors,
                   std::vector<uint32_t> generators, Runner runner = nullptr);

  /// Runs the 2^(k-p) cells.
  void Run();

  size_t num_factors() const { return factors_.size(); }
  size_t num_base_factors() const {
    return factors_.size() - generators_.size();
  }
  size_t num_runs() const { return 1u << num_base_factors(); }

  /// The defining-contrast subgroup (bitmasks over all k factors,
  /// excluding identity). Effects whose subset XORs to a member are
  /// aliased with each other.
  std::vector<uint32_t> DefiningContrasts() const;

  /// The design's resolution: the minimum word length of the defining
  /// contrasts (0 when p = 0).
  int Resolution() const;

  /// Reduces a subset over all k factors to the equivalent base-factor
  /// contrast actually estimated by this fraction.
  uint32_t ReduceToBase(uint32_t subset) const;

  /// The contrast estimate for `subset` (over all k factors). Aliased
  /// subsets return the same estimate by construction.
  double Contrast(uint32_t subset) const;

  /// Main-effect estimates, in factor order. At resolution >= III these
  /// are clear of other main effects; at >= IV also of two-way
  /// interactions.
  std::vector<EffectResult> MainEffects() const;

  /// All effects aliased with `subset` (subsets over all k factors,
  /// excluding `subset` itself), capped at `max_order` words.
  std::vector<std::string> Aliases(uint32_t subset, int max_order = 2) const;

 private:
  std::string SubsetName(uint32_t subset) const;

  core::ModelConfig base_;
  std::vector<Factor> factors_;
  std::vector<uint32_t> generators_;
  Runner runner_;
  std::vector<double> responses_;  // indexed by base-factor mask
  bool ran_ = false;
};

/// A standard resolution-IV 2^(8-4) quarter... (16-run) generator set for
/// the eight control parameters: E=ABC style words over the first four
/// base factors.
std::vector<uint32_t> StandardHalfGenerators8();

}  // namespace oodb::analysis

#endif  // SEMCLUST_ANALYSIS_FRACTIONAL_H_
