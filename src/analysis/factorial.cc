#include "analysis/factorial.h"

#include <algorithm>
#include <cmath>

#include "exec/experiment_runner.h"
#include "util/check.h"

namespace oodb::analysis {

std::vector<Factor> StandardFactors() {
  using core::ModelConfig;
  return {
      {"F:density",
       [](ModelConfig& c, bool high) {
         c.workload.density = high ? workload::StructureDensity::kHigh10
                                   : workload::StructureDensity::kLow3;
         c.database.density = c.workload.density;
       }},
      {"G:rw-ratio",
       [](ModelConfig& c, bool high) {
         c.workload.read_write_ratio = high ? 100 : 5;
       }},
      {"H:clustering",
       [](ModelConfig& c, bool high) {
         c.clustering.pool = high ? cluster::CandidatePool::kWithinDb
                                  : cluster::CandidatePool::kNoClustering;
       }},
      {"I:splitting",
       [](ModelConfig& c, bool high) {
         c.clustering.split = high ? cluster::SplitPolicy::kLinearGreedy
                                   : cluster::SplitPolicy::kNoSplit;
       }},
      {"J:hints",
       [](ModelConfig& c, bool high) { c.clustering.use_hints = high; }},
      {"K:replacement",
       [](ModelConfig& c, bool high) {
         c.replacement = high ? buffer::ReplacementPolicy::kContextSensitive
                              : buffer::ReplacementPolicy::kLru;
       }},
      {"L:buffers",
       [](ModelConfig& c, bool high) {
         c.buffer_pages = high ? c.BufferLarge() : c.BufferSmall();
       }},
      {"M:prefetch",
       [](ModelConfig& c, bool high) {
         c.prefetch = high ? buffer::PrefetchPolicy::kWithinDb
                           : buffer::PrefetchPolicy::kNone;
       }},
  };
}

const char* InteractionClassName(InteractionClass c) {
  switch (c) {
    case InteractionClass::kNone:
      return "none";
    case InteractionClass::kMinor:
      return "minor";
    case InteractionClass::kMajor:
      return "major";
  }
  return "unknown";
}

InteractionClass ClassifyInteraction(const InteractionCell& cell,
                                     double parallel_tolerance) {
  // Two lines over A's level (x in {low, high}): B-low line from low_low
  // to high_low, and B-high line from low_high to high_high.
  const double slope0 = cell.high_low - cell.low_low;
  const double slope1 = cell.high_high - cell.low_high;
  const double scale =
      std::max({std::abs(cell.low_low), std::abs(cell.low_high),
                std::abs(cell.high_low), std::abs(cell.high_high), 1e-12});
  if (std::abs(slope0 - slope1) <= parallel_tolerance * scale) {
    return InteractionClass::kNone;
  }
  // Crossing inside the level range [0, 1]?
  const double gap_at_low = cell.low_high - cell.low_low;
  const double gap_at_high = cell.high_high - cell.high_low;
  if (gap_at_low == 0 || gap_at_high == 0 ||
      (gap_at_low > 0) != (gap_at_high > 0)) {
    return InteractionClass::kMajor;
  }
  return InteractionClass::kMinor;
}

FactorialDesign::FactorialDesign(core::ModelConfig base,
                                 std::vector<Factor> factors, Runner runner)
    : base_(std::move(base)),
      factors_(std::move(factors)),
      runner_(std::move(runner)),
      custom_runner_(runner_ != nullptr) {
  OODB_CHECK(!factors_.empty());
  OODB_CHECK_LE(factors_.size(), 16u);
  if (!runner_) {
    runner_ = [](const core::ModelConfig& cfg) {
      return core::RunCell(cfg).response_time.Mean();
    };
  }
}

void FactorialDesign::set_cell_observer(CellObserver observer) {
  observer_ = std::move(observer);
}

void FactorialDesign::Run() {
  const uint32_t cells = 1u << factors_.size();
  responses_.resize(cells);
  std::vector<core::ModelConfig> cfgs;
  cfgs.reserve(cells);
  for (uint32_t mask = 0; mask < cells; ++mask) {
    core::ModelConfig cfg = base_;
    for (size_t f = 0; f < factors_.size(); ++f) {
      factors_[f].apply(cfg, (mask >> f) & 1u);
    }
    cfgs.push_back(std::move(cfg));
  }
  if (custom_runner_) {
    // Injected runners (tests) keep the legacy serial loop and see the
    // configured seed untouched.
    for (uint32_t mask = 0; mask < cells; ++mask) {
      responses_[mask] = runner_(cfgs[mask]);
    }
  } else {
    exec::ExperimentRunner runner;
    const auto outcomes = runner.Run(cfgs);
    for (uint32_t mask = 0; mask < cells; ++mask) {
      responses_[mask] = outcomes[mask].result.response_time.Mean();
    }
    if (observer_) {
      for (uint32_t mask = 0; mask < cells; ++mask) {
        observer_(mask, cfgs[mask], outcomes[mask].result,
                  outcomes[mask].wall_s);
      }
    }
  }
  ran_ = true;
}

double FactorialDesign::response(uint32_t mask) const {
  OODB_CHECK(ran_);
  OODB_CHECK_LT(mask, responses_.size());
  return responses_[mask];
}

double FactorialDesign::Contrast(uint32_t subset) const {
  OODB_CHECK(ran_);
  // effect(S) = 2/2^k * sum_x r(x) * prod_{i in S} (x_i ? +1 : -1).
  // The product's sign is +1 iff the number of low-level factors in S is
  // even, i.e. popcount(S) - popcount(mask & S) is even.
  const int subset_bits = __builtin_popcount(subset);
  double sum = 0;
  for (uint32_t mask = 0; mask < responses_.size(); ++mask) {
    const int low_bits = subset_bits - __builtin_popcount(mask & subset);
    sum += (low_bits & 1) ? -responses_[mask] : responses_[mask];
  }
  return 2.0 * sum / static_cast<double>(responses_.size());
}

std::string FactorialDesign::SubsetName(uint32_t subset) const {
  std::string name;
  for (size_t f = 0; f < factors_.size(); ++f) {
    if ((subset >> f) & 1u) {
      if (!name.empty()) name += " x ";
      name += factors_[f].name;
    }
  }
  return name;
}

std::vector<EffectResult> FactorialDesign::MainEffects() const {
  std::vector<EffectResult> effects;
  for (size_t f = 0; f < factors_.size(); ++f) {
    effects.push_back(
        EffectResult{factors_[f].name, Contrast(1u << f), 1});
  }
  return effects;
}

std::vector<EffectResult> FactorialDesign::TwoWayInteractions() const {
  std::vector<EffectResult> effects;
  for (size_t a = 0; a < factors_.size(); ++a) {
    for (size_t b = a + 1; b < factors_.size(); ++b) {
      const uint32_t subset = (1u << a) | (1u << b);
      effects.push_back(EffectResult{SubsetName(subset), Contrast(subset), 2});
    }
  }
  return effects;
}

std::vector<EffectResult> FactorialDesign::AllEffects() const {
  std::vector<EffectResult> effects;
  const uint32_t cells = 1u << factors_.size();
  for (uint32_t subset = 1; subset < cells; ++subset) {
    effects.push_back(EffectResult{SubsetName(subset), Contrast(subset),
                                   __builtin_popcount(subset)});
  }
  std::sort(effects.begin(), effects.end(),
            [](const EffectResult& x, const EffectResult& y) {
              return std::abs(x.effect) > std::abs(y.effect);
            });
  return effects;
}

InteractionCell FactorialDesign::Interaction(size_t a, size_t b) const {
  OODB_CHECK(ran_);
  OODB_CHECK_NE(a, b);
  InteractionCell cell;
  int counts[2][2] = {{0, 0}, {0, 0}};
  double sums[2][2] = {{0, 0}, {0, 0}};
  for (uint32_t mask = 0; mask < responses_.size(); ++mask) {
    const int la = (mask >> a) & 1u;
    const int lb = (mask >> b) & 1u;
    sums[la][lb] += responses_[mask];
    ++counts[la][lb];
  }
  cell.low_low = sums[0][0] / counts[0][0];
  cell.low_high = sums[0][1] / counts[0][1];
  cell.high_low = sums[1][0] / counts[1][0];
  cell.high_high = sums[1][1] / counts[1][1];
  return cell;
}

}  // namespace oodb::analysis
