#include "analysis/fractional.h"

#include <algorithm>

#include "util/check.h"

namespace oodb::analysis {

FractionalDesign::FractionalDesign(core::ModelConfig base,
                                   std::vector<Factor> factors,
                                   std::vector<uint32_t> generators,
                                   Runner runner)
    : base_(std::move(base)),
      factors_(std::move(factors)),
      generators_(std::move(generators)),
      runner_(std::move(runner)) {
  OODB_CHECK(!factors_.empty());
  OODB_CHECK_LT(generators_.size(), factors_.size());
  OODB_CHECK_LE(factors_.size(), 20u);
  const uint32_t base_mask =
      (1u << (factors_.size() - generators_.size())) - 1u;
  for (uint32_t g : generators_) {
    OODB_CHECK_NE(g, 0u);
    OODB_CHECK_EQ(g & ~base_mask, 0u);  // subsets of the base factors only
  }
  if (!runner_) {
    runner_ = [](const core::ModelConfig& cfg) {
      return core::RunCell(cfg).response_time.Mean();
    };
  }
}

void FractionalDesign::Run() {
  const size_t b = num_base_factors();
  const uint32_t cells = 1u << b;
  responses_.resize(cells);
  for (uint32_t mask = 0; mask < cells; ++mask) {
    core::ModelConfig cfg = base_;
    for (size_t f = 0; f < b; ++f) {
      factors_[f].apply(cfg, (mask >> f) & 1u);
    }
    for (size_t j = 0; j < generators_.size(); ++j) {
      const bool high = __builtin_popcount(mask & generators_[j]) & 1;
      factors_[b + j].apply(cfg, high);
    }
    responses_[mask] = runner_(cfg);
  }
  ran_ = true;
}

std::vector<uint32_t> FractionalDesign::DefiningContrasts() const {
  // Words: I = generator XOR its generated factor; the subgroup is all
  // XOR combinations of the p words.
  const size_t b = num_base_factors();
  std::vector<uint32_t> words;
  for (size_t j = 0; j < generators_.size(); ++j) {
    words.push_back(generators_[j] | (1u << (b + j)));
  }
  std::vector<uint32_t> subgroup;
  const uint32_t combos = 1u << words.size();
  for (uint32_t c = 1; c < combos; ++c) {
    uint32_t member = 0;
    for (size_t j = 0; j < words.size(); ++j) {
      if ((c >> j) & 1u) member ^= words[j];
    }
    subgroup.push_back(member);
  }
  std::sort(subgroup.begin(), subgroup.end());
  subgroup.erase(std::unique(subgroup.begin(), subgroup.end()),
                 subgroup.end());
  return subgroup;
}

int FractionalDesign::Resolution() const {
  const auto contrasts = DefiningContrasts();
  if (contrasts.empty()) return 0;
  int min_len = 32;
  for (uint32_t c : contrasts) {
    min_len = std::min(min_len, __builtin_popcount(c));
  }
  return min_len;
}

uint32_t FractionalDesign::ReduceToBase(uint32_t subset) const {
  const size_t b = num_base_factors();
  uint32_t reduced = subset & ((1u << b) - 1u);
  for (size_t j = 0; j < generators_.size(); ++j) {
    if ((subset >> (b + j)) & 1u) reduced ^= generators_[j];
  }
  return reduced;
}

double FractionalDesign::Contrast(uint32_t subset) const {
  OODB_CHECK(ran_);
  const uint32_t reduced = ReduceToBase(subset);
  const int bits = __builtin_popcount(reduced);
  double sum = 0;
  for (uint32_t mask = 0; mask < responses_.size(); ++mask) {
    const int low = bits - __builtin_popcount(mask & reduced);
    sum += (low & 1) ? -responses_[mask] : responses_[mask];
  }
  return 2.0 * sum / static_cast<double>(responses_.size());
}

std::vector<EffectResult> FractionalDesign::MainEffects() const {
  std::vector<EffectResult> effects;
  for (size_t f = 0; f < factors_.size(); ++f) {
    effects.push_back(EffectResult{factors_[f].name, Contrast(1u << f), 1});
  }
  return effects;
}

std::string FractionalDesign::SubsetName(uint32_t subset) const {
  std::string name;
  for (size_t f = 0; f < factors_.size(); ++f) {
    if ((subset >> f) & 1u) {
      if (!name.empty()) name += " x ";
      name += factors_[f].name;
    }
  }
  return name.empty() ? "I" : name;
}

std::vector<std::string> FractionalDesign::Aliases(uint32_t subset,
                                                   int max_order) const {
  std::vector<std::string> aliases;
  for (uint32_t word : DefiningContrasts()) {
    const uint32_t partner = subset ^ word;
    if (partner == 0 || partner == subset) continue;
    if (__builtin_popcount(partner) > max_order) continue;
    aliases.push_back(SubsetName(partner));
  }
  std::sort(aliases.begin(), aliases.end());
  return aliases;
}

std::vector<uint32_t> StandardHalfGenerators8() {
  // The textbook 16-run 2^(8-4) resolution-IV design: base factors
  // A,B,C,D (bits 0..3); generated E=BCD, F=ACD, G=ABC, H=ABD.
  return {0b1110, 0b1101, 0b0111, 0b1011};
}

}  // namespace oodb::analysis
