#ifndef SEMCLUST_ANALYSIS_FACTORIAL_H_
#define SEMCLUST_ANALYSIS_FACTORIAL_H_

#include <functional>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/model_config.h"

/// \file
/// Two-level factorial effect analysis (paper §6, Figs 6.1-6.2). Each of
/// the eight control parameters of Table 4.1 gets a low and a high
/// operating level; the full 2^k design is simulated and the Yates
/// transform yields every main and interaction effect on mean response
/// time. Interactions are classified by the paper's parallel-lines test.

namespace oodb::analysis {

/// One two-level factor: a name and how to set its level on a config.
struct Factor {
  std::string name;
  std::function<void(core::ModelConfig&, bool high)> apply;
};

/// The eight control parameters (F..M) at the paper's outer operating
/// levels: density low3/hi10, R/W 5/100, clustering none/no-limit,
/// splitting none/linear, hints no/yes, replacement LRU/context, buffers
/// small/large, prefetch none/within-DB.
std::vector<Factor> StandardFactors();

/// One estimated effect.
struct EffectResult {
  std::string name;  ///< "F:density" or "F:density x K:replacement"
  double effect = 0;  ///< mean response-time change from low to high
  int order = 1;      ///< 1 = main effect, 2 = two-way interaction, ...
};

/// The paper's Fig 6.2 X-Y interaction diagram for a factor pair:
/// responses averaged over all other factors at the four level
/// combinations.
struct InteractionCell {
  double low_low = 0;    ///< A low,  B low
  double low_high = 0;   ///< A low,  B high
  double high_low = 0;   ///< A high, B low
  double high_high = 0;  ///< A high, B high
};

/// Parallel-lines classification (paper §6): parallel lines mean no
/// interaction, crossing lines a strong interaction, non-parallel
/// non-crossing lines a minor interaction.
enum class InteractionClass { kNone = 0, kMinor = 1, kMajor = 2 };

const char* InteractionClassName(InteractionClass c);

InteractionClass ClassifyInteraction(const InteractionCell& cell,
                                     double parallel_tolerance = 0.15);

/// Runs the full 2^k design and computes effects.
class FactorialDesign {
 public:
  /// `runner` maps a configured model to a response value; the default
  /// (set in the constructor) runs the simulation and returns mean
  /// response time. Injectable for tests.
  using Runner = std::function<double(const core::ModelConfig&)>;

  /// Called once per cell after the design runs (default runner only):
  /// the cell's factor mask, its configuration, the full simulation
  /// result, and the wall-clock seconds it took. Invoked on the calling
  /// thread in mask order.
  using CellObserver =
      std::function<void(uint32_t mask, const core::ModelConfig& config,
                         const core::RunResult& result, double wall_s)>;

  FactorialDesign(core::ModelConfig base, std::vector<Factor> factors,
                  Runner runner = nullptr);

  /// Registers an observer for per-cell results; call before Run().
  void set_cell_observer(CellObserver observer);

  /// Simulates all 2^k cells (k <= 16). With the default runner the cells
  /// execute on the exec::ExperimentRunner worker pool
  /// (SEMCLUST_BENCH_JOBS), each under its splitmix64-derived per-cell
  /// seed, so the design's responses are bit-identical at any job count.
  /// An injected runner keeps the legacy serial loop.
  void Run();

  /// Response of the cell whose factor levels are the bits of `mask`.
  double response(uint32_t mask) const;

  size_t num_factors() const { return factors_.size(); }
  const std::vector<Factor>& factors() const { return factors_; }

  /// All main effects, in factor order.
  std::vector<EffectResult> MainEffects() const;

  /// All two-way interaction effects.
  std::vector<EffectResult> TwoWayInteractions() const;

  /// Every contrast of the design (all non-empty factor subsets),
  /// sorted by |effect| descending — the population of blobs in Fig 6.1.
  std::vector<EffectResult> AllEffects() const;

  /// Fig 6.2 data for factors `a` and `b`.
  InteractionCell Interaction(size_t a, size_t b) const;

 private:
  double Contrast(uint32_t subset) const;
  std::string SubsetName(uint32_t subset) const;

  core::ModelConfig base_;
  std::vector<Factor> factors_;
  Runner runner_;
  bool custom_runner_ = false;
  CellObserver observer_;
  std::vector<double> responses_;
  bool ran_ = false;
};

}  // namespace oodb::analysis

#endif  // SEMCLUST_ANALYSIS_FACTORIAL_H_
