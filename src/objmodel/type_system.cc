#include "objmodel/type_system.h"

#include <algorithm>

namespace oodb::obj {

TraversalProfile UniformProfile() { return {1.0, 1.0, 1.0, 1.0}; }

TypeId TypeLattice::DefineType(std::string name, TypeId supertype,
                               uint32_t base_size_bytes,
                               TraversalProfile traversal,
                               std::vector<AttributeDef> attributes) {
  if (supertype != kInvalidType) {
    OODB_CHECK_LT(supertype, types_.size());
  }
  TypeInfo info;
  info.name = std::move(name);
  info.supertype = supertype;
  info.base_size_bytes = base_size_bytes;
  info.traversal = traversal;
  info.attributes = std::move(attributes);
  types_.push_back(std::move(info));
  return static_cast<TypeId>(types_.size() - 1);
}

StatusOr<TypeId> TypeLattice::FindType(std::string_view name) const {
  for (size_t i = 0; i < types_.size(); ++i) {
    if (types_[i].name == name) return static_cast<TypeId>(i);
  }
  return Status::NotFound("type '" + std::string(name) + "'");
}

const TypeInfo& TypeLattice::info(TypeId id) const {
  OODB_CHECK_LT(id, types_.size());
  return types_[id];
}

bool TypeLattice::IsSubtypeOf(TypeId type, TypeId ancestor) const {
  OODB_CHECK_LT(type, types_.size());
  for (TypeId t = type; t != kInvalidType; t = types_[t].supertype) {
    if (t == ancestor) return true;
  }
  return false;
}

const std::vector<AttributeDef>& TypeLattice::ResolveAttributes(
    TypeId type) const {
  OODB_CHECK_LT(type, types_.size());
  if (resolved_valid_.size() < types_.size()) {
    resolved_valid_.resize(types_.size(), 0);
    resolved_cache_.resize(types_.size());
  }
  if (resolved_valid_[type]) return resolved_cache_[type];

  // Collect the supertype chain root-first so nearer definitions override.
  std::vector<TypeId> chain;
  for (TypeId t = type; t != kInvalidType; t = types_[t].supertype) {
    chain.push_back(t);
  }
  std::reverse(chain.begin(), chain.end());

  std::vector<AttributeDef> resolved;
  for (TypeId t : chain) {
    for (const AttributeDef& attr : types_[t].attributes) {
      auto it = std::find_if(
          resolved.begin(), resolved.end(),
          [&](const AttributeDef& r) { return r.name == attr.name; });
      if (it != resolved.end()) {
        *it = attr;  // override inherited definition
      } else {
        resolved.push_back(attr);
      }
    }
  }
  resolved_cache_[type] = std::move(resolved);
  resolved_valid_[type] = 1;
  return resolved_cache_[type];
}

uint32_t TypeLattice::InstanceSize(TypeId type) const {
  uint32_t size = info(type).base_size_bytes;
  for (const AttributeDef& attr : ResolveAttributes(type)) {
    size += attr.size_bytes;
  }
  return size;
}

TraversalProfile TypeLattice::EffectiveTraversal(TypeId type) const {
  OODB_CHECK_LT(type, types_.size());
  for (TypeId t = type; t != kInvalidType; t = types_[t].supertype) {
    const TraversalProfile& p = types_[t].traversal;
    const bool nonzero =
        std::any_of(p.begin(), p.end(), [](double w) { return w > 0; });
    if (nonzero) return p;
  }
  return UniformProfile();
}

}  // namespace oodb::obj
