#ifndef SEMCLUST_OBJMODEL_TYPE_SYSTEM_H_
#define SEMCLUST_OBJMODEL_TYPE_SYSTEM_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "objmodel/object_id.h"
#include "util/status.h"

/// \file
/// The type lattice. Types define attributes (propagated to subtypes through
/// type inheritance) and a *traversal-frequency profile*: the expected
/// relative frequency with which instances of the type are navigated along
/// each structural relationship kind. The profile is the type-level
/// knowledge that newly created instances inherit and the clustering
/// algorithm consumes (paper §2.1: "The interobject access frequencies are
/// inherited from the type at object creation time").

namespace oodb::obj {

/// Per-relationship-kind relative traversal frequencies. Values are
/// non-negative weights; only ratios matter.
using TraversalProfile = std::array<double, kNumRelKinds>;

/// A uniform profile (all kinds equally likely).
TraversalProfile UniformProfile();

/// An attribute defined by a type.
struct AttributeDef {
  std::string name;
  uint32_t size_bytes = 0;
  /// True if descendant versions may inherit this attribute's value from
  /// their version ancestor (instance-to-instance inheritance).
  bool instance_inheritable = false;
  /// Expected reads of this attribute per access of the owning object.
  double read_frequency = 0.0;
  /// Expected updates of the source value per access (drives the
  /// copy-vs-reference decision: copies must be refreshed on update).
  double update_frequency = 0.0;
};

/// Metadata of one representation type.
struct TypeInfo {
  std::string name;
  TypeId supertype = kInvalidType;
  /// Fixed part of an instance, excluding attribute storage.
  uint32_t base_size_bytes = 0;
  /// Attributes defined locally (not including inherited ones).
  std::vector<AttributeDef> attributes;
  /// Traversal-frequency profile declared for this type.
  TraversalProfile traversal;
};

/// The type lattice: a forest of types with attribute and profile
/// inheritance along supertype chains.
class TypeLattice {
 public:
  /// Defines a new type. `supertype` may be kInvalidType for a root type.
  /// Returns the new TypeId.
  TypeId DefineType(std::string name, TypeId supertype,
                    uint32_t base_size_bytes, TraversalProfile traversal,
                    std::vector<AttributeDef> attributes = {});

  /// Looks up a type by name.
  StatusOr<TypeId> FindType(std::string_view name) const;

  const TypeInfo& info(TypeId id) const;
  size_t size() const { return types_.size(); }

  /// True if `type` equals `ancestor` or transitively derives from it.
  bool IsSubtypeOf(TypeId type, TypeId ancestor) const;

  /// All attributes visible on instances of `type`: local attributes plus
  /// those inherited from supertypes. A local attribute with the same name
  /// as an inherited one overrides it (nearest definition wins). The
  /// returned reference stays valid for the lattice's lifetime (resolution
  /// is memoized per type; supertype chains are immutable once defined).
  const std::vector<AttributeDef>& ResolveAttributes(TypeId type) const;

  /// Instance size if every attribute is stored by copy: base size plus the
  /// sizes of all resolved attributes (including inherited definitions —
  /// type inheritance propagates the *definition*; storage is per
  /// instance).
  uint32_t InstanceSize(TypeId type) const;

  /// Effective traversal profile for `type`: its own profile, falling back
  /// to the nearest supertype that declared a non-zero profile.
  TraversalProfile EffectiveTraversal(TypeId type) const;

 private:
  std::vector<TypeInfo> types_;

  // Memoized ResolveAttributes results, one slot per type, filled lazily.
  // Safe to cache forever: DefineType only appends, and a type's supertype
  // chain (hence its resolution) is fixed at definition time. Version
  // derivation resolves the attribute list on every DeriveVersion call, so
  // the repeated chain walk showed up in the database-build profile.
  mutable std::vector<std::vector<AttributeDef>> resolved_cache_;
  mutable std::vector<uint8_t> resolved_valid_;
};

}  // namespace oodb::obj

#endif  // SEMCLUST_OBJMODEL_TYPE_SYSTEM_H_
