#ifndef SEMCLUST_OBJMODEL_OBJECT_ID_H_
#define SEMCLUST_OBJMODEL_OBJECT_ID_H_

#include <cstdint>
#include <string>

/// \file
/// Identifiers and relationship kinds of the Version Data Model
/// (Katz et al.; paper §1). Objects are named by the triple `name[i].type`
/// and interrelated by configuration, version-history, and correspondence
/// relationships, plus instance-to-instance inheritance links.

namespace oodb::obj {

/// Dense object identifier (index into the ObjectGraph's storage).
using ObjectId = uint32_t;
inline constexpr ObjectId kInvalidObject = UINT32_MAX;

/// Identifier of a design-object family: the `name` part of `name[i].type`.
using FamilyId = uint32_t;
inline constexpr FamilyId kInvalidFamily = UINT32_MAX;

/// Identifier of a representation type in the type lattice.
using TypeId = uint16_t;
inline constexpr TypeId kInvalidType = UINT16_MAX;

/// The structural relationship kinds modelled as first-class links.
enum class RelKind : uint8_t {
  kConfiguration = 0,       ///< composite object -> component object
  kVersionHistory = 1,      ///< ancestor version -> descendant version
  kCorrespondence = 2,      ///< equivalence across representation types
  kInstanceInheritance = 3  ///< inheritance source -> inheriting instance
};
inline constexpr int kNumRelKinds = 4;

/// Every relationship kind, in enum order (for name registries and
/// per-kind sweeps).
inline constexpr RelKind kAllRelKinds[] = {
    RelKind::kConfiguration, RelKind::kVersionHistory,
    RelKind::kCorrespondence, RelKind::kInstanceInheritance};

/// Short display name ("configuration", ...).
const char* RelKindName(RelKind kind);

/// Traversal direction along a relationship.
enum class Direction : uint8_t {
  kDown = 0,  ///< configuration: components; version: descendants
  kUp = 1     ///< configuration: composites; version: ancestors
};

/// The external object name triple `name[i].type`, e.g. "ALU[2].layout".
struct VersionedName {
  std::string family;
  int version = 0;
  std::string type;

  /// Renders "family[version].type".
  std::string ToString() const;

  friend bool operator==(const VersionedName&, const VersionedName&) =
      default;
};

}  // namespace oodb::obj

#endif  // SEMCLUST_OBJMODEL_OBJECT_ID_H_
