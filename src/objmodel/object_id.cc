#include "objmodel/object_id.h"

namespace oodb::obj {

const char* RelKindName(RelKind kind) {
  switch (kind) {
    case RelKind::kConfiguration:
      return "configuration";
    case RelKind::kVersionHistory:
      return "version-history";
    case RelKind::kCorrespondence:
      return "correspondence";
    case RelKind::kInstanceInheritance:
      return "instance-inheritance";
  }
  return "unknown";
}

std::string VersionedName::ToString() const {
  return family + "[" + std::to_string(version) + "]." + type;
}

}  // namespace oodb::obj
