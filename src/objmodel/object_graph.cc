#include "objmodel/object_graph.h"

#include <algorithm>

namespace oodb::obj {

FamilyId ObjectGraph::NewFamily(std::string name) {
  family_names_.push_back(std::move(name));
  family_members_.emplace_back();
  return static_cast<FamilyId>(family_names_.size() - 1);
}

ObjectId ObjectGraph::Create(FamilyId family, uint16_t version, TypeId type,
                             uint32_t size_bytes) {
  OODB_CHECK_LT(family, family_names_.size());
  OODB_CHECK_LT(type, lattice_->size());
  OODB_CHECK_GT(size_bytes, 0u);
  DesignObject o;
  o.family = family;
  o.version = version;
  o.type = type;
  o.size_bytes = size_bytes;
  objects_.push_back(std::move(o));
  const auto id = static_cast<ObjectId>(objects_.size() - 1);
  family_members_[family].push_back(id);
  ++live_count_;
  return id;
}

void ObjectGraph::AddEdge(ObjectId obj, ObjectId target, RelKind kind,
                          Direction dir) {
  objects_[obj].edges.push_back(Edge{target, kind, dir});
}

void ObjectGraph::RemoveEdge(ObjectId obj, ObjectId target, RelKind kind,
                             Direction dir) {
  auto& edges = objects_[obj].edges;
  auto it = std::find(edges.begin(), edges.end(), Edge{target, kind, dir});
  if (it != edges.end()) {
    *it = edges.back();
    edges.pop_back();
  }
}

void ObjectGraph::Relate(ObjectId from, ObjectId to, RelKind kind) {
  OODB_CHECK(IsLive(from));
  OODB_CHECK(IsLive(to));
  OODB_CHECK_NE(from, to);
  if (kind == RelKind::kCorrespondence) {
    AddEdge(from, to, kind, Direction::kDown);
    AddEdge(to, from, kind, Direction::kDown);
  } else {
    AddEdge(from, to, kind, Direction::kDown);
    AddEdge(to, from, kind, Direction::kUp);
  }
}

void ObjectGraph::Unrelate(ObjectId from, ObjectId to, RelKind kind) {
  if (kind == RelKind::kCorrespondence) {
    RemoveEdge(from, to, kind, Direction::kDown);
    RemoveEdge(to, from, kind, Direction::kDown);
  } else {
    RemoveEdge(from, to, kind, Direction::kDown);
    RemoveEdge(to, from, kind, Direction::kUp);
  }
}

void ObjectGraph::Remove(ObjectId id) {
  OODB_CHECK(IsLive(id));
  DesignObject& o = objects_[id];
  // Detach the mirror edge held by each neighbour.
  for (const Edge& e : o.edges) {
    const Direction mirror_dir =
        e.kind == RelKind::kCorrespondence
            ? Direction::kDown
            : (e.dir == Direction::kDown ? Direction::kUp : Direction::kDown);
    RemoveEdge(e.target, id, e.kind, mirror_dir);
  }
  o.edges.clear();
  o.deleted = true;
  auto& members = family_members_[o.family];
  members.erase(std::remove(members.begin(), members.end(), id),
                members.end());
  --live_count_;
}

VersionedName ObjectGraph::NameOf(ObjectId id) const {
  const DesignObject& o = object(id);
  return VersionedName{family_names_[o.family], o.version,
                       lattice_->info(o.type).name};
}

void ObjectGraph::Resize(ObjectId id, uint32_t size_bytes) {
  OODB_CHECK(IsLive(id));
  OODB_CHECK_GT(size_bytes, 0u);
  objects_[id].size_bytes = size_bytes;
}

std::vector<ObjectId> ObjectGraph::Neighbors(ObjectId id, RelKind kind,
                                             Direction dir) const {
  std::vector<ObjectId> out;
  ForEachNeighbor(id, kind, dir, [&](ObjectId t) { out.push_back(t); });
  return out;
}

const std::vector<ObjectId>& ObjectGraph::FamilyMembers(
    FamilyId family) const {
  OODB_CHECK_LT(family, family_members_.size());
  return family_members_[family];
}

ObjectId ObjectGraph::LatestVersion(FamilyId family, TypeId type) const {
  ObjectId best = kInvalidObject;
  int best_version = -1;
  for (ObjectId id : FamilyMembers(family)) {
    const DesignObject& o = objects_[id];
    if (o.type == type && !o.deleted && o.version > best_version) {
      best = id;
      best_version = o.version;
    }
  }
  return best;
}

}  // namespace oodb::obj
