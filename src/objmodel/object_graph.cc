#include "objmodel/object_graph.h"

#include <algorithm>

namespace oodb::obj {

FamilyId ObjectGraph::NewFamily(std::string name) {
  family_names_.push_back(std::move(name));
  family_members_.emplace_back();
  return static_cast<FamilyId>(family_names_.size() - 1);
}

ObjectId ObjectGraph::Create(FamilyId family, uint16_t version, TypeId type,
                             uint32_t size_bytes) {
  OODB_CHECK_LT(family, family_names_.size());
  OODB_CHECK_LT(type, lattice_->size());
  OODB_CHECK_GT(size_bytes, 0u);
  DesignObject o;
  o.family = family;
  o.version = version;
  o.type = type;
  o.size_bytes = size_bytes;
  objects_.push_back(o);
  runs_.push_back(EdgeRun{});
  const auto id = static_cast<ObjectId>(objects_.size() - 1);
  family_members_[family].push_back(id);
  ++live_count_;
  return id;
}

void ObjectGraph::AddEdge(ObjectId obj, ObjectId target, RelKind kind,
                          Direction dir) {
  EdgeRun& r = runs_[obj];
  if (r.count == r.capacity) {
    // Grow by relocating the run to the arena tail (doubling capacity).
    const uint32_t new_cap = r.capacity == 0 ? 4 : 2 * r.capacity;
    const auto new_offset = static_cast<uint32_t>(edge_target_.size());
    edge_target_.resize(edge_target_.size() + new_cap);
    edge_meta_.resize(edge_meta_.size() + new_cap);
    std::copy_n(edge_target_.begin() + r.offset, r.count,
                edge_target_.begin() + new_offset);
    std::copy_n(edge_meta_.begin() + r.offset, r.count,
                edge_meta_.begin() + new_offset);
    r.offset = new_offset;
    r.capacity = new_cap;
  }
  edge_target_[r.offset + r.count] = target;
  edge_meta_[r.offset + r.count] = PackMeta(kind, dir);
  ++r.count;
}

void ObjectGraph::RemoveEdge(ObjectId obj, ObjectId target, RelKind kind,
                             Direction dir) {
  EdgeRun& r = runs_[obj];
  const uint8_t want = PackMeta(kind, dir);
  for (uint32_t i = 0; i < r.count; ++i) {
    if (edge_target_[r.offset + i] == target &&
        edge_meta_[r.offset + i] == want) {
      // Swap-with-last, matching the former vector implementation's order
      // semantics exactly.
      edge_target_[r.offset + i] = edge_target_[r.offset + r.count - 1];
      edge_meta_[r.offset + i] = edge_meta_[r.offset + r.count - 1];
      --r.count;
      return;
    }
  }
}

void ObjectGraph::Relate(ObjectId from, ObjectId to, RelKind kind) {
  OODB_CHECK(IsLive(from));
  OODB_CHECK(IsLive(to));
  OODB_CHECK_NE(from, to);
  if (kind == RelKind::kCorrespondence) {
    AddEdge(from, to, kind, Direction::kDown);
    AddEdge(to, from, kind, Direction::kDown);
  } else {
    AddEdge(from, to, kind, Direction::kDown);
    AddEdge(to, from, kind, Direction::kUp);
  }
}

void ObjectGraph::Unrelate(ObjectId from, ObjectId to, RelKind kind) {
  if (kind == RelKind::kCorrespondence) {
    RemoveEdge(from, to, kind, Direction::kDown);
    RemoveEdge(to, from, kind, Direction::kDown);
  } else {
    RemoveEdge(from, to, kind, Direction::kDown);
    RemoveEdge(to, from, kind, Direction::kUp);
  }
}

void ObjectGraph::Remove(ObjectId id) {
  OODB_CHECK(IsLive(id));
  DesignObject& o = objects_[id];
  EdgeRun& r = runs_[id];
  // Detach the mirror edge held by each neighbour. RemoveEdge never
  // touches `id`'s own run (Relate forbids self-edges), so iterating the
  // run while detaching is safe.
  for (uint32_t i = 0; i < r.count; ++i) {
    const uint8_t meta = edge_meta_[r.offset + i];
    const auto kind = static_cast<RelKind>(meta & 0x3);
    const auto dir = static_cast<Direction>(meta >> 2);
    const Direction mirror_dir =
        kind == RelKind::kCorrespondence
            ? Direction::kDown
            : (dir == Direction::kDown ? Direction::kUp : Direction::kDown);
    RemoveEdge(edge_target_[r.offset + i], id, kind, mirror_dir);
  }
  r.count = 0;
  o.deleted = true;
  auto& members = family_members_[o.family];
  members.erase(std::remove(members.begin(), members.end(), id),
                members.end());
  --live_count_;
}

VersionedName ObjectGraph::NameOf(ObjectId id) const {
  const DesignObject& o = object(id);
  return VersionedName{family_names_[o.family], o.version,
                       lattice_->info(o.type).name};
}

void ObjectGraph::Resize(ObjectId id, uint32_t size_bytes) {
  OODB_CHECK(IsLive(id));
  OODB_CHECK_GT(size_bytes, 0u);
  objects_[id].size_bytes = size_bytes;
}

std::vector<ObjectId> ObjectGraph::Neighbors(ObjectId id, RelKind kind,
                                             Direction dir) const {
  std::vector<ObjectId> out;
  ForEachNeighbor(id, kind, dir, [&](ObjectId t) { out.push_back(t); });
  return out;
}

const std::vector<ObjectId>& ObjectGraph::FamilyMembers(
    FamilyId family) const {
  OODB_CHECK_LT(family, family_members_.size());
  return family_members_[family];
}

ObjectId ObjectGraph::LatestVersion(FamilyId family, TypeId type) const {
  ObjectId best = kInvalidObject;
  int best_version = -1;
  for (ObjectId id : FamilyMembers(family)) {
    const DesignObject& o = objects_[id];
    if (o.type == type && !o.deleted && o.version > best_version) {
      best = id;
      best_version = o.version;
    }
  }
  return best;
}

}  // namespace oodb::obj
