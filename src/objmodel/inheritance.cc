#include "objmodel/inheritance.h"

namespace oodb::obj {

double CopyCost(const AttributeDef& attr, const InheritanceCostModel& model) {
  return static_cast<double>(attr.size_bytes) * model.storage_cost_per_byte +
         attr.update_frequency * model.update_propagation_cost;
}

double ReferenceCost(const AttributeDef& attr,
                     const InheritanceCostModel& model) {
  return attr.read_frequency * model.traverse_cost +
         static_cast<double>(model.reference_size_bytes) *
             model.storage_cost_per_byte;
}

ImplChoice ChooseImplementation(const AttributeDef& attr,
                                const InheritanceCostModel& model) {
  return CopyCost(attr, model) <= ReferenceCost(attr, model)
             ? ImplChoice::kByCopy
             : ImplChoice::kByReference;
}

DerivationResult DeriveVersion(ObjectGraph& graph, ObjectId parent,
                               const InheritanceCostModel& model) {
  OODB_CHECK(graph.IsLive(parent));
  // Copy the fields we need: Create() below may reallocate object storage.
  const FamilyId family = graph.object(parent).family;
  const uint16_t parent_version = graph.object(parent).version;
  const TypeId type = graph.object(parent).type;
  const TypeLattice& lattice = graph.lattice();

  DerivationResult result;

  // Size the heir according to the per-attribute implementation choices.
  uint32_t size = lattice.info(type).base_size_bytes;
  bool any_by_reference = false;
  for (const AttributeDef& attr : lattice.ResolveAttributes(type)) {
    if (attr.instance_inheritable &&
        ChooseImplementation(attr, model) == ImplChoice::kByReference) {
      size += model.reference_size_bytes;
      ++result.attributes_by_reference;
      any_by_reference = true;
    } else {
      size += attr.size_bytes;
      ++result.attributes_by_copy;
    }
  }
  if (size == 0) size = lattice.InstanceSize(type);

  const ObjectId heir = graph.Create(
      family, static_cast<uint16_t>(parent_version + 1), type, size);
  graph.Relate(parent, heir, RelKind::kVersionHistory);
  if (any_by_reference) {
    graph.Relate(parent, heir, RelKind::kInstanceInheritance);
  }

  // Default inheritance of correspondence relationships: the heir
  // corresponds to everything its parent corresponded to. The materialised
  // snapshot is required: Relate() below mutates the edge arenas, which
  // would invalidate a live EdgeView over the parent's edges.
  for (ObjectId other : graph.Correspondents(parent)) {
    graph.Relate(heir, other, RelKind::kCorrespondence);
    ++result.correspondences_inherited;
  }

  result.heir = heir;
  return result;
}

}  // namespace oodb::obj
