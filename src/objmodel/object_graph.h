#ifndef SEMCLUST_OBJMODEL_OBJECT_GRAPH_H_
#define SEMCLUST_OBJMODEL_OBJECT_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "objmodel/object_id.h"
#include "objmodel/type_system.h"
#include "util/status.h"

/// \file
/// The design-object graph: typed, versioned objects interrelated by the
/// structural relationships of the Version Data Model. Relationships are
/// first-class: the storage and buffering layers navigate them directly,
/// which is exactly the semantics the paper exploits.
///
/// Edges are stored struct-of-arrays in two shared arenas (targets and
/// packed kind+direction bytes) with one {offset, count, capacity} run per
/// object, so affinity scans and neighbour walks touch contiguous memory
/// instead of chasing one heap-allocated std::vector<Edge> per object
/// (DESIGN.md §12). Append and swap-with-last removal reproduce the edge
/// order of the former per-object vectors exactly, which keeps every
/// downstream iteration — and therefore simulation output — bit-identical.

namespace oodb::obj {

/// One directed structural link incident to an object (materialised view;
/// storage is columnar).
struct Edge {
  ObjectId target = kInvalidObject;
  RelKind kind = RelKind::kConfiguration;
  Direction dir = Direction::kDown;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// A design object instance. Edge storage lives in the owning graph's
/// arenas; see ObjectGraph::edges().
struct DesignObject {
  FamilyId family = kInvalidFamily;
  uint16_t version = 0;
  TypeId type = kInvalidType;
  /// Storage footprint in bytes (base + attribute storage as chosen by the
  /// inheritance engine).
  uint32_t size_bytes = 0;
  bool deleted = false;
};

/// Owns all design objects and their structural links.
///
/// Correspondence is symmetric: Relate(a, b, kCorrespondence) makes each
/// object a kDown-neighbour of the other. The other kinds are directed:
/// configuration points composite->component, version history points
/// ancestor->descendant, instance inheritance points source->heir.
class ObjectGraph {
 public:
  /// Lightweight random-access view of one object's edges, yielding Edge
  /// by value from the columnar arenas. Invalidated by any edge mutation
  /// on the graph (like the former per-object vector, whose iterators a
  /// reallocation invalidated).
  class EdgeView {
   public:
    class Iterator {
     public:
      using value_type = Edge;
      using difference_type = ptrdiff_t;

      Iterator(const ObjectId* target, const uint8_t* meta)
          : target_(target), meta_(meta) {}
      Edge operator*() const {
        return Edge{*target_, static_cast<RelKind>(*meta_ & 0x3),
                    static_cast<Direction>(*meta_ >> 2)};
      }
      Iterator& operator++() {
        ++target_;
        ++meta_;
        return *this;
      }
      friend bool operator==(const Iterator&, const Iterator&) = default;

     private:
      const ObjectId* target_;
      const uint8_t* meta_;
    };

    EdgeView(const ObjectId* target, const uint8_t* meta, size_t count)
        : target_(target), meta_(meta), count_(count) {}

    size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    Edge operator[](size_t i) const {
      OODB_CHECK_LT(i, count_);
      return Edge{target_[i], static_cast<RelKind>(meta_[i] & 0x3),
                  static_cast<Direction>(meta_[i] >> 2)};
    }
    Iterator begin() const { return Iterator(target_, meta_); }
    Iterator end() const { return Iterator(target_ + count_, meta_ + count_); }

   private:
    const ObjectId* target_;
    const uint8_t* meta_;
    size_t count_;
  };

  explicit ObjectGraph(const TypeLattice* lattice) : lattice_(lattice) {}

  ObjectGraph(const ObjectGraph&) = delete;
  ObjectGraph& operator=(const ObjectGraph&) = delete;

  /// Registers an object-name family and returns its id.
  FamilyId NewFamily(std::string name);

  /// Creates an object `family[version].type` of the given size.
  ObjectId Create(FamilyId family, uint16_t version, TypeId type,
                  uint32_t size_bytes);

  /// Adds a structural relationship. Both endpoints must be live.
  void Relate(ObjectId from, ObjectId to, RelKind kind);

  /// Removes a relationship added by Relate (both directions).
  void Unrelate(ObjectId from, ObjectId to, RelKind kind);

  /// Marks the object deleted and detaches all of its links.
  void Remove(ObjectId id);

  /// Number of objects ever created (including deleted ones).
  size_t size() const { return objects_.size(); }
  /// Number of live objects.
  size_t live_count() const { return live_count_; }

  const DesignObject& object(ObjectId id) const {
    OODB_CHECK_LT(id, objects_.size());
    return objects_[id];
  }
  bool IsLive(ObjectId id) const {
    return id < objects_.size() && !objects_[id].deleted;
  }

  /// The object's edges, in insertion order (modulo swap-with-last
  /// removal). The view dangles across edge mutations.
  EdgeView edges(ObjectId id) const {
    OODB_CHECK_LT(id, runs_.size());
    const EdgeRun& r = runs_[id];
    return EdgeView(edge_target_.data() + r.offset,
                    edge_meta_.data() + r.offset, r.count);
  }

  /// Number of edges incident to `id` (any kind/direction).
  size_t EdgeCount(ObjectId id) const {
    OODB_CHECK_LT(id, runs_.size());
    return runs_[id].count;
  }

  /// External name triple, e.g. "ALU[2].layout".
  VersionedName NameOf(ObjectId id) const;

  /// Grows/shrinks the recorded size of an object (attribute updates).
  void Resize(ObjectId id, uint32_t size_bytes);

  /// Calls `fn(ObjectId)` for each `kind`/`dir` neighbour.
  template <typename Fn>
  void ForEachNeighbor(ObjectId id, RelKind kind, Direction dir,
                       Fn&& fn) const {
    OODB_CHECK_LT(id, runs_.size());
    const EdgeRun r = runs_[id];
    const uint8_t want = PackMeta(kind, dir);
    const uint8_t* meta = edge_meta_.data() + r.offset;
    const ObjectId* target = edge_target_.data() + r.offset;
    for (uint32_t i = 0; i < r.count; ++i) {
      if (meta[i] == want) fn(target[i]);
    }
  }

  /// True if `id` has at least one `kind`/`dir` neighbour. Allocation-free
  /// replacement for `Neighbors(...).empty()`.
  bool HasNeighbor(ObjectId id, RelKind kind, Direction dir) const {
    OODB_CHECK_LT(id, runs_.size());
    const EdgeRun r = runs_[id];
    const uint8_t want = PackMeta(kind, dir);
    const uint8_t* meta = edge_meta_.data() + r.offset;
    for (uint32_t i = 0; i < r.count; ++i) {
      if (meta[i] == want) return true;
    }
    return false;
  }

  /// Collected neighbour list (allocates; prefer ForEachNeighbor in hot
  /// paths).
  std::vector<ObjectId> Neighbors(ObjectId id, RelKind kind,
                                  Direction dir) const;

  /// Calls `fn(ObjectId)` for every structurally related object regardless
  /// of kind or direction.
  template <typename Fn>
  void ForEachRelated(ObjectId id, Fn&& fn) const {
    OODB_CHECK_LT(id, runs_.size());
    const EdgeRun r = runs_[id];
    const ObjectId* target = edge_target_.data() + r.offset;
    for (uint32_t i = 0; i < r.count; ++i) fn(target[i]);
  }

  // Navigation shorthands mirroring the paper's vocabulary.
  std::vector<ObjectId> Components(ObjectId id) const {
    return Neighbors(id, RelKind::kConfiguration, Direction::kDown);
  }
  std::vector<ObjectId> Composites(ObjectId id) const {
    return Neighbors(id, RelKind::kConfiguration, Direction::kUp);
  }
  std::vector<ObjectId> Descendants(ObjectId id) const {
    return Neighbors(id, RelKind::kVersionHistory, Direction::kDown);
  }
  std::vector<ObjectId> Ancestors(ObjectId id) const {
    return Neighbors(id, RelKind::kVersionHistory, Direction::kUp);
  }
  std::vector<ObjectId> Correspondents(ObjectId id) const {
    return Neighbors(id, RelKind::kCorrespondence, Direction::kDown);
  }
  std::vector<ObjectId> InheritanceHeirs(ObjectId id) const {
    return Neighbors(id, RelKind::kInstanceInheritance, Direction::kDown);
  }
  std::vector<ObjectId> InheritanceSources(ObjectId id) const {
    return Neighbors(id, RelKind::kInstanceInheritance, Direction::kUp);
  }

  /// Live objects of a family, in creation order.
  const std::vector<ObjectId>& FamilyMembers(FamilyId family) const;

  /// Latest (highest-version) live object of `family` with type `type`,
  /// or kInvalidObject.
  ObjectId LatestVersion(FamilyId family, TypeId type) const;

  const TypeLattice& lattice() const { return *lattice_; }
  const std::string& family_name(FamilyId id) const {
    OODB_CHECK_LT(id, family_names_.size());
    return family_names_[id];
  }
  size_t family_count() const { return family_names_.size(); }

 private:
  /// One object's slice of the edge arenas.
  struct EdgeRun {
    uint32_t offset = 0;
    uint32_t count = 0;
    uint32_t capacity = 0;
  };

  static uint8_t PackMeta(RelKind kind, Direction dir) {
    return static_cast<uint8_t>(static_cast<uint8_t>(kind) |
                                (static_cast<uint8_t>(dir) << 2));
  }

  void AddEdge(ObjectId obj, ObjectId target, RelKind kind, Direction dir);
  void RemoveEdge(ObjectId obj, ObjectId target, RelKind kind,
                  Direction dir);

  const TypeLattice* lattice_;
  std::vector<DesignObject> objects_;
  /// Columnar edge storage: runs_[id] slices the parallel arenas. Runs
  /// grow by doubling, relocating to the arena tail; abandoned slices are
  /// bounded by the usual geometric-growth constant factor.
  std::vector<EdgeRun> runs_;
  std::vector<ObjectId> edge_target_;
  std::vector<uint8_t> edge_meta_;
  std::vector<std::string> family_names_;
  std::vector<std::vector<ObjectId>> family_members_;
  size_t live_count_ = 0;
};

}  // namespace oodb::obj

#endif  // SEMCLUST_OBJMODEL_OBJECT_GRAPH_H_
