#ifndef SEMCLUST_OBJMODEL_OBJECT_GRAPH_H_
#define SEMCLUST_OBJMODEL_OBJECT_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "objmodel/object_id.h"
#include "objmodel/type_system.h"
#include "util/status.h"

/// \file
/// The design-object graph: typed, versioned objects interrelated by the
/// structural relationships of the Version Data Model. Relationships are
/// first-class: the storage and buffering layers navigate them directly,
/// which is exactly the semantics the paper exploits.

namespace oodb::obj {

/// One directed structural link incident to an object.
struct Edge {
  ObjectId target = kInvalidObject;
  RelKind kind = RelKind::kConfiguration;
  Direction dir = Direction::kDown;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// A design object instance.
struct DesignObject {
  FamilyId family = kInvalidFamily;
  uint16_t version = 0;
  TypeId type = kInvalidType;
  /// Storage footprint in bytes (base + attribute storage as chosen by the
  /// inheritance engine).
  uint32_t size_bytes = 0;
  bool deleted = false;
  std::vector<Edge> edges;
};

/// Owns all design objects and their structural links.
///
/// Correspondence is symmetric: Relate(a, b, kCorrespondence) makes each
/// object a kDown-neighbour of the other. The other kinds are directed:
/// configuration points composite->component, version history points
/// ancestor->descendant, instance inheritance points source->heir.
class ObjectGraph {
 public:
  explicit ObjectGraph(const TypeLattice* lattice) : lattice_(lattice) {}

  ObjectGraph(const ObjectGraph&) = delete;
  ObjectGraph& operator=(const ObjectGraph&) = delete;

  /// Registers an object-name family and returns its id.
  FamilyId NewFamily(std::string name);

  /// Creates an object `family[version].type` of the given size.
  ObjectId Create(FamilyId family, uint16_t version, TypeId type,
                  uint32_t size_bytes);

  /// Adds a structural relationship. Both endpoints must be live.
  void Relate(ObjectId from, ObjectId to, RelKind kind);

  /// Removes a relationship added by Relate (both directions).
  void Unrelate(ObjectId from, ObjectId to, RelKind kind);

  /// Marks the object deleted and detaches all of its links.
  void Remove(ObjectId id);

  /// Number of objects ever created (including deleted ones).
  size_t size() const { return objects_.size(); }
  /// Number of live objects.
  size_t live_count() const { return live_count_; }

  const DesignObject& object(ObjectId id) const {
    OODB_CHECK_LT(id, objects_.size());
    return objects_[id];
  }
  bool IsLive(ObjectId id) const {
    return id < objects_.size() && !objects_[id].deleted;
  }

  /// External name triple, e.g. "ALU[2].layout".
  VersionedName NameOf(ObjectId id) const;

  /// Grows/shrinks the recorded size of an object (attribute updates).
  void Resize(ObjectId id, uint32_t size_bytes);

  /// Calls `fn(ObjectId)` for each `kind`/`dir` neighbour.
  template <typename Fn>
  void ForEachNeighbor(ObjectId id, RelKind kind, Direction dir,
                       Fn&& fn) const {
    for (const Edge& e : object(id).edges) {
      if (e.kind == kind && e.dir == dir) fn(e.target);
    }
  }

  /// Collected neighbour list (allocates; prefer ForEachNeighbor in hot
  /// paths).
  std::vector<ObjectId> Neighbors(ObjectId id, RelKind kind,
                                  Direction dir) const;

  /// Calls `fn(ObjectId)` for every structurally related object regardless
  /// of kind or direction.
  template <typename Fn>
  void ForEachRelated(ObjectId id, Fn&& fn) const {
    for (const Edge& e : object(id).edges) fn(e.target);
  }

  // Navigation shorthands mirroring the paper's vocabulary.
  std::vector<ObjectId> Components(ObjectId id) const {
    return Neighbors(id, RelKind::kConfiguration, Direction::kDown);
  }
  std::vector<ObjectId> Composites(ObjectId id) const {
    return Neighbors(id, RelKind::kConfiguration, Direction::kUp);
  }
  std::vector<ObjectId> Descendants(ObjectId id) const {
    return Neighbors(id, RelKind::kVersionHistory, Direction::kDown);
  }
  std::vector<ObjectId> Ancestors(ObjectId id) const {
    return Neighbors(id, RelKind::kVersionHistory, Direction::kUp);
  }
  std::vector<ObjectId> Correspondents(ObjectId id) const {
    return Neighbors(id, RelKind::kCorrespondence, Direction::kDown);
  }
  std::vector<ObjectId> InheritanceHeirs(ObjectId id) const {
    return Neighbors(id, RelKind::kInstanceInheritance, Direction::kDown);
  }
  std::vector<ObjectId> InheritanceSources(ObjectId id) const {
    return Neighbors(id, RelKind::kInstanceInheritance, Direction::kUp);
  }

  /// Live objects of a family, in creation order.
  const std::vector<ObjectId>& FamilyMembers(FamilyId family) const;

  /// Latest (highest-version) live object of `family` with type `type`,
  /// or kInvalidObject.
  ObjectId LatestVersion(FamilyId family, TypeId type) const;

  const TypeLattice& lattice() const { return *lattice_; }
  const std::string& family_name(FamilyId id) const {
    OODB_CHECK_LT(id, family_names_.size());
    return family_names_[id];
  }
  size_t family_count() const { return family_names_.size(); }

 private:
  void AddEdge(ObjectId obj, ObjectId target, RelKind kind, Direction dir);
  void RemoveEdge(ObjectId obj, ObjectId target, RelKind kind,
                  Direction dir);

  const TypeLattice* lattice_;
  std::vector<DesignObject> objects_;
  std::vector<std::string> family_names_;
  std::vector<std::vector<ObjectId>> family_members_;
  size_t live_count_ = 0;
};

}  // namespace oodb::obj

#endif  // SEMCLUST_OBJMODEL_OBJECT_GRAPH_H_
