#ifndef SEMCLUST_OBJMODEL_VALIDATOR_H_
#define SEMCLUST_OBJMODEL_VALIDATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "objmodel/object_graph.h"

/// \file
/// Structure validation / referential integrity. OCT famously provides
/// none — "it is users' responsibility to maintain the legal attachment
/// among objects" — and the paper observes (§3.5) that tools like SPARCS
/// therefore burn enormous I/O scanning whole designs to re-verify
/// invariants the system could maintain. This validator is that system
/// support: it checks the structural invariants of the Version Data Model
/// over an ObjectGraph, so applications can trust them instead of
/// re-deriving them. `bench_ablation_integrity` quantifies the I/O a
/// SPARCS-style scan spends without it.

namespace oodb::obj {

/// What went wrong.
enum class ViolationKind : uint8_t {
  kDanglingEdge = 0,      ///< edge points at a deleted/nonexistent object
  kAsymmetricEdge,        ///< down edge without its mirror (or vice versa)
  kSelfLoop,              ///< object related to itself
  kConfigurationCycle,    ///< composition hierarchy contains a cycle
  kVersionOrder,          ///< descendant's version number <= ancestor's
  kVersionFamilyMismatch, ///< version edge across different families
};

const char* ViolationKindName(ViolationKind kind);

/// One detected violation.
struct Violation {
  ViolationKind kind = ViolationKind::kDanglingEdge;
  ObjectId a = kInvalidObject;
  ObjectId b = kInvalidObject;
  RelKind rel = RelKind::kConfiguration;

  /// Human-readable one-liner.
  std::string Describe(const ObjectGraph& graph) const;
};

/// Validates an object graph's structural invariants.
class StructureValidator {
 public:
  explicit StructureValidator(const ObjectGraph* graph);

  /// Runs every check; stops after `max_violations` findings.
  std::vector<Violation> Validate(size_t max_violations = 64) const;

  /// True if Validate() finds nothing.
  bool IsValid() const { return Validate(1).empty(); }

  // Individual checks (each appends to `out`, bounded by `max`).
  void CheckEdges(std::vector<Violation>& out, size_t max) const;
  void CheckConfigurationAcyclic(std::vector<Violation>& out,
                                 size_t max) const;
  void CheckVersionChains(std::vector<Violation>& out, size_t max) const;

 private:
  const ObjectGraph* graph_;
};

}  // namespace oodb::obj

#endif  // SEMCLUST_OBJMODEL_VALIDATOR_H_
