#ifndef SEMCLUST_OBJMODEL_INHERITANCE_H_
#define SEMCLUST_OBJMODEL_INHERITANCE_H_

#include <cstdint>
#include <vector>

#include "objmodel/object_graph.h"
#include "objmodel/type_system.h"

/// \file
/// Instance-to-instance inheritance (paper §1–2). A descendant version
/// inherits properties, behaviours, and structural relationships from its
/// version ancestor. Inherited attributes are implemented either *by copy*
/// (value duplicated into the heir; larger object, no traversal at read) or
/// *by reference* (heir stores a reference; reads traverse the inheritance
/// link, which becomes a clustering affinity). The choice is made by a cost
/// model, and the resulting reference links change the access frequencies
/// the clustering algorithm sees (paper §2.1).

namespace oodb::obj {

/// Relative costs used by the copy-vs-reference decision.
struct InheritanceCostModel {
  /// Expected cost of dereferencing a by-reference attribute at read time
  /// (it may reside on another page: a potential extra logical I/O).
  double traverse_cost = 1.0;
  /// Amortised cost per byte of duplicated attribute storage.
  double storage_cost_per_byte = 0.004;
  /// Cost per source-value update of refreshing a propagated copy.
  double update_propagation_cost = 2.0;
  /// Size in bytes of a stored reference.
  uint32_t reference_size_bytes = 8;
};

/// How an inherited attribute is implemented in the heir.
enum class ImplChoice : uint8_t { kByCopy = 0, kByReference = 1 };

/// Expected cost of implementing `attr` by copy under `model`.
double CopyCost(const AttributeDef& attr, const InheritanceCostModel& model);

/// Expected cost of implementing `attr` by reference under `model`.
double ReferenceCost(const AttributeDef& attr,
                     const InheritanceCostModel& model);

/// Picks the cheaper implementation (ties go to copy, which never adds
/// run-time traversals).
ImplChoice ChooseImplementation(const AttributeDef& attr,
                                const InheritanceCostModel& model);

/// Outcome of deriving a new version.
struct DerivationResult {
  ObjectId heir = kInvalidObject;
  int attributes_by_copy = 0;
  int attributes_by_reference = 0;
  int correspondences_inherited = 0;
};

/// Derives a new version of `parent` in `graph`:
///  * creates `family[parent.version + 1].type`,
///  * links parent -> heir along version history,
///  * decides copy-vs-reference for each instance-inheritable attribute of
///    the type (by-reference adds an instance-inheritance link parent ->
///    heir and shrinks the heir),
///  * inherits the parent's correspondence relationships by default (the
///    paper's ALU[2].layout / ALU[3].netlist example).
DerivationResult DeriveVersion(ObjectGraph& graph, ObjectId parent,
                               const InheritanceCostModel& model);

}  // namespace oodb::obj

#endif  // SEMCLUST_OBJMODEL_INHERITANCE_H_
