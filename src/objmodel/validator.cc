#include "objmodel/validator.h"

#include <algorithm>

namespace oodb::obj {

const char* ViolationKindName(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kDanglingEdge:
      return "dangling-edge";
    case ViolationKind::kAsymmetricEdge:
      return "asymmetric-edge";
    case ViolationKind::kSelfLoop:
      return "self-loop";
    case ViolationKind::kConfigurationCycle:
      return "configuration-cycle";
    case ViolationKind::kVersionOrder:
      return "version-order";
    case ViolationKind::kVersionFamilyMismatch:
      return "version-family-mismatch";
  }
  return "unknown";
}

std::string Violation::Describe(const ObjectGraph& graph) const {
  std::string out = ViolationKindName(kind);
  out += ": ";
  auto name = [&](ObjectId id) {
    if (graph.IsLive(id)) return graph.NameOf(id).ToString();
    // Build "#<id>" via append: `"#" + std::to_string(id)` trips GCC 12's
    // -Werror=restrict false positive (PR105651) at -O3.
    std::string anonymous("#");
    anonymous += std::to_string(id);
    return anonymous;
  };
  out += name(a);
  if (b != kInvalidObject) {
    out += " -[";
    out += RelKindName(rel);
    out += "]-> ";
    out += name(b);
  }
  return out;
}

StructureValidator::StructureValidator(const ObjectGraph* graph)
    : graph_(graph) {
  OODB_CHECK(graph != nullptr);
}

void StructureValidator::CheckEdges(std::vector<Violation>& out,
                                    size_t max) const {
  const auto n = static_cast<ObjectId>(graph_->size());
  for (ObjectId id = 0; id < n && out.size() < max; ++id) {
    if (!graph_->IsLive(id)) continue;
    for (const Edge e : graph_->edges(id)) {
      if (out.size() >= max) break;
      if (e.target == id) {
        out.push_back(Violation{ViolationKind::kSelfLoop, id, id, e.kind});
        continue;
      }
      if (!graph_->IsLive(e.target)) {
        out.push_back(
            Violation{ViolationKind::kDanglingEdge, id, e.target, e.kind});
        continue;
      }
      // Mirror: correspondence mirrors as kDown on the target; the others
      // mirror with the opposite direction.
      const Direction mirror_dir =
          e.kind == RelKind::kCorrespondence
              ? Direction::kDown
              : (e.dir == Direction::kDown ? Direction::kUp
                                           : Direction::kDown);
      bool mirrored = false;
      for (const Edge m : graph_->edges(e.target)) {
        if (m.target == id && m.kind == e.kind && m.dir == mirror_dir) {
          mirrored = true;
          break;
        }
      }
      if (!mirrored) {
        out.push_back(
            Violation{ViolationKind::kAsymmetricEdge, id, e.target, e.kind});
      }
    }
  }
}

void StructureValidator::CheckConfigurationAcyclic(
    std::vector<Violation>& out, size_t max) const {
  // Iterative three-colour DFS over configuration down-edges.
  const auto n = static_cast<ObjectId>(graph_->size());
  enum : uint8_t { kWhite = 0, kGray = 1, kBlack = 2 };
  std::vector<uint8_t> colour(n, kWhite);

  struct Frame {
    ObjectId node;
    size_t edge_index;
  };
  for (ObjectId root = 0; root < n && out.size() < max; ++root) {
    if (!graph_->IsLive(root) || colour[root] != kWhite) continue;
    std::vector<Frame> stack{{root, 0}};
    colour[root] = kGray;
    while (!stack.empty() && out.size() < max) {
      Frame& frame = stack.back();
      const auto edges = graph_->edges(frame.node);
      bool descended = false;
      while (frame.edge_index < edges.size()) {
        const Edge e = edges[frame.edge_index++];
        if (e.kind != RelKind::kConfiguration || e.dir != Direction::kDown) {
          continue;
        }
        if (!graph_->IsLive(e.target)) continue;
        if (colour[e.target] == kGray) {
          out.push_back(Violation{ViolationKind::kConfigurationCycle,
                                  frame.node, e.target,
                                  RelKind::kConfiguration});
          continue;
        }
        if (colour[e.target] == kWhite) {
          colour[e.target] = kGray;
          stack.push_back(Frame{e.target, 0});
          descended = true;
          break;
        }
      }
      if (!descended && frame.edge_index >= edges.size()) {
        colour[frame.node] = kBlack;
        stack.pop_back();
      }
    }
  }
}

void StructureValidator::CheckVersionChains(std::vector<Violation>& out,
                                            size_t max) const {
  const auto n = static_cast<ObjectId>(graph_->size());
  for (ObjectId id = 0; id < n && out.size() < max; ++id) {
    if (!graph_->IsLive(id)) continue;
    const DesignObject& o = graph_->object(id);
    for (const Edge e : graph_->edges(id)) {
      if (out.size() >= max) break;
      if (e.kind != RelKind::kVersionHistory || e.dir != Direction::kDown) {
        continue;
      }
      if (!graph_->IsLive(e.target)) continue;
      const DesignObject& heir = graph_->object(e.target);
      if (heir.family != o.family) {
        out.push_back(Violation{ViolationKind::kVersionFamilyMismatch, id,
                                e.target, RelKind::kVersionHistory});
      } else if (heir.version <= o.version) {
        out.push_back(Violation{ViolationKind::kVersionOrder, id, e.target,
                                RelKind::kVersionHistory});
      }
    }
  }
}

std::vector<Violation> StructureValidator::Validate(
    size_t max_violations) const {
  std::vector<Violation> out;
  CheckEdges(out, max_violations);
  if (out.size() < max_violations) {
    CheckConfigurationAcyclic(out, max_violations);
  }
  if (out.size() < max_violations) {
    CheckVersionChains(out, max_violations);
  }
  return out;
}

}  // namespace oodb::obj
