#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace oodb {

void StreamingStats::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void StreamingStats::Merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingStats::Mean() const { return count_ == 0 ? 0.0 : mean_; }

double StreamingStats::Variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::StdDev() const { return std::sqrt(Variance()); }

Histogram::Histogram(double lo, double hi, size_t buckets) : lo_(lo) {
  OODB_CHECK_LT(lo, hi);
  OODB_CHECK_GE(buckets, 1u);
  width_ = (hi - lo) / static_cast<double>(buckets);
  counts_.assign(buckets, 0);
}

void Histogram::Add(double x) {
  ++count_;
  sum_ += x;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const auto idx = static_cast<size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[idx];
}

double Histogram::Quantile(double q) const {
  OODB_CHECK_GE(q, 0.0);
  OODB_CHECK_LE(q, 1.0);
  if (count_ == 0) return lo_;
  const double target = q * static_cast<double>(count_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return lo_;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bucket_lo(i) + frac * width_;
    }
    cum = next;
  }
  return lo_ + width_ * static_cast<double>(counts_.size());
}

double Histogram::BucketFraction(size_t i) const {
  OODB_CHECK_LT(i, counts_.size());
  if (count_ == 0) return 0.0;
  return static_cast<double>(counts_[i]) / static_cast<double>(count_);
}

void TimeWeightedStats::Update(double now, double value) {
  if (!started_) {
    started_ = true;
    first_time_ = now;
    last_time_ = now;
    return;
  }
  OODB_CHECK_GE(now, last_time_);
  weighted_sum_ += value * (now - last_time_);
  last_time_ = now;
}

double TimeWeightedStats::Mean() const {
  const double dt = last_time_ - first_time_;
  return dt <= 0.0 ? 0.0 : weighted_sum_ / dt;
}

}  // namespace oodb
