#ifndef SEMCLUST_UTIL_TABLE_PRINTER_H_
#define SEMCLUST_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

/// \file
/// ASCII table output for the benchmark harness. Every bench binary prints
/// the rows/series of the paper table or figure it regenerates through this
/// printer so the output is uniform and diffable.

namespace oodb {

/// Collects rows of string cells and prints them column-aligned.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table (header, separator, rows) to `os`.
  void Print(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` fractional digits.
std::string FormatDouble(double v, int digits = 2);

/// Formats a ratio like "3.1x".
std::string FormatRatio(double v, int digits = 2);

}  // namespace oodb

#endif  // SEMCLUST_UTIL_TABLE_PRINTER_H_
