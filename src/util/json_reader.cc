#include "util/json_reader.h"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace oodb {

bool JsonValue::bool_value() const {
  OODB_CHECK(is_bool());
  return bool_;
}

double JsonValue::number_value() const {
  OODB_CHECK(is_number());
  return number_;
}

uint64_t JsonValue::uint_value() const {
  OODB_CHECK(is_number());
  return std::strtoull(scalar_.c_str(), nullptr, 10);
}

int64_t JsonValue::int_value() const {
  OODB_CHECK(is_number());
  return std::strtoll(scalar_.c_str(), nullptr, 10);
}

const std::string& JsonValue::string_value() const {
  OODB_CHECK(is_string());
  return scalar_;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

struct JsonParser {
  std::string_view s;
  size_t at = 0;

  Status Fail(const std::string& why) const {
    return Status::InvalidArgument("json: " + why + " at offset " +
                                   std::to_string(at));
  }

  void SkipWs() {
    while (at < s.size() &&
           std::isspace(static_cast<unsigned char>(s[at]))) {
      ++at;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (at < s.size() && s[at] == c) {
      ++at;
      return true;
    }
    return false;
  }

  Status ParseString(std::string& out) {
    SkipWs();
    if (at >= s.size() || s[at] != '"') return Fail("expected string");
    ++at;
    while (at < s.size() && s[at] != '"') {
      char c = s[at++];
      if (c == '\\') {
        if (at >= s.size()) return Fail("unterminated escape");
        const char esc = s[at++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'u': {
            // Decode the BMP code point to UTF-8 (scenario files are
            // ASCII in practice; surrogate pairs are out of scope).
            if (at + 4 > s.size()) return Fail("truncated \\u escape");
            char hex[5] = {s[at], s[at + 1], s[at + 2], s[at + 3], 0};
            char* end = nullptr;
            const unsigned long cp = std::strtoul(hex, &end, 16);
            if (end != hex + 4) return Fail("bad \\u escape");
            at += 4;
            if (cp < 0x80) {
              out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              out += static_cast<char>(0xC0 | (cp >> 6));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (cp >> 12));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            }
            continue;
          }
          default:
            return Fail(std::string("unknown escape '\\") + esc + "'");
        }
      }
      out += c;
    }
    if (at >= s.size()) return Fail("unterminated string");
    ++at;  // closing quote
    return Status::Ok();
  }

  Status ParseValue(JsonValue& out) {
    SkipWs();
    if (at >= s.size()) return Fail("unexpected end of input");
    const char c = s[at];
    if (c == '{') {
      ++at;
      out.kind_ = JsonValue::Kind::kObject;
      if (Consume('}')) return Status::Ok();
      do {
        std::string key;
        OODB_RETURN_IF_ERROR(ParseString(key));
        if (!Consume(':')) return Fail("expected ':'");
        JsonValue value;
        OODB_RETURN_IF_ERROR(ParseValue(value));
        out.members_.emplace_back(std::move(key), std::move(value));
      } while (Consume(','));
      if (!Consume('}')) return Fail("expected '}'");
      return Status::Ok();
    }
    if (c == '[') {
      ++at;
      out.kind_ = JsonValue::Kind::kArray;
      if (Consume(']')) return Status::Ok();
      do {
        JsonValue value;
        OODB_RETURN_IF_ERROR(ParseValue(value));
        out.items_.push_back(std::move(value));
      } while (Consume(','));
      if (!Consume(']')) return Fail("expected ']'");
      return Status::Ok();
    }
    if (c == '"') {
      out.kind_ = JsonValue::Kind::kString;
      return ParseString(out.scalar_);
    }
    if (s.size() - at >= 4 && s.compare(at, 4, "true") == 0) {
      at += 4;
      out.kind_ = JsonValue::Kind::kBool;
      out.bool_ = true;
      return Status::Ok();
    }
    if (s.size() - at >= 5 && s.compare(at, 5, "false") == 0) {
      at += 5;
      out.kind_ = JsonValue::Kind::kBool;
      out.bool_ = false;
      return Status::Ok();
    }
    if (s.size() - at >= 4 && s.compare(at, 4, "null") == 0) {
      at += 4;
      out.kind_ = JsonValue::Kind::kNull;
      return Status::Ok();
    }
    // Number.
    const size_t begin = at;
    while (at < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[at])) ||
            s[at] == '-' || s[at] == '+' || s[at] == '.' || s[at] == 'e' ||
            s[at] == 'E')) {
      ++at;
    }
    if (at == begin) return Fail("unexpected character");
    out.kind_ = JsonValue::Kind::kNumber;
    out.scalar_ = std::string(s.substr(begin, at - begin));
    out.number_ = std::strtod(out.scalar_.c_str(), nullptr);
    return Status::Ok();
  }
};

StatusOr<JsonValue> JsonValue::Parse(std::string_view text) {
  JsonParser parser{text};
  JsonValue value;
  OODB_RETURN_IF_ERROR(parser.ParseValue(value));
  parser.SkipWs();
  if (parser.at != text.size()) {
    return parser.Fail("trailing garbage after document");
  }
  return value;
}

}  // namespace oodb
