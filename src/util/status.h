#ifndef SEMCLUST_UTIL_STATUS_H_
#define SEMCLUST_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

/// \file
/// Error handling for semclust. The library is exception-free: fallible
/// operations return `Status` or `StatusOr<T>` (the RocksDB / Arrow idiom).

namespace oodb {

/// Coarse error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,  ///< e.g. page full, buffer pool exhausted of frames
  kFailedPrecondition,
  kInternal,
};

/// Returns a short human-readable name for `code` ("OK", "NotFound", ...).
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus an optional message.
/// Cheap to copy in the OK case (empty message).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A Status or a value of type T. `value()` requires `ok()`.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value and from Status, mirroring absl::StatusOr, so that
  /// `return value;` and `return Status::NotFound(...);` both work.
  StatusOr(T value) : value_(std::move(value)) {}        // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    OODB_CHECK(!status_.ok());  // OK StatusOr must carry a value.
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    OODB_CHECK(ok());
    return *value_;
  }
  T& value() & {
    OODB_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    OODB_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace oodb

/// Propagates a non-OK status to the caller.
#define OODB_RETURN_IF_ERROR(expr)          \
  do {                                      \
    ::oodb::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (0)

#endif  // SEMCLUST_UTIL_STATUS_H_
