#ifndef SEMCLUST_UTIL_JSON_WRITER_H_
#define SEMCLUST_UTIL_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>

/// \file
/// Minimal hand-rolled JSON emission — enough for the benchmark harness's
/// machine-readable records without any external dependency. Doubles are
/// printed with %.17g, so bit-identical values always render to identical
/// text (the property the determinism CI diff relies on).

namespace oodb {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
std::string JsonEscape(std::string_view s);

/// Builds one flat JSON object, key by key, in insertion order.
class JsonObjectWriter {
 public:
  JsonObjectWriter& Add(std::string_view key, std::string_view value);
  JsonObjectWriter& Add(std::string_view key, const char* value);
  JsonObjectWriter& Add(std::string_view key, double value);
  JsonObjectWriter& Add(std::string_view key, uint64_t value);
  JsonObjectWriter& Add(std::string_view key, int64_t value);
  JsonObjectWriter& Add(std::string_view key, int value);
  JsonObjectWriter& Add(std::string_view key, bool value);

  /// The complete object, e.g. `{"a":1,"b":"x"}`.
  std::string str() const { return "{" + body_ + "}"; }

 private:
  void AppendKey(std::string_view key);

  std::string body_;
};

}  // namespace oodb

#endif  // SEMCLUST_UTIL_JSON_WRITER_H_
