#ifndef SEMCLUST_UTIL_JSON_WRITER_H_
#define SEMCLUST_UTIL_JSON_WRITER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

/// \file
/// Minimal hand-rolled JSON emission — enough for the benchmark harness's
/// machine-readable records and the observability trace exporter without
/// any external dependency. Doubles are printed with %.17g, so
/// bit-identical values always render to identical text (the property the
/// determinism CI diff relies on). Non-finite doubles render as `null`
/// (JSON has no NaN/Inf).

namespace oodb {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included). Bytes >= 0x20 — including multi-byte UTF-8 sequences — pass
/// through unchanged.
std::string JsonEscape(std::string_view s);

/// Renders a double the way every writer here does: %.17g, or `null` when
/// non-finite.
std::string JsonNumber(double value);

/// Builds one JSON object, key by key, in insertion order. Nested
/// objects/arrays are spliced in with AddRaw.
class JsonObjectWriter {
 public:
  JsonObjectWriter& Add(std::string_view key, std::string_view value);
  JsonObjectWriter& Add(std::string_view key, const char* value);
  JsonObjectWriter& Add(std::string_view key, double value);
  JsonObjectWriter& Add(std::string_view key, uint64_t value);
  JsonObjectWriter& Add(std::string_view key, int64_t value);
  JsonObjectWriter& Add(std::string_view key, int value);
  JsonObjectWriter& Add(std::string_view key, bool value);
  /// nullopt renders as `null` (zero-sample derived ratios).
  JsonObjectWriter& Add(std::string_view key, std::optional<double> value);
  JsonObjectWriter& AddNull(std::string_view key);
  /// Splices `raw_json` in verbatim as the key's value. The caller is
  /// responsible for `raw_json` being well-formed JSON.
  JsonObjectWriter& AddRaw(std::string_view key, std::string_view raw_json);

  /// The complete object, e.g. `{"a":1,"b":"x"}`.
  std::string str() const { return "{" + body_ + "}"; }

 private:
  void AppendKey(std::string_view key);

  std::string body_;
};

/// Builds one JSON array, element by element.
class JsonArrayWriter {
 public:
  JsonArrayWriter& Add(double value);
  JsonArrayWriter& Add(uint64_t value);
  JsonArrayWriter& Add(std::string_view value);
  /// Splices well-formed JSON in verbatim (nested objects/arrays).
  JsonArrayWriter& AddRaw(std::string_view raw_json);

  bool empty() const { return body_.empty(); }

  /// The complete array, e.g. `[1,2.5,"x"]`.
  std::string str() const { return "[" + body_ + "]"; }

 private:
  void Separate();

  std::string body_;
};

}  // namespace oodb

#endif  // SEMCLUST_UTIL_JSON_WRITER_H_
