#ifndef SEMCLUST_UTIL_CHECK_H_
#define SEMCLUST_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Internal invariant checking. The library does not use exceptions; broken
/// invariants (programming errors, as opposed to expected runtime failures
/// reported via Status) abort the process with a source location.

namespace oodb::internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace oodb::internal

/// Aborts the process if `expr` is false. Enabled in all build types:
/// simulation correctness depends on these invariants and the cost is
/// negligible next to event processing.
#define OODB_CHECK(expr)                                          \
  do {                                                            \
    if (!(expr)) {                                                \
      ::oodb::internal::CheckFailed(#expr, __FILE__, __LINE__);   \
    }                                                             \
  } while (0)

/// Convenience comparison checks.
#define OODB_CHECK_EQ(a, b) OODB_CHECK((a) == (b))
#define OODB_CHECK_NE(a, b) OODB_CHECK((a) != (b))
#define OODB_CHECK_LT(a, b) OODB_CHECK((a) < (b))
#define OODB_CHECK_LE(a, b) OODB_CHECK((a) <= (b))
#define OODB_CHECK_GT(a, b) OODB_CHECK((a) > (b))
#define OODB_CHECK_GE(a, b) OODB_CHECK((a) >= (b))

#endif  // SEMCLUST_UTIL_CHECK_H_
