#ifndef SEMCLUST_UTIL_JSON_READER_H_
#define SEMCLUST_UTIL_JSON_READER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

/// \file
/// Minimal hand-rolled JSON *reading* — the counterpart of
/// util/json_writer for the declarative scenario files, without any
/// external dependency. Parses one document into an ordered DOM
/// (object members keep source order, so serialize-parse round trips are
/// stable). Numbers keep their source text alongside the parsed double,
/// so 64-bit integers (seeds) survive a round trip exactly.

namespace oodb {

/// One parsed JSON value.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses exactly one JSON document (trailing whitespace allowed,
  /// trailing garbage is an error). Errors carry a byte offset.
  static StatusOr<JsonValue> Parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const;
  double number_value() const;
  /// The number's source text, e.g. "12345678901234567"; empty for
  /// non-numbers.
  const std::string& number_text() const { return scalar_; }
  /// Unsigned 64-bit view of a number (parsed from the source text, so
  /// values above 2^53 are exact).
  uint64_t uint_value() const;
  int64_t int_value() const;
  const std::string& string_value() const;

  const std::vector<JsonValue>& items() const { return items_; }
  /// Object members in source order.
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  /// First member named `key`, or nullptr.
  const JsonValue* Find(std::string_view key) const;

  JsonValue() = default;

 private:
  friend struct JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string scalar_;  // number source text or decoded string
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace oodb

#endif  // SEMCLUST_UTIL_JSON_READER_H_
