#include "util/json_writer.h"

#include <cmath>
#include <cstdio>

namespace oodb {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonObjectWriter::AppendKey(std::string_view key) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += JsonEscape(key);
  body_ += "\":";
}

JsonObjectWriter& JsonObjectWriter::Add(std::string_view key,
                                        std::string_view value) {
  AppendKey(key);
  body_ += '"';
  body_ += JsonEscape(value);
  body_ += '"';
  return *this;
}

JsonObjectWriter& JsonObjectWriter::Add(std::string_view key,
                                        const char* value) {
  return Add(key, std::string_view(value));
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no inf/nan
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

JsonObjectWriter& JsonObjectWriter::Add(std::string_view key, double value) {
  AppendKey(key);
  body_ += JsonNumber(value);
  return *this;
}

JsonObjectWriter& JsonObjectWriter::Add(std::string_view key,
                                        uint64_t value) {
  AppendKey(key);
  body_ += std::to_string(value);
  return *this;
}

JsonObjectWriter& JsonObjectWriter::Add(std::string_view key, int64_t value) {
  AppendKey(key);
  body_ += std::to_string(value);
  return *this;
}

JsonObjectWriter& JsonObjectWriter::Add(std::string_view key, int value) {
  return Add(key, static_cast<int64_t>(value));
}

JsonObjectWriter& JsonObjectWriter::Add(std::string_view key, bool value) {
  AppendKey(key);
  body_ += value ? "true" : "false";
  return *this;
}

JsonObjectWriter& JsonObjectWriter::Add(std::string_view key,
                                        std::optional<double> value) {
  return value.has_value() ? Add(key, *value) : AddNull(key);
}

JsonObjectWriter& JsonObjectWriter::AddNull(std::string_view key) {
  AppendKey(key);
  body_ += "null";
  return *this;
}

JsonObjectWriter& JsonObjectWriter::AddRaw(std::string_view key,
                                           std::string_view raw_json) {
  AppendKey(key);
  body_ += raw_json;
  return *this;
}

void JsonArrayWriter::Separate() {
  if (!body_.empty()) body_ += ',';
}

JsonArrayWriter& JsonArrayWriter::Add(double value) {
  Separate();
  body_ += JsonNumber(value);
  return *this;
}

JsonArrayWriter& JsonArrayWriter::Add(uint64_t value) {
  Separate();
  body_ += std::to_string(value);
  return *this;
}

JsonArrayWriter& JsonArrayWriter::Add(std::string_view value) {
  Separate();
  body_ += '"';
  body_ += JsonEscape(value);
  body_ += '"';
  return *this;
}

JsonArrayWriter& JsonArrayWriter::AddRaw(std::string_view raw_json) {
  Separate();
  body_ += raw_json;
  return *this;
}

}  // namespace oodb
