#ifndef SEMCLUST_UTIL_RANDOM_H_
#define SEMCLUST_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

/// \file
/// Deterministic pseudo-random number generation and the distributions used
/// by the workload generator and the simulation model. A seeded xoshiro256**
/// generator keeps every simulation run reproducible bit-for-bit.

namespace oodb {

/// xoshiro256** PRNG (Blackman & Vigna). Fast, high quality, and — unlike
/// std::mt19937 + std::*_distribution — produces identical streams on every
/// platform and standard library, which matters for reproducible experiments.
class Rng {
 public:
  /// Seeds the generator. Two Rng instances with the same seed produce the
  /// same stream.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean);

  /// Zipf-distributed integer in [0, n) with skew theta in [0, 1).
  /// theta = 0 is uniform; larger theta is more skewed. Uses the standard
  /// rejection-free inverse-CDF approximation of Gray et al.
  uint64_t Zipf(uint64_t n, double theta);

  /// Splits off an independent generator (for per-user streams).
  Rng Fork();

 private:
  uint64_t s_[4];
};

/// A single-word splitmix64 stream (Steele, Lea & Vigna). One 64-bit state
/// word, sequential output, and — like Rng — bit-identical on every
/// platform and standard library. Used where a *derivable* stream matters
/// more than period length: per-purpose generation streams (the OCB
/// database generator gives class assignment, sizes, and references each
/// their own forked stream, so adding a draw to one stage can never shift
/// another stage's sequence), and the distribution draws below, which are
/// implemented directly on the raw stream instead of std::*_distribution
/// (whose draw algorithms differ between standard libraries).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Next 64-bit value of the stream.
  uint64_t Next();

  /// Uniform double in [0, 1) (53 bits).
  double NextDouble();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Normally distributed value (Marsaglia's polar method; the second
  /// value of each pair is cached). Requires stddev >= 0.
  double Gaussian(double mean, double stddev);

  /// Zipf-distributed integer in [0, n) with skew theta in [0, 1); same
  /// Gray et al. inverse-CDF mapping as Rng::Zipf.
  uint64_t Zipf(uint64_t n, double theta);

  /// Derives an independent stream: the fork is seeded from the parent's
  /// next output, so `Fork(); Fork()` yields two unrelated sequences and
  /// the parent advances deterministically.
  SplitMix64 Fork() { return SplitMix64(Next()); }

 private:
  uint64_t state_;
  double spare_ = 0;
  bool has_spare_ = false;
};

/// Samples indices 0..n-1 with the given non-negative weights, in O(1) per
/// sample after O(n) setup (Walker's alias method). Used for choosing query
/// types, tool mixes, and relationship kinds by frequency.
class DiscreteDistribution {
 public:
  /// Builds the alias table. `weights` must be non-empty with a positive sum.
  explicit DiscreteDistribution(const std::vector<double>& weights);

  /// Returns an index in [0, size()) with probability proportional to its
  /// weight.
  size_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }

  /// Probability of index i (normalised weight).
  double probability(size_t i) const { return norm_[i]; }

 private:
  std::vector<double> prob_;   // alias-table acceptance probabilities
  std::vector<size_t> alias_;  // alias targets
  std::vector<double> norm_;   // normalised weights, for inspection
};

}  // namespace oodb

#endif  // SEMCLUST_UTIL_RANDOM_H_
