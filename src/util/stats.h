#ifndef SEMCLUST_UTIL_STATS_H_
#define SEMCLUST_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

/// \file
/// Streaming summary statistics and histograms used by the simulation
/// engine's resource monitors and the experiment harness.

namespace oodb {

/// Welford-style streaming mean/variance/min/max accumulator.
class StreamingStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator into this one.
  void Merge(const StreamingStats& other);

  /// Number of observations.
  uint64_t count() const { return count_; }
  /// Sum of observations.
  double sum() const { return sum_; }
  /// Mean, or 0 when empty.
  double Mean() const;
  /// Sample variance (n-1 denominator), or 0 when count < 2.
  double Variance() const;
  /// Sample standard deviation.
  double StdDev() const;
  /// Minimum observation; +inf when empty.
  double min() const { return min_; }
  /// Maximum observation; -inf when empty.
  double max() const { return max_; }

 private:
  uint64_t count_ = 0;
  double sum_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram over [lo, hi) with overflow/underflow buckets.
/// Supports quantile estimation by linear interpolation within a bucket.
class Histogram {
 public:
  /// Divides [lo, hi) into `buckets` equal-width bins. Requires lo < hi and
  /// buckets >= 1.
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);

  uint64_t count() const { return count_; }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }

  /// Quantile in [0, 1]; returns lo/hi bounds for out-of-range mass.
  double Quantile(double q) const;

  /// Fraction of observations falling in [bucket_lo, bucket_hi) for the
  /// i-th bucket.
  double BucketFraction(size_t i) const;

  size_t num_buckets() const { return counts_.size(); }
  double bucket_lo(size_t i) const { return lo_ + width_ * i; }
  double bucket_hi(size_t i) const { return lo_ + width_ * (i + 1); }

 private:
  double lo_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  uint64_t count_ = 0;
  double sum_ = 0;
};

/// Time-weighted average of a piecewise-constant quantity (queue length,
/// utilisation). Integrates value(t) dt between updates.
class TimeWeightedStats {
 public:
  /// Records that the tracked quantity had value `value` from the previous
  /// update time until `now` (simulation seconds, non-decreasing).
  void Update(double now, double value);

  /// Time-weighted mean over [first update, last update].
  double Mean() const;

  double elapsed() const { return last_time_ - first_time_; }

 private:
  bool started_ = false;
  double first_time_ = 0;
  double last_time_ = 0;
  double weighted_sum_ = 0;
};

}  // namespace oodb

#endif  // SEMCLUST_UTIL_STATS_H_
