#include "util/random.h"

#include <cmath>

namespace oodb {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// The splitmix64 step, shared by the SplitMix64 stream class and the
// xoshiro state seeding.
inline uint64_t SplitMix64Step(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Lemire's unbiased bounded sampling over any uniform-u64 source.
template <typename NextU64Fn>
uint64_t LemireBelow(NextU64Fn&& next, uint64_t n) {
  OODB_CHECK_GT(n, 0u);
  uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = -n % n;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

// Gray et al.'s inverse-CDF Zipf mapping for one uniform draw u in [0, 1)
// ("Quickly generating billion-record synthetic databases"). Pure in
// (u, n, theta), so every generator shares the same transform.
uint64_t ZipfFromUniform(double u, uint64_t n, double theta) {
  const double alpha = 1.0 / (1.0 - theta);
  const double zetan = (std::pow(static_cast<double>(n), 1.0 - theta) - 1.0) /
                           (1.0 - theta) +
                       0.5;  // approximate zeta(n, theta)
  const double eta =
      (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
      (1.0 - (std::pow(2.0, 1.0 - theta) - 1.0) / (1.0 - theta) / zetan);
  const double uz = u * zetan;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta)) return 1;
  uint64_t v = static_cast<uint64_t>(
      static_cast<double>(n) * std::pow(eta * u - eta + 1.0, alpha));
  if (v >= n) v = n - 1;
  return v;
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64Step(x);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBelow(uint64_t n) {
  return LemireBelow([this] { return NextU64(); }, n);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  OODB_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Exponential(double mean) {
  OODB_CHECK_GT(mean, 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

uint64_t Rng::Zipf(uint64_t n, double theta) {
  OODB_CHECK_GT(n, 0u);
  OODB_CHECK_GE(theta, 0.0);
  OODB_CHECK_LT(theta, 1.0);
  if (theta == 0.0) return NextBelow(n);
  return ZipfFromUniform(NextDouble(), n, theta);
}

Rng Rng::Fork() { return Rng(NextU64()); }

uint64_t SplitMix64::Next() { return SplitMix64Step(state_); }

double SplitMix64::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t SplitMix64::NextBelow(uint64_t n) {
  return LemireBelow([this] { return Next(); }, n);
}

int64_t SplitMix64::UniformInt(int64_t lo, int64_t hi) {
  OODB_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double SplitMix64::Gaussian(double mean, double stddev) {
  OODB_CHECK_GE(stddev, 0.0);
  if (has_spare_) {
    has_spare_ = false;
    return mean + stddev * spare_;
  }
  // Marsaglia's polar method: only sqrt and log, whose results are stable
  // across libms in practice (unlike std::normal_distribution, whose draw
  // *algorithm* differs between standard libraries).
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double scale = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * scale;
  has_spare_ = true;
  return mean + stddev * u * scale;
}

uint64_t SplitMix64::Zipf(uint64_t n, double theta) {
  OODB_CHECK_GT(n, 0u);
  OODB_CHECK_GE(theta, 0.0);
  OODB_CHECK_LT(theta, 1.0);
  if (theta == 0.0) return NextBelow(n);
  return ZipfFromUniform(NextDouble(), n, theta);
}

DiscreteDistribution::DiscreteDistribution(
    const std::vector<double>& weights) {
  OODB_CHECK(!weights.empty());
  const size_t n = weights.size();
  double sum = 0;
  for (double w : weights) {
    OODB_CHECK_GE(w, 0.0);
    sum += w;
  }
  OODB_CHECK_GT(sum, 0.0);

  norm_.resize(n);
  prob_.resize(n);
  alias_.resize(n);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    norm_[i] = weights[i] / sum;
    scaled[i] = norm_[i] * static_cast<double>(n);
  }

  std::vector<size_t> small, large;
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    size_t s = small.back();
    small.pop_back();
    size_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (size_t i : large) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
  for (size_t i : small) {  // numerical leftovers
    prob_[i] = 1.0;
    alias_[i] = i;
  }
}

size_t DiscreteDistribution::Sample(Rng& rng) const {
  const size_t i = rng.NextBelow(prob_.size());
  return rng.NextDouble() < prob_[i] ? i : alias_[i];
}

}  // namespace oodb
