#include "txlog/recovery.h"

#include <algorithm>

namespace oodb::txlog {

const char* LogRecordTypeName(LogRecordType type) {
  switch (type) {
    case LogRecordType::kBeforeImage:
      return "before-image";
    case LogRecordType::kRedo:
      return "redo";
    case LogRecordType::kCommit:
      return "commit";
  }
  return "unknown";
}

RecoveryAnalyzer::RecoveryAnalyzer(const std::vector<LogRecord>* journal)
    : journal_(journal) {
  OODB_CHECK(journal != nullptr);
}

Status RecoveryAnalyzer::CheckWalInvariants() const {
  std::unordered_map<TxnId, std::unordered_set<store::PageId>> imaged;
  std::unordered_set<TxnId> committed;
  Lsn expected_lsn = 0;
  for (const LogRecord& r : *journal_) {
    if (r.lsn != expected_lsn) {
      return Status::Internal("non-dense LSN at " + std::to_string(r.lsn));
    }
    ++expected_lsn;
    if (committed.count(r.txn) > 0) {
      return Status::FailedPrecondition(
          "txn " + std::to_string(r.txn) + " logs after its commit");
    }
    switch (r.type) {
      case LogRecordType::kBeforeImage:
        imaged[r.txn].insert(r.page);
        break;
      case LogRecordType::kRedo:
        if (r.page != store::kInvalidPage &&
            imaged[r.txn].count(r.page) == 0) {
          return Status::FailedPrecondition(
              "redo for page " + std::to_string(r.page) + " of txn " +
              std::to_string(r.txn) + " precedes its before-image");
        }
        break;
      case LogRecordType::kCommit:
        committed.insert(r.txn);
        break;
    }
  }
  return Status::Ok();
}

RecoveryPlan RecoveryAnalyzer::AnalyzeCrash(Lsn durable_lsn) const {
  RecoveryPlan plan;
  std::unordered_set<TxnId> winners;
  std::unordered_set<TxnId> seen;
  // Pass 1 (analysis): which transactions have a durable commit.
  for (const LogRecord& r : *journal_) {
    if (r.lsn > durable_lsn) {
      ++plan.lost_records;
      continue;
    }
    seen.insert(r.txn);
    if (r.type == LogRecordType::kCommit) winners.insert(r.txn);
  }
  // Pass 2 (redo/undo sets) over the durable prefix.
  std::unordered_set<store::PageId> redo, undo;
  for (const LogRecord& r : *journal_) {
    if (r.lsn > durable_lsn) break;
    if (r.page == store::kInvalidPage) continue;
    if (winners.count(r.txn) > 0) {
      if (r.type == LogRecordType::kRedo) redo.insert(r.page);
    } else {
      if (r.type == LogRecordType::kBeforeImage) undo.insert(r.page);
    }
  }
  for (TxnId t : seen) {
    (winners.count(t) > 0 ? plan.winners : plan.losers).push_back(t);
  }
  plan.redo_pages.assign(redo.begin(), redo.end());
  plan.undo_pages.assign(undo.begin(), undo.end());
  std::sort(plan.winners.begin(), plan.winners.end());
  std::sort(plan.losers.begin(), plan.losers.end());
  std::sort(plan.redo_pages.begin(), plan.redo_pages.end());
  std::sort(plan.undo_pages.begin(), plan.undo_pages.end());
  return plan;
}

}  // namespace oodb::txlog
