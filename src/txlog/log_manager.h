#ifndef SEMCLUST_TXLOG_LOG_MANAGER_H_
#define SEMCLUST_TXLOG_LOG_MANAGER_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "obs/trace_sink.h"
#include "storage/page.h"
#include "util/check.h"

/// \file
/// Transaction logging (paper §4.1): a circular in-memory log buffer whose
/// records are sized by the created/modified object, flushed to disk when
/// full. Before-images are physiological — the *first* update a transaction
/// makes to a page logs a page-sized before-image; later updates to the
/// same page within that transaction log only object-sized redo records.
/// This is the mechanism behind Fig 5.5: clustering co-locates a
/// transaction's updates, so fewer pages are before-imaged and fewer log
/// flushes occur.

namespace oodb::txlog {

/// Transaction identity as seen by the log.
using TxnId = uint64_t;

/// Log sequence number: a record's index in the journal.
using Lsn = uint64_t;

/// Record types appended by the LogManager.
enum class LogRecordType : uint8_t {
  kBeforeImage = 0,  ///< page-sized physiological before-image
  kRedo = 1,         ///< object-sized redo record
  kCommit = 2,       ///< transaction commit
};

const char* LogRecordTypeName(LogRecordType type);

/// One journaled record (see LogManager::EnableJournal).
struct LogRecord {
  Lsn lsn = 0;
  LogRecordType type = LogRecordType::kRedo;
  TxnId txn = 0;
  store::PageId page = store::kInvalidPage;  // invalid for commit records
  uint32_t payload_bytes = 0;
};

/// The log manager. Append operations return how many physical log-flush
/// I/Os the caller owes (the caller charges them to the I/O subsystem).
class LogManager {
 public:
  /// `buffer_bytes` is the circular log-buffer capacity; `page_size_bytes`
  /// sizes before-image records; `record_header_bytes` is the fixed
  /// overhead per record.
  LogManager(uint32_t buffer_bytes, uint32_t page_size_bytes,
             uint32_t record_header_bytes = 32);

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Starts tracking a transaction. Ids must not be reused while active.
  void Begin(TxnId txn);

  /// Logs a create/update of an object of `object_size` living on `page`.
  /// Returns the number of log-flush I/Os triggered (0 or 1).
  int LogWrite(TxnId txn, store::PageId page, uint32_t object_size);

  /// Logs a commit record and forgets the transaction's page set.
  /// Returns log-flush I/Os triggered (0 or 1; 1 more if `force`).
  int Commit(TxnId txn, bool force = false);

  /// Abandons a transaction without a commit record.
  void Abort(TxnId txn);

  /// The pages an active transaction has logged writes against, sorted by
  /// page id. The rollback path (src/cc/) walks this to undo dirty work;
  /// sorting keeps the iteration order independent of the hash layout of
  /// the internal page set.
  std::vector<store::PageId> TouchedPages(TxnId txn) const;

  uint64_t records_appended() const { return records_; }
  uint64_t before_images() const { return before_images_; }
  uint64_t bytes_appended() const { return bytes_appended_; }
  /// Physical I/Os caused by log flushes.
  uint64_t flush_count() const { return flushes_; }
  uint32_t buffered_bytes() const { return buffered_; }

  /// Zeroes counters (between warmup and measurement); active-transaction
  /// state is preserved. The journal, if enabled, is cleared too.
  void ResetCounters();

  /// Starts journaling every record (LSN, type, txn, page, size) for
  /// recovery analysis. Off by default: the simulation only needs the
  /// counters.
  void EnableJournal() { journal_enabled_ = true; }

  /// The journaled records (empty unless EnableJournal was called).
  const std::vector<LogRecord>& journal() const { return journal_; }

  /// The LSN of the last record that has been flushed to disk (the
  /// durable horizon). Records after it live in the volatile buffer.
  /// Returns false via the bool when nothing has been flushed yet.
  std::pair<uint64_t, bool> durable_lsn() const {
    return {durable_lsn_, any_flush_};
  }

  /// Attaches an event sink (may be null). Every log flush then records a
  /// kLogFlush event carrying the bytes and record count flushed.
  void set_trace(obs::TraceSink* trace) { trace_ = trace; }

 private:
  /// Appends a record of `payload` bytes; returns flush I/Os (0 or 1).
  int Append(uint32_t payload);
  void Journal(LogRecordType type, TxnId txn, store::PageId page,
               uint32_t payload);

  uint32_t capacity_;
  uint32_t page_size_;
  uint32_t header_;
  uint32_t buffered_ = 0;

  std::unordered_map<TxnId, std::unordered_set<store::PageId>> touched_;

  uint64_t records_ = 0;
  uint64_t before_images_ = 0;
  uint64_t bytes_appended_ = 0;
  uint64_t flushes_ = 0;

  bool journal_enabled_ = false;
  std::vector<LogRecord> journal_;
  uint64_t durable_lsn_ = 0;
  bool any_flush_ = false;
  obs::TraceSink* trace_ = nullptr;
  uint64_t records_at_last_flush_ = 0;
};

}  // namespace oodb::txlog

#endif  // SEMCLUST_TXLOG_LOG_MANAGER_H_
