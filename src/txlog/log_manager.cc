#include "txlog/log_manager.h"

#include <algorithm>

namespace oodb::txlog {

LogManager::LogManager(uint32_t buffer_bytes, uint32_t page_size_bytes,
                       uint32_t record_header_bytes)
    : capacity_(buffer_bytes),
      page_size_(page_size_bytes),
      header_(record_header_bytes) {
  OODB_CHECK_GT(buffer_bytes, 0u);
  OODB_CHECK_GT(page_size_bytes, 0u);
  // A before-image record must fit in the buffer.
  OODB_CHECK_GE(buffer_bytes, page_size_bytes + record_header_bytes);
}

void LogManager::Begin(TxnId txn) {
  const bool inserted = touched_.emplace(txn, std::unordered_set<store::PageId>{}).second;
  OODB_CHECK(inserted);
}

int LogManager::Append(uint32_t payload) {
  const uint32_t record = header_ + payload;
  int flushes = 0;
  if (buffered_ + record > capacity_) {
    // Circular buffer full: flush it (one physical write of the log tail).
    ++flushes_;
    ++flushes;
    if (trace_ != nullptr) {
      trace_->Record(obs::Subsystem::kTxlog, obs::TraceEventType::kLogFlush,
                     buffered_, records_ - records_at_last_flush_);
    }
    records_at_last_flush_ = records_;
    buffered_ = 0;
    if (records_ > 0) {
      // Everything appended so far is on disk.
      durable_lsn_ = records_ - 1;
      any_flush_ = true;
    }
  }
  buffered_ += record;
  ++records_;
  bytes_appended_ += record;
  return flushes;
}

void LogManager::Journal(LogRecordType type, TxnId txn, store::PageId page,
                         uint32_t payload) {
  if (!journal_enabled_) return;
  LogRecord r;
  r.lsn = journal_.size();
  r.type = type;
  r.txn = txn;
  r.page = page;
  r.payload_bytes = payload;
  journal_.push_back(r);
}

int LogManager::LogWrite(TxnId txn, store::PageId page,
                         uint32_t object_size) {
  auto it = touched_.find(txn);
  OODB_CHECK(it != touched_.end());
  int flushes = 0;
  if (it->second.insert(page).second) {
    // First touch of this page by this transaction: page before-image.
    ++before_images_;
    Journal(LogRecordType::kBeforeImage, txn, page,
            page_size_);
    flushes += Append(page_size_);
  }
  Journal(LogRecordType::kRedo, txn, page,
          object_size);
  flushes += Append(object_size);
  return flushes;
}

int LogManager::Commit(TxnId txn, bool force) {
  auto it = touched_.find(txn);
  OODB_CHECK(it != touched_.end());
  touched_.erase(it);
  Journal(LogRecordType::kCommit, txn, store::kInvalidPage, 16);
  int flushes = Append(/*payload=*/16);  // commit record
  if (force && buffered_ > 0) {
    ++flushes_;
    ++flushes;
    if (trace_ != nullptr) {
      trace_->Record(obs::Subsystem::kTxlog, obs::TraceEventType::kLogFlush,
                     buffered_, records_ - records_at_last_flush_);
    }
    records_at_last_flush_ = records_;
    buffered_ = 0;
    durable_lsn_ = records_ - 1;
    any_flush_ = true;
  }
  return flushes;
}

std::vector<store::PageId> LogManager::TouchedPages(TxnId txn) const {
  auto it = touched_.find(txn);
  OODB_CHECK(it != touched_.end());
  std::vector<store::PageId> pages(it->second.begin(), it->second.end());
  std::sort(pages.begin(), pages.end());
  return pages;
}

void LogManager::Abort(TxnId txn) {
  auto it = touched_.find(txn);
  OODB_CHECK(it != touched_.end());
  touched_.erase(it);
}

void LogManager::ResetCounters() {
  records_ = before_images_ = bytes_appended_ = flushes_ = 0;
  journal_.clear();
  durable_lsn_ = 0;
  any_flush_ = false;
}

}  // namespace oodb::txlog
