#ifndef SEMCLUST_TXLOG_RECOVERY_H_
#define SEMCLUST_TXLOG_RECOVERY_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/page.h"
#include "txlog/log_manager.h"
#include "util/status.h"

/// \file
/// Log-record journal and crash-recovery analysis. The paper's model logs
/// before-images and redo records ("a log record is constructed based on
/// the size of the newly created or modified object"); this module makes
/// those records first-class so the write-ahead invariants can be checked
/// and a crash point analysed: which transactions were committed (redo)
/// vs in-flight (undo via before-images), and which pages each set
/// touches.

namespace oodb::txlog {

/// The outcome of analysing a journal prefix (a crash point).
struct RecoveryPlan {
  /// Transactions whose commit record is durable: replay their redo
  /// records.
  std::vector<TxnId> winners;
  /// Transactions without a durable commit: restore their before-images.
  std::vector<TxnId> losers;
  /// Pages to redo (from winners), deduplicated.
  std::vector<store::PageId> redo_pages;
  /// Pages to restore from before-images (from losers), deduplicated.
  std::vector<store::PageId> undo_pages;
  /// Records that were in the volatile tail (not durable) at the crash.
  uint64_t lost_records = 0;
};

/// Analyses a journal as written by LogManager (see
/// LogManager::EnableJournal).
class RecoveryAnalyzer {
 public:
  explicit RecoveryAnalyzer(const std::vector<LogRecord>* journal);

  /// Verifies the write-ahead invariants over the whole journal:
  ///  * the first record a transaction writes for a page is its
  ///    before-image (physiological WAL);
  ///  * no transaction logs after its commit record;
  ///  * LSNs are dense and increasing.
  Status CheckWalInvariants() const;

  /// Computes the recovery plan for a crash after `durable_lsn` (every
  /// record with lsn <= durable_lsn is on disk; later ones are lost).
  RecoveryPlan AnalyzeCrash(Lsn durable_lsn) const;

 private:
  const std::vector<LogRecord>* journal_;
};

}  // namespace oodb::txlog

#endif  // SEMCLUST_TXLOG_RECOVERY_H_
