#ifndef SEMCLUST_CLUSTER_AFFINITY_H_
#define SEMCLUST_CLUSTER_AFFINITY_H_

#include <array>
#include <vector>

#include "objmodel/object_graph.h"
#include "objmodel/type_system.h"

/// \file
/// Inter-object access-frequency model. The static prior comes from the
/// type lattice (instances inherit their type's traversal-frequency profile
/// at creation time, paper §2.1); a run-time component learns the actually
/// observed traversal mix per type so the reclustering algorithm adapts as
/// an application's phases change (paper §3.3 observes R/W and access mixes
/// vary across phases of the same tool).
///
/// Threading: an AffinityModel belongs to exactly one simulation cell (one
/// EngineeringDbModel); it is never shared across cells or threads. The
/// type-state table is sized once, in the constructor, from the lattice —
/// every type must therefore be registered before the model is built.

namespace oodb::cluster {

/// Blended static + learned traversal frequencies per (type, kind).
class AffinityModel {
 public:
  /// `learned_share` in [0, 1] is the weight of the learned component once
  /// enough observations accumulate. The per-type state table is built
  /// eagerly here for every type currently in `lattice` (priors included),
  /// so the const accessors below never resize or initialise anything.
  explicit AffinityModel(const obj::TypeLattice* lattice,
                         double learned_share = 0.5);

  /// Records that an application navigated from an instance of `type`
  /// along `kind`. Invalidates the cached weights of `type`.
  void RecordTraversal(obj::TypeId type, obj::RelKind kind);

  /// Affinity weight for navigating from an instance of `type` along
  /// `kind`: the type prior blended with the learned distribution.
  /// Priors are normalised so weights across kinds sum to ~1 per type.
  /// The blend is cached per type between RecordTraversal calls — the hot
  /// path of candidate scoring recomputes nothing.
  double Weight(obj::TypeId type, obj::RelKind kind) const;

  /// Affinity contribution of one structural edge for clustering purposes:
  /// the weight of `edge.kind` as seen from `from`'s type. Instance-
  /// inheritance edges additionally count the dereference traffic of
  /// by-reference attributes.
  double EdgeWeight(const obj::ObjectGraph& graph, obj::ObjectId from,
                    const obj::Edge& edge) const;

  uint64_t observations(obj::TypeId type) const;

 private:
  struct TypeState {
    std::array<double, obj::kNumRelKinds> prior{};   // normalised
    std::array<uint64_t, obj::kNumRelKinds> counts{};
    uint64_t total_count = 0;
    /// Blended prior+learned weights, valid while `cache_valid`. Mutable:
    /// the cache is refreshed inside const Weight() on first use after an
    /// invalidation (the model is per-cell, so no synchronisation needed).
    mutable std::array<double, obj::kNumRelKinds> cached_weights{};
    mutable bool cache_valid = false;
  };

  const TypeState& StateFor(obj::TypeId type) const;
  /// Recomputes `cached_weights` for one state.
  void RefreshCache(const TypeState& s) const;

  const obj::TypeLattice* lattice_;
  double learned_share_;
  std::vector<TypeState> states_;  // one per lattice type, fixed size
};

}  // namespace oodb::cluster

#endif  // SEMCLUST_CLUSTER_AFFINITY_H_
