#ifndef SEMCLUST_CLUSTER_AFFINITY_H_
#define SEMCLUST_CLUSTER_AFFINITY_H_

#include <array>
#include <vector>

#include "objmodel/object_graph.h"
#include "objmodel/type_system.h"

/// \file
/// Inter-object access-frequency model. The static prior comes from the
/// type lattice (instances inherit their type's traversal-frequency profile
/// at creation time, paper §2.1); a run-time component learns the actually
/// observed traversal mix per type so the reclustering algorithm adapts as
/// an application's phases change (paper §3.3 observes R/W and access mixes
/// vary across phases of the same tool).

namespace oodb::cluster {

/// Blended static + learned traversal frequencies per (type, kind).
class AffinityModel {
 public:
  /// `learned_share` in [0, 1] is the weight of the learned component once
  /// enough observations accumulate.
  explicit AffinityModel(const obj::TypeLattice* lattice,
                         double learned_share = 0.5);

  /// Records that an application navigated from an instance of `type`
  /// along `kind`.
  void RecordTraversal(obj::TypeId type, obj::RelKind kind);

  /// Affinity weight for navigating from an instance of `type` along
  /// `kind`: the type prior blended with the learned distribution.
  /// Priors are normalised so weights across kinds sum to ~1 per type.
  double Weight(obj::TypeId type, obj::RelKind kind) const;

  /// Affinity contribution of one structural edge for clustering purposes:
  /// the weight of `edge.kind` as seen from `from`'s type. Instance-
  /// inheritance edges additionally count the dereference traffic of
  /// by-reference attributes.
  double EdgeWeight(const obj::ObjectGraph& graph, obj::ObjectId from,
                    const obj::Edge& edge) const;

  uint64_t observations(obj::TypeId type) const;

 private:
  struct TypeState {
    std::array<double, obj::kNumRelKinds> prior{};   // normalised
    std::array<uint64_t, obj::kNumRelKinds> counts{};
    uint64_t total_count = 0;
  };

  const TypeState& StateFor(obj::TypeId type) const;

  const obj::TypeLattice* lattice_;
  double learned_share_;
  mutable std::vector<TypeState> states_;  // lazily initialised per type
  mutable std::vector<bool> initialised_;
};

}  // namespace oodb::cluster

#endif  // SEMCLUST_CLUSTER_AFFINITY_H_
