#include "cluster/static_clusterer.h"

#include <algorithm>
#include <queue>

namespace oodb::cluster {

StaticClusterer::StaticClusterer(obj::ObjectGraph* graph,
                                 store::StorageManager* storage,
                                 const AffinityModel* affinity,
                                 double fill_fraction)
    : graph_(graph),
      storage_(storage),
      affinity_(affinity),
      fill_fraction_(fill_fraction) {
  OODB_CHECK(graph != nullptr);
  OODB_CHECK(storage != nullptr);
  OODB_CHECK(affinity != nullptr);
  OODB_CHECK_GT(fill_fraction, 0.0);
  OODB_CHECK_LE(fill_fraction, 1.0);
}

std::vector<obj::ObjectId> StaticClusterer::ComputeOrder() const {
  // Affinity-greedy traversal: start a cluster at each unvisited placed
  // object (in id order for determinism) and expand via a max-heap of
  // frontier edges, so the heaviest-affinity relatives are packed adjacent
  // to their seed.
  const size_t n = graph_->size();
  std::vector<bool> visited(n, false);
  std::vector<obj::ObjectId> order;
  order.reserve(graph_->live_count());

  struct FrontierEdge {
    double weight;
    obj::ObjectId target;
    bool operator<(const FrontierEdge& o) const {
      if (weight != o.weight) return weight < o.weight;
      return target > o.target;  // deterministic: lower id first on ties
    }
  };

  for (obj::ObjectId seed = 0; seed < n; ++seed) {
    if (visited[seed] || !graph_->IsLive(seed) ||
        !storage_->IsPlaced(seed)) {
      continue;
    }
    std::priority_queue<FrontierEdge> frontier;
    frontier.push(FrontierEdge{0.0, seed});
    while (!frontier.empty()) {
      const obj::ObjectId o = frontier.top().target;
      frontier.pop();
      if (visited[o]) continue;
      visited[o] = true;
      order.push_back(o);
      for (const obj::Edge e : graph_->edges(o)) {
        if (e.target >= n || visited[e.target]) continue;
        if (!graph_->IsLive(e.target) || !storage_->IsPlaced(e.target)) {
          continue;
        }
        frontier.push(
            FrontierEdge{affinity_->EdgeWeight(*graph_, o, e), e.target});
      }
    }
  }
  return order;
}

ReorganizationReport StaticClusterer::Reorganize() {
  ReorganizationReport report;
  report.pages_before = storage_->page_count();

  const std::vector<obj::ObjectId> order = ComputeOrder();
  report.objects_total = order.size();

  const auto fill_limit = static_cast<uint32_t>(
      fill_fraction_ * static_cast<double>(storage_->page_size_bytes()));

  store::PageId current = store::kInvalidPage;
  uint32_t current_used = 0;
  std::vector<char> source_touched(report.pages_before, 0);
  for (obj::ObjectId o : order) {
    const uint32_t size = storage_->SizeOf(o);
    if (current == store::kInvalidPage || current_used + size > fill_limit ||
        !storage_->page(current).Fits(size)) {
      current = storage_->AllocatePage();
      current_used = 0;
      ++report.page_writes;  // destination page flush
    }
    const store::PageId from = storage_->PageOf(o);
    if (from != current) {
      OODB_CHECK(storage_->Relocate(o, current).ok());
      ++report.objects_moved;
      if (from < source_touched.size() && !source_touched[from]) {
        source_touched[from] = 1;
        ++report.page_writes;  // each vacated source rewritten once
      }
    }
    current_used += size;
  }

  // Pages in use after: count non-empty.
  size_t in_use = 0;
  for (store::PageId p = 0; p < storage_->page_count(); ++p) {
    if (storage_->page(p).object_count() > 0) ++in_use;
  }
  report.pages_after = in_use;
  return report;
}

}  // namespace oodb::cluster
