#ifndef SEMCLUST_CLUSTER_DEPENDENCY_GRAPH_H_
#define SEMCLUST_CLUSTER_DEPENDENCY_GRAPH_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "cluster/affinity.h"
#include "objmodel/object_graph.h"
#include "storage/storage_manager.h"

/// \file
/// The inheritance-dependency graph over the objects of one page (plus,
/// optionally, an incoming object that overflowed it). Page-splitting
/// partitions this graph into two page-sized subsets while minimising the
/// total weight of broken arcs (paper §2.1(b)).

namespace oodb::cluster {

/// A node: one object and its storage footprint.
struct DepNode {
  obj::ObjectId object = obj::kInvalidObject;
  uint32_t size_bytes = 0;
};

/// A weighted undirected arc between two nodes (indices into `nodes`).
struct DepArc {
  uint32_t a = 0;
  uint32_t b = 0;
  double weight = 0;
};

/// The graph handed to the page splitters.
struct DependencyGraph {
  std::vector<DepNode> nodes;
  std::vector<DepArc> arcs;

  /// Sum of all node sizes.
  uint64_t TotalSize() const;

  /// Builds the graph for `page`: one node per resident object (plus
  /// `incoming` if given), and one arc for every structural relationship
  /// between two nodes, weighted by the affinity model. Parallel
  /// relationships between the same pair accumulate into one arc.
  static DependencyGraph Build(
      const obj::ObjectGraph& graph, const AffinityModel& affinity,
      const store::StorageManager& storage, store::PageId page,
      std::optional<DepNode> incoming = std::nullopt);
};

}  // namespace oodb::cluster

#endif  // SEMCLUST_CLUSTER_DEPENDENCY_GRAPH_H_
