#include "cluster/cluster_manager.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

namespace oodb::cluster {

ClusterManager::ClusterManager(obj::ObjectGraph* graph,
                               store::StorageManager* storage,
                               AffinityModel* affinity,
                               const buffer::BufferPool* buffer,
                               ClusterConfig config)
    : graph_(graph),
      storage_(storage),
      affinity_(affinity),
      buffer_(buffer),
      config_(config) {
  OODB_CHECK(graph != nullptr);
  OODB_CHECK(storage != nullptr);
  OODB_CHECK(affinity != nullptr);
}

const std::vector<ClusterManager::Candidate>& ClusterManager::ScoreCandidates(
    obj::ObjectId id) const {
  // Flat PageId-indexed accumulation. A page's first touch this call
  // stores the weight; later touches add. Both the per-page addition
  // sequence and the operand order match the former hash-map version
  // (map's value-initialised 0.0 + w == w), so every score is
  // bit-identical; the final sort's strict total order (score desc, page
  // asc — pages unique) then yields the identical candidate list.
  if (page_score_.size() < storage_->page_count()) {
    // Geometric growth: page_count advances by one page at a time during
    // the build, and this runs once per placement.
    const size_t n =
        std::max(storage_->page_count(), page_score_.size() * 2);
    page_score_.resize(n, 0.0);
    page_stamp_.resize(n, 0);
  }
  ++score_stamp_;
  const uint32_t stamp = score_stamp_;
  touched_pages_.clear();
  const auto add_score = [&](store::PageId p, double w) {
    if (page_stamp_[p] != stamp) {
      page_stamp_[p] = stamp;
      page_score_[p] = w;
      touched_pages_.push_back(p);
    } else {
      page_score_[p] += w;
    }
  };

  // Batched affinity lookup: `id`'s type is fixed for the whole scan, so
  // the per-kind blended weights (plus the inheritance dereference factor)
  // are resolved once instead of per edge. The hint boost stays per-edge
  // to preserve the original multiplication order.
  const obj::TypeId type = graph_->object(id).type;
  double kind_weight[obj::kNumRelKinds];
  for (const obj::RelKind kind : obj::kAllRelKinds) {
    double w = affinity_->Weight(type, kind);
    if (kind == obj::RelKind::kInstanceInheritance) w *= 1.5;
    kind_weight[static_cast<size_t>(kind)] = w;
  }

  for (const obj::Edge e : graph_->edges(id)) {
    if (!graph_->IsLive(e.target)) continue;
    const store::PageId p = storage_->PageOf(e.target);
    double w = kind_weight[static_cast<size_t>(e.kind)];
    if (config_.use_hints && e.kind == config_.hint_kind) {
      w *= config_.hint_boost;
    }
    if (p != store::kInvalidPage) add_score(p, w);

    // Configuration siblings are co-referenced with `id` whenever the
    // composite's components are retrieved, so their pages are candidates
    // too (at half the direct-edge affinity). This is what keeps a module
    // together once its composite's page fills up.
    if (config_.sibling_candidates &&
        e.kind == obj::RelKind::kConfiguration &&
        e.dir == obj::Direction::kUp) {
      graph_->ForEachNeighbor(
          e.target, obj::RelKind::kConfiguration, obj::Direction::kDown,
          [&](obj::ObjectId sibling) {
            if (sibling == id || !graph_->IsLive(sibling)) return;
            const store::PageId sp = storage_->PageOf(sibling);
            if (sp != store::kInvalidPage) add_score(sp, 0.5 * w);
          });
    }
  }
  std::vector<Candidate>& candidates = candidates_scratch_;
  candidates.clear();
  candidates.reserve(touched_pages_.size());
  for (const store::PageId page : touched_pages_) {
    candidates.push_back(Candidate{page, page_score_[page]});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.page < b.page;  // deterministic tie-break
            });
  return candidates;
}

PlacementReport ClusterManager::PlaceNew(obj::ObjectId id) {
  OODB_CHECK(!storage_->IsPlaced(id));
  ++stats_.placements;
  return PlaceImpl(id, store::kInvalidPage);
}

PlacementReport ClusterManager::Recluster(obj::ObjectId id) {
  const store::PageId current = storage_->PageOf(id);
  OODB_CHECK_NE(current, store::kInvalidPage);
  ++stats_.reclusterings;
  return PlaceImpl(id, current);
}

PlacementReport ClusterManager::PlaceImpl(obj::ObjectId id,
                                          store::PageId current_page) {
  PlacementReport report;
  report.old_page = current_page;
  const bool placing_new = current_page == store::kInvalidPage;
  const uint32_t size = placing_new ? graph_->object(id).size_bytes
                                    : storage_->SizeOf(id);

  if (config_.pool == CandidatePool::kNoClustering) {
    if (placing_new) {
      auto page = storage_->PlaceAppend(id, size);
      OODB_CHECK(page.ok());
      report.page = *page;
      report.appended = true;
      ++stats_.appends;
    } else {
      report.page = current_page;  // never reclusters
    }
    return report;
  }

  const std::vector<Candidate>& candidates = ScoreCandidates(id);

  double current_score = 0;
  if (!placing_new) {
    for (const Candidate& c : candidates) {
      if (c.page == current_page) {
        current_score = c.score;
        break;
      }
    }
  }

  int io_budget;
  switch (config_.pool) {
    case CandidatePool::kWithinBuffer:
      io_budget = 0;
      break;
    case CandidatePool::kIoLimit:
      io_budget = config_.io_limit;
      break;
    default:
      io_budget = std::numeric_limits<int>::max();
      break;
  }

  store::PageId chosen = store::kInvalidPage;
  bool placed_by_split = false;
  bool considered_any = false;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const Candidate& cand = candidates[i];
    if (cand.page == current_page) continue;
    if (!placing_new &&
        cand.score - current_score < config_.recluster_gain_threshold) {
      break;  // sorted descending: nothing later clears the threshold
    }
    if (!IsResident(cand.page)) {
      if (io_budget <= 0) continue;  // pool forbids examining this page
      --io_budget;
      report.exam_reads.push_back(cand.page);
    }
    considered_any = true;
    if (storage_->page(cand.page).Fits(size)) {
      chosen = cand.page;
      break;
    }
    // Preferred candidate is full: split it if that is cheaper than
    // settling for the next-best candidate (paper §2.1(b)).
    if (config_.split != SplitPolicy::kNoSplit) {
      const double next_best_score =
          i + 1 < candidates.size() ? candidates[i + 1].score : 0.0;
      if (TrySplit(id, size, cand.page, next_best_score, report)) {
        chosen = report.page;
        placed_by_split = true;
        break;
      }
    }
  }

  if (chosen == store::kInvalidPage) {
    if (placing_new) {
      if (considered_any && config_.fresh_page_on_overflow) {
        // Candidate pages were examined but all were full (and splitting
        // was not chosen): open a fresh page as the nucleus this object's
        // future relatives will cluster around, rather than scattering
        // into the shared arrival-order stream. A pool that could not
        // legitimately examine any candidate (e.g. within-buffer with no
        // resident relatives) degrades to arrival order instead — the
        // paper's observed No_Clustering-like behaviour at low hit ratio.
        const store::PageId fresh = storage_->AllocatePage();
        OODB_CHECK(storage_->Place(id, size, fresh).ok());
        report.page = fresh;
      } else {
        auto page = storage_->PlaceAppend(id, size);
        OODB_CHECK(page.ok());
        report.page = *page;
        report.appended = true;
        ++stats_.appends;
      }
    } else {
      report.page = current_page;
    }
  } else if (!placed_by_split) {
    if (placing_new) {
      OODB_CHECK(storage_->Place(id, size, chosen).ok());
    } else {
      OODB_CHECK(storage_->Relocate(id, chosen).ok());
      report.relocated = true;
      ++stats_.relocations;
    }
    report.page = chosen;
  } else if (!placing_new) {
    report.relocated = report.page != current_page;
    if (report.relocated) ++stats_.relocations;
  }

  // The chosen page's demand read is charged by the caller's Fix; drop it
  // from the exam list so it is not double-counted.
  if (report.page != store::kInvalidPage) {
    auto it = std::find(report.exam_reads.begin(), report.exam_reads.end(),
                        report.page);
    if (it != report.exam_reads.end()) report.exam_reads.erase(it);
  }
  stats_.exam_reads += report.exam_reads.size();
  if (trace_ != nullptr) {
    trace_->Record(obs::Subsystem::kCluster,
                   obs::TraceEventType::kRecluster, candidates.size(),
                   report.exam_reads.size(), report.relocated ? 1 : 0);
  }
  return report;
}

bool ClusterManager::TrySplit(obj::ObjectId incoming_id,
                              uint32_t incoming_size, store::PageId page,
                              double next_best_score,
                              PlacementReport& report) {
  const uint32_t capacity = storage_->page_size_bytes();
  DependencyGraph dep = DependencyGraph::Build(
      *graph_, *affinity_, *storage_, page,
      DepNode{incoming_id, incoming_size});

  SplitResult split;
  switch (config_.split) {
    case SplitPolicy::kLinearGreedy:
      split = GreedyLinearSplit(dep, capacity);
      break;
    case SplitPolicy::kExhaustive:
      split = ExhaustiveMinCutSplit(dep, capacity);
      break;
    case SplitPolicy::kNoSplit:
      return false;
  }
  if (!split.feasible) return false;

  // Expected-cost comparison: splitting breaks `broken_cost` worth of
  // co-reference per future access (plus a fixed overhead for the extra
  // flush and log record); settling for the next-best candidate forfeits
  // the score difference. Find the incoming object's retained affinity.
  const uint32_t incoming_node = static_cast<uint32_t>(dep.nodes.size() - 1);
  OODB_CHECK_EQ(dep.nodes[incoming_node].object, incoming_id);
  double incoming_affinity_total = 0;
  double incoming_affinity_broken = 0;
  const bool incoming_on_right =
      std::find(split.right.begin(), split.right.end(), incoming_node) !=
      split.right.end();
  for (const DepArc& arc : dep.arcs) {
    if (arc.a != incoming_node && arc.b != incoming_node) continue;
    incoming_affinity_total += arc.weight;
    const uint32_t other = arc.a == incoming_node ? arc.b : arc.a;
    const bool other_on_right =
        std::find(split.right.begin(), split.right.end(), other) !=
        split.right.end();
    if (other_on_right != incoming_on_right) {
      incoming_affinity_broken += arc.weight;
    }
  }
  const double retained = incoming_affinity_total - incoming_affinity_broken;
  const double split_cost = split.broken_cost + config_.split_cost_penalty;
  if (retained - split_cost <= next_best_score) return false;

  // Execute: the left side keeps `page`; the right side moves to a fresh
  // page. Moving right-siders first guarantees room for the incoming
  // object on whichever side it belongs to.
  const store::PageId new_page = storage_->AllocatePage();
  for (uint32_t node : split.right) {
    if (node == incoming_node) continue;
    OODB_CHECK(storage_->Relocate(dep.nodes[node].object, new_page).ok());
    ++report.objects_moved;
  }
  const store::PageId target = incoming_on_right ? new_page : page;
  if (storage_->IsPlaced(incoming_id)) {
    OODB_CHECK(storage_->Relocate(incoming_id, target).ok());
  } else {
    OODB_CHECK(storage_->Place(incoming_id, incoming_size, target).ok());
  }

  report.split = true;
  report.split_new_page = new_page;
  report.split_broken_cost = split.broken_cost;
  report.page = target;
  if (trace_ != nullptr) {
    trace_->Record(obs::Subsystem::kCluster,
                   obs::TraceEventType::kPageSplit, page,
                   static_cast<uint64_t>(report.objects_moved),
                   split.search_steps, split.broken_cost);
  }
  ++stats_.splits;
  stats_.objects_moved_by_splits += static_cast<uint64_t>(report.objects_moved);
  stats_.split_search_steps += split.search_steps;
  stats_.split_broken_cost += split.broken_cost;
  return true;
}

}  // namespace oodb::cluster
