#include "cluster/policy.h"

namespace oodb::cluster {

const char* CandidatePoolName(CandidatePool p) {
  switch (p) {
    case CandidatePool::kNoClustering:
      return "No_Clustering";
    case CandidatePool::kWithinBuffer:
      return "Cluster_within_Buffer";
    case CandidatePool::kIoLimit:
      return "With_IO_limit";
    case CandidatePool::kWithinDb:
      return "No_limit";
  }
  return "unknown";
}

const char* SplitPolicyName(SplitPolicy p) {
  switch (p) {
    case SplitPolicy::kNoSplit:
      return "No_Splitting";
    case SplitPolicy::kLinearGreedy:
      return "Linear_Split";
    case SplitPolicy::kExhaustive:
      return "NP_Split";
  }
  return "unknown";
}

std::string ClusterConfig::Label() const {
  std::string base = pool == CandidatePool::kIoLimit
                         ? std::to_string(io_limit) + "_IO_limit"
                         : CandidatePoolName(pool);
  return base + dynamic.LabelSuffix();
}

}  // namespace oodb::cluster
