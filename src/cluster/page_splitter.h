#ifndef SEMCLUST_CLUSTER_PAGE_SPLITTER_H_
#define SEMCLUST_CLUSTER_PAGE_SPLITTER_H_

#include <cstdint>
#include <vector>

#include "cluster/dependency_graph.h"

/// \file
/// Page-splitting algorithms (paper §2.1(b)). Splitting partitions the
/// inheritance-dependency graph of an overflowing page into two subsets
/// that each fit a page, minimising the total weight of broken arcs. The
/// optimal problem is graph partitioning (NP-complete); the paper proposes
/// a greedy single-pass linear alternative and compares both ("Linear
/// Split" vs "NP Split", Figs 5.9-5.10).

namespace oodb::cluster {

/// A two-way partition of a dependency graph.
struct SplitResult {
  /// True if both sides fit within the page capacity.
  bool feasible = false;
  /// Node indices on each side. `left` retains the original page.
  std::vector<uint32_t> left;
  std::vector<uint32_t> right;
  /// Total weight of arcs crossing the partition.
  double broken_cost = 0;
  /// Algorithm effort: arcs examined (greedy) or branch-and-bound nodes
  /// expanded (exact, including the greedy seed's arcs). This is the
  /// observable gap between Linear Split and NP Split (Fig 5.10).
  uint64_t search_steps = 0;
};

/// Total weight of arcs whose endpoints fall on different sides.
/// `side[i]` is 0 or 1 for node i.
double CutCost(const DependencyGraph& graph, const std::vector<int>& side);

/// The paper's greedy algorithm: one pass over the arc set (no sorting, so
/// the running time is linear in nodes + arcs), merging endpoint groups
/// whose combined size still fits a page, then packing the groups onto the
/// two sides. Does not attempt optimality.
SplitResult GreedyLinearSplit(const DependencyGraph& graph,
                              uint32_t capacity_bytes);

/// Exact minimum-broken-cost partition ("NP split"): branch-and-bound over
/// side assignments with cost and capacity pruning. Inputs larger than
/// `exact_node_limit` are first coarsened by merging heavy arcs until the
/// component count is tractable, then solved exactly on components.
SplitResult ExhaustiveMinCutSplit(const DependencyGraph& graph,
                                  uint32_t capacity_bytes,
                                  int exact_node_limit = 22);

}  // namespace oodb::cluster

#endif  // SEMCLUST_CLUSTER_PAGE_SPLITTER_H_
