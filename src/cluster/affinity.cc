#include "cluster/affinity.h"

#include <algorithm>

namespace oodb::cluster {

namespace {
// Observations per type before the learned component reaches full share.
constexpr uint64_t kWarmupObservations = 64;
}  // namespace

AffinityModel::AffinityModel(const obj::TypeLattice* lattice,
                             double learned_share)
    : lattice_(lattice), learned_share_(learned_share) {
  OODB_CHECK_GE(learned_share, 0.0);
  OODB_CHECK_LE(learned_share, 1.0);
  // Eager build: the table never grows afterwards, so StateFor is genuinely
  // read-only and the returned references are stable for the model's life.
  states_.resize(lattice_->size());
  for (obj::TypeId type = 0; type < states_.size(); ++type) {
    TypeState& s = states_[type];
    const auto profile = lattice_->EffectiveTraversal(type);
    double sum = 0;
    for (double w : profile) sum += w;
    for (int k = 0; k < obj::kNumRelKinds; ++k) {
      s.prior[static_cast<size_t>(k)] =
          sum > 0 ? profile[static_cast<size_t>(k)] / sum
                  : 1.0 / obj::kNumRelKinds;
    }
  }
}

const AffinityModel::TypeState& AffinityModel::StateFor(
    obj::TypeId type) const {
  OODB_CHECK_LT(type, states_.size());
  return states_[type];
}

void AffinityModel::RecordTraversal(obj::TypeId type, obj::RelKind kind) {
  OODB_CHECK_LT(type, states_.size());
  TypeState& s = states_[type];
  ++s.counts[static_cast<size_t>(kind)];
  ++s.total_count;
  s.cache_valid = false;
}

void AffinityModel::RefreshCache(const TypeState& s) const {
  if (s.total_count == 0) {
    s.cached_weights = s.prior;
  } else {
    // Ramp the learned share in with observation volume so a handful of
    // traversals does not swing placement.
    const double ramp =
        std::min(1.0, static_cast<double>(s.total_count) /
                          static_cast<double>(kWarmupObservations));
    const double share = learned_share_ * ramp;
    const double inv_total = 1.0 / static_cast<double>(s.total_count);
    for (int k = 0; k < obj::kNumRelKinds; ++k) {
      const auto i = static_cast<size_t>(k);
      const double learned = static_cast<double>(s.counts[i]) * inv_total;
      s.cached_weights[i] = (1.0 - share) * s.prior[i] + share * learned;
    }
  }
  s.cache_valid = true;
}

double AffinityModel::Weight(obj::TypeId type, obj::RelKind kind) const {
  const TypeState& s = StateFor(type);
  if (!s.cache_valid) RefreshCache(s);
  return s.cached_weights[static_cast<size_t>(kind)];
}

double AffinityModel::EdgeWeight(const obj::ObjectGraph& graph,
                                 obj::ObjectId from,
                                 const obj::Edge& edge) const {
  const obj::TypeId type = graph.object(from).type;
  double w = Weight(type, edge.kind);
  if (edge.kind == obj::RelKind::kInstanceInheritance) {
    // A by-reference inherited attribute is dereferenced on reads of the
    // heir; co-locating heir and source saves that extra logical I/O, so
    // the link counts somewhat more than its raw traversal share.
    w *= 1.5;
  }
  return w;
}

uint64_t AffinityModel::observations(obj::TypeId type) const {
  return StateFor(type).total_count;
}

}  // namespace oodb::cluster
