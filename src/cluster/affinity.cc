#include "cluster/affinity.h"

#include <algorithm>

namespace oodb::cluster {

namespace {
// Observations per type before the learned component reaches full share.
constexpr uint64_t kWarmupObservations = 64;
}  // namespace

AffinityModel::AffinityModel(const obj::TypeLattice* lattice,
                             double learned_share)
    : lattice_(lattice), learned_share_(learned_share) {
  OODB_CHECK_GE(learned_share, 0.0);
  OODB_CHECK_LE(learned_share, 1.0);
}

const AffinityModel::TypeState& AffinityModel::StateFor(
    obj::TypeId type) const {
  if (type >= states_.size()) {
    states_.resize(lattice_->size());
    initialised_.resize(lattice_->size(), false);
  }
  OODB_CHECK_LT(type, states_.size());
  if (!initialised_[type]) {
    TypeState& s = states_[type];
    const auto profile = lattice_->EffectiveTraversal(type);
    double sum = 0;
    for (double w : profile) sum += w;
    for (int k = 0; k < obj::kNumRelKinds; ++k) {
      s.prior[static_cast<size_t>(k)] =
          sum > 0 ? profile[static_cast<size_t>(k)] / sum
                  : 1.0 / obj::kNumRelKinds;
    }
    initialised_[type] = true;
  }
  return states_[type];
}

void AffinityModel::RecordTraversal(obj::TypeId type, obj::RelKind kind) {
  StateFor(type);  // ensure initialised
  TypeState& s = states_[type];
  ++s.counts[static_cast<size_t>(kind)];
  ++s.total_count;
}

double AffinityModel::Weight(obj::TypeId type, obj::RelKind kind) const {
  const TypeState& s = StateFor(type);
  const double prior = s.prior[static_cast<size_t>(kind)];
  if (s.total_count == 0) return prior;
  const double learned =
      static_cast<double>(s.counts[static_cast<size_t>(kind)]) /
      static_cast<double>(s.total_count);
  // Ramp the learned share in with observation volume so a handful of
  // traversals does not swing placement.
  const double ramp =
      std::min(1.0, static_cast<double>(s.total_count) /
                        static_cast<double>(kWarmupObservations));
  const double share = learned_share_ * ramp;
  return (1.0 - share) * prior + share * learned;
}

double AffinityModel::EdgeWeight(const obj::ObjectGraph& graph,
                                 obj::ObjectId from,
                                 const obj::Edge& edge) const {
  const obj::TypeId type = graph.object(from).type;
  double w = Weight(type, edge.kind);
  if (edge.kind == obj::RelKind::kInstanceInheritance) {
    // A by-reference inherited attribute is dereferenced on reads of the
    // heir; co-locating heir and source saves that extra logical I/O, so
    // the link counts somewhat more than its raw traversal share.
    w *= 1.5;
  }
  return w;
}

uint64_t AffinityModel::observations(obj::TypeId type) const {
  return StateFor(type).total_count;
}

}  // namespace oodb::cluster
