#ifndef SEMCLUST_CLUSTER_POLICY_H_
#define SEMCLUST_CLUSTER_POLICY_H_

#include <cstdint>
#include <string>

#include "dyn/dyn_config.h"
#include "objmodel/object_id.h"

/// \file
/// Clustering control parameters (Table 4.1, parameters H, I, J): the
/// candidate-page pool, the page-splitting policy, and the user-hint
/// policy.

namespace oodb::cluster {

/// Candidate-page pool for object placement (Table 4.1, parameter H, with
/// the I/O-limit operating levels folded in as in Figure 5.1).
enum class CandidatePool : uint8_t {
  kNoClustering = 0,  ///< arrival-order append placement
  kWithinBuffer = 1,  ///< only pages resident in the buffer pool
  kIoLimit = 2,       ///< resident pages plus up to `io_limit` disk exams
  kWithinDb = 3,      ///< the whole database (unlimited exam I/O)
};

const char* CandidatePoolName(CandidatePool p);

/// Every candidate-pool level, in enum order. The policy registry
/// iterates this list, so extending the axis here (with its Name case)
/// makes the new level resolvable by name everywhere at once.
inline constexpr CandidatePool kAllCandidatePools[] = {
    CandidatePool::kNoClustering, CandidatePool::kWithinBuffer,
    CandidatePool::kIoLimit, CandidatePool::kWithinDb};

/// Page-splitting policy on candidate-page overflow (parameter I).
enum class SplitPolicy : uint8_t {
  kNoSplit = 0,     ///< take the next-best candidate page instead
  kLinearGreedy = 1,  ///< single-pass greedy partition (the paper's choice)
  kExhaustive = 2,    ///< exact minimum-broken-cost partition ("NP split")
};

const char* SplitPolicyName(SplitPolicy p);

/// Every split level, in enum order (see kAllCandidatePools).
inline constexpr SplitPolicy kAllSplitPolicies[] = {
    SplitPolicy::kNoSplit, SplitPolicy::kLinearGreedy,
    SplitPolicy::kExhaustive};

/// Full clustering configuration.
struct ClusterConfig {
  CandidatePool pool = CandidatePool::kNoClustering;
  /// Max candidate pages examined with disk I/O (kIoLimit pool only).
  int io_limit = 2;
  SplitPolicy split = SplitPolicy::kNoSplit;
  /// User-hint policy (parameter J): when true, edges of `hint_kind` get
  /// `hint_boost` times their weight during placement scoring.
  bool use_hints = false;
  obj::RelKind hint_kind = obj::RelKind::kConfiguration;
  double hint_boost = 3.0;
  /// Minimum affinity-score gain before an updated object is relocated.
  double recluster_gain_threshold = 1.0;
  /// Fixed cost penalty charged against a page split in the split-vs-next-
  /// candidate comparison (stands for the extra flush I/O + log record).
  double split_cost_penalty = 0.25;

  // -- Reproduction design choices (ablation knobs; both default on). --
  /// Score the pages of configuration *siblings* as candidates too (they
  /// are co-referenced whenever the shared composite's components are
  /// retrieved). Without this, a component's only candidate is its
  /// composite's page.
  bool sibling_candidates = true;
  /// When every examined candidate is full (and splitting is not chosen),
  /// seed a fresh page instead of appending into the shared arrival-order
  /// stream.
  bool fresh_page_on_overflow = true;

  /// Dynamic re-clustering policy layered on top of write-time placement
  /// (src/dyn/: DSTC / OPCF). Inert by default; rides the clustering sweep
  /// axis so scenarios and grids cover it declaratively.
  dyn::DynConfig dynamic{};

  /// "Cluster_within_Buffer", "2_IO_limit", "No_limit", ... as the paper
  /// labels its x-axes, plus a "+DSTC" / "+OPCF" suffix when a dynamic
  /// re-clustering policy is layered on.
  std::string Label() const;
};

}  // namespace oodb::cluster

#endif  // SEMCLUST_CLUSTER_POLICY_H_
