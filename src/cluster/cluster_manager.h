#ifndef SEMCLUST_CLUSTER_CLUSTER_MANAGER_H_
#define SEMCLUST_CLUSTER_CLUSTER_MANAGER_H_

#include <cstdint>
#include <vector>

#include "buffer/buffer_pool.h"
#include "cluster/affinity.h"
#include "cluster/dependency_graph.h"
#include "cluster/page_splitter.h"
#include "cluster/policy.h"
#include "objmodel/object_graph.h"
#include "storage/storage_manager.h"

/// \file
/// The run-time (re)clustering algorithm — the paper's primary
/// contribution (§2.1). For every newly created instance it chooses an
/// initial placement next to the relatives it is most frequently
/// co-referenced with (frequencies inherited from the type and refined at
/// run time); on updates that change object structure it reconsiders the
/// placement. Candidate-page search is bounded by the configured pool
/// (within-buffer / k-I/O-limit / whole DB), and overflow is handled by
/// the configured page-splitting policy.
///
/// The manager mutates StorageManager placement synchronously and reports
/// the physical I/O it *owes* (candidate exams, split flush); the
/// simulation model charges those to the I/O subsystem.

namespace oodb::cluster {

/// What one placement/reclustering decision did and what it cost.
struct PlacementReport {
  /// Where the object ended up.
  store::PageId page = store::kInvalidPage;
  /// Non-resident candidate pages that were examined with a disk read and
  /// NOT chosen (the caller owes one read each; the chosen page's read is
  /// charged by the caller's own Fix).
  std::vector<store::PageId> exam_reads;
  /// True if placement fell back to arrival-order append.
  bool appended = false;
  /// True if the decision split a page.
  bool split = false;
  store::PageId split_new_page = store::kInvalidPage;
  /// Objects relocated by the split (excluding the placed object).
  int objects_moved = 0;
  double split_broken_cost = 0;
  /// True if Recluster moved the object to a better page.
  bool relocated = false;
  store::PageId old_page = store::kInvalidPage;
};

/// Aggregate counters over a manager's lifetime.
struct ClusterStats {
  uint64_t placements = 0;
  /// Recluster() calls (reclustering *attempts*, relocated or not).
  uint64_t reclusterings = 0;
  uint64_t appends = 0;
  uint64_t relocations = 0;
  uint64_t splits = 0;
  uint64_t exam_reads = 0;
  uint64_t objects_moved_by_splits = 0;
  /// Split-algorithm effort summed over executed splits (arcs examined by
  /// the greedy pass plus branch-and-bound expansions for NP split).
  uint64_t split_search_steps = 0;
  double split_broken_cost = 0;
};

/// Executes the clustering policy against storage.
class ClusterManager {
 public:
  /// `buffer` may be null (no residency information: every candidate exam
  /// then costs I/O under kIoLimit/kWithinDb, and kWithinBuffer finds no
  /// candidates).
  ClusterManager(obj::ObjectGraph* graph, store::StorageManager* storage,
                 AffinityModel* affinity, const buffer::BufferPool* buffer,
                 ClusterConfig config);

  ClusterManager(const ClusterManager&) = delete;
  ClusterManager& operator=(const ClusterManager&) = delete;

  /// Places a newly created, not-yet-placed object.
  PlacementReport PlaceNew(obj::ObjectId id);

  /// Re-evaluates the placement of a placed object whose structure just
  /// changed; relocates it when the affinity gain clears the configured
  /// threshold.
  PlacementReport Recluster(obj::ObjectId id);

  const ClusterConfig& config() const { return config_; }
  const ClusterStats& stats() const { return stats_; }
  const store::StorageManager& storage() const { return *storage_; }
  void ResetStats() { stats_ = ClusterStats{}; }

  /// Attaches an event sink (may be null). Every placement/reclustering
  /// decision then records a kRecluster event (candidates scored, exam
  /// I/Os owed, whether the object moved), and every executed split a
  /// kPageSplit event (objects moved, broken affinity cost).
  void set_trace(obs::TraceSink* trace) { trace_ = trace; }

  /// A scored candidate page for placing `id`.
  struct Candidate {
    store::PageId page = store::kInvalidPage;
    double score = 0;
  };

  /// Scores candidate pages by summed structural affinity of `id` to the
  /// objects already resident on them (hint boosts applied), best first.
  /// Exposed for tests and benchmarks. The returned reference points at a
  /// scratch buffer owned by the manager and is invalidated by the next
  /// ScoreCandidates/PlaceNew/Recluster call (the manager, like the whole
  /// simulation cell, is single-threaded).
  const std::vector<Candidate>& ScoreCandidates(obj::ObjectId id) const;

 private:
  /// Shared engine behind PlaceNew/Recluster. `current_page` is the page
  /// the object occupies now (kInvalidPage when unplaced).
  PlacementReport PlaceImpl(obj::ObjectId id, store::PageId current_page);

  /// Executes a page split of `page` with `incoming` pending; returns true
  /// and fills `report` on success.
  bool TrySplit(obj::ObjectId incoming_id, uint32_t incoming_size,
                store::PageId page, double next_best_score,
                PlacementReport& report);

  bool IsResident(store::PageId page) const {
    return buffer_ != nullptr && buffer_->Contains(page);
  }

  obj::ObjectGraph* graph_;
  store::StorageManager* storage_;
  AffinityModel* affinity_;
  const buffer::BufferPool* buffer_;
  ClusterConfig config_;
  ClusterStats stats_;
  obs::TraceSink* trace_ = nullptr;

  // Scratch state reused across ScoreCandidates calls: placement runs once
  // per object write, and a fresh hash map per call dominated its profile.
  // Scores accumulate into a PageId-indexed flat array; a stamp per page
  // ("touched by the current call") replaces clearing, and touched_pages_
  // lists the candidates in first-touch order. MMseqs2's prefilter uses
  // the same batched flat-accumulator shape for its k-mer hit scores.
  mutable std::vector<double> page_score_;
  mutable std::vector<uint32_t> page_stamp_;
  mutable std::vector<store::PageId> touched_pages_;
  mutable uint32_t score_stamp_ = 0;
  mutable std::vector<Candidate> candidates_scratch_;
};

}  // namespace oodb::cluster

#endif  // SEMCLUST_CLUSTER_CLUSTER_MANAGER_H_
