#ifndef SEMCLUST_CLUSTER_STATIC_CLUSTERER_H_
#define SEMCLUST_CLUSTER_STATIC_CLUSTERER_H_

#include <cstdint>
#include <vector>

#include "cluster/affinity.h"
#include "objmodel/object_graph.h"
#include "storage/storage_manager.h"

/// \file
/// Static (offline) clustering — the alternative the paper contrasts with
/// its run-time algorithm (§2.1): "For static clustering, the system is
/// quiesced, and the database administrator decides on a partitioning of
/// objects." This reorganizer computes an affinity-ordered traversal of
/// the whole object graph and repacks pages to match. It produces
/// excellent locality *at the moment it runs*, but requires quiescing the
/// database, and its layout decays as the workload keeps creating and
/// restructuring objects — which is exactly why the paper argues for
/// dynamic clustering when availability matters. The ablation bench
/// `bench_ablation_static_vs_dynamic` measures that decay.

namespace oodb::cluster {

/// Outcome of a full reorganization.
struct ReorganizationReport {
  /// Objects moved to a different page.
  uint64_t objects_moved = 0;
  /// Objects processed in total.
  uint64_t objects_total = 0;
  /// Pages in use after reorganization.
  size_t pages_after = 0;
  /// Pages that were in use before.
  size_t pages_before = 0;
  /// Physical page writes a real system would owe (every destination page
  /// plus every vacated source page).
  uint64_t page_writes = 0;
};

/// Offline repacking of the whole database.
class StaticClusterer {
 public:
  /// `fill_fraction` caps how full the packer makes each page, leaving
  /// update headroom like any reorganisation utility.
  StaticClusterer(obj::ObjectGraph* graph, store::StorageManager* storage,
                  const AffinityModel* affinity,
                  double fill_fraction = 0.9);

  /// Repacks every placed object: walks the object graph in
  /// affinity-greedy order (each cluster seed expands along its heaviest
  /// edges first) and assigns objects to fresh pages in that order.
  /// The storage manager's old pages are left empty.
  ReorganizationReport Reorganize();

  /// The affinity-greedy visit order (exposed for tests).
  std::vector<obj::ObjectId> ComputeOrder() const;

 private:
  obj::ObjectGraph* graph_;
  store::StorageManager* storage_;
  const AffinityModel* affinity_;
  double fill_fraction_;
};

}  // namespace oodb::cluster

#endif  // SEMCLUST_CLUSTER_STATIC_CLUSTERER_H_
