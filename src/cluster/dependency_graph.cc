#include "cluster/dependency_graph.h"

#include <unordered_map>

namespace oodb::cluster {

uint64_t DependencyGraph::TotalSize() const {
  uint64_t total = 0;
  for (const DepNode& n : nodes) total += n.size_bytes;
  return total;
}

DependencyGraph DependencyGraph::Build(const obj::ObjectGraph& graph,
                                       const AffinityModel& affinity,
                                       const store::StorageManager& storage,
                                       store::PageId page,
                                       std::optional<DepNode> incoming) {
  DependencyGraph dep;
  std::unordered_map<obj::ObjectId, uint32_t> index;

  for (const store::Slot& slot : storage.page(page).slots()) {
    index.emplace(slot.object, static_cast<uint32_t>(dep.nodes.size()));
    dep.nodes.push_back(DepNode{slot.object, slot.size_bytes});
  }
  if (incoming.has_value()) {
    index.emplace(incoming->object, static_cast<uint32_t>(dep.nodes.size()));
    dep.nodes.push_back(*incoming);
  }

  // Accumulate arcs between co-located nodes; a pair may be related by
  // several kinds (e.g. version history + instance inheritance).
  std::unordered_map<uint64_t, double> pair_weight;
  for (uint32_t i = 0; i < dep.nodes.size(); ++i) {
    const obj::ObjectId from = dep.nodes[i].object;
    if (!graph.IsLive(from)) continue;
    for (const obj::Edge e : graph.edges(from)) {
      auto it = index.find(e.target);
      if (it == index.end()) continue;
      const uint32_t j = it->second;
      if (j == i) continue;
      const uint32_t lo = std::min(i, j);
      const uint32_t hi = std::max(i, j);
      // Each undirected relationship appears as an edge on both endpoints;
      // halve so the pair's weight is counted once per relationship.
      pair_weight[(static_cast<uint64_t>(lo) << 32) | hi] +=
          0.5 * affinity.EdgeWeight(graph, from, e);
    }
  }
  dep.arcs.reserve(pair_weight.size());
  for (const auto& [key, weight] : pair_weight) {
    dep.arcs.push_back(DepArc{static_cast<uint32_t>(key >> 32),
                              static_cast<uint32_t>(key & 0xFFFFFFFFu),
                              weight});
  }
  return dep;
}

}  // namespace oodb::cluster
