#include "cluster/page_splitter.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <optional>
#include <unordered_map>
#include <utility>

namespace oodb::cluster {

namespace {

/// Union-find over node indices with component byte sizes.
class UnionFind {
 public:
  explicit UnionFind(const DependencyGraph& g) {
    parent_.resize(g.nodes.size());
    std::iota(parent_.begin(), parent_.end(), 0u);
    size_.resize(g.nodes.size());
    for (size_t i = 0; i < g.nodes.size(); ++i) {
      size_[i] = g.nodes[i].size_bytes;
    }
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Merges the components of a and b if their combined byte size is at
  /// most `cap`. Returns true on merge.
  bool UnionIfFits(uint32_t a, uint32_t b, uint64_t cap) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    if (size_[a] + size_[b] > cap) return false;
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }

  uint64_t ComponentSize(uint32_t root) const { return size_[root]; }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint64_t> size_;
};

/// Packs groups (given as lists of node indices with byte sizes) onto two
/// sides of at most `capacity` bytes each, largest group first onto the
/// lighter feasible side. Groups that fit neither side are broken up and
/// their nodes packed individually (first-fit decreasing). Returns false
/// if even single nodes cannot be packed.
bool PackGroups(const DependencyGraph& g,
                std::vector<std::vector<uint32_t>> groups, uint64_t capacity,
                std::vector<int>& side_of) {
  auto group_size = [&](const std::vector<uint32_t>& group) {
    uint64_t s = 0;
    for (uint32_t n : group) s += g.nodes[n].size_bytes;
    return s;
  };
  std::sort(groups.begin(), groups.end(),
            [&](const auto& a, const auto& b) {
              return group_size(a) > group_size(b);
            });

  uint64_t load[2] = {0, 0};
  std::vector<uint32_t> leftovers;
  for (const auto& group : groups) {
    const uint64_t s = group_size(group);
    const int lighter = load[0] <= load[1] ? 0 : 1;
    int target = -1;
    if (load[lighter] + s <= capacity) {
      target = lighter;
    } else if (load[1 - lighter] + s <= capacity) {
      target = 1 - lighter;
    }
    if (target >= 0) {
      for (uint32_t n : group) side_of[n] = target;
      load[target] += s;
    } else {
      // The group itself no longer fits as a unit; its arcs will be broken.
      leftovers.insert(leftovers.end(), group.begin(), group.end());
    }
  }
  std::sort(leftovers.begin(), leftovers.end(),
            [&](uint32_t a, uint32_t b) {
              return g.nodes[a].size_bytes > g.nodes[b].size_bytes;
            });
  for (uint32_t n : leftovers) {
    const uint64_t s = g.nodes[n].size_bytes;
    const int lighter = load[0] <= load[1] ? 0 : 1;
    if (load[lighter] + s <= capacity) {
      side_of[n] = lighter;
      load[lighter] += s;
    } else if (load[1 - lighter] + s <= capacity) {
      side_of[n] = 1 - lighter;
      load[1 - lighter] += s;
    } else {
      return false;  // cannot split into two pages at all
    }
  }
  return true;
}

SplitResult ResultFromSides(const DependencyGraph& g,
                            const std::vector<int>& side_of,
                            uint64_t capacity) {
  SplitResult result;
  uint64_t load[2] = {0, 0};
  for (uint32_t i = 0; i < g.nodes.size(); ++i) {
    (side_of[i] == 0 ? result.left : result.right).push_back(i);
    load[side_of[i] == 0 ? 0 : 1] += g.nodes[i].size_bytes;
  }
  result.broken_cost = CutCost(g, side_of);
  result.feasible = load[0] <= capacity && load[1] <= capacity &&
                    !result.left.empty() && !result.right.empty();
  return result;
}

}  // namespace

double CutCost(const DependencyGraph& graph, const std::vector<int>& side) {
  OODB_CHECK_EQ(side.size(), graph.nodes.size());
  double cost = 0;
  for (const DepArc& arc : graph.arcs) {
    if (side[arc.a] != side[arc.b]) cost += arc.weight;
  }
  return cost;
}

SplitResult GreedyLinearSplit(const DependencyGraph& graph,
                              uint32_t capacity_bytes) {
  const size_t n = graph.nodes.size();
  if (n == 0) return SplitResult{};
  // A merged group must still fit on one page (each side of the split is
  // one page); the two-sided packing below enforces the rest.
  const uint64_t group_cap = capacity_bytes;

  uint64_t steps = 0;
  UnionFind uf(graph);
  // The single pass over the arc set (the paper's linearity argument: no
  // sorting, each arc examined once).
  for (const DepArc& arc : graph.arcs) {
    uf.UnionIfFits(arc.a, arc.b, group_cap);
    ++steps;
  }

  // Gather components.
  std::vector<std::vector<uint32_t>> groups;
  std::vector<int32_t> group_of(n, -1);
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t root = uf.Find(i);
    if (group_of[root] < 0) {
      group_of[root] = static_cast<int32_t>(groups.size());
      groups.emplace_back();
    }
    groups[static_cast<size_t>(group_of[root])].push_back(i);
  }

  // Everything merged into one group (possible only when the whole graph
  // fits a page): a valid split needs two non-empty sides, so fall back to
  // node granularity.
  if (groups.size() == 1 && n >= 2) {
    groups.clear();
    for (uint32_t i = 0; i < n; ++i) groups.push_back({i});
  }

  std::vector<int> side_of(n, 0);
  if (!PackGroups(graph, std::move(groups), capacity_bytes, side_of)) {
    SplitResult r;
    r.feasible = false;
    r.search_steps = steps;
    return r;
  }
  SplitResult result = ResultFromSides(graph, side_of, capacity_bytes);
  result.search_steps = steps;
  return result;
}

namespace {

/// Exact branch-and-bound solver on graphs small enough to enumerate.
class ExactSolver {
 public:
  ExactSolver(const DependencyGraph& g, uint64_t capacity)
      : g_(g), capacity_(capacity), n_(g.nodes.size()) {
    // Order nodes by total incident arc weight (heaviest first) so pruning
    // bites early.
    order_.resize(n_);
    std::iota(order_.begin(), order_.end(), 0u);
    std::vector<double> incident(n_, 0);
    adj_.resize(n_);
    for (const DepArc& a : g_.arcs) {
      incident[a.a] += a.weight;
      incident[a.b] += a.weight;
      adj_[a.a].push_back({a.b, a.weight});
      adj_[a.b].push_back({a.a, a.weight});
    }
    std::sort(order_.begin(), order_.end(), [&](uint32_t a, uint32_t b) {
      return incident[a] > incident[b];
    });
  }

  /// Returns the best assignment found, or nullopt if no feasible split
  /// exists. `initial_bound` seeds the cost pruning (e.g. the greedy
  /// solution's cost).
  std::optional<std::vector<int>> Solve(double initial_bound) {
    best_cost_ = initial_bound;
    found_ = false;
    side_.assign(n_, -1);
    // Symmetry break: the first-ordered node goes to side 0.
    Recurse(0, 0.0, 0, 0);
    if (!found_) return std::nullopt;
    return best_side_;
  }

  double best_cost() const { return best_cost_; }
  uint64_t steps() const { return steps_; }

 private:
  void Recurse(uint32_t depth, double cut, uint64_t load0, uint64_t load1) {
    ++steps_;
    if (cut > best_cost_ + 1e-12) return;
    if (depth == n_) {
      if (load0 == 0 || load1 == 0) return;  // must actually split
      if (cut < best_cost_ - 1e-12 || !found_) {
        best_cost_ = cut;
        best_side_ = side_;
        found_ = true;
      }
      return;
    }
    const uint32_t node = order_[depth];
    const uint32_t node_size = g_.nodes[node].size_bytes;
    // Symmetry break: the first-ordered node is fixed to side 0.
    const int last_side = depth == 0 ? 0 : 1;
    for (int s = 0; s <= last_side; ++s) {
      const uint64_t new_load0 = load0 + (s == 0 ? node_size : 0);
      const uint64_t new_load1 = load1 + (s == 1 ? node_size : 0);
      if (new_load0 > capacity_ || new_load1 > capacity_) continue;
      double new_cut = cut;
      for (const auto& [nbr, w] : adj_[node]) {
        if (side_[nbr] >= 0 && side_[nbr] != s) new_cut += w;
      }
      side_[node] = s;
      Recurse(depth + 1, new_cut, new_load0, new_load1);
      side_[node] = -1;
    }
  }

  const DependencyGraph& g_;
  uint64_t capacity_;
  uint32_t n_;
  std::vector<uint32_t> order_;
  std::vector<std::vector<std::pair<uint32_t, double>>> adj_;
  std::vector<int> side_;
  std::vector<int> best_side_;
  double best_cost_ = std::numeric_limits<double>::infinity();
  bool found_ = false;
  uint64_t steps_ = 0;
};

/// Coarsens `g` by merging the heaviest arcs (capacity-bounded) until at
/// most `target` components remain; returns the component graph and the
/// mapping component-index -> original node indices.
std::pair<DependencyGraph, std::vector<std::vector<uint32_t>>> Coarsen(
    const DependencyGraph& g, uint32_t capacity, int target) {
  std::vector<DepArc> arcs = g.arcs;
  std::sort(arcs.begin(), arcs.end(),
            [](const DepArc& a, const DepArc& b) {
              return a.weight > b.weight;
            });
  UnionFind uf(g);
  // Merged clumps must stay well under a page so an exact split of the
  // component graph remains feasible.
  const uint64_t clump_cap = capacity / 4 + 1;
  size_t components = g.nodes.size();
  for (const DepArc& arc : arcs) {
    if (static_cast<int>(components) <= target) break;
    if (uf.UnionIfFits(arc.a, arc.b, clump_cap)) --components;
  }

  std::vector<std::vector<uint32_t>> members;
  std::vector<int32_t> comp_of_root(g.nodes.size(), -1);
  std::vector<uint32_t> comp_of_node(g.nodes.size());
  DependencyGraph coarse;
  for (uint32_t i = 0; i < g.nodes.size(); ++i) {
    const uint32_t root = uf.Find(i);
    if (comp_of_root[root] < 0) {
      comp_of_root[root] = static_cast<int32_t>(coarse.nodes.size());
      coarse.nodes.push_back(DepNode{obj::kInvalidObject, 0});
      members.emplace_back();
    }
    const auto c = static_cast<uint32_t>(comp_of_root[root]);
    comp_of_node[i] = c;
    coarse.nodes[c].size_bytes += g.nodes[i].size_bytes;
    members[c].push_back(i);
  }
  std::unordered_map<uint64_t, double> pair_weight;
  for (const DepArc& arc : g.arcs) {
    const uint32_t a = comp_of_node[arc.a];
    const uint32_t b = comp_of_node[arc.b];
    if (a == b) continue;
    const uint32_t lo = std::min(a, b);
    const uint32_t hi = std::max(a, b);
    pair_weight[(static_cast<uint64_t>(lo) << 32) | hi] += arc.weight;
  }
  for (const auto& [key, weight] : pair_weight) {
    coarse.arcs.push_back(DepArc{static_cast<uint32_t>(key >> 32),
                                 static_cast<uint32_t>(key & 0xFFFFFFFFu),
                                 weight});
  }
  return {std::move(coarse), std::move(members)};
}

}  // namespace

SplitResult ExhaustiveMinCutSplit(const DependencyGraph& graph,
                                  uint32_t capacity_bytes,
                                  int exact_node_limit) {
  const size_t n = graph.nodes.size();
  if (n == 0) return SplitResult{};

  // Seed the bound with the greedy solution so pruning starts tight, and
  // fall back to it if the exact search proves nothing better.
  SplitResult greedy = GreedyLinearSplit(graph, capacity_bytes);
  const double bound = greedy.feasible
                           ? greedy.broken_cost
                           : std::numeric_limits<double>::infinity();

  if (static_cast<int>(n) <= exact_node_limit) {
    ExactSolver solver(graph, capacity_bytes);
    auto side = solver.Solve(bound + 1e-9);
    if (!side.has_value()) {
      greedy.search_steps += solver.steps();
      return greedy;
    }
    SplitResult result = ResultFromSides(graph, *side, capacity_bytes);
    result.search_steps = greedy.search_steps + solver.steps();
    return result;
  }

  // Too many nodes for exact enumeration: coarsen, solve exactly on the
  // component graph, then expand.
  auto [coarse, members] = Coarsen(graph, capacity_bytes, exact_node_limit);
  ExactSolver solver(coarse, capacity_bytes);
  auto coarse_side = solver.Solve(bound + 1e-9);
  const uint64_t total_steps = greedy.search_steps + solver.steps();
  if (!coarse_side.has_value()) {
    greedy.search_steps = total_steps;
    return greedy;
  }
  std::vector<int> side_of(n, 0);
  for (uint32_t c = 0; c < coarse.nodes.size(); ++c) {
    for (uint32_t node : members[c]) side_of[node] = (*coarse_side)[c];
  }
  SplitResult result = ResultFromSides(graph, side_of, capacity_bytes);
  result.search_steps = total_steps;
  // Keep whichever of {exact-on-coarse, greedy} is better and feasible.
  if (greedy.feasible &&
      (!result.feasible || greedy.broken_cost < result.broken_cost)) {
    greedy.search_steps = total_steps;
    return greedy;
  }
  return result;
}

}  // namespace oodb::cluster
