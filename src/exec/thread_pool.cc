#include "exec/thread_pool.h"

#include "util/check.h"

namespace oodb::exec {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  OODB_CHECK(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mu_);
    OODB_CHECK(!stopping_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace oodb::exec
