#ifndef SEMCLUST_EXEC_EXPERIMENT_RUNNER_H_
#define SEMCLUST_EXEC_EXPERIMENT_RUNNER_H_

#include <cstdint>
#include <vector>

#include "core/model_config.h"
#include "core/run_result.h"
#include "obs/metrics.h"
#include "obs/time_series.h"

/// \file
/// Parallel execution of independent experiment cells. The paper's
/// evaluation is a grid of independent simulations (policies x workloads x
/// buffering combos); each cell owns its entire model state, so the grid
/// parallelises perfectly. The runner guarantees a *determinism contract*:
/// the statistics of every cell are bit-identical regardless of the job
/// count or the order in which workers pick cells up, because
///   - each cell's seed is derived only from (its configured seed, its
///     submission index) via splitmix64, never from scheduling state, and
///   - results are written into a slot pre-assigned by submission index.
///
/// Environment:
///   SEMCLUST_BENCH_JOBS=n   worker threads (default: hardware
///                           concurrency; 1 runs cells serially on the
///                           calling thread, the legacy path)

namespace oodb::exec {

/// One cell's outcome: the simulation statistics plus runner metadata.
struct CellOutcome {
  core::RunResult result;
  /// The derived seed the cell actually ran with.
  uint64_t seed = 0;
  /// Wall-clock seconds spent simulating this cell.
  double wall_s = 0;
};

/// Runs batches of independent `core::RunCell` simulations on a fixed-size
/// thread pool. Stateless between batches; cheap to construct.
class ExperimentRunner {
 public:
  /// `jobs` <= 1 forces the serial path; otherwise up to `jobs` worker
  /// threads run cells concurrently.
  explicit ExperimentRunner(int jobs = JobsFromEnv());

  /// Runs every cell and returns outcomes in submission order. Each cell's
  /// config has its seed replaced by CellSeed(config.seed, index) and its
  /// cell_index stamped with the submission index before the run, so a
  /// batch gives every cell an independent, reproducible random stream and
  /// a stable identity in exported traces.
  std::vector<CellOutcome> Run(std::vector<core::ModelConfig> cells) const;

  /// Folds every outcome's metric snapshot into one, in submission order.
  /// Because each cell's snapshot depends only on its own config and the
  /// fold order is fixed, the merged snapshot is bit-identical at any job
  /// count — the determinism contract extended to observability.
  static obs::MetricsSnapshot MergeMetrics(
      const std::vector<CellOutcome>& outcomes);

  /// Folds every outcome's telemetry series into one, in submission
  /// order: sample i of the merged series accumulates sample i of every
  /// cell (counter deltas sum, placement audits merge). Same determinism
  /// argument as MergeMetrics — the fold order is fixed, so the merged
  /// series is bit-identical at any job count.
  static obs::TimeSeries MergeSeries(
      const std::vector<CellOutcome>& outcomes);

  int jobs() const { return jobs_; }

  /// SEMCLUST_BENCH_JOBS, defaulting to std::thread::hardware_concurrency.
  static int JobsFromEnv();

  /// splitmix64 over (base_seed, cell_index): statistically independent
  /// per-cell seeds that depend only on submission order, never on
  /// scheduling. Stable across platforms and job counts.
  static uint64_t CellSeed(uint64_t base_seed, uint64_t cell_index);

 private:
  int jobs_;
};

}  // namespace oodb::exec

#endif  // SEMCLUST_EXEC_EXPERIMENT_RUNNER_H_
