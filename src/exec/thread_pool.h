#ifndef SEMCLUST_EXEC_THREAD_POOL_H_
#define SEMCLUST_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file
/// A fixed-size worker-thread pool for the experiment harness. Tasks are
/// plain closures; the pool makes no ordering promises — callers that need
/// deterministic results must make each task independent and write into a
/// pre-sized slot (see ExperimentRunner).

namespace oodb::exec {

/// Fixed-size thread pool. Threads are started in the constructor and
/// joined in the destructor; Wait() blocks until every submitted task has
/// finished.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Drains outstanding work, then stops and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Must not be called after the destructor starts.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is executing.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;      // tasks currently executing
  bool stopping_ = false;
};

}  // namespace oodb::exec

#endif  // SEMCLUST_EXEC_THREAD_POOL_H_
