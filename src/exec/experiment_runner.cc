#include "exec/experiment_runner.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "core/experiment.h"
#include "exec/thread_pool.h"

namespace oodb::exec {

namespace {

// Each grid cell builds and tears down multi-megabyte flat buffers (edge
// arenas, page directories, score scratch). glibc serves those from mmap
// and hands them straight back to the kernel on free, so a 45-cell grid
// spends ~12% of its wall-clock in mmap/munmap + refaulting the same
// ranges. Keeping large blocks on the brk heap and deferring trim removes
// that churn entirely; short-lived bench/CLI processes don't care about
// the retained RSS.
void TuneAllocatorForCellChurn() {
#if defined(__GLIBC__)
  static const bool done = [] {
    mallopt(M_MMAP_THRESHOLD, 64 << 20);
    mallopt(M_TRIM_THRESHOLD, 256 << 20);
    return true;
  }();
  (void)done;
#endif
}

double Now() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

CellOutcome RunOne(core::ModelConfig cfg) {
  CellOutcome out;
  out.seed = cfg.seed;
  const double start = Now();
  out.result = core::RunCell(cfg);
  out.wall_s = Now() - start;
  return out;
}

}  // namespace

ExperimentRunner::ExperimentRunner(int jobs) : jobs_(jobs < 1 ? 1 : jobs) {}

int ExperimentRunner::JobsFromEnv() {
  if (const char* env = std::getenv("SEMCLUST_BENCH_JOBS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

obs::MetricsSnapshot ExperimentRunner::MergeMetrics(
    const std::vector<CellOutcome>& outcomes) {
  obs::MetricsSnapshot merged;
  for (const CellOutcome& o : outcomes) {
    merged.MergeFrom(o.result.metrics);
  }
  return merged;
}

obs::TimeSeries ExperimentRunner::MergeSeries(
    const std::vector<CellOutcome>& outcomes) {
  obs::TimeSeries merged;
  for (const CellOutcome& o : outcomes) {
    merged.MergeFrom(o.result.series);
  }
  return merged;
}

uint64_t ExperimentRunner::CellSeed(uint64_t base_seed, uint64_t cell_index) {
  // splitmix64 (Steele, Lea & Flood) over the pair. Mixing the index with
  // a large odd constant before adding keeps adjacent indices far apart in
  // the input space.
  uint64_t z = base_seed + 0x9E3779B97F4A7C15ULL * (cell_index + 1);
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ULL;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBULL;
  z ^= z >> 31;
  // A zero seed would degenerate some generators; nudge deterministically.
  return z == 0 ? 0x9E3779B97F4A7C15ULL : z;
}

std::vector<CellOutcome> ExperimentRunner::Run(
    std::vector<core::ModelConfig> cells) const {
  TuneAllocatorForCellChurn();
  for (size_t i = 0; i < cells.size(); ++i) {
    cells[i].seed = CellSeed(cells[i].seed, static_cast<uint64_t>(i));
    cells[i].cell_index = static_cast<int>(i);
  }
  std::vector<CellOutcome> outcomes(cells.size());

  const int workers =
      static_cast<int>(std::min<size_t>(static_cast<size_t>(jobs_),
                                        cells.size() == 0 ? 1 : cells.size()));
  if (workers <= 1) {
    // Legacy serial path: same derived seeds, same results, no threads.
    for (size_t i = 0; i < cells.size(); ++i) {
      outcomes[i] = RunOne(std::move(cells[i]));
    }
    return outcomes;
  }

  // Dynamic self-scheduling over a shared index: cheap, and harmless to
  // determinism because a cell's result depends only on its own config.
  std::atomic<size_t> next{0};
  ThreadPool pool(workers);
  for (int w = 0; w < workers; ++w) {
    pool.Submit([&next, &cells, &outcomes] {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= cells.size()) return;
        outcomes[i] = RunOne(std::move(cells[i]));
      }
    });
  }
  pool.Wait();
  return outcomes;
}

}  // namespace oodb::exec
