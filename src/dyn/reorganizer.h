#ifndef SEMCLUST_DYN_REORGANIZER_H_
#define SEMCLUST_DYN_REORGANIZER_H_

#include <cstdint>
#include <vector>

#include "dyn/access_tracker.h"
#include "objmodel/object_graph.h"
#include "storage/storage_manager.h"

/// \file
/// Executes a clustering unit: packs the unit's members onto the anchor's
/// page (or fresh overflow pages) through StorageManager::Relocate — the
/// same placement primitive the ClusterManager's write path uses. The
/// Reorganizer itself is pure state mutation; the caller (TxnPipeline)
/// charges page reads, log writes, and CPU for every touched page on the
/// virtual clock so re-clustering cost shows up in response times.

namespace oodb::dyn {

struct ReorgMove {
  obj::ObjectId object = obj::kInvalidObject;
  store::PageId from = store::kInvalidPage;
  store::PageId to = store::kInvalidPage;
  uint32_t size_bytes = 0;
};

struct ReorgResult {
  std::vector<ReorgMove> moves;
  /// Every page whose contents changed (sources + destinations), sorted,
  /// deduplicated — the caller fetches and dirties each one.
  std::vector<store::PageId> pages_touched;
};

class Reorganizer {
 public:
  Reorganizer(const obj::ObjectGraph* graph, store::StorageManager* storage)
      : graph_(graph), storage_(storage) {}

  /// Moves up to `max_moves` of the unit's members next to its anchor.
  /// Members that are dead, unplaced, or already co-located are skipped;
  /// when the anchor's page fills, packing continues on a fresh page.
  ReorgResult Reorganize(const ClusterUnit& unit, int max_moves);

  uint64_t objects_moved() const { return objects_moved_; }
  uint64_t units_executed() const { return units_executed_; }

 private:
  const obj::ObjectGraph* graph_;
  store::StorageManager* storage_;
  uint64_t objects_moved_ = 0;
  uint64_t units_executed_ = 0;
};

}  // namespace oodb::dyn

#endif  // SEMCLUST_DYN_REORGANIZER_H_
