#include "dyn/recluster_policy.h"

#include <algorithm>

namespace oodb::dyn {

void ReclusterPolicy::Enqueue(std::vector<ClusterUnit> units, double /*now*/) {
  for (auto& u : units) {
    // Insertion keeps the queue hottest-first; ties break on anchor id so
    // the order never depends on arrival interleaving.
    auto pos = std::lower_bound(
        queue_.begin(), queue_.end(), u,
        [](const ClusterUnit& a, const ClusterUnit& b) {
          if (a.heat != b.heat) return a.heat > b.heat;
          return a.anchor < b.anchor;
        });
    queue_.insert(pos, std::move(u));
  }
}

std::vector<ClusterUnit> DstcPolicy::Drain(double /*now*/,
                                           double /*queue_depth*/) {
  std::vector<ClusterUnit> out(std::make_move_iterator(queue_.begin()),
                               std::make_move_iterator(queue_.end()));
  queue_.clear();
  return out;
}

std::vector<ClusterUnit> OpcfPolicy::Drain(double now, double queue_depth) {
  if (queue_.empty()) {
    // Nothing to defer; close any open deferral window.
    if (deferring_) {
      deferral_s_ += now - defer_start_;
      deferring_ = false;
    }
    return {};
  }
  if (queue_depth > watermark_) {
    if (!deferring_) {
      deferring_ = true;
      defer_start_ = now;
      ++deferral_events_;
    }
    return {};
  }
  if (deferring_) {
    deferral_s_ += now - defer_start_;
    deferring_ = false;
  }
  std::vector<ClusterUnit> out;
  for (int i = 0; i < batch_ && !queue_.empty(); ++i) {
    out.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return out;
}

std::unique_ptr<ReclusterPolicy> MakeReclusterPolicy(const DynConfig& config) {
  switch (config.policy) {
    case PolicyKind::kNone:
      return nullptr;
    case PolicyKind::kDstc:
      return std::make_unique<DstcPolicy>();
    case PolicyKind::kOpcf:
      return std::make_unique<OpcfPolicy>(config.opcf_queue_watermark,
                                          config.opcf_batch);
  }
  return nullptr;
}

}  // namespace oodb::dyn
