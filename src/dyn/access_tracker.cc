#include "dyn/access_tracker.h"

#include <algorithm>
#include <set>

namespace oodb::dyn {

void AccessTracker::BeginTransaction(obj::ObjectId root) {
  current_root_ = root;
  ++txns_in_period_;
}

void AccessTracker::Observe(obj::ObjectId id) {
  if (id == obj::kInvalidObject) return;
  ++observed_refs_;

  auto it = heat_.find(id);
  if (it != heat_.end()) {
    it->second += 1.0;
  } else if (heat_.size() < static_cast<size_t>(config_.max_tracked_objects)) {
    heat_.emplace(id, 1.0);
  } else {
    ++dropped_objects_;
    return;  // untracked objects also don't create links
  }

  if (current_root_ == obj::kInvalidObject || current_root_ == id) return;
  if (!heat_.contains(current_root_)) return;
  const uint64_t key = LinkKey(current_root_, id);
  auto lit = links_.find(key);
  if (lit != links_.end()) {
    lit->second += 1.0;
  } else if (links_.size() < static_cast<size_t>(config_.max_tracked_links)) {
    links_.emplace(key, 1.0);
  } else {
    ++dropped_links_;
  }
}

std::vector<ClusterUnit> AccessTracker::Consolidate() {
  // Anchor candidates: heat >= threshold, ordered by (heat desc, id asc) so
  // the hottest objects claim their co-access partners first.
  std::vector<std::pair<double, obj::ObjectId>> anchors;
  for (const auto& [id, h] : heat_) {
    if (h >= config_.trigger_threshold) anchors.emplace_back(h, id);
  }
  std::sort(anchors.begin(), anchors.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });

  // Per-object partner lists from the link table (both endpoints).
  std::map<obj::ObjectId, std::vector<std::pair<double, obj::ObjectId>>>
      partners;
  for (const auto& [key, w] : links_) {
    const auto a = static_cast<obj::ObjectId>(key >> 32);
    const auto b = static_cast<obj::ObjectId>(key & 0xFFFFFFFFu);
    partners[a].emplace_back(w, b);
    partners[b].emplace_back(w, a);
  }

  std::vector<ClusterUnit> units;
  std::set<obj::ObjectId> absorbed;
  for (const auto& [h, anchor] : anchors) {
    if (absorbed.contains(anchor)) continue;
    auto pit = partners.find(anchor);
    if (pit == partners.end()) continue;  // hot but never co-accessed
    auto& list = pit->second;
    std::sort(list.begin(), list.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    ClusterUnit unit;
    unit.anchor = anchor;
    unit.heat = h;
    for (const auto& [w, id] : list) {
      if (static_cast<int>(unit.members.size()) >= config_.max_unit_size)
        break;
      if (absorbed.contains(id)) continue;
      unit.members.push_back(id);
    }
    if (unit.members.empty()) continue;
    absorbed.insert(anchor);
    for (obj::ObjectId m : unit.members) absorbed.insert(m);
    units.push_back(std::move(unit));
  }

  // Decay + prune: the observation window forgets, bounding both tables to
  // the recently-hot working set.
  for (auto it = heat_.begin(); it != heat_.end();) {
    it->second *= config_.heat_decay;
    it = it->second < 0.5 ? heat_.erase(it) : std::next(it);
  }
  for (auto it = links_.begin(); it != links_.end();) {
    it->second *= config_.heat_decay;
    it = it->second < 0.5 ? links_.erase(it) : std::next(it);
  }
  txns_in_period_ = 0;
  return units;
}

}  // namespace oodb::dyn
