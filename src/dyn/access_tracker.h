#ifndef SEMCLUST_DYN_ACCESS_TRACKER_H_
#define SEMCLUST_DYN_ACCESS_TRACKER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "dyn/dyn_config.h"
#include "objmodel/object_id.h"

/// \file
/// DSTC-style access statistics (Bullat & Schneider): the tracker observes
/// the object reference sequence from the transaction pipeline's read path
/// and maintains bounded per-object heat and per-link co-access weights.
/// At the end of each observation period the raw statistics are
/// consolidated into clustering units — an anchor object plus the
/// co-accessed members worth placing on its page.
///
/// Determinism: both tables are std::map (ordered by key), every tie is
/// broken by ObjectId, and no randomness or wall-clock input is used, so a
/// given reference sequence always produces the same units. Memory is
/// bounded by max_tracked_objects / max_tracked_links; arrivals while the
/// tables are full are counted in dropped_*() rather than evicting
/// (evicting would make hot-set membership depend on arrival order noise;
/// decay at consolidation is the eviction mechanism).

namespace oodb::dyn {

/// One consolidated clustering unit: `members` are worth co-locating with
/// `anchor`, ordered by descending co-access weight.
struct ClusterUnit {
  obj::ObjectId anchor = obj::kInvalidObject;
  double heat = 0.0;
  std::vector<obj::ObjectId> members;
};

class AccessTracker {
 public:
  explicit AccessTracker(const DynConfig& config) : config_(config) {}

  /// Marks the root of the transaction now executing; subsequent Observe
  /// calls record co-access links against it. Also advances the
  /// observation-period clock.
  void BeginTransaction(obj::ObjectId root);

  /// Records one logical object reference.
  void Observe(obj::ObjectId id);

  /// True once observation_period transactions have been observed since
  /// the last consolidation.
  bool ConsolidationDue() const {
    return txns_in_period_ >= config_.observation_period;
  }

  /// Builds clustering units from the current statistics (anchors are
  /// objects whose heat reached trigger_threshold, by descending heat),
  /// then decays and prunes both tables and resets the period clock.
  std::vector<ClusterUnit> Consolidate();

  size_t tracked_objects() const { return heat_.size(); }
  size_t tracked_links() const { return links_.size(); }
  uint64_t dropped_objects() const { return dropped_objects_; }
  uint64_t dropped_links() const { return dropped_links_; }
  uint64_t observed_refs() const { return observed_refs_; }

 private:
  static uint64_t LinkKey(obj::ObjectId a, obj::ObjectId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  DynConfig config_;
  obj::ObjectId current_root_ = obj::kInvalidObject;
  std::map<obj::ObjectId, double> heat_;
  std::map<uint64_t, double> links_;
  int txns_in_period_ = 0;
  uint64_t observed_refs_ = 0;
  uint64_t dropped_objects_ = 0;
  uint64_t dropped_links_ = 0;
};

}  // namespace oodb::dyn

#endif  // SEMCLUST_DYN_ACCESS_TRACKER_H_
