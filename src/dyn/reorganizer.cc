#include "dyn/reorganizer.h"

#include <algorithm>

namespace oodb::dyn {

ReorgResult Reorganizer::Reorganize(const ClusterUnit& unit, int max_moves) {
  ReorgResult result;
  if (unit.anchor == obj::kInvalidObject || !graph_->IsLive(unit.anchor) ||
      !storage_->IsPlaced(unit.anchor)) {
    return result;  // the anchor died between trigger and drain
  }
  store::PageId target = storage_->PageOf(unit.anchor);
  for (obj::ObjectId m : unit.members) {
    if (static_cast<int>(result.moves.size()) >= max_moves) break;
    if (!graph_->IsLive(m) || !storage_->IsPlaced(m)) continue;
    const store::PageId from = storage_->PageOf(m);
    if (from == target) continue;  // already co-located
    const uint32_t size = storage_->SizeOf(m);
    if (!storage_->page(target).Fits(size)) {
      // The anchor's page is full: continue packing the unit's tail onto a
      // fresh page — members keep each other company even off the anchor.
      target = storage_->AllocatePage();
      if (!storage_->page(target).Fits(size)) continue;  // oversized object
    }
    if (!storage_->Relocate(m, target).ok()) continue;
    result.moves.push_back(ReorgMove{m, from, target, size});
    ++objects_moved_;
  }
  if (!result.moves.empty()) {
    ++units_executed_;
    for (const ReorgMove& mv : result.moves) {
      result.pages_touched.push_back(mv.from);
      result.pages_touched.push_back(mv.to);
    }
    std::sort(result.pages_touched.begin(), result.pages_touched.end());
    result.pages_touched.erase(
        std::unique(result.pages_touched.begin(), result.pages_touched.end()),
        result.pages_touched.end());
  }
  return result;
}

}  // namespace oodb::dyn
