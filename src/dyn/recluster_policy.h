#ifndef SEMCLUST_DYN_RECLUSTER_POLICY_H_
#define SEMCLUST_DYN_RECLUSTER_POLICY_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "dyn/access_tracker.h"
#include "dyn/dyn_config.h"

/// \file
/// When does a triggered clustering unit actually get reorganised?
///
///  - DstcPolicy: immediately — every consolidation's units are drained in
///    full by the triggering transaction (Bullat & Schneider's behaviour;
///    reorganisation cost lands on foreground response times).
///  - OpcfPolicy: opportunistically — units queue while the deepest disk
///    queue exceeds a watermark, and drain in small prioritised (hottest
///    first) batches once the I/O subsystem has slack. Deferral time and
///    transitions are accounted so the benefit is measurable.

namespace oodb::dyn {

/// Decides when enqueued clustering units may be reorganised.
class ReclusterPolicy {
 public:
  virtual ~ReclusterPolicy() = default;

  virtual const char* name() const = 0;

  /// Hands a consolidation's units to the policy. `now` is simulated time.
  void Enqueue(std::vector<ClusterUnit> units, double now);

  /// Returns the units the caller should reorganise now. `queue_depth` is
  /// the deepest simulated disk queue (queued + in service).
  virtual std::vector<ClusterUnit> Drain(double now, double queue_depth) = 0;

  size_t pending() const { return queue_.size(); }
  double deferral_time_s() const { return deferral_s_; }
  uint64_t deferral_events() const { return deferral_events_; }

 protected:
  /// Pending units, kept sorted hottest-first (ties by anchor id) so a
  /// prioritised partial drain is a pop from the front.
  std::deque<ClusterUnit> queue_;
  double deferral_s_ = 0.0;
  uint64_t deferral_events_ = 0;
};

class DstcPolicy final : public ReclusterPolicy {
 public:
  const char* name() const override { return "DSTC"; }
  std::vector<ClusterUnit> Drain(double now, double queue_depth) override;
};

class OpcfPolicy final : public ReclusterPolicy {
 public:
  OpcfPolicy(double queue_watermark, int batch)
      : watermark_(queue_watermark), batch_(batch) {}

  const char* name() const override { return "OPCF"; }
  std::vector<ClusterUnit> Drain(double now, double queue_depth) override;

 private:
  double watermark_;
  int batch_;
  bool deferring_ = false;
  double defer_start_ = 0.0;
};

/// nullptr when `config.policy == kNone`.
std::unique_ptr<ReclusterPolicy> MakeReclusterPolicy(const DynConfig& config);

}  // namespace oodb::dyn

#endif  // SEMCLUST_DYN_RECLUSTER_POLICY_H_
