#ifndef SEMCLUST_DYN_DYN_CONFIG_H_
#define SEMCLUST_DYN_DYN_CONFIG_H_

#include <cstdint>
#include <string>

#include "util/status.h"

/// \file
/// Configuration for the dynamic re-clustering subsystem (src/dyn/).
///
/// Header-only on purpose: `cluster::ClusterConfig` embeds a DynConfig so
/// the dynamic policy rides the existing clustering sweep axis (labels,
/// scenario files, policy registry) without a cluster -> dyn library
/// dependency. The runtime machinery (AccessTracker / ReclusterPolicy /
/// Reorganizer) lives in the semclust_dyn library and is only linked where
/// it is used (core).

namespace oodb::dyn {

/// The dynamic re-clustering policy family (DESIGN.md §13).
enum class PolicyKind : uint8_t {
  kNone = 0,  ///< write-time placement only (the paper's model, unchanged)
  kDstc = 1,  ///< DSTC: threshold-triggered reorganisation from access stats
  kOpcf = 2,  ///< OPCF: DSTC trigger, reorg deferred while I/O queues deep
};
inline constexpr int kNumPolicyKinds = 3;

inline constexpr PolicyKind kAllPolicyKinds[] = {
    PolicyKind::kNone, PolicyKind::kDstc, PolicyKind::kOpcf};

/// Canonical display name ("No_Dynamic", "DSTC", "OPCF").
inline const char* PolicyKindName(PolicyKind p) {
  switch (p) {
    case PolicyKind::kNone:
      return "No_Dynamic";
    case PolicyKind::kDstc:
      return "DSTC";
    case PolicyKind::kOpcf:
      return "OPCF";
  }
  return "?";
}

/// Knobs of the dynamic re-clustering subsystem. All defaults are inert:
/// with `policy == kNone` no tracker is built, no statistics are kept, and
/// the simulation is byte-identical to a build without src/dyn/.
struct DynConfig {
  PolicyKind policy = PolicyKind::kNone;

  /// Observation period (DSTC "analysis" cadence): number of read
  /// transactions between consolidations of the raw statistics into
  /// clustering units.
  int observation_period = 256;

  /// Multiplicative decay applied to every heat / link weight at each
  /// consolidation; entries decayed below 0.5 are dropped, which bounds
  /// table growth to recently-hot objects.
  double heat_decay = 0.5;

  /// Hard caps on the statistics tables (DSTC's bounded-memory argument):
  /// new objects / links arriving while the table is full are counted as
  /// dropped, never resized.
  int max_tracked_objects = 4096;
  int max_tracked_links = 8192;

  /// An object becomes a clustering-unit anchor when its accumulated heat
  /// reaches this threshold within the observation window.
  double trigger_threshold = 8.0;

  /// Cap on members per clustering unit (anchor excluded).
  int max_unit_size = 16;

  /// Cap on object moves charged to any single transaction's reorg drain.
  int max_moves_per_txn = 64;

  /// OPCF: reorganisation is deferred while the deepest simulated disk
  /// queue (queued + in service) exceeds this watermark...
  double opcf_queue_watermark = 2.0;
  /// ...and then drained at most this many units per transaction.
  int opcf_batch = 4;

  bool enabled() const { return policy != PolicyKind::kNone; }

  /// Suffix appended to ClusterConfig::Label(): "", "+DSTC", or "+OPCF".
  /// Empty when disabled so every pre-existing label is unchanged.
  std::string LabelSuffix() const {
    if (!enabled()) return "";
    return std::string("+") + PolicyKindName(policy);
  }

  Status Validate() const {
    if (observation_period <= 0)
      return Status::InvalidArgument(
          "dyn: observation_period must be positive");
    if (heat_decay < 0.0 || heat_decay >= 1.0)
      return Status::InvalidArgument("dyn: heat_decay must be in [0, 1)");
    if (max_tracked_objects <= 0 || max_tracked_links <= 0)
      return Status::InvalidArgument(
          "dyn: max_tracked_objects / max_tracked_links must be positive");
    if (trigger_threshold <= 0.0)
      return Status::InvalidArgument(
          "dyn: trigger_threshold must be positive");
    if (max_unit_size <= 0)
      return Status::InvalidArgument("dyn: max_unit_size must be positive");
    if (max_moves_per_txn <= 0)
      return Status::InvalidArgument(
          "dyn: max_moves_per_txn must be positive");
    if (opcf_queue_watermark < 0.0)
      return Status::InvalidArgument(
          "dyn: opcf_queue_watermark must be non-negative");
    if (opcf_batch <= 0)
      return Status::InvalidArgument("dyn: opcf_batch must be positive");
    return Status::Ok();
  }
};

}  // namespace oodb::dyn

#endif  // SEMCLUST_DYN_DYN_CONFIG_H_
