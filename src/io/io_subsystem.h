#ifndef SEMCLUST_IO_IO_SUBSYSTEM_H_
#define SEMCLUST_IO_IO_SUBSYSTEM_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace_sink.h"
#include "sim/process.h"
#include "sim/resource.h"
#include "sim/simulator.h"
#include "storage/page.h"

/// \file
/// The I/O-subsystem model block (paper §4.1): a set of disks with a
/// seek + rotation + transfer service-time model. Pages are striped across
/// disks by page id. Physical I/Os are counted per purpose so experiments
/// can attribute them (data read vs. dirty flush vs. log vs. clustering
/// exam vs. prefetch vs. split).

namespace oodb::io {

/// Service-time parameters of one disk. Defaults approximate a late-1980s
/// server disk (the paper's testbed era): ~16 ms average seek, 3600 RPM,
/// ~1.8 MB/s transfer.
struct DiskParams {
  double avg_seek_s = 0.016;
  double avg_rotation_s = 0.0083;
  double transfer_rate_bytes_per_s = 1.8e6;
};

/// Purpose tag for a physical I/O.
enum class IoCategory : uint8_t {
  kDataRead = 0,     ///< demand page read
  kDataWrite,        ///< synchronous page write (page allocation at split)
  kDirtyFlush,       ///< dirty-page write at eviction
  kLogWrite,         ///< transaction-log flush
  kClusterRead,      ///< candidate-page examination by the cluster manager
  kPrefetchRead,     ///< asynchronous prefetch read
};
inline constexpr int kNumIoCategories = 6;

/// Short display name ("data-read", ...).
const char* IoCategoryName(IoCategory c);

/// A farm of `num_disks` FCFS disks.
class IoSubsystem {
 public:
  IoSubsystem(sim::Simulator& sim, int num_disks, uint32_t page_size_bytes,
              DiskParams params = DiskParams());

  IoSubsystem(const IoSubsystem&) = delete;
  IoSubsystem& operator=(const IoSubsystem&) = delete;

  /// Synchronous (process-blocking) page read.
  sim::Task Read(store::PageId page, IoCategory category);

  /// Synchronous page write.
  sim::Task Write(store::PageId page, IoCategory category);

  /// Asynchronous page read (prefetch): occupies the disk but nobody
  /// waits. `on_complete` runs at I/O completion (may be null).
  void ReadAsync(store::PageId page, IoCategory category,
                 sim::Simulator::Callback on_complete = nullptr);

  /// Asynchronous page write (background dirty flush).
  void WriteAsync(store::PageId page, IoCategory category,
                  sim::Simulator::Callback on_complete = nullptr);

  /// Synchronous log flush: one sequential write, striped round-robin
  /// across the disks.
  sim::Task FlushLog();

  /// Fixed per-page service time under the disk model.
  double PageServiceTime() const;

  /// Disk a page is striped onto.
  int DiskOf(store::PageId page) const {
    return static_cast<int>(page % disks_.size());
  }

  uint64_t physical_count(IoCategory c) const {
    return counts_[static_cast<size_t>(c)];
  }
  uint64_t total_physical() const;
  uint64_t total_reads() const;
  uint64_t total_writes() const;

  /// Mean utilisation across disks.
  double MeanUtilization() const;

  /// Deepest instantaneous disk queue (waiters + requests in service) —
  /// OPCF's congestion signal for deferring page reorganisation.
  double MaxQueueDepth() const {
    size_t deepest = 0;
    for (const auto& d : disks_) {
      const size_t depth =
          d->queue_length() + static_cast<size_t>(d->busy());
      if (depth > deepest) deepest = depth;
    }
    return static_cast<double>(deepest);
  }

  int num_disks() const { return static_cast<int>(disks_.size()); }
  const sim::Resource& disk(int i) const { return *disks_[i]; }

  /// Zeroes the per-category counters (between warmup and measurement).
  void ResetCounters();

  /// Attaches an event sink (may be null). Every physical I/O then
  /// records a kPageRead/kPageWrite event with page, category, and disk.
  void set_trace(obs::TraceSink* trace) { trace_ = trace; }

 private:
  void TraceIo(obs::TraceEventType type, store::PageId page,
               IoCategory category, size_t disk) {
    if (trace_ != nullptr) {
      trace_->Record(obs::Subsystem::kIo, type, page,
                     static_cast<uint64_t>(category), disk);
    }
  }

  sim::Simulator& sim_;
  uint32_t page_size_;
  DiskParams params_;
  std::vector<std::unique_ptr<sim::Resource>> disks_;
  std::array<uint64_t, kNumIoCategories> counts_{};
  uint64_t log_stripe_ = 0;
  obs::TraceSink* trace_ = nullptr;
};

}  // namespace oodb::io

#endif  // SEMCLUST_IO_IO_SUBSYSTEM_H_
