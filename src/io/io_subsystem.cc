#include "io/io_subsystem.h"

namespace oodb::io {

const char* IoCategoryName(IoCategory c) {
  switch (c) {
    case IoCategory::kDataRead:
      return "data-read";
    case IoCategory::kDataWrite:
      return "data-write";
    case IoCategory::kDirtyFlush:
      return "dirty-flush";
    case IoCategory::kLogWrite:
      return "log-write";
    case IoCategory::kClusterRead:
      return "cluster-read";
    case IoCategory::kPrefetchRead:
      return "prefetch-read";
  }
  return "unknown";
}

IoSubsystem::IoSubsystem(sim::Simulator& sim, int num_disks,
                         uint32_t page_size_bytes, DiskParams params)
    : sim_(sim), page_size_(page_size_bytes), params_(params) {
  OODB_CHECK_GE(num_disks, 1);
  disks_.reserve(static_cast<size_t>(num_disks));
  for (int i = 0; i < num_disks; ++i) {
    disks_.push_back(std::make_unique<sim::Resource>(
        sim_, "disk" + std::to_string(i), /*servers=*/1));
  }
}

double IoSubsystem::PageServiceTime() const {
  return params_.avg_seek_s + params_.avg_rotation_s +
         static_cast<double>(page_size_) / params_.transfer_rate_bytes_per_s;
}

sim::Task IoSubsystem::Read(store::PageId page, IoCategory category) {
  ++counts_[static_cast<size_t>(category)];
  const auto disk = static_cast<size_t>(DiskOf(page));
  TraceIo(obs::TraceEventType::kPageRead, page, category, disk);
  co_await disks_[disk]->Use(PageServiceTime());
}

sim::Task IoSubsystem::Write(store::PageId page, IoCategory category) {
  ++counts_[static_cast<size_t>(category)];
  const auto disk = static_cast<size_t>(DiskOf(page));
  TraceIo(obs::TraceEventType::kPageWrite, page, category, disk);
  co_await disks_[disk]->Use(PageServiceTime());
}

void IoSubsystem::ReadAsync(store::PageId page, IoCategory category,
                            sim::Simulator::Callback on_complete) {
  ++counts_[static_cast<size_t>(category)];
  const auto disk = static_cast<size_t>(DiskOf(page));
  TraceIo(obs::TraceEventType::kPageRead, page, category, disk);
  disks_[disk]->UseDetached(PageServiceTime(), std::move(on_complete));
}

void IoSubsystem::WriteAsync(store::PageId page, IoCategory category,
                             sim::Simulator::Callback on_complete) {
  ++counts_[static_cast<size_t>(category)];
  const auto disk = static_cast<size_t>(DiskOf(page));
  TraceIo(obs::TraceEventType::kPageWrite, page, category, disk);
  disks_[disk]->UseDetached(PageServiceTime(), std::move(on_complete));
}

sim::Task IoSubsystem::FlushLog() {
  ++counts_[static_cast<size_t>(IoCategory::kLogWrite)];
  const size_t disk = log_stripe_++ % disks_.size();
  TraceIo(obs::TraceEventType::kPageWrite, store::kInvalidPage,
          IoCategory::kLogWrite, disk);
  // Sequential log write: no seek, half a rotation plus transfer.
  const double service =
      0.5 * params_.avg_rotation_s +
      static_cast<double>(page_size_) / params_.transfer_rate_bytes_per_s;
  co_await disks_[disk]->Use(service);
}

uint64_t IoSubsystem::total_physical() const {
  uint64_t total = 0;
  for (uint64_t c : counts_) total += c;
  return total;
}

uint64_t IoSubsystem::total_reads() const {
  return physical_count(IoCategory::kDataRead) +
         physical_count(IoCategory::kClusterRead) +
         physical_count(IoCategory::kPrefetchRead);
}

uint64_t IoSubsystem::total_writes() const {
  return physical_count(IoCategory::kDataWrite) +
         physical_count(IoCategory::kDirtyFlush) +
         physical_count(IoCategory::kLogWrite);
}

double IoSubsystem::MeanUtilization() const {
  double sum = 0;
  for (const auto& d : disks_) sum += d->Utilization();
  return sum / static_cast<double>(disks_.size());
}

void IoSubsystem::ResetCounters() { counts_.fill(0); }

}  // namespace oodb::io
