#ifndef SEMCLUST_SIM_PROCESS_H_
#define SEMCLUST_SIM_PROCESS_H_

#include <coroutine>
#include <cstdlib>
#include <utility>

#include "sim/simulator.h"

/// \file
/// Process-oriented layer over the event kernel, built on C++20 coroutines.
/// Model code (user sessions, transactions) is written as straight-line
/// coroutines that `co_await` delays and resource grants; this mirrors the
/// declarative PAWS "transaction flows among model blocks" style.
///
/// Usage:
///   sim::Task UserLoop(Model& m) {
///     for (;;) {
///       co_await sim::Delay(m.sim, think_time);
///       co_await ExecuteSession(m);
///     }
///   }
///   sim::Spawn(UserLoop(m));  // detached top-level process

namespace oodb::sim {

/// A lazily-started coroutine task. Awaiting a Task starts it and resumes
/// the awaiter when the task completes (symmetric transfer). The Task handle
/// owns the coroutine frame.
class [[nodiscard]] Task {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    auto final_suspend() noexcept {
      struct FinalAwaiter {
        bool await_ready() noexcept { return false; }
        std::coroutine_handle<> await_suspend(
            std::coroutine_handle<promise_type> h) noexcept {
          auto cont = h.promise().continuation;
          return cont ? cont : std::noop_coroutine();
        }
        void await_resume() noexcept {}
      };
      return FinalAwaiter{};
    }
    void return_void() {}
    void unhandled_exception() { std::abort(); }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  /// co_await support: start the child task, resume the awaiter on
  /// completion.
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
    handle_.promise().continuation = cont;
    return handle_;
  }
  void await_resume() {}

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  void Destroy() {
    if (handle_) handle_.destroy();
  }

  std::coroutine_handle<promise_type> handle_;
};

namespace internal {

/// Fire-and-forget driver coroutine; its frame self-destroys on completion.
struct DetachedTask {
  struct promise_type {
    DetachedTask get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::abort(); }
  };
};

}  // namespace internal

/// Starts `task` as a detached top-level process. The task runs to its first
/// suspension immediately; its frame is freed when it finishes.
inline internal::DetachedTask Spawn(Task task) { co_await std::move(task); }

/// Awaitable that suspends the current process for `delay` simulated
/// seconds.
class Delay {
 public:
  Delay(Simulator& sim, SimTime delay) : sim_(sim), delay_(delay) {}

  bool await_ready() const noexcept { return delay_ <= 0; }
  void await_suspend(std::coroutine_handle<> h) {
    sim_.Schedule(delay_, [h] { h.resume(); });
  }
  void await_resume() {}

 private:
  Simulator& sim_;
  SimTime delay_;
};

}  // namespace oodb::sim

#endif  // SEMCLUST_SIM_PROCESS_H_
