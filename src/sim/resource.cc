#include "sim/resource.h"

#include <utility>

namespace oodb::sim {

Resource::Resource(Simulator& sim, std::string name, int servers)
    : sim_(sim), name_(std::move(name)), servers_(servers) {
  OODB_CHECK_GE(servers_, 1);
}

void Resource::UseAwaiter::await_suspend(std::coroutine_handle<> h) {
  res_.Enqueue(Waiter{service_time_, res_.sim_.now(), h, nullptr});
}

void Resource::UseDetached(SimTime service_time,
                           Simulator::Callback on_complete) {
  OODB_CHECK_GE(service_time, 0.0);
  Enqueue(Waiter{service_time, sim_.now(), nullptr, std::move(on_complete)});
}

void Resource::Enqueue(Waiter w) {
  TouchStats();
  waiters_.push_back(std::move(w));
  StartIfPossible();
}

void Resource::TouchStats() {
  // Record the interval that just ended at the previous values.
  busy_stats_.Update(sim_.now(),
                     static_cast<double>(busy_) / servers_);
  queue_stats_.Update(sim_.now(), static_cast<double>(waiters_.size()));
}

void Resource::StartIfPossible() {
  while (busy_ < servers_ && !waiters_.empty()) {
    Waiter w = std::move(waiters_.front());
    waiters_.pop_front();
    TouchStats();
    ++busy_;
    sim_.Schedule(w.service_time, [this, w = std::move(w)]() mutable {
      TouchStats();
      --busy_;
      ++completions_;
      residence_.Add(sim_.now() - w.enqueue_time);
      // Free the server before resuming: the resumed process may request
      // this resource again.
      StartIfPossible();
      if (w.handle) {
        w.handle.resume();
      }
      if (w.on_complete) {
        w.on_complete();
      }
    });
  }
}

double Resource::Utilization() const { return busy_stats_.Mean(); }

double Resource::MeanQueueLength() const { return queue_stats_.Mean(); }

}  // namespace oodb::sim
