#include "sim/resource.h"

#include <utility>

namespace oodb::sim {

Resource::Resource(Simulator& sim, std::string name, int servers)
    : sim_(sim), name_(std::move(name)), servers_(servers) {
  OODB_CHECK_GE(servers_, 1);
}

void Resource::UseAwaiter::await_suspend(std::coroutine_handle<> h) {
  res_.Enqueue(Waiter{service_time_, res_.sim_.now(), 0, h, nullptr});
}

void Resource::UseDetached(SimTime service_time,
                           Simulator::Callback on_complete) {
  OODB_CHECK_GE(service_time, 0.0);
  Enqueue(
      Waiter{service_time, sim_.now(), 0, nullptr, std::move(on_complete)});
}

void Resource::Enqueue(Waiter w) {
  TouchStats();
  waiters_.push_back(std::move(w));
  StartIfPossible();
}

void Resource::TouchStats() {
  // Record the interval that just ended at the previous values.
  busy_stats_.Update(sim_.now(),
                     static_cast<double>(busy_) / servers_);
  queue_stats_.Update(sim_.now(), static_cast<double>(waiters_.size()));
}

void Resource::StartIfPossible() {
  while (busy_ < servers_ && !waiters_.empty()) {
    Waiter w = std::move(waiters_.front());
    waiters_.pop_front();
    TouchStats();
    ++busy_;
    uint32_t slot;
    if (free_service_slots_.empty()) {
      in_service_.push_back(std::move(w));
      slot = static_cast<uint32_t>(in_service_.size() - 1);
    } else {
      slot = free_service_slots_.back();
      free_service_slots_.pop_back();
      in_service_[slot] = std::move(w);
    }
    in_service_[slot].start_time = sim_.now();
    const SimTime service_time = in_service_[slot].service_time;
    sim_.Schedule(service_time, [this, slot] { Complete(slot); });
  }
}

void Resource::Complete(uint32_t slot) {
  Waiter w = std::move(in_service_[slot]);
  free_service_slots_.push_back(slot);
  last_enqueue_ = w.enqueue_time;
  last_start_ = w.start_time;
  TouchStats();
  --busy_;
  ++completions_;
  residence_.Add(sim_.now() - w.enqueue_time);
  // Free the server before resuming: the resumed process may request
  // this resource again.
  StartIfPossible();
  if (w.handle) {
    w.handle.resume();
  }
  if (w.on_complete) {
    w.on_complete();
  }
}

double Resource::Utilization() const { return busy_stats_.Mean(); }

double Resource::MeanQueueLength() const { return queue_stats_.Mean(); }

}  // namespace oodb::sim
