#ifndef SEMCLUST_SIM_EVENT_CALENDAR_H_
#define SEMCLUST_SIM_EVENT_CALENDAR_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

/// \file
/// A calendar event queue (Brown 1988) for the simulation kernel. Pending
/// events are hashed by time into an array of "day" buckets of width
/// `width_`; the dequeue cursor walks the buckets in day order, taking only
/// events that fall inside the current "year" so far-future events wait for
/// a later lap. With the bucket count resized to track the event population
/// and the width re-estimated from the observed event spacing, enqueue and
/// dequeue are O(1) amortised versus O(log n) for a binary heap — and, more
/// importantly here, dequeue touches one short contiguous bucket instead of
/// sifting through a heap.
///
/// Ordering contract: PopMin always removes the globally least
/// (time, seq) entry, so the dispatch order is identical to the
/// priority_queue implementation it replaces — equal-time events fire in
/// scheduling (seq) order. This is what keeps simulation output
/// bit-identical (DESIGN.md §12).

namespace oodb::sim {

/// Priority queue of (time, seq, payload) keyed on (time, seq).
/// The payload is an opaque 32-bit value (the kernel stores callback-slab
/// slot indices). Not thread-safe.
class EventCalendar {
 public:
  struct Entry {
    double time = 0;
    uint64_t seq = 0;
    uint32_t payload = 0;
  };

  EventCalendar();

  EventCalendar(const EventCalendar&) = delete;
  EventCalendar& operator=(const EventCalendar&) = delete;

  /// Inserts an entry. (time, seq) pairs must be unique; callers pass a
  /// monotonically increasing seq.
  void Push(double time, uint64_t seq, uint32_t payload);

  /// The least (time, seq) entry. Requires !empty(). Amortised O(1):
  /// positions the cursor, so an immediately following PopMin is O(1).
  const Entry& Min();

  /// Removes and returns the least (time, seq) entry. Requires !empty().
  Entry PopMin();

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  /// Observability: current bucket count (tests; sizing diagnostics).
  size_t bucket_count() const { return buckets_.size(); }

 private:
  /// Virtual day index of a timestamp: floor(time / width_). Days map to
  /// buckets modulo the (power-of-two) bucket count.
  uint64_t DayOf(double time) const;

  std::vector<Entry>& BucketOfDay(uint64_t day) {
    return buckets_[day & (buckets_.size() - 1)];
  }

  /// Inserts into a bucket, keeping it sorted by (time, seq) descending so
  /// the bucket's least entry is at the back.
  void InsertSorted(std::vector<Entry>& bucket, const Entry& e);

  /// Advances the cursor to the bucket holding the global minimum.
  void LocateMin();

  /// Rebuilds with `new_bucket_count` buckets and a freshly estimated
  /// width. O(n); called when the population crosses a resize threshold.
  void Resize(size_t new_bucket_count);

  std::vector<std::vector<Entry>> buckets_;
  double width_ = 1.0;
  size_t size_ = 0;
  /// Dequeue cursor: the virtual day currently being searched.
  uint64_t cursor_day_ = 0;
  /// True when buckets_[cursor_day_ & mask].back() is the global minimum.
  bool min_located_ = false;
};

}  // namespace oodb::sim

#endif  // SEMCLUST_SIM_EVENT_CALENDAR_H_
