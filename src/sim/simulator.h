#ifndef SEMCLUST_SIM_SIMULATOR_H_
#define SEMCLUST_SIM_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "sim/event_calendar.h"
#include "sim/small_callback.h"
#include "util/check.h"

/// \file
/// Discrete-event simulation kernel: a virtual clock and an event calendar.
/// This is the foundation of the PAWS-replacement used by the engineering
/// database model (DESIGN.md §2). Events at equal times fire in scheduling
/// order, so runs are fully deterministic.
///
/// The calendar is a Brown-style bucketed queue (EventCalendar) holding
/// (time, seq, slot) triples; callbacks live in a slot slab so calendar
/// entries stay 24 bytes and scheduling performs no heap allocation for
/// the small closures the kernel and model actually use (DESIGN.md §12).

namespace oodb::sim {

/// Simulation time, in seconds of modelled wall-clock time.
using SimTime = double;

/// The event calendar and clock. Single-threaded; not thread-safe.
class Simulator {
 public:
  using Callback = SmallCallback;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  SimTime now() const { return now_; }

  /// Schedules `cb` to run at `now() + delay`. Requires delay >= 0.
  void Schedule(SimTime delay, Callback cb);

  /// Schedules `cb` at absolute time `t`. Requires t >= now().
  void ScheduleAt(SimTime t, Callback cb);

  /// Runs until the event calendar is empty.
  void Run();

  /// Runs events with time <= `t`, then sets the clock to `t`.
  /// Returns the number of events processed.
  uint64_t RunUntil(SimTime t);

  /// Processes at most `max_events` events; returns how many ran.
  uint64_t Step(uint64_t max_events);

  /// Total events processed since construction.
  uint64_t events_processed() const { return events_processed_; }

  /// Total events ever scheduled (processed + still pending). Together
  /// with events_processed() this is the engine's own observability
  /// surface; the model exports both into its metrics registry.
  uint64_t events_scheduled() const { return next_seq_; }

  /// True when no events are pending.
  bool Empty() const { return calendar_.empty(); }

 private:
  /// Pops the least (time, seq) event, advances the clock, and runs its
  /// callback (which may schedule further events).
  void DispatchNext();

  uint32_t AllocSlot(Callback cb);

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  EventCalendar calendar_;
  /// Callback slab indexed by EventCalendar payload; free_slots_ recycles
  /// indices so the slab stays as small as the peak pending-event count.
  std::vector<Callback> slots_;
  std::vector<uint32_t> free_slots_;
};

}  // namespace oodb::sim

#endif  // SEMCLUST_SIM_SIMULATOR_H_
