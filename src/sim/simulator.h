#ifndef SEMCLUST_SIM_SIMULATOR_H_
#define SEMCLUST_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/check.h"

/// \file
/// Discrete-event simulation kernel: a virtual clock and an event calendar.
/// This is the foundation of the PAWS-replacement used by the engineering
/// database model (DESIGN.md §2). Events at equal times fire in scheduling
/// order, so runs are fully deterministic.

namespace oodb::sim {

/// Simulation time, in seconds of modelled wall-clock time.
using SimTime = double;

/// The event calendar and clock. Single-threaded; not thread-safe.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  SimTime now() const { return now_; }

  /// Schedules `cb` to run at `now() + delay`. Requires delay >= 0.
  void Schedule(SimTime delay, Callback cb);

  /// Schedules `cb` at absolute time `t`. Requires t >= now().
  void ScheduleAt(SimTime t, Callback cb);

  /// Runs until the event calendar is empty.
  void Run();

  /// Runs events with time <= `t`, then sets the clock to `t`.
  /// Returns the number of events processed.
  uint64_t RunUntil(SimTime t);

  /// Processes at most `max_events` events; returns how many ran.
  uint64_t Step(uint64_t max_events);

  /// Total events processed since construction.
  uint64_t events_processed() const { return events_processed_; }

  /// Total events ever scheduled (processed + still pending). Together
  /// with events_processed() this is the engine's own observability
  /// surface; the model exports both into its metrics registry.
  uint64_t events_scheduled() const { return next_seq_; }

  /// True when no events are pending.
  bool Empty() const { return queue_.empty(); }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;  // tie-breaker: FIFO among equal times
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void Dispatch(Event& e);

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace oodb::sim

#endif  // SEMCLUST_SIM_SIMULATOR_H_
