#ifndef SEMCLUST_SIM_SMALL_CALLBACK_H_
#define SEMCLUST_SIM_SMALL_CALLBACK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

/// \file
/// A move-only `void()` callable with inline storage, replacing
/// `std::function<void()>` on the event-calendar hot path. Every simulation
/// event used to heap-allocate its closure through std::function; the
/// closures the kernel actually schedules are small (a coroutine handle, a
/// {this, slot} pair), so a 48-byte inline buffer absorbs all of them and
/// scheduling touches no allocator. Oversized callables still work through
/// a heap fallback, so this is a pure optimisation, not a size limit.

namespace oodb::sim {

/// Move-only type-erased `void()` callable with small-buffer optimisation.
class SmallCallback {
 public:
  /// Inline storage size. Sized for the kernel's own closures (coroutine
  /// resumption, resource completion) with headroom for model callbacks.
  static constexpr size_t kInlineBytes = 48;

  SmallCallback() = default;
  SmallCallback(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, SmallCallback> &&
                std::is_invocable_r_v<void, D&>>>
  SmallCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vtable_ = &kInlineVTable<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      vtable_ = &kHeapVTable<D>;
    }
  }

  SmallCallback(SmallCallback&& other) noexcept { MoveFrom(other); }

  SmallCallback& operator=(SmallCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  SmallCallback& operator=(std::nullptr_t) {
    Reset();
    return *this;
  }

  SmallCallback(const SmallCallback&) = delete;
  SmallCallback& operator=(const SmallCallback&) = delete;

  ~SmallCallback() { Reset(); }

  explicit operator bool() const { return vtable_ != nullptr; }

  void operator()() { vtable_->invoke(buf_); }

 private:
  struct VTable {
    void (*invoke)(void* self);
    /// Move-constructs `dst` from `self` and destroys `self`.
    void (*relocate)(void* self, void* dst);
    void (*destroy)(void* self);
  };

  template <typename D>
  static constexpr VTable kInlineVTable = {
      [](void* p) { (*std::launder(static_cast<D*>(p)))(); },
      [](void* p, void* dst) {
        D* src = std::launder(static_cast<D*>(p));
        ::new (dst) D(std::move(*src));
        src->~D();
      },
      [](void* p) { std::launder(static_cast<D*>(p))->~D(); }};

  template <typename D>
  static constexpr VTable kHeapVTable = {
      [](void* p) { (**std::launder(static_cast<D**>(p)))(); },
      [](void* p, void* dst) {
        ::new (dst) D*(*std::launder(static_cast<D**>(p)));
      },
      [](void* p) { delete *std::launder(static_cast<D**>(p)); }};

  void MoveFrom(SmallCallback& other) noexcept {
    if (other.vtable_ != nullptr) {
      other.vtable_->relocate(other.buf_, buf_);
      vtable_ = std::exchange(other.vtable_, nullptr);
    }
  }

  void Reset() {
    if (vtable_ != nullptr) {
      vtable_->destroy(buf_);
      vtable_ = nullptr;
    }
  }

  const VTable* vtable_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

}  // namespace oodb::sim

#endif  // SEMCLUST_SIM_SMALL_CALLBACK_H_
