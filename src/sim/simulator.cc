#include "sim/simulator.h"

#include <utility>

namespace oodb::sim {

void Simulator::Schedule(SimTime delay, Callback cb) {
  OODB_CHECK_GE(delay, 0.0);
  ScheduleAt(now_ + delay, std::move(cb));
}

void Simulator::ScheduleAt(SimTime t, Callback cb) {
  OODB_CHECK_GE(t, now_);
  queue_.push(Event{t, next_seq_++, std::move(cb)});
}

void Simulator::Dispatch(Event& e) {
  now_ = e.time;
  ++events_processed_;
  // Move the callback out before running it: the callback may schedule new
  // events, which can reallocate the queue's underlying storage.
  Callback cb = std::move(e.cb);
  cb();
}

void Simulator::Run() {
  while (!queue_.empty()) {
    Event e = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    Dispatch(e);
  }
}

uint64_t Simulator::RunUntil(SimTime t) {
  uint64_t n = 0;
  while (!queue_.empty() && queue_.top().time <= t) {
    Event e = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    Dispatch(e);
    ++n;
  }
  now_ = std::max(now_, t);
  return n;
}

uint64_t Simulator::Step(uint64_t max_events) {
  uint64_t n = 0;
  while (n < max_events && !queue_.empty()) {
    Event e = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    Dispatch(e);
    ++n;
  }
  return n;
}

}  // namespace oodb::sim
