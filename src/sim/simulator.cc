#include "sim/simulator.h"

#include <algorithm>
#include <utility>

namespace oodb::sim {

void Simulator::Schedule(SimTime delay, Callback cb) {
  OODB_CHECK_GE(delay, 0.0);
  ScheduleAt(now_ + delay, std::move(cb));
}

void Simulator::ScheduleAt(SimTime t, Callback cb) {
  OODB_CHECK_GE(t, now_);
  calendar_.Push(t, next_seq_++, AllocSlot(std::move(cb)));
}

uint32_t Simulator::AllocSlot(Callback cb) {
  if (free_slots_.empty()) {
    slots_.push_back(std::move(cb));
    return static_cast<uint32_t>(slots_.size() - 1);
  }
  const uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  slots_[slot] = std::move(cb);
  return slot;
}

void Simulator::DispatchNext() {
  const EventCalendar::Entry e = calendar_.PopMin();
  now_ = e.time;
  ++events_processed_;
  // Move the callback out of the slab before running it: the callback may
  // schedule new events, which can grow (reallocate) the slab.
  Callback cb = std::move(slots_[e.payload]);
  free_slots_.push_back(e.payload);
  cb();
}

void Simulator::Run() {
  while (!calendar_.empty()) DispatchNext();
}

uint64_t Simulator::RunUntil(SimTime t) {
  uint64_t n = 0;
  while (!calendar_.empty() && calendar_.Min().time <= t) {
    DispatchNext();
    ++n;
  }
  now_ = std::max(now_, t);
  return n;
}

uint64_t Simulator::Step(uint64_t max_events) {
  uint64_t n = 0;
  while (n < max_events && !calendar_.empty()) {
    DispatchNext();
    ++n;
  }
  return n;
}

}  // namespace oodb::sim
