#include "sim/event_calendar.h"

#include <algorithm>

namespace oodb::sim {

namespace {

/// Smallest bucket array; shrinking stops here.
constexpr size_t kMinBuckets = 8;

/// Day index that any astronomically far timestamp clamps to, so the
/// time/width division can never overflow uint64 arithmetic. Entries
/// sharing the clamp day still order correctly by (time, seq) inside
/// their bucket.
constexpr uint64_t kClampDay = uint64_t{1} << 62;

bool EarlierThan(const EventCalendar::Entry& a,
                 const EventCalendar::Entry& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

}  // namespace

EventCalendar::EventCalendar() : buckets_(kMinBuckets) {}

uint64_t EventCalendar::DayOf(double time) const {
  const double q = time / width_;
  if (q >= static_cast<double>(kClampDay)) return kClampDay;
  return static_cast<uint64_t>(q);
}

void EventCalendar::InsertSorted(std::vector<Entry>& bucket,
                                 const Entry& e) {
  // Descending (time, seq): the bucket's least entry sits at the back, so
  // dequeue is pop_back. Buckets average ~1 entry, so the insertion scan
  // is effectively free.
  auto it = std::upper_bound(
      bucket.begin(), bucket.end(), e,
      [](const Entry& a, const Entry& b) { return EarlierThan(b, a); });
  bucket.insert(it, e);
}

void EventCalendar::Push(double time, uint64_t seq, uint32_t payload) {
  OODB_CHECK_GE(time, 0.0);
  const Entry e{time, seq, payload};
  const uint64_t day = DayOf(time);
  if (size_ == 0) {
    cursor_day_ = day;
    min_located_ = false;
  } else if (day < cursor_day_) {
    // Earlier than anything the cursor would still visit: rewind. (Happens
    // when RunUntil advanced the clock past a gap and a new event lands in
    // it.)
    cursor_day_ = day;
    min_located_ = false;
  }
  InsertSorted(BucketOfDay(day), e);
  ++size_;
  if (size_ > 2 * buckets_.size()) Resize(2 * buckets_.size());
}

void EventCalendar::LocateMin() {
  if (min_located_) return;
  OODB_CHECK_GT(size_, 0u);
  const size_t nb = buckets_.size();
  // Walk at most one full lap of days; an event whose bucket minimum
  // belongs to the cursor's day is the global minimum (no entry has an
  // earlier day, by the cursor invariant).
  for (size_t scanned = 0; scanned < nb; ++scanned) {
    const std::vector<Entry>& b = buckets_[cursor_day_ & (nb - 1)];
    if (!b.empty() && DayOf(b.back().time) == cursor_day_) {
      min_located_ = true;
      return;
    }
    ++cursor_day_;
  }
  // Sparse tail: every pending event is more than a lap ahead. Fall back
  // to a direct search over the per-bucket minima.
  const Entry* best = nullptr;
  for (const std::vector<Entry>& b : buckets_) {
    if (!b.empty() && (best == nullptr || EarlierThan(b.back(), *best))) {
      best = &b.back();
    }
  }
  cursor_day_ = DayOf(best->time);
  min_located_ = true;
}

const EventCalendar::Entry& EventCalendar::Min() {
  LocateMin();
  return BucketOfDay(cursor_day_).back();
}

EventCalendar::Entry EventCalendar::PopMin() {
  LocateMin();
  std::vector<Entry>& b = BucketOfDay(cursor_day_);
  const Entry e = b.back();
  b.pop_back();
  --size_;
  // The next entry of this bucket keeps the cursor hot if it is still in
  // the current day (equal-time bursts pop in O(1)).
  min_located_ = !b.empty() && DayOf(b.back().time) == cursor_day_;
  if (size_ < buckets_.size() / 2 && buckets_.size() > kMinBuckets) {
    Resize(buckets_.size() / 2);
  }
  return e;
}

void EventCalendar::Resize(size_t new_bucket_count) {
  std::vector<Entry> all;
  all.reserve(size_);
  double min_t = 0, max_t = 0;
  bool first = true;
  for (std::vector<Entry>& b : buckets_) {
    for (const Entry& e : b) {
      if (first || e.time < min_t) min_t = e.time;
      if (first || e.time > max_t) max_t = e.time;
      first = false;
      all.push_back(e);
    }
    b.clear();
  }
  buckets_.assign(new_bucket_count, std::vector<Entry>());
  // Width: a few average inter-event spacings per day, so a day holds O(1)
  // events. Degenerate spreads (all equal times) fall back to unit width.
  if (all.size() < 2 || max_t <= min_t) {
    width_ = 1.0;
  } else {
    width_ = 4.0 * (max_t - min_t) / static_cast<double>(all.size());
    // Keep day indices far from the clamp even for huge timestamps.
    width_ = std::max(width_, max_t / 1e15);
  }
  for (const Entry& e : all) InsertSorted(BucketOfDay(DayOf(e.time)), e);
  cursor_day_ = all.empty() ? 0 : DayOf(min_t);
  min_located_ = false;
}

}  // namespace oodb::sim
