#ifndef SEMCLUST_SIM_RESOURCE_H_
#define SEMCLUST_SIM_RESOURCE_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <string>

#include "sim/simulator.h"
#include "util/stats.h"

/// \file
/// FCFS multi-server queueing resource (CPU, a disk, ...). Processes
/// `co_await resource.Use(service_time)`; the await completes after queueing
/// delay plus service time. Collects utilisation, queue length, and
/// residence-time statistics, matching what PAWS reports for service nodes.

namespace oodb::sim {

/// An s-server FCFS service centre.
class Resource {
 public:
  /// Creates a resource with `servers` identical servers (>= 1).
  Resource(Simulator& sim, std::string name, int servers);

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  /// Awaitable: acquires a server, holds it for `service_time`, releases it,
  /// then resumes the awaiter. FCFS among waiters.
  class UseAwaiter {
   public:
    UseAwaiter(Resource& res, SimTime service_time)
        : res_(res), service_time_(service_time) {}
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() {}

   private:
    Resource& res_;
    SimTime service_time_;
  };

  UseAwaiter Use(SimTime service_time) {
    OODB_CHECK_GE(service_time, 0.0);
    return UseAwaiter(*this, service_time);
  }

  /// Fire-and-forget request: occupies a server for `service_time` without
  /// any process waiting on it (used for asynchronous prefetch I/O). The
  /// optional callback runs at completion.
  void UseDetached(SimTime service_time,
                   Simulator::Callback on_complete = nullptr);

  const std::string& name() const { return name_; }
  int servers() const { return servers_; }
  int busy() const { return busy_; }
  size_t queue_length() const { return waiters_.size(); }

  /// Completed requests.
  uint64_t completions() const { return completions_; }
  /// Enqueue / dispatch timestamps of the most recently *completed*
  /// request. A process resumed by Complete reads these before any other
  /// event can run (resumption is synchronous inside Complete), giving
  /// the span profiler the exact wait/service split of the await it just
  /// finished: wait = [enqueue, start), service = [start, now).
  SimTime last_enqueue_time() const { return last_enqueue_; }
  SimTime last_start_time() const { return last_start_; }
  /// Residence time (queueing + service) per request.
  const StreamingStats& residence_time() const { return residence_; }
  /// Time-weighted fraction of servers busy, in [0, 1].
  double Utilization() const;
  /// Time-weighted mean number of queued (not yet in service) requests.
  double MeanQueueLength() const;

 private:
  struct Waiter {
    SimTime service_time;
    SimTime enqueue_time;
    SimTime start_time = 0;               // set when dispatched to a server
    std::coroutine_handle<> handle;       // null for detached requests
    Simulator::Callback on_complete;      // may be null
  };

  void Enqueue(Waiter w);
  void StartIfPossible();
  /// Completion of the request parked in in_service_[slot].
  void Complete(uint32_t slot);
  void TouchStats();

  Simulator& sim_;
  std::string name_;
  int servers_;
  int busy_ = 0;
  uint64_t completions_ = 0;
  SimTime last_enqueue_ = 0;
  SimTime last_start_ = 0;
  std::deque<Waiter> waiters_;
  /// Requests currently holding a server, parked in a slab so the
  /// completion event's closure is just {this, slot} — small enough for
  /// the kernel's inline callback storage (no per-I/O heap allocation).
  std::vector<Waiter> in_service_;
  std::vector<uint32_t> free_service_slots_;
  StreamingStats residence_;
  TimeWeightedStats busy_stats_;
  TimeWeightedStats queue_stats_;
};

}  // namespace oodb::sim

#endif  // SEMCLUST_SIM_RESOURCE_H_
