#!/usr/bin/env bash
# CI entry point: configure, build, unit-test, then run the fig5.1 bench
# in fast mode at 1 and 4 jobs and diff the machine-readable output to
# catch determinism regressions in the parallel experiment runner.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build-ci"

cmake -S "${ROOT}" -B "${BUILD}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fno-omit-frame-pointer"
cmake --build "${BUILD}" -j "$(nproc)"

ctest --test-dir "${BUILD}" --output-on-failure -j "$(nproc)"

# Determinism gate: the parallel runner must be bit-identical to the
# serial path. elapsed_wall_s is the only nondeterministic field, so it
# is stripped before the diff.
BENCH="${BUILD}/bench/bench_fig5_1_clustering_effects"
J1="${BUILD}/bench_jobs1.json"
J4="${BUILD}/bench_jobs4.json"
rm -f "${J1}" "${J4}"

# Wall-clock is recorded per job count into a BENCH_experiment_runner.json
# shaped artifact so perf regressions leave a paper trail next to the
# determinism gates (the committed copy holds the curated trajectory).
now_ms() { echo $(( $(date +%s%N) / 1000000 )); }
t0=$(now_ms)
SEMCLUST_BENCH_FAST=1 SEMCLUST_BENCH_JOBS=1 SEMCLUST_BENCH_JSON="${J1}" \
  "${BENCH}" > "${BUILD}/bench_jobs1.out"
t1=$(now_ms)
SEMCLUST_BENCH_FAST=1 SEMCLUST_BENCH_JOBS=4 SEMCLUST_BENCH_JSON="${J4}" \
  "${BENCH}" > "${BUILD}/bench_jobs4.out"
t2=$(now_ms)
wall_j1_ms=$(( t1 - t0 ))
wall_j4_ms=$(( t2 - t1 ))
printf '{\n  "bench": "bench_fig5_1_clustering_effects",\n  "mode": "SEMCLUST_BENCH_FAST=1",\n  "grid_cells": 45,\n  "host_cores": %s,\n  "measurements": [\n    {"jobs": 1, "wall_s": %d.%03d},\n    {"jobs": 4, "wall_s": %d.%03d}\n  ]\n}\n' \
  "$(nproc)" \
  $(( wall_j1_ms / 1000 )) $(( wall_j1_ms % 1000 )) \
  $(( wall_j4_ms / 1000 )) $(( wall_j4_ms % 1000 )) \
  > "${BUILD}/bench_wall.json"
echo "ci: fig5.1 wall-clock jobs=1 ${wall_j1_ms}ms, jobs=4 ${wall_j4_ms}ms"

strip_wall() { sed -E 's/"elapsed_wall_s":[^,}]+//' "$1"; }
if ! diff <(strip_wall "${J1}") <(strip_wall "${J4}"); then
  echo "FAIL: parallel bench output differs from serial" >&2
  exit 1
fi
if ! diff "${BUILD}/bench_jobs1.out" "${BUILD}/bench_jobs4.out"; then
  echo "FAIL: human-readable bench tables differ between job counts" >&2
  exit 1
fi

# Exact cross-job gate again, through the structured differ (tolerance 0):
# same records, field by field, including the telemetry series.
"${BUILD}/tools/bench_diff" "${J1}" "${J4}"

# Regression gate against the committed baseline, exact (rtol 0): the
# fig5.1 numbers are bit-identical on the pinned toolchain, and the
# raw-speed pass (DESIGN.md §12) is required to preserve them bit-for-bit
# — any numeric drift means an optimisation changed semantics. If the
# toolchain is ever upgraded and legitimate FP drift appears, regenerate
# the baseline in the same commit as the upgrade rather than loosening
# the tolerance. Baseline mode: fields added since the baseline was
# committed never fail the gate; removed or renamed fields do.
BASELINE="${ROOT}/BENCH_fig5_1_fast.jsonl"
"${BUILD}/tools/bench_diff" --baseline "${BASELINE}" --rtol 0 "${J1}"

# Self-check that the gate can actually trip: a 10x response-time
# perturbation must exit non-zero.
sed 's/"mean_response_s":0\./"mean_response_s":9./' "${J1}" \
  > "${BUILD}/bench_perturbed.json"
if "${BUILD}/tools/bench_diff" --baseline "${BASELINE}" --rtol 0 \
    "${BUILD}/bench_perturbed.json" > /dev/null 2>&1; then
  echo "FAIL: bench_diff did not flag a 10x response-time perturbation" >&2
  exit 1
fi

# Scenario-driven smoke run: the committed declarative scenario must be
# deterministic across job counts (exact diff, tolerance 0) and must
# reproduce the hand-written C++ bench byte-for-byte on this toolchain —
# the declarative path and the compiled path are the same experiment.
RUN="${BUILD}/tools/semclust_run"
SCENARIO="${ROOT}/bench/scenarios/fig5_1_fast.scenario.json"
S1="${BUILD}/scenario_jobs1.json"
S4="${BUILD}/scenario_jobs4.json"
rm -f "${S1}" "${S4}"
"${RUN}" --jobs 1 --json "${S1}" "${SCENARIO}" > "${BUILD}/scenario_jobs1.out"
"${RUN}" --jobs 4 --json "${S4}" "${SCENARIO}" > "${BUILD}/scenario_jobs4.out"
"${BUILD}/tools/bench_diff" "${S1}" "${S4}"
"${BUILD}/tools/bench_diff" "${J1}" "${S1}"
"${BUILD}/tools/bench_diff" --baseline "${BASELINE}" --rtol 0 "${S1}"

# Span-profiler gates (DESIGN.md §14). With profiling on, the same
# scenario must (a) stay byte-identical across job counts (only
# elapsed_wall_s, host wall-clock, is stripped), (b) pass the
# zero-tolerance additivity audit — every (cell, kind) breakdown row's
# eight phase totals sum exactly to response_ticks — and (c) still match
# the committed baseline exactly on every simulated field, proving the
# profiler observes without perturbing. The slow-transaction exemplar
# trace is written alongside for the artifact upload.
SP1="${BUILD}/span_jobs1.json"
SP4="${BUILD}/span_jobs4.json"
rm -f "${SP1}" "${SP4}" "${BUILD}/span_trace.json"
SEMCLUST_SPANS=1 SEMCLUST_TRACE="${BUILD}/span_trace.json" \
  "${RUN}" --jobs 1 --json "${SP1}" "${SCENARIO}" \
  > "${BUILD}/span_jobs1.out"
SEMCLUST_SPANS=1 \
  "${RUN}" --jobs 4 --json "${SP4}" "${SCENARIO}" \
  > "${BUILD}/span_jobs4.out"
if ! diff <(strip_wall "${SP1}") <(strip_wall "${SP4}"); then
  echo "FAIL: span-profiled scenario differs between job counts" >&2
  exit 1
fi
"${BUILD}/tools/span_report" --check "${SP1}"
"${BUILD}/tools/span_report" "${SP1}" | tee "${BUILD}/span_report.out"
"${BUILD}/tools/bench_diff" --baseline "${BASELINE}" --rtol 0 "${SP1}"
if ! grep -q '"cat":"spans"' "${BUILD}/span_trace.json"; then
  echo "FAIL: exemplar trace has no span events" >&2
  exit 1
fi
"${BUILD}/tools/trace_summary" "${BUILD}/span_trace.json" \
  > "${BUILD}/span_trace_summary.out"

# OCB workload gate: the generic-benchmark scenario (src/ocb/) must be
# bit-identical across job counts (exact diff) and stay within the same
# 20% envelope against its committed baseline. This exercises the whole
# second workload path — generator, OCB transaction set, scenario axis —
# none of which the fig5.1 gates touch.
OCB_SCENARIO="${ROOT}/bench/scenarios/ocb_small.scenario.json"
OCB_BASELINE="${ROOT}/BENCH_ocb_small.jsonl"
O1="${BUILD}/ocb_jobs1.json"
O4="${BUILD}/ocb_jobs4.json"
rm -f "${O1}" "${O4}"
"${RUN}" --jobs 1 --json "${O1}" "${OCB_SCENARIO}" > "${BUILD}/ocb_jobs1.out"
"${RUN}" --jobs 4 --json "${O4}" "${OCB_SCENARIO}" > "${BUILD}/ocb_jobs4.out"
if ! diff "${BUILD}/ocb_jobs1.out" "${BUILD}/ocb_jobs4.out"; then
  echo "FAIL: OCB scenario tables differ between job counts" >&2
  exit 1
fi
"${BUILD}/tools/bench_diff" "${O1}" "${O4}"
"${BUILD}/tools/bench_diff" --baseline "${OCB_BASELINE}" --rtol 0.2 "${O1}"

# Policy-surface smoke: the dynamic re-clustering axis must be
# registered and discoverable (canonical names and aliases).
"${RUN}" --list-policies > "${BUILD}/policies.out"
for needle in DSTC OPCF dstc_dynamic opportunistic; do
  if ! grep -q "${needle}" "${BUILD}/policies.out"; then
    echo "FAIL: --list-policies does not advertise ${needle}" >&2
    exit 1
  fi
done

# Structural-churn gate (src/dyn/): the churn scenario sweeps the frozen
# static placement against DSTC and OPCF. Exact determinism across job
# counts (reorganisation happens on the virtual clock, so thread count
# must not leak into any sample), plus a 20% envelope against the
# committed baseline.
CHURN_SCENARIO="${ROOT}/bench/scenarios/ocb_churn.scenario.json"
CHURN_BASELINE="${ROOT}/BENCH_ocb_churn.jsonl"
C1="${BUILD}/churn_jobs1.json"
C4="${BUILD}/churn_jobs4.json"
rm -f "${C1}" "${C4}"
"${RUN}" --jobs 1 --json "${C1}" "${CHURN_SCENARIO}" \
  > "${BUILD}/churn_jobs1.out"
"${RUN}" --jobs 4 --json "${C4}" "${CHURN_SCENARIO}" \
  > "${BUILD}/churn_jobs4.out"
if ! diff "${BUILD}/churn_jobs1.out" "${BUILD}/churn_jobs4.out"; then
  echo "FAIL: churn scenario tables differ between job counts" >&2
  exit 1
fi
"${BUILD}/tools/bench_diff" "${C1}" "${C4}"
"${BUILD}/tools/bench_diff" --baseline "${CHURN_BASELINE}" --rtol 0.2 "${C1}"

# Shard-grid gate (core/sharding.*, DESIGN.md §15): the N-shard scenario
# must be bit-identical across job counts, stay within the 20% envelope
# against its committed baseline, and keep the tentpole claim true on the
# fresh run: Structure_Shard beats Hash_Shard on BOTH the cross-shard
# reference fraction and the mean response time at every swept N.
SHARD_SCENARIO="${ROOT}/bench/scenarios/ocb_shard.scenario.json"
SHARD_BASELINE="${ROOT}/BENCH_ocb_shard.jsonl"
SH1="${BUILD}/shard_jobs1.json"
SH4="${BUILD}/shard_jobs4.json"
rm -f "${SH1}" "${SH4}"
"${RUN}" --jobs 1 --json "${SH1}" "${SHARD_SCENARIO}" \
  > "${BUILD}/shard_jobs1.out"
"${RUN}" --jobs 4 --json "${SH4}" "${SHARD_SCENARIO}" \
  > "${BUILD}/shard_jobs4.out"
if ! diff "${BUILD}/shard_jobs1.out" "${BUILD}/shard_jobs4.out"; then
  echo "FAIL: shard scenario tables differ between job counts" >&2
  exit 1
fi
"${BUILD}/tools/bench_diff" "${SH1}" "${SH4}"
"${BUILD}/tools/bench_diff" --baseline "${SHARD_BASELINE}" --rtol 0.2 "${SH1}"
python3 - "${SH1}" <<'PY'
import json, sys
rows = {}
for line in open(sys.argv[1]):
    r = json.loads(line)
    n = int(r["policy"].split("shard", 1)[0])
    rows[(n, "Structure" in r["policy"])] = r
bad = []
for n in sorted({k[0] for k in rows}):
    hash_row, structure_row = rows[(n, False)], rows[(n, True)]
    if not (structure_row["remote_fetch_fraction"]
                < hash_row["remote_fetch_fraction"]
            and structure_row["mean_response_s"]
                < hash_row["mean_response_s"]):
        bad.append(n)
if bad:
    sys.exit("FAIL: Structure_Shard does not beat Hash_Shard at N in %s"
             % bad)
print("ci: structure-aware sharding beats hash sharding on remote "
      "fraction and response time at every swept N")
PY

# OCT dynamic gate: the same static-vs-DSTC-vs-OPCF sweep the churn gate
# runs on the generic OCB graph, but across the engineering workload's
# density x R/W grid — the other half of the dynamic-axis transfer table.
OCT_DYN_SCENARIO="${ROOT}/bench/scenarios/oct_dyn.scenario.json"
OCT_DYN_BASELINE="${ROOT}/BENCH_oct_dyn.jsonl"
D1="${BUILD}/oct_dyn_jobs1.json"
D4="${BUILD}/oct_dyn_jobs4.json"
rm -f "${D1}" "${D4}"
"${RUN}" --jobs 1 --json "${D1}" "${OCT_DYN_SCENARIO}" \
  > "${BUILD}/oct_dyn_jobs1.out"
"${RUN}" --jobs 4 --json "${D4}" "${OCT_DYN_SCENARIO}" \
  > "${BUILD}/oct_dyn_jobs4.out"
if ! diff "${BUILD}/oct_dyn_jobs1.out" "${BUILD}/oct_dyn_jobs4.out"; then
  echo "FAIL: OCT dynamic scenario tables differ between job counts" >&2
  exit 1
fi
"${BUILD}/tools/bench_diff" "${D1}" "${D4}"
"${BUILD}/tools/bench_diff" --baseline "${OCT_DYN_BASELINE}" --rtol 0.2 "${D1}"

# Contention gate (src/cc/, DESIGN.md §16): the thousand-user strict-2PL
# sweep must be bit-identical across job counts (lock waits, aborts, and
# backoff all run on the virtual clock), reproduce the hand-written
# bench_oct_contention byte-for-byte, and stay within the 20% envelope
# against its committed baseline. The fig5.1 gates above double as the
# cc-off neutrality proof: their baseline predates src/cc/ and is still
# matched at rtol 0 with the lock manager compiled in but disabled.
CC_SCENARIO="${ROOT}/bench/scenarios/oct_contention.scenario.json"
CC_BASELINE="${ROOT}/BENCH_oct_contention.jsonl"
CC_BENCH="${BUILD}/bench/bench_oct_contention"
CC1="${BUILD}/cc_jobs1.json"
CC4="${BUILD}/cc_jobs4.json"
CCB="${BUILD}/cc_bench.json"
rm -f "${CC1}" "${CC4}" "${CCB}"
"${RUN}" --jobs 1 --json "${CC1}" "${CC_SCENARIO}" \
  > "${BUILD}/cc_jobs1.out"
"${RUN}" --jobs 4 --json "${CC4}" "${CC_SCENARIO}" \
  > "${BUILD}/cc_jobs4.out"
if ! diff "${BUILD}/cc_jobs1.out" "${BUILD}/cc_jobs4.out"; then
  echo "FAIL: contention scenario tables differ between job counts" >&2
  exit 1
fi
"${BUILD}/tools/bench_diff" "${CC1}" "${CC4}"
"${BUILD}/tools/bench_diff" --baseline "${CC_BASELINE}" --rtol 0.2 "${CC1}"
SEMCLUST_BENCH_FAST=1 SEMCLUST_BENCH_JOBS=4 SEMCLUST_BENCH_JSON="${CCB}" \
  "${CC_BENCH}" > "${BUILD}/cc_bench.out"
if ! diff <(strip_wall "${CCB}") <(strip_wall "${CC1}"); then
  echo "FAIL: bench_oct_contention differs from its scenario" >&2
  exit 1
fi

# Contention-shape check on the fresh run: the cc machinery must actually
# engage (aborts, retries, lock waits, latch waits all nonzero over the
# grid) and mean response time must rise with the user population under
# every clustering policy.
python3 - "${CC1}" <<'PY'
import json, sys
rows = {}
for line in open(sys.argv[1]):
    r = json.loads(line)
    users = int(r["policy"].split("users", 1)[0])
    pool = r["policy"].split("_", 1)[1]
    rows[(pool, users)] = r
totals = {k: sum(r["cc"][k] for r in rows.values())
          for k in ("txn_aborts", "txn_retries", "lock_waits",
                    "latch_waits")}
dead = [k for k, v in totals.items() if v == 0]
if dead:
    sys.exit("FAIL: cc counters never engaged over the grid: %s" % dead)
for pool in sorted({k[0] for k in rows}):
    curve = [rows[(pool, u)]["mean_response_s"]
             for u in sorted(u for p, u in rows if p == pool)]
    if any(b <= a for a, b in zip(curve, curve[1:])):
        sys.exit("FAIL: response time not rising with users under %s: %s"
                 % (pool, curve))
print("ci: contention grid engages cc (totals %s) and response rises "
      "with users under every policy" % totals)
PY

# Span gate with contention: lock_wait is the tenth additive phase, so
# the profiled contention run must pass the zero-tolerance additivity
# audit and still match the unprofiled run exactly on every simulated
# field (baseline mode: only the profiled run carries breakdown.*).
CCSP="${BUILD}/cc_span.json"
rm -f "${CCSP}"
SEMCLUST_SPANS=1 "${RUN}" --jobs 4 --json "${CCSP}" "${CC_SCENARIO}" \
  > "${BUILD}/cc_span.out"
"${BUILD}/tools/span_report" --check "${CCSP}"
"${BUILD}/tools/bench_diff" --baseline "${CC1}" --rtol 0 "${CCSP}"

# bench_diff --allow-new-keys self-check: a candidate carrying an extra
# field must pass under the flag and fail without it (and a *removed*
# field must still fail either way) — the escape hatch for comparing
# old-format artifacts against newer builds cannot mask a regression.
sed '1s/}$/,"zz_ci_probe":1}/' "${CC1}" > "${BUILD}/cc_newkey.json"
if "${BUILD}/tools/bench_diff" "${CC1}" "${BUILD}/cc_newkey.json" \
    > /dev/null 2>&1; then
  echo "FAIL: bench_diff ignored a new key without --allow-new-keys" >&2
  exit 1
fi
"${BUILD}/tools/bench_diff" --allow-new-keys "${CC1}" \
  "${BUILD}/cc_newkey.json"
if "${BUILD}/tools/bench_diff" --allow-new-keys \
    "${BUILD}/cc_newkey.json" "${CC1}" > /dev/null 2>&1; then
  echo "FAIL: --allow-new-keys masked a removed key" >&2
  exit 1
fi

# Ranking-transfer artifacts: how the clustering-policy ordering compares
# between the engineering workload (fig5.1) and the generic OCB graph,
# the churn sweep's static-vs-DSTC-vs-OPCF ordering against its committed
# baseline (a rank inversion under tolerance-passing drift still shows up
# here), and the dynamic axis across workload families: the OCT
# engineering grid vs the OCB churn run.
"${BUILD}/tools/ocb_compare" --json "${BUILD}/ocb_rankings.json" \
  "${BASELINE}" "${O1}" | tee "${BUILD}/ocb_compare.out"
"${BUILD}/tools/ocb_compare" --json "${BUILD}/churn_rankings.json" \
  "${CHURN_BASELINE}" "${C1}" | tee "${BUILD}/churn_compare.out"
"${BUILD}/tools/ocb_compare" --json "${BUILD}/dyn_rankings.json" \
  "${D1}" "${C1}" | tee "${BUILD}/dyn_compare.out"

# Release (-O3) job: GCC 12's -Werror=restrict false positive (upstream
# PR105651) is worked around in objmodel/validator.cc, so the optimised
# configuration must configure, build, and pass the test suite clean.
RELBUILD="${ROOT}/build-release"
cmake -S "${ROOT}" -B "${RELBUILD}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${RELBUILD}" -j "$(nproc)"
ctest --test-dir "${RELBUILD}" --output-on-failure -j "$(nproc)"

echo "ci: ok (tests passed, jobs=1 == jobs=4, scenario == bench, OCT/OCB/churn/shard/dyn/contention baselines within tolerance, structure sharding beats hash, cc engages under load, Release build clean)"
