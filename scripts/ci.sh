#!/usr/bin/env bash
# CI entry point: configure, build, unit-test, then run the fig5.1 bench
# in fast mode at 1 and 4 jobs and diff the machine-readable output to
# catch determinism regressions in the parallel experiment runner.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build-ci"

cmake -S "${ROOT}" -B "${BUILD}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fno-omit-frame-pointer"
cmake --build "${BUILD}" -j "$(nproc)"

ctest --test-dir "${BUILD}" --output-on-failure -j "$(nproc)"

# Determinism gate: the parallel runner must be bit-identical to the
# serial path. elapsed_wall_s is the only nondeterministic field, so it
# is stripped before the diff.
BENCH="${BUILD}/bench/bench_fig5_1_clustering_effects"
J1="${BUILD}/bench_jobs1.json"
J4="${BUILD}/bench_jobs4.json"
rm -f "${J1}" "${J4}"

SEMCLUST_BENCH_FAST=1 SEMCLUST_BENCH_JOBS=1 SEMCLUST_BENCH_JSON="${J1}" \
  "${BENCH}" > "${BUILD}/bench_jobs1.out"
SEMCLUST_BENCH_FAST=1 SEMCLUST_BENCH_JOBS=4 SEMCLUST_BENCH_JSON="${J4}" \
  "${BENCH}" > "${BUILD}/bench_jobs4.out"

strip_wall() { sed -E 's/"elapsed_wall_s":[^,}]+//' "$1"; }
if ! diff <(strip_wall "${J1}") <(strip_wall "${J4}"); then
  echo "FAIL: parallel bench output differs from serial" >&2
  exit 1
fi
if ! diff "${BUILD}/bench_jobs1.out" "${BUILD}/bench_jobs4.out"; then
  echo "FAIL: human-readable bench tables differ between job counts" >&2
  exit 1
fi

# Exact cross-job gate again, through the structured differ (tolerance 0):
# same records, field by field, including the telemetry series.
"${BUILD}/tools/bench_diff" "${J1}" "${J4}"

# Regression gate against the committed baseline. Tolerances (documented
# in DESIGN.md §9): 20% relative on every numeric field absorbs the
# cross-toolchain floating-point drift that shifts simulated trajectories
# slightly between the machine that committed the baseline and this
# runner, while still catching real clustering/buffering regressions
# (which move response times and I/O counts by integer factors).
# Baseline mode: fields added since the baseline was committed never fail
# the gate; removed or renamed fields do.
BASELINE="${ROOT}/BENCH_fig5_1_fast.jsonl"
"${BUILD}/tools/bench_diff" --baseline "${BASELINE}" --rtol 0.2 "${J1}"

# Self-check that the gate can actually trip: a 10x response-time
# perturbation must exit non-zero.
sed 's/"mean_response_s":0\./"mean_response_s":9./' "${J1}" \
  > "${BUILD}/bench_perturbed.json"
if "${BUILD}/tools/bench_diff" --baseline "${BASELINE}" --rtol 0.2 \
    "${BUILD}/bench_perturbed.json" > /dev/null 2>&1; then
  echo "FAIL: bench_diff did not flag a 10x response-time perturbation" >&2
  exit 1
fi

# Scenario-driven smoke run: the committed declarative scenario must be
# deterministic across job counts (exact diff, tolerance 0) and must
# reproduce the hand-written C++ bench byte-for-byte on this toolchain —
# the declarative path and the compiled path are the same experiment.
RUN="${BUILD}/tools/semclust_run"
SCENARIO="${ROOT}/bench/scenarios/fig5_1_fast.scenario.json"
S1="${BUILD}/scenario_jobs1.json"
S4="${BUILD}/scenario_jobs4.json"
rm -f "${S1}" "${S4}"
"${RUN}" --jobs 1 --json "${S1}" "${SCENARIO}" > "${BUILD}/scenario_jobs1.out"
"${RUN}" --jobs 4 --json "${S4}" "${SCENARIO}" > "${BUILD}/scenario_jobs4.out"
"${BUILD}/tools/bench_diff" "${S1}" "${S4}"
"${BUILD}/tools/bench_diff" "${J1}" "${S1}"
"${BUILD}/tools/bench_diff" --baseline "${BASELINE}" --rtol 0.2 "${S1}"

# OCB workload gate: the generic-benchmark scenario (src/ocb/) must be
# bit-identical across job counts (exact diff) and stay within the same
# 20% envelope against its committed baseline. This exercises the whole
# second workload path — generator, OCB transaction set, scenario axis —
# none of which the fig5.1 gates touch.
OCB_SCENARIO="${ROOT}/bench/scenarios/ocb_small.scenario.json"
OCB_BASELINE="${ROOT}/BENCH_ocb_small.jsonl"
O1="${BUILD}/ocb_jobs1.json"
O4="${BUILD}/ocb_jobs4.json"
rm -f "${O1}" "${O4}"
"${RUN}" --jobs 1 --json "${O1}" "${OCB_SCENARIO}" > "${BUILD}/ocb_jobs1.out"
"${RUN}" --jobs 4 --json "${O4}" "${OCB_SCENARIO}" > "${BUILD}/ocb_jobs4.out"
if ! diff "${BUILD}/ocb_jobs1.out" "${BUILD}/ocb_jobs4.out"; then
  echo "FAIL: OCB scenario tables differ between job counts" >&2
  exit 1
fi
"${BUILD}/tools/bench_diff" "${O1}" "${O4}"
"${BUILD}/tools/bench_diff" --baseline "${OCB_BASELINE}" --rtol 0.2 "${O1}"

# Ranking-transfer artifact: how the clustering-policy ordering compares
# between the engineering workload (fig5.1) and the generic OCB graph.
"${BUILD}/tools/ocb_compare" "${BASELINE}" "${O1}" \
  | tee "${BUILD}/ocb_compare.out"

echo "ci: ok (tests passed, jobs=1 == jobs=4, scenario == bench, OCT and OCB baselines within tolerance)"
