#include "gtest/gtest.h"
#include "txlog/log_manager.h"

namespace oodb::txlog {
namespace {

constexpr uint32_t kPage = 4096;
constexpr uint32_t kHeader = 32;

TEST(LogManagerTest, FirstWriteToPageLogsBeforeImage) {
  LogManager log(64 * 1024, kPage, kHeader);
  log.Begin(1);
  log.LogWrite(1, /*page=*/10, /*object_size=*/100);
  EXPECT_EQ(log.before_images(), 1u);
  EXPECT_EQ(log.records_appended(), 2u);  // before-image + redo
  EXPECT_EQ(log.bytes_appended(), (kHeader + kPage) + (kHeader + 100));
}

TEST(LogManagerTest, RepeatWritesToSamePageSkipBeforeImage) {
  LogManager log(64 * 1024, kPage, kHeader);
  log.Begin(1);
  log.LogWrite(1, 10, 100);
  log.LogWrite(1, 10, 200);
  log.LogWrite(1, 10, 50);
  EXPECT_EQ(log.before_images(), 1u);
  EXPECT_EQ(log.records_appended(), 4u);  // 1 before-image + 3 redo
}

TEST(LogManagerTest, DistinctPagesEachBeforeImaged) {
  LogManager log(64 * 1024, kPage, kHeader);
  log.Begin(1);
  log.LogWrite(1, 10, 100);
  log.LogWrite(1, 11, 100);
  log.LogWrite(1, 12, 100);
  EXPECT_EQ(log.before_images(), 3u);
}

TEST(LogManagerTest, PageSetResetsPerTransaction) {
  LogManager log(64 * 1024, kPage, kHeader);
  log.Begin(1);
  log.LogWrite(1, 10, 100);
  log.Commit(1);
  log.Begin(2);
  log.LogWrite(2, 10, 100);  // new transaction: before-image again
  EXPECT_EQ(log.before_images(), 2u);
}

TEST(LogManagerTest, ConcurrentTransactionsTrackSeparatePageSets) {
  LogManager log(64 * 1024, kPage, kHeader);
  log.Begin(1);
  log.Begin(2);
  log.LogWrite(1, 10, 100);
  log.LogWrite(2, 10, 100);  // different txn: its own before-image
  EXPECT_EQ(log.before_images(), 2u);
  log.Commit(1);
  log.Commit(2);
}

TEST(LogManagerTest, BufferFullTriggersFlush) {
  // Tiny buffer: fits exactly one before-image record plus a little.
  LogManager log(kPage + kHeader + 200, kPage, kHeader);
  log.Begin(1);
  EXPECT_EQ(log.flush_count(), 0u);
  log.LogWrite(1, 10, 300);  // before-image + redo; the redo overflows
  EXPECT_GE(log.flush_count(), 1u);
}

TEST(LogManagerTest, FlushCountGrowsWithDistinctPagesTouched) {
  // The Fig 5.5 mechanism: clustered updates (one page) flush less than
  // scattered updates (many pages).
  LogManager clustered(32 * 1024, kPage, kHeader);
  clustered.Begin(1);
  for (int i = 0; i < 50; ++i) clustered.LogWrite(1, 10, 100);
  clustered.Commit(1);

  LogManager scattered(32 * 1024, kPage, kHeader);
  scattered.Begin(1);
  for (int i = 0; i < 50; ++i) {
    scattered.LogWrite(1, static_cast<store::PageId>(i), 100);
  }
  scattered.Commit(1);

  EXPECT_LT(clustered.flush_count(), scattered.flush_count());
  EXPECT_EQ(clustered.before_images(), 1u);
  EXPECT_EQ(scattered.before_images(), 50u);
}

TEST(LogManagerTest, ForcedCommitFlushesResidue) {
  LogManager log(64 * 1024, kPage, kHeader);
  log.Begin(1);
  log.LogWrite(1, 10, 100);
  const int flushes = log.Commit(1, /*force=*/true);
  EXPECT_GE(flushes, 1);
  EXPECT_EQ(log.buffered_bytes(), 0u);
}

TEST(LogManagerTest, UnforcedCommitLeavesResidueBuffered) {
  LogManager log(64 * 1024, kPage, kHeader);
  log.Begin(1);
  log.LogWrite(1, 10, 100);
  log.Commit(1, /*force=*/false);
  EXPECT_GT(log.buffered_bytes(), 0u);
  EXPECT_EQ(log.flush_count(), 0u);
}

TEST(LogManagerTest, AbortForgetsTransaction) {
  LogManager log(64 * 1024, kPage, kHeader);
  log.Begin(1);
  log.LogWrite(1, 10, 100);
  log.Abort(1);
  log.Begin(1);  // id reusable after abort
  log.LogWrite(1, 10, 100);
  EXPECT_EQ(log.before_images(), 2u);
  log.Commit(1);
}

TEST(LogManagerTest, ResetCountersPreservesActiveTransactions) {
  LogManager log(64 * 1024, kPage, kHeader);
  log.Begin(1);
  log.LogWrite(1, 10, 100);
  log.ResetCounters();
  EXPECT_EQ(log.records_appended(), 0u);
  log.LogWrite(1, 10, 100);  // same txn, same page: still no before-image
  EXPECT_EQ(log.before_images(), 0u);
  log.Commit(1);
}

// Property sweep: for any update pattern, flush count is monotone in the
// number of distinct pages touched per transaction.
class LogFlushMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(LogFlushMonotoneTest, MoreDistinctPagesNeverFlushLess) {
  const int spread = GetParam();
  LogManager narrow(16 * 1024, kPage, kHeader);
  LogManager wide(16 * 1024, kPage, kHeader);
  narrow.Begin(1);
  wide.Begin(1);
  for (int i = 0; i < 200; ++i) {
    narrow.LogWrite(1, static_cast<store::PageId>(i % 2), 64);
    wide.LogWrite(1, static_cast<store::PageId>(i % (2 + spread)), 64);
  }
  EXPECT_LE(narrow.flush_count(), wide.flush_count());
}

INSTANTIATE_TEST_SUITE_P(Spreads, LogFlushMonotoneTest,
                         ::testing::Values(1, 3, 10, 50, 150));

}  // namespace
}  // namespace oodb::txlog
