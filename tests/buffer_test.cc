#include "gtest/gtest.h"

#include "buffer/buffer_pool.h"
#include "buffer/prefetcher.h"

namespace oodb::buffer {
namespace {

using store::PageId;
using store::kInvalidPage;

// ---------------------------------------------------------------- basics

TEST(BufferPoolTest, MissThenHit) {
  BufferPool pool(4, ReplacementPolicy::kLru);
  auto r1 = pool.Fix(10);
  EXPECT_FALSE(r1.hit);
  EXPECT_EQ(r1.evicted_page, kInvalidPage);
  auto r2 = pool.Fix(10);
  EXPECT_TRUE(r2.hit);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_DOUBLE_EQ(pool.HitRatio(), 0.5);
}

TEST(BufferPoolTest, NoEvictionUntilFull) {
  BufferPool pool(3, ReplacementPolicy::kLru);
  for (PageId p = 0; p < 3; ++p) {
    EXPECT_EQ(pool.Fix(p).evicted_page, kInvalidPage);
  }
  EXPECT_EQ(pool.resident_count(), 3u);
  auto r = pool.Fix(99);
  EXPECT_NE(r.evicted_page, kInvalidPage);
  EXPECT_EQ(pool.resident_count(), 3u);
}

TEST(BufferPoolTest, LruEvictsLeastRecentlyUsed) {
  BufferPool pool(3, ReplacementPolicy::kLru);
  pool.Fix(1);
  pool.Fix(2);
  pool.Fix(3);
  pool.Fix(1);           // 2 is now least recent
  auto r = pool.Fix(4);  // evicts 2
  EXPECT_EQ(r.evicted_page, 2u);
  EXPECT_TRUE(pool.Contains(1));
  EXPECT_TRUE(pool.Contains(3));
  EXPECT_FALSE(pool.Contains(2));
}

TEST(BufferPoolTest, DirtyEvictionReported) {
  BufferPool pool(2, ReplacementPolicy::kLru);
  pool.Fix(1);
  pool.MarkDirty(1);
  pool.Fix(2);
  auto r = pool.Fix(3);  // evicts 1, which is dirty
  EXPECT_EQ(r.evicted_page, 1u);
  EXPECT_TRUE(r.evicted_dirty);
  EXPECT_EQ(pool.dirty_evictions(), 1u);
}

TEST(BufferPoolTest, MarkCleanClearsDirtyBit) {
  BufferPool pool(2, ReplacementPolicy::kLru);
  pool.Fix(1);
  pool.MarkDirty(1);
  EXPECT_TRUE(pool.IsDirty(1));
  pool.MarkClean(1);
  EXPECT_FALSE(pool.IsDirty(1));
  pool.Fix(2);
  auto r = pool.Fix(3);
  EXPECT_FALSE(r.evicted_dirty);
}

TEST(BufferPoolTest, PinPreventsEviction) {
  BufferPool pool(2, ReplacementPolicy::kLru);
  pool.Fix(1);
  pool.Pin(1);
  pool.Fix(2);
  auto r = pool.Fix(3);  // must evict 2, not pinned 1
  EXPECT_EQ(r.evicted_page, 2u);
  EXPECT_TRUE(pool.Contains(1));
  pool.Unpin(1);
  auto r2 = pool.Fix(4);  // 1 is LRU and now evictable
  EXPECT_EQ(r2.evicted_page, 1u);
}

TEST(BufferPoolTest, TouchOnlyAffectsResidentPages) {
  BufferPool pool(3, ReplacementPolicy::kLru);
  pool.Fix(1);
  pool.Fix(2);
  pool.Fix(3);
  EXPECT_TRUE(pool.Touch(1));    // 2 becomes LRU
  EXPECT_FALSE(pool.Touch(42));  // not resident, no fault
  auto r = pool.Fix(4);
  EXPECT_EQ(r.evicted_page, 2u);
  EXPECT_EQ(pool.misses(), 4u);  // Touch(42) did not count as a miss
}

TEST(BufferPoolTest, ResidentPagesListsEverything) {
  BufferPool pool(4, ReplacementPolicy::kLru);
  pool.Fix(5);
  pool.Fix(9);
  auto pages = pool.ResidentPages();
  std::sort(pages.begin(), pages.end());
  EXPECT_EQ(pages, (std::vector<PageId>{5, 9}));
}

// ---------------------------------------------------------------- random

TEST(BufferPoolTest, RandomPolicyEvictsSomethingUnpinned) {
  BufferPool pool(4, ReplacementPolicy::kRandom, /*seed=*/7);
  for (PageId p = 0; p < 4; ++p) pool.Fix(p);
  pool.Pin(0);
  pool.Pin(1);
  for (PageId p = 10; p < 30; ++p) {
    auto r = pool.Fix(p);
    EXPECT_NE(r.evicted_page, 0u);
    EXPECT_NE(r.evicted_page, 1u);
    // Keep the pool saturated with the pinned pages intact.
  }
  EXPECT_TRUE(pool.Contains(0));
  EXPECT_TRUE(pool.Contains(1));
}

TEST(BufferPoolTest, RandomPolicyIsSeedDeterministic) {
  BufferPool a(8, ReplacementPolicy::kRandom, 42);
  BufferPool b(8, ReplacementPolicy::kRandom, 42);
  for (PageId p = 0; p < 100; ++p) {
    EXPECT_EQ(a.Fix(p).evicted_page, b.Fix(p).evicted_page);
  }
}

// ---------------------------------------------------------------- context

TEST(BufferPoolTest, ContextPolicyActsLikeRecencyWithoutBoosts) {
  BufferPool pool(3, ReplacementPolicy::kContextSensitive);
  pool.Fix(1);
  pool.Fix(2);
  pool.Fix(3);
  pool.Fix(1);           // 2 has the lowest access stamp
  auto r = pool.Fix(4);
  EXPECT_EQ(r.evicted_page, 2u);
}

TEST(BufferPoolTest, BoostProtectsRelatedPage) {
  BufferPool pool(3, ReplacementPolicy::kContextSensitive);
  pool.Fix(1);
  pool.Fix(2);
  pool.Fix(3);
  // Page 1 is oldest, but a structurally related object was just touched:
  pool.Boost(1, /*weight=*/10.0);
  auto r = pool.Fix(4);  // should evict 2 (oldest unboosted), not 1
  EXPECT_EQ(r.evicted_page, 2u);
  EXPECT_TRUE(pool.Contains(1));
}

TEST(BufferPoolTest, BoostAgesOutUnderNewAccesses) {
  BufferPool pool(3, ReplacementPolicy::kContextSensitive);
  pool.Fix(1);
  pool.Boost(1, 2.0);
  pool.Fix(2);
  pool.Fix(3);
  // Many accesses age the clock past the boost on page 1.
  for (int i = 0; i < 10; ++i) {
    pool.Touch(2);
    pool.Touch(3);
  }
  auto r = pool.Fix(4);
  EXPECT_EQ(r.evicted_page, 1u);
}

TEST(BufferPoolTest, BoostOnNonResidentPageIsNoop) {
  BufferPool pool(2, ReplacementPolicy::kContextSensitive);
  pool.Fix(1);
  pool.Boost(77, 5.0);  // not resident; nothing should break
  EXPECT_FALSE(pool.Contains(77));
}

TEST(BufferPoolTest, ContextPinnedFramesSurviveSaturation) {
  BufferPool pool(3, ReplacementPolicy::kContextSensitive);
  pool.Fix(1);
  pool.Pin(1);
  pool.Fix(2);
  pool.Fix(3);
  for (PageId p = 10; p < 20; ++p) pool.Fix(p);
  EXPECT_TRUE(pool.Contains(1));
}

// Replacement-policy behaviour that must hold for every policy.
class AllPoliciesTest
    : public ::testing::TestWithParam<ReplacementPolicy> {};

TEST_P(AllPoliciesTest, CapacityNeverExceeded) {
  BufferPool pool(16, GetParam(), 3);
  for (PageId p = 0; p < 500; ++p) {
    pool.Fix(p % 37);
    EXPECT_LE(pool.resident_count(), 16u);
  }
}

TEST_P(AllPoliciesTest, WorkingSetSmallerThanPoolAlwaysHitsAfterWarmup) {
  BufferPool pool(16, GetParam(), 3);
  for (PageId p = 0; p < 8; ++p) pool.Fix(p);
  pool.ResetCounters();
  for (int round = 0; round < 10; ++round) {
    for (PageId p = 0; p < 8; ++p) pool.Fix(p);
  }
  EXPECT_DOUBLE_EQ(pool.HitRatio(), 1.0);
}

TEST_P(AllPoliciesTest, EvictedPageIsReallyGone) {
  BufferPool pool(4, GetParam(), 11);
  for (PageId p = 0; p < 100; ++p) {
    auto r = pool.Fix(p);
    if (r.evicted_page != kInvalidPage) {
      EXPECT_FALSE(pool.Contains(r.evicted_page));
    }
  }
}

TEST_P(AllPoliciesTest, CountersAddUp) {
  BufferPool pool(8, GetParam(), 5);
  for (PageId p = 0; p < 300; ++p) pool.Fix(p % 21);
  EXPECT_EQ(pool.hits() + pool.misses(), 300u);
  EXPECT_GE(pool.misses(), 21u);  // each distinct page missed at least once
}

INSTANTIATE_TEST_SUITE_P(Policies, AllPoliciesTest,
                         ::testing::Values(ReplacementPolicy::kLru,
                                           ReplacementPolicy::kRandom,
                                           ReplacementPolicy::kContextSensitive),
                         [](const auto& param_info) {
                           std::string name =
                               ReplacementPolicyName(param_info.param);
                           std::erase_if(name, [](char c) {
                             return !std::isalnum(static_cast<unsigned char>(c));
                           });
                           return name;
                         });

// ------------------------------------------------------------- prefetcher

class PrefetcherTest : public ::testing::Test {
 protected:
  PrefetcherTest() : graph_(&lattice_), storage_(256) {
    // Configuration-dominant type and a version-dominant type.
    config_type_ = lattice_.DefineType("cell", obj::kInvalidType, 32,
                                       {8.0, 1.0, 0.5, 0.2});
    version_type_ = lattice_.DefineType("draft", obj::kInvalidType, 32,
                                        {0.5, 8.0, 0.5, 0.2});
    fam_ = graph_.NewFamily("X");
  }

  obj::ObjectId MakePlaced(obj::TypeId type, store::PageId page) {
    obj::ObjectId id = graph_.Create(fam_, 1, type, 32);
    if (page != kInvalidPage) {
      if (page >= storage_.page_count()) {
        while (storage_.page_count() <= page) storage_.AllocatePage();
      }
      OODB_CHECK(storage_.Place(id, 32, page).ok());
    }
    return id;
  }

  obj::TypeLattice lattice_;
  obj::ObjectGraph graph_;
  store::StorageManager storage_;
  obj::TypeId config_type_ = 0, version_type_ = 0;
  obj::FamilyId fam_ = 0;
};

TEST_F(PrefetcherTest, DominantKindComesFromTypeProfile) {
  obj::ObjectId c = MakePlaced(config_type_, 0);
  obj::ObjectId v = MakePlaced(version_type_, 0);
  EXPECT_EQ(DominantKind(graph_, c), obj::RelKind::kConfiguration);
  EXPECT_EQ(DominantKind(graph_, v), obj::RelKind::kVersionHistory);
}

TEST_F(PrefetcherTest, ConfigurationGroupIsComponentPages) {
  obj::ObjectId parent = MakePlaced(config_type_, 0);
  obj::ObjectId c1 = MakePlaced(config_type_, 1);
  obj::ObjectId c2 = MakePlaced(config_type_, 2);
  obj::ObjectId c3 = MakePlaced(config_type_, 1);  // same page as c1
  graph_.Relate(parent, c1, obj::RelKind::kConfiguration);
  graph_.Relate(parent, c2, obj::RelKind::kConfiguration);
  graph_.Relate(parent, c3, obj::RelKind::kConfiguration);

  auto group = ComputePrefetchGroup(graph_, storage_, parent,
                                    AccessHint::None());
  EXPECT_EQ(group.kind, obj::RelKind::kConfiguration);
  std::sort(group.pages.begin(), group.pages.end());
  EXPECT_EQ(group.pages, (std::vector<PageId>{1, 2}));  // deduplicated
}

TEST_F(PrefetcherTest, OwnPageExcluded) {
  obj::ObjectId parent = MakePlaced(config_type_, 0);
  obj::ObjectId c1 = MakePlaced(config_type_, 0);  // co-located
  graph_.Relate(parent, c1, obj::RelKind::kConfiguration);
  auto group = ComputePrefetchGroup(graph_, storage_, parent,
                                    AccessHint::None());
  EXPECT_TRUE(group.pages.empty());
}

TEST_F(PrefetcherTest, HintOverridesTypeProfile) {
  obj::ObjectId o = MakePlaced(config_type_, 0);
  obj::ObjectId anc = MakePlaced(config_type_, 3);
  graph_.Relate(anc, o, obj::RelKind::kVersionHistory);
  auto group = ComputePrefetchGroup(
      graph_, storage_, o, AccessHint::For(obj::RelKind::kVersionHistory));
  EXPECT_EQ(group.kind, obj::RelKind::kVersionHistory);
  EXPECT_EQ(group.pages, (std::vector<PageId>{3}));  // immediate ancestor
}

TEST_F(PrefetcherTest, VersionGroupHasAncestorAndDescendants) {
  obj::ObjectId v2 = MakePlaced(version_type_, 0);
  obj::ObjectId v1 = MakePlaced(version_type_, 1);
  obj::ObjectId v3 = MakePlaced(version_type_, 2);
  graph_.Relate(v1, v2, obj::RelKind::kVersionHistory);
  graph_.Relate(v2, v3, obj::RelKind::kVersionHistory);
  auto group = ComputePrefetchGroup(graph_, storage_, v2,
                                    AccessHint::None());
  std::sort(group.pages.begin(), group.pages.end());
  EXPECT_EQ(group.pages, (std::vector<PageId>{1, 2}));
}

TEST_F(PrefetcherTest, CorrespondenceGroupSeesAllRepresentations) {
  obj::ObjectId lay = MakePlaced(config_type_, 0);
  obj::ObjectId net = MakePlaced(config_type_, 4);
  obj::ObjectId tr = MakePlaced(config_type_, 5);
  graph_.Relate(lay, net, obj::RelKind::kCorrespondence);
  graph_.Relate(lay, tr, obj::RelKind::kCorrespondence);
  auto group = ComputePrefetchGroup(
      graph_, storage_, lay, AccessHint::For(obj::RelKind::kCorrespondence));
  std::sort(group.pages.begin(), group.pages.end());
  EXPECT_EQ(group.pages, (std::vector<PageId>{4, 5}));
}

TEST_F(PrefetcherTest, UnplacedNeighboursIgnored) {
  obj::ObjectId parent = MakePlaced(config_type_, 0);
  obj::ObjectId ghost = MakePlaced(config_type_, kInvalidPage);  // unplaced
  graph_.Relate(parent, ghost, obj::RelKind::kConfiguration);
  auto group = ComputePrefetchGroup(graph_, storage_, parent,
                                    AccessHint::None());
  EXPECT_TRUE(group.pages.empty());
}

}  // namespace
}  // namespace oodb::buffer
