#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "core/bench_report.h"
#include "core/engineering_db.h"
#include "core/experiment.h"
#include "core/model_config.h"
#include "dyn/dyn_config.h"
#include "exec/experiment_runner.h"
#include "ocb/ocb_config.h"
#include "obs/metrics.h"
#include "obs/placement_auditor.h"
#include "obs/time_series.h"
#include "objmodel/object_graph.h"
#include "objmodel/type_system.h"
#include "storage/storage_manager.h"

namespace oodb {
namespace {

// ------------------------------------------------------ sampler mechanics

TEST(TimeSeriesSamplerTest, DeltasBetweenSamplesNotCumulatives) {
  obs::MetricsRegistry reg(/*enabled=*/true);
  const obs::CounterHandle c = reg.Counter("c");
  obs::TimeSeriesSampler sampler(&reg, /*interval_s=*/0);

  reg.Add(c, 100);  // warmup activity lands in the baseline, not a sample
  sampler.StartMeasurement(10.0);
  reg.Add(c, 5);
  sampler.SampleEpochBoundary(20.0, 0);
  reg.Add(c, 7);
  sampler.SampleFinal(30.0, 1);

  const obs::TimeSeries& series = sampler.series();
  ASSERT_EQ(series.samples.size(), 2u);
  EXPECT_DOUBLE_EQ(series.samples[0].sim_time_s, 20.0);
  EXPECT_EQ(series.samples[0].epoch, 0u);
  EXPECT_TRUE(series.samples[0].epoch_boundary);
  EXPECT_EQ(series.samples[0].counter_delta("c"), 5u);
  EXPECT_DOUBLE_EQ(series.samples[1].sim_time_s, 30.0);
  EXPECT_EQ(series.samples[1].epoch, 1u);
  EXPECT_TRUE(series.samples[1].epoch_boundary);
  EXPECT_EQ(series.samples[1].counter_delta("c"), 7u);
}

TEST(TimeSeriesSamplerTest, ZeroDeltasKeepTheKeySet) {
  obs::MetricsRegistry reg(/*enabled=*/true);
  reg.Counter("idle");
  obs::TimeSeriesSampler sampler(&reg, 0);
  sampler.StartMeasurement(0.0);
  sampler.SampleFinal(1.0, 0);
  ASSERT_EQ(sampler.series().samples.size(), 1u);
  EXPECT_EQ(sampler.series().samples[0].counter_delta("idle"), 0u);
}

TEST(TimeSeriesSamplerTest, CounterRegisteredMidSeriesDeltasFromZero) {
  obs::MetricsRegistry reg(/*enabled=*/true);
  obs::TimeSeriesSampler sampler(&reg, 0);
  sampler.StartMeasurement(0.0);
  const obs::CounterHandle late = reg.Counter("late");
  reg.Add(late, 3);
  sampler.SampleFinal(1.0, 0);
  EXPECT_EQ(sampler.series().samples[0].counter_delta("late"), 3u);
  EXPECT_EQ(sampler.series().samples[0].counter_delta("nonesuch"),
            std::nullopt);
}

TEST(TimeSeriesSamplerTest, PreSampleHookSyncsMirroredCounters) {
  // The model mirrors component-owned counters into the registry with
  // set-semantics right before each snapshot; deltas must still come out
  // as per-window flows.
  obs::MetricsRegistry reg(/*enabled=*/true);
  const obs::CounterHandle mirror = reg.Counter("mirror");
  uint64_t component_total = 0;
  obs::TimeSeriesSampler sampler(&reg, 0);
  sampler.set_pre_sample_hook(
      [&] { reg.SetCounter(mirror, component_total); });

  sampler.StartMeasurement(0.0);
  component_total = 42;
  sampler.SampleEpochBoundary(1.0, 0);
  component_total = 50;
  sampler.SampleFinal(2.0, 1);

  const auto& samples = sampler.series().samples;
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].counter_delta("mirror"), 42u);
  EXPECT_EQ(samples[1].counter_delta("mirror"), 8u);
}

TEST(TimeSeriesSamplerTest, GaugesAreLevelsNotFlows) {
  obs::MetricsRegistry reg(/*enabled=*/true);
  const obs::GaugeHandle g = reg.Gauge("g");
  obs::TimeSeriesSampler sampler(&reg, 0);
  sampler.StartMeasurement(0.0);
  reg.Set(g, 2.5);
  sampler.SampleEpochBoundary(1.0, 0);
  reg.Set(g, 7.5);
  sampler.SampleFinal(2.0, 1);
  const auto& samples = sampler.series().samples;
  ASSERT_EQ(samples.size(), 2u);
  ASSERT_EQ(samples[0].gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(samples[0].gauges[0].second, 2.5);
  EXPECT_DOUBLE_EQ(samples[1].gauges[0].second, 7.5);
}

TEST(TimeSeriesSamplerTest, IntervalScheduleCatchesUpWithoutBackfill) {
  obs::MetricsRegistry reg(/*enabled=*/true);
  obs::TimeSeriesSampler sampler(&reg, /*interval_s=*/10.0);
  sampler.Poll(100.0, 0);  // before StartMeasurement: no-op
  EXPECT_TRUE(sampler.series().empty());

  sampler.StartMeasurement(0.0);
  sampler.Poll(5.0, 0);
  EXPECT_EQ(sampler.series().samples.size(), 0u);
  sampler.Poll(12.0, 0);  // crossed t=10
  ASSERT_EQ(sampler.series().samples.size(), 1u);
  EXPECT_DOUBLE_EQ(sampler.series().samples[0].sim_time_s, 12.0);
  EXPECT_FALSE(sampler.series().samples[0].epoch_boundary);
  sampler.Poll(13.0, 0);  // next boundary is 20
  EXPECT_EQ(sampler.series().samples.size(), 1u);
  sampler.Poll(47.0, 0);  // skipped 20/30/40: ONE catch-up sample
  ASSERT_EQ(sampler.series().samples.size(), 2u);
  EXPECT_DOUBLE_EQ(sampler.series().samples[1].sim_time_s, 47.0);
  sampler.Poll(50.0, 0);  // next boundary after 47 is 50
  EXPECT_EQ(sampler.series().samples.size(), 3u);
}

TEST(TimeSeriesTest, MergeFromSumsDeltasByIndex) {
  obs::MetricsRegistry reg_a(/*enabled=*/true);
  const obs::CounterHandle ca = reg_a.Counter("c");
  obs::TimeSeriesSampler a(&reg_a, 0);
  a.StartMeasurement(0.0);
  reg_a.Add(ca, 5);
  a.SampleFinal(10.0, 0);

  obs::MetricsRegistry reg_b(/*enabled=*/true);
  const obs::CounterHandle cb = reg_b.Counter("c");
  obs::TimeSeriesSampler b(&reg_b, 0);
  b.StartMeasurement(0.0);
  reg_b.Add(cb, 7);
  b.SampleFinal(20.0, 0);

  obs::TimeSeries merged = a.series();
  merged.MergeFrom(b.series());
  ASSERT_EQ(merged.samples.size(), 1u);
  EXPECT_EQ(merged.samples[0].counter_delta("c"), 12u);
  EXPECT_DOUBLE_EQ(merged.samples[0].sim_time_s, 20.0);  // max over cells
}

// ------------------------------------------------------ placement auditor

class PlacementAuditorTest : public ::testing::Test {
 protected:
  PlacementAuditorTest() : graph_(&lattice_), store_(100) {
    t_ = lattice_.DefineType("t", obj::kInvalidType, 0, {});
    u_ = lattice_.DefineType("u", obj::kInvalidType, 0, {});
    fam_ = graph_.NewFamily("f");
  }

  obj::TypeLattice lattice_;
  obj::ObjectGraph graph_;
  store::StorageManager store_;
  obj::TypeId t_ = obj::kInvalidType;
  obj::TypeId u_ = obj::kInvalidType;
  obj::FamilyId fam_ = obj::kInvalidFamily;
};

TEST_F(PlacementAuditorTest, AuditsEdgesOccupancyAndConfigurations) {
  const obj::ObjectId a = graph_.Create(fam_, 0, t_, 40);
  const obj::ObjectId b = graph_.Create(fam_, 1, t_, 40);
  const obj::ObjectId c = graph_.Create(fam_, 2, u_, 40);
  const obj::ObjectId d = graph_.Create(fam_, 3, u_, 40);  // never placed

  const store::PageId p0 = store_.AllocatePage();
  const store::PageId p1 = store_.AllocatePage();
  ASSERT_TRUE(store_.Place(a, 40, p0).ok());
  ASSERT_TRUE(store_.Place(b, 40, p0).ok());
  ASSERT_TRUE(store_.Place(c, 40, p1).ok());

  graph_.Relate(a, b, obj::RelKind::kConfiguration);   // co-located
  graph_.Relate(a, c, obj::RelKind::kConfiguration);   // cross-page
  graph_.Relate(b, c, obj::RelKind::kCorrespondence);  // symmetric: 2 edges
  graph_.Relate(a, d, obj::RelKind::kVersionHistory);  // target unplaced

  const obs::PlacementAuditor auditor(&graph_, &store_);
  const obs::PlacementSample s = auditor.Sample();

  EXPECT_EQ(s.live_objects, 4u);
  EXPECT_EQ(s.placed_objects, 3u);
  EXPECT_EQ(s.pages, 2u);
  EXPECT_EQ(s.nonempty_pages, 2u);

  const auto& config =
      s.by_kind[static_cast<size_t>(obj::RelKind::kConfiguration)];
  EXPECT_EQ(config.edges, 2u);
  EXPECT_EQ(config.colocated, 1u);
  const auto& corr =
      s.by_kind[static_cast<size_t>(obj::RelKind::kCorrespondence)];
  EXPECT_EQ(corr.edges, 2u);  // counted once per symmetric endpoint
  EXPECT_EQ(corr.colocated, 0u);
  const auto& vh =
      s.by_kind[static_cast<size_t>(obj::RelKind::kVersionHistory)];
  EXPECT_EQ(vh.edges, 0u);  // unplaced endpoint does not qualify
  EXPECT_EQ(s.edges, 4u);
  EXPECT_EQ(s.colocated, 1u);
  EXPECT_DOUBLE_EQ(*s.ColocatedFraction(), 0.25);

  // p0 is 80/100 full (decile 8), p1 is 40/100 full (decile 4).
  EXPECT_EQ(s.occupancy_histogram[8], 1u);
  EXPECT_EQ(s.occupancy_histogram[4], 1u);
  EXPECT_DOUBLE_EQ(s.mean_occupancy, 0.6);

  // Both types fit on one page and span exactly one: no fragmentation.
  EXPECT_EQ(s.types_audited, 2u);
  EXPECT_DOUBLE_EQ(s.mean_type_fragmentation, 1.0);

  // `a` is the sole configuration root; {a, b, c} spans two pages.
  EXPECT_EQ(s.configurations, 1u);
  EXPECT_DOUBLE_EQ(s.mean_pages_per_configuration, 2.0);
}

TEST_F(PlacementAuditorTest, DeletedObjectsAreExcluded) {
  const obj::ObjectId a = graph_.Create(fam_, 0, t_, 40);
  const obj::ObjectId b = graph_.Create(fam_, 1, t_, 40);
  const store::PageId p0 = store_.AllocatePage();
  ASSERT_TRUE(store_.Place(a, 40, p0).ok());
  ASSERT_TRUE(store_.Place(b, 40, p0).ok());
  graph_.Relate(a, b, obj::RelKind::kConfiguration);
  graph_.Remove(b);

  const obs::PlacementAuditor auditor(&graph_, &store_);
  const obs::PlacementSample s = auditor.Sample();
  EXPECT_EQ(s.live_objects, 1u);
  EXPECT_EQ(s.edges, 0u);  // Remove detached the edge
  EXPECT_EQ(s.ColocatedFraction(), std::nullopt);
}

TEST_F(PlacementAuditorTest, ChurnEmptiedPagesKeepRatiosFinite) {
  // Structural churn can delete every object off a page; the page stays
  // allocated. The auditor must report it via empty_pages and keep every
  // mean finite (the NaN regression this guards: mean over zero non-empty
  // pages).
  const obj::ObjectId a = graph_.Create(fam_, 0, t_, 40);
  const obj::ObjectId b = graph_.Create(fam_, 1, t_, 40);
  const obj::ObjectId c = graph_.Create(fam_, 2, t_, 40);
  const store::PageId p0 = store_.AllocatePage();
  const store::PageId p1 = store_.AllocatePage();
  ASSERT_TRUE(store_.Place(a, 40, p0).ok());
  ASSERT_TRUE(store_.Place(b, 40, p0).ok());
  ASSERT_TRUE(store_.Place(c, 40, p1).ok());
  graph_.Relate(a, b, obj::RelKind::kConfiguration);

  // Churn empties p1.
  graph_.Remove(c);
  ASSERT_TRUE(store_.Erase(c).ok());

  const obs::PlacementAuditor auditor(&graph_, &store_);
  obs::PlacementSample s = auditor.Sample();
  EXPECT_EQ(s.pages, 2u);
  EXPECT_EQ(s.nonempty_pages, 1u);
  EXPECT_EQ(s.empty_pages, 1u);
  EXPECT_TRUE(std::isfinite(s.mean_occupancy));
  EXPECT_DOUBLE_EQ(s.mean_occupancy, 0.8);  // p1 excluded from the mean
  EXPECT_TRUE(std::isfinite(s.mean_type_fragmentation));

  // Extreme: churn empties the whole store. Every ratio degrades to a
  // well-defined zero / nullopt, never NaN, and the JSON stays parseable.
  graph_.Remove(a);
  graph_.Remove(b);
  ASSERT_TRUE(store_.Erase(a).ok());
  ASSERT_TRUE(store_.Erase(b).ok());
  s = auditor.Sample();
  EXPECT_EQ(s.live_objects, 0u);
  EXPECT_EQ(s.nonempty_pages, 0u);
  EXPECT_EQ(s.empty_pages, 2u);
  EXPECT_DOUBLE_EQ(s.mean_occupancy, 0.0);
  EXPECT_DOUBLE_EQ(s.mean_type_fragmentation, 0.0);
  EXPECT_EQ(s.ColocatedFraction(), std::nullopt);
  const std::string json = s.ToJson();
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
  EXPECT_NE(json.find("\"empty_pages\":2"), std::string::npos) << json;
}

TEST(PlacementSampleTest, MergeOfEmptySamplesStaysFinite) {
  // Cross-cell folds can merge samples from cells whose placement churned
  // down to nothing; the re-weighted means must not divide by zero.
  obs::PlacementSample empty_a, empty_b;
  empty_a.pages = 2;
  empty_a.empty_pages = 2;
  empty_a.MergeFrom(empty_b);
  EXPECT_DOUBLE_EQ(empty_a.mean_occupancy, 0.0);
  EXPECT_DOUBLE_EQ(empty_a.mean_type_fragmentation, 0.0);
  EXPECT_EQ(empty_a.empty_pages, 2u);
  EXPECT_EQ(empty_a.ColocatedFraction(), std::nullopt);

  // Empty folded into populated leaves the populated means untouched.
  obs::PlacementSample full;
  full.nonempty_pages = 4;
  full.mean_occupancy = 0.75;
  full.types_audited = 2;
  full.mean_type_fragmentation = 1.5;
  full.MergeFrom(empty_a);
  EXPECT_DOUBLE_EQ(full.mean_occupancy, 0.75);
  EXPECT_DOUBLE_EQ(full.mean_type_fragmentation, 1.5);
  EXPECT_EQ(full.empty_pages, 2u);
  EXPECT_EQ(full.ToJson().find("nan"), std::string::npos);
}

TEST(PlacementSampleTest, MergeReweightsMeansByPopulation) {
  obs::PlacementSample x;
  x.nonempty_pages = 1;
  x.mean_occupancy = 0.5;
  x.edges = 4;
  x.colocated = 1;
  obs::PlacementSample y;
  y.nonempty_pages = 3;
  y.mean_occupancy = 0.9;
  y.edges = 4;
  y.colocated = 3;
  x.MergeFrom(y);
  EXPECT_EQ(x.nonempty_pages, 4u);
  EXPECT_DOUBLE_EQ(x.mean_occupancy, (0.5 * 1 + 0.9 * 3) / 4);
  EXPECT_DOUBLE_EQ(*x.ColocatedFraction(), 0.5);
}

// ------------------------------------------------- model-level sampling

core::ModelConfig SmallConfig() {
  core::ModelConfig cfg = core::TestConfig();
  cfg.warmup_transactions = 40;
  cfg.measured_transactions = 240;
  return cfg;
}

TEST(ModelTelemetryTest, EpochBoundariesAlignWithResponseEpochs) {
  core::ModelConfig cfg = SmallConfig();
  cfg.measurement_epochs = 3;
  core::EngineeringDbModel model(cfg);
  const core::RunResult r = model.Run();

  ASSERT_EQ(r.response_epochs.size(), 3u);
  ASSERT_EQ(r.series.samples.size(), 3u);  // interval sampling off
  uint64_t txns = 0;
  for (size_t i = 0; i < r.series.samples.size(); ++i) {
    const obs::TimeSeriesSample& s = r.series.samples[i];
    EXPECT_TRUE(s.epoch_boundary);
    EXPECT_EQ(s.epoch, static_cast<uint32_t>(i));
    if (i > 0) {
      EXPECT_GE(s.sim_time_s, r.series.samples[i - 1].sim_time_s);
    }
    // Each epoch window saw exactly its share of the measured phase.
    ASSERT_TRUE(s.counter_delta("core.txns").has_value());
    EXPECT_EQ(*s.counter_delta("core.txns"), r.response_epochs[i].count());
    txns += *s.counter_delta("core.txns");
    ASSERT_TRUE(s.placement.has_value());
    EXPECT_GT(s.placement->live_objects, 0u);
    EXPECT_GT(s.placement->edges, 0u);
  }
  EXPECT_EQ(txns, static_cast<uint64_t>(cfg.measured_transactions));
}

TEST(ModelTelemetryTest, IntervalSamplingAddsMidEpochSamples) {
  core::ModelConfig cfg = SmallConfig();
  cfg.telemetry_interval_s = 1.0;
  core::EngineeringDbModel model(cfg);
  const core::RunResult r = model.Run();

  ASSERT_GT(r.series.samples.size(), 1u);
  uint64_t interval_samples = 0;
  uint64_t txns = 0;
  for (const obs::TimeSeriesSample& s : r.series.samples) {
    if (!s.epoch_boundary) ++interval_samples;
    txns += s.counter_delta("core.txns").value_or(0);
  }
  EXPECT_GT(interval_samples, 0u);
  EXPECT_TRUE(r.series.samples.back().epoch_boundary);
  // Deltas partition the measured phase exactly.
  EXPECT_EQ(txns, static_cast<uint64_t>(cfg.measured_transactions));
}

TEST(ModelTelemetryTest, PlacementAuditCanBeDisabled) {
  core::ModelConfig cfg = SmallConfig();
  cfg.telemetry_audit_placement = false;
  core::EngineeringDbModel model(cfg);
  const core::RunResult r = model.Run();
  ASSERT_FALSE(r.series.empty());
  for (const obs::TimeSeriesSample& s : r.series.samples) {
    EXPECT_FALSE(s.placement.has_value());
  }
}

// ------------------------------------------------- determinism contract

TEST(ModelTelemetryTest, SeriesBitIdenticalAcrossJobCounts) {
  std::vector<core::ModelConfig> cells;
  for (int i = 0; i < 3; ++i) {
    core::ModelConfig cfg = SmallConfig();
    cfg.measurement_epochs = 2;
    cfg.telemetry_interval_s = 5.0;
    cells.push_back(cfg);
  }

  const exec::ExperimentRunner serial(1);
  const exec::ExperimentRunner threaded(4);
  const auto o1 = serial.Run(cells);
  const auto o4 = threaded.Run(cells);
  ASSERT_EQ(o1.size(), o4.size());
  for (size_t i = 0; i < o1.size(); ++i) {
    ASSERT_FALSE(o1[i].result.series.empty());
    EXPECT_EQ(o1[i].result.series.ToJson(), o4[i].result.series.ToJson());
  }
  EXPECT_EQ(exec::ExperimentRunner::MergeSeries(o1).ToJson(),
            exec::ExperimentRunner::MergeSeries(o4).ToJson());

  // The full JSONL record (wall-clock zeroed) is byte-identical too.
  const core::BenchReport report("telemetry_test");
  const core::BenchRecord r1 = core::BenchReport::FromResult(
      "cell", "p", "w", o1[0].result, /*elapsed_wall_s=*/0);
  const core::BenchRecord r4 = core::BenchReport::FromResult(
      "cell", "p", "w", o4[0].result, /*elapsed_wall_s=*/0);
  EXPECT_EQ(report.ToJsonLine(r1), report.ToJsonLine(r4));
}

// ------------------------------------------- dynamic re-clustering churn

/// A small OCB database under structural churn with DSTC reorganisation on
/// — the workload where mid-run object moves and page births/deaths stress
/// the sampler and auditor the hardest.
core::ModelConfig ChurnDynConfig() {
  core::ModelConfig cfg = core::TestConfig();
  ocb::OcbConfig ocb;
  ocb.enabled = true;
  ocb.classes = 8;
  ocb.hierarchy_depth = 3;
  ocb.instances = 600;
  ocb.refs_per_object = 3;
  ocb.partitions = 6;
  ocb.set_lookup_size = 4;
  ocb.traversal_depth = 2;
  ocb.churn_probability = 0.5;
  ocb.churn_burst_length = 6;
  cfg.ocb = ocb;
  cfg.warmup_transactions = 40;
  cfg.measured_transactions = 360;
  cfg.workload.read_write_ratio = 4.0;
  cfg.clustering.dynamic.policy = dyn::PolicyKind::kDstc;
  cfg.clustering.dynamic.observation_period = 32;
  cfg.clustering.dynamic.trigger_threshold = 2.0;
  return cfg;
}

TEST(ModelTelemetryTest, EpochDeltasPartitionTxnsExactlyAcrossReorgBurst) {
  // Reorganisation bursts interleave extra I/O and object moves with the
  // measured transactions; epoch windows must still partition the measured
  // phase exactly — no transaction double-counted or lost at a boundary
  // that lands mid-burst.
  core::ModelConfig cfg = ChurnDynConfig();
  cfg.measurement_epochs = 4;
  const core::RunResult r = core::RunCell(cfg);

  // The dyn subsystem actually fired (otherwise this test guards nothing).
  ASSERT_GT(r.metrics.counter("dyn.triggers").value_or(0), 0u);
  ASSERT_GT(r.metrics.counter("dyn.objects_moved").value_or(0), 0u);

  ASSERT_EQ(r.series.samples.size(), 4u);
  uint64_t txns = 0;
  uint64_t moved = 0;
  for (size_t i = 0; i < r.series.samples.size(); ++i) {
    const obs::TimeSeriesSample& s = r.series.samples[i];
    EXPECT_TRUE(s.epoch_boundary);
    EXPECT_EQ(s.epoch, static_cast<uint32_t>(i));
    ASSERT_TRUE(s.counter_delta("core.txns").has_value());
    EXPECT_EQ(*s.counter_delta("core.txns"), r.response_epochs[i].count());
    txns += *s.counter_delta("core.txns");
    // Move counts are per-window flows too: they sum to the run total.
    moved += s.counter_delta("dyn.objects_moved").value_or(0);
    ASSERT_TRUE(s.placement.has_value());
    EXPECT_GT(s.placement->live_objects, 0u);
  }
  EXPECT_EQ(txns, static_cast<uint64_t>(cfg.measured_transactions));
  EXPECT_EQ(moved, *r.metrics.counter("dyn.objects_moved"));
}

TEST(ModelTelemetryTest, ChurnWithDynPolicyBitIdenticalAcrossJobCounts) {
  std::vector<core::ModelConfig> cells;
  {
    core::ModelConfig cfg = ChurnDynConfig();  // DSTC
    cfg.measurement_epochs = 2;
    cells.push_back(cfg);
  }
  {
    core::ModelConfig cfg = ChurnDynConfig();
    cfg.measurement_epochs = 2;
    cfg.clustering.dynamic.policy = dyn::PolicyKind::kOpcf;
    cfg.clustering.dynamic.opcf_queue_watermark = 0.0;
    cells.push_back(cfg);
  }
  const auto o1 = exec::ExperimentRunner(1).Run(cells);
  const auto o4 = exec::ExperimentRunner(4).Run(cells);
  ASSERT_EQ(o1.size(), o4.size());
  for (size_t i = 0; i < o1.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(o1[i].result.response_time.Mean(),
              o4[i].result.response_time.Mean());
    EXPECT_EQ(o1[i].result.logical_reads, o4[i].result.logical_reads);
    EXPECT_EQ(o1[i].result.total_physical_ios(),
              o4[i].result.total_physical_ios());
    // Telemetry (including placement audits of the churned store) and the
    // dyn metric block match byte-for-byte.
    EXPECT_EQ(o1[i].result.series.ToJson(), o4[i].result.series.ToJson());
    EXPECT_EQ(o1[i].result.metrics.ToJson(), o4[i].result.metrics.ToJson());
  }
}

TEST(ModelTelemetryTest, BenchRecordEmbedsSeriesAndPercentiles) {
  core::ModelConfig cfg = SmallConfig();
  cfg.measurement_epochs = 2;
  core::EngineeringDbModel model(cfg);
  const core::RunResult result = model.Run();

  const core::BenchReport report("telemetry_test");
  const core::BenchRecord rec =
      core::BenchReport::FromResult("cell", "p", "w", result, 0.0);
  ASSERT_TRUE(rec.response_p50_s.has_value());
  ASSERT_TRUE(rec.response_p99_s.has_value());
  EXPECT_LE(*rec.response_p50_s, *rec.response_p99_s);
  ASSERT_EQ(rec.response_epochs.size(), 2u);
  EXPECT_EQ(rec.response_epochs[0].first + rec.response_epochs[1].first,
            static_cast<uint64_t>(cfg.measured_transactions));

  const std::string line = report.ToJsonLine(rec);
  EXPECT_NE(line.find("\"response_p50_s\":"), std::string::npos);
  EXPECT_NE(line.find("\"response_epochs\":["), std::string::npos);
  EXPECT_NE(line.find("\"series\":["), std::string::npos);
  EXPECT_NE(line.find("\"counter_deltas\":"), std::string::npos);
  EXPECT_NE(line.find("\"placement\":"), std::string::npos);
}

}  // namespace
}  // namespace oodb
