#include "gtest/gtest.h"
#include "txlog/recovery.h"

namespace oodb::txlog {
namespace {

constexpr uint32_t kPage = 4096;

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() : log_(64 * 1024, kPage) { log_.EnableJournal(); }

  LogManager log_;
};

TEST_F(RecoveryTest, JournalRecordsWritesAndCommits) {
  log_.Begin(1);
  log_.LogWrite(1, 10, 100);
  log_.LogWrite(1, 10, 50);
  log_.Commit(1);
  const auto& j = log_.journal();
  ASSERT_EQ(j.size(), 4u);  // before-image + 2 redo + commit
  EXPECT_EQ(j[0].type, LogRecordType::kBeforeImage);
  EXPECT_EQ(j[0].page, 10u);
  EXPECT_EQ(j[1].type, LogRecordType::kRedo);
  EXPECT_EQ(j[2].type, LogRecordType::kRedo);
  EXPECT_EQ(j[3].type, LogRecordType::kCommit);
  for (Lsn i = 0; i < j.size(); ++i) EXPECT_EQ(j[i].lsn, i);
}

TEST_F(RecoveryTest, WalInvariantsHoldForNormalActivity) {
  for (TxnId t = 1; t <= 20; ++t) {
    log_.Begin(t);
    for (int w = 0; w < 5; ++w) {
      log_.LogWrite(t, static_cast<store::PageId>((t * 3 + w) % 7), 120);
    }
    log_.Commit(t);
  }
  RecoveryAnalyzer analyzer(&log_.journal());
  EXPECT_TRUE(analyzer.CheckWalInvariants().ok());
}

TEST_F(RecoveryTest, DetectsRedoBeforeImage) {
  std::vector<LogRecord> bad{
      {0, LogRecordType::kRedo, 1, 10, 100},
  };
  RecoveryAnalyzer analyzer(&bad);
  const Status s = analyzer.CheckWalInvariants();
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST_F(RecoveryTest, DetectsLogAfterCommit) {
  std::vector<LogRecord> bad{
      {0, LogRecordType::kBeforeImage, 1, 10, kPage},
      {1, LogRecordType::kCommit, 1, store::kInvalidPage, 16},
      {2, LogRecordType::kRedo, 1, 10, 100},
  };
  RecoveryAnalyzer analyzer(&bad);
  EXPECT_EQ(analyzer.CheckWalInvariants().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(RecoveryTest, DetectsNonDenseLsn) {
  std::vector<LogRecord> bad{
      {0, LogRecordType::kBeforeImage, 1, 10, kPage},
      {5, LogRecordType::kRedo, 1, 10, 100},
  };
  RecoveryAnalyzer analyzer(&bad);
  EXPECT_EQ(analyzer.CheckWalInvariants().code(), StatusCode::kInternal);
}

TEST_F(RecoveryTest, CrashSplitsWinnersAndLosers) {
  // Txn 1 commits; txn 2 is in flight at the crash.
  log_.Begin(1);
  log_.LogWrite(1, 10, 100);
  log_.Commit(1);  // lsn 2
  log_.Begin(2);
  log_.LogWrite(2, 20, 100);  // lsn 3 (before-image), 4 (redo)
  // Crash with everything so far durable.
  RecoveryAnalyzer analyzer(&log_.journal());
  const RecoveryPlan plan = analyzer.AnalyzeCrash(/*durable_lsn=*/4);
  EXPECT_EQ(plan.winners, std::vector<TxnId>{1});
  EXPECT_EQ(plan.losers, std::vector<TxnId>{2});
  EXPECT_EQ(plan.redo_pages, std::vector<store::PageId>{10});
  EXPECT_EQ(plan.undo_pages, std::vector<store::PageId>{20});
  EXPECT_EQ(plan.lost_records, 0u);
  log_.Abort(2);
}

TEST_F(RecoveryTest, CommitAfterDurableHorizonLoses) {
  log_.Begin(1);
  log_.LogWrite(1, 10, 100);  // lsn 0, 1
  log_.Commit(1);             // lsn 2 — NOT durable
  RecoveryAnalyzer analyzer(&log_.journal());
  const RecoveryPlan plan = analyzer.AnalyzeCrash(/*durable_lsn=*/1);
  EXPECT_TRUE(plan.winners.empty());
  EXPECT_EQ(plan.losers, std::vector<TxnId>{1});
  EXPECT_EQ(plan.undo_pages, std::vector<store::PageId>{10});
  EXPECT_EQ(plan.lost_records, 1u);
}

TEST_F(RecoveryTest, DurableHorizonAdvancesOnFlush) {
  auto [lsn0, flushed0] = log_.durable_lsn();
  EXPECT_FALSE(flushed0);
  log_.Begin(1);
  // Fill the 64 KB buffer with page-sized before-images until it flushes.
  int flushes = 0;
  for (store::PageId p = 0; p < 40 && flushes == 0; ++p) {
    flushes += log_.LogWrite(1, p, 64);
  }
  EXPECT_GT(flushes, 0);
  auto [lsn, flushed] = log_.durable_lsn();
  EXPECT_TRUE(flushed);
  EXPECT_GT(lsn, 0u);
  log_.Abort(1);
}

TEST_F(RecoveryTest, ForcedCommitMakesEverythingDurable) {
  log_.Begin(1);
  log_.LogWrite(1, 10, 100);
  log_.Commit(1, /*force=*/true);
  auto [lsn, flushed] = log_.durable_lsn();
  EXPECT_TRUE(flushed);
  EXPECT_EQ(lsn, log_.journal().size() - 1);
  // A crash now recovers txn 1 as a winner.
  RecoveryAnalyzer analyzer(&log_.journal());
  const auto plan = analyzer.AnalyzeCrash(lsn);
  EXPECT_EQ(plan.winners, std::vector<TxnId>{1});
  EXPECT_TRUE(plan.losers.empty());
}

TEST_F(RecoveryTest, ConcurrentTransactionsAnalyzeIndependently) {
  log_.Begin(1);
  log_.Begin(2);
  log_.Begin(3);
  log_.LogWrite(1, 10, 64);
  log_.LogWrite(2, 20, 64);
  log_.LogWrite(3, 30, 64);
  log_.Commit(2);
  log_.Commit(1);
  // Txn 3 never commits.
  RecoveryAnalyzer analyzer(&log_.journal());
  EXPECT_TRUE(analyzer.CheckWalInvariants().ok());
  const auto plan =
      analyzer.AnalyzeCrash(log_.journal().size() - 1);
  EXPECT_EQ(plan.winners, (std::vector<TxnId>{1, 2}));
  EXPECT_EQ(plan.losers, std::vector<TxnId>{3});
  EXPECT_EQ(plan.redo_pages, (std::vector<store::PageId>{10, 20}));
  EXPECT_EQ(plan.undo_pages, std::vector<store::PageId>{30});
  log_.Abort(3);
}

TEST_F(RecoveryTest, JournalDisabledByDefault) {
  LogManager quiet(64 * 1024, kPage);
  quiet.Begin(1);
  quiet.LogWrite(1, 10, 100);
  quiet.Commit(1);
  EXPECT_TRUE(quiet.journal().empty());
}

// End-to-end: journal a whole simulated-style workload and verify WAL
// invariants plus crash analysis at every flush horizon.
TEST_F(RecoveryTest, PropertyEveryCrashPointIsAnalyzable) {
  {
    uint64_t seed = 7;
    auto next = [&seed] {
      seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
      return seed >> 33;
    };
    TxnId txn = 1;
    for (int i = 0; i < 50; ++i) {
      log_.Begin(txn);
      const int writes = 1 + static_cast<int>(next() % 5);
      for (int w = 0; w < writes; ++w) {
        log_.LogWrite(txn, static_cast<store::PageId>(next() % 12),
                      32 + static_cast<uint32_t>(next() % 200));
      }
      log_.Commit(txn);
      ++txn;
    }
  }
  RecoveryAnalyzer analyzer(&log_.journal());
  ASSERT_TRUE(analyzer.CheckWalInvariants().ok());
  const Lsn last = log_.journal().size() - 1;
  for (Lsn horizon = 0; horizon <= last; horizon += 17) {
    const auto plan = analyzer.AnalyzeCrash(horizon);
    // Winners and losers partition the seen transactions; page sets never
    // overlap between redo (winners only) and... undo may overlap redo
    // when a loser touched a winner's page — but each page set is sorted
    // and deduplicated.
    for (size_t i = 1; i < plan.redo_pages.size(); ++i) {
      EXPECT_LT(plan.redo_pages[i - 1], plan.redo_pages[i]);
    }
    for (size_t i = 1; i < plan.undo_pages.size(); ++i) {
      EXPECT_LT(plan.undo_pages[i - 1], plan.undo_pages[i]);
    }
    EXPECT_EQ(plan.lost_records, last - horizon);
  }
}

}  // namespace
}  // namespace oodb::txlog
