// Cross-module integration and property tests: invariants that must hold
// across the whole stack after arbitrary activity.

#include <set>
#include <unordered_set>

#include "gtest/gtest.h"

#include "core/engineering_db.h"
#include "core/experiment.h"
#include "objmodel/validator.h"

namespace oodb {
namespace {

// After a full simulation run, the storage directory, the pages, and the
// object graph must agree exactly.
class PostRunInvariantsTest
    : public ::testing::TestWithParam<cluster::CandidatePool> {
 protected:
  core::ModelConfig Config() {
    core::ModelConfig cfg = core::TestConfig();
    cfg.measured_transactions = 400;
    cfg.warmup_transactions = 50;
    cfg.workload.read_write_ratio = 3;  // write-heavy: maximum churn
    cfg.clustering.pool = GetParam();
    cfg.clustering.split = cluster::SplitPolicy::kLinearGreedy;
    return cfg;
  }
};

TEST_P(PostRunInvariantsTest, StorageAndGraphAgree) {
  core::EngineeringDbModel model(Config());
  model.Run();
  const auto& graph = model.graph();
  const auto& storage = model.storage();

  // Every live object is placed exactly once; every slot points at a live
  // object whose directory entry matches.
  uint64_t placed_bytes = 0;
  size_t placed_objects = 0;
  for (store::PageId p = 0; p < storage.page_count(); ++p) {
    uint32_t page_bytes = 0;
    for (const store::Slot& slot : storage.page(p).slots()) {
      EXPECT_TRUE(graph.IsLive(slot.object));
      EXPECT_EQ(storage.PageOf(slot.object), p);
      page_bytes += slot.size_bytes;
      ++placed_objects;
    }
    EXPECT_EQ(storage.page(p).used_bytes(), page_bytes);
    EXPECT_LE(page_bytes, storage.page(p).capacity_bytes());
    placed_bytes += page_bytes;
  }
  EXPECT_EQ(placed_bytes, storage.used_bytes());
  EXPECT_EQ(placed_objects, graph.live_count());
}

TEST_P(PostRunInvariantsTest, GraphEdgesStaySymmetric) {
  core::EngineeringDbModel model(Config());
  model.Run();
  obj::StructureValidator validator(&model.graph());
  std::vector<obj::Violation> out;
  validator.CheckEdges(out, 8);
  for (const auto& v : out) {
    ADD_FAILURE() << v.Describe(model.graph());
  }
  // (Configuration cycles are permitted: attachments are unvalidated, as
  // in OCT; version-chain order must still hold.)
  out.clear();
  validator.CheckVersionChains(out, 8);
  for (const auto& v : out) {
    ADD_FAILURE() << v.Describe(model.graph());
  }
}

TEST_P(PostRunInvariantsTest, BufferNeverExceedsCapacityAndAllResidentExist) {
  core::EngineeringDbModel model(Config());
  model.Run();
  const auto& buffer = model.buffer();
  EXPECT_LE(buffer.resident_count(), buffer.capacity());
  for (store::PageId p : buffer.ResidentPages()) {
    EXPECT_LT(p, model.storage().page_count());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pools, PostRunInvariantsTest,
    ::testing::Values(cluster::CandidatePool::kNoClustering,
                      cluster::CandidatePool::kWithinBuffer,
                      cluster::CandidatePool::kIoLimit,
                      cluster::CandidatePool::kWithinDb),
    [](const auto& param_info) {
      return std::string(cluster::CandidatePoolName(param_info.param))
          .substr(0, 20);
    });

// The I/O subsystem's accounting must reconcile with the buffer pool's.
TEST(AccountingTest, MissesAndReadsReconcile) {
  core::ModelConfig cfg = core::TestConfig();
  cfg.measured_transactions = 400;
  cfg.prefetch = buffer::PrefetchPolicy::kNone;
  cfg.clustering.pool = cluster::CandidatePool::kNoClustering;
  core::RunResult r = core::RunCell(cfg);
  // Without prefetch or clustering exams, every physical data read is a
  // buffer miss. (Misses can exceed reads only for unplaced pages, which
  // do not occur.)
  EXPECT_EQ(r.prefetch_reads, 0u);
  EXPECT_EQ(r.cluster_exam_reads, 0u);
  EXPECT_GT(r.data_reads, 0u);
}

TEST(AccountingTest, DirtyFlushesRequireWrites) {
  core::ModelConfig cfg = core::TestConfig();
  cfg.measured_transactions = 500;
  cfg.workload.read_write_ratio = 3;
  core::RunResult r = core::RunCell(cfg);
  EXPECT_GT(r.logical_writes, 0u);
  // Log activity exists whenever writes exist.
  EXPECT_GT(r.log_before_images, 0u);
}

// Seed sweep: the full stack must be reproducible and seeds independent.
class SeedSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweepTest, RunsAreReproducible) {
  core::ModelConfig cfg = core::TestConfig();
  cfg.measured_transactions = 150;
  cfg.warmup_transactions = 20;
  cfg.seed = GetParam();
  core::RunResult a = core::RunCell(cfg);
  core::RunResult b = core::RunCell(cfg);
  EXPECT_DOUBLE_EQ(a.response_time.Mean(), b.response_time.Mean());
  EXPECT_EQ(a.data_reads, b.data_reads);
  EXPECT_EQ(a.log_flush_ios, b.log_flush_ios);
  EXPECT_EQ(a.db_objects, b.db_objects);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(1, 7, 42, 12345, 987654321));

// Density monotonicity: without clustering, response time must not drop
// as structure density rises (denser retrievals cost more).
TEST(ShapeSweepTest, ResponseMonotoneInDensityWithoutClustering) {
  double prev = 0;
  for (auto density :
       {workload::StructureDensity::kLow3, workload::StructureDensity::kMed5,
        workload::StructureDensity::kHigh10}) {
    core::ModelConfig cfg = core::TestConfig();
    cfg.measured_transactions = 400;
    cfg.workload.density = density;
    cfg.database.density = density;
    cfg.clustering.pool = cluster::CandidatePool::kNoClustering;
    const double rt = core::RunCell(cfg).response_time.Mean();
    EXPECT_GE(rt, prev * 0.95) << workload::StructureDensityName(density);
    prev = rt;
  }
}

// Larger buffers never hurt (monotone within noise).
TEST(ShapeSweepTest, MoreBuffersNeverHurt) {
  double small = 0, large = 0;
  for (size_t buffers : {24u, 512u}) {
    core::ModelConfig cfg = core::TestConfig();
    cfg.measured_transactions = 400;
    cfg.buffer_pages = buffers;
    const double rt = core::RunCell(cfg).response_time.Mean();
    (buffers == 24u ? small : large) = rt;
  }
  EXPECT_LE(large, small * 1.05);
}

}  // namespace
}  // namespace oodb
