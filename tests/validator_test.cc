#include "gtest/gtest.h"
#include "objmodel/validator.h"
#include "workload/db_builder.h"

namespace oodb::obj {
namespace {

class ValidatorTest : public ::testing::Test {
 protected:
  ValidatorTest() : graph_(&lattice_) {
    type_ = lattice_.DefineType("cell", kInvalidType, 32, {});
    fam_ = graph_.NewFamily("F");
  }

  ObjectId Make(uint16_t version = 1) {
    return graph_.Create(fam_, version, type_, 64);
  }

  TypeLattice lattice_;
  ObjectGraph graph_;
  TypeId type_ = 0;
  FamilyId fam_ = 0;
};

TEST_F(ValidatorTest, CleanGraphValidates) {
  ObjectId a = Make();
  ObjectId b = Make();
  ObjectId c = Make(2);
  graph_.Relate(a, b, RelKind::kConfiguration);
  graph_.Relate(a, c, RelKind::kVersionHistory);
  graph_.Relate(b, c, RelKind::kCorrespondence);
  StructureValidator validator(&graph_);
  EXPECT_TRUE(validator.Validate().empty());
  EXPECT_TRUE(validator.IsValid());
}

TEST_F(ValidatorTest, DetectsConfigurationCycle) {
  ObjectId a = Make();
  ObjectId b = Make();
  ObjectId c = Make();
  graph_.Relate(a, b, RelKind::kConfiguration);
  graph_.Relate(b, c, RelKind::kConfiguration);
  graph_.Relate(c, a, RelKind::kConfiguration);  // cycle
  StructureValidator validator(&graph_);
  const auto violations = validator.Validate();
  ASSERT_FALSE(violations.empty());
  bool found_cycle = false;
  for (const auto& v : violations) {
    if (v.kind == ViolationKind::kConfigurationCycle) found_cycle = true;
  }
  EXPECT_TRUE(found_cycle);
}

TEST_F(ValidatorTest, SelfLoopsAndDanglingEdgesOnlyViaCorruption) {
  // The public Relate API cannot create these, so forge them through the
  // test-only path of removing an endpoint bypassing Remove().
  ObjectId a = Make();
  ObjectId b = Make();
  graph_.Relate(a, b, RelKind::kConfiguration);
  // Simulate a crashed half-deletion: mark b deleted through Remove of a
  // *different* relationship bookkeeping. Easiest forgery: Remove(b)
  // detaches edges, so instead check that a valid graph stays valid and
  // the validator is bounded.
  StructureValidator validator(&graph_);
  EXPECT_TRUE(validator.Validate(1).empty());
}

TEST_F(ValidatorTest, DetectsVersionOrderViolation) {
  ObjectId v2 = Make(2);
  ObjectId v1 = Make(1);
  graph_.Relate(v2, v1, RelKind::kVersionHistory);  // descendant has v1 < 2
  StructureValidator validator(&graph_);
  const auto violations = validator.Validate();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, ViolationKind::kVersionOrder);
  EXPECT_EQ(violations[0].a, v2);
  EXPECT_EQ(violations[0].b, v1);
}

TEST_F(ValidatorTest, DetectsCrossFamilyVersionEdge) {
  ObjectId a = Make(1);
  FamilyId other = graph_.NewFamily("G");
  ObjectId b = graph_.Create(other, 2, type_, 64);
  graph_.Relate(a, b, RelKind::kVersionHistory);
  StructureValidator validator(&graph_);
  const auto violations = validator.Validate();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, ViolationKind::kVersionFamilyMismatch);
}

TEST_F(ValidatorTest, ViolationLimitRespected) {
  // Build many version-order violations; ask for at most 3.
  for (int i = 0; i < 10; ++i) {
    ObjectId hi = Make(5);
    ObjectId lo = Make(1);
    graph_.Relate(hi, lo, RelKind::kVersionHistory);
  }
  StructureValidator validator(&graph_);
  EXPECT_EQ(validator.Validate(3).size(), 3u);
}

TEST_F(ValidatorTest, DescribeNamesBothEndpoints) {
  ObjectId v2 = Make(2);
  ObjectId v1 = Make(1);
  graph_.Relate(v2, v1, RelKind::kVersionHistory);
  StructureValidator validator(&graph_);
  const auto violations = validator.Validate();
  ASSERT_EQ(violations.size(), 1u);
  const std::string text = violations[0].Describe(graph_);
  EXPECT_NE(text.find("version-order"), std::string::npos);
  EXPECT_NE(text.find("F[2].cell"), std::string::npos);
  EXPECT_NE(text.find("F[1].cell"), std::string::npos);
}

TEST_F(ValidatorTest, DiamondConfigurationIsNotACycle) {
  // a -> b, a -> c, b -> d, c -> d: a DAG, not a cycle.
  ObjectId a = Make();
  ObjectId b = Make();
  ObjectId c = Make();
  ObjectId d = Make();
  graph_.Relate(a, b, RelKind::kConfiguration);
  graph_.Relate(a, c, RelKind::kConfiguration);
  graph_.Relate(b, d, RelKind::kConfiguration);
  graph_.Relate(c, d, RelKind::kConfiguration);
  StructureValidator validator(&graph_);
  EXPECT_TRUE(validator.Validate().empty());
}

TEST(ValidatorBuilderTest, GeneratedDatabaseIsStructurallyValid) {
  // The synthetic CAD database must satisfy every invariant.
  TypeLattice lattice;
  const auto types = workload::RegisterCadTypes(lattice);
  ObjectGraph graph(&lattice);
  store::StorageManager storage(4096);
  cluster::AffinityModel affinity(&lattice);
  cluster::ClusterManager mgr(
      &graph, &storage, &affinity, nullptr,
      {.pool = cluster::CandidatePool::kWithinDb,
       .split = cluster::SplitPolicy::kLinearGreedy});
  workload::DatabaseSpec spec;
  spec.target_bytes = 512 << 10;
  workload::DbBuilder builder(&graph, &mgr, nullptr, spec);
  builder.Build(types);

  StructureValidator validator(&graph);
  const auto violations = validator.Validate(8);
  for (const auto& v : violations) {
    ADD_FAILURE() << v.Describe(graph);
  }
}

}  // namespace
}  // namespace oodb::obj
