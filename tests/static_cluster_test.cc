#include <set>

#include "gtest/gtest.h"
#include "cluster/static_clusterer.h"
#include "workload/db_builder.h"

namespace oodb::cluster {
namespace {

class StaticClustererTest : public ::testing::Test {
 protected:
  // Types are registered before affinity_ is built: AffinityModel sizes
  // its type-state table eagerly from the lattice at construction.
  StaticClustererTest()
      : graph_(&lattice_),
        storage_(4096),
        types_(workload::RegisterCadTypes(lattice_)),
        affinity_(&lattice_) {}

  // Builds an arrival-order (scattered) database.
  workload::DesignDatabase BuildScattered(uint64_t bytes = 256 << 10) {
    ClusterConfig config;  // No_Clustering
    mgr_ = std::make_unique<ClusterManager>(&graph_, &storage_, &affinity_,
                                            nullptr, config);
    workload::DatabaseSpec spec;
    spec.target_bytes = bytes;
    workload::DbBuilder builder(&graph_, mgr_.get(), nullptr, spec);
    return builder.Build(types_);
  }

  double MeanModuleScatter(const workload::DesignDatabase& db) {
    double total = 0;
    for (const auto& m : db.modules) {
      std::set<store::PageId> pages;
      uint64_t bytes = 0;
      for (auto id : m.objects) {
        if (!storage_.IsPlaced(id)) continue;
        pages.insert(storage_.PageOf(id));
        bytes += storage_.SizeOf(id);
      }
      total += static_cast<double>(pages.size()) /
               std::max(1.0, static_cast<double>(bytes) / 4096.0);
    }
    return total / static_cast<double>(db.modules.size());
  }

  obj::TypeLattice lattice_;
  obj::ObjectGraph graph_;
  store::StorageManager storage_;
  workload::CadTypes types_{};
  AffinityModel affinity_;
  std::unique_ptr<ClusterManager> mgr_;
};

TEST_F(StaticClustererTest, OrderVisitsEveryPlacedObjectOnce) {
  auto db = BuildScattered();
  StaticClusterer reorg(&graph_, &storage_, &affinity_);
  const auto order = reorg.ComputeOrder();
  EXPECT_EQ(order.size(), graph_.live_count());
  std::set<obj::ObjectId> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), order.size());
}

TEST_F(StaticClustererTest, OrderKeepsRelativesAdjacent) {
  auto db = BuildScattered();
  StaticClusterer reorg(&graph_, &storage_, &affinity_);
  const auto order = reorg.ComputeOrder();
  // Position index per object.
  std::vector<size_t> pos(graph_.size(), 0);
  for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  // Components should sit close to their composite in the order: measure
  // the mean |pos(parent) - pos(child)| against a random baseline (~n/3).
  double dist_sum = 0;
  size_t count = 0;
  for (const auto& m : db.modules) {
    for (obj::ObjectId id : m.composites) {
      if (!graph_.IsLive(id)) continue;
      for (obj::ObjectId c : graph_.Components(id)) {
        if (!graph_.IsLive(c)) continue;
        dist_sum += std::abs(static_cast<double>(pos[id]) -
                             static_cast<double>(pos[c]));
        ++count;
      }
    }
  }
  const double mean_dist = dist_sum / static_cast<double>(count);
  EXPECT_LT(mean_dist, static_cast<double>(order.size()) / 20.0);
}

TEST_F(StaticClustererTest, ReorganizeDensifiesModules) {
  auto db = BuildScattered();
  const double before = MeanModuleScatter(db);
  StaticClusterer reorg(&graph_, &storage_, &affinity_);
  const auto report = reorg.Reorganize();
  const double after = MeanModuleScatter(db);
  EXPECT_LT(after, before * 0.5);
  EXPECT_LE(after, 2.0);
  EXPECT_EQ(report.objects_total, graph_.live_count());
  EXPECT_GT(report.objects_moved, 0u);
}

TEST_F(StaticClustererTest, ReorganizePreservesEveryObject) {
  auto db = BuildScattered();
  StaticClusterer reorg(&graph_, &storage_, &affinity_);
  reorg.Reorganize();
  for (const auto& m : db.modules) {
    for (obj::ObjectId id : m.objects) {
      if (!graph_.IsLive(id)) continue;
      EXPECT_TRUE(storage_.IsPlaced(id));
    }
  }
  // Byte accounting unchanged by moves.
  uint64_t used = 0;
  for (store::PageId p = 0; p < storage_.page_count(); ++p) {
    used += storage_.page(p).used_bytes();
  }
  EXPECT_EQ(used, storage_.used_bytes());
}

TEST_F(StaticClustererTest, RespectsFillFraction) {
  BuildScattered();
  StaticClusterer reorg(&graph_, &storage_, &affinity_,
                        /*fill_fraction=*/0.5);
  reorg.Reorganize();
  // No destination page may exceed ~50% + one object of fill.
  for (store::PageId p = 0; p < storage_.page_count(); ++p) {
    const auto& page = storage_.page(p);
    if (page.object_count() == 0) continue;
    EXPECT_LE(page.used_bytes(), 2048u + 1024u) << "page " << p;
  }
}

TEST_F(StaticClustererTest, ReportCountsArePlausible) {
  BuildScattered();
  StaticClusterer reorg(&graph_, &storage_, &affinity_);
  const auto report = reorg.Reorganize();
  EXPECT_GT(report.pages_before, 0u);
  EXPECT_GT(report.pages_after, 0u);
  EXPECT_GE(report.page_writes, report.pages_after);
  EXPECT_LE(report.objects_moved, report.objects_total);
}

TEST_F(StaticClustererTest, IdempotentSecondRunMovesLittle) {
  BuildScattered();
  StaticClusterer reorg(&graph_, &storage_, &affinity_);
  reorg.Reorganize();
  const auto second = reorg.Reorganize();
  // Already clustered: most objects land on pages with the same
  // neighbours. The pass still repacks (fresh pages), so moves happen,
  // but the layout quality must not regress.
  EXPECT_EQ(second.objects_total, graph_.live_count());
}

}  // namespace
}  // namespace oodb::cluster
