#include "gtest/gtest.h"

#include <cstdio>
#include <fstream>

#include "core/engineering_db.h"
#include "core/experiment.h"
#include "core/policy_registry.h"
#include "core/scenario.h"
#include "dyn/dyn_config.h"
#include "exec/experiment_runner.h"
#include "util/json_reader.h"

namespace oodb::core {
namespace {

// ---------------------------------------------------------------- JSON DOM

TEST(JsonReaderTest, ParsesNestedDocument) {
  const auto doc = JsonValue::Parse(
      R"({"a": 1, "b": [true, null, "x\ny"], "c": {"d": 2.5}})");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_TRUE(doc->is_object());
  ASSERT_EQ(doc->members().size(), 3u);
  // Members keep source order.
  EXPECT_EQ(doc->members()[0].first, "a");
  EXPECT_EQ(doc->members()[2].first, "c");
  EXPECT_EQ(doc->Find("a")->number_value(), 1.0);
  const JsonValue* b = doc->Find("b");
  ASSERT_TRUE(b != nullptr && b->is_array());
  ASSERT_EQ(b->items().size(), 3u);
  EXPECT_TRUE(b->items()[0].bool_value());
  EXPECT_TRUE(b->items()[1].is_null());
  EXPECT_EQ(b->items()[2].string_value(), "x\ny");
  EXPECT_EQ(doc->Find("c")->Find("d")->number_value(), 2.5);
  EXPECT_EQ(doc->Find("missing"), nullptr);
}

TEST(JsonReaderTest, LargeIntegersSurviveViaSourceText) {
  // 2^53 + 1 is not representable as a double; the uint view must be exact.
  const auto doc = JsonValue::Parse("{\"seed\": 9007199254740993}");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("seed")->uint_value(), 9007199254740993ull);
  EXPECT_EQ(doc->Find("seed")->number_text(), "9007199254740993");
}

TEST(JsonReaderTest, ErrorsCarryByteOffsets) {
  for (const char* bad : {"{", "[1,2] junk", "{\"a\" 1}", "tru", ""}) {
    const auto doc = JsonValue::Parse(bad);
    EXPECT_FALSE(doc.ok()) << bad;
    EXPECT_NE(doc.status().message().find("offset"), std::string::npos)
        << doc.status().ToString();
  }
}

// --------------------------------------------------------- policy registry

TEST(PolicyRegistryTest, EveryEnumValueResolvesByItsCanonicalName) {
  const PolicyRegistry& reg = PolicyRegistry::Global();
  using R = buffer::ReplacementPolicy;
  for (R p : {R::kLru, R::kContextSensitive, R::kRandom}) {
    EXPECT_EQ(reg.Replacement(buffer::ReplacementPolicyName(p)), p);
  }
  using P = buffer::PrefetchPolicy;
  for (P p : {P::kNone, P::kWithinBuffer, P::kWithinDb}) {
    EXPECT_EQ(reg.Prefetch(buffer::PrefetchPolicyName(p)), p);
  }
  using C = cluster::CandidatePool;
  for (C p : {C::kNoClustering, C::kWithinBuffer, C::kIoLimit, C::kWithinDb}) {
    EXPECT_EQ(reg.CandidatePool(cluster::CandidatePoolName(p)), p);
  }
  using S = cluster::SplitPolicy;
  for (S p : {S::kNoSplit, S::kLinearGreedy, S::kExhaustive}) {
    EXPECT_EQ(reg.Split(cluster::SplitPolicyName(p)), p);
  }
  using D = workload::StructureDensity;
  for (D d : {D::kLow3, D::kMed5, D::kHigh10}) {
    EXPECT_EQ(reg.Density(workload::StructureDensityName(d)), d);
  }
  using K = obj::RelKind;
  for (K k : {K::kConfiguration, K::kVersionHistory, K::kCorrespondence,
              K::kInstanceInheritance}) {
    EXPECT_EQ(reg.Relationship(obj::RelKindName(k)), k);
  }
}

TEST(PolicyRegistryTest, LookupsNormalizeCaseAndSeparators) {
  const PolicyRegistry& reg = PolicyRegistry::Global();
  EXPECT_EQ(reg.CandidatePool("cluster within buffer"),
            cluster::CandidatePool::kWithinBuffer);
  EXPECT_EQ(reg.CandidatePool("CLUSTER-WITHIN-BUFFER"),
            cluster::CandidatePool::kWithinBuffer);
  EXPECT_EQ(reg.Replacement("context"),
            buffer::ReplacementPolicy::kContextSensitive);
  EXPECT_EQ(reg.Prefetch("p_db"), buffer::PrefetchPolicy::kWithinDb);
  EXPECT_EQ(reg.Split("linear"), cluster::SplitPolicy::kLinearGreedy);
  EXPECT_EQ(reg.Density("HIGH"), workload::StructureDensity::kHigh10);
  EXPECT_FALSE(reg.Split("bogus").has_value());
  EXPECT_FALSE(reg.Replacement("").has_value());
}

TEST(PolicyRegistryTest, CanonicalNamesAreTheDisplayNames) {
  const PolicyRegistry& reg = PolicyRegistry::Global();
  EXPECT_EQ(reg.CanonicalNames(PolicyAxis::kReplacement).size(), 3u);
  EXPECT_EQ(reg.CanonicalNames(PolicyAxis::kPrefetch).size(), 3u);
  EXPECT_EQ(reg.CanonicalNames(PolicyAxis::kCandidatePool).size(), 4u);
  EXPECT_EQ(reg.CanonicalNames(PolicyAxis::kSplit).size(), 3u);
  EXPECT_EQ(reg.CanonicalNames(PolicyAxis::kDensity).size(), 3u);
  EXPECT_EQ(reg.CanonicalNames(PolicyAxis::kRelKind).size(), 4u);
  // Aliases never displace the canonical spelling.
  EXPECT_EQ(reg.CanonicalNames(PolicyAxis::kReplacement)[0], "LRU");
  EXPECT_EQ(reg.CanonicalNames(PolicyAxis::kCandidatePool)[0],
            "No_Clustering");
  EXPECT_NE(reg.KnownNames(PolicyAxis::kPrefetch).find("No_prefetch"),
            std::string::npos);
}

// ----------------------------------------------------------------- scenario

// The committed fig5_1 scenario, inlined (the file itself is exercised by
// the CI smoke run; this keeps the unit test working-directory-agnostic).
constexpr char kFig51Scenario[] = R"json({
  "name": "fig5_1_fast",
  "bench": "Figure 5.1",
  "config": {
    "buffer_level": "medium",
    "warmup_transactions": 100,
    "measured_transactions": 500,
    "seed": 1
  },
  "sweep": {
    "clustering": "figure5_1",
    "workload": "standard_grid"
  }
})json";

TEST(ScenarioTest, Fig51ExpandsToTheBenchGridInBenchOrder) {
  const auto spec = ParseScenario(kFig51Scenario);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->bench, "Figure 5.1");
  EXPECT_EQ(spec->base.buffer_pages, spec->base.BufferMedium());

  const auto cells = spec->Expand();
  const auto policies = ClusteringPolicyLevels();
  const auto grid = StandardWorkloadGrid();
  ASSERT_EQ(cells.size(), policies.size() * grid.size());

  // Clustering-major, workload-minor — exactly RunClusteringGrid's batch
  // order, with FillDefaultLabels' labels.
  size_t i = 0;
  for (const auto& policy : policies) {
    for (const auto& w : grid) {
      SCOPED_TRACE(cells[i].cell_label);
      EXPECT_EQ(cells[i].policy, policy.Label());
      EXPECT_EQ(cells[i].workload, w.Label());
      EXPECT_EQ(cells[i].cell_label, policy.Label() + "/" + w.Label());
      EXPECT_EQ(cells[i].config.clustering.pool, policy.pool);
      EXPECT_EQ(cells[i].config.clustering.io_limit, policy.io_limit);
      EXPECT_EQ(cells[i].config.workload.density, w.density);
      EXPECT_EQ(cells[i].config.database.density, w.density);
      EXPECT_EQ(cells[i].config.workload.read_write_ratio,
                w.read_write_ratio);
      EXPECT_EQ(cells[i].config.warmup_transactions, 100);
      EXPECT_EQ(cells[i].config.measured_transactions, 500);
      EXPECT_EQ(cells[i].config.seed, 1u);
      ++i;
    }
  }
  EXPECT_EQ(cells.front().cell_label, "No_Clustering/low3-5");
  EXPECT_EQ(cells.back().cell_label, "No_limit/hi10-100");
}

TEST(ScenarioTest, ParseSerializeRoundTripIsStable) {
  const auto first = ParseScenario(R"json({
    "name": "roundtrip",
    "description": "every axis populated",
    "config": {
      "buffer_pages": 64,
      "replacement": "Context-sensitive",
      "prefetch": "p_DB",
      "warmup_transactions": 10,
      "measured_transactions": 60,
      "measurement_epochs": 2,
      "rw_ratio_schedule": [5, 100],
      "seed": 9007199254740993,
      "workload": {"density": "hi10", "rw_ratio": 100},
      "clustering": {"pool": "With_IO_limit", "io_limit": 4,
                     "split": "Linear_Split", "use_hints": true,
                     "hint_kind": "version-history", "hint_boost": 2.5}
    },
    "sweep": {
      "clustering": ["No_Clustering", {"pool": "No_limit"}],
      "workload": [{"density": "low3", "rw_ratio": 5}],
      "replacement": ["LRU", "Random"],
      "prefetch": ["No_prefetch"],
      "buffer_pages": [64, "medium"]
    }
  })json");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->base.seed, 9007199254740993ull);
  EXPECT_EQ(first->base.replacement,
            buffer::ReplacementPolicy::kContextSensitive);
  EXPECT_EQ(first->base.clustering.split, cluster::SplitPolicy::kLinearGreedy);
  EXPECT_TRUE(first->base.clustering.use_hints);
  ASSERT_EQ(first->clustering.size(), 2u);
  // Sweep entries inherit unset fields from the base clustering config.
  EXPECT_EQ(first->clustering[1].pool, cluster::CandidatePool::kWithinDb);
  EXPECT_EQ(first->clustering[1].split, cluster::SplitPolicy::kLinearGreedy);
  ASSERT_EQ(first->buffer_pages.size(), 2u);
  EXPECT_EQ(first->buffer_pages[1], first->base.BufferMedium());

  const std::string json = first->ToJson();
  const auto second = ParseScenario(json);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(json, second->ToJson());

  // Expansion order: replacement (outer) x prefetch x buffers x clustering
  // x workload (inner); multi-level axes prefix the policy label.
  const auto cells = first->Expand();
  ASSERT_EQ(cells.size(), 2u * 1u * 2u * 2u * 1u);
  EXPECT_EQ(cells.front().policy, "LRU_64buf_No_Clustering");
  EXPECT_EQ(cells.back().policy,
            "Random_" + std::to_string(first->base.BufferMedium()) +
                "buf_No_limit");
}

TEST(ScenarioTest, ActionableErrors) {
  const auto expect_error = [](const char* json, const std::string& needle) {
    const auto spec = ParseScenario(json);
    ASSERT_FALSE(spec.ok()) << json;
    EXPECT_NE(spec.status().message().find(needle), std::string::npos)
        << spec.status().ToString();
  };
  expect_error(R"({"name": "x", "bogus": 1})", "bogus");
  expect_error(R"({"config": {}})", "\"name\" is required");
  expect_error(R"({"name": "x", "config": {"replacement": "FIFO"}})",
               "known: LRU, Context-sensitive, Random");
  expect_error(R"({"name": "x", "config": {"warmup": 1}})",
               "unknown key \"warmup\"");
  expect_error(
      R"({"name": "x", "config": {"buffer_pages": 64, "buffer_level": "medium"}})",
      "not both");
  expect_error(R"({"name": "x", "config": {"buffer_level": "huge"}})",
               "small, medium, large");
  expect_error(R"({"name": "x", "config": {"measured_transactions": 0}})",
               "measured_transactions");
  expect_error(R"({"name": "x", "sweep": {"buffer_pages": [4]}})",
               "at least 8 frames");
  expect_error(R"({"name": "x", "sweep": {"clustering": "figure9"}})",
               "figure5_1");
  expect_error(R"({"name": "x", "config": {"seed": "one"}})",
               "config.seed");
  // OCB knobs are gated behind "kind": "ocb" so a typo can't silently
  // switch a scenario onto the generic benchmark.
  expect_error(
      R"({"name": "x", "config": {"workload": {"instances": 500}}})",
      "add \"kind\": \"ocb\"");
  expect_error(
      R"({"name": "x", "config": {"workload": {"kind": "osb"}}})",
      "known: oct, ocb");
  expect_error(
      R"({"name": "x", "config":
          {"workload": {"kind": "ocb", "locality": "pareto"}}})",
      "uniform, gaussian, zipf");
  expect_error(
      R"({"name": "x", "config": {"workload": {"kind": "ocb", "classes": 1}}})",
      "classes");
  // Dynamic re-clustering knobs are gated the same way: tuning a dyn_*
  // knob with the policy still off is a silent no-op, so it's an error.
  expect_error(
      R"({"name": "x", "config":
          {"clustering": {"dyn_observation_period": 64}}})",
      "is a dynamic re-clustering knob");
  expect_error(
      R"({"name": "x", "config": {"clustering": {"dynamic": "DBSCAN"}}})",
      "DSTC");
}

TEST(ScenarioTest, DynamicKnobsRoundTripAndExpand) {
  const auto first = ParseScenario(R"json({
    "name": "dyn_roundtrip",
    "config": {
      "buffer_pages": 64,
      "warmup_transactions": 10,
      "measured_transactions": 60,
      "seed": 5,
      "clustering": {"pool": "No_Clustering", "dynamic": "OPCF",
                     "dyn_observation_period": 64,
                     "dyn_trigger_threshold": 4.0,
                     "dyn_unit_size": 8,
                     "opcf_watermark": 1.5, "opcf_batch": 2}
    },
    "sweep": {
      "clustering": [{"pool": "No_Clustering", "dynamic": "off"},
                     {"pool": "No_Clustering", "dynamic": "dstc_dynamic"}]
    }
  })json");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->base.clustering.dynamic.policy, dyn::PolicyKind::kOpcf);
  EXPECT_EQ(first->base.clustering.dynamic.observation_period, 64);
  EXPECT_DOUBLE_EQ(first->base.clustering.dynamic.trigger_threshold, 4.0);
  EXPECT_EQ(first->base.clustering.dynamic.max_unit_size, 8);
  EXPECT_DOUBLE_EQ(first->base.clustering.dynamic.opcf_queue_watermark, 1.5);
  EXPECT_EQ(first->base.clustering.dynamic.opcf_batch, 2);

  const std::string json = first->ToJson();
  const auto second = ParseScenario(json);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(json, second->ToJson());

  // Sweep entries inherit the base's dyn tuning; the policy kind is the
  // per-entry override ("off" disables, "dstc_dynamic" is the registry
  // alias for DSTC) and lands in the cell label via LabelSuffix.
  ASSERT_EQ(first->clustering.size(), 2u);
  EXPECT_EQ(first->clustering[0].dynamic.policy, dyn::PolicyKind::kNone);
  EXPECT_EQ(first->clustering[1].dynamic.policy, dyn::PolicyKind::kDstc);
  EXPECT_EQ(first->clustering[1].dynamic.observation_period, 64);
  const auto cells = first->Expand();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].policy, "No_Clustering");
  EXPECT_EQ(cells[1].policy, "No_Clustering+DSTC");
}

TEST(ScenarioTest, SpanProfilerKnobsRoundTripAndGate) {
  const auto first = ParseScenario(R"json({
    "name": "span_roundtrip",
    "config": {
      "buffer_pages": 64,
      "warmup_transactions": 10,
      "measured_transactions": 60,
      "seed": 5,
      "profile_spans": true,
      "span_exemplars": 7,
      "clustering": {"pool": "No_Clustering"}
    }
  })json");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first->base.profile_spans);
  EXPECT_EQ(first->base.span_exemplars, 7);
  const std::string json = first->ToJson();
  const auto second = ParseScenario(json);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(json, second->ToJson());

  // span_exemplars without profile_spans is an authoring mistake, not a
  // silent no-op; the gate must not depend on key order (it is checked
  // after the whole config section is parsed).
  const auto bad = ParseScenario(R"json({
    "name": "span_bad",
    "config": {
      "buffer_pages": 64,
      "warmup_transactions": 10,
      "measured_transactions": 60,
      "span_exemplars": 7,
      "clustering": {"pool": "No_Clustering"}
    }
  })json");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("profile_spans"), std::string::npos)
      << bad.status().ToString();
}

TEST(PolicyRegistryTest, DynamicAxisResolvesCanonicalNamesAndAliases) {
  const PolicyRegistry& reg = PolicyRegistry::Global();
  using D = dyn::PolicyKind;
  for (D p : {D::kNone, D::kDstc, D::kOpcf}) {
    EXPECT_EQ(reg.Dynamic(dyn::PolicyKindName(p)), p);
  }
  EXPECT_EQ(reg.Dynamic("none"), D::kNone);
  EXPECT_EQ(reg.Dynamic("off"), D::kNone);
  EXPECT_EQ(reg.Dynamic("static"), D::kNone);
  EXPECT_EQ(reg.Dynamic("dstc"), D::kDstc);
  EXPECT_EQ(reg.Dynamic("opcf"), D::kOpcf);
  EXPECT_EQ(reg.Dynamic("opportunistic"), D::kOpcf);
  EXPECT_FALSE(reg.Dynamic("bogus").has_value());
  EXPECT_EQ(reg.CanonicalNames(PolicyAxis::kDynamic).size(), 3u);
  EXPECT_EQ(reg.CanonicalNames(PolicyAxis::kDynamic)[0], "No_Dynamic");
}

TEST(ScenarioTest, LoadScenarioFileReadsAndReportsPath) {
  const std::string path = testing::TempDir() + "/t.scenario.json";
  {
    std::ofstream out(path);
    out << kFig51Scenario;
  }
  const auto spec = LoadScenarioFile(path);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->name, "fig5_1_fast");
  std::remove(path.c_str());

  const auto missing = LoadScenarioFile(path + ".nope");
  EXPECT_FALSE(missing.ok());

  {
    std::ofstream out(path);
    out << "{ not json";
  }
  const auto bad = LoadScenarioFile(path);
  ASSERT_FALSE(bad.ok());
  // Parse failures name the file.
  EXPECT_NE(bad.status().message().find(path), std::string::npos)
      << bad.status().ToString();
  std::remove(path.c_str());
}

// The tentpole's behaviour-preservation check at unit scale: a scenario
// cell run through the ExperimentRunner (the semclust_run path) produces
// the identical RunResult as the facade driven directly with the same
// derived seed (the legacy path).
TEST(ScenarioTest, FacadeEquivalenceWithDirectModelRun) {
  const auto spec = ParseScenario(R"json({
    "name": "facade_equivalence",
    "config": {
      "database_bytes": 2097152,
      "buffer_pages": 64,
      "warmup_transactions": 50,
      "measured_transactions": 300,
      "seed": 7
    }
  })json");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const auto cells = spec->Expand();
  ASSERT_EQ(cells.size(), 1u);

  const exec::ExperimentRunner runner(1);
  const auto outcomes = runner.Run({cells[0].config});
  ASSERT_EQ(outcomes.size(), 1u);

  ModelConfig direct = TestConfig();
  direct.seed = exec::ExperimentRunner::CellSeed(7, 0);
  direct.cell_index = 0;
  EngineeringDbModel model(direct);
  const RunResult expected = model.Run();

  const RunResult& got = outcomes[0].result;
  EXPECT_DOUBLE_EQ(got.response_time.Mean(), expected.response_time.Mean());
  EXPECT_EQ(got.transactions, expected.transactions);
  EXPECT_EQ(got.logical_reads, expected.logical_reads);
  EXPECT_EQ(got.logical_writes, expected.logical_writes);
  EXPECT_EQ(got.data_reads, expected.data_reads);
  EXPECT_EQ(got.total_physical_ios(), expected.total_physical_ios());
  EXPECT_EQ(got.buffer_hit_ratio, expected.buffer_hit_ratio);
}

}  // namespace
}  // namespace oodb::core
