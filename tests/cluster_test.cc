#include <algorithm>

#include "gtest/gtest.h"

#include "cluster/affinity.h"
#include "cluster/cluster_manager.h"
#include "cluster/dependency_graph.h"
#include "cluster/page_splitter.h"
#include "cluster/policy.h"
#include "util/random.h"

namespace oodb::cluster {
namespace {

using obj::RelKind;
using store::PageId;
using store::kInvalidPage;

// ---------------------------------------------------------------- affinity

class AffinityTest : public ::testing::Test {
 protected:
  AffinityTest() {
    // Configuration-heavy profile: 8 : 1 : 0.5 : 0.5.
    type_ = lattice_.DefineType("cell", obj::kInvalidType, 32,
                                {8.0, 1.0, 0.5, 0.5});
  }
  obj::TypeLattice lattice_;
  obj::TypeId type_ = 0;
};

TEST_F(AffinityTest, PriorIsNormalisedTypeProfile) {
  AffinityModel model(&lattice_);
  EXPECT_NEAR(model.Weight(type_, RelKind::kConfiguration), 0.8, 1e-12);
  EXPECT_NEAR(model.Weight(type_, RelKind::kVersionHistory), 0.1, 1e-12);
}

TEST_F(AffinityTest, LearningShiftsWeightTowardObservedKind) {
  AffinityModel model(&lattice_, /*learned_share=*/0.5);
  const double before = model.Weight(type_, RelKind::kVersionHistory);
  for (int i = 0; i < 1000; ++i) {
    model.RecordTraversal(type_, RelKind::kVersionHistory);
  }
  const double after = model.Weight(type_, RelKind::kVersionHistory);
  EXPECT_GT(after, before);
  // Fully ramped: 0.5 * prior(0.1) + 0.5 * learned(1.0).
  EXPECT_NEAR(after, 0.55, 1e-9);
  // Unobserved kinds lose weight correspondingly.
  EXPECT_LT(model.Weight(type_, RelKind::kConfiguration), 0.8);
}

TEST_F(AffinityTest, FewObservationsBarelyMovePlacement) {
  AffinityModel model(&lattice_, 0.5);
  model.RecordTraversal(type_, RelKind::kVersionHistory);
  // One observation: ramp is 1/64, so weight moves by < 2%.
  EXPECT_NEAR(model.Weight(type_, RelKind::kConfiguration), 0.8, 0.02);
}

// ----------------------------------------------------------- dep graph

class DepGraphTest : public ::testing::Test {
 protected:
  DepGraphTest() : graph_(&lattice_), storage_(1000) {
    type_ = lattice_.DefineType("cell", obj::kInvalidType, 32,
                                {8.0, 1.0, 0.5, 0.5});
    fam_ = graph_.NewFamily("F");
    page_ = storage_.AllocatePage();
  }

  obj::ObjectId Place(uint32_t size) {
    obj::ObjectId id = graph_.Create(fam_, 1, type_, size);
    OODB_CHECK(storage_.Place(id, size, page_).ok());
    return id;
  }

  obj::TypeLattice lattice_;
  obj::ObjectGraph graph_;
  store::StorageManager storage_;
  obj::TypeId type_ = 0;
  obj::FamilyId fam_ = 0;
  PageId page_ = 0;
};

TEST_F(DepGraphTest, NodesMirrorPageContents) {
  Place(100);
  Place(200);
  AffinityModel model(&lattice_);
  auto dep = DependencyGraph::Build(graph_, model, storage_, page_);
  EXPECT_EQ(dep.nodes.size(), 2u);
  EXPECT_EQ(dep.TotalSize(), 300u);
  EXPECT_TRUE(dep.arcs.empty());  // unrelated objects: no arcs
}

TEST_F(DepGraphTest, RelatedResidentsGetOneArcPerPair) {
  obj::ObjectId a = Place(100);
  obj::ObjectId b = Place(100);
  graph_.Relate(a, b, RelKind::kConfiguration);
  AffinityModel model(&lattice_);
  auto dep = DependencyGraph::Build(graph_, model, storage_, page_);
  ASSERT_EQ(dep.arcs.size(), 1u);
  // Each endpoint contributes half its edge weight; config weight is 0.8.
  EXPECT_NEAR(dep.arcs[0].weight, 0.8, 1e-9);
}

TEST_F(DepGraphTest, OffPageNeighboursExcluded) {
  obj::ObjectId a = Place(100);
  obj::ObjectId off = graph_.Create(fam_, 2, type_, 100);
  PageId other = storage_.AllocatePage();
  OODB_CHECK(storage_.Place(off, 100, other).ok());
  graph_.Relate(a, off, RelKind::kConfiguration);
  AffinityModel model(&lattice_);
  auto dep = DependencyGraph::Build(graph_, model, storage_, page_);
  EXPECT_TRUE(dep.arcs.empty());
}

TEST_F(DepGraphTest, IncomingObjectJoinsTheGraph) {
  obj::ObjectId a = Place(100);
  obj::ObjectId incoming = graph_.Create(fam_, 3, type_, 150);
  graph_.Relate(a, incoming, RelKind::kConfiguration);
  AffinityModel model(&lattice_);
  auto dep = DependencyGraph::Build(graph_, model, storage_, page_,
                                    DepNode{incoming, 150});
  EXPECT_EQ(dep.nodes.size(), 2u);
  EXPECT_EQ(dep.arcs.size(), 1u);
  EXPECT_EQ(dep.TotalSize(), 250u);
}

// ----------------------------------------------------------- splitters

DependencyGraph MakeGraph(std::vector<uint32_t> sizes,
                          std::vector<DepArc> arcs) {
  DependencyGraph g;
  for (size_t i = 0; i < sizes.size(); ++i) {
    g.nodes.push_back(DepNode{static_cast<obj::ObjectId>(i), sizes[i]});
  }
  g.arcs = std::move(arcs);
  return g;
}

TEST(SplitterTest, CutCostCountsCrossingArcs) {
  auto g = MakeGraph({10, 10, 10}, {{0, 1, 5.0}, {1, 2, 3.0}});
  EXPECT_DOUBLE_EQ(CutCost(g, {0, 0, 1}), 3.0);
  EXPECT_DOUBLE_EQ(CutCost(g, {0, 1, 0}), 8.0);
  EXPECT_DOUBLE_EQ(CutCost(g, {0, 0, 0}), 0.0);
}

TEST(SplitterTest, GreedyKeepsHeavyPairTogether) {
  // Two tight pairs joined by a light arc; capacity fits one pair per side
  // but not both pairs together.
  auto g = MakeGraph({40, 40, 40, 40},
                     {{0, 1, 10.0}, {2, 3, 10.0}, {1, 2, 0.1}});
  auto r = GreedyLinearSplit(g, /*capacity=*/150);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.broken_cost, 0.1);
}

TEST(SplitterTest, WholeGraphFittingOnePageStillSplitsNonTrivially) {
  // Total size <= capacity: the splitter must still return two non-empty
  // sides (a split is being forced by the caller).
  auto g = MakeGraph({40, 40, 40}, {{0, 1, 1.0}, {1, 2, 1.0}});
  auto r = GreedyLinearSplit(g, /*capacity=*/400);
  ASSERT_TRUE(r.feasible);
  EXPECT_FALSE(r.left.empty());
  EXPECT_FALSE(r.right.empty());
}

TEST(SplitterTest, ExactFindsOptimumOnKnownGraph) {
  // A triangle plus a pendant: best cut isolates the pendant side.
  auto g = MakeGraph({30, 30, 30, 30},
                     {{0, 1, 4.0}, {1, 2, 4.0}, {0, 2, 4.0}, {2, 3, 1.0}});
  auto r = ExhaustiveMinCutSplit(g, /*capacity=*/100);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.broken_cost, 1.0);
  // One side must be exactly the pendant node 3.
  const auto& small = r.left.size() == 1 ? r.left : r.right;
  ASSERT_EQ(small.size(), 1u);
  EXPECT_EQ(small[0], 3u);
}

TEST(SplitterTest, InfeasibleWhenANodeExceedsCapacity) {
  auto g = MakeGraph({300, 10}, {});
  auto r = GreedyLinearSplit(g, 100);
  EXPECT_FALSE(r.feasible);
}

TEST(SplitterTest, BothSidesNonEmpty) {
  auto g = MakeGraph({10, 10, 10, 10}, {{0, 1, 1.0}});
  auto r = ExhaustiveMinCutSplit(g, 1000);  // everything could fit one side
  ASSERT_TRUE(r.feasible);
  EXPECT_FALSE(r.left.empty());
  EXPECT_FALSE(r.right.empty());
}

TEST(SplitterTest, CoarsenedPathHandlesManyNodes) {
  // 60 nodes in 30 heavy pairs, weak chain between pairs.
  std::vector<uint32_t> sizes(60, 30);
  std::vector<DepArc> arcs;
  for (uint32_t i = 0; i < 60; i += 2) arcs.push_back({i, i + 1, 10.0});
  for (uint32_t i = 1; i + 1 < 60; i += 2) arcs.push_back({i, i + 1, 0.1});
  auto g = MakeGraph(sizes, arcs);
  auto r = ExhaustiveMinCutSplit(g, /*capacity=*/1000);
  ASSERT_TRUE(r.feasible);
  // No heavy pair should be broken: cost must stay well under one pair.
  EXPECT_LT(r.broken_cost, 10.0);
}

// Property: the exact split never does worse than the greedy split, and
// both respect capacity (the Fig 5.10 relationship).
class SplitComparisonTest : public ::testing::TestWithParam<int> {};

TEST_P(SplitComparisonTest, ExactNeverWorseThanGreedy) {
  Rng rng(1000 + static_cast<uint64_t>(GetParam()));
  const int n = 6 + GetParam() % 11;  // 6..16 nodes
  std::vector<uint32_t> sizes;
  uint64_t total = 0;
  for (int i = 0; i < n; ++i) {
    sizes.push_back(static_cast<uint32_t>(20 + rng.NextBelow(60)));
    total += sizes.back();
  }
  std::vector<DepArc> arcs;
  for (uint32_t a = 0; a < static_cast<uint32_t>(n); ++a) {
    for (uint32_t b = a + 1; b < static_cast<uint32_t>(n); ++b) {
      if (rng.Bernoulli(0.3)) {
        arcs.push_back({a, b, rng.UniformDouble(0.1, 5.0)});
      }
    }
  }
  auto g = MakeGraph(sizes, arcs);
  const uint32_t capacity = static_cast<uint32_t>(total * 3 / 4);

  auto greedy = GreedyLinearSplit(g, capacity);
  auto exact = ExhaustiveMinCutSplit(g, capacity);
  if (greedy.feasible) {
    ASSERT_TRUE(exact.feasible);
    EXPECT_LE(exact.broken_cost, greedy.broken_cost + 1e-9);
  }
  for (const auto& r : {greedy, exact}) {
    if (!r.feasible) continue;
    uint64_t left = 0, right = 0;
    for (uint32_t i : r.left) left += g.nodes[i].size_bytes;
    for (uint32_t i : r.right) right += g.nodes[i].size_bytes;
    EXPECT_LE(left, capacity);
    EXPECT_LE(right, capacity);
    EXPECT_EQ(r.left.size() + r.right.size(), g.nodes.size());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, SplitComparisonTest,
                         ::testing::Range(0, 25));

// ------------------------------------------------------- cluster manager

class ClusterManagerTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kPageSize = 400;

  // Types are registered before affinity_ is built: AffinityModel sizes
  // its type-state table eagerly from the lattice at construction.
  ClusterManagerTest()
      : graph_(&lattice_),
        storage_(kPageSize),
        type_(lattice_.DefineType("cell", obj::kInvalidType, 32,
                                  {8.0, 1.0, 0.5, 0.5})),
        fam_(graph_.NewFamily("F")),
        affinity_(&lattice_) {}

  obj::ObjectId NewObject(uint32_t size = 100) {
    return graph_.Create(fam_, 1, type_, size);
  }

  ClusterManager MakeManager(ClusterConfig config,
                             const buffer::BufferPool* pool = nullptr) {
    return ClusterManager(&graph_, &storage_, &affinity_, pool, config);
  }

  obj::TypeLattice lattice_;
  obj::ObjectGraph graph_;
  store::StorageManager storage_;
  obj::TypeId type_ = 0;
  obj::FamilyId fam_ = 0;
  AffinityModel affinity_;
};

TEST_F(ClusterManagerTest, NoClusteringAppends) {
  auto mgr = MakeManager({.pool = CandidatePool::kNoClustering});
  obj::ObjectId a = NewObject();
  obj::ObjectId b = NewObject();
  graph_.Relate(a, b, RelKind::kConfiguration);
  auto r1 = mgr.PlaceNew(a);
  auto r2 = mgr.PlaceNew(b);
  EXPECT_TRUE(r1.appended);
  EXPECT_TRUE(r2.appended);
  EXPECT_TRUE(r1.exam_reads.empty());
}

TEST_F(ClusterManagerTest, PlacesNextToRelativeWhenAllowed) {
  auto mgr = MakeManager({.pool = CandidatePool::kWithinDb});
  obj::ObjectId a = NewObject(200);
  auto ra = mgr.PlaceNew(a);
  // Large unrelated objects push the append page past a's page while
  // leaving room on it.
  for (int i = 0; i < 3; ++i) mgr.PlaceNew(NewObject(300));

  obj::ObjectId b = NewObject();
  graph_.Relate(a, b, RelKind::kConfiguration);
  auto rb = mgr.PlaceNew(b);
  EXPECT_EQ(rb.page, ra.page);
  EXPECT_FALSE(rb.appended);
}

TEST_F(ClusterManagerTest, ScoresRankPagesByAffinity) {
  auto mgr = MakeManager({.pool = CandidatePool::kWithinDb});
  // Two relatives on page A, one on page B.
  obj::ObjectId a1 = NewObject();
  obj::ObjectId a2 = NewObject();
  obj::ObjectId b1 = NewObject();
  PageId pa = storage_.AllocatePage();
  PageId pb = storage_.AllocatePage();
  OODB_CHECK(storage_.Place(a1, 100, pa).ok());
  OODB_CHECK(storage_.Place(a2, 100, pa).ok());
  OODB_CHECK(storage_.Place(b1, 100, pb).ok());

  obj::ObjectId x = NewObject();
  graph_.Relate(a1, x, RelKind::kConfiguration);
  graph_.Relate(a2, x, RelKind::kConfiguration);
  graph_.Relate(b1, x, RelKind::kConfiguration);

  auto cands = mgr.ScoreCandidates(x);
  ASSERT_EQ(cands.size(), 2u);
  EXPECT_EQ(cands[0].page, pa);
  EXPECT_GT(cands[0].score, cands[1].score);
}

TEST_F(ClusterManagerTest, WithinBufferNeedsResidency) {
  buffer::BufferPool pool(4, buffer::ReplacementPolicy::kLru);
  auto mgr = MakeManager({.pool = CandidatePool::kWithinBuffer}, &pool);

  obj::ObjectId a = NewObject();
  auto ra = mgr.PlaceNew(a);  // appended (no relatives)
  obj::ObjectId b = NewObject();
  graph_.Relate(a, b, RelKind::kConfiguration);

  // Page not resident: placement cannot use it.
  auto rb = mgr.PlaceNew(b);
  EXPECT_TRUE(rb.appended);

  // Make it resident and try a third relative.
  pool.Fix(ra.page);
  obj::ObjectId c = NewObject();
  graph_.Relate(a, c, RelKind::kConfiguration);
  auto rc = mgr.PlaceNew(c);
  EXPECT_EQ(rc.page, ra.page);
  EXPECT_TRUE(rc.exam_reads.empty());  // resident exam is free
}

TEST_F(ClusterManagerTest, IoLimitBoundsExamReads) {
  buffer::BufferPool pool(4, buffer::ReplacementPolicy::kLru);
  auto mgr = MakeManager(
      {.pool = CandidatePool::kIoLimit, .io_limit = 2}, &pool);

  // Relatives on three distinct full pages -> three candidates, none
  // resident, each full so examination moves on.
  obj::ObjectId x = NewObject(100);
  std::vector<PageId> pages;
  for (int i = 0; i < 3; ++i) {
    obj::ObjectId rel = NewObject(100);
    PageId p = storage_.AllocatePage();
    OODB_CHECK(storage_.Place(rel, 100, p).ok());
    // Fill the page so x cannot land there.
    obj::ObjectId filler = NewObject(300);
    OODB_CHECK(storage_.Place(filler, 300, p).ok());
    graph_.Relate(rel, x, RelKind::kConfiguration);
    pages.push_back(p);
  }
  auto r = mgr.PlaceNew(x);
  // All examined candidates were full and no split policy applies: the
  // object seeds a fresh page (not any of the full candidates).
  EXPECT_FALSE(r.appended);
  for (PageId p : pages) EXPECT_NE(r.page, p);
  EXPECT_EQ(r.exam_reads.size(), 2u);  // examined only io_limit pages
}

TEST_F(ClusterManagerTest, WithinDbExaminesEverything) {
  auto mgr = MakeManager({.pool = CandidatePool::kWithinDb});
  obj::ObjectId x = NewObject(100);
  for (int i = 0; i < 3; ++i) {
    obj::ObjectId rel = NewObject(100);
    PageId p = storage_.AllocatePage();
    OODB_CHECK(storage_.Place(rel, 100, p).ok());
    obj::ObjectId filler = NewObject(300);
    OODB_CHECK(storage_.Place(filler, 300, p).ok());
    graph_.Relate(rel, x, RelKind::kConfiguration);
  }
  auto r = mgr.PlaceNew(x);
  EXPECT_FALSE(r.appended);  // fresh-page fallback after examining all
  EXPECT_EQ(r.exam_reads.size(), 3u);
}

TEST_F(ClusterManagerTest, ChosenPageNotCountedAsExamRead) {
  auto mgr = MakeManager({.pool = CandidatePool::kWithinDb});
  obj::ObjectId a = NewObject();
  auto ra = mgr.PlaceNew(a);
  obj::ObjectId b = NewObject();
  graph_.Relate(a, b, RelKind::kConfiguration);
  auto rb = mgr.PlaceNew(b);
  EXPECT_EQ(rb.page, ra.page);
  // The chosen page's demand read is charged by the caller's Fix.
  EXPECT_TRUE(rb.exam_reads.empty());
}

TEST_F(ClusterManagerTest, SplitRescuesFullPreferredPage) {
  auto mgr = MakeManager({.pool = CandidatePool::kWithinDb,
                          .split = SplitPolicy::kLinearGreedy});
  // Page with two unrelated clumps, nearly full.
  PageId p = storage_.AllocatePage();
  obj::ObjectId a1 = NewObject(150);
  obj::ObjectId a2 = NewObject(100);
  obj::ObjectId b1 = NewObject(150);
  OODB_CHECK(storage_.Place(a1, 150, p).ok());
  OODB_CHECK(storage_.Place(a2, 100, p).ok());
  OODB_CHECK(storage_.Place(b1, 150, p).ok());
  graph_.Relate(a1, a2, RelKind::kConfiguration);

  // Incoming strongly tied to the a-clump; doesn't fit (free = 0).
  obj::ObjectId x = NewObject(120);
  graph_.Relate(a1, x, RelKind::kConfiguration);
  graph_.Relate(a2, x, RelKind::kConfiguration);

  auto r = mgr.PlaceNew(x);
  EXPECT_TRUE(r.split);
  EXPECT_FALSE(r.appended);
  EXPECT_NE(r.split_new_page, kInvalidPage);
  // x must end up co-located with a1 and a2.
  EXPECT_EQ(storage_.PageOf(x), storage_.PageOf(a1));
  EXPECT_EQ(storage_.PageOf(a1), storage_.PageOf(a2));
  EXPECT_EQ(mgr.stats().splits, 1u);
}

TEST_F(ClusterManagerTest, NoSplitPolicyFallsToNextCandidate) {
  auto mgr = MakeManager({.pool = CandidatePool::kWithinDb,
                          .split = SplitPolicy::kNoSplit});
  // Best page full; second-best has room.
  PageId full = storage_.AllocatePage();
  obj::ObjectId f1 = NewObject(200);
  obj::ObjectId f2 = NewObject(200);
  OODB_CHECK(storage_.Place(f1, 200, full).ok());
  OODB_CHECK(storage_.Place(f2, 200, full).ok());
  PageId roomy = storage_.AllocatePage();
  obj::ObjectId r1 = NewObject(100);
  OODB_CHECK(storage_.Place(r1, 100, roomy).ok());

  obj::ObjectId x = NewObject(100);
  graph_.Relate(f1, x, RelKind::kConfiguration);
  graph_.Relate(f2, x, RelKind::kConfiguration);
  graph_.Relate(r1, x, RelKind::kConfiguration);

  auto r = mgr.PlaceNew(x);
  EXPECT_EQ(r.page, roomy);
  EXPECT_FALSE(r.split);
}

TEST_F(ClusterManagerTest, ReclusterMovesObjectAfterStructureChange) {
  auto mgr = MakeManager({.pool = CandidatePool::kWithinDb,
                          .recluster_gain_threshold = 0.1});
  // x placed alone; then gains two relatives on another page.
  obj::ObjectId x = NewObject(50);
  auto rx = mgr.PlaceNew(x);
  PageId p = storage_.AllocatePage();
  obj::ObjectId a = NewObject(100);
  obj::ObjectId b = NewObject(100);
  OODB_CHECK(storage_.Place(a, 100, p).ok());
  OODB_CHECK(storage_.Place(b, 100, p).ok());
  graph_.Relate(a, x, RelKind::kConfiguration);
  graph_.Relate(b, x, RelKind::kConfiguration);

  auto r = mgr.Recluster(x);
  EXPECT_TRUE(r.relocated);
  EXPECT_EQ(r.page, p);
  EXPECT_EQ(r.old_page, rx.page);
  EXPECT_EQ(storage_.PageOf(x), p);
  EXPECT_EQ(mgr.stats().relocations, 1u);
}

TEST_F(ClusterManagerTest, ReclusterStaysPutBelowGainThreshold) {
  auto mgr = MakeManager({.pool = CandidatePool::kWithinDb,
                          .recluster_gain_threshold = 100.0});
  obj::ObjectId x = NewObject(50);
  mgr.PlaceNew(x);
  PageId p = storage_.AllocatePage();
  obj::ObjectId a = NewObject(100);
  OODB_CHECK(storage_.Place(a, 100, p).ok());
  graph_.Relate(a, x, RelKind::kConfiguration);

  auto r = mgr.Recluster(x);
  EXPECT_FALSE(r.relocated);
  EXPECT_EQ(storage_.PageOf(x), r.old_page);
}

TEST_F(ClusterManagerTest, ReclusterIsNoopUnderNoClustering) {
  auto mgr = MakeManager({.pool = CandidatePool::kNoClustering});
  obj::ObjectId x = NewObject(50);
  mgr.PlaceNew(x);
  PageId before = storage_.PageOf(x);
  auto r = mgr.Recluster(x);
  EXPECT_FALSE(r.relocated);
  EXPECT_EQ(storage_.PageOf(x), before);
}

TEST_F(ClusterManagerTest, UserHintSteersPlacement) {
  // x has a configuration relative on page A and a version relative on
  // page B. The type profile prefers configuration 8:1, but a version
  // hint with a big boost must override it.
  ClusterConfig config{.pool = CandidatePool::kWithinDb,
                       .use_hints = true,
                       .hint_kind = RelKind::kVersionHistory,
                       .hint_boost = 20.0};
  auto mgr = MakeManager(config);
  PageId pa = storage_.AllocatePage();
  PageId pb = storage_.AllocatePage();
  obj::ObjectId conf_rel = NewObject(100);
  obj::ObjectId ver_rel = NewObject(100);
  OODB_CHECK(storage_.Place(conf_rel, 100, pa).ok());
  OODB_CHECK(storage_.Place(ver_rel, 100, pb).ok());

  obj::ObjectId x = NewObject(100);
  graph_.Relate(conf_rel, x, RelKind::kConfiguration);
  graph_.Relate(ver_rel, x, RelKind::kVersionHistory);

  auto r = mgr.PlaceNew(x);
  EXPECT_EQ(r.page, pb);

  // Without hints the configuration page wins.
  obj::ObjectId y = NewObject(100);
  graph_.Relate(conf_rel, y, RelKind::kConfiguration);
  graph_.Relate(ver_rel, y, RelKind::kVersionHistory);
  auto mgr2 = MakeManager({.pool = CandidatePool::kWithinDb});
  auto ry = mgr2.PlaceNew(y);
  EXPECT_EQ(ry.page, pa);
}

TEST_F(ClusterManagerTest, ClusteringImprovesCoLocationOfComposites) {
  // End-to-end property mirroring how a multi-user CAD database accretes:
  // several concurrent checkin streams, each creating one design module
  // (composite followed by its components), interleaved one object at a
  // time. Arrival-order placement scatters each module across the shared
  // append pages; the clustering policy must keep modules together.
  constexpr int kStreams = 8;
  constexpr int kChildrenPerModule = 6;

  auto run = [&](CandidatePool pool, SplitPolicy split) {
    obj::ObjectGraph graph(&lattice_);
    store::StorageManager storage(kPageSize);
    AffinityModel affinity(&lattice_);
    ClusterManager mgr(&graph, &storage, &affinity, nullptr,
                       ClusterConfig{.pool = pool, .split = split});
    obj::FamilyId fam = graph.NewFamily("G");
    std::vector<obj::ObjectId> composites(kStreams, obj::kInvalidObject);
    std::vector<std::vector<obj::ObjectId>> children(kStreams);
    // Each stream creates: composite, then its components, one object per
    // round-robin turn.
    for (int step = 0; step < 1 + kChildrenPerModule; ++step) {
      for (int s = 0; s < kStreams; ++s) {
        obj::ObjectId o = graph.Create(fam, 1, type_, 50);
        if (step == 0) {
          composites[static_cast<size_t>(s)] = o;
        } else {
          graph.Relate(composites[static_cast<size_t>(s)], o,
                       RelKind::kConfiguration);
          children[static_cast<size_t>(s)].push_back(o);
        }
        mgr.PlaceNew(o);
      }
    }
    // Mean distinct pages touched to read composite + components.
    double total_pages = 0;
    for (int s = 0; s < kStreams; ++s) {
      std::vector<PageId> pages{storage.PageOf(composites[s])};
      for (obj::ObjectId k : children[s]) pages.push_back(storage.PageOf(k));
      std::sort(pages.begin(), pages.end());
      pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
      total_pages += static_cast<double>(pages.size());
    }
    return total_pages / kStreams;
  };

  const double unclustered =
      run(CandidatePool::kNoClustering, SplitPolicy::kNoSplit);
  const double clustered =
      run(CandidatePool::kWithinDb, SplitPolicy::kLinearGreedy);
  // 7 objects x 50 B fit one 400 B page: clustering (with splits freeing
  // room next to relatives) should land each module on ~1-2 pages while
  // arrival order scatters it across ~7.
  EXPECT_LE(clustered, 2.5);
  EXPECT_LT(clustered, unclustered * 0.6);
}

}  // namespace
}  // namespace oodb::cluster
