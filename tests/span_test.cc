// The per-transaction critical-path profiler (src/obs/span_profiler.*,
// DESIGN.md §14): unit behaviour of the recorder/profiler pair, the
// additivity property — every transaction's eight phase totals sum to its
// response time EXACTLY, in integer virtual-time ticks — across both
// workloads and both dynamic-reclustering policies, exemplar-reservoir
// determinism, ring-overflow accounting under span-event load, and
// cross-job-count determinism of the profiled bench records.

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "core/bench_report.h"
#include "core/engineering_db.h"
#include "core/experiment.h"
#include "core/model_config.h"
#include "dyn/dyn_config.h"
#include "exec/experiment_runner.h"
#include "obs/metrics.h"
#include "obs/span_profiler.h"
#include "obs/trace_sink.h"
#include "ocb/ocb_config.h"
#include "workload/query.h"

namespace oodb {
namespace {

std::vector<std::string> TwoKinds() { return {"alpha", "beta"}; }

// --------------------------------------------------------------- recorder

TEST(SpanRecorderTest, DefaultConstructedRecorderIsDisabledAndNoOps) {
  obs::SpanRecorder rec;
  EXPECT_FALSE(rec.enabled());
  // Every call must be a safe no-op on the disabled recorder (the
  // pipeline passes nullptr, but defence in depth is cheap to pin).
  rec.RecordSpan(obs::SpanPhase::kIoService, 0.0, 1.0);
  rec.RecordQueued(obs::SpanPhase::kIoWait, obs::SpanPhase::kIoService, 0.0,
                   0.5, 1.0);
  rec.BeginScope(obs::SpanScope::kQuery, 0.0);
  rec.EndScope(1.0);
  rec.set_dyn_scope(true);
}

TEST(SpanRecorderTest, QueuedIntervalSplitsExactlyAtDispatch) {
  obs::MetricsRegistry reg(/*enabled=*/true);
  obs::SpanProfiler prof(&reg, TwoKinds(), /*exemplars=*/1);
  obs::TxnSpanRecord seen;
  prof.set_txn_observer([&](const obs::TxnSpanRecord& r) { seen = r; });

  obs::SpanRecorder rec(&prof, /*txn=*/7, /*kind=*/0, /*begin_s=*/1.0);
  rec.RecordQueued(obs::SpanPhase::kIoWait, obs::SpanPhase::kIoService,
                   /*begin_s=*/1.0, /*start_s=*/1.25, /*end_s=*/2.0);
  rec.Finish(/*end_s=*/2.0);

  EXPECT_EQ(seen.txn, 7u);
  EXPECT_EQ(seen.response_ticks, obs::ToTicks(1.0));
  EXPECT_EQ(seen.phase_ticks[static_cast<int>(obs::SpanPhase::kIoWait)],
            static_cast<uint64_t>(obs::ToTicks(0.25)));
  EXPECT_EQ(seen.phase_ticks[static_cast<int>(obs::SpanPhase::kIoService)],
            static_cast<uint64_t>(obs::ToTicks(0.75)));
  EXPECT_EQ(seen.PhaseSum(), static_cast<uint64_t>(seen.response_ticks));
}

TEST(SpanRecorderTest, DynScopeOverridesEveryLeafPhase) {
  obs::MetricsRegistry reg(/*enabled=*/true);
  obs::SpanProfiler prof(&reg, TwoKinds(), /*exemplars=*/1);
  obs::TxnSpanRecord seen;
  prof.set_txn_observer([&](const obs::TxnSpanRecord& r) { seen = r; });

  obs::SpanRecorder rec(&prof, 1, 0, 0.0);
  rec.set_dyn_scope(true);
  rec.RecordSpan(obs::SpanPhase::kCpuService, 0.0, 0.5);
  rec.RecordQueued(obs::SpanPhase::kIoWait, obs::SpanPhase::kIoService, 0.5,
                   0.75, 1.0);
  rec.set_dyn_scope(false);
  rec.RecordSpan(obs::SpanPhase::kCpuService, 1.0, 1.5);
  rec.Finish(1.5);

  EXPECT_EQ(
      seen.phase_ticks[static_cast<int>(obs::SpanPhase::kDynRecluster)],
      static_cast<uint64_t>(obs::ToTicks(1.0)));
  EXPECT_EQ(seen.phase_ticks[static_cast<int>(obs::SpanPhase::kCpuService)],
            static_cast<uint64_t>(obs::ToTicks(0.5)));
  EXPECT_EQ(seen.PhaseSum(), static_cast<uint64_t>(seen.response_ticks));
}

TEST(SpanRecorderTest, NodeCapTruncatesTreeButKeepsExactTicks) {
  obs::MetricsRegistry reg(/*enabled=*/true);
  obs::SpanProfiler prof(&reg, TwoKinds(), /*exemplars=*/1);
  obs::TxnSpanRecord seen;
  prof.set_txn_observer([&](const obs::TxnSpanRecord& r) { seen = r; });

  obs::SpanRecorder rec(&prof, 1, 0, 0.0);
  const size_t leaves = obs::SpanRecorder::kMaxNodes + 100;
  for (size_t i = 0; i < leaves; ++i) {
    const double t = static_cast<double>(i) * 1e-3;
    rec.RecordSpan(obs::SpanPhase::kCpuService, t, t + 1e-3);
  }
  rec.Finish(static_cast<double>(leaves) * 1e-3);

  EXPECT_TRUE(seen.truncated);
  EXPECT_LE(seen.nodes.size(), obs::SpanRecorder::kMaxNodes);
  // Attribution is exact even past the cap: only the tree is bounded.
  EXPECT_EQ(seen.PhaseSum(), static_cast<uint64_t>(seen.response_ticks));
}

// --------------------------------------------------------------- profiler

obs::TxnSpanRecord MakeTxn(uint64_t txn, int kind, double begin_s,
                           double response_s) {
  obs::TxnSpanRecord r;
  r.txn = txn;
  r.kind = kind;
  r.begin_ticks = obs::ToTicks(begin_s);
  r.response_ticks = obs::ToTicks(response_s);
  r.phase_ticks[static_cast<int>(obs::SpanPhase::kIoService)] =
      static_cast<uint64_t>(r.response_ticks);
  return r;
}

TEST(SpanProfilerTest, BreakdownOmitsKindsWithNoTransactions) {
  obs::MetricsRegistry reg(/*enabled=*/true);
  obs::SpanProfiler prof(&reg, TwoKinds(), 0);
  prof.EndTxn(MakeTxn(1, 1, 0.0, 0.5));
  prof.EndTxn(MakeTxn(2, 1, 1.0, 0.25));

  const auto breakdown = prof.Breakdown();
  ASSERT_EQ(breakdown.size(), 1u);
  EXPECT_EQ(breakdown[0].kind, "beta");
  EXPECT_EQ(breakdown[0].txns, 2u);
  EXPECT_EQ(breakdown[0].response_ticks,
            static_cast<uint64_t>(obs::ToTicks(0.75)));
  EXPECT_EQ(
      breakdown[0].phase_ticks[static_cast<int>(obs::SpanPhase::kIoService)],
      static_cast<uint64_t>(obs::ToTicks(0.75)));
}

TEST(SpanProfilerTest, ReservoirKeepsSlowestWithDeterministicTieBreak) {
  obs::MetricsRegistry reg(/*enabled=*/true);
  obs::SpanProfiler prof(&reg, TwoKinds(), /*exemplars=*/2);
  prof.EndTxn(MakeTxn(1, 0, 0.0, 0.3));
  prof.EndTxn(MakeTxn(2, 0, 1.0, 0.1));
  prof.EndTxn(MakeTxn(3, 0, 2.0, 0.3));  // ties txn 1; both outrank txn 2
  prof.EndTxn(MakeTxn(4, 0, 3.0, 0.2));  // slower than txn 2, not the 0.3s

  const auto sorted = prof.SortedExemplars();
  ASSERT_EQ(sorted.size(), 2u);
  // Slowest first; the 0.3 s tie breaks towards the earlier transaction.
  EXPECT_EQ(sorted[0]->txn, 1u);
  EXPECT_EQ(sorted[1]->txn, 3u);
}

TEST(SpanProfilerTest, ResetForgetsTotalsAndExemplars) {
  obs::MetricsRegistry reg(/*enabled=*/true);
  obs::SpanProfiler prof(&reg, TwoKinds(), 2);
  prof.EndTxn(MakeTxn(1, 0, 0.0, 0.3));
  prof.Reset();
  EXPECT_EQ(prof.transactions(), 0u);
  EXPECT_TRUE(prof.Breakdown().empty());
  EXPECT_TRUE(prof.SortedExemplars().empty());
}

TEST(SpanProfilerTest, PhaseMetricsRegisteredEagerlyAndFoldExactTicks) {
  // Eager registration: the snapshot layout must not depend on which
  // kinds/phases a workload happened to exercise (cross-job determinism
  // of the merged snapshot relies on it).
  obs::MetricsRegistry reg(/*enabled=*/true);
  obs::SpanProfiler prof(&reg, TwoKinds(), 0);
  const obs::MetricsSnapshot before = reg.Snapshot();
  EXPECT_EQ(before.counter("span.alpha.txns"), 0u);
  EXPECT_EQ(before.counter("span.beta.io_service_ticks"), 0u);
  ASSERT_NE(before.histogram("span.alpha.io_service_s"), nullptr);

  prof.EndTxn(MakeTxn(1, 0, 0.0, 0.5));
  const obs::MetricsSnapshot after = reg.Snapshot();
  EXPECT_EQ(after.counter("span.alpha.txns"), 1u);
  EXPECT_EQ(after.counter("span.alpha.io_service_ticks"),
            static_cast<uint64_t>(obs::ToTicks(0.5)));
  EXPECT_EQ(after.histogram("span.alpha.io_service_s")->count, 1u);
}

TEST(SpanProfilerTest, ExportedExemplarsAreCompleteEventsOnSpansTrack) {
  obs::MetricsRegistry reg(/*enabled=*/true);
  obs::SpanProfiler prof(&reg, TwoKinds(), 1);

  obs::SpanRecorder rec(&prof, 9, 1, 10.0);
  rec.BeginScope(obs::SpanScope::kQuery, 10.0);
  rec.RecordSpan(obs::SpanPhase::kIoService, 10.0, 10.5);
  rec.EndScope(10.5);
  rec.Finish(10.5);

  obs::TraceSink sink(/*clock=*/nullptr, /*capacity=*/64);
  prof.ExportExemplars(sink);
  const auto events = sink.Events();
  // Root txn scope + query scope + one leaf.
  ASSERT_EQ(events.size(), 3u);
  for (const obs::TraceEvent& e : events) {
    EXPECT_EQ(e.type, obs::TraceEventType::kSpan);
    EXPECT_EQ(e.subsystem, obs::Subsystem::kSpans);
    EXPECT_EQ(e.a, 9u);  // txn id
    EXPECT_EQ(e.c, 1u);  // kind
  }
  // Historical timestamps, not the (null) clock's now.
  EXPECT_DOUBLE_EQ(events[0].sim_time_s, 10.0);
  EXPECT_DOUBLE_EQ(events[0].v, 0.5);
}

TEST(SpanProfilerTest, SpanCodeNamesCoverPhasesAndScopes) {
  EXPECT_STREQ(obs::SpanCodeName(
                   static_cast<uint64_t>(obs::SpanPhase::kIoService)),
               "io_service");
  EXPECT_STREQ(obs::SpanCodeName(obs::kSpanScopeCodeBase +
                                 static_cast<uint64_t>(obs::SpanScope::kTxn)),
               "txn");
}

// ------------------------------------------------- additivity (property)

/// Runs one cell with the profiler on and asserts, for EVERY finished
/// transaction, that the eight phase totals sum to the response time
/// exactly (integer ticks, no tolerance), then cross-checks the folded
/// per-kind totals against the per-transaction stream.
void ExpectExactAdditivity(core::ModelConfig cfg, uint64_t min_txns) {
  cfg.profile_spans = true;
  core::EngineeringDbModel model(cfg);
  ASSERT_NE(model.context().spans, nullptr);

  uint64_t observed = 0;
  uint64_t response_total = 0;
  uint64_t phase_total = 0;
  std::set<int> kinds_seen;
  model.context().spans->set_txn_observer(
      [&](const obs::TxnSpanRecord& rec) {
        ++observed;
        kinds_seen.insert(rec.kind);
        ASSERT_EQ(rec.PhaseSum(), static_cast<uint64_t>(rec.response_ticks))
            << "txn " << rec.txn << " kind " << rec.kind;
        response_total += static_cast<uint64_t>(rec.response_ticks);
        phase_total += rec.PhaseSum();
      });
  const core::RunResult r = model.Run();

  EXPECT_GE(observed, min_txns);
  EXPECT_GE(kinds_seen.size(), 2u);
  // The folded breakdown is the same stream aggregated: totals over the
  // *measured* phase only, each kind internally additive.
  ASSERT_FALSE(r.span_breakdown.empty());
  uint64_t breakdown_txns = 0;
  for (const obs::SpanKindBreakdown& b : r.span_breakdown) {
    breakdown_txns += b.txns;
    uint64_t sum = 0;
    for (const uint64_t t : b.phase_ticks) sum += t;
    EXPECT_EQ(sum, b.response_ticks) << b.kind;
  }
  EXPECT_EQ(breakdown_txns,
            static_cast<uint64_t>(cfg.measured_transactions));
  EXPECT_EQ(response_total, phase_total);
}

TEST(SpanAdditivityTest, EngineeringWorkloadAllKinds) {
  core::ModelConfig cfg = core::TestConfig();
  cfg.measured_transactions = 300;
  cfg.warmup_transactions = 30;
  ExpectExactAdditivity(cfg, 300);
}

TEST(SpanAdditivityTest, EngineeringWorkloadWriteHeavyWithSplits) {
  core::ModelConfig cfg = core::TestConfig();
  cfg.measured_transactions = 250;
  cfg.warmup_transactions = 25;
  cfg.workload.read_write_ratio = 3;  // maximum structural churn
  cfg.seed = 99;
  ExpectExactAdditivity(cfg, 250);
}

core::ModelConfig SmallOcbConfig() {
  core::ModelConfig cfg = core::TestConfig();
  ocb::OcbConfig ocb;
  ocb.enabled = true;
  ocb.classes = 8;
  ocb.hierarchy_depth = 3;
  ocb.instances = 600;
  ocb.refs_per_object = 3;
  ocb.partitions = 6;
  ocb.set_lookup_size = 4;
  ocb.traversal_depth = 2;
  ocb.churn_probability = 0.5;
  ocb.churn_burst_length = 6;
  cfg.ocb = ocb;
  cfg.warmup_transactions = 40;
  cfg.measured_transactions = 300;
  cfg.workload.read_write_ratio = 4.0;
  return cfg;
}

TEST(SpanAdditivityTest, OcbWorkloadDynOff) {
  ExpectExactAdditivity(SmallOcbConfig(), 300);
}

TEST(SpanAdditivityTest, OcbWorkloadWithDstcReorganisation) {
  core::ModelConfig cfg = SmallOcbConfig();
  cfg.clustering.dynamic.policy = dyn::PolicyKind::kDstc;
  cfg.clustering.dynamic.observation_period = 32;
  cfg.clustering.dynamic.trigger_threshold = 2.0;
  ExpectExactAdditivity(cfg, 300);
}

TEST(SpanAdditivityTest, OcbWorkloadWithOpcfReorganisation) {
  core::ModelConfig cfg = SmallOcbConfig();
  cfg.clustering.dynamic.policy = dyn::PolicyKind::kOpcf;
  cfg.clustering.dynamic.observation_period = 32;
  cfg.clustering.dynamic.trigger_threshold = 2.0;
  ExpectExactAdditivity(cfg, 300);
}

TEST(SpanAdditivityTest, DynReorganisationTicksActuallyAttributed) {
  // The DSTC run must land ticks in kDynRecluster (otherwise the dyn
  // phase of the taxonomy is untested dead weight).
  core::ModelConfig cfg = SmallOcbConfig();
  cfg.clustering.dynamic.policy = dyn::PolicyKind::kDstc;
  cfg.clustering.dynamic.observation_period = 32;
  cfg.clustering.dynamic.trigger_threshold = 2.0;
  cfg.profile_spans = true;
  const core::RunResult r = core::RunCell(cfg);
  ASSERT_GT(r.metrics.counter("dyn.triggers").value_or(0), 0u);
  uint64_t dyn_ticks = 0;
  for (const obs::SpanKindBreakdown& b : r.span_breakdown) {
    dyn_ticks +=
        b.phase_ticks[static_cast<int>(obs::SpanPhase::kDynRecluster)];
  }
  EXPECT_GT(dyn_ticks, 0u);
}

TEST(SpanAdditivityTest, RandomizedSeeds) {
  for (const uint64_t seed : {11ull, 23ull, 47ull}) {
    core::ModelConfig cfg = core::TestConfig();
    cfg.measured_transactions = 150;
    cfg.warmup_transactions = 15;
    cfg.seed = seed;
    ExpectExactAdditivity(cfg, 150);
  }
}

// ------------------------------------------------ disabled-path neutrality

TEST(SpanProfilerTest, DisabledRunRegistersNoSpanMetrics) {
  core::ModelConfig cfg = core::TestConfig();
  cfg.measured_transactions = 50;
  cfg.warmup_transactions = 5;
  const core::RunResult r = core::RunCell(cfg);
  EXPECT_TRUE(r.span_breakdown.empty());
  for (const auto& [name, value] : r.metrics.counters) {
    EXPECT_NE(name.rfind("span.", 0), 0u) << name;
  }
}

TEST(SpanProfilerTest, ProfilerDoesNotPerturbTheSimulation) {
  core::ModelConfig cfg = core::TestConfig();
  cfg.measured_transactions = 200;
  cfg.warmup_transactions = 20;
  const core::RunResult off = core::RunCell(cfg);
  cfg.profile_spans = true;
  const core::RunResult on = core::RunCell(cfg);
  EXPECT_EQ(off.response_time.Mean(), on.response_time.Mean());
  EXPECT_EQ(off.total_physical_ios(), on.total_physical_ios());
}

// ------------------------------------------------- cross-job determinism

TEST(SpanDeterminismTest, ProfiledRecordsIdenticalAcrossJobCounts) {
  core::ModelConfig cfg = core::TestConfig();
  cfg.measured_transactions = 150;
  cfg.warmup_transactions = 15;
  cfg.profile_spans = true;
  std::vector<core::ModelConfig> grid(4, cfg);
  for (size_t i = 0; i < grid.size(); ++i) grid[i].seed += i;

  const oodb::exec::ExperimentRunner j1(1);
  const oodb::exec::ExperimentRunner j4(4);
  const auto o1 = j1.Run(grid);
  const auto o4 = j4.Run(grid);
  ASSERT_EQ(o1.size(), o4.size());
  const core::BenchReport report("span-determinism");
  for (size_t i = 0; i < o1.size(); ++i) {
    core::BenchRecord r1 = core::BenchReport::FromResult(
        "cell", "p", "w", o1[i].result, /*elapsed_wall_s=*/0);
    core::BenchRecord r4 = core::BenchReport::FromResult(
        "cell", "p", "w", o4[i].result, /*elapsed_wall_s=*/0);
    EXPECT_FALSE(r1.breakdown.empty());
    EXPECT_EQ(report.ToJsonLine(r1), report.ToJsonLine(r4));
  }
}

// ------------------------------------- ring overflow under span-event load

TEST(TraceSinkSpanLoadTest, RingOverflowDropsOldestAndCountsExactly) {
  obs::TraceSink sink(/*clock=*/nullptr, /*capacity=*/128);
  const uint64_t total = 1000;
  for (uint64_t i = 0; i < total; ++i) {
    sink.RecordAt(static_cast<double>(i), obs::Subsystem::kSpans,
                  obs::TraceEventType::kSpan, /*txn=*/i, /*code=*/0,
                  /*query=*/0, /*dur=*/1.0);
  }
  EXPECT_EQ(sink.recorded(), total);
  EXPECT_EQ(sink.dropped(), total - 128);
  const auto events = sink.Events();
  ASSERT_EQ(events.size(), 128u);
  // Oldest retained first: the ring kept exactly the newest 128.
  EXPECT_EQ(events.front().a, total - 128);
  EXPECT_EQ(events.back().a, total - 1);
}

TEST(TraceSinkSpanLoadTest, ExemplarExportOverflowIsAccountedInTheTrace) {
  // A profiler whose exemplar trees exceed the ring must surface the loss
  // through dropped(), which the collector renders as the
  // semclust_ring_dropped metadata record trace_summary reports.
  obs::MetricsRegistry reg(/*enabled=*/true);
  obs::SpanProfiler prof(&reg, TwoKinds(), /*exemplars=*/4);
  for (uint64_t t = 0; t < 4; ++t) {
    obs::SpanRecorder rec(&prof, t, 0, static_cast<double>(t));
    for (int i = 0; i < 8; ++i) {
      const double at = static_cast<double>(t) + i * 0.01;
      rec.RecordSpan(obs::SpanPhase::kCpuService, at, at + 0.01);
    }
    rec.Finish(static_cast<double>(t) + 0.08);
  }
  obs::TraceSink sink(/*clock=*/nullptr, /*capacity=*/16);
  prof.ExportExemplars(sink);
  // 4 exemplars x (1 txn scope + 8 leaves) = 36 events into 16 slots.
  EXPECT_EQ(sink.recorded(), 36u);
  EXPECT_EQ(sink.dropped(), 20u);
  EXPECT_EQ(sink.Events().size(), 16u);

  obs::TraceCollector& collector = obs::TraceCollector::Global();
  collector.Reset();
  collector.Collect(/*cell_index=*/0, "overflow-cell", sink);
  const std::string json = collector.ChromeTraceJson();
  EXPECT_NE(json.find("semclust_ring_dropped"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":20"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  collector.Reset();
}

}  // namespace
}  // namespace oodb
