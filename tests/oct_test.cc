#include <algorithm>

#include "gtest/gtest.h"
#include "oct/oct_model.h"
#include "oct/oct_tools.h"
#include "oct/trace.h"
#include "oct/trace_analyzer.h"

namespace oodb::oct {
namespace {

// ---------------------------------------------------------------- model

TEST(OctModelTest, CreateIsSimpleWrite) {
  TraceCollector trace;
  OctDataManager dm(&trace);
  trace.BeginSession("t");
  dm.Create(OctType::kNet, 64);
  trace.EndSession(1.0);
  EXPECT_EQ(trace.sessions()[0].simple_writes, 1u);
}

TEST(OctModelTest, AttachIsBidirectionalStructureWrite) {
  TraceCollector trace;
  OctDataManager dm(&trace);
  OctId facet = dm.Create(OctType::kFacet, 128);
  OctId net = dm.Create(OctType::kNet, 64);
  trace.BeginSession("t");
  dm.Attach(facet, net);
  trace.EndSession(1.0);
  EXPECT_EQ(trace.sessions()[0].structure_writes, 1u);
  EXPECT_EQ(dm.Peek(facet).contents, std::vector<OctId>{net});
  EXPECT_EQ(dm.Peek(net).containers, std::vector<OctId>{facet});
}

TEST(OctModelTest, DetachRemovesBothDirections) {
  OctDataManager dm(nullptr);
  OctId facet = dm.Create(OctType::kFacet, 128);
  OctId net = dm.Create(OctType::kNet, 64);
  dm.Attach(facet, net);
  dm.Detach(facet, net);
  EXPECT_TRUE(dm.Peek(facet).contents.empty());
  EXPECT_TRUE(dm.Peek(net).containers.empty());
}

TEST(OctModelTest, ContentsRecordsDownwardFanout) {
  TraceCollector trace;
  OctDataManager dm(&trace);
  OctId net = dm.Create(OctType::kNet, 64);
  for (int i = 0; i < 5; ++i) dm.Attach(net, dm.Create(OctType::kTerm, 32));
  trace.BeginSession("t");
  auto terms = dm.Contents(net);
  trace.EndSession(1.0);
  EXPECT_EQ(terms.size(), 5u);
  ASSERT_EQ(trace.sessions()[0].downward_fanouts.size(), 1u);
  EXPECT_EQ(trace.sessions()[0].downward_fanouts[0], 5u);
  EXPECT_EQ(trace.sessions()[0].structure_reads, 1u);
}

TEST(OctModelTest, TypeFilterNarrowsNavigation) {
  OctDataManager dm(nullptr);
  OctId facet = dm.Create(OctType::kFacet, 128);
  dm.Attach(facet, dm.Create(OctType::kNet, 64));
  dm.Attach(facet, dm.Create(OctType::kInstance, 96));
  dm.Attach(facet, dm.Create(OctType::kNet, 64));
  EXPECT_EQ(dm.Contents(facet, OctType::kNet).size(), 2u);
  EXPECT_EQ(dm.Contents(facet, OctType::kInstance).size(), 1u);
}

TEST(OctModelTest, UpwardNavigationUsuallySingle) {
  OctDataManager dm(nullptr);
  OctId net = dm.Create(OctType::kNet, 64);
  OctId term = dm.Create(OctType::kTerm, 32);
  dm.Attach(net, term);
  EXPECT_EQ(dm.Containers(term).size(), 1u);
}

TEST(OctModelTest, OperationsOutsideSessionNotRecorded) {
  TraceCollector trace;
  OctDataManager dm(&trace);
  dm.Create(OctType::kNet, 64);  // no open session
  EXPECT_TRUE(trace.sessions().empty());
  EXPECT_FALSE(trace.InSession());
}

// ---------------------------------------------------------------- trace

TEST(TraceTest, RatioAndRateArithmetic) {
  SessionTrace s;
  s.structure_reads = 60;
  s.simple_reads = 40;
  s.structure_writes = 7;
  s.simple_writes = 3;
  s.session_seconds = 11.0;
  EXPECT_DOUBLE_EQ(s.ReadWriteRatio(), 10.0);
  EXPECT_DOUBLE_EQ(s.IoRate(), 10.0);
}

TEST(TraceTest, ZeroWritesReportsReads) {
  SessionTrace s;
  s.simple_reads = 123;
  EXPECT_DOUBLE_EQ(s.ReadWriteRatio(), 123.0);
}

// ------------------------------------------------------------ workbench

class WorkbenchTest : public ::testing::Test {
 protected:
  static const std::vector<ToolSummary>& Summaries() {
    // The workbench run is shared across tests: it is deterministic and
    // moderately expensive.
    static const std::vector<ToolSummary> summaries = [] {
      OctWorkbench wb(7);
      wb.RunAll(/*invocations_per_tool=*/6);
      return SummarizeByTool(wb.trace().sessions());
    }();
    return summaries;
  }

  static const ToolSummary& Tool(const std::string& name) {
    for (const auto& t : Summaries()) {
      if (t.tool == name) return t;
    }
    ADD_FAILURE() << "missing tool " << name;
    static ToolSummary dummy;
    return dummy;
  }
};

TEST_F(WorkbenchTest, AllTenToolsMeasured) {
  EXPECT_EQ(Summaries().size(), 10u);
  for (const auto& t : Summaries()) {
    EXPECT_EQ(t.invocations, 6u) << t.tool;
    EXPECT_GT(t.total_reads + t.total_writes, 100u) << t.tool;
  }
}

TEST_F(WorkbenchTest, VemHasHighestRatioNear6000) {
  const auto& vem = Tool("vem");
  EXPECT_GT(vem.rw_ratio, 1000);
  for (const auto& t : Summaries()) {
    if (t.tool != "vem") {
      EXPECT_LT(t.rw_ratio, vem.rw_ratio) << t.tool;
    }
  }
}

TEST_F(WorkbenchTest, AtlasIsWriteDominant) {
  const auto& atlas = Tool("atlas");
  EXPECT_LT(atlas.rw_ratio, 1.0);
  EXPECT_NEAR(atlas.rw_ratio, 0.52, 0.25);
}

TEST_F(WorkbenchTest, MosaicoPhasesSpanPaperRange) {
  // Figure 3.2: the macro-cell router phases vary from 0.52 to 170 within
  // one run.
  EXPECT_LT(Tool("atlas").rw_ratio, 1.0);
  EXPECT_NEAR(Tool("cds").rw_ratio, 2.0, 1.0);
  EXPECT_NEAR(Tool("cpre").rw_ratio, 8.0, 3.0);
  EXPECT_NEAR(Tool("mosaico").rw_ratio, 170.0, 50.0);
}

TEST_F(WorkbenchTest, DensityDistributionsSumToOne) {
  for (const auto& t : Summaries()) {
    EXPECT_NEAR(t.density_low + t.density_med + t.density_high, 1.0, 1e-9)
        << t.tool;
  }
}

TEST_F(WorkbenchTest, MostToolsAreLowDensityDominated) {
  // Figure 3.4: except wolfe (and vem, the high-density outlier), tools
  // are dominated by 0-3 fan-outs.
  int low_dominated = 0;
  for (const auto& t : Summaries()) {
    if (t.density_low > 0.5) ++low_dominated;
  }
  EXPECT_GE(low_dominated, 7);
}

TEST_F(WorkbenchTest, VemHasHighestStructureDensity) {
  const auto& vem = Tool("vem");
  for (const auto& t : Summaries()) {
    if (t.tool != "vem") {
      EXPECT_GT(vem.density_high, t.density_high) << t.tool;
    }
  }
}

TEST_F(WorkbenchTest, UpwardAccessesMostlySingleObject) {
  // Paper §3.4: most upward accesses return one object.
  for (const auto& t : Summaries()) {
    if (t.tool == "atlas") continue;  // few upward samples
    EXPECT_GT(t.upward_single_fraction, 0.5) << t.tool;
  }
}

TEST_F(WorkbenchTest, IoRatesArePositiveAndToolDependent) {
  double min_rate = 1e30, max_rate = 0;
  for (const auto& t : Summaries()) {
    EXPECT_GT(t.io_rate, 0) << t.tool;
    min_rate = std::min(min_rate, t.io_rate);
    max_rate = std::max(max_rate, t.io_rate);
  }
  EXPECT_GT(max_rate, 3 * min_rate);  // a real spread, as in Fig 3.3
}

TEST_F(WorkbenchTest, DeterministicAcrossRuns) {
  OctWorkbench a(123), b(123);
  a.RunTool(StandardTools()[1], 2);
  b.RunTool(StandardTools()[1], 2);
  const auto sa = SummarizeByTool(a.trace().sessions());
  const auto sb = SummarizeByTool(b.trace().sessions());
  ASSERT_EQ(sa.size(), sb.size());
  EXPECT_DOUBLE_EQ(sa[0].rw_ratio, sb[0].rw_ratio);
  EXPECT_EQ(sa[0].total_reads, sb[0].total_reads);
}

}  // namespace
}  // namespace oodb::oct
