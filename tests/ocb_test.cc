#include "gtest/gtest.h"

#include "buffer/buffer_pool.h"
#include "cluster/affinity.h"
#include "cluster/cluster_manager.h"
#include "core/engineering_db.h"
#include "core/experiment.h"
#include "core/model_config.h"
#include "core/scenario.h"
#include "exec/experiment_runner.h"
#include "objmodel/object_graph.h"
#include "objmodel/type_system.h"
#include "ocb/ocb_builder.h"
#include "ocb/ocb_config.h"
#include "storage/storage_manager.h"

namespace oodb {
namespace {

ocb::OcbConfig SmallOcb() {
  ocb::OcbConfig cfg;
  cfg.enabled = true;
  cfg.classes = 8;
  cfg.hierarchy_depth = 3;
  cfg.instances = 600;
  cfg.refs_per_object = 3;
  cfg.partitions = 6;
  cfg.set_lookup_size = 4;
  cfg.traversal_depth = 2;
  return cfg;
}

// --------------------------------------------------------------- config

TEST(OcbConfigTest, DisabledConfigAlwaysValidates) {
  ocb::OcbConfig cfg;
  cfg.enabled = false;
  cfg.classes = -5;  // nonsense is fine while disabled
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST(OcbConfigTest, ValidateNamesTheOffendingKnob) {
  const auto expect_error = [](ocb::OcbConfig cfg, const char* needle) {
    const Status s = cfg.Validate();
    ASSERT_FALSE(s.ok()) << needle;
    EXPECT_NE(s.message().find(needle), std::string::npos) << s.ToString();
  };
  ocb::OcbConfig bad = SmallOcb();
  bad.classes = 1;
  expect_error(bad, "classes");
  bad = SmallOcb();
  bad.instances = 4;  // fewer than classes
  expect_error(bad, "instances");
  bad = SmallOcb();
  bad.zipf_theta = 1.5;
  expect_error(bad, "zipf_theta");
  bad = SmallOcb();
  bad.partitions = 0;
  expect_error(bad, "partitions");
  bad = SmallOcb();
  bad.read_mix = {0, 0, 0, 0};
  expect_error(bad, "read_mix");
}

TEST(OcbConfigTest, LabelEncodesLocalityRefsAndRatio) {
  ocb::OcbConfig cfg = SmallOcb();
  cfg.locality = ocb::RefLocality::kUniform;
  EXPECT_EQ(cfg.Label(10), "ocb-uni3-10");
  cfg.locality = ocb::RefLocality::kZipf;
  EXPECT_EQ(cfg.Label(100), "ocb-zipf3-100");
  cfg.locality = ocb::RefLocality::kGaussian;
  cfg.refs_per_object = 5;
  EXPECT_EQ(cfg.Label(2.5), "ocb-gauss5-2.5");
}

// -------------------------------------------------------------- builder

/// A minimal standalone stack for driving the builder outside the model.
struct BuilderStack {
  explicit BuilderStack(const ocb::OcbConfig& cfg)
      : graph(&lattice),
        storage(4096, 0.8),
        buffer(64, buffer::ReplacementPolicy::kLru, 1),
        affinity(&lattice),
        cluster(&graph, &storage, &affinity, &buffer, cluster::ClusterConfig{}),
        builder(&graph, &cluster, &buffer, cfg) {}

  obj::TypeLattice lattice;
  obj::ObjectGraph graph;
  store::StorageManager storage;
  buffer::BufferPool buffer;
  cluster::AffinityModel affinity;
  cluster::ClusterManager cluster;
  ocb::OcbBuilder builder;
};

TEST(OcbBuilderTest, SchemaIsOneTreeWithinDepthBound) {
  obj::TypeLattice lattice;
  const ocb::OcbConfig cfg = SmallOcb();
  const ocb::OcbSchema schema = ocb::RegisterOcbClasses(lattice, cfg, 11);
  ASSERT_EQ(schema.classes.size(), static_cast<size_t>(cfg.classes));
  EXPECT_EQ(schema.super_of[0], -1);
  EXPECT_EQ(schema.level_of[0], 0);
  for (int k = 1; k < cfg.classes; ++k) {
    ASSERT_GE(schema.super_of[k], 0);
    EXPECT_LT(schema.super_of[k], k);  // supers precede their subclasses
    EXPECT_EQ(schema.level_of[k], schema.level_of[schema.super_of[k]] + 1);
    EXPECT_LT(schema.level_of[k], cfg.hierarchy_depth);
  }
}

TEST(OcbBuilderTest, SameSeedSameDigestDifferentSeedDiffers) {
  const ocb::OcbConfig cfg = SmallOcb();
  uint64_t digest[3];
  const uint64_t seeds[] = {5, 5, 6};
  for (int i = 0; i < 3; ++i) {
    BuilderStack stack(cfg);
    const ocb::OcbSchema schema =
        ocb::RegisterOcbClasses(stack.lattice, cfg, seeds[i] ^ 0x0CB0CB);
    stack.builder.Build(schema, seeds[i]);
    digest[i] = ocb::GraphDigest(stack.graph);
  }
  EXPECT_EQ(digest[0], digest[1]);
  EXPECT_NE(digest[0], digest[2]);
}

TEST(OcbBuilderTest, CatalogCoversEveryClassAndPartition) {
  const ocb::OcbConfig cfg = SmallOcb();
  BuilderStack stack(cfg);
  const ocb::OcbSchema schema =
      ocb::RegisterOcbClasses(stack.lattice, cfg, 3);
  const ocb::OcbCatalog catalog = stack.builder.Build(schema, 3);

  ASSERT_EQ(catalog.extents.size(), static_cast<size_t>(cfg.classes));
  size_t total = 0;
  for (const auto& extent : catalog.extents) {
    EXPECT_FALSE(extent.empty());  // every class has at least one instance
    total += extent.size();
  }
  EXPECT_EQ(total, static_cast<size_t>(cfg.instances));

  ASSERT_EQ(catalog.db.modules.size(), static_cast<size_t>(cfg.partitions));
  size_t objects = 0;
  for (const auto& m : catalog.db.modules) {
    EXPECT_FALSE(m.objects.empty());
    objects += m.objects.size();
  }
  EXPECT_EQ(objects, static_cast<size_t>(cfg.instances));
  EXPECT_GT(stack.builder.bytes_created(), 0u);
}

TEST(OcbBuilderTest, LocalityChangesTheGraph) {
  uint64_t digests[2];
  const ocb::RefLocality locs[] = {ocb::RefLocality::kUniform,
                                   ocb::RefLocality::kZipf};
  for (int i = 0; i < 2; ++i) {
    ocb::OcbConfig cfg = SmallOcb();
    cfg.locality = locs[i];
    BuilderStack stack(cfg);
    const ocb::OcbSchema schema =
        ocb::RegisterOcbClasses(stack.lattice, cfg, 3);
    stack.builder.Build(schema, 3);
    digests[i] = ocb::GraphDigest(stack.graph);
  }
  EXPECT_NE(digests[0], digests[1]);
}

// ------------------------------------------------------------ full model

core::ModelConfig OcbModelConfig() {
  core::ModelConfig cfg = core::TestConfig();
  cfg.ocb = SmallOcb();
  cfg.measured_transactions = 250;
  cfg.warmup_transactions = 40;
  return cfg;
}

TEST(OcbModelTest, EndToEndRunCompletesAndCounts) {
  const core::ModelConfig cfg = OcbModelConfig();
  const core::RunResult r = core::RunCell(cfg);
  EXPECT_EQ(r.transactions,
            static_cast<uint64_t>(cfg.measured_transactions));
  EXPECT_GT(r.response_time.Mean(), 0.0);
  EXPECT_GT(r.logical_reads, 0u);
  EXPECT_GT(r.logical_writes, 0u);
  // The measured run's inserts grow the database past the generated graph.
  EXPECT_GE(r.db_objects, static_cast<uint64_t>(cfg.ocb.instances));
}

TEST(OcbModelTest, DeterministicForEqualSeedsDifferentSeedsDiffer) {
  core::ModelConfig cfg = OcbModelConfig();
  const core::RunResult a = core::RunCell(cfg);
  const core::RunResult b = core::RunCell(cfg);
  EXPECT_DOUBLE_EQ(a.response_time.Mean(), b.response_time.Mean());
  EXPECT_EQ(a.logical_reads, b.logical_reads);
  EXPECT_EQ(a.data_reads, b.data_reads);
  cfg.seed = 999;
  const core::RunResult c = core::RunCell(cfg);
  EXPECT_NE(a.logical_reads, c.logical_reads);
}

TEST(OcbModelTest, RatioControllerTracksTarget) {
  core::ModelConfig cfg = OcbModelConfig();
  cfg.measured_transactions = 600;
  cfg.workload.read_write_ratio = 10.0;
  const core::RunResult r = core::RunCell(cfg);
  EXPECT_NEAR(r.achieved_rw_ratio, 10.0, 10.0 * 0.35);
}

TEST(OcbExecTest, ParallelRunnerBitIdenticalToSerial) {
  std::vector<core::ModelConfig> cells;
  for (const ocb::RefLocality loc :
       {ocb::RefLocality::kUniform, ocb::RefLocality::kZipf}) {
    core::ModelConfig cfg = OcbModelConfig();
    cfg.ocb.locality = loc;
    cells.push_back(cfg);
  }
  const auto serial = exec::ExperimentRunner(1).Run(cells);
  const auto parallel = exec::ExperimentRunner(4).Run(cells);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].result.response_time.Mean(),
                     parallel[i].result.response_time.Mean());
    EXPECT_EQ(serial[i].result.logical_reads,
              parallel[i].result.logical_reads);
    EXPECT_EQ(serial[i].result.total_physical_ios(),
              parallel[i].result.total_physical_ios());
  }
}

// -------------------------------------------------------------- scenario

TEST(OcbScenarioTest, OcbWorkloadRoundTripsAndExpands) {
  const auto first = core::ParseScenario(R"json({
    "name": "ocb_roundtrip",
    "config": {
      "buffer_pages": 64,
      "warmup_transactions": 10,
      "measured_transactions": 50,
      "seed": 3,
      "workload": {"kind": "ocb", "rw_ratio": 10, "classes": 8,
                   "hierarchy_depth": 3, "instances": 600,
                   "refs_per_object": 3, "locality": "zipfian",
                   "zipf_theta": 0.7, "partitions": 6,
                   "set_lookup_size": 4, "traversal_depth": 2}
    },
    "sweep": {
      "clustering": ["No_Clustering", "No_limit"],
      "workload": [{"kind": "ocb", "locality": "uni"},
                   {"kind": "ocb", "locality": "zipf", "rw_ratio": 100}]
    }
  })json");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first->base.ocb.enabled);
  EXPECT_EQ(first->base.ocb.locality, ocb::RefLocality::kZipf);  // alias
  EXPECT_DOUBLE_EQ(first->base.ocb.zipf_theta, 0.7);

  // ToJson/ParseScenario round trip is stable.
  const std::string json = first->ToJson();
  const auto second = core::ParseScenario(json);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(json, second->ToJson());

  // Sweep entries inherit the base OCB knobs and only override what they
  // name; labels come from OcbConfig::Label.
  const auto cells = first->Expand();
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].workload, "ocb-uni3-10");
  EXPECT_EQ(cells[1].workload, "ocb-zipf3-100");
  EXPECT_EQ(cells[0].cell_label, "No_Clustering/ocb-uni3-10");
  EXPECT_EQ(cells[3].cell_label, "No_limit/ocb-zipf3-100");
  for (const auto& cell : cells) {
    EXPECT_TRUE(cell.config.ocb.enabled);
    EXPECT_EQ(cell.config.ocb.instances, 600);  // inherited from base
  }
  EXPECT_DOUBLE_EQ(cells[1].config.workload.read_write_ratio, 100.0);
}

TEST(OcbScenarioTest, OctWorkloadsAreUntouchedByOcbSupport) {
  // A scenario with no OCB keys expands with ocb disabled everywhere —
  // the pre-OCB behaviour byte for byte.
  const auto spec = core::ParseScenario(R"json({
    "name": "plain",
    "config": {"workload": {"density": "hi10", "rw_ratio": 10}}
  })json");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const auto cells = spec->Expand();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_FALSE(cells[0].config.ocb.enabled);
  EXPECT_EQ(cells[0].workload, "hi10-10");
}

}  // namespace
}  // namespace oodb
