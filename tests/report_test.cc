#include <sstream>

#include "gtest/gtest.h"
#include "core/bench_report.h"
#include "core/experiment.h"
#include "core/report.h"

namespace oodb::core {
namespace {

RunResult SampleRun() {
  ModelConfig cfg = TestConfig();
  cfg.measured_transactions = 150;
  cfg.warmup_transactions = 20;
  cfg.measurement_epochs = 2;
  return RunCell(cfg);
}

TEST(ReportTest, PrintsAllSections) {
  ModelConfig cfg = TestConfig();
  const RunResult r = SampleRun();
  std::ostringstream os;
  PrintRunReport(os, cfg, r);
  const std::string out = os.str();
  EXPECT_NE(out.find("run report"), std::string::npos);
  EXPECT_NE(out.find("all transactions"), std::string::npos);
  EXPECT_NE(out.find("logical reads"), std::string::npos);
  EXPECT_NE(out.find("buffer hit ratio"), std::string::npos);
  EXPECT_NE(out.find("clustering:"), std::string::npos);
  EXPECT_NE(out.find("epoch 2"), std::string::npos);
}

TEST(ReportTest, CsvRowMatchesHeaderArity) {
  const RunResult r = SampleRun();
  const std::string header = CsvHeader();
  const std::string row = ToCsvRow("cell-1", r);
  const auto count = [](const std::string& s) {
    size_t commas = 0;
    for (char c : s) commas += (c == ',');
    return commas;
  };
  EXPECT_EQ(count(header), count(row));
  EXPECT_EQ(row.rfind("cell-1,", 0), 0u);
}

TEST(ReportTest, CsvRowContainsTransactionCount) {
  const RunResult r = SampleRun();
  const std::string row = ToCsvRow("x", r);
  EXPECT_NE(row.find(",150,"), std::string::npos);
}

TEST(BenchReportTest, ZeroSampleRatiosEmitNull) {
  // A RunResult that never ran: no buffer accesses, no reclusterings, no
  // prefetches. Every derived ratio must come out null, not 0/0 or inf.
  RunResult empty;
  const BenchRecord r =
      BenchReport::FromResult("cell", "policy", "workload", empty, 0.0);
  EXPECT_FALSE(r.buffer_hit_ratio.has_value());
  EXPECT_FALSE(r.exam_ios_per_recluster.has_value());
  EXPECT_FALSE(r.prefetch_accuracy.has_value());
  EXPECT_EQ(r.page_splits, 0u);

  const BenchReport report("t");
  const std::string line = report.ToJsonLine(r);
  EXPECT_NE(line.find("\"buffer_hit_ratio\":null"), std::string::npos);
  EXPECT_NE(line.find("\"exam_ios_per_recluster\":null"), std::string::npos);
  EXPECT_NE(line.find("\"prefetch_accuracy\":null"), std::string::npos);
  EXPECT_EQ(line.find("inf"), std::string::npos);
  EXPECT_EQ(line.find("nan"), std::string::npos);
}

TEST(BenchReportTest, RealRunEmbedsMetricsAndRatios) {
  const RunResult r = SampleRun();
  const BenchRecord rec =
      BenchReport::FromResult("cell", "policy", "workload", r, 1.0);
  // TestConfig runs under the default-on metrics registry.
  if (!rec.metrics.empty()) {
    ASSERT_TRUE(rec.buffer_hit_ratio.has_value());
    EXPECT_GT(*rec.buffer_hit_ratio, 0.0);
    EXPECT_LE(*rec.buffer_hit_ratio, 1.0);
    EXPECT_EQ(*rec.metrics.counter("core.txns"), r.transactions);
    const BenchReport report("t");
    const std::string line = report.ToJsonLine(rec);
    EXPECT_NE(line.find("\"metrics\":{\"counters\":{"), std::string::npos);
    EXPECT_NE(line.find("\"core.response_s\""), std::string::npos);
  }
}

}  // namespace
}  // namespace oodb::core
