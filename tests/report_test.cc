#include <sstream>

#include "gtest/gtest.h"
#include "core/experiment.h"
#include "core/report.h"

namespace oodb::core {
namespace {

RunResult SampleRun() {
  ModelConfig cfg = TestConfig();
  cfg.measured_transactions = 150;
  cfg.warmup_transactions = 20;
  cfg.measurement_epochs = 2;
  return RunCell(cfg);
}

TEST(ReportTest, PrintsAllSections) {
  ModelConfig cfg = TestConfig();
  const RunResult r = SampleRun();
  std::ostringstream os;
  PrintRunReport(os, cfg, r);
  const std::string out = os.str();
  EXPECT_NE(out.find("run report"), std::string::npos);
  EXPECT_NE(out.find("all transactions"), std::string::npos);
  EXPECT_NE(out.find("logical reads"), std::string::npos);
  EXPECT_NE(out.find("buffer hit ratio"), std::string::npos);
  EXPECT_NE(out.find("clustering:"), std::string::npos);
  EXPECT_NE(out.find("epoch 2"), std::string::npos);
}

TEST(ReportTest, CsvRowMatchesHeaderArity) {
  const RunResult r = SampleRun();
  const std::string header = CsvHeader();
  const std::string row = ToCsvRow("cell-1", r);
  const auto count = [](const std::string& s) {
    size_t commas = 0;
    for (char c : s) commas += (c == ',');
    return commas;
  };
  EXPECT_EQ(count(header), count(row));
  EXPECT_EQ(row.rfind("cell-1,", 0), 0u);
}

TEST(ReportTest, CsvRowContainsTransactionCount) {
  const RunResult r = SampleRun();
  const std::string row = ToCsvRow("x", r);
  EXPECT_NE(row.find(",150,"), std::string::npos);
}

}  // namespace
}  // namespace oodb::core
