#include <cmath>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

#include "gtest/gtest.h"
#include "util/json_writer.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/table_printer.h"

namespace oodb {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("object 7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "object 7");
  EXPECT_EQ(s.ToString(), "NotFound: object 7");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ResourceExhausted("").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::OutOfRange("past end");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kOutOfRange);
}

Status FailsThenPropagates() {
  OODB_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailsThenPropagates().code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(13), 13u);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(5, 20);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 20);
    saw_lo |= (v == 5);
    saw_hi |= (v == 20);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(11);
  StreamingStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.Exponential(4.0));
  EXPECT_NEAR(stats.Mean(), 4.0, 0.05);
  EXPECT_GT(stats.min(), 0.0);
}

TEST(RngTest, ZipfZeroThetaIsUniform) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.Zipf(10, 0.0)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(RngTest, ZipfSkewFavoursLowIndices) {
  Rng rng(17);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.Zipf(100, 0.8)];
  EXPECT_GT(counts[0], counts[50] * 5);
  EXPECT_GT(counts[0], counts[99] * 5);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(21);
  Rng b = a.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 3);
}

// ------------------------------------------------------------ SplitMix64
//
// The OCB database generator derives every generation stream from
// SplitMix64, so these sequences are load-bearing: changing any expected
// value below silently regenerates every OCB database. The Next()
// expectations are the published splitmix64 test function (Steele, Lea &
// Vigna; same algorithm as Java's SplittableRandom), independently
// computable from the three-constant mix.

TEST(SplitMix64Test, MatchesReferenceSequence) {
  SplitMix64 s(42);
  EXPECT_EQ(s.Next(), 13679457532755275413ULL);
  EXPECT_EQ(s.Next(), 2949826092126892291ULL);
  EXPECT_EQ(s.Next(), 5139283748462763858ULL);
  EXPECT_EQ(s.Next(), 6349198060258255764ULL);
  EXPECT_EQ(s.Next(), 701532786141963250ULL);
}

TEST(SplitMix64Test, NextBelowExactSequence) {
  SplitMix64 s(42);
  const uint64_t expected[] = {741, 159, 278, 344, 38, 868, 218, 800};
  for (uint64_t e : expected) EXPECT_EQ(s.NextBelow(1000), e);
}

TEST(SplitMix64Test, NextDoubleExactSequence) {
  SplitMix64 s(7);
  EXPECT_EQ(s.NextDouble(), 0.38982974839127149);
  EXPECT_EQ(s.NextDouble(), 0.016788294528156111);
  EXPECT_EQ(s.NextDouble(), 0.90076068060688341);
  EXPECT_EQ(s.NextDouble(), 0.58293029302807808);
}

TEST(SplitMix64Test, GaussianExactSequence) {
  // Marsaglia polar pairs: draws 3-4 reuse the cached spare of 1-2, so
  // the expectations also pin the pair-caching behaviour.
  SplitMix64 s(7);
  EXPECT_EQ(s.Gaussian(0.0, 1.0), -0.041741523381452331);
  EXPECT_EQ(s.Gaussian(0.0, 1.0), -0.18308020910924752);
  EXPECT_EQ(s.Gaussian(0.0, 1.0), 0.87648146909945668);
  EXPECT_EQ(s.Gaussian(0.0, 1.0), 0.18137224678834885);
  EXPECT_EQ(s.Gaussian(0.0, 1.0), -0.3059911682027957);
  EXPECT_EQ(s.Gaussian(0.0, 1.0), -1.6121698126951967);
}

TEST(SplitMix64Test, GaussianScalesMeanAndStddev) {
  SplitMix64 a(7), b(7);
  for (int i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(b.Gaussian(10.0, 2.0), 10.0 + 2.0 * a.Gaussian(0.0, 1.0));
  }
}

TEST(SplitMix64Test, ZipfExactSequence) {
  SplitMix64 s(9);
  const uint64_t expected[] = {34, 44, 5, 50, 5, 0, 30, 95, 4, 50};
  for (uint64_t e : expected) EXPECT_EQ(s.Zipf(100, 0.8), e);
}

TEST(SplitMix64Test, ZipfSkewFavoursLowIndices) {
  SplitMix64 s(17);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[s.Zipf(100, 0.8)];
  EXPECT_GT(counts[0], counts[50] * 5);
  EXPECT_GT(counts[0], counts[99] * 5);
}

TEST(SplitMix64Test, ForkDerivesIndependentDeterministicStream) {
  SplitMix64 a(42);
  SplitMix64 fork = a.Fork();
  // The fork is seeded from the parent's first output, and the parent's
  // stream continues where Fork() left it.
  EXPECT_EQ(fork.Next(), 6332618229526065668ULL);
  EXPECT_EQ(a.Next(), 2949826092126892291ULL);
  // Same-seeded parents fork identically.
  SplitMix64 b(42);
  SplitMix64 fork_b = b.Fork();
  EXPECT_EQ(fork_b.Next(), 6332618229526065668ULL);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(fork_b.Next(), fork.Next());
}

TEST(DiscreteDistributionTest, MatchesWeights) {
  Rng rng(23);
  DiscreteDistribution dist({1.0, 3.0, 6.0});
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 100000; ++i) ++counts[dist.Sample(rng)];
  EXPECT_NEAR(counts[0] / 100000.0, 0.1, 0.01);
  EXPECT_NEAR(counts[1] / 100000.0, 0.3, 0.01);
  EXPECT_NEAR(counts[2] / 100000.0, 0.6, 0.01);
}

TEST(DiscreteDistributionTest, ZeroWeightNeverSampled) {
  Rng rng(29);
  DiscreteDistribution dist({0.0, 1.0});
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(dist.Sample(rng), 1u);
}

TEST(DiscreteDistributionTest, NormalisedProbabilities) {
  DiscreteDistribution dist({2.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(dist.probability(0), 0.25);
  EXPECT_DOUBLE_EQ(dist.probability(2), 0.5);
}

// ---------------------------------------------------------------- Stats

TEST(StreamingStatsTest, KnownMoments) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_NEAR(s.Variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StreamingStatsTest, MergeEqualsSingleStream) {
  Rng rng(31);
  StreamingStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextDouble();
    whole.Add(x);
    (i % 2 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.Mean(), whole.Mean(), 1e-12);
  EXPECT_NEAR(a.Variance(), whole.Variance(), 1e-9);
}

TEST(StreamingStatsTest, EmptyIsSafe) {
  StreamingStats s;
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Variance(), 0.0);
}

TEST(HistogramTest, QuantilesOfUniformData) {
  Histogram h(0, 100, 100);
  for (int i = 0; i < 100; ++i) h.Add(i + 0.5);
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.9), 90.0, 1.5);
}

TEST(HistogramTest, BucketFractions) {
  Histogram h(0, 10, 2);
  h.Add(1);
  h.Add(2);
  h.Add(7);
  EXPECT_NEAR(h.BucketFraction(0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(h.BucketFraction(1), 1.0 / 3.0, 1e-12);
}

TEST(TimeWeightedStatsTest, PiecewiseConstantMean) {
  TimeWeightedStats s;
  s.Update(0.0, 0.0);   // start clock
  s.Update(2.0, 1.0);   // value 1 held over [0,2)
  s.Update(3.0, 4.0);   // value 4 held over [2,3)
  EXPECT_DOUBLE_EQ(s.Mean(), (1.0 * 2 + 4.0 * 1) / 3.0);
}

// ---------------------------------------------------------------- Table

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"policy", "rt"});
  t.AddRow({"No_Clustering", "1.23"});
  t.AddRow({"2_IO_limit", "0.45"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| policy"), std::string::npos);
  EXPECT_NE(out.find("| No_Clustering |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TablePrinterTest, FormatHelpers) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatRatio(2.0, 1), "2.0x");
}

// ---------------------------------------------------------------- JSON

TEST(JsonWriterTest, EscapesStrings) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonEscape("line\nfeed\ttab\rret"),
            "line\\nfeed\\ttab\\rret");
  EXPECT_EQ(JsonEscape(std::string_view("\x01\x1f", 2)), "\\u0001\\u001f");
  // Multi-byte UTF-8 passes through unchanged.
  EXPECT_EQ(JsonEscape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JsonWriterTest, NonFiniteDoublesRenderNull) {
  EXPECT_EQ(JsonNumber(std::nan("")), "null");
  EXPECT_EQ(JsonNumber(INFINITY), "null");
  EXPECT_EQ(JsonNumber(-INFINITY), "null");
  EXPECT_EQ(JsonNumber(0.5), "0.5");
  JsonObjectWriter w;
  w.Add("bad", std::nan("")).Add("ok", 1.0);
  EXPECT_EQ(w.str(), "{\"bad\":null,\"ok\":1}");
}

TEST(JsonWriterTest, OptionalAndNull) {
  JsonObjectWriter w;
  w.Add("missing", std::optional<double>())
      .Add("present", std::optional<double>(2.5))
      .AddNull("explicit");
  EXPECT_EQ(w.str(),
            "{\"missing\":null,\"present\":2.5,\"explicit\":null}");
}

TEST(JsonWriterTest, EscapesKeysToo) {
  JsonObjectWriter w;
  w.Add("ke\"y", 1);
  EXPECT_EQ(w.str(), "{\"ke\\\"y\":1}");
}

TEST(JsonWriterTest, ArrayElementsAndTypes) {
  JsonArrayWriter a;
  EXPECT_TRUE(a.empty());
  a.Add(1.5).Add(uint64_t{7}).Add("x\"y").AddRaw("[2]");
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a.str(), "[1.5,7,\"x\\\"y\",[2]]");
}

TEST(JsonWriterTest, DeepNestingViaRaw) {
  // 64 levels of {"k": ...} nesting assembled inside-out with AddRaw.
  std::string inner = "{}";
  for (int depth = 0; depth < 64; ++depth) {
    JsonObjectWriter level;
    level.AddRaw("k", inner);
    inner = level.str();
  }
  size_t opens = 0;
  size_t closes = 0;
  for (char c : inner) {
    opens += (c == '{');
    closes += (c == '}');
  }
  EXPECT_EQ(opens, 65u);
  EXPECT_EQ(closes, 65u);
  EXPECT_EQ(inner.rfind("{\"k\":{\"k\":", 0), 0u);
}

TEST(JsonWriterTest, DeterministicDoubleRendering) {
  // %.17g round-trips: equal bits render to equal text.
  const double v = 0.1 + 0.2;
  EXPECT_EQ(JsonNumber(v), JsonNumber(0.30000000000000004));
  EXPECT_NE(JsonNumber(v), JsonNumber(0.3));
}

}  // namespace
}  // namespace oodb
