// Tests for the model's reporting features: per-query-type response
// breakdown, measurement epochs, static reorganisation, and the placement
// ablation knobs.

#include "gtest/gtest.h"

#include "core/engineering_db.h"
#include "core/experiment.h"

namespace oodb::core {
namespace {

ModelConfig SmallConfig() {
  ModelConfig cfg = TestConfig();
  cfg.measured_transactions = 300;
  cfg.warmup_transactions = 40;
  return cfg;
}

TEST(ResponseBreakdownTest, PerQueryStatsCoverAllTransactions) {
  RunResult r = RunCell(SmallConfig());
  uint64_t total = 0;
  for (const auto& s : r.response_by_query) total += s.count();
  EXPECT_EQ(total, r.response_time.count());
}

TEST(ResponseBreakdownTest, DeepRetrievalCostsMoreThanSimpleLookup) {
  ModelConfig cfg = SmallConfig();
  cfg.workload.density = workload::StructureDensity::kHigh10;
  cfg.measured_transactions = 600;
  RunResult r = RunCell(cfg);
  const auto& simple =
      r.response_by_query[static_cast<size_t>(
          workload::QueryType::kSimpleLookup)];
  const auto& composite =
      r.response_by_query[static_cast<size_t>(
          workload::QueryType::kCompositeRetrieval)];
  ASSERT_GT(simple.count(), 0u);
  ASSERT_GT(composite.count(), 0u);
  EXPECT_GT(composite.Mean(), simple.Mean());
}

TEST(EpochTest, EpochsPartitionTheMeasuredPhase) {
  ModelConfig cfg = SmallConfig();
  cfg.measurement_epochs = 5;
  RunResult r = RunCell(cfg);
  ASSERT_EQ(r.response_epochs.size(), 5u);
  uint64_t total = 0;
  for (const auto& e : r.response_epochs) {
    EXPECT_GT(e.count(), 0u);
    total += e.count();
  }
  EXPECT_EQ(total, r.response_time.count());
}

TEST(EpochTest, SingleEpochEqualsOverall) {
  ModelConfig cfg = SmallConfig();
  cfg.measurement_epochs = 1;
  RunResult r = RunCell(cfg);
  ASSERT_EQ(r.response_epochs.size(), 1u);
  EXPECT_DOUBLE_EQ(r.response_epochs[0].Mean(), r.response_time.Mean());
}

TEST(StaticReorganizeTest, ImprovesUnclusteredLayout) {
  ModelConfig plain = SmallConfig();
  plain.workload.density = workload::StructureDensity::kMed5;
  plain.clustering.pool = cluster::CandidatePool::kNoClustering;

  ModelConfig reorganized = plain;
  reorganized.static_reorganize_after_build = true;

  const double rt_plain = RunCell(plain).response_time.Mean();
  const double rt_reorg = RunCell(reorganized).response_time.Mean();
  EXPECT_LT(rt_reorg, rt_plain);
}

TEST(AblationKnobsTest, DisablingMechanismsReducesTheGain) {
  ModelConfig base = SmallConfig();
  base.workload.density = workload::StructureDensity::kHigh10;
  base.workload.read_write_ratio = 100;
  base.clustering.pool = cluster::CandidatePool::kWithinDb;

  ModelConfig crippled = base;
  crippled.clustering.sibling_candidates = false;
  crippled.clustering.fresh_page_on_overflow = false;

  const double rt_full = RunCell(base).response_time.Mean();
  const double rt_crippled = RunCell(crippled).response_time.Mean();
  EXPECT_LT(rt_full, rt_crippled);
}

TEST(SessionModulesTest, IndependentSamplingLowersHitRatio) {
  ModelConfig local = SmallConfig();
  local.workload.session_module_count = 1;
  ModelConfig indep = SmallConfig();
  indep.workload.session_module_count = 0;  // fresh module per transaction
  const double hit_local = RunCell(local).buffer_hit_ratio;
  const double hit_indep = RunCell(indep).buffer_hit_ratio;
  EXPECT_LT(hit_indep, hit_local);
}

TEST(RatioScheduleTest, PhasesFollowTheSchedule) {
  // Two-phase run: write-dominant then read-dominant. The write share of
  // completed transactions must drop sharply between epochs.
  ModelConfig cfg = SmallConfig();
  cfg.measured_transactions = 600;
  cfg.measurement_epochs = 2;
  cfg.rw_ratio_schedule = {1.0, 100.0};
  cfg.workload.read_write_ratio = 1.0;
  RunResult r = RunCell(cfg);
  ASSERT_EQ(r.response_epochs.size(), 2u);
  // Overall achieved ratio sits between the two phase targets.
  EXPECT_GT(r.achieved_rw_ratio, 1.0);
  EXPECT_LT(r.achieved_rw_ratio, 100.0);
}

TEST(RatioScheduleTest, EmptyScheduleKeepsConfiguredRatio) {
  ModelConfig cfg = SmallConfig();
  cfg.measured_transactions = 500;
  cfg.workload.read_write_ratio = 10.0;
  RunResult r = RunCell(cfg);
  EXPECT_NEAR(r.achieved_rw_ratio, 10.0, 3.5);
}

TEST(UserHintModelTest, HintsDoNotBreakTheRun) {
  ModelConfig cfg = SmallConfig();
  cfg.clustering.pool = cluster::CandidatePool::kWithinDb;
  cfg.clustering.use_hints = true;
  cfg.clustering.hint_kind = obj::RelKind::kConfiguration;
  cfg.prefetch = buffer::PrefetchPolicy::kWithinDb;
  RunResult r = RunCell(cfg);
  EXPECT_EQ(r.transactions,
            static_cast<uint64_t>(cfg.measured_transactions));
}

// Every clustering pool must complete a run with every replacement and
// prefetch policy (a compatibility sweep).
struct PolicyCombo {
  cluster::CandidatePool pool;
  buffer::ReplacementPolicy replacement;
  buffer::PrefetchPolicy prefetch;
};

class PolicyMatrixTest : public ::testing::TestWithParam<PolicyCombo> {};

TEST_P(PolicyMatrixTest, RunCompletes) {
  ModelConfig cfg = TestConfig();
  cfg.measured_transactions = 120;
  cfg.warmup_transactions = 20;
  cfg.clustering.pool = GetParam().pool;
  cfg.clustering.split = cluster::SplitPolicy::kLinearGreedy;
  cfg.replacement = GetParam().replacement;
  cfg.prefetch = GetParam().prefetch;
  RunResult r = RunCell(cfg);
  EXPECT_EQ(r.transactions, 120u);
  EXPECT_GT(r.response_time.Mean(), 0.0);
}

std::vector<PolicyCombo> AllCombos() {
  std::vector<PolicyCombo> combos;
  for (auto pool : {cluster::CandidatePool::kNoClustering,
                    cluster::CandidatePool::kWithinBuffer,
                    cluster::CandidatePool::kIoLimit,
                    cluster::CandidatePool::kWithinDb}) {
    for (auto rep : {buffer::ReplacementPolicy::kLru,
                     buffer::ReplacementPolicy::kContextSensitive,
                     buffer::ReplacementPolicy::kRandom}) {
      for (auto pf : {buffer::PrefetchPolicy::kNone,
                      buffer::PrefetchPolicy::kWithinBuffer,
                      buffer::PrefetchPolicy::kWithinDb}) {
        combos.push_back({pool, rep, pf});
      }
    }
  }
  return combos;
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyMatrixTest,
                         ::testing::ValuesIn(AllCombos()));

}  // namespace
}  // namespace oodb::core
