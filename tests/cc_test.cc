#include "gtest/gtest.h"

#include <string>
#include <vector>

#include "cc/cc_config.h"
#include "cc/lock_manager.h"
#include "core/engineering_db.h"
#include "core/model_config.h"
#include "core/policy_registry.h"
#include "core/scenario.h"
#include "exec/experiment_runner.h"
#include "obs/span_profiler.h"
#include "sim/process.h"
#include "sim/simulator.h"

namespace oodb {
namespace {

using cc::CcConfig;
using cc::LockManager;
using cc::LockMode;

// ----------------------------------------------------------- lock manager
//
// The unit tests drive the manager with bare coroutines on a Simulator,
// the same way TxnPipeline does, and record grant/deny outcomes in
// arrival order.

CcConfig FastCc() {
  CcConfig cfg;
  cfg.enabled = true;
  cfg.lock_timeout_s = 1.0;
  return cfg;
}

struct LockProbe {
  bool done = false;
  bool granted = false;
  double at = 0;
};

sim::Task AcquireAndHold(sim::Simulator& sim, LockManager& lm, cc::TxnId txn,
                         cc::LockKey key, LockMode mode, LockProbe& probe) {
  probe.granted = co_await lm.Acquire(txn, key, mode);
  probe.done = true;
  probe.at = sim.now();
}

TEST(LockManagerTest, SharedLocksCoexistExclusiveConflicts) {
  sim::Simulator sim;
  LockManager lm(sim, FastCc());
  LockProbe s1, s2, x1;
  sim::Spawn(AcquireAndHold(sim, lm, 1, 42, LockMode::kShared, s1));
  sim::Spawn(AcquireAndHold(sim, lm, 2, 42, LockMode::kShared, s2));
  // Spawn runs eagerly: both shared grants are immediate.
  EXPECT_TRUE(s1.done && s1.granted);
  EXPECT_TRUE(s2.done && s2.granted);
  EXPECT_TRUE(lm.Holds(1, 42, LockMode::kShared));
  EXPECT_TRUE(lm.Holds(2, 42, LockMode::kShared));
  EXPECT_FALSE(lm.Holds(1, 42, LockMode::kExclusive));

  sim::Spawn(AcquireAndHold(sim, lm, 3, 42, LockMode::kExclusive, x1));
  EXPECT_FALSE(x1.done);  // queued behind the two shared holders
  EXPECT_EQ(lm.queue_length(42), 1u);

  lm.ReleaseAll(1);
  EXPECT_FALSE(x1.done);  // txn 2 still holds shared
  lm.ReleaseAll(2);
  EXPECT_TRUE(x1.done && x1.granted);  // granted synchronously on release
  EXPECT_TRUE(lm.Holds(3, 42, LockMode::kExclusive));

  sim.Run();  // drain the (resolved, no-op) timeout event
  EXPECT_EQ(lm.stats().lock_grants, 3u);
  EXPECT_EQ(lm.stats().lock_waits, 1u);
  EXPECT_EQ(lm.stats().lock_timeouts, 0u);
}

TEST(LockManagerTest, ReentrantAndCoveringGrants) {
  sim::Simulator sim;
  LockManager lm(sim, FastCc());
  LockProbe x, s;
  sim::Spawn(AcquireAndHold(sim, lm, 1, 7, LockMode::kExclusive, x));
  ASSERT_TRUE(x.done && x.granted);
  // Exclusive covers shared, and re-requests do not double-book.
  sim::Spawn(AcquireAndHold(sim, lm, 1, 7, LockMode::kShared, s));
  EXPECT_TRUE(s.done && s.granted);
  EXPECT_EQ(lm.held_count(1), 1u);
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.held_count(1), 0u);
  sim.Run();
}

TEST(LockManagerTest, FifoWaitersGrantInArrivalOrderNoQueueJumping) {
  sim::Simulator sim;
  LockManager lm(sim, FastCc());
  LockProbe holder;
  sim::Spawn(AcquireAndHold(sim, lm, 1, 9, LockMode::kExclusive, holder));
  ASSERT_TRUE(holder.granted);

  // A shared waiter queued behind an exclusive waiter must NOT jump the
  // queue even while the current holder is shared-compatible-after-X.
  std::vector<int> grant_order;
  LockProbe w[3];
  const LockMode modes[3] = {LockMode::kExclusive, LockMode::kShared,
                             LockMode::kShared};
  for (int i = 0; i < 3; ++i) {
    sim::Spawn([](LockManager& m, int idx, LockMode mode, LockProbe& p,
                  std::vector<int>& order) -> sim::Task {
      p.granted = co_await m.Acquire(static_cast<cc::TxnId>(10 + idx), 9, mode);
      p.done = true;
      order.push_back(idx);
    }(lm, i, modes[i], w[i], grant_order));
  }
  EXPECT_EQ(lm.queue_length(9), 3u);

  lm.ReleaseAll(1);
  // The exclusive waiter at the front gets the lock alone...
  EXPECT_TRUE(w[0].done && w[0].granted);
  EXPECT_FALSE(w[1].done);
  EXPECT_FALSE(w[2].done);
  lm.ReleaseAll(10);
  // ...then both shared waiters are granted together, in FIFO order.
  EXPECT_TRUE(w[1].done && w[1].granted);
  EXPECT_TRUE(w[2].done && w[2].granted);
  EXPECT_EQ(grant_order, (std::vector<int>{0, 1, 2}));
  sim.Run();
}

TEST(LockManagerTest, SoleSharedHolderUpgradesInPlace) {
  sim::Simulator sim;
  LockManager lm(sim, FastCc());
  LockProbe s, up;
  sim::Spawn(AcquireAndHold(sim, lm, 1, 5, LockMode::kShared, s));
  ASSERT_TRUE(s.granted);
  sim::Spawn(AcquireAndHold(sim, lm, 1, 5, LockMode::kExclusive, up));
  EXPECT_TRUE(up.done && up.granted);  // immediate: no other holder
  EXPECT_TRUE(lm.Holds(1, 5, LockMode::kExclusive));
  EXPECT_EQ(lm.held_count(1), 1u);
  lm.ReleaseAll(1);
  sim.Run();
  EXPECT_EQ(lm.stats().lock_timeouts, 0u);
}

sim::Task UpgradeThenRelease(sim::Simulator& sim, LockManager& lm,
                             cc::TxnId txn, cc::LockKey key, LockProbe& probe) {
  probe.granted = co_await lm.Acquire(txn, key, LockMode::kExclusive);
  probe.done = true;
  probe.at = sim.now();
  if (!probe.granted) lm.ReleaseAll(txn);  // abort: drop the shared hold
}

TEST(LockManagerTest, UpgradeDeadlockResolvedByTimeoutVictimRetreats) {
  // The classic upgrade deadlock: two shared holders both request
  // exclusive. Neither can proceed; the first-queued waiter times out,
  // aborts (releasing its shared hold), and the survivor upgrades.
  sim::Simulator sim;
  LockManager lm(sim, FastCc());
  LockProbe s1, s2, u1, u2;
  sim::Spawn(AcquireAndHold(sim, lm, 1, 3, LockMode::kShared, s1));
  sim::Spawn(AcquireAndHold(sim, lm, 2, 3, LockMode::kShared, s2));
  sim::Spawn(UpgradeThenRelease(sim, lm, 1, 3, u1));
  sim::Spawn(UpgradeThenRelease(sim, lm, 2, 3, u2));
  EXPECT_FALSE(u1.done);
  EXPECT_FALSE(u2.done);
  sim.Run();
  // Txn 1 queued first, so its timeout fires first and it is the victim.
  EXPECT_TRUE(u1.done);
  EXPECT_FALSE(u1.granted);
  EXPECT_DOUBLE_EQ(u1.at, 1.0);  // exactly lock_timeout_s on the clock
  EXPECT_TRUE(u2.done);
  EXPECT_TRUE(u2.granted);
  EXPECT_TRUE(lm.Holds(2, 3, LockMode::kExclusive));
  EXPECT_EQ(lm.stats().lock_timeouts, 1u);
  EXPECT_GT(lm.stats().lock_wait_time_s, 0.0);
}

TEST(LockManagerTest, CrossObjectDeadlockVictimIsFirstEnqueued) {
  // txn 1 holds A and wants B; txn 2 holds B and wants A. The wait-for
  // cycle cannot resolve by releases, so the first-enqueued waiter times
  // out deterministically and the other grants on its ReleaseAll.
  sim::Simulator sim;
  LockManager lm(sim, FastCc());
  LockProbe a1, b2, want_b, want_a;
  sim::Spawn(AcquireAndHold(sim, lm, 1, 100, LockMode::kExclusive, a1));
  sim::Spawn(AcquireAndHold(sim, lm, 2, 200, LockMode::kExclusive, b2));
  ASSERT_TRUE(a1.granted && b2.granted);

  sim::Spawn([](sim::Simulator& s, LockManager& m, LockProbe& p) -> sim::Task {
    p.granted = co_await m.Acquire(1, 200, LockMode::kExclusive);
    p.done = true;
    p.at = s.now();
    if (!p.granted) m.ReleaseAll(1);
  }(sim, lm, want_b));
  sim::Spawn([](sim::Simulator& s, LockManager& m, LockProbe& p) -> sim::Task {
    p.granted = co_await m.Acquire(2, 100, LockMode::kExclusive);
    p.done = true;
    p.at = s.now();
    if (!p.granted) m.ReleaseAll(2);
  }(sim, lm, want_a));

  sim.Run();
  EXPECT_TRUE(want_b.done);
  EXPECT_FALSE(want_b.granted);  // txn 1 enqueued first: the victim
  EXPECT_TRUE(want_a.done);
  EXPECT_TRUE(want_a.granted);  // granted by the victim's ReleaseAll
  EXPECT_EQ(lm.stats().lock_timeouts, 1u);
  EXPECT_TRUE(lm.Holds(2, 100, LockMode::kExclusive));
  EXPECT_TRUE(lm.Holds(2, 200, LockMode::kExclusive));
}

sim::Task LatchHold(sim::Simulator& sim, LockManager& lm, cc::LockKey key,
                    double hold_s, std::vector<double>& acquired_at) {
  co_await lm.AcquireLatch(key);
  acquired_at.push_back(sim.now());
  co_await sim::Delay(sim, hold_s);
  lm.ReleaseLatch(key);
}

TEST(LockManagerTest, PageLatchesAreExclusiveFifoWithoutTimeout) {
  sim::Simulator sim;
  LockManager lm(sim, FastCc());
  std::vector<double> acquired_at;
  for (int i = 0; i < 4; ++i) {
    sim::Spawn(LatchHold(sim, lm, 77, 2.0, acquired_at));
  }
  sim.Run();
  // Strictly serialised FIFO, and no waiter timed out even though every
  // wait exceeded lock_timeout_s (latches have no timeout).
  EXPECT_EQ(acquired_at, (std::vector<double>{0.0, 2.0, 4.0, 6.0}));
  EXPECT_EQ(lm.stats().latch_grants, 4u);
  EXPECT_EQ(lm.stats().latch_waits, 3u);
  EXPECT_EQ(lm.stats().lock_timeouts, 0u);
  EXPECT_DOUBLE_EQ(lm.stats().latch_wait_time_s, 2.0 + 4.0 + 6.0);
}

// ------------------------------------------------------------------ model
//
// End-to-end contract on the engineering-database model: the cc layer off
// is byte-invisible, on it is deterministic at any job count.

core::ModelConfig ContentionConfig() {
  core::ModelConfig cfg = core::TestConfig();
  cfg.num_users = 20;
  cfg.think_time_s = 0.1;               // hot closed loop: real overlap
  cfg.workload.read_write_ratio = 2.0;  // write-heavy: exclusive locks
  cfg.cc.enabled = true;
  cfg.cc.lock_timeout_s = 0.25;
  cfg.seed = 11;
  return cfg;
}

TEST(CcModelTest, DisabledCcKnobsAreBitInvisible) {
  // With enabled == false every other cc knob is inert: not one event,
  // RNG draw, or metric may differ from the plain config.
  core::ModelConfig a = core::TestConfig();
  core::ModelConfig b = core::TestConfig();
  b.cc.lock_timeout_s = 0.01;
  b.cc.max_retries = 0;
  b.cc.backoff_base_s = 1.0;
  b.cc.backoff_cap_s = 2.0;
  b.cc.page_latches = false;
  const core::RunResult ra = core::EngineeringDbModel(a).Run();
  const core::RunResult rb = core::EngineeringDbModel(b).Run();
  EXPECT_EQ(ra.response_time.Mean(), rb.response_time.Mean());
  EXPECT_EQ(ra.transactions, rb.transactions);
  EXPECT_EQ(ra.logical_reads, rb.logical_reads);
  EXPECT_EQ(ra.total_physical_ios(), rb.total_physical_ios());
  EXPECT_FALSE(ra.cc_enabled);
  EXPECT_FALSE(rb.cc_enabled);
  EXPECT_EQ(rb.cc_lock_grants, 0u);
  EXPECT_EQ(rb.cc_txn_aborts, 0u);
}

TEST(CcModelTest, EnabledCcRunsLocksAndCompletes) {
  const core::RunResult r = core::EngineeringDbModel(ContentionConfig()).Run();
  EXPECT_TRUE(r.cc_enabled);
  EXPECT_GT(r.transactions, 0u);
  EXPECT_GT(r.cc_lock_grants, 0u);
  // 20 users on a hot write-heavy loop with per-page latches: some
  // request must have queued somewhere.
  EXPECT_GT(r.cc_lock_waits + r.cc_latch_waits, 0u);
  // Every abort is either retried or given up, never lost.
  EXPECT_EQ(r.cc_txn_aborts, r.cc_txn_retries + r.cc_txn_giveups);
  EXPECT_GE(r.cc_abort_rate, 0.0);
  EXPECT_LE(r.cc_abort_rate, 1.0);
}

TEST(CcModelTest, CcRunsAreIdenticalAcrossJobCounts) {
  core::ModelConfig open = ContentionConfig();
  open.arrival = core::ArrivalProcess::kOpen;
  open.arrival_rate_tps = 50.0;
  std::vector<core::ModelConfig> cells = {ContentionConfig(), open};
  const auto serial = exec::ExperimentRunner(1).Run(cells);
  const auto parallel = exec::ExperimentRunner(4).Run(cells);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    const core::RunResult& a = serial[i].result;
    const core::RunResult& b = parallel[i].result;
    EXPECT_EQ(a.response_time.Mean(), b.response_time.Mean());
    EXPECT_EQ(a.transactions, b.transactions);
    EXPECT_EQ(a.total_physical_ios(), b.total_physical_ios());
    EXPECT_EQ(a.cc_lock_grants, b.cc_lock_grants);
    EXPECT_EQ(a.cc_lock_waits, b.cc_lock_waits);
    EXPECT_EQ(a.cc_deadlock_timeouts, b.cc_deadlock_timeouts);
    EXPECT_EQ(a.cc_txn_aborts, b.cc_txn_aborts);
    EXPECT_EQ(a.cc_txn_retries, b.cc_txn_retries);
    EXPECT_EQ(a.cc_txn_giveups, b.cc_txn_giveups);
    EXPECT_EQ(a.cc_rollback_pages, b.cc_rollback_pages);
    EXPECT_EQ(a.cc_lock_wait_time_s, b.cc_lock_wait_time_s);
  }
}

TEST(CcModelTest, OpenArrivalsCompleteAndCount) {
  core::ModelConfig cfg = core::TestConfig();
  cfg.arrival = core::ArrivalProcess::kOpen;
  cfg.arrival_rate_tps = 100.0;
  const core::RunResult r = core::EngineeringDbModel(cfg).Run();
  EXPECT_EQ(r.transactions,
            static_cast<uint64_t>(cfg.measured_transactions));
  EXPECT_GT(r.response_time.Mean(), 0.0);
}

TEST(CcModelTest, SpanAdditivityHoldsWithLockWaitPhase) {
  // DESIGN.md §14 extended by §16: with the lock_wait phase in the
  // taxonomy, per-kind phase ticks still sum exactly to response ticks.
  core::ModelConfig cfg = ContentionConfig();
  cfg.profile_spans = true;
  const core::RunResult r = core::EngineeringDbModel(cfg).Run();
  ASSERT_FALSE(r.span_breakdown.empty());
  for (const obs::SpanKindBreakdown& b : r.span_breakdown) {
    SCOPED_TRACE(b.kind);
    uint64_t sum = 0;
    for (const uint64_t t : b.phase_ticks) sum += t;
    EXPECT_EQ(sum, b.response_ticks);
  }
}

// --------------------------------------------------------------- scenario

TEST(CcScenarioTest, ConcurrencySectionRoundTripsAndGates) {
  const auto spec = core::ParseScenario(R"json({
    "name": "cc_roundtrip",
    "config": {
      "buffer_pages": 64,
      "concurrency": {"enabled": true, "cc_lock_timeout_s": 0.5,
                      "cc_max_retries": 3, "cc_backoff_base_s": 0.02,
                      "cc_backoff_cap_s": 1.0, "cc_page_latches": false},
      "arrival": "Open", "arrival_rate_tps": 40,
      "clustering": {"pool": "No_Clustering"}
    },
    "sweep": {"users": [10, 20]}
  })json");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_TRUE(spec->base.cc.enabled);
  EXPECT_DOUBLE_EQ(spec->base.cc.lock_timeout_s, 0.5);
  EXPECT_EQ(spec->base.cc.max_retries, 3);
  EXPECT_FALSE(spec->base.cc.page_latches);
  EXPECT_EQ(spec->base.arrival, core::ArrivalProcess::kOpen);
  EXPECT_DOUBLE_EQ(spec->base.arrival_rate_tps, 40.0);

  const std::string json = spec->ToJson();
  const auto second = core::ParseScenario(json);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(json, second->ToJson());

  // The users axis is outermost and prefixes the policy label.
  const auto cells = spec->Expand();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].config.num_users, 10);
  EXPECT_EQ(cells[1].config.num_users, 20);
  EXPECT_EQ(cells[0].policy.rfind("10users", 0), 0u) << cells[0].policy;
}

TEST(CcScenarioTest, InertCcKnobsAreErrors) {
  const auto expect_error = [](const char* json, const std::string& needle) {
    const auto spec = core::ParseScenario(json);
    ASSERT_FALSE(spec.ok()) << json;
    EXPECT_NE(spec.status().message().find(needle), std::string::npos)
        << spec.status().ToString();
  };
  // A cc_* knob with the lock manager off is a silent no-op, so it is an
  // error — regardless of key order within the section.
  expect_error(
      R"({"name": "x", "config": {"concurrency": {"cc_max_retries": 3}}})",
      "add \"enabled\": true");
  // arrival_rate_tps only matters under open arrivals.
  expect_error(R"({"name": "x", "config": {"arrival_rate_tps": 40}})",
               "arrival");
  // Order-independent: enabled after the knob is fine.
  EXPECT_TRUE(core::ParseScenario(
                  R"({"name": "x",
                      "config": {"concurrency": {"cc_max_retries": 3,
                                                 "enabled": true}}})")
                  .ok());
}

TEST(CcScenarioTest, ArrivalAxisResolvesThroughRegistry) {
  const core::PolicyRegistry& reg = core::PolicyRegistry::Global();
  EXPECT_EQ(reg.Arrival("Closed"), core::ArrivalProcess::kClosed);
  EXPECT_EQ(reg.Arrival("Open"), core::ArrivalProcess::kOpen);
  EXPECT_EQ(reg.Arrival("poisson"), core::ArrivalProcess::kOpen);
  EXPECT_EQ(reg.Arrival("closed_loop"), core::ArrivalProcess::kClosed);
  EXPECT_FALSE(reg.Arrival("batch").has_value());
}

}  // namespace
}  // namespace oodb
