// Differential tests against naive reference implementations: the
// production structures must agree with obviously-correct (but slow)
// models under randomized activity.

#include <algorithm>
#include <cmath>
#include <list>
#include <vector>

#include "gtest/gtest.h"

#include "buffer/buffer_pool.h"
#include "cluster/page_splitter.h"
#include "util/random.h"

namespace oodb {
namespace {

// ------------------------------------------------------------- LRU model

/// Textbook LRU over a std::list, no cleverness.
class NaiveLru {
 public:
  explicit NaiveLru(size_t capacity) : capacity_(capacity) {}

  /// Returns {hit, evicted_page or kInvalidPage}.
  std::pair<bool, store::PageId> Fix(store::PageId page) {
    auto it = std::find(order_.begin(), order_.end(), page);
    if (it != order_.end()) {
      order_.erase(it);
      order_.push_back(page);
      return {true, store::kInvalidPage};
    }
    store::PageId evicted = store::kInvalidPage;
    if (order_.size() == capacity_) {
      evicted = order_.front();
      order_.pop_front();
    }
    order_.push_back(page);
    return {false, evicted};
  }

 private:
  size_t capacity_;
  std::list<store::PageId> order_;
};

class LruDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(LruDifferentialTest, MatchesNaiveModelExactly) {
  const size_t capacity = 4 + static_cast<size_t>(GetParam()) % 29;
  buffer::BufferPool pool(capacity, buffer::ReplacementPolicy::kLru);
  NaiveLru naive(capacity);
  Rng rng(1000 + static_cast<uint64_t>(GetParam()));
  for (int step = 0; step < 5000; ++step) {
    const auto page = static_cast<store::PageId>(rng.Zipf(120, 0.5));
    const auto fix = pool.Fix(page);
    const auto [hit, evicted] = naive.Fix(page);
    ASSERT_EQ(fix.hit, hit) << "step " << step << " page " << page;
    ASSERT_EQ(fix.evicted_page, evicted) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LruDifferentialTest,
                         ::testing::Range(0, 10));

// Touch must behave exactly like a hitting Fix in the naive model.
TEST(LruDifferentialTest, TouchEquivalentToHit) {
  const size_t capacity = 8;
  buffer::BufferPool pool(capacity, buffer::ReplacementPolicy::kLru);
  NaiveLru naive(capacity);
  Rng rng(77);
  for (int step = 0; step < 3000; ++step) {
    const auto page = static_cast<store::PageId>(rng.NextBelow(30));
    if (rng.Bernoulli(0.3) && pool.Contains(page)) {
      ASSERT_TRUE(pool.Touch(page));
      naive.Fix(page);  // known hit
    } else {
      const auto fix = pool.Fix(page);
      const auto [hit, evicted] = naive.Fix(page);
      ASSERT_EQ(fix.hit, hit);
      ASSERT_EQ(fix.evicted_page, evicted);
    }
  }
}

// ------------------------------------------------- exact splitter model

// Brute-force minimum-broken-cost bipartition by full enumeration.
cluster::SplitResult BruteForceSplit(const cluster::DependencyGraph& g,
                                     uint32_t capacity) {
  const size_t n = g.nodes.size();
  cluster::SplitResult best;
  double best_cost = 1e300;
  for (uint32_t mask = 1; mask + 1 < (1u << n); ++mask) {
    uint64_t left = 0, right = 0;
    std::vector<int> side(n);
    for (size_t i = 0; i < n; ++i) {
      side[i] = (mask >> i) & 1u;
      (side[i] ? right : left) += g.nodes[i].size_bytes;
    }
    if (left > capacity || right > capacity) continue;
    const double cost = cluster::CutCost(g, side);
    if (cost < best_cost) {
      best_cost = cost;
      best = cluster::SplitResult{};
      best.feasible = true;
      best.broken_cost = cost;
      for (uint32_t i = 0; i < n; ++i) {
        (side[i] ? best.right : best.left).push_back(i);
      }
    }
  }
  return best;
}

class SplitterDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(SplitterDifferentialTest, ExhaustiveMatchesBruteForce) {
  Rng rng(4242 + static_cast<uint64_t>(GetParam()));
  const int n = 4 + static_cast<int>(rng.NextBelow(9));  // 4..12 nodes
  cluster::DependencyGraph g;
  uint64_t total = 0;
  for (int i = 0; i < n; ++i) {
    const auto size = static_cast<uint32_t>(30 + rng.NextBelow(90));
    g.nodes.push_back({static_cast<obj::ObjectId>(i), size});
    total += size;
  }
  for (uint32_t a = 0; a < static_cast<uint32_t>(n); ++a) {
    for (uint32_t b = a + 1; b < static_cast<uint32_t>(n); ++b) {
      if (rng.Bernoulli(0.4)) {
        g.arcs.push_back({a, b, rng.UniformDouble(0.05, 3.0)});
      }
    }
  }
  const auto capacity = static_cast<uint32_t>(total * 4 / 5);

  const auto exact = cluster::ExhaustiveMinCutSplit(g, capacity);
  const auto brute = BruteForceSplit(g, capacity);
  ASSERT_EQ(exact.feasible, brute.feasible);
  if (brute.feasible) {
    EXPECT_NEAR(exact.broken_cost, brute.broken_cost, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, SplitterDifferentialTest,
                         ::testing::Range(0, 30));

// ------------------------------------------------------------ RNG model

// The alias-method sampler must match direct inverse-CDF sampling in
// distribution (chi-square-ish bound on each bucket).
TEST(DiscreteDistributionDifferentialTest, MatchesExpectedFrequencies) {
  Rng rng(5);
  const std::vector<double> weights = {0.5, 2.5, 0.1, 4.0, 1.9, 1.0};
  DiscreteDistribution dist(weights);
  double sum = 0;
  for (double w : weights) sum += w;
  std::vector<int> counts(weights.size(), 0);
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) ++counts[dist.Sample(rng)];
  for (size_t i = 0; i < weights.size(); ++i) {
    const double expected = weights[i] / sum * kSamples;
    EXPECT_NEAR(counts[i], expected, 5 * std::sqrt(expected) + 30)
        << "bucket " << i;
  }
}

}  // namespace
}  // namespace oodb
