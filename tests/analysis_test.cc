#include <cmath>

#include "gtest/gtest.h"
#include "analysis/factorial.h"

namespace oodb::analysis {
namespace {

// A synthetic runner with a known response surface lets us verify the
// effect estimates exactly without running simulations.
FactorialDesign MakeSyntheticDesign() {
  // Factors: A (index 0) and B (index 1) plus an inert C (index 2).
  std::vector<Factor> factors = {
      {"A", [](core::ModelConfig& c, bool high) {
         c.workload.read_write_ratio = high ? 100 : 5;
       }},
      {"B", [](core::ModelConfig& c, bool high) {
         c.buffer_pages = high ? 512 : 64;
       }},
      {"C", [](core::ModelConfig& c, bool high) {
         c.seed = high ? 2 : 1;
       }},
  };
  // response = 10 + 4*A + 2*B + 1*A*B (with A,B in {-1,+1}); C inert.
  auto runner = [](const core::ModelConfig& cfg) {
    const double a = cfg.workload.read_write_ratio > 50 ? 1.0 : -1.0;
    const double b = cfg.buffer_pages > 100 ? 1.0 : -1.0;
    return 10.0 + 4.0 * a + 2.0 * b + 1.0 * a * b;
  };
  FactorialDesign design(core::ModelConfig{}, std::move(factors), runner);
  design.Run();
  return design;
}

TEST(FactorialTest, MainEffectsMatchSurface) {
  auto design = MakeSyntheticDesign();
  auto effects = design.MainEffects();
  ASSERT_EQ(effects.size(), 3u);
  // Effect = response change from low to high = 2 * coefficient.
  EXPECT_NEAR(effects[0].effect, 8.0, 1e-12);  // A
  EXPECT_NEAR(effects[1].effect, 4.0, 1e-12);  // B
  EXPECT_NEAR(effects[2].effect, 0.0, 1e-12);  // C inert
}

TEST(FactorialTest, TwoWayInteractionsMatchSurface) {
  auto design = MakeSyntheticDesign();
  auto effects = design.TwoWayInteractions();
  ASSERT_EQ(effects.size(), 3u);  // AB, AC, BC
  double ab = 0, ac = 0, bc = 0;
  for (const auto& e : effects) {
    if (e.name == "A x B") ab = e.effect;
    if (e.name == "A x C") ac = e.effect;
    if (e.name == "B x C") bc = e.effect;
  }
  EXPECT_NEAR(ab, 2.0, 1e-12);
  EXPECT_NEAR(ac, 0.0, 1e-12);
  EXPECT_NEAR(bc, 0.0, 1e-12);
}

TEST(FactorialTest, AllEffectsSortedByMagnitude) {
  auto design = MakeSyntheticDesign();
  auto effects = design.AllEffects();
  ASSERT_EQ(effects.size(), 7u);  // 2^3 - 1 contrasts
  for (size_t i = 1; i < effects.size(); ++i) {
    EXPECT_GE(std::abs(effects[i - 1].effect), std::abs(effects[i].effect));
  }
  EXPECT_EQ(effects[0].name, "A");
}

TEST(FactorialTest, InteractionCellAveragesCorrectly) {
  auto design = MakeSyntheticDesign();
  auto cell = design.Interaction(0, 1);
  // r(a,b) = 10 + 4a + 2b + ab.
  EXPECT_NEAR(cell.low_low, 10 - 4 - 2 + 1, 1e-12);
  EXPECT_NEAR(cell.low_high, 10 - 4 + 2 - 1, 1e-12);
  EXPECT_NEAR(cell.high_low, 10 + 4 - 2 - 1, 1e-12);
  EXPECT_NEAR(cell.high_high, 10 + 4 + 2 + 1, 1e-12);
}

TEST(FactorialTest, ResponseIndexedByBitmask) {
  auto design = MakeSyntheticDesign();
  // mask 0 = all low: 10 - 4 - 2 + 1 = 5.
  EXPECT_NEAR(design.response(0), 5.0, 1e-12);
  // mask 0b011 = A,B high: 10 + 4 + 2 + 1 = 17.
  EXPECT_NEAR(design.response(3), 17.0, 1e-12);
}

// ------------------------------------------------ interaction classifier

TEST(InteractionClassTest, ParallelLinesAreNone) {
  // Same slope for both B levels.
  InteractionCell cell{1.0, 3.0, 2.0, 4.0};
  EXPECT_EQ(ClassifyInteraction(cell), InteractionClass::kNone);
}

TEST(InteractionClassTest, CrossingLinesAreMajor) {
  // B-high starts above and ends below B-low.
  InteractionCell cell{1.0, 3.0, 4.0, 2.0};
  EXPECT_EQ(ClassifyInteraction(cell), InteractionClass::kMajor);
}

TEST(InteractionClassTest, DivergingLinesAreMinor) {
  // Different slopes, no crossing inside the range.
  InteractionCell cell{1.0, 2.0, 3.0, 8.0};
  EXPECT_EQ(ClassifyInteraction(cell), InteractionClass::kMinor);
}

TEST(InteractionClassTest, ToleranceScalesWithMagnitude) {
  // Slopes differing by far less than the tolerance are "parallel".
  InteractionCell cell{100.0, 110.0, 120.0, 130.5};
  EXPECT_EQ(ClassifyInteraction(cell, 0.15), InteractionClass::kNone);
}

TEST(FactorialTest, StandardFactorsCoverTheEightControls) {
  auto factors = StandardFactors();
  ASSERT_EQ(factors.size(), 8u);
  EXPECT_EQ(factors[0].name, "F:density");
  EXPECT_EQ(factors[7].name, "M:prefetch");
  // Applying each factor's levels must modify a default config without
  // crashing.
  for (const auto& f : factors) {
    core::ModelConfig cfg;
    f.apply(cfg, false);
    f.apply(cfg, true);
  }
}

// End-to-end (tiny): a 3-factor real-simulation design runs and the
// density factor shows a positive response-time effect.
TEST(FactorialTest, RealSimulationSmallDesign) {
  core::ModelConfig base = core::TestConfig();
  base.measured_transactions = 120;
  base.warmup_transactions = 20;
  auto all = StandardFactors();
  std::vector<Factor> subset = {all[0], all[2], all[6]};  // F, H, L
  FactorialDesign design(base, subset);
  design.Run();
  auto effects = design.MainEffects();
  EXPECT_GT(effects[0].effect, 0.0);  // density raises response time
  EXPECT_LT(effects[2].effect, 0.0);  // more buffers lower it
}

}  // namespace
}  // namespace oodb::analysis
