#include <atomic>
#include <vector>

#include "gtest/gtest.h"

#include "cluster/cluster_manager.h"
#include "core/experiment.h"
#include "core/model_config.h"
#include "exec/experiment_runner.h"
#include "exec/thread_pool.h"

namespace oodb::exec {
namespace {

// ------------------------------------------------------------ thread pool

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusableBetweenBatches) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  pool.Submit([&done] { done.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(done.load(), 1);
  pool.Submit([&done] { done.fetch_add(1); });
  pool.Submit([&done] { done.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(done.load(), 3);
}

// ------------------------------------------------------- seed derivation

TEST(CellSeedTest, StableAndDistinctPerIndex) {
  const uint64_t base = 1;
  std::vector<uint64_t> seeds;
  for (uint64_t i = 0; i < 64; ++i) {
    const uint64_t s = ExperimentRunner::CellSeed(base, i);
    EXPECT_EQ(s, ExperimentRunner::CellSeed(base, i));  // pure function
    EXPECT_NE(s, 0u);
    for (uint64_t prev : seeds) EXPECT_NE(s, prev);
    seeds.push_back(s);
  }
  // Different base seeds give different streams at the same index.
  EXPECT_NE(ExperimentRunner::CellSeed(1, 0), ExperimentRunner::CellSeed(2, 0));
}

// -------------------------------------------------------- runner batches

std::vector<core::ModelConfig> Grid3x3() {
  std::vector<core::ModelConfig> cells;
  for (auto density :
       {workload::StructureDensity::kLow3, workload::StructureDensity::kMed5,
        workload::StructureDensity::kHigh10}) {
    for (double ratio : {5.0, 10.0, 100.0}) {
      core::ModelConfig cfg = core::TestConfig();
      cfg.warmup_transactions = 20;
      cfg.measured_transactions = 100;
      workload::WorkloadConfig w;
      w.density = density;
      w.read_write_ratio = ratio;
      cells.push_back(core::WithWorkload(cfg, w));
    }
  }
  return cells;
}

/// Bit-exact comparison of everything a RunResult reports.
void ExpectIdenticalResults(const core::RunResult& a,
                            const core::RunResult& b) {
  EXPECT_EQ(a.response_time.count(), b.response_time.count());
  EXPECT_EQ(a.response_time.sum(), b.response_time.sum());
  EXPECT_EQ(a.response_time.Mean(), b.response_time.Mean());
  EXPECT_EQ(a.response_time.min(), b.response_time.min());
  EXPECT_EQ(a.response_time.max(), b.response_time.max());
  EXPECT_EQ(a.read_response.sum(), b.read_response.sum());
  EXPECT_EQ(a.write_response.sum(), b.write_response.sum());
  EXPECT_EQ(a.transactions, b.transactions);
  EXPECT_EQ(a.logical_reads, b.logical_reads);
  EXPECT_EQ(a.logical_writes, b.logical_writes);
  EXPECT_EQ(a.data_reads, b.data_reads);
  EXPECT_EQ(a.dirty_flushes, b.dirty_flushes);
  EXPECT_EQ(a.log_flush_ios, b.log_flush_ios);
  EXPECT_EQ(a.cluster_exam_reads, b.cluster_exam_reads);
  EXPECT_EQ(a.prefetch_reads, b.prefetch_reads);
  EXPECT_EQ(a.split_writes, b.split_writes);
  EXPECT_EQ(a.buffer_hit_ratio, b.buffer_hit_ratio);
  EXPECT_EQ(a.sim_duration_s, b.sim_duration_s);
  EXPECT_EQ(a.achieved_rw_ratio, b.achieved_rw_ratio);
  EXPECT_EQ(a.db_pages, b.db_pages);
  EXPECT_EQ(a.db_objects, b.db_objects);
}

TEST(ExperimentRunnerTest, ParallelIsBitIdenticalToSerial) {
  const auto cells = Grid3x3();
  const auto serial = ExperimentRunner(1).Run(cells);
  const auto parallel = ExperimentRunner(4).Run(cells);
  ASSERT_EQ(serial.size(), cells.size());
  ASSERT_EQ(parallel.size(), cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(serial[i].seed, parallel[i].seed);
    ExpectIdenticalResults(serial[i].result, parallel[i].result);
  }
}

TEST(ExperimentRunnerTest, ResultsComeBackInSubmissionOrder) {
  auto cells = Grid3x3();
  // Give every cell a distinct base seed and measured length so each slot
  // is unambiguously attributable to its submission index.
  for (size_t i = 0; i < cells.size(); ++i) {
    cells[i].seed = 1000 + i;
    cells[i].measured_transactions = 60 + static_cast<int>(i);
  }
  const auto outcomes = ExperimentRunner(4).Run(cells);
  ASSERT_EQ(outcomes.size(), cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(outcomes[i].seed,
              ExperimentRunner::CellSeed(cells[i].seed, i));
    EXPECT_EQ(outcomes[i].result.transactions,
              static_cast<uint64_t>(60 + static_cast<int>(i)));
  }
}

TEST(ExperimentRunnerTest, MergedMetricsBitIdenticalAcrossJobCounts) {
  const auto cells = Grid3x3();
  const auto serial = ExperimentRunner(1).Run(cells);
  const auto parallel = ExperimentRunner(4).Run(cells);
  const obs::MetricsSnapshot m1 = ExperimentRunner::MergeMetrics(serial);
  const obs::MetricsSnapshot m4 = ExperimentRunner::MergeMetrics(parallel);
  // The merged snapshots must render to the same bytes: same metrics, in
  // the same order, with bit-identical values (%.17g round-trips doubles).
  EXPECT_EQ(m1.ToJson(), m4.ToJson());
  if (!m1.empty()) {
    // Merging summed across the nine cells.
    uint64_t txns = 0;
    for (const auto& o : serial) txns += o.result.transactions;
    EXPECT_EQ(*m1.counter("core.txns"), txns);
    ASSERT_NE(m1.histogram("core.response_s"), nullptr);
    EXPECT_EQ(m1.histogram("core.response_s")->count, txns);
  }
}

TEST(ExperimentRunnerTest, SeedDerivationIndependentOfJobCount) {
  const auto cells = Grid3x3();
  for (int jobs : {1, 2, 4, 7}) {
    const auto outcomes = ExperimentRunner(jobs).Run(cells);
    for (size_t i = 0; i < cells.size(); ++i) {
      EXPECT_EQ(outcomes[i].seed,
                ExperimentRunner::CellSeed(cells[i].seed, i));
    }
  }
}

// ------------------------------------- ScoreCandidates scratch regression

TEST(ScoreCandidatesScratchTest, RepeatedCallsReturnIdenticalOrdering) {
  obj::TypeLattice lattice;
  const obj::TypeId type = lattice.DefineType(
      "cell", obj::kInvalidType, 32, {8.0, 1.0, 0.5, 0.5});
  obj::ObjectGraph graph(&lattice);
  store::StorageManager storage(400);
  cluster::AffinityModel affinity(&lattice);
  cluster::ClusterManager mgr(
      &graph, &storage, &affinity, nullptr,
      {.pool = cluster::CandidatePool::kWithinDb});
  const obj::FamilyId fam = graph.NewFamily("F");
  auto make = [&] { return graph.Create(fam, 1, type, 50); };

  // Three candidate pages with 3/2/1 relatives of x.
  const store::PageId pages[3] = {storage.AllocatePage(),
                                  storage.AllocatePage(),
                                  storage.AllocatePage()};
  const obj::ObjectId x = make();
  const obj::ObjectId y = make();
  for (int p = 0; p < 3; ++p) {
    for (int n = 0; n < 3 - p; ++n) {
      const obj::ObjectId rel = make();
      OODB_CHECK(storage.Place(rel, 50, pages[p]).ok());
      graph.Relate(rel, x, obj::RelKind::kConfiguration);
      if (n == 0) graph.Relate(rel, y, obj::RelKind::kCorrespondence);
    }
  }

  const std::vector<cluster::ClusterManager::Candidate> first =
      mgr.ScoreCandidates(x);
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[0].page, pages[0]);
  EXPECT_EQ(first[1].page, pages[1]);
  EXPECT_EQ(first[2].page, pages[2]);
  EXPECT_GT(first[0].score, first[1].score);
  EXPECT_GT(first[1].score, first[2].score);

  // Interleave a call for a different object (clobbering the scratch),
  // then re-score x: the scratch reuse must not change the answer.
  (void)mgr.ScoreCandidates(y);
  const std::vector<cluster::ClusterManager::Candidate>& second =
      mgr.ScoreCandidates(x);
  ASSERT_EQ(second.size(), first.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(second[i].page, first[i].page);
    EXPECT_EQ(second[i].score, first[i].score);
  }
}

}  // namespace
}  // namespace oodb::exec
