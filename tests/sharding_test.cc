#include "gtest/gtest.h"

#include <array>
#include <string>
#include <vector>

#include "core/engineering_db.h"
#include "core/model_config.h"
#include "core/policy_registry.h"
#include "core/scenario.h"
#include "core/sharding.h"
#include "exec/experiment_runner.h"
#include "obs/span_profiler.h"

namespace oodb::core {
namespace {

// --------------------------------------------------------- policy registry

TEST(ShardPlacementRegistryTest, CanonicalNamesAndAliasesResolve) {
  const PolicyRegistry& reg = PolicyRegistry::Global();
  for (ShardPlacement p : kAllShardPlacements) {
    EXPECT_EQ(reg.ShardPlacementOf(ShardPlacementName(p)), p);
  }
  EXPECT_EQ(reg.ShardPlacementOf("hash"), ShardPlacement::kHashShard);
  EXPECT_EQ(reg.ShardPlacementOf("structure"),
            ShardPlacement::kStructureShard);
  // Separator/case normalization applies like every other axis.
  EXPECT_EQ(reg.ShardPlacementOf("hash shard"), ShardPlacement::kHashShard);
  EXPECT_EQ(reg.ShardPlacementOf("STRUCTURE-SHARD"),
            ShardPlacement::kStructureShard);
  EXPECT_FALSE(reg.ShardPlacementOf("round_robin").has_value());

  const auto& names = reg.CanonicalNames(PolicyAxis::kShardPlacement);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "Hash_Shard");
  EXPECT_EQ(names[1], "Structure_Shard");
}

// ----------------------------------------------------------- model config

TEST(ShardingConfigTest, ValidateBoundsTheShardKnobs) {
  ModelConfig cfg = TestConfig();
  cfg.shards = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg.shards = 65;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg.shards = 64;
  EXPECT_TRUE(cfg.Validate().ok());

  cfg = TestConfig();
  cfg.shards = 2;
  cfg.shard_hop_latency_s = -1e-6;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg.shard_hop_latency_s = 0;
  cfg.shard_group_cap = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg.shard_group_cap = 1;
  EXPECT_TRUE(cfg.Validate().ok());

  // The dynamic re-clustering subsystem tracks the single server's
  // components; combining it with shards > 1 must fail loudly, not run
  // half-observed.
  cfg = TestConfig();
  cfg.shards = 2;
  cfg.clustering.dynamic.policy = dyn::PolicyKind::kDstc;
  const Status s = cfg.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("dynamic"), std::string::npos) << s.ToString();
}

// ---------------------------------------------------------------- scenario

TEST(ShardingScenarioTest, ShardKnobsRoundTripAndExpand) {
  const auto first = ParseScenario(R"json({
    "name": "shard_roundtrip",
    "config": {
      "buffer_pages": 64,
      "warmup_transactions": 10,
      "measured_transactions": 60,
      "seed": 3,
      "shards": 2,
      "shard_placement": "Structure_Shard",
      "shard_hop_latency_s": 0.001,
      "shard_group_cap": 32,
      "clustering": {"pool": "No_Clustering"}
    },
    "sweep": {
      "shards": [1, 2, 4],
      "shard_placement": ["hash", "Structure_Shard"]
    }
  })json");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->base.shards, 2);
  EXPECT_EQ(first->base.shard_placement, ShardPlacement::kStructureShard);
  EXPECT_DOUBLE_EQ(first->base.shard_hop_latency_s, 0.001);
  EXPECT_EQ(first->base.shard_group_cap, 32);
  ASSERT_EQ(first->shards.size(), 3u);
  ASSERT_EQ(first->shard_placement.size(), 2u);
  // The alias resolved to the canonical enum value.
  EXPECT_EQ(first->shard_placement[0], ShardPlacement::kHashShard);

  const std::string json = first->ToJson();
  const auto second = ParseScenario(json);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(json, second->ToJson());

  // Shards is the outermost axis, placement next; multi-level shard axes
  // prefix the policy label.
  const auto cells = first->Expand();
  ASSERT_EQ(cells.size(), 6u);
  EXPECT_EQ(cells[0].config.shards, 1);
  EXPECT_EQ(cells[0].config.shard_placement, ShardPlacement::kHashShard);
  EXPECT_EQ(cells[0].policy, "1shard_Hash_Shard");
  EXPECT_EQ(cells[1].policy, "1shard_Structure_Shard");
  EXPECT_EQ(cells[5].config.shards, 4);
  EXPECT_EQ(cells[5].config.shard_placement,
            ShardPlacement::kStructureShard);
  EXPECT_EQ(cells[5].policy, "4shard_Structure_Shard");
  for (const auto& cell : cells) {
    // Non-swept knobs come from the base config in every cell.
    EXPECT_DOUBLE_EQ(cell.config.shard_hop_latency_s, 0.001);
    EXPECT_EQ(cell.config.shard_group_cap, 32);
  }
}

TEST(ShardingScenarioTest, ShardKnobsWithoutShardsAreKindGatedErrors) {
  const auto expect_error = [](const char* json, const std::string& needle) {
    const auto spec = ParseScenario(json);
    ASSERT_FALSE(spec.ok()) << json;
    EXPECT_NE(spec.status().message().find(needle), std::string::npos)
        << spec.status().ToString();
  };
  // A shard_* knob with the core still at one shard is a silent no-op, so
  // it is an error — regardless of key order.
  expect_error(
      R"({"name": "x", "config": {"shard_placement": "Structure_Shard"}})",
      "add \"shards\"");
  expect_error(
      R"({"name": "x", "config": {"shard_hop_latency_s": 0.001}})",
      "sharding knob");
  // The gate is order-independent: "shards" after the knob is fine.
  EXPECT_TRUE(ParseScenario(
                  R"({"name": "x",
                      "config": {"shard_group_cap": 8, "shards": 2}})")
                  .ok());
  // Unknown placement names list the canonical spellings.
  expect_error(
      R"({"name": "x",
          "config": {"shards": 2, "shard_placement": "modulo"}})",
      "Hash_Shard");
  // Out-of-range shard counts fail in both config and sweep position.
  expect_error(R"({"name": "x", "config": {"shards": 65}})", "64");
  expect_error(R"({"name": "x", "sweep": {"shards": [0]}})",
               "1 to 64 shards");
  // A placement sweep where every cell runs one shard sweeps an inert
  // knob; the gate fires whether or not a config section exists.
  expect_error(
      R"({"name": "x",
          "sweep": {"shard_placement": ["Hash_Shard", "Structure_Shard"]}})",
      "placement has no effect");
}

// ------------------------------------------------------------------ model

/// Shared fast config: small enough for unit tests, big enough that a
/// hash placement actually scatters composite objects across shards.
ModelConfig ShardTestConfig(int shards, ShardPlacement placement) {
  ModelConfig cfg = TestConfig();
  cfg.shards = shards;
  cfg.shard_placement = placement;
  return cfg;
}

TEST(ShardingModelTest, SingleShardIsBitIdenticalAcrossInertShardKnobs) {
  // With shards = 1 the placement layer must be a pure alias: changing the
  // placement policy, hop latency, or group cap cannot perturb a single
  // simulated event or RNG draw.
  ModelConfig a = TestConfig();
  ModelConfig b = TestConfig();
  b.shard_placement = ShardPlacement::kStructureShard;
  b.shard_hop_latency_s = 0.5;
  b.shard_group_cap = 3;

  const RunResult ra = EngineeringDbModel(a).Run();
  const RunResult rb = EngineeringDbModel(b).Run();
  EXPECT_EQ(ra.response_time.Mean(), rb.response_time.Mean());
  EXPECT_EQ(ra.transactions, rb.transactions);
  EXPECT_EQ(ra.logical_reads, rb.logical_reads);
  EXPECT_EQ(ra.data_reads, rb.data_reads);
  EXPECT_EQ(ra.total_physical_ios(), rb.total_physical_ios());
  EXPECT_EQ(ra.buffer_hit_ratio, rb.buffer_hit_ratio);
  // And the shard counters stay zero — no fetch is ever "routed".
  EXPECT_EQ(ra.shard_local_fetches, 0u);
  EXPECT_EQ(ra.shard_remote_fetches, 0u);
  EXPECT_EQ(ra.remote_fetch_fraction, 0.0);
}

TEST(ShardingModelTest, MultiShardRunRoutesAndCountsRemoteFetches) {
  const RunResult r =
      EngineeringDbModel(ShardTestConfig(4, ShardPlacement::kHashShard))
          .Run();
  EXPECT_GT(r.transactions, 0u);
  // Hash placement scatters every composite object's components, so a
  // healthy share of routed fetches must be remote.
  EXPECT_GT(r.shard_local_fetches, 0u);
  EXPECT_GT(r.shard_remote_fetches, 0u);
  EXPECT_GT(r.remote_fetch_fraction, 0.0);
  EXPECT_LE(r.remote_fetch_fraction, 1.0);
  const double expected =
      static_cast<double>(r.shard_remote_fetches) /
      static_cast<double>(r.shard_local_fetches + r.shard_remote_fetches);
  EXPECT_DOUBLE_EQ(r.remote_fetch_fraction, expected);
}

TEST(ShardingModelTest, StructurePlacementCutsRemoteFetchFraction) {
  // The tentpole's claim at unit scale: keeping composite subgraphs on one
  // shard turns most would-be-remote references local.
  const RunResult hash =
      EngineeringDbModel(ShardTestConfig(4, ShardPlacement::kHashShard))
          .Run();
  const RunResult structure =
      EngineeringDbModel(ShardTestConfig(4, ShardPlacement::kStructureShard))
          .Run();
  ASSERT_GT(hash.remote_fetch_fraction, 0.0);
  EXPECT_LT(structure.remote_fetch_fraction,
            hash.remote_fetch_fraction * 0.5)
      << "structure=" << structure.remote_fetch_fraction
      << " hash=" << hash.remote_fetch_fraction;
}

TEST(ShardingModelTest, ShardedRunsAreIdenticalAcrossJobCounts) {
  // The derived per-cell seeds and the per-cell determinism must survive
  // the thread pool: jobs=1 and jobs=4 produce the same numbers for the
  // same sharded cells.
  std::vector<ModelConfig> cells = {
      ShardTestConfig(2, ShardPlacement::kHashShard),
      ShardTestConfig(2, ShardPlacement::kStructureShard),
      ShardTestConfig(4, ShardPlacement::kStructureShard),
  };
  const auto serial = exec::ExperimentRunner(1).Run(cells);
  const auto parallel = exec::ExperimentRunner(4).Run(cells);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    const RunResult& a = serial[i].result;
    const RunResult& b = parallel[i].result;
    EXPECT_EQ(a.response_time.Mean(), b.response_time.Mean());
    EXPECT_EQ(a.transactions, b.transactions);
    EXPECT_EQ(a.data_reads, b.data_reads);
    EXPECT_EQ(a.total_physical_ios(), b.total_physical_ios());
    EXPECT_EQ(a.shard_local_fetches, b.shard_local_fetches);
    EXPECT_EQ(a.shard_remote_fetches, b.shard_remote_fetches);
    EXPECT_EQ(a.shard_remote_writes, b.shard_remote_writes);
    EXPECT_EQ(a.remote_fetch_fraction, b.remote_fetch_fraction);
  }
}

TEST(ShardingModelTest, SpanAdditivityHoldsWithRemoteFetchWait) {
  // The profiler contract (DESIGN.md §14) extends to the new phase: per
  // transaction kind, the phase ticks sum exactly to the response ticks,
  // and cross-shard traffic shows up as remote_fetch_wait.
  ModelConfig cfg = ShardTestConfig(2, ShardPlacement::kHashShard);
  cfg.profile_spans = true;
  const RunResult r = EngineeringDbModel(cfg).Run();
  ASSERT_FALSE(r.span_breakdown.empty());
  uint64_t remote_wait_ticks = 0;
  for (const obs::SpanKindBreakdown& b : r.span_breakdown) {
    SCOPED_TRACE(b.kind);
    uint64_t sum = 0;
    for (const uint64_t t : b.phase_ticks) sum += t;
    EXPECT_EQ(sum, b.response_ticks);
    remote_wait_ticks += b.phase_ticks[static_cast<size_t>(
        obs::SpanPhase::kRemoteFetchWait)];
  }
  EXPECT_GT(remote_wait_ticks, 0u);
}

}  // namespace
}  // namespace oodb::core
